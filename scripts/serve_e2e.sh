#!/usr/bin/env bash
# serve_e2e.sh — end-to-end smoke of the persistence and routing layer:
#
#   1. store restart: factorize once with -store, restart over the same
#      directory, and assert the first query after restart is served warm
#      (factorizations 0, store_hits 1);
#   2. router: run mvnload against one direct backend and against a
#      2-backend consistent-hash router, recording both runs (plus the
#      restart-latency probe) into BENCH_serve.json.
#
# Needs: go, curl, python3 (JSON assertions). Exits nonzero on any broken
# invariant; BENCH_serve.json is left in the working directory for upload.
set -euo pipefail

DUR="${MVNLOAD_DURATION:-2s}"
QMC=500
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/mvnserve" ./cmd/mvnserve
go build -o "$WORK/mvnload" ./cmd/mvnload

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "serve_e2e: $1 never became healthy" >&2
  return 1
}

stat_field() { # url field
  curl -fsS "$1/stats" | python3 -c "import json,sys; print(json.load(sys.stdin)[\"$2\"])"
}

QUERY='{"grid":{"nx":12,"ny":12},"kernel":{"family":"exponential","range":0.1},"lower":-1}'

echo "== store restart: cold run =="
STORE="$WORK/factors"
"$WORK/mvnserve" -addr 127.0.0.1:18411 -qmc $QMC -store "$STORE" &
S1=$!; PIDS+=("$S1")
wait_healthy http://127.0.0.1:18411
curl -fsS -X POST http://127.0.0.1:18411/v1/mvnprob -d "$QUERY" | grep -q '"prob"'
for _ in $(seq 1 50); do
  [ "$(stat_field http://127.0.0.1:18411 store_saves)" = "1" ] && break
  sleep 0.1
done
[ "$(stat_field http://127.0.0.1:18411 factorizations)" = "1" ] || { echo "cold run: want 1 factorization" >&2; exit 1; }
[ "$(stat_field http://127.0.0.1:18411 store_saves)" = "1" ] || { echo "cold run: factor never persisted" >&2; exit 1; }
kill "$S1"; wait "$S1" 2>/dev/null || true

echo "== store restart: warm run =="
"$WORK/mvnserve" -addr 127.0.0.1:18412 -qmc $QMC -store "$STORE" &
S2=$!; PIDS+=("$S2")
wait_healthy http://127.0.0.1:18412
T0=$(date +%s%N)
curl -fsS -X POST http://127.0.0.1:18412/v1/mvnprob -d "$QUERY" | grep -q '"prob"'
T1=$(date +%s%N)
[ "$(stat_field http://127.0.0.1:18412 factorizations)" = "0" ] || { echo "restart: want 0 factorizations (warm from store)" >&2; exit 1; }
[ "$(stat_field http://127.0.0.1:18412 store_hits)" = "1" ] || { echo "restart: want 1 store hit" >&2; exit 1; }
[ "$(stat_field http://127.0.0.1:18412 cache_hits)" = "1" ] || { echo "restart: want 1 cache hit" >&2; exit 1; }
kill "$S2"; wait "$S2" 2>/dev/null || true
WARM_MS=$(( (T1 - T0) / 1000000 ))
echo "restart-warm first query: ${WARM_MS}ms, 0 factorizations"
python3 - "$WARM_MS" <<'EOF'
import json, os, sys
runs = []
if os.path.exists("BENCH_serve.json"):
    runs = json.load(open("BENCH_serve.json"))
runs.append({"label": "store-restart-first-query", "mode": "probe",
             "requests": 1, "latency_p50_ms": float(sys.argv[1]),
             "note": "first query after restart with -store; 0 factorizations"})
json.dump(runs, open("BENCH_serve.json", "w"), indent=2)
EOF

echo "== load: 1 direct backend =="
"$WORK/mvnserve" -addr 127.0.0.1:18421 -qmc $QMC &
B1=$!; PIDS+=("$B1")
wait_healthy http://127.0.0.1:18421
"$WORK/mvnload" -target http://127.0.0.1:18421 -duration "$DUR" -warmup 1s \
  -keys 4 -grid 12 -conc 8 -budget-mix 0.5 -out BENCH_serve.json -label direct-1

echo "== load: 2 backends behind the router =="
"$WORK/mvnserve" -addr 127.0.0.1:18422 -qmc $QMC &
B2=$!; PIDS+=("$B2")
"$WORK/mvnserve" -addr 127.0.0.1:18423 -route http://127.0.0.1:18421,http://127.0.0.1:18422 -health-interval 300ms &
RT=$!; PIDS+=("$RT")
wait_healthy http://127.0.0.1:18422
wait_healthy http://127.0.0.1:18423
"$WORK/mvnload" -target http://127.0.0.1:18423 -duration "$DUR" -warmup 1s \
  -keys 4 -grid 12 -conc 8 -budget-mix 0.5 -out BENCH_serve.json -label router-2

# Both backends must have taken traffic and no request may have failed.
python3 <<'EOF'
import json, sys, urllib.request
st = json.load(urllib.request.urlopen("http://127.0.0.1:18423/stats"))
fw = [b["forwarded"] for b in st["backends"]]
if min(fw) == 0:
    sys.exit(f"router never used one backend: forwarded={fw}")
runs = json.load(open("BENCH_serve.json"))
bad = [r["label"] for r in runs if r.get("errors", 0)]
if bad:
    sys.exit(f"load runs with errors: {bad}")
print(f"router forwarded {fw}; {len(runs)} runs recorded")
EOF

echo "serve_e2e: ok"
