#!/usr/bin/env bash
# bcegate.sh — bounds-check-elimination gate for the portable inner loops.
#
# Compiles internal/linalg and internal/mvn with -d=ssa/check_bce and counts
# the bounds checks the compiler could NOT eliminate in the gated files: the
# packed BLAS-3 kernels (blocked.go) and the chain-blocked sweep (sweep.go),
# whose portable fallback loops are the hot path on machines without the
# AVX2+FMA micro-kernels. The gate fails when a gated file gains bounds
# checks over the checked-in golden counts — the usual way a "harmless"
# refactor of an inner loop quietly reintroduces per-element branches.
#
# Counts, not line numbers, are compared, so edits elsewhere in the file do
# not trip the gate. When a count drops (more checks eliminated) the gate
# still passes but asks for a re-bless so the ceiling stays tight:
#
#   scripts/bcegate.sh --update
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=scripts/golden/bce.golden
GATED='^internal/(linalg/blocked|mvn/sweep)\.go'

# One "file count" line per gated file. sort -u first: the same diagnostic
# can be replayed once per build action that names the package.
current() {
    go build -gcflags=-d=ssa/check_bce ./internal/linalg ./internal/mvn 2>&1 |
        grep -E ': Found (IsInBounds|IsSliceInBounds)$' |
        sort -u |
        sed -E 's/^([^:]*):.*/\1/' |
        grep -E "$GATED" |
        sort | uniq -c | awk '{print $2, $1}'
}

if [[ "${1:-}" == "--update" ]]; then
    mkdir -p "$(dirname "$GOLDEN")"
    current > "$GOLDEN"
    cat "$GOLDEN"
    echo "bcegate: golden counts updated"
    exit 0
fi

if [[ ! -f "$GOLDEN" ]]; then
    echo "bcegate: missing $GOLDEN — run scripts/bcegate.sh --update" >&2
    exit 1
fi

rc=0
improved=0
while read -r file count; do
    golden=$(awk -v f="$file" '$1 == f {print $2}' "$GOLDEN")
    if [[ -z "$golden" ]]; then
        echo "bcegate: $file not in golden list — run scripts/bcegate.sh --update" >&2
        rc=1
    elif (( count > golden )); then
        echo "bcegate: FAIL $file: $count bounds checks remain (golden $golden) — an inner loop regressed; restructure the indexing or re-bless deliberately" >&2
        rc=1
    elif (( count < golden )); then
        echo "bcegate: note $file improved to $count bounds checks (golden $golden) — re-bless with scripts/bcegate.sh --update"
        improved=1
    else
        echo "bcegate: ok $file: $count bounds checks (at golden ceiling)"
    fi
done < <(current)

# A gated file disappearing from the build entirely should be loud too.
while read -r file _; do
    if ! current | awk -v f="$file" '$1 == f {found=1} END {exit !found}'; then
        echo "bcegate: golden file $file produced no diagnostics — deleted or renamed? run scripts/bcegate.sh --update" >&2
        rc=1
    fi
done < "$GOLDEN"

exit $rc
