#!/usr/bin/env bash
# escapegate.sh — escape-analysis gate for the certified hot-path files.
#
# Compiles the kernel packages with -gcflags=-m and compares the compiler's
# "escapes to heap" / "moved to heap" diagnostics for the gated files against
# the checked-in golden list. The gated files are the ones the
# //repro:noalloc annotations certify: their parameters and scratch must stay
# on the stack (or on the workspace pool), so any NEW escape diagnostic there
# is a hot-path allocation regression — exactly the kind a benchmark only
# notices later.
#
# The comparison is content-based, not line-based: diagnostics are normalized
# to "count file: message", so ordinary edits that shift line numbers do not
# trip the gate, while a new escape (or a new copy of an old one) does.
#
# When a hot path legitimately changes (or the Go toolchain's escape
# analysis improves), re-bless the output:
#
#   scripts/escapegate.sh --update
#
# and commit the regenerated golden file together with the change.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=scripts/golden/escape.golden

# The certified warm path: the chain-blocked sweep (f64 and f32), the packed
# BLAS-3 kernels (including the AVX2 dispatch shims), the batched special
# functions with their vector backends, the f32 tile kernels and the QMC
# block generators. (The scalar fallbacks in sov.go ride along: chainStep is
# the sweep's sparse path.)
GATED='^internal/(mvn/(sweep|sweep32|sov|pmvn|wave)|linalg/(blocked|blas|kern_amd64)|stats/(batch|spec_amd64|phinv|stats)|tile/(f32|pool32)|qmc/qmc)\.go'

current() {
    go build -gcflags=-m ./internal/mvn ./internal/linalg ./internal/stats ./internal/tile ./internal/qmc 2>&1 |
        grep -E '(escapes to heap|moved to heap)' |
        sed -E 's/^([^:]*):[0-9]+:[0-9]+: /\1: /' |
        grep -E "$GATED" |
        sort | uniq -c | sed -E 's/^ *//'
}

if [[ "${1:-}" == "--update" ]]; then
    mkdir -p "$(dirname "$GOLDEN")"
    current > "$GOLDEN"
    echo "escapegate: golden list updated ($(wc -l < "$GOLDEN") entries)"
    exit 0
fi

if [[ ! -f "$GOLDEN" ]]; then
    echo "escapegate: missing $GOLDEN — run scripts/escapegate.sh --update" >&2
    exit 1
fi

if ! diff -u "$GOLDEN" <(current); then
    cat >&2 <<'EOF'
escapegate: FAIL — heap-escape diagnostics changed in a gated hot-path file.
Lines with + are new escapes (a hot-path allocation regression: fix it, or
pool/stack the value); lines with - disappeared (an improvement: re-bless
with scripts/escapegate.sh --update and commit the golden file).
EOF
    exit 1
fi
echo "escapegate: ok ($(wc -l < "$GOLDEN") known escapes in gated files)"
