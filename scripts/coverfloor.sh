#!/usr/bin/env bash
# coverfloor.sh — statement-coverage floors for the serving-critical code.
#
# Runs the root and serving test suites with a coverage profile over the
# public facade and internal/serve, computes per-target statement coverage
# (whole serve package; api.go, cache.go, batch.go, validate.go as files),
# and fails if any target drops below its recorded floor.
#
# The floors are deliberately a few points under the measured values at the
# time of recording — they exist to catch "a refactor silently dropped the
# serving tests", not to enforce a style of testing. Re-record by running
# this script and reading the printed percentages.
#
# Usage: scripts/coverfloor.sh [coverprofile]
#   With no argument, the profile is generated into a temp file.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${1:-}"
if [[ -z "$PROFILE" ]]; then
    PROFILE="$(mktemp)"
    trap 'rm -f "$PROFILE"' EXIT
    go test -coverprofile="$PROFILE" \
        -coverpkg=repro,repro/internal/serve,repro/internal/analysis \
        . ./internal/serve ./internal/analysis > /dev/null
fi

# Floors (percent). Measured at recording time (2026-07): serve 90.4,
# api.go 89.4, cache.go 93.7, batch.go 85.5, validate.go 95.8; (2026-08):
# internal/analysis 87.1. Each floor sits ~8 points under the measurement
# to absorb small refactors while still tripping on a lost test file.
check() {
    local label="$1" pattern="$2" floor="$3"
    awk -v pat="$pattern" -v floor="$floor" -v label="$label" '
        NR > 1 {
            split($0, f, ":")
            if (f[1] !~ pat) next
            # fields: start,end numStmts hitCount
            n = split($0, g, " ")
            stmts = g[n-1]; hits = g[n]
            key = f[1] ":" g[n-2]
            if (!(key in seen)) { seen[key] = stmts; total += stmts }
            if (hits > 0 && !(key in cov)) { cov[key] = 1; covered += seen[key] }
        }
        END {
            if (total == 0) { printf "coverfloor: %-20s no statements matched\n", label; exit 1 }
            pct = 100 * covered / total
            status = (pct + 1e-9 >= floor) ? "ok" : "FAIL"
            printf "coverfloor: %-20s %6.1f%% (floor %s%%) %s\n", label, pct, floor, status
            if (status == "FAIL") exit 1
        }' "$PROFILE"
}

rc=0
check "internal/serve"      "^repro/internal/serve/" 82 || rc=1
check "api.go"              "^repro/api\\.go$"       80 || rc=1
check "cache.go"            "^repro/cache\\.go$"     85 || rc=1
check "batch.go"            "^repro/batch\\.go$"     78 || rc=1
check "validate.go"         "^repro/validate\\.go$"  88 || rc=1
check "internal/analysis"   "^repro/internal/analysis/" 79 || rc=1
exit $rc
