package parmvn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/factorio"
	"repro/internal/mvn"
)

// FactorStore is a directory of persisted Cholesky factors, one file per
// factorization problem, in the versioned, checksummed internal/factorio
// container format. It is the restart/replica warm-start mechanism of the
// serving layer: Prefactorize once, SaveFactor, and every later process —
// a restarted server, a new replica — installs the deserialized factor
// straight into its session factor cache instead of paying the O(n³)
// factorization again. A loaded factor answers queries bit-identically to
// the factor that was saved.
//
// Files are written to a temporary name and renamed into place, so a crash
// mid-write never leaves a partial file under a live name; every section of
// the format carries its own CRC, so on-disk corruption surfaces as a typed
// error on load, never as a wrong factor. Safe for concurrent use by any
// number of processes sharing the directory.
type FactorStore struct {
	dir string
}

// ErrStoreMiss reports that the store holds no factor for the requested
// problem (distinguishable from an I/O or corruption failure).
var ErrStoreMiss = errors.New("parmvn: factor not in store")

// storeExt is the factor file suffix.
const storeExt = ".fac"

// OpenFactorStore opens (creating if needed) a factor store directory.
func OpenFactorStore(dir string) (*FactorStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("parmvn: empty factor store path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("parmvn: factor store: %w", err)
	}
	return &FactorStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *FactorStore) Dir() string { return st.dir }

// path is the file a problem key persists under: the key's well-mixed
// 64-bit hash in hex. Two distinct keys colliding on all 64 bits is
// astronomically unlikely; the full key is verified on load regardless, so
// a collision degrades to a store miss, never to a wrong factor.
func (st *FactorStore) path(pk ProblemKey) string {
	return filepath.Join(st.dir, fmt.Sprintf("%016x%s", pk.Hash(), storeExt))
}

// Has reports whether a file for pk's factor exists (without validating
// it; LoadFactor verifies the full key and every checksum on load).
func (st *FactorStore) Has(pk ProblemKey) bool {
	_, err := os.Stat(st.path(pk))
	return err == nil
}

// Len counts the factors currently persisted.
func (st *FactorStore) Len() (int, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), storeExt) {
			n++
		}
	}
	return n, nil
}

// keyBlobVersion versions the factorKey serialization inside the container
// key section (the container itself is versioned separately).
const keyBlobVersion = 1

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// encodeFactorKey serializes a factorKey deterministically; equal keys
// produce equal blobs, so key identity on load is a bytes.Equal.
func encodeFactorKey(k factorKey) []byte {
	b := make([]byte, 0, 96)
	b = append(b, keyBlobVersion, k.kind)
	b = binary.LittleEndian.AppendUint64(b, k.hash[0])
	b = binary.LittleEndian.AppendUint64(b, k.hash[1])
	b = binary.LittleEndian.AppendUint64(b, uint64(k.n))
	b = binary.LittleEndian.AppendUint32(b, uint32(k.method))
	b = binary.LittleEndian.AppendUint32(b, uint32(k.tile))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.tol))
	b = binary.LittleEndian.AppendUint32(b, uint32(k.maxRank))
	b = binary.LittleEndian.AppendUint32(b, uint32(k.band))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.rankFrac))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.f32Cut))
	b = appendString(b, k.kernel.Family)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.kernel.Sigma2))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.kernel.Range))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.kernel.Nu))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.kernel.Nugget))
	return b
}

// decodeFactorKey parses an encodeFactorKey blob.
func decodeFactorKey(b []byte) (factorKey, error) {
	var k factorKey
	const fixed = 2 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 4 + 8 + 8 + 2
	if len(b) < fixed {
		return k, fmt.Errorf("parmvn: factor key blob too short (%d bytes)", len(b))
	}
	if b[0] != keyBlobVersion {
		return k, fmt.Errorf("parmvn: factor key blob version %d, want %d", b[0], keyBlobVersion)
	}
	k.kind = b[1]
	k.hash[0] = binary.LittleEndian.Uint64(b[2:])
	k.hash[1] = binary.LittleEndian.Uint64(b[10:])
	k.n = int(binary.LittleEndian.Uint64(b[18:]))
	k.method = Method(int32(binary.LittleEndian.Uint32(b[26:])))
	k.tile = int(int32(binary.LittleEndian.Uint32(b[30:])))
	k.tol = math.Float64frombits(binary.LittleEndian.Uint64(b[34:]))
	k.maxRank = int(int32(binary.LittleEndian.Uint32(b[42:])))
	k.band = int(int32(binary.LittleEndian.Uint32(b[46:])))
	k.rankFrac = math.Float64frombits(binary.LittleEndian.Uint64(b[50:]))
	k.f32Cut = math.Float64frombits(binary.LittleEndian.Uint64(b[58:]))
	fl := int(binary.LittleEndian.Uint16(b[66:]))
	if len(b) < fixed+fl+4*8 {
		return k, fmt.Errorf("parmvn: factor key blob truncated kernel section")
	}
	k.kernel.Family = string(b[68 : 68+fl])
	rest := b[68+fl:]
	k.kernel.Sigma2 = math.Float64frombits(binary.LittleEndian.Uint64(rest[0:]))
	k.kernel.Range = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	k.kernel.Nu = math.Float64frombits(binary.LittleEndian.Uint64(rest[16:]))
	k.kernel.Nugget = math.Float64frombits(binary.LittleEndian.Uint64(rest[24:]))
	return k, nil
}

// SaveFactor persists the Cholesky factor for spec's kernel at locs —
// building and caching it first if the session has not already — into the
// store, atomically (write temp, fsync, rename). Factorization failures
// are returned and never persisted.
func (s *Session) SaveFactor(st *FactorStore, locs []Point, spec KernelSpec) error {
	if len(locs) == 0 {
		return fmt.Errorf("parmvn: empty problem (dimension 0)")
	}
	if err := s.validateTileSize(len(locs)); err != nil {
		return err
	}
	f, err := s.factorForKernel(locs, spec)
	if err != nil {
		return err
	}
	key := s.cfg.key('k', hashPoints(locs), len(locs), spec.normalized())
	return st.write(ProblemKey{key}, encodeFactorKey(key), f)
}

// write encodes one factor container to a temp file and renames it into
// place under pk's name.
func (st *FactorStore) write(pk ProblemKey, keyBlob []byte, f mvn.Factor) error {
	tmp, err := os.CreateTemp(st.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("parmvn: factor store: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<20)
	encErr := factorio.Encode(w, keyBlob, f)
	if encErr == nil {
		encErr = w.Flush()
	}
	if encErr == nil {
		encErr = tmp.Sync()
	}
	if cerr := tmp.Close(); encErr == nil {
		encErr = cerr
	}
	if encErr != nil {
		return fmt.Errorf("parmvn: factor store write: %w", encErr)
	}
	if err := os.Rename(tmp.Name(), st.path(pk)); err != nil {
		return fmt.Errorf("parmvn: factor store: %w", err)
	}
	return nil
}

// LoadFactor installs the stored factor for pk into the session's factor
// cache, so the next query for that problem runs warm without ever
// factorizing. It returns ErrStoreMiss when the store has no (matching)
// factor for pk, and the typed factorio errors (checksum, version,
// format) for unreadable files. A factor already cached — or being built —
// is left alone and reported as success.
//
// The stored key must match pk exactly — same content hash, method, tile
// size and tolerances — otherwise the file is treated as a miss; a stored
// factor can therefore never be installed under a configuration it was not
// built for.
func (s *Session) LoadFactor(st *FactorStore, pk ProblemKey) error {
	if status, _ := s.cache.state(pk.k); status != FactorAbsent {
		return nil
	}
	blob, f, err := st.read(pk)
	if err != nil {
		return err
	}
	if !bytes.Equal(blob, encodeFactorKey(pk.k)) {
		return ErrStoreMiss
	}
	s.cache.install(pk.k, f)
	return nil
}

// read decodes pk's container from disk.
func (st *FactorStore) read(pk ProblemKey) ([]byte, mvn.Factor, error) {
	file, err := os.Open(st.path(pk))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrStoreMiss
		}
		return nil, nil, fmt.Errorf("parmvn: factor store: %w", err)
	}
	defer file.Close()
	blob, f, err := factorio.Decode(bufio.NewReaderSize(file, 1<<20))
	if err != nil {
		return nil, nil, err
	}
	return blob, f, nil
}

// WarmFromStore installs every stored factor whose key the session's own
// configuration would produce — same method, tile size and tolerances —
// into the factor cache, and reports how many were installed. Factors
// saved under other configurations are skipped, corrupt or gated-out files
// are skipped (the store stays usable even with a damaged entry; the
// first error encountered is returned after the scan so callers can log
// it). With a bounded cache the LRU eviction still applies: warming more
// factors than FactorCacheCap keeps only the last ones installed.
func (s *Session) WarmFromStore(st *FactorStore) (int, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return 0, fmt.Errorf("parmvn: factor store: %w", err)
	}
	installed := 0
	var firstErr error
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), storeExt) {
			continue
		}
		file, err := os.Open(filepath.Join(st.dir, ent.Name()))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		blob, f, err := factorio.Decode(bufio.NewReaderSize(file, 1<<20))
		file.Close()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", ent.Name(), err)
			}
			continue
		}
		key, err := decodeFactorKey(blob)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", ent.Name(), err)
			}
			continue
		}
		// The stored key is trusted only if this session would key the same
		// problem identically: reconstruct the key from the session config
		// and the stored content identity, and require an exact match.
		if key != s.cfg.key(key.kind, key.hash, key.n, key.kernel) {
			continue
		}
		if s.cache.install(key, f) {
			installed++
		}
	}
	return installed, firstErr
}
