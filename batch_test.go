package parmvn

import (
	"math"
	"sync"
	"testing"
)

// batchQueries builds nq lower-limit sweeps over the given dimension.
func batchQueries(n, nq int) []Bounds {
	qs := make([]Bounds, nq)
	for q := range qs {
		lo := -1.0 + 1.5*float64(q)/float64(nq)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = lo
			b[i] = math.Inf(1)
		}
		qs[q] = Bounds{A: a, B: b}
	}
	return qs
}

func TestBatchMatchesSequential(t *testing.T) {
	locs := Grid(8, 8)
	kernel := KernelSpec{Family: "exponential", Range: 0.15}
	cfg := Config{QMCSize: 1000, TileSize: 16, Replicates: 3}
	queries := batchQueries(len(locs), 5)

	// Sequential reference: a fresh session per query, so every call
	// re-factorizes from scratch — the pre-batching behavior.
	want := make([]Result, len(queries))
	for i, q := range queries {
		s := NewSession(cfg)
		r, err := s.MVNProb(locs, kernel, q.A, q.B)
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	s := NewSession(cfg)
	defer s.Close()
	got, err := s.MVNProbBatch(locs, kernel, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %d: batch %+v != sequential %+v", i, got[i], want[i])
		}
	}

	// The sequential-batch knob must not change the numbers either.
	seqCfg := cfg
	seqCfg.SequentialBatch = true
	s2 := NewSession(seqCfg)
	defer s2.Close()
	got2, err := s2.MVNProbBatch(locs, kernel, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Errorf("query %d: sequential-batch %+v != sequential %+v", i, got2[i], want[i])
		}
	}
}

func TestBatchMatchesSequentialTLR(t *testing.T) {
	locs := Grid(8, 8)
	kernel := KernelSpec{Family: "matern", Range: 0.15, Nu: 1.5}
	cfg := Config{Method: TLR, QMCSize: 800, TileSize: 16, TLRTol: 1e-8, TLRMaxRank: -1, Replicates: 2}
	queries := batchQueries(len(locs), 4)

	want := make([]Result, len(queries))
	for i, q := range queries {
		s := NewSession(cfg)
		r, err := s.MVNProb(locs, kernel, q.A, q.B)
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	s := NewSession(cfg)
	defer s.Close()
	got, err := s.MVNProbBatch(locs, kernel, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %d: batch %+v != sequential %+v", i, got[i], want[i])
		}
	}
}

func TestMVNProbCovBatch(t *testing.T) {
	rho := 0.5
	sigma := [][]float64{{1, rho}, {rho, 1}}
	s := NewSession(Config{QMCSize: 20000, TileSize: 2})
	defer s.Close()
	inf := math.Inf(1)
	queries := []Bounds{
		{A: []float64{-inf, -inf}, B: []float64{0, 0}},
		{A: []float64{-inf, -inf}, B: []float64{inf, inf}},
	}
	res, err := s.MVNProbCovBatch(sigma, queries)
	if err != nil {
		t.Fatal(err)
	}
	orthant := 0.25 + math.Asin(rho)/(2*math.Pi)
	if math.Abs(res[0].Prob-orthant) > 2e-3 {
		t.Errorf("orthant %v, want %v", res[0].Prob, orthant)
	}
	if math.Abs(res[1].Prob-1) > 1e-12 {
		t.Errorf("whole-space probability %v, want 1", res[1].Prob)
	}
	// Same matrix again: the factor must come from the cache.
	if _, err := s.MVNProbCovBatch(sigma, queries[:1]); err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.Cache().Stats(); hits != 1 {
		t.Errorf("cov re-query hits = %d, want 1", hits)
	}
}

func TestFactorCacheHitMiss(t *testing.T) {
	locs := Grid(4, 4)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = 1
	}
	k1 := KernelSpec{Family: "exponential", Range: 0.1}
	k2 := KernelSpec{Family: "exponential", Range: 0.2}

	s := NewSession(Config{QMCSize: 200, TileSize: 8})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.MVNProb(locs, k1, a, b); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := s.Cache().Stats(); hits != 2 || misses != 1 {
		t.Errorf("after 3 identical queries: hits %d misses %d, want 2/1", hits, misses)
	}
	if _, err := s.MVNProb(locs, k2, a, b); err != nil {
		t.Fatal(err)
	}
	if hits, misses := s.Cache().Stats(); hits != 2 || misses != 2 {
		t.Errorf("different kernel must miss: hits %d misses %d, want 2/2", hits, misses)
	}
	if s.Cache().Len() != 2 {
		t.Errorf("cache holds %d factors, want 2", s.Cache().Len())
	}
	s.Cache().Purge()
	if s.Cache().Len() != 0 {
		t.Errorf("cache not empty after purge: %d", s.Cache().Len())
	}
	if _, err := s.MVNProb(locs, k1, a, b); err != nil {
		t.Fatal(err)
	}
	if _, misses := s.Cache().Stats(); misses != 3 {
		t.Errorf("post-purge query must re-factorize: misses %d, want 3", misses)
	}
}

func TestFactorCacheLRUEviction(t *testing.T) {
	locs := Grid(4, 4)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = 1
	}
	s := NewSession(Config{QMCSize: 100, TileSize: 8, FactorCacheCap: 2})
	defer s.Close()
	ranges := []float64{0.1, 0.2, 0.3}
	for _, r := range ranges {
		if _, err := s.MVNProb(locs, KernelSpec{Range: r}, a, b); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Cache().Len(); got != 2 {
		t.Errorf("cache holds %d factors, want cap 2", got)
	}
	// Range 0.1 was least recently used and must have been evicted; 0.3
	// must still be resident.
	if _, err := s.MVNProb(locs, KernelSpec{Range: 0.3}, a, b); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.Cache().Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("after touching resident key: hits %d misses %d, want 1/3", hits, misses)
	}
	if _, err := s.MVNProb(locs, KernelSpec{Range: 0.1}, a, b); err != nil {
		t.Fatal(err)
	}
	if _, misses := s.Cache().Stats(); misses != 4 {
		t.Errorf("evicted key must re-factorize: misses %d, want 4", misses)
	}
}

func TestFactorCacheKernelSpecNormalization(t *testing.T) {
	locs := Grid(4, 4)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = 1
	}
	s := NewSession(Config{QMCSize: 100, TileSize: 8})
	defer s.Close()
	// All four specs build the same exponential kernel.
	specs := []KernelSpec{
		{Range: 0.1},
		{Family: "exponential", Range: 0.1},
		{Range: 0.1, Sigma2: 1},
		{Family: "exponential", Range: 0.1, Sigma2: 1, Nu: 2.5},
	}
	for _, spec := range specs {
		if _, err := s.MVNProb(locs, spec, a, b); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := s.Cache().Stats(); hits != 3 || misses != 1 {
		t.Errorf("equivalent specs must share a factor: hits %d misses %d, want 3/1", hits, misses)
	}
}

func TestBatchValidatesBeforeFactorizing(t *testing.T) {
	s := NewSession(Config{QMCSize: 100, TileSize: 8})
	defer s.Close()
	locs := Grid(3, 3)
	short := make([]float64, 5)
	if _, err := s.MVNProbBatch(locs, KernelSpec{Range: 0.1}, []Bounds{{A: short, B: short}}); err == nil {
		t.Fatal("want error for short limits")
	}
	// The mis-sized query must have been rejected before any factor was
	// built or cached.
	if _, misses := s.Cache().Stats(); misses != 0 {
		t.Errorf("invalid query caused %d factorization(s)", misses)
	}
	if s.Cache().Len() != 0 {
		t.Errorf("invalid query left %d cache entries", s.Cache().Len())
	}
}

func TestNoFactorCacheConfig(t *testing.T) {
	locs := Grid(4, 4)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range b {
		a[i] = -1
		b[i] = 1
	}
	s := NewSession(Config{QMCSize: 200, TileSize: 8, NoFactorCache: true})
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.MVNProb(locs, KernelSpec{Range: 0.1}, a, b); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := s.Cache().Stats(); hits != 0 || misses != 0 {
		t.Errorf("disabled cache recorded traffic: hits %d misses %d", hits, misses)
	}
}

func TestBatchValidation(t *testing.T) {
	s := NewSession(Config{QMCSize: 100, TileSize: 8})
	defer s.Close()
	locs := Grid(3, 3)
	good := make([]float64, 9)
	if _, err := s.MVNProbBatch(locs, KernelSpec{Range: 0.1}, []Bounds{{A: good, B: good[:5]}}); err == nil {
		t.Error("want error for short limits in a batch query")
	}
	if _, err := s.MVNProbBatch(locs, KernelSpec{Range: -1}, nil); err == nil {
		t.Error("want error for invalid kernel")
	}
	res, err := s.MVNProbBatch(locs, KernelSpec{Range: 0.1}, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: res %v err %v", res, err)
	}
}

// TestConcurrentSessionUse hammers one session from many goroutines — mixed
// cache hits, a concurrent first factorization, and parallel query graphs —
// and checks every goroutine sees the same deterministic results. Run under
// -race this is the session-concurrency safety test.
func TestConcurrentSessionUse(t *testing.T) {
	locs := Grid(6, 6)
	kernels := []KernelSpec{
		{Family: "exponential", Range: 0.1},
		{Family: "exponential", Range: 0.3},
	}
	cfg := Config{QMCSize: 500, TileSize: 12, Replicates: 2}
	queries := batchQueries(len(locs), 2)

	// Reference values from isolated sessions.
	want := make([][]Result, len(kernels))
	for ki, k := range kernels {
		want[ki] = make([]Result, len(queries))
		for qi, q := range queries {
			s := NewSession(cfg)
			r, err := s.MVNProb(locs, k, q.A, q.B)
			s.Close()
			if err != nil {
				t.Fatal(err)
			}
			want[ki][qi] = r
		}
	}

	s := NewSession(cfg)
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				ki := (g + it) % len(kernels)
				qi := (g + it) % len(queries)
				r, err := s.MVNProb(locs, kernels[ki], queries[qi].A, queries[qi].B)
				if err != nil {
					errs <- err
					return
				}
				if r != want[ki][qi] {
					t.Errorf("goroutine %d: got %+v, want %+v", g, r, want[ki][qi])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All 24 calls over 2 distinct factors: exactly 2 misses.
	if _, misses := s.Cache().Stats(); misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
}

// TestInvalidKernelSpecDoesNotPolluteCache: malformed specs must fail fast
// without occupying (and evicting from) the bounded factor cache.
func TestInvalidKernelSpecDoesNotPolluteCache(t *testing.T) {
	s := NewSession(Config{TileSize: 8, QMCSize: 50})
	defer s.Close()
	locs := Grid(4, 4)
	a := make([]float64, len(locs))
	b := make([]float64, len(locs))
	for _, bad := range []KernelSpec{
		{Family: "nope", Range: 0.2},
		{Family: "matern", Range: 0.2}, // Nu missing
		{Family: "exponential"},        // Range missing
	} {
		if _, err := s.MVNProb(locs, bad, a, b); err == nil {
			t.Errorf("spec %+v: want error", bad)
		}
	}
	if n := s.Cache().Len(); n != 0 {
		t.Errorf("invalid specs left %d cache entries, want 0", n)
	}
	if hits, misses := s.Cache().Stats(); hits != 0 || misses != 0 {
		t.Errorf("invalid specs touched the cache: %d hits / %d misses", hits, misses)
	}
}
