package parmvn

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/mvn"
)

// factorKey identifies one factorization: what matrix was factorized (a
// content hash of the locations or of the explicit covariance entries, plus
// the kernel for the assembled path) and how (method, tile size, TLR
// accuracy). Two queries with equal keys can share one Cholesky factor; the
// 128-bit content hash plus the dimension makes an accidental collision —
// which would silently serve the wrong factor — astronomically unlikely.
type factorKey struct {
	kind    byte      // 'k' = kernel at locations, 'c' = explicit matrix content
	hash    [2]uint64 // FNV-1a/128 over the defining float64 bits
	n       int       // problem dimension, cheap collision guard
	kernel  KernelSpec
	method  Method
	tile    int
	tol     float64
	maxRank int
	// Adaptive-policy thresholds; zero for the other methods so their keys
	// are unaffected.
	band             int
	rankFrac, f32Cut float64
}

// cacheEntry builds its factor exactly once; concurrent requesters for the
// same key block on the first build instead of duplicating it. done flips
// after the build, opening the allocation-free hit fast path.
type cacheEntry struct {
	once    sync.Once
	f       mvn.Factor
	err     error
	done    atomic.Bool
	lastUse int64 // LRU stamp, guarded by FactorCache.mu
}

// FactorCache memoizes Cholesky factors (dense tiled or TLR) across the
// queries of a Session, so a batch of MVN probabilities against one
// covariance pays the factorization cost once. Keys combine a content hash
// of the inputs with every configuration knob that changes the factor;
// entries whose build failed stay cached (factorization errors, e.g. a
// non-SPD matrix, are deterministic). The cache holds at most cap factors
// (least-recently-used eviction; cap ≤ 0 means unbounded), since a dense
// factor is O(n²) memory and workflows that stream ever-new covariances
// would otherwise grow the session without limit. Safe for concurrent use.
type FactorCache struct {
	mu      sync.Mutex
	cap     int
	tick    int64
	entries map[factorKey]*cacheEntry
	hits    int
	misses  int
}

func newFactorCache(cap int) *FactorCache {
	return &FactorCache{cap: cap, entries: map[factorKey]*cacheEntry{}}
}

// lookupDone returns the entry for key when its factor is already built,
// recording a cache hit — the warm-query fast path, which performs no
// allocation. It returns nil on a miss or while the first build is still in
// flight; callers then take getOrBuild (whose build closure is the only
// allocation, paid on the cold path).
func (c *FactorCache) lookupDone(key factorKey) *cacheEntry {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || !e.done.Load() {
		c.mu.Unlock()
		return nil
	}
	c.hits++
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	return e
}

// getOrBuild returns the factor for key, invoking build at most once per key
// across all goroutines.
func (c *FactorCache) getOrBuild(key factorKey, build func() (mvn.Factor, error)) (mvn.Factor, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
		if c.cap > 0 && len(c.entries) > c.cap {
			c.evictOldest(key)
		}
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	e.once.Do(func() {
		e.f, e.err = build()
		e.done.Store(true)
	})
	return e.f, e.err
}

// evictOldest removes the least-recently-used entry other than keep. A
// build still running on an evicted entry completes normally for its
// waiters; the entry is simply no longer findable. Called with mu held.
func (c *FactorCache) evictOldest(keep factorKey) {
	var victim factorKey
	var vAge int64 = math.MaxInt64
	found := false
	for k, e := range c.entries {
		if k != keep && e.lastUse < vAge {
			victim, vAge, found = k, e.lastUse, true
		}
	}
	if found {
		delete(c.entries, victim)
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *FactorCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached factors.
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached factor (the counters are kept).
func (c *FactorCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[factorKey]*cacheEntry{}
}

// fnv128a is an inline 128-bit FNV-1a hash (identical output to
// hash/fnv.New128a over the same byte stream) without the stdlib's
// per-query Sum allocation — content hashing runs on every warm query, so
// the cache key must be allocation-free.
type fnv128a struct{ hi, lo uint64 }

const fnvPrimeLo128 = 0x13b // FNV-128 prime is 2^88 + 0x13b

func newFNV128a() fnv128a {
	return fnv128a{hi: 0x6c62272e07bb0142, lo: 0x62b821756295c58d}
}

// writeFloat absorbs the little-endian bytes of v's bit pattern.
func (h *fnv128a) writeFloat(v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		h.lo ^= uint64(byte(u >> (8 * i)))
		// state *= 2^88 + 0x13b (mod 2^128): the 2^88 term folds the low
		// word's bottom 40 bits into the high word.
		carry, lo := bits.Mul64(h.lo, fnvPrimeLo128)
		h.hi = h.hi*fnvPrimeLo128 + carry + h.lo<<24
		h.lo = lo
	}
}

func (h *fnv128a) sum() [2]uint64 { return [2]uint64{h.hi, h.lo} }

// hashPoints content-hashes a location set.
func hashPoints(locs []Point) [2]uint64 {
	h := newFNV128a()
	for _, p := range locs {
		h.writeFloat(p.X)
		h.writeFloat(p.Y)
	}
	return h.sum()
}

// hashMatrix content-hashes a dense matrix column by column.
func hashMatrix(m *linalg.Matrix) [2]uint64 {
	h := newFNV128a()
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			h.writeFloat(v)
		}
	}
	return h.sum()
}

// key assembles the cache key for the session's current configuration.
func (s *Session) key(kind byte, hash [2]uint64, n int, spec KernelSpec) factorKey {
	k := factorKey{
		kind: kind, hash: hash, n: n, kernel: spec,
		method: s.cfg.Method, tile: s.cfg.TileSize,
		tol: s.cfg.TLRTol, maxRank: s.cfg.TLRMaxRank,
	}
	if s.cfg.Method == MethodAdaptive {
		k.band = s.cfg.AdaptiveBand
		k.rankFrac = s.cfg.AdaptiveRankFrac
		k.f32Cut = s.cfg.AdaptiveF32Norm
	}
	return k
}

// factorForKernel returns the (possibly cached) factor of the covariance of
// spec's kernel at locs; the kernel itself is only built — and Σ only
// assembled — on a cache miss, so a warm query pays nothing but the content
// hash and the lookup. The spec is normalized before keying so equivalent
// specs (defaulted Sigma2, implicit exponential family, family-irrelevant
// Nu) share a factor.
func (s *Session) factorForKernel(locs []Point, spec KernelSpec) (mvn.Factor, error) {
	// Reject malformed specs before keying: error entries must not occupy
	// the bounded cache and evict real factors.
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if s.cfg.NoFactorCache {
		return s.buildKernelFactor(locs, spec)
	}
	key := s.key('k', hashPoints(locs), len(locs), spec.normalized())
	if e := s.cache.lookupDone(key); e != nil {
		return e.f, e.err
	}
	// Cold path only: the build closure below is the single allocation the
	// cache layer ever makes per query, and it is never reached warm.
	return s.cache.getOrBuild(key, func() (mvn.Factor, error) {
		return s.buildKernelFactor(locs, spec)
	})
}

// buildKernelFactor builds the kernel from its spec and factorizes its
// covariance at locs (the cache-miss path).
func (s *Session) buildKernelFactor(locs []Point, spec KernelSpec) (mvn.Factor, error) {
	k, err := spec.build()
	if err != nil {
		return nil, err
	}
	return s.factorizeKernel(toGeom(locs), k)
}

// factorForSigma returns the (possibly cached) factor of an explicit matrix,
// keyed by its content hash.
func (s *Session) factorForSigma(sigma *linalg.Matrix) (mvn.Factor, error) {
	if s.cfg.NoFactorCache {
		return s.factorize(sigma)
	}
	key := s.key('c', hashMatrix(sigma), sigma.Rows, KernelSpec{})
	if e := s.cache.lookupDone(key); e != nil {
		return e.f, e.err
	}
	return s.cache.getOrBuild(key, func() (mvn.Factor, error) { return s.factorize(sigma) })
}
