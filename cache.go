package parmvn

import (
	"hash"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/cov"
	"repro/internal/linalg"
	"repro/internal/mvn"
)

// factorKey identifies one factorization: what matrix was factorized (a
// content hash of the locations or of the explicit covariance entries, plus
// the kernel for the assembled path) and how (method, tile size, TLR
// accuracy). Two queries with equal keys can share one Cholesky factor; the
// 128-bit content hash plus the dimension makes an accidental collision —
// which would silently serve the wrong factor — astronomically unlikely.
type factorKey struct {
	kind    byte      // 'k' = kernel at locations, 'c' = explicit matrix content
	hash    [2]uint64 // FNV-1a/128 over the defining float64 bits
	n       int       // problem dimension, cheap collision guard
	kernel  KernelSpec
	method  Method
	tile    int
	tol     float64
	maxRank int
	// Adaptive-policy thresholds; zero for the other methods so their keys
	// are unaffected.
	band             int
	rankFrac, f32Cut float64
}

// cacheEntry builds its factor exactly once; concurrent requesters for the
// same key block on the first build instead of duplicating it.
type cacheEntry struct {
	once    sync.Once
	f       mvn.Factor
	err     error
	lastUse int64 // LRU stamp, guarded by FactorCache.mu
}

// FactorCache memoizes Cholesky factors (dense tiled or TLR) across the
// queries of a Session, so a batch of MVN probabilities against one
// covariance pays the factorization cost once. Keys combine a content hash
// of the inputs with every configuration knob that changes the factor;
// entries whose build failed stay cached (factorization errors, e.g. a
// non-SPD matrix, are deterministic). The cache holds at most cap factors
// (least-recently-used eviction; cap ≤ 0 means unbounded), since a dense
// factor is O(n²) memory and workflows that stream ever-new covariances
// would otherwise grow the session without limit. Safe for concurrent use.
type FactorCache struct {
	mu      sync.Mutex
	cap     int
	tick    int64
	entries map[factorKey]*cacheEntry
	hits    int
	misses  int
}

func newFactorCache(cap int) *FactorCache {
	return &FactorCache{cap: cap, entries: map[factorKey]*cacheEntry{}}
}

// getOrBuild returns the factor for key, invoking build at most once per key
// across all goroutines.
func (c *FactorCache) getOrBuild(key factorKey, build func() (mvn.Factor, error)) (mvn.Factor, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
		if c.cap > 0 && len(c.entries) > c.cap {
			c.evictOldest(key)
		}
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	e.once.Do(func() { e.f, e.err = build() })
	return e.f, e.err
}

// evictOldest removes the least-recently-used entry other than keep. A
// build still running on an evicted entry completes normally for its
// waiters; the entry is simply no longer findable. Called with mu held.
func (c *FactorCache) evictOldest(keep factorKey) {
	var victim factorKey
	var vAge int64 = math.MaxInt64
	found := false
	for k, e := range c.entries {
		if k != keep && e.lastUse < vAge {
			victim, vAge, found = k, e.lastUse, true
		}
	}
	if found {
		delete(c.entries, victim)
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *FactorCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached factors.
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached factor (the counters are kept).
func (c *FactorCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[factorKey]*cacheEntry{}
}

// hashPoints content-hashes a location set.
func hashPoints(locs []Point) [2]uint64 {
	h := fnv.New128a()
	var buf [16]byte
	for _, p := range locs {
		putFloat(buf[:8], p.X)
		putFloat(buf[8:], p.Y)
		h.Write(buf[:])
	}
	return sum128(h)
}

// hashMatrix content-hashes a dense matrix column by column.
func hashMatrix(m *linalg.Matrix) [2]uint64 {
	h := fnv.New128a()
	var buf [8]byte
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			putFloat(buf[:], v)
			h.Write(buf[:])
		}
	}
	return sum128(h)
}

func sum128(h hash.Hash) [2]uint64 {
	var out [2]uint64
	for i, c := range h.Sum(nil) {
		out[i/8] = out[i/8]<<8 | uint64(c)
	}
	return out
}

func putFloat(b []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

// key assembles the cache key for the session's current configuration.
func (s *Session) key(kind byte, hash [2]uint64, n int, spec KernelSpec) factorKey {
	k := factorKey{
		kind: kind, hash: hash, n: n, kernel: spec,
		method: s.cfg.Method, tile: s.cfg.TileSize,
		tol: s.cfg.TLRTol, maxRank: s.cfg.TLRMaxRank,
	}
	if s.cfg.Method == MethodAdaptive {
		k.band = s.cfg.AdaptiveBand
		k.rankFrac = s.cfg.AdaptiveRankFrac
		k.f32Cut = s.cfg.AdaptiveF32Norm
	}
	return k
}

// factorForKernel returns the (possibly cached) factor of the covariance of
// kernel k at locs. Assembly of Σ itself is also skipped on a cache hit.
// The spec is normalized before keying so equivalent specs (defaulted
// Sigma2, implicit exponential family, family-irrelevant Nu) share a factor.
func (s *Session) factorForKernel(locs []Point, spec KernelSpec, k cov.Kernel) (mvn.Factor, error) {
	build := func() (mvn.Factor, error) {
		return s.factorizeKernel(toGeom(locs), k)
	}
	if s.cfg.NoFactorCache {
		return build()
	}
	return s.cache.getOrBuild(s.key('k', hashPoints(locs), len(locs), spec.normalized()), build)
}

// factorForSigma returns the (possibly cached) factor of an explicit matrix,
// keyed by its content hash.
func (s *Session) factorForSigma(sigma *linalg.Matrix) (mvn.Factor, error) {
	build := func() (mvn.Factor, error) { return s.factorize(sigma) }
	if s.cfg.NoFactorCache {
		return build()
	}
	return s.cache.getOrBuild(s.key('c', hashMatrix(sigma), sigma.Rows, KernelSpec{}), build)
}
