package parmvn

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/mvn"
)

// factorKey identifies one factorization: what matrix was factorized (a
// content hash of the locations or of the explicit covariance entries, plus
// the kernel for the assembled path) and how (method, tile size, TLR
// accuracy). Two queries with equal keys can share one Cholesky factor; the
// 128-bit content hash plus the dimension makes an accidental collision —
// which would silently serve the wrong factor — astronomically unlikely.
type factorKey struct {
	kind    byte      // 'k' = kernel at locations, 'c' = explicit matrix content
	hash    [2]uint64 // FNV-1a/128 over the defining float64 bits
	n       int       // problem dimension, cheap collision guard
	kernel  KernelSpec
	method  Method
	tile    int
	tol     float64
	maxRank int
	// Adaptive-policy thresholds; zero for the other methods so their keys
	// are unaffected.
	band             int
	rankFrac, f32Cut float64
}

// cacheEntry builds its factor exactly once; concurrent requesters for the
// same key block on the first build instead of duplicating it. done flips
// after the build, opening the allocation-free hit fast path, and ready is
// closed at the same moment so observers (FactorState) can wait for an
// in-flight build without joining it.
type cacheEntry struct {
	once    sync.Once
	f       mvn.Factor
	err     error
	done    atomic.Bool
	ready   chan struct{}
	lastUse int64 // LRU stamp, guarded by FactorCache.mu
}

// FactorCache memoizes Cholesky factors (dense tiled or TLR) across the
// queries of a Session, so a batch of MVN probabilities against one
// covariance pays the factorization cost once. Keys combine a content hash
// of the inputs with every configuration knob that changes the factor;
// entries whose build failed stay cached (factorization errors, e.g. a
// non-SPD matrix, are deterministic). The cache holds at most cap factors
// (least-recently-used eviction; cap ≤ 0 means unbounded), since a dense
// factor is O(n²) memory and workflows that stream ever-new covariances
// would otherwise grow the session without limit. Safe for concurrent use.
type FactorCache struct {
	mu      sync.Mutex
	cap     int
	tick    int64
	entries map[factorKey]*cacheEntry
	hits    int
	misses  int
}

func newFactorCache(cap int) *FactorCache {
	return &FactorCache{cap: cap, entries: map[factorKey]*cacheEntry{}}
}

// lookupDone returns the entry for key when its factor is already built,
// recording a cache hit — the warm-query fast path, which performs no
// allocation. It returns nil on a miss or while the first build is still in
// flight; callers then take getOrBuild (whose build closure is the only
// allocation, paid on the cold path).
//repro:noalloc
func (c *FactorCache) lookupDone(key factorKey) *cacheEntry {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || !e.done.Load() {
		c.mu.Unlock()
		return nil
	}
	c.hits++
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	return e
}

// getOrBuild returns the factor for key, invoking build at most once per key
// across all goroutines.
func (c *FactorCache) getOrBuild(key factorKey, build func() (mvn.Factor, error)) (mvn.Factor, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &cacheEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.misses++
		if c.cap > 0 && len(c.entries) > c.cap {
			c.evictOldest(key)
		}
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	e.once.Do(func() {
		e.f, e.err = build()
		e.done.Store(true)
		close(e.ready)
	})
	return e.f, e.err
}

// install inserts an already-built factor — deserialized from a persistent
// store — as a done entry, opening the warm-query fast path for its key
// without any factorization. An existing entry (built, building or failed)
// is left untouched: the cache's exactly-once build discipline must not be
// upset by a concurrent warm load. Reports whether the factor was
// installed. Counted as neither hit nor miss; the serving layer counts
// store loads separately.
func (c *FactorCache) install(key factorKey, f mvn.Factor) bool {
	e := &cacheEntry{ready: make(chan struct{}), f: f}
	e.once.Do(func() {}) // consume the build slot: f is already set
	e.done.Store(true)
	close(e.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.entries[key] = e
	c.tick++
	e.lastUse = c.tick
	if c.cap > 0 && len(c.entries) > c.cap {
		c.evictOldest(key)
	}
	return true
}

// state reports whether key's factor is absent, mid-build or built; while a
// build is in flight it also returns the channel closed at its completion.
func (c *FactorCache) state(key factorKey) (FactorStatus, <-chan struct{}) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	switch {
	case !ok:
		return FactorAbsent, nil
	case e.done.Load():
		return FactorReady, nil
	default:
		return FactorBuilding, e.ready
	}
}

// evictOldest removes the least-recently-used done entry other than keep.
// Entries whose build is still in flight are victims of last resort:
// evicting a Building entry makes a concurrent FactorState report
// FactorAbsent while the build it would have coalesced onto is still
// running, so the serving layer burns a second factorization admission
// slot for nothing. Only when every other entry is mid-build does the LRU
// fall back to evicting one (the cache cap is a hard bound); a build still
// running on an evicted entry completes normally for its waiters — the
// entry is simply no longer findable. Called with mu held.
func (c *FactorCache) evictOldest(keep factorKey) {
	var victim factorKey
	var vAge int64 = math.MaxInt64
	found, victimDone := false, false
	for k, e := range c.entries {
		if k == keep {
			continue
		}
		done := e.done.Load()
		// A done entry always beats a building one; within a class, oldest
		// last use wins.
		if done != victimDone {
			if !done {
				continue
			}
		} else if e.lastUse >= vAge {
			continue
		}
		victim, vAge, found, victimDone = k, e.lastUse, true, done
	}
	if found {
		delete(c.entries, victim)
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *FactorCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached factors.
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached factor (the counters are kept).
func (c *FactorCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[factorKey]*cacheEntry{}
}

// fnv128a is an inline 128-bit FNV-1a hash (identical output to
// hash/fnv.New128a over the same byte stream) without the stdlib's
// per-query Sum allocation — content hashing runs on every warm query, so
// the cache key must be allocation-free.
type fnv128a struct{ hi, lo uint64 }

const fnvPrimeLo128 = 0x13b // FNV-128 prime is 2^88 + 0x13b

//repro:noalloc
func newFNV128a() fnv128a {
	return fnv128a{hi: 0x6c62272e07bb0142, lo: 0x62b821756295c58d}
}

// writeFloat absorbs the little-endian bytes of v's bit pattern.
//repro:noalloc
func (h *fnv128a) writeFloat(v float64) { h.writeUint(math.Float64bits(v)) }

// writeUint absorbs the little-endian bytes of u.
//repro:noalloc
func (h *fnv128a) writeUint(u uint64) {
	for i := 0; i < 8; i++ {
		h.lo ^= uint64(byte(u >> (8 * i)))
		// state *= 2^88 + 0x13b (mod 2^128): the 2^88 term folds the low
		// word's bottom 40 bits into the high word.
		carry, lo := bits.Mul64(h.lo, fnvPrimeLo128)
		h.hi = h.hi*fnvPrimeLo128 + carry + h.lo<<24
		h.lo = lo
	}
}

//repro:noalloc
func (h *fnv128a) sum() [2]uint64 { return [2]uint64{h.hi, h.lo} }

// hashPoints content-hashes a location set.
//repro:noalloc
func hashPoints(locs []Point) [2]uint64 {
	h := newFNV128a()
	for _, p := range locs {
		h.writeFloat(p.X)
		h.writeFloat(p.Y)
	}
	return h.sum()
}

// hashMatrix content-hashes a dense matrix column by column.
func hashMatrix(m *linalg.Matrix) [2]uint64 {
	h := newFNV128a()
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			h.writeFloat(v)
		}
	}
	return h.sum()
}

// key assembles the cache key under an effective (already defaulted)
// configuration.
//repro:noalloc
func (c Config) key(kind byte, hash [2]uint64, n int, spec KernelSpec) factorKey {
	k := factorKey{
		kind: kind, hash: hash, n: n, kernel: spec,
		method: c.Method, tile: c.TileSize,
		tol: c.TLRTol, maxRank: c.TLRMaxRank,
	}
	if c.Method == MethodAdaptive {
		k.band = c.AdaptiveBand
		k.rankFrac = c.AdaptiveRankFrac
		k.f32Cut = c.AdaptiveF32Norm
	}
	return k
}

// ProblemKey identifies one factorization problem — the covariance content
// (locations and kernel) plus every configuration knob that changes the
// factor — exactly as the session factor cache keys it. The type is opaque
// and comparable (usable as a map key); serving layers use it to route all
// requests for one problem to one place and to coalesce concurrent cold
// queries onto a single factorization. MVN and MVT queries over the same
// covariance share a key: the Cholesky factor does not depend on ν.
type ProblemKey struct{ k factorKey }

// Hash returns a well-mixed 64-bit digest of the key, suitable for sharding.
func (p ProblemKey) Hash() uint64 {
	h := newFNV128a()
	h.writeUint(p.k.hash[0])
	h.writeUint(p.k.hash[1])
	h.writeUint(uint64(p.k.kind)<<32 | uint64(uint32(p.k.n)))
	h.writeUint(uint64(p.k.method)<<32 | uint64(uint32(p.k.tile)))
	h.writeFloat(p.k.tol)
	h.writeUint(uint64(uint32(p.k.maxRank))<<32 | uint64(uint32(p.k.band)))
	h.writeFloat(p.k.rankFrac)
	h.writeFloat(p.k.f32Cut)
	for i := 0; i < len(p.k.kernel.Family); i++ {
		h.writeUint(uint64(p.k.kernel.Family[i]))
	}
	h.writeFloat(p.k.kernel.Sigma2)
	h.writeFloat(p.k.kernel.Range)
	h.writeFloat(p.k.kernel.Nu)
	h.writeFloat(p.k.kernel.Nugget)
	s := h.sum()
	return s[0] ^ s[1]
}

// ProblemKey returns the key under which a session built from this
// configuration caches the factor for spec's kernel at locs, or an error for
// an invalid spec. The configuration is defaulted first, so pass the same
// raw Config later given to NewSession; keys computed here and keys the
// session uses then agree. This lets a serving layer pick a shard (Hash)
// before any session exists.
func (c Config) ProblemKey(locs []Point, spec KernelSpec) (ProblemKey, error) {
	if err := spec.validate(); err != nil {
		return ProblemKey{}, err
	}
	return ProblemKey{c.withDefaults().key('k', hashPoints(locs), len(locs), spec.normalized())}, nil
}

// ProblemKey returns the factor-cache key for spec's kernel at locs under
// the session's effective configuration.
func (s *Session) ProblemKey(locs []Point, spec KernelSpec) (ProblemKey, error) {
	if err := spec.validate(); err != nil {
		return ProblemKey{}, err
	}
	return ProblemKey{s.cfg.key('k', hashPoints(locs), len(locs), spec.normalized())}, nil
}

// FactorStatus is the cache state of one problem's factorization.
type FactorStatus int

// Factor cache states, in build order.
const (
	// FactorAbsent: nothing cached — the next query factorizes (and a
	// serving layer should charge it against its factorization budget).
	FactorAbsent FactorStatus = iota
	// FactorBuilding: a factorization is in flight; queries issued now
	// block on its completion rather than duplicating it.
	FactorBuilding
	// FactorReady: the factor (or its deterministic failure) is cached and
	// queries against it run warm.
	FactorReady
)

// FactorState reports whether k's factor is absent, being built or ready.
// While a build is in flight the returned channel is closed when it
// completes (successfully or not), letting a serving layer coalesce onto an
// existing factorization — wait for the channel, then query warm — instead
// of spending another factorization slot. The state is a snapshot: an
// Absent answer can be Building by the time the caller acts on it, but the
// session cache still builds each cached key at most once.
func (s *Session) FactorState(k ProblemKey) (FactorStatus, <-chan struct{}) {
	return s.cache.state(k.k)
}

// Prefactorize assembles, factorizes and caches the Cholesky factor for
// spec's kernel at locs without running a query — the cold-path hook for
// serving layers, which admission-control factorizations separately from the
// cheap warm queries. Concurrent calls for one key share a single build. A
// factorization failure (e.g. a non-SPD kernel matrix) is returned and also
// cached, deterministically, for subsequent queries.
func (s *Session) Prefactorize(locs []Point, spec KernelSpec) error {
	if len(locs) == 0 {
		return fmt.Errorf("parmvn: empty problem (dimension 0)")
	}
	if err := s.validateTileSize(len(locs)); err != nil {
		return err
	}
	_, err := s.factorForKernel(locs, spec)
	return err
}

// factorForKernel returns the (possibly cached) factor of the covariance of
// spec's kernel at locs; the kernel itself is only built — and Σ only
// assembled — on a cache miss, so a warm query pays nothing but the content
// hash and the lookup. The spec is normalized before keying so equivalent
// specs (defaulted Sigma2, implicit exponential family, family-irrelevant
// Nu) share a factor.
//repro:noalloc
func (s *Session) factorForKernel(locs []Point, spec KernelSpec) (mvn.Factor, error) {
	// Reject malformed specs before keying: error entries must not occupy
	// the bounded cache and evict real factors.
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if s.cfg.NoFactorCache {
		//repro:alloc-ok uncached sessions rebuild per query by configuration
		return s.buildKernelFactor(locs, spec)
	}
	key := s.cfg.key('k', hashPoints(locs), len(locs), spec.normalized())
	if e := s.cache.lookupDone(key); e != nil {
		return e.f, e.err
	}
	// Cold path only: the build closure below is the single allocation the
	// cache layer ever makes per query, and it is never reached warm.
	//repro:alloc-ok cache-miss path: the build closure is the one allocation per cold query
	return s.cache.getOrBuild(key, func() (mvn.Factor, error) {
		return s.buildKernelFactor(locs, spec)
	})
}

// buildKernelFactor builds the kernel from its spec and factorizes its
// covariance at locs (the cache-miss path).
func (s *Session) buildKernelFactor(locs []Point, spec KernelSpec) (mvn.Factor, error) {
	k, err := spec.build()
	if err != nil {
		return nil, err
	}
	return s.factorizeKernel(toGeom(locs), k)
}

// factorForSigma returns the (possibly cached) factor of an explicit matrix,
// keyed by its content hash.
func (s *Session) factorForSigma(sigma *linalg.Matrix) (mvn.Factor, error) {
	if s.cfg.NoFactorCache {
		return s.factorize(sigma)
	}
	key := s.cfg.key('c', hashMatrix(sigma), sigma.Rows, KernelSpec{})
	if e := s.cache.lookupDone(key); e != nil {
		return e.f, e.err
	}
	return s.cache.getOrBuild(key, func() (mvn.Factor, error) { return s.factorize(sigma) })
}
