// Package engine is the single tile-Cholesky task-graph builder of the
// repository: one right-looking POTRF/TRSM/SYRK/GEMM dependency graph,
// submitted once, whose kernels dispatch over polymorphic tile
// representations (dense float64, dense float32, low rank). The dense
// (Chameleon-style), TLR (HiCMA-style) and mixed-precision factorizations
// are thin layout constructors over this engine, and the per-tile adaptive
// representation the paper names as future work falls out of mixing
// representations freely within one grid.
//
// For out-of-core-shaped problems the engine also runs in streaming mode
// (PotrfStream): tiles are assembled from a kernel evaluator by per-tile
// tasks fused into the factorization graph, trailing tiles are compressed
// to low rank as soon as their last Schur update lands (right-looking
// eviction), and submission is windowed so task-descriptor memory stays
// bounded. See stream.go.
package engine

import (
	"fmt"
	"sync"

	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Grid is a square symmetric tiled matrix holding only its lower triangle,
// each tile in an arbitrary representation. After Potrf it holds the lower
// Cholesky factor in the same per-tile representations.
type Grid struct {
	N, TS, NT int
	tiles     [][]tile.Tile // tiles[i][j] valid for j ≤ i

	// owned marks grids whose dense tiles were drawn from the linalg
	// workspace pool by the engine itself (streaming assembly); only then
	// may eviction recycle a densified tile's buffer. Grids assembled by
	// callers alias caller storage and are never recycled.
	owned bool

	evictMu    sync.Mutex
	evicted    int
	evictFreed int64
}

// maxTileRows bounds the tile-count of a grid: beyond it the handle table
// and per-panel task fronts (O(NT²)) no longer fit any plausible host, so
// the engine refuses with a typed error instead of dying on allocation.
const maxTileRows = 1 << 20

// SizeError reports a grid whose tile count overflows what the engine (and
// its windowed scheduler) can cover.
type SizeError struct {
	N, TS, NT int
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("engine: grid n=%d ts=%d implies %d tile rows (max %d)", e.N, e.TS, e.NT, maxTileRows)
}

// NewGridChecked returns an empty n×n grid with tile size ts, or a
// *SizeError when n/ts implies a tile count past maxTileRows. The tile
// count is computed without the (n+ts-1) intermediate so n near MaxInt
// cannot overflow.
func NewGridChecked(n, ts int) (*Grid, error) {
	if n < 0 || ts <= 0 {
		return nil, fmt.Errorf("engine: invalid grid n=%d ts=%d", n, ts)
	}
	nt := n / ts
	if n%ts != 0 {
		nt++
	}
	if nt > maxTileRows {
		return nil, &SizeError{N: n, TS: ts, NT: nt}
	}
	g := &Grid{N: n, TS: ts, NT: nt, tiles: make([][]tile.Tile, nt)}
	for i := range g.tiles {
		g.tiles[i] = make([]tile.Tile, i+1)
	}
	return g, nil
}

// NewGrid returns an empty n×n grid with tile size ts; every tile must be
// assigned with Set before factorizing. It panics where NewGridChecked
// errors.
func NewGrid(n, ts int) *Grid {
	g, err := NewGridChecked(n, ts)
	if err != nil {
		panic(err.Error())
	}
	return g
}

// TileRows returns the number of rows of tile row i.
//repro:noalloc
func (g *Grid) TileRows(i int) int {
	if i == g.NT-1 {
		if r := g.N - i*g.TS; r > 0 {
			return r
		}
	}
	return min(g.TS, g.N)
}

// Set assigns tile (i,j), j ≤ i.
func (g *Grid) Set(i, j int, t tile.Tile) {
	if j > i || i >= g.NT || i < 0 || j < 0 {
		panic(fmt.Sprintf("engine: tile (%d,%d) outside lower triangle of %d grid", i, j, g.NT))
	}
	g.tiles[i][j] = t
}

// At returns tile (i,j), j ≤ i.
//repro:noalloc
func (g *Grid) At(i, j int) tile.Tile { return g.tiles[i][j] }

// Diag returns the dense float64 diagonal tile k; the engine requires
// diagonal tiles in that representation (they carry the Cholesky pivots).
//repro:noalloc
func (g *Grid) Diag(k int) *linalg.Matrix {
	d, ok := g.tiles[k][k].(*tile.DenseF64)
	if !ok {
		//repro:alloc-ok representation-violation panic path
		panic(fmt.Sprintf("engine: diagonal tile %d is not dense float64", k))
	}
	return d.D
}

// Mix counts the tiles of the lower triangle by representation — the
// footprint report behind the adaptive policy.
type Mix struct {
	Dense64, Dense32, LowRank int
	MaxRank                   int // largest low-rank tile rank
}

// Mix reports the grid's representation mix. Unassigned tiles are skipped,
// so it is meaningful mid-assembly too.
func (g *Grid) Mix() Mix {
	var m Mix
	for i := 0; i < g.NT; i++ {
		for j := 0; j <= i; j++ {
			switch t := g.tiles[i][j].(type) {
			case *tile.DenseF32:
				m.Dense32++
			case *tile.LowRank:
				m.LowRank++
				if r := t.Rank(); r > m.MaxRank {
					m.MaxRank = r
				}
			case *tile.DenseF64:
				m.Dense64++
			}
		}
	}
	return m
}

// Bytes reports the payload bytes of the grid's tiles in their current
// representations (8·r·c dense f64, 4·r·c dense f32, 8·k·(m+n) low rank) —
// the footprint the eviction and streaming paths exist to shrink.
// Unassigned tiles count zero.
//repro:noalloc
func (g *Grid) Bytes() int64 {
	var b int64
	for i := 0; i < g.NT; i++ {
		for j := 0; j <= i; j++ {
			switch t := g.tiles[i][j].(type) {
			case *tile.DenseF64:
				b += 8 * int64(t.D.Rows) * int64(t.D.Cols)
			case *tile.DenseF32:
				b += 4 * int64(t.D.Rows) * int64(t.D.Cols)
			case *tile.LowRank:
				b += 8 * int64(t.Rank()) * int64(t.M+t.N)
			}
		}
	}
	return b
}

// EvictStats reports how many trailing tiles right-looking eviction
// compressed during Potrf and the payload bytes that freed.
func (g *Grid) EvictStats() (tiles int, freedBytes int64) {
	g.evictMu.Lock()
	defer g.evictMu.Unlock()
	return g.evicted, g.evictFreed
}

// Config tunes the engine kernels and the factorization's memory policy.
type Config struct {
	// Tol is the recompression tolerance applied when a GEMM lands in a
	// low-rank destination tile, and the eviction compression tolerance.
	Tol float64
	// MaxRank caps low-rank tile ranks after recompression (0 = uncapped).
	MaxRank int
	// Band is the number of sub-diagonals eviction leaves dense (default 1);
	// tiles at i-j ≤ Band keep their representation.
	Band int
	// Evict enables right-looking compression eviction: a trailing dense
	// float64 tile is compressed to low rank at Tol as soon as its last
	// Schur update lands, before it becomes a panel operand. Compression is
	// kept only when it shrinks the tile.
	Evict bool
	// Window > 0 bounds submission to roughly Window panels of lookahead
	// (Window·NT² in-flight tasks), keeping task-descriptor memory O(Window·NT²)
	// instead of O(NT³). Zero submits the whole graph eagerly (historical
	// behavior).
	Window int
}

// minWindowTasks floors the windowed-submission limit so small grids never
// starve the workers: below this the throttle costs more than it saves.
const minWindowTasks = 1024

// Potrf factorizes the SPD matrix held by the grid in place: one task graph,
// the classical right-looking tile Cholesky, whatever each tile's
// representation —
//
//	POTRF(T[k][k])
//	TRSM(T[k][k], T[i][k])            i > k
//	SYRK(T[i][k], T[i][i])            i > k
//	GEMM(T[i][k], T[j][k], T[i][j])   i > j > k
//
// with critical-path (panel-first) priorities as StarPU heteroprio-style
// schedulers use. Kernel arithmetic per representation combination matches
// the historical dense, TLR and mixed-precision implementations exactly, so
// layout constructors routing through the engine reproduce their results
// bit for bit. Errors (non-positive-definite pivots) propagate through the
// submitter's SubmitErr/Err scope. Every tile must be assigned; cfg.Evict
// and cfg.Window apply here too (eviction never recycles caller-owned
// buffers).
func Potrf(rt taskrt.Submitter, g *Grid, cfg Config) error {
	return potrf(rt, g, cfg, nil)
}

// syrkInto applies D ← D − A·Aᵀ for the panel tile a into the dense float64
// diagonal tile d, in the representation-appropriate form.
func syrkInto(a tile.Tile, d *linalg.Matrix) {
	switch a := a.(type) {
	case *tile.DenseF64:
		linalg.Syrk(false, -1, a.D, 1, d)
	case *tile.DenseF32:
		// Diagonal updates run in double precision whatever the operand
		// (the banded mixed-precision semantics: destination chooses).
		w := getMat(a.D.Rows, a.D.Cols)
		a.D.ToDoubleInto(w)
		linalg.Syrk(false, -1, w, 1, d)
		putMat(w)
	case *tile.LowRank:
		k := a.Rank()
		if k == 0 {
			return
		}
		// D ← D − U·(VᵀV)·Uᵀ without densifying the tile.
		s := getMat(k, k)
		linalg.Gemm(true, false, 1, a.V, a.V, 0, s)
		us := getMat(a.M, k)
		linalg.Gemm(false, false, 1, a.U, s, 0, us)
		linalg.Gemm(false, true, -1, us, a.U, 1, d)
		putMat(us)
		putMat(s)
	}
}

// gemmInto applies C ← C − A·Bᵀ, dispatching on the destination
// representation: the destination decides the arithmetic (f64, f32 or
// low-rank concat-and-recompress), the operands are adapted to it. Operand
// conversions draw from the workspace pools (never the heap), so the tasks
// of a steady-state factorization allocate nothing here.
func gemmInto(a, b, c tile.Tile, cfg Config) {
	switch c := c.(type) {
	case *tile.DenseF64:
		gemmIntoDense64(a, b, c.D)
	case *tile.DenseF32:
		if ad, ok := a.(*tile.DenseF32); ok {
			gemm32RightOf(ad.D, b, c.D)
		} else {
			a32 := to32Pooled(a)
			gemm32RightOf(a32, b, c.D)
			tile.PutMat32(a32)
		}
	case *tile.LowRank:
		gemmIntoLowRank(a, b, c, cfg)
	}
}

// gemm32RightOf finishes dst −= A·Bᵀ in single precision once the left
// operand is already float32, adapting the right operand.
func gemm32RightOf(a32 *tile.Matrix32, b tile.Tile, dst *tile.Matrix32) {
	if bd, ok := b.(*tile.DenseF32); ok {
		tile.Gemm32(true, -1, a32, bd.D, dst)
		return
	}
	b32 := to32Pooled(b)
	tile.Gemm32(true, -1, a32, b32, dst)
	tile.PutMat32(b32)
}

// gemmIntoDense64 accumulates dst −= A·Bᵀ in double precision, using the
// cheap U·(…)·Vᵀ forms when an operand is low rank.
func gemmIntoDense64(a, b tile.Tile, dst *linalg.Matrix) {
	la, aIsLR := a.(*tile.LowRank)
	lb, bIsLR := b.(*tile.LowRank)
	switch {
	case aIsLR && bIsLR:
		ka, kb := la.Rank(), lb.Rank()
		if ka == 0 || kb == 0 {
			return
		}
		s := getMat(ka, kb)
		linalg.Gemm(true, false, 1, la.V, lb.V, 0, s)
		u2 := getMat(la.M, kb)
		linalg.Gemm(false, false, 1, la.U, s, 0, u2)
		linalg.Gemm(false, true, -1, u2, lb.U, 1, dst)
		putMat(u2)
		putMat(s)
	case aIsLR:
		if la.Rank() == 0 {
			return
		}
		if bd, ok := b.(*tile.DenseF64); ok {
			gemmLRxDense64(la, bd.D, dst)
		} else {
			bd := to64Pooled(b)
			gemmLRxDense64(la, bd, dst)
			putMat(bd)
		}
	case bIsLR:
		if lb.Rank() == 0 {
			return
		}
		if ad, ok := a.(*tile.DenseF64); ok {
			gemmDense64xLR(ad.D, lb, dst)
		} else {
			ad := to64Pooled(a)
			gemmDense64xLR(ad, lb, dst)
			putMat(ad)
		}
	default:
		if ad, ok := a.(*tile.DenseF64); ok {
			gemmDense64RightOf(ad.D, b, dst)
		} else {
			ad := to64Pooled(a)
			gemmDense64RightOf(ad, b, dst)
			putMat(ad)
		}
	}
}

// gemmLRxDense64 applies dst −= U_a·(B·V_a)ᵀ for low-rank A, dense B.
func gemmLRxDense64(la *tile.LowRank, bd, dst *linalg.Matrix) {
	w := getMat(bd.Rows, la.Rank())
	linalg.Gemm(false, false, 1, bd, la.V, 0, w)
	linalg.Gemm(false, true, -1, la.U, w, 1, dst)
	putMat(w)
}

// gemmDense64xLR applies dst −= (A·V_b)·U_bᵀ for dense A, low-rank B.
func gemmDense64xLR(ad *linalg.Matrix, lb *tile.LowRank, dst *linalg.Matrix) {
	w := getMat(ad.Rows, lb.Rank())
	linalg.Gemm(false, false, 1, ad, lb.V, 0, w)
	linalg.Gemm(false, true, -1, w, lb.U, 1, dst)
	putMat(w)
}

// gemmDense64RightOf finishes dst −= A·Bᵀ once the left operand is already
// dense float64, adapting the right operand.
func gemmDense64RightOf(ad *linalg.Matrix, b tile.Tile, dst *linalg.Matrix) {
	if bd, ok := b.(*tile.DenseF64); ok {
		linalg.Gemm(false, true, -1, ad, bd.D, 1, dst)
		return
	}
	bd := to64Pooled(b)
	linalg.Gemm(false, true, -1, ad, bd, 1, dst)
	putMat(bd)
}

// gemmIntoLowRank accumulates the Schur update into a low-rank destination
// by factor concatenation and recompression.
func gemmIntoLowRank(a, b tile.Tile, c *tile.LowRank, cfg Config) {
	la, aIsLR := a.(*tile.LowRank)
	lb, bIsLR := b.(*tile.LowRank)
	switch {
	case aIsLR && bIsLR:
		// C ← C − U_a·(V_aᵀ·V_b)·U_bᵀ (the HiCMA GEMM).
		ka, kb := la.Rank(), lb.Rank()
		if ka == 0 || kb == 0 {
			return
		}
		s := getMat(ka, kb)
		linalg.Gemm(true, false, 1, la.V, lb.V, 0, s)
		u2 := getMat(la.M, kb)
		linalg.Gemm(false, false, 1, la.U, s, 0, u2)
		c.AddLowRank(-1, u2, lb.U, cfg.Tol, cfg.MaxRank)
		putMat(u2)
		putMat(s)
	case aIsLR:
		if la.Rank() == 0 {
			return
		}
		if bd, ok := b.(*tile.DenseF64); ok {
			gemmLRxDenseIntoLR(la, bd.D, c, cfg)
		} else {
			bd := to64Pooled(b)
			gemmLRxDenseIntoLR(la, bd, c, cfg)
			putMat(bd)
		}
	case bIsLR:
		if lb.Rank() == 0 {
			return
		}
		if ad, ok := a.(*tile.DenseF64); ok {
			gemmDensexLRIntoLR(ad.D, lb, c, cfg)
		} else {
			ad := to64Pooled(a)
			gemmDensexLRIntoLR(ad, lb, c, cfg)
			putMat(ad)
		}
	default:
		if ad, ok := a.(*tile.DenseF64); ok {
			gemmDenseDenseIntoLR(ad.D, b, c, cfg)
		} else {
			ad := to64Pooled(a)
			gemmDenseDenseIntoLR(ad, b, c, cfg)
			putMat(ad)
		}
	}
}

// gemmLRxDenseIntoLR folds the rank-k_a update U_a·(B·V_a)ᵀ into c.
func gemmLRxDenseIntoLR(la *tile.LowRank, bd *linalg.Matrix, c *tile.LowRank, cfg Config) {
	w := getMat(bd.Rows, la.Rank())
	linalg.Gemm(false, false, 1, bd, la.V, 0, w)
	c.AddLowRank(-1, la.U, w, cfg.Tol, cfg.MaxRank)
	putMat(w)
}

// gemmDensexLRIntoLR folds the rank-k_b update (A·V_b)·U_bᵀ into c.
func gemmDensexLRIntoLR(ad *linalg.Matrix, lb *tile.LowRank, c *tile.LowRank, cfg Config) {
	w := getMat(ad.Rows, lb.Rank())
	linalg.Gemm(false, false, 1, ad, lb.V, 0, w)
	c.AddLowRank(-1, w, lb.U, cfg.Tol, cfg.MaxRank)
	putMat(w)
}

// gemmDenseDenseIntoLR finishes the two-dense-operand case once the left
// operand is dense float64, adapting the right operand.
func gemmDenseDenseIntoLR(ad *linalg.Matrix, b tile.Tile, c *tile.LowRank, cfg Config) {
	if bd, ok := b.(*tile.DenseF64); ok {
		gemmDense2IntoLR(ad, bd.D, c, cfg)
		return
	}
	bd := to64Pooled(b)
	gemmDense2IntoLR(ad, bd, c, cfg)
	putMat(bd)
}

// gemmDense2IntoLR forms the dense product, compresses it, then folds the
// factors into c.
func gemmDense2IntoLR(ad, bd *linalg.Matrix, c *tile.LowRank, cfg Config) {
	p := getMat(ad.Rows, bd.Rows)
	linalg.Gemm(false, true, 1, ad, bd, 0, p)
	lp := tile.Compress(p, cfg.Tol, cfg.MaxRank)
	putMat(p)
	if lp.Rank() > 0 {
		c.AddLowRank(-1, lp.U, lp.V, cfg.Tol, cfg.MaxRank)
		putMat(lp.U)
		putMat(lp.V)
	}
}

// to64Pooled converts a float32 or low-rank tile into a pooled dense float64
// matrix; the caller must putMat it. Dense float64 tiles never route here —
// they pass their matrix through directly, so the hot dense path copies
// nothing.
//repro:returns-pooled mat
func to64Pooled(t tile.Tile) *linalg.Matrix {
	switch t := t.(type) {
	case *tile.DenseF32:
		w := getMat(t.D.Rows, t.D.Cols)
		t.D.ToDoubleInto(w)
		return w
	case *tile.LowRank:
		w := getMat(t.M, t.N)
		t.DenseInto(w)
		return w
	}
	panic("engine: to64Pooled on a dense float64 tile")
}

// to32Pooled converts a float64 or low-rank tile into a pooled dense float32
// matrix; the caller must tile.PutMat32 it. Dense float32 tiles never route
// here.
//repro:returns-pooled mat32
func to32Pooled(t tile.Tile) *tile.Matrix32 {
	switch t := t.(type) {
	case *tile.DenseF64:
		w := tile.GetMat32(t.D.Rows, t.D.Cols)
		tile.ToSingleInto(t.D, w)
		return w
	case *tile.LowRank:
		d := getMat(t.M, t.N)
		t.DenseInto(d)
		w := tile.GetMat32(t.M, t.N)
		tile.ToSingleInto(d, w)
		putMat(d)
		return w
	}
	panic("engine: to32Pooled on a dense float32 tile")
}

// evictTile compresses the dense float64 trailing tile (i,j) to low rank at
// the configured tolerance. It runs as the "evict" task, ordered by the
// tile's handle after its last Schur update and before the panel that
// consumes it. Compression is kept only when it shrinks the tile; on grids
// the engine assembled itself the densified buffer returns to the pool.
func (g *Grid) evictTile(i, j int, cfg Config) {
	t, ok := g.tiles[i][j].(*tile.DenseF64)
	if !ok {
		return
	}
	d := t.D
	m, n := d.Rows, d.Cols
	lr := tile.Compress(d, cfg.Tol, cfg.MaxRank)
	if r := lr.Rank(); r > 0 && r*(m+n) >= m*n {
		// The tile does not compress at this tolerance: keep it dense.
		putMat(lr.U)
		putMat(lr.V)
		return
	}
	g.tiles[i][j] = lr
	freed := 8 * (int64(m)*int64(n) - int64(lr.Rank())*int64(m+n))
	if g.owned {
		putMat(d)
	}
	g.evictMu.Lock()
	g.evicted++
	g.evictFreed += freed
	g.evictMu.Unlock()
}
