// Package engine is the single tile-Cholesky task-graph builder of the
// repository: one right-looking POTRF/TRSM/SYRK/GEMM dependency graph,
// submitted once, whose kernels dispatch over polymorphic tile
// representations (dense float64, dense float32, low rank). The dense
// (Chameleon-style), TLR (HiCMA-style) and mixed-precision factorizations
// are thin layout constructors over this engine, and the per-tile adaptive
// representation the paper names as future work falls out of mixing
// representations freely within one grid.
package engine

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Grid is a square symmetric tiled matrix holding only its lower triangle,
// each tile in an arbitrary representation. After Potrf it holds the lower
// Cholesky factor in the same per-tile representations.
type Grid struct {
	N, TS, NT int
	tiles     [][]tile.Tile // tiles[i][j] valid for j ≤ i
}

// NewGrid returns an empty n×n grid with tile size ts; every tile must be
// assigned with Set before factorizing.
func NewGrid(n, ts int) *Grid {
	if n < 0 || ts <= 0 {
		panic(fmt.Sprintf("engine: invalid grid %d ts=%d", n, ts))
	}
	nt := (n + ts - 1) / ts
	g := &Grid{N: n, TS: ts, NT: nt, tiles: make([][]tile.Tile, nt)}
	for i := range g.tiles {
		g.tiles[i] = make([]tile.Tile, i+1)
	}
	return g
}

// TileRows returns the number of rows of tile row i.
//repro:noalloc
func (g *Grid) TileRows(i int) int {
	if i == g.NT-1 {
		if r := g.N - i*g.TS; r > 0 {
			return r
		}
	}
	return min(g.TS, g.N)
}

// Set assigns tile (i,j), j ≤ i.
func (g *Grid) Set(i, j int, t tile.Tile) {
	if j > i || i >= g.NT || i < 0 || j < 0 {
		panic(fmt.Sprintf("engine: tile (%d,%d) outside lower triangle of %d grid", i, j, g.NT))
	}
	g.tiles[i][j] = t
}

// At returns tile (i,j), j ≤ i.
//repro:noalloc
func (g *Grid) At(i, j int) tile.Tile { return g.tiles[i][j] }

// Diag returns the dense float64 diagonal tile k; the engine requires
// diagonal tiles in that representation (they carry the Cholesky pivots).
//repro:noalloc
func (g *Grid) Diag(k int) *linalg.Matrix {
	d, ok := g.tiles[k][k].(*tile.DenseF64)
	if !ok {
		//repro:alloc-ok representation-violation panic path
		panic(fmt.Sprintf("engine: diagonal tile %d is not dense float64", k))
	}
	return d.D
}

// Mix counts the tiles of the lower triangle by representation — the
// footprint report behind the adaptive policy.
type Mix struct {
	Dense64, Dense32, LowRank int
	MaxRank                   int // largest low-rank tile rank
}

// Mix reports the grid's representation mix.
func (g *Grid) Mix() Mix {
	var m Mix
	for i := 0; i < g.NT; i++ {
		for j := 0; j <= i; j++ {
			switch t := g.tiles[i][j].(type) {
			case *tile.DenseF32:
				m.Dense32++
			case *tile.LowRank:
				m.LowRank++
				if r := t.Rank(); r > m.MaxRank {
					m.MaxRank = r
				}
			default:
				m.Dense64++
			}
		}
	}
	return m
}

// Config tunes the engine kernels.
type Config struct {
	// Tol is the recompression tolerance applied when a GEMM lands in a
	// low-rank destination tile.
	Tol float64
	// MaxRank caps low-rank tile ranks after recompression (0 = uncapped).
	MaxRank int
}

// Potrf factorizes the SPD matrix held by the grid in place: one task graph,
// the classical right-looking tile Cholesky, whatever each tile's
// representation —
//
//	POTRF(T[k][k])
//	TRSM(T[k][k], T[i][k])            i > k
//	SYRK(T[i][k], T[i][i])            i > k
//	GEMM(T[i][k], T[j][k], T[i][j])   i > j > k
//
// with critical-path (panel-first) priorities as StarPU heteroprio-style
// schedulers use. Kernel arithmetic per representation combination matches
// the historical dense, TLR and mixed-precision implementations exactly, so
// layout constructors routing through the engine reproduce their results
// bit for bit. Errors (non-positive-definite pivots) propagate through the
// submitter's SubmitErr/Err scope.
func Potrf(rt taskrt.Submitter, g *Grid, cfg Config) error {
	nt := g.NT
	for k := 0; k < nt; k++ {
		for j := 0; j <= k; j++ {
			if g.tiles[k][j] == nil {
				return fmt.Errorf("engine: tile (%d,%d) unassigned", k, j)
			}
		}
		if _, ok := g.tiles[k][k].(*tile.DenseF64); !ok {
			return fmt.Errorf("engine: diagonal tile %d must be dense float64, got %s", k, g.tiles[k][k].Kind())
		}
	}
	h := make([][]*taskrt.Handle, nt)
	for i := 0; i < nt; i++ {
		h[i] = make([]*taskrt.Handle, i+1)
		for j := 0; j <= i; j++ {
			h[i][j] = rt.NewHandle("T(%d,%d)", i, j)
		}
	}
	for k := 0; k < nt; k++ {
		k := k
		dk := g.Diag(k)
		rt.SubmitErr("potrf", 3*nt-3*k, func() error {
			// Large diagonal tiles run the blocked in-tile Cholesky so the
			// bulk of the pivot work is level-3 on the packed kernels.
			var err error
			if dk.Rows > 48 {
				err = linalg.PotrfBlocked(dk, 32)
			} else {
				err = linalg.PotrfUnblocked(dk)
			}
			if err != nil {
				return fmt.Errorf("engine: diagonal tile (%d,%d): %w", k, k, err)
			}
			return nil
		}, taskrt.ReadWrite(h[k][k]))

		// Single-precision panel tiles solve against a float32 copy of the
		// factored diagonal, converted once per panel by its own task.
		var dk32 *tile.Matrix32
		var dk32H *taskrt.Handle
		for i := k + 1; i < nt; i++ {
			if g.tiles[i][k].Kind() == tile.KindDenseF32 {
				dk32H = rt.NewHandle("T32(%d)", k)
				rt.Submit("convert", 3*nt-3*k, func() {
					dk32 = tile.ToSingle(dk)
				}, taskrt.Read(h[k][k]), taskrt.Write(dk32H))
				break
			}
		}
		for i := k + 1; i < nt; i++ {
			switch t := g.tiles[i][k].(type) {
			case *tile.DenseF64:
				d := t.D
				rt.Submit("trsm", 3*nt-3*k-1, func() {
					linalg.TrsmLower(linalg.Right, true, 1, dk, d)
				}, taskrt.Read(h[k][k]), taskrt.ReadWrite(h[i][k]))
			case *tile.LowRank:
				lr := t
				rt.Submit("trsm", 3*nt-3*k-1, func() {
					if lr.Rank() > 0 {
						linalg.TrsmLower(linalg.Left, false, 1, dk, lr.V)
					}
				}, taskrt.Read(h[k][k]), taskrt.ReadWrite(h[i][k]))
			case *tile.DenseF32:
				d := t.D
				rt.Submit("trsm32", 3*nt-3*k-1, func() {
					tile.TrsmRightLowerTrans32(dk32, d)
				}, taskrt.Read(dk32H), taskrt.ReadWrite(h[i][k]))
			}
		}
		for i := k + 1; i < nt; i++ {
			i := i
			a := g.tiles[i][k]
			di := g.Diag(i)
			rt.Submit("syrk", 3*nt-3*k-2, func() {
				syrkInto(a, di)
			}, taskrt.Read(h[i][k]), taskrt.ReadWrite(h[i][i]))
			for j := k + 1; j < i; j++ {
				j := j
				b := g.tiles[j][k]
				c := g.tiles[i][j]
				rt.Submit("gemm", 3*nt-3*k-2, func() {
					gemmInto(a, b, c, cfg)
				}, taskrt.Read(h[i][k]), taskrt.Read(h[j][k]), taskrt.ReadWrite(h[i][j]))
			}
		}
	}
	rt.Wait()
	if err := rt.Err(); err != nil {
		return err
	}
	for k := 0; k < nt; k++ {
		g.Diag(k).LowerFromFull()
	}
	return nil
}

// syrkInto applies D ← D − A·Aᵀ for the panel tile a into the dense float64
// diagonal tile d, in the representation-appropriate form.
func syrkInto(a tile.Tile, d *linalg.Matrix) {
	switch a := a.(type) {
	case *tile.DenseF64:
		linalg.Syrk(false, -1, a.D, 1, d)
	case *tile.DenseF32:
		// Diagonal updates run in double precision whatever the operand
		// (the banded mixed-precision semantics: destination chooses).
		linalg.Syrk(false, -1, a.D.ToDouble(), 1, d)
	case *tile.LowRank:
		k := a.Rank()
		if k == 0 {
			return
		}
		// D ← D − U·(VᵀV)·Uᵀ without densifying the tile.
		s := getMat(k, k)
		linalg.Gemm(true, false, 1, a.V, a.V, 0, s)
		us := getMat(a.M, k)
		linalg.Gemm(false, false, 1, a.U, s, 0, us)
		linalg.Gemm(false, true, -1, us, a.U, 1, d)
		putMat(us)
		putMat(s)
	}
}

// gemmInto applies C ← C − A·Bᵀ, dispatching on the destination
// representation: the destination decides the arithmetic (f64, f32 or
// low-rank concat-and-recompress), the operands are adapted to it.
func gemmInto(a, b, c tile.Tile, cfg Config) {
	switch c := c.(type) {
	case *tile.DenseF64:
		gemmIntoDense64(a, b, c.D)
	case *tile.DenseF32:
		tile.Gemm32(true, -1, as32(a), as32(b), c.D)
	case *tile.LowRank:
		gemmIntoLowRank(a, b, c, cfg)
	}
}

// gemmIntoDense64 accumulates dst −= A·Bᵀ in double precision, using the
// cheap U·(…)·Vᵀ forms when an operand is low rank.
func gemmIntoDense64(a, b tile.Tile, dst *linalg.Matrix) {
	la, aIsLR := a.(*tile.LowRank)
	lb, bIsLR := b.(*tile.LowRank)
	switch {
	case aIsLR && bIsLR:
		ka, kb := la.Rank(), lb.Rank()
		if ka == 0 || kb == 0 {
			return
		}
		s := getMat(ka, kb)
		linalg.Gemm(true, false, 1, la.V, lb.V, 0, s)
		u2 := getMat(la.M, kb)
		linalg.Gemm(false, false, 1, la.U, s, 0, u2)
		linalg.Gemm(false, true, -1, u2, lb.U, 1, dst)
		putMat(u2)
		putMat(s)
	case aIsLR:
		if la.Rank() == 0 {
			return
		}
		bd := as64(b)
		// A·Bᵀ = U_a·(B·V_a)ᵀ
		w := getMat(bd.Rows, la.Rank())
		linalg.Gemm(false, false, 1, bd, la.V, 0, w)
		linalg.Gemm(false, true, -1, la.U, w, 1, dst)
		putMat(w)
	case bIsLR:
		if lb.Rank() == 0 {
			return
		}
		ad := as64(a)
		// A·Bᵀ = (A·V_b)·U_bᵀ
		w := getMat(ad.Rows, lb.Rank())
		linalg.Gemm(false, false, 1, ad, lb.V, 0, w)
		linalg.Gemm(false, true, -1, w, lb.U, 1, dst)
		putMat(w)
	default:
		linalg.Gemm(false, true, -1, as64(a), as64(b), 1, dst)
	}
}

// gemmIntoLowRank accumulates the Schur update into a low-rank destination
// by factor concatenation and recompression.
func gemmIntoLowRank(a, b tile.Tile, c *tile.LowRank, cfg Config) {
	la, aIsLR := a.(*tile.LowRank)
	lb, bIsLR := b.(*tile.LowRank)
	switch {
	case aIsLR && bIsLR:
		// C ← C − U_a·(V_aᵀ·V_b)·U_bᵀ (the HiCMA GEMM).
		ka, kb := la.Rank(), lb.Rank()
		if ka == 0 || kb == 0 {
			return
		}
		s := getMat(ka, kb)
		linalg.Gemm(true, false, 1, la.V, lb.V, 0, s)
		u2 := getMat(la.M, kb)
		linalg.Gemm(false, false, 1, la.U, s, 0, u2)
		c.AddLowRank(-1, u2, lb.U, cfg.Tol, cfg.MaxRank)
		putMat(u2)
		putMat(s)
	case aIsLR:
		if la.Rank() == 0 {
			return
		}
		bd := as64(b)
		// A·Bᵀ = U_a·(B·V_a)ᵀ: rank-k_a update.
		w := getMat(bd.Rows, la.Rank())
		linalg.Gemm(false, false, 1, bd, la.V, 0, w)
		c.AddLowRank(-1, la.U, w, cfg.Tol, cfg.MaxRank)
		putMat(w)
	case bIsLR:
		if lb.Rank() == 0 {
			return
		}
		ad := as64(a)
		// A·Bᵀ = (A·V_b)·U_bᵀ: rank-k_b update.
		w := getMat(ad.Rows, lb.Rank())
		linalg.Gemm(false, false, 1, ad, lb.V, 0, w)
		c.AddLowRank(-1, w, lb.U, cfg.Tol, cfg.MaxRank)
		putMat(w)
	default:
		// Two dense operands: form the product, compress it, then fold the
		// factors in.
		ad, bd := as64(a), as64(b)
		p := getMat(ad.Rows, bd.Rows)
		linalg.Gemm(false, true, 1, ad, bd, 0, p)
		lp := tile.Compress(p, cfg.Tol, cfg.MaxRank)
		putMat(p)
		if lp.Rank() > 0 {
			c.AddLowRank(-1, lp.U, lp.V, cfg.Tol, cfg.MaxRank)
			putMat(lp.U)
			putMat(lp.V)
		}
	}
}

// as64 returns a double-precision view of a dense tile (converting float32
// on the fly, exactly as the banded mixed-precision update did).
func as64(t tile.Tile) *linalg.Matrix {
	switch t := t.(type) {
	case *tile.DenseF64:
		return t.D
	case *tile.DenseF32:
		return t.D.ToDouble()
	case *tile.LowRank:
		return t.Dense()
	}
	panic("engine: unknown tile representation")
}

// as32 returns a single-precision view of a tile (converting float64 on the
// fly, exactly as the banded mixed-precision update did).
func as32(t tile.Tile) *tile.Matrix32 {
	switch t := t.(type) {
	case *tile.DenseF32:
		return t.D
	case *tile.DenseF64:
		return tile.ToSingle(t.D)
	case *tile.LowRank:
		return tile.ToSingle(t.Dense())
	}
	panic("engine: unknown tile representation")
}
