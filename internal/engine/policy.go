package engine

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Policy is the per-tile adaptive representation rule: dense float64 on a
// band around the diagonal (the Cholesky pivots and their strongest
// couplings), and off the band either low rank — when the tile compresses
// well at the configured tolerance — or dense float32 — when it does not
// compress but its norm is small enough that single precision stays below
// the requested accuracy — falling back to dense float64 for large
// incompressible tiles.
type Policy struct {
	// Band is the number of sub-diagonals kept dense float64 (default 1).
	Band int
	// Tol is the low-rank compression tolerance (shared with recompression
	// during the factorization).
	Tol float64
	// MaxRank caps accepted low-rank tile ranks (0 = uncapped).
	MaxRank int
	// RankFrac accepts the low-rank representation when the compressed rank
	// is at most RankFrac·min(tile dims) — beyond that the U/V factors cost
	// more than the dense tile (default 0.5).
	RankFrac float64
	// F32Norm stores an incompressible off-band tile in float32 when its
	// Frobenius norm relative to the geometric mean of its diagonal blocks'
	// norms is at most F32Norm, so the f32 rounding (~1e-7 relative) stays
	// commensurate with the compression tolerance (default 0.1).
	F32Norm float64
}

// WithDefaults fills unset policy knobs. It is the single source of the
// adaptive defaults; the api.Config defaulting delegates here.
func (p Policy) WithDefaults() Policy {
	if p.Band <= 0 {
		p.Band = 1
	}
	if p.Tol <= 0 {
		p.Tol = 1e-6
	}
	if p.RankFrac <= 0 {
		p.RankFrac = 0.5
	}
	if p.F32Norm <= 0 {
		p.F32Norm = 0.1
	}
	return p
}

// rankLimit is the largest low-rank tile rank the policy accepts for an
// m×n tile.
func (p Policy) rankLimit(m, n int) int {
	limit := int(p.RankFrac * float64(min(m, n)))
	if p.MaxRank > 0 && limit > p.MaxRank {
		limit = p.MaxRank
	}
	return limit
}

// probe runs the compressibility test for one off-band tile through ACA
// with a rank budget one past the acceptance limit: a probe that CONVERGES
// within the limit is accepted (and IS the tile — no recompute); anything
// else — budget exhausted, or rounding trimming an unconverged cross set
// under the limit — means the tile's numerical rank at Tol is not known to
// fit, so the dense representations take over. Requiring the convergence
// flag (not just the rounded rank) is what stops a truncated
// slowly-decaying tile from vacuously passing the rank test with
// uncontrolled error. Probing by ACA touches O(k(m+n)) entries instead of
// densify-then-SVD's full-tile spectrum.
func (p Policy) probe(m, n int, entry func(i, j int) float64) (*tile.LowRank, bool) {
	limit := p.rankLimit(m, n)
	lr, converged := tile.CompressACAConv(m, n, entry, p.Tol, limit+1)
	if converged && lr.Rank() <= limit {
		return lr, true
	}
	return nil, false
}

// AssembleAdaptive builds an engine grid from a symmetric tiled matrix,
// choosing each lower tile's representation by the policy. The grid aliases
// src's float64 tiles (the factorization then runs in place), so src must
// not be reused afterwards. When sub is non-nil the per-tile probes run as
// independent tasks on it (the caller's group scope); nil probes serially.
func AssembleAdaptive(sub taskrt.Submitter, src *tile.Matrix, p Policy) *Grid {
	p = p.WithDefaults()
	g := NewGrid(src.M, src.TS)
	// Diagonal norms anchor the relative-magnitude test for f32 storage.
	diagNorm := make([]float64, g.NT)
	for i := 0; i < g.NT; i++ {
		diagNorm[i] = src.Tile(i, i).FrobNorm()
	}
	run, wait := taskrt.Scatter(sub, "assemble")
	for i := 0; i < g.NT; i++ {
		i := i
		g.Set(i, i, &tile.DenseF64{D: src.Tile(i, i)})
		for j := 0; j < i; j++ {
			j := j
			blk := src.Tile(i, j)
			if i-j <= p.Band {
				g.Set(i, j, &tile.DenseF64{D: blk})
				continue
			}
			run(func() {
				if lr, ok := p.probe(blk.Rows, blk.Cols, blk.At); ok {
					g.Set(i, j, lr)
					return
				}
				scale := math.Sqrt(diagNorm[i] * diagNorm[j])
				if scale > 0 && blk.FrobNorm() <= p.F32Norm*scale {
					g.Set(i, j, &tile.DenseF32{D: tile.ToSingle(blk)})
					return
				}
				g.Set(i, j, &tile.DenseF64{D: blk})
			})
		}
	}
	wait()
	return g
}

// AssembleAdaptiveEntry builds an adaptive engine grid directly from an
// entry evaluator (typically a covariance kernel over a geometry), without
// ever materializing the dense matrix: band tiles are assembled densely,
// off-band tiles are probed by ACA — an accepted probe is the tile, touching
// only O(k·ts) entries — and only rejected tiles are densified for the
// f32/f64 fallback. When sub is non-nil the tiles are built as independent
// tasks on it.
func AssembleAdaptiveEntry(sub taskrt.Submitter, n, ts int, entry func(i, j int) float64, p Policy) *Grid {
	p = p.WithDefaults()
	g := NewGrid(n, ts)
	run, wait := taskrt.Scatter(sub, "assemble")
	// Phase 1: diagonal tiles (dense, and the norms anchoring the f32 test).
	diagNorm := make([]float64, g.NT)
	for i := 0; i < g.NT; i++ {
		i := i
		run(func() {
			d := denseBlock(g.TileRows(i), g.TileRows(i), i*ts, i*ts, entry)
			diagNorm[i] = d.FrobNorm()
			g.Set(i, i, &tile.DenseF64{D: d})
		})
	}
	wait()
	// Phase 2: off-diagonal tiles.
	for i := 0; i < g.NT; i++ {
		i := i
		ri := g.TileRows(i)
		for j := 0; j < i; j++ {
			j := j
			rj := g.TileRows(j)
			row0, col0 := i*ts, j*ts
			sub2 := func(r, c int) float64 { return entry(row0+r, col0+c) }
			if i-j <= p.Band {
				run(func() {
					g.Set(i, j, &tile.DenseF64{D: denseBlock(ri, rj, row0, col0, entry)})
				})
				continue
			}
			run(func() {
				if lr, ok := p.probe(ri, rj, sub2); ok {
					g.Set(i, j, lr)
					return
				}
				blk := denseBlock(ri, rj, row0, col0, entry)
				scale := math.Sqrt(diagNorm[i] * diagNorm[j])
				if scale > 0 && blk.FrobNorm() <= p.F32Norm*scale {
					g.Set(i, j, &tile.DenseF32{D: tile.ToSingle(blk)})
					return
				}
				g.Set(i, j, &tile.DenseF64{D: blk})
			})
		}
	}
	wait()
	return g
}

// EntryAssembler returns a streaming assembler applying the adaptive policy
// per tile, for PotrfStream: band tiles dense float64, off-band tiles probed
// by ACA with the dense f32/f64 fallback — the same choices
// AssembleAdaptiveEntry makes, but each tile built by its own task only when
// the factorization graph first touches it. DiagFirst routes the diagonal
// Frobenius norms (anchoring the f32 test) through the engine's norm
// handles, so off-band tiles always observe assembled, unfactored diagonals.
// Dense tiles draw from the workspace pool (the grid becomes engine-owned).
func (p Policy) EntryAssembler(g *Grid, entry func(i, j int) float64) *Assembler {
	p = p.WithDefaults()
	ts := g.TS
	diagNorm := make([]float64, g.NT)
	return &Assembler{
		DiagFirst: true,
		Tile: func(i, j int) tile.Tile {
			ri, rj := g.TileRows(i), g.TileRows(j)
			row0, col0 := i*ts, j*ts
			if i == j {
				d := denseBlockPooled(ri, ri, row0, row0, entry)
				diagNorm[i] = d.FrobNorm()
				return &tile.DenseF64{D: d}
			}
			if i-j <= p.Band {
				return &tile.DenseF64{D: denseBlockPooled(ri, rj, row0, col0, entry)}
			}
			sub := func(r, c int) float64 { return entry(row0+r, col0+c) }
			if lr, ok := p.probe(ri, rj, sub); ok {
				return lr
			}
			blk := denseBlockPooled(ri, rj, row0, col0, entry)
			scale := math.Sqrt(diagNorm[i] * diagNorm[j])
			if scale > 0 && blk.FrobNorm() <= p.F32Norm*scale {
				w := tile.GetMat32(ri, rj)
				tile.ToSingleInto(blk, w)
				putMat(blk)
				return &tile.DenseF32{D: w}
			}
			return &tile.DenseF64{D: blk}
		},
	}
}

// denseBlock materializes the r×c block at (row0,col0) of the entry
// evaluator.
func denseBlock(r, c, row0, col0 int, entry func(i, j int) float64) *linalg.Matrix {
	d := linalg.NewMatrix(r, c)
	for j := 0; j < c; j++ {
		col := d.Col(j)
		for i := 0; i < r; i++ {
			col[i] = entry(row0+i, col0+j)
		}
	}
	return d
}
