package engine

import (
	"math"

	"repro/internal/tile"
)

// Policy is the per-tile adaptive representation rule: dense float64 on a
// band around the diagonal (the Cholesky pivots and their strongest
// couplings), and off the band either low rank — when the tile compresses
// well at the configured tolerance — or dense float32 — when it does not
// compress but its norm is small enough that single precision stays below
// the requested accuracy — falling back to dense float64 for large
// incompressible tiles.
type Policy struct {
	// Band is the number of sub-diagonals kept dense float64 (default 1).
	Band int
	// Tol is the low-rank compression tolerance (shared with recompression
	// during the factorization).
	Tol float64
	// MaxRank caps accepted low-rank tile ranks (0 = uncapped).
	MaxRank int
	// RankFrac accepts the low-rank representation when the compressed rank
	// is at most RankFrac·min(tile dims) — beyond that the U/V factors cost
	// more than the dense tile (default 0.5).
	RankFrac float64
	// F32Norm stores an incompressible off-band tile in float32 when its
	// Frobenius norm relative to the geometric mean of its diagonal blocks'
	// norms is at most F32Norm, so the f32 rounding (~1e-7 relative) stays
	// commensurate with the compression tolerance (default 0.1).
	F32Norm float64
}

// WithDefaults fills unset policy knobs. It is the single source of the
// adaptive defaults; the api.Config defaulting delegates here.
func (p Policy) WithDefaults() Policy {
	if p.Band <= 0 {
		p.Band = 1
	}
	if p.Tol <= 0 {
		p.Tol = 1e-6
	}
	if p.RankFrac <= 0 {
		p.RankFrac = 0.5
	}
	if p.F32Norm <= 0 {
		p.F32Norm = 0.1
	}
	return p
}

// AssembleAdaptive builds an engine grid from a symmetric tiled matrix,
// choosing each lower tile's representation by the policy. The grid aliases
// src's float64 tiles (the factorization then runs in place), so src must
// not be reused afterwards.
func AssembleAdaptive(src *tile.Matrix, p Policy) *Grid {
	p = p.WithDefaults()
	g := NewGrid(src.M, src.TS)
	// Diagonal norms anchor the relative-magnitude test for f32 storage.
	diagNorm := make([]float64, g.NT)
	for i := 0; i < g.NT; i++ {
		diagNorm[i] = src.Tile(i, i).FrobNorm()
	}
	for i := 0; i < g.NT; i++ {
		g.Set(i, i, &tile.DenseF64{D: src.Tile(i, i)})
		for j := 0; j < i; j++ {
			blk := src.Tile(i, j)
			if i-j <= p.Band {
				g.Set(i, j, &tile.DenseF64{D: blk})
				continue
			}
			// Compress uncapped so the acceptance test sees the tile's true
			// numerical rank at Tol: capping first would truncate the
			// spectrum and then vacuously pass the rank test, silently
			// accepting representations far less accurate than Tol.
			lr := tile.Compress(blk, p.Tol, 0)
			limit := int(p.RankFrac * float64(min(blk.Rows, blk.Cols)))
			if p.MaxRank > 0 && limit > p.MaxRank {
				limit = p.MaxRank
			}
			if lr.Rank() <= limit {
				g.Set(i, j, lr)
				continue
			}
			scale := math.Sqrt(diagNorm[i] * diagNorm[j])
			if scale > 0 && blk.FrobNorm() <= p.F32Norm*scale {
				g.Set(i, j, &tile.DenseF32{D: tile.ToSingle(blk)})
				continue
			}
			g.Set(i, j, &tile.DenseF64{D: blk})
		}
	}
	return g
}
