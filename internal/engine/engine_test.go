package engine_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/engine"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/mixprec"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
	"repro/internal/tlr"
)

func covGrid(side int, rng float64) *linalg.Matrix {
	g := geo.RegularGrid(side, side)
	return cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: rng})
}

// refDensePotrf is the historical sequential dense tile Cholesky: the exact
// per-tile kernel sequence the pre-engine tiledalg.Potrf executed.
func refDensePotrf(a *tile.Matrix) error {
	nt := a.NT
	for k := 0; k < nt; k++ {
		if err := linalg.PotrfUnblocked(a.Tile(k, k)); err != nil {
			return err
		}
		for i := k + 1; i < nt; i++ {
			linalg.TrsmLower(linalg.Right, true, 1, a.Tile(k, k), a.Tile(i, k))
		}
		for i := k + 1; i < nt; i++ {
			linalg.Syrk(false, -1, a.Tile(i, k), 1, a.Tile(i, i))
			for j := k + 1; j < i; j++ {
				linalg.Gemm(false, true, -1, a.Tile(i, k), a.Tile(j, k), 1, a.Tile(i, j))
			}
		}
	}
	for k := 0; k < nt; k++ {
		a.Tile(k, k).LowerFromFull()
		for j := k + 1; j < nt; j++ {
			a.Tile(k, j).Zero()
		}
	}
	return nil
}

// refTLRPotrf is the historical sequential TLR Cholesky (HiCMA kernels), the
// arithmetic the pre-engine tlr.Potrf executed.
func refTLRPotrf(a *tlr.Matrix) error {
	nt := a.NT
	for k := 0; k < nt; k++ {
		if err := linalg.PotrfUnblocked(a.Diag[k]); err != nil {
			return err
		}
		for i := k + 1; i < nt; i++ {
			if t := a.Low[i][k]; t.Rank() > 0 {
				linalg.TrsmLower(linalg.Left, false, 1, a.Diag[k], t.V)
			}
		}
		for i := k + 1; i < nt; i++ {
			if t := a.Low[i][k]; t.Rank() > 0 {
				s := linalg.NewMatrix(t.Rank(), t.Rank())
				linalg.Gemm(true, false, 1, t.V, t.V, 0, s)
				us := linalg.NewMatrix(t.M, t.Rank())
				linalg.Gemm(false, false, 1, t.U, s, 0, us)
				linalg.Gemm(false, true, -1, us, t.U, 1, a.Diag[i])
			}
			for j := k + 1; j < i; j++ {
				ta, tb, c := a.Low[i][k], a.Low[j][k], a.Low[i][j]
				ka, kb := ta.Rank(), tb.Rank()
				if ka == 0 || kb == 0 {
					continue
				}
				s := linalg.NewMatrix(ka, kb)
				linalg.Gemm(true, false, 1, ta.V, tb.V, 0, s)
				u2 := linalg.NewMatrix(ta.M, kb)
				linalg.Gemm(false, false, 1, ta.U, s, 0, u2)
				c.AddLowRank(-1, u2, tb.U, a.Tol, a.MaxRank)
			}
		}
	}
	for k := 0; k < nt; k++ {
		a.Diag[k].LowerFromFull()
	}
	return nil
}

// refMixedPotrf is the historical sequential banded mixed-precision
// Cholesky, the arithmetic the pre-engine mixprec.Potrf executed.
func refMixedPotrf(a *tile.Matrix, band int) *mixprec.Factorization {
	nt := a.MT
	f := &mixprec.Factorization{N: a.M, TS: a.TS, NT: nt, Band: band}
	f.D64 = make([][]*linalg.Matrix, nt)
	f.D32 = make([][]*mixprec.Matrix32, nt)
	for i := 0; i < nt; i++ {
		f.D64[i] = make([]*linalg.Matrix, i+1)
		f.D32[i] = make([]*mixprec.Matrix32, i+1)
		for j := 0; j <= i; j++ {
			if f.Tile64(i, j) {
				f.D64[i][j] = a.Tile(i, j).Clone()
			} else {
				f.D32[i][j] = mixprec.ToSingle(a.Tile(i, j))
			}
		}
	}
	for k := 0; k < nt; k++ {
		dk := f.D64[k][k]
		if err := linalg.PotrfUnblocked(dk); err != nil {
			panic(err)
		}
		var dk32 *mixprec.Matrix32
		if k+band+1 < nt {
			dk32 = mixprec.ToSingle(dk)
		}
		for i := k + 1; i < nt; i++ {
			if f.Tile64(i, k) {
				linalg.TrsmLower(linalg.Right, true, 1, dk, f.D64[i][k])
			} else {
				mixprec.TrsmRightLowerTrans32(dk32, f.D32[i][k])
			}
		}
		for i := k + 1; i < nt; i++ {
			for j := k + 1; j <= i; j++ {
				if f.Tile64(i, j) {
					ai, aj := mixedAs64(f, i, k), mixedAs64(f, j, k)
					if i == j {
						linalg.Syrk(false, -1, ai, 1, f.D64[i][j])
					} else {
						linalg.Gemm(false, true, -1, ai, aj, 1, f.D64[i][j])
					}
				} else {
					ai, aj := mixedAs32(f, i, k), mixedAs32(f, j, k)
					if i == j {
						mixprec.Syrk32(-1, ai, f.D32[i][j])
					} else {
						mixprec.Gemm32(true, -1, ai, aj, f.D32[i][j])
					}
				}
			}
		}
	}
	for k := 0; k < nt; k++ {
		f.D64[k][k].LowerFromFull()
	}
	return f
}

func mixedAs64(f *mixprec.Factorization, i, j int) *linalg.Matrix {
	if f.Tile64(i, j) {
		return f.D64[i][j]
	}
	return f.D32[i][j].ToDouble()
}

func mixedAs32(f *mixprec.Factorization, i, j int) *mixprec.Matrix32 {
	if f.Tile64(i, j) {
		return mixprec.ToSingle(f.D64[i][j])
	}
	return f.D32[i][j]
}

// Engine-vs-sequential-reference tolerance. The pre-PR3 versions of these
// regression tests pinned the engine bit-identical to the sequential
// references. With the packed register-blocked kernels that contract is
// gone by design: the blocked GEMM/SYRK/TRSM change summation order, use
// fused multiply-adds, and dispatch between packed and unpacked loops by
// problem volume, so "identical bits" would only hold while the engine and
// the reference happened to route every operand through the same dispatch
// path — an implementation accident, not a guarantee. What the engine DOES
// guarantee is that its task graph performs the same per-tile kernel
// sequence as the sequential algorithm; floating-point reassociation across
// kernels is bounded by ~k·ε per accumulated entry, so a tight relative
// tolerance (well below any compression tolerance in play) pins the
// semantics without freezing the kernel implementation.
const engineRefTol = 1e-11

// relMaxDiff is max|a−b| scaled by ‖b‖_F (1 floor).
func relMaxDiff(a, b *linalg.Matrix) float64 {
	return a.MaxAbsDiff(b) / math.Max(b.FrobNorm(), 1)
}

// TestEngineDenseMatchesReference checks the engine-backed dense layout
// reproduces the sequential tiled dense Cholesky to kernel roundoff.
func TestEngineDenseMatchesReference(t *testing.T) {
	sigma := covGrid(9, 0.2) // n=81
	for _, ts := range []int{7, 16, 81} {
		want := tile.FromDense(sigma, ts)
		if err := refDensePotrf(want); err != nil {
			t.Fatal(err)
		}
		got := tile.FromDense(sigma, ts)
		rt := taskrt.New(4)
		err := tiledalg.Potrf(rt, got)
		rt.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		if d := relMaxDiff(got.ToDense(), want.ToDense()); d > engineRefTol {
			t.Errorf("ts=%d: engine dense factor differs from reference by %v", ts, d)
		}
	}
}

// TestEngineTLRMatchesReference is the cross-implementation regression test:
// the engine-backed TLR layout must match the sequential TLR factorization
// (same compression decisions, same recompression sequence) to kernel
// roundoff. The compressor is randomized but deterministic (fixed sketch per
// tile shape), so both builds see identical inputs.
func TestEngineTLRMatchesReference(t *testing.T) {
	sigma := covGrid(9, 0.15)
	for _, tol := range []float64{1e-4, 1e-8} {
		want, err := tlr.CompressSPD(tile.FromDense(sigma, 12), tol, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tlr.CompressSPD(tile.FromDense(sigma, 12), tol, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := refTLRPotrf(want); err != nil {
			t.Fatal(err)
		}
		rt := taskrt.New(4)
		err = tlr.Potrf(rt, got)
		rt.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		if d := relMaxDiff(got.ToDense(), want.ToDense()); d > engineRefTol {
			t.Errorf("tol=%g: engine TLR factor differs from reference by %v", tol, d)
		}
	}
}

// TestEngineMixedMatchesReference checks the engine-backed banded
// mixed-precision layout against the sequential implementation. The
// comparison happens after promoting f32 tiles, so kernel reassociation in
// the single-precision updates shows up at f32 roundoff (~1e-7 relative);
// the tolerance sits a little above that, far below the band accuracy the
// mixed-precision method itself targets.
func TestEngineMixedMatchesReference(t *testing.T) {
	sigma := covGrid(8, 0.15) // n=64
	for _, band := range []int{0, 1, 3} {
		want := refMixedPotrf(tile.FromDense(sigma, 8), band)
		rt := taskrt.New(4)
		got, err := mixprec.Potrf(rt, tile.FromDense(sigma, 8), band)
		rt.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		if d := relMaxDiff(got.ToDense(), want.ToDense()); d > 5e-6 {
			t.Errorf("band=%d: engine mixed factor differs from reference by %v", band, d)
		}
	}
}

// TestEngineErrorPropagation checks non-SPD failures surface through the
// submitter's SubmitErr/Err scope, on both the runtime and a group, and that
// the scope resets so the runtime can be reused.
func TestEngineErrorPropagation(t *testing.T) {
	bad := linalg.Eye(8)
	bad.Set(5, 5, -2)
	good := covGrid(3, 0.2)

	rt := taskrt.New(2)
	defer rt.Shutdown()
	if err := tiledalg.Potrf(rt, tile.FromDense(bad, 3)); !errors.Is(err, linalg.ErrNotPositiveDefinite) {
		t.Errorf("runtime scope: want ErrNotPositiveDefinite, got %v", err)
	}
	// The error must not leak into the next factorization on the same scope.
	if err := tiledalg.Potrf(rt, tile.FromDense(good, 4)); err != nil {
		t.Errorf("runtime reuse after failure: %v", err)
	}
	g := rt.NewGroup()
	if err := tiledalg.Potrf(g, tile.FromDense(bad, 3)); !errors.Is(err, linalg.ErrNotPositiveDefinite) {
		t.Errorf("group scope: want ErrNotPositiveDefinite, got %v", err)
	}
}

// TestEngineRejectsBadGrids checks layout validation.
func TestEngineRejectsBadGrids(t *testing.T) {
	rt := taskrt.New(1)
	defer rt.Shutdown()
	g := engine.NewGrid(8, 4)
	g.Set(0, 0, &tile.DenseF32{D: tile.NewMatrix32(4, 4)})
	g.Set(1, 1, &tile.DenseF64{D: linalg.Eye(4)})
	g.Set(1, 0, &tile.DenseF64{D: linalg.NewMatrix(4, 4)})
	if err := engine.Potrf(rt, g, engine.Config{}); err == nil {
		t.Error("want error for non-f64 diagonal tile")
	}
	g2 := engine.NewGrid(8, 4)
	g2.Set(0, 0, &tile.DenseF64{D: linalg.Eye(4)})
	g2.Set(1, 1, &tile.DenseF64{D: linalg.Eye(4)})
	if err := engine.Potrf(rt, g2, engine.Config{}); err == nil {
		t.Error("want error for unassigned tile")
	}
}

// TestAdaptiveAssemblyMixesAndFactorizes checks the adaptive policy actually
// mixes representations on a smooth kernel and that the resulting factor
// reconstructs the matrix to the policy accuracy.
func TestAdaptiveAssemblyMixesAndFactorizes(t *testing.T) {
	// A smooth Matérn ν=2.5 field: far tiles compress to ~rank 8–13 of 24 at
	// 1e-4, straddling the RankFrac threshold, so the policy genuinely mixes.
	// The nugget keeps Σ well-conditioned so the lossy tile representations
	// cannot push it indefinite; it leaves off-diagonal ranks untouched.
	g12 := geo.RegularGrid(12, 12)
	sigma := cov.Matrix(g12, &cov.Nugget{Kernel: cov.NewMatern(1, 0.2, 2.5), Tau2: 0.05}) // n=144
	g := engine.AssembleAdaptive(nil, tile.FromDense(sigma, 24), engine.Policy{
		Band: 1, Tol: 1e-4, RankFrac: 0.5, F32Norm: 0.5,
	})
	mix := g.Mix()
	if mix.LowRank == 0 {
		t.Errorf("adaptive policy chose no low-rank tiles: %+v", mix)
	}
	if mix.Dense64 < g.NT {
		t.Errorf("diagonal tiles must stay dense f64: %+v", mix)
	}
	rt := taskrt.New(4)
	defer rt.Shutdown()
	if err := engine.Potrf(rt, g, engine.Config{Tol: 1e-4}); err != nil {
		t.Fatal(err)
	}
	// Reassemble L densely and check L·Lᵀ ≈ Σ.
	l := linalg.NewMatrix(144, 144)
	for i := 0; i < g.NT; i++ {
		for j := 0; j <= i; j++ {
			var d *linalg.Matrix
			switch tl := g.At(i, j).(type) {
			case *tile.DenseF64:
				d = tl.D
			case *tile.DenseF32:
				d = tl.D.ToDouble()
			case *tile.LowRank:
				d = tl.Dense()
			}
			l.View(i*g.TS, j*g.TS, d.Rows, d.Cols).CopyFrom(d)
		}
	}
	rec := linalg.NewMatrix(144, 144)
	linalg.Gemm(false, true, 1, l, l, 0, rec)
	rec.SymmetrizeFromLower()
	full := sigma.Clone()
	full.SymmetrizeFromLower()
	if d := rec.MaxAbsDiff(full); d > 5e-3 {
		t.Errorf("adaptive LLᵀ residual %v", d)
	}
}

// TestAdaptivePolicyRejectsIncompressibleTiles pins the acceptance rule: a
// rank cap (the session default is TileSize/2, exactly the RankFrac
// threshold) must not let truncated full-rank tiles masquerade as low rank —
// the policy must judge the true numerical rank at Tol.
func TestAdaptivePolicyRejectsIncompressibleTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 128
	gm := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		col := gm.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	sigma := linalg.NewMatrix(n, n)
	linalg.Gemm(true, false, 1, gm, gm, 0, sigma)
	for i := 0; i < n; i++ {
		sigma.Add(i, i, float64(n))
	}
	// Off-band tiles of a random SPD matrix are numerically full rank.
	g := engine.AssembleAdaptive(nil, tile.FromDense(sigma, 32), engine.Policy{
		Tol: 1e-6, MaxRank: 16, RankFrac: 0.5,
	})
	if mix := g.Mix(); mix.LowRank != 0 {
		t.Errorf("full-rank tiles accepted as low rank: %+v", mix)
	}
}

// TestAdaptiveDeterministicAcrossWorkers pins determinism for the mixed
// representation graph.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	gm := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		col := gm.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	sigma := linalg.NewMatrix(n, n)
	linalg.Gemm(true, false, 1, gm, gm, 0, sigma)
	for i := 0; i < n; i++ {
		sigma.Add(i, i, float64(n))
	}
	var ref *linalg.Matrix
	for _, w := range []int{1, 4} {
		g := engine.AssembleAdaptive(nil, tile.FromDense(sigma, 9), engine.Policy{Tol: 1e-6})
		rt := taskrt.New(w)
		err := engine.Potrf(rt, g, engine.Config{Tol: 1e-6})
		rt.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		d := linalg.NewMatrix(n, n)
		for i := 0; i < g.NT; i++ {
			for j := 0; j <= i; j++ {
				var m *linalg.Matrix
				switch tl := g.At(i, j).(type) {
				case *tile.DenseF64:
					m = tl.D
				case *tile.DenseF32:
					m = tl.D.ToDouble()
				case *tile.LowRank:
					m = tl.Dense()
				}
				d.View(i*g.TS, j*g.TS, m.Rows, m.Cols).CopyFrom(m)
			}
		}
		if ref == nil {
			ref = d
		} else if diff := d.MaxAbsDiff(ref); diff != 0 {
			t.Errorf("worker count changed adaptive factor by %v", diff)
		}
	}
}
