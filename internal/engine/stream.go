package engine

import (
	"fmt"
	"sync"

	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Assembler builds tiles on demand for the streaming factorization. Tile
// must return a valid tile for (i,j), j ≤ i, with every diagonal tile dense
// float64 (the engine's pivot representation); it runs on worker goroutines
// as "assemble" tasks fused into the factorization graph, so it must be
// safe for concurrent calls on distinct (i,j).
type Assembler struct {
	Tile func(i, j int) tile.Tile
	// DiagFirst orders every off-diagonal assembly after its two diagonal
	// blocks' assemblies (for policies that read diagonal norms, like the
	// adaptive f32 test). The ordering runs through dedicated norm handles,
	// not the tile handles, so it observes the assembled — never the
	// factored — diagonal.
	DiagFirst bool
}

// PotrfStream factorizes the SPD matrix defined by the assembler without
// ever materializing it up front: each tile is built by its own task,
// ordered by a Write dependency before the graph first reads it, directly
// in the representation the assembler chooses. Combined with cfg.Evict and
// cfg.Window the live footprint is O(n·ts) dense band + the compressed
// factor + O(Window·NT²) task descriptors — the out-of-core shape that
// carries n ≥ 25k. The grid must be empty (NewGrid) and is owned by the
// engine afterwards: its dense tiles draw from the workspace pool.
func PotrfStream(rt taskrt.Submitter, g *Grid, cfg Config, asm *Assembler) error {
	if asm == nil || asm.Tile == nil {
		return fmt.Errorf("engine: PotrfStream requires an assembler")
	}
	return potrf(rt, g, cfg, asm)
}

// potrf is the single task-graph builder behind Potrf (asm == nil,
// materialized grid) and PotrfStream (tiles assembled on demand). Kernel
// dispatch happens at execution time — closures read the grid when they
// run — because assembly and eviction change tile representations after
// submission; the handle dependencies make those reads race-free.
func potrf(rt taskrt.Submitter, g *Grid, cfg Config, asm *Assembler) error {
	nt := g.NT
	if nt > maxTileRows {
		return &SizeError{N: g.N, TS: g.TS, NT: nt}
	}
	if asm == nil {
		for k := 0; k < nt; k++ {
			for j := 0; j <= k; j++ {
				if g.tiles[k][j] == nil {
					return fmt.Errorf("engine: tile (%d,%d) unassigned", k, j)
				}
			}
			if _, ok := g.tiles[k][k].(*tile.DenseF64); !ok {
				return fmt.Errorf("engine: diagonal tile %d must be dense float64, got %s", k, g.tiles[k][k].Kind())
			}
		}
	} else {
		g.owned = true
	}

	// Windowed submission: bound the in-flight graph to ~Window panels of
	// tasks. The master blocks in Submit until tasks retire; STF dependencies
	// only point backward in submission order, so the in-flight prefix can
	// always run to completion and the throttle cannot deadlock.
	sub := rt
	if cfg.Window > 0 {
		limit := cfg.Window * nt * nt
		if limit < minWindowTasks {
			limit = minWindowTasks
		}
		sub = taskrt.NewThrottle(rt, limit)
	}

	h := make([][]*taskrt.Handle, nt)
	for i := 0; i < nt; i++ {
		h[i] = make([]*taskrt.Handle, i+1)
		for j := 0; j <= i; j++ {
			h[i][j] = sub.NewHandle("T(%d,%d)", i, j)
		}
	}

	// Streaming assembly bookkeeping: ensure(i,j) submits the tile's
	// assemble task exactly once, before the first factorization task that
	// touches it. Norm handles (nh) order adaptive off-diagonal assembly
	// after the diagonal norms without entangling the pivot handles.
	var assembled [][]bool
	var nh []*taskrt.Handle
	var ensure func(i, j int)
	if asm != nil {
		assembled = make([][]bool, nt)
		for i := range assembled {
			assembled[i] = make([]bool, i+1)
		}
		if asm.DiagFirst {
			nh = make([]*taskrt.Handle, nt)
			for i := range nh {
				nh[i] = sub.NewHandle("N(%d)", i)
			}
		}
		ensure = func(i, j int) {
			if assembled[i][j] {
				return
			}
			assembled[i][j] = true
			if asm.DiagFirst {
				if i == j {
					sub.Submit("assemble", 3*nt+2, func() {
						g.Set(i, i, asm.Tile(i, i))
					}, taskrt.Write(h[i][i]), taskrt.Write(nh[i]))
					return
				}
				ensure(i, i)
				ensure(j, j)
				sub.Submit("assemble", 3*nt+1, func() {
					g.Set(i, j, asm.Tile(i, j))
				}, taskrt.Write(h[i][j]), taskrt.Read(nh[i]), taskrt.Read(nh[j]))
				return
			}
			sub.Submit("assemble", 3*nt+2, func() {
				g.Set(i, j, asm.Tile(i, j))
			}, taskrt.Write(h[i][j]))
		}
	}

	band := cfg.Band
	if band <= 0 {
		band = 1
	}

	for k := 0; k < nt; k++ {
		k := k
		if asm != nil {
			ensure(k, k)
		}
		sub.SubmitErr("potrf", 3*nt-3*k, func() error {
			dk := g.Diag(k)
			// Large diagonal tiles run the blocked in-tile Cholesky so the
			// bulk of the pivot work is level-3 on the packed kernels.
			var err error
			if dk.Rows > 48 {
				err = linalg.PotrfBlocked(dk, 32)
			} else {
				err = linalg.PotrfUnblocked(dk)
			}
			if err != nil {
				return fmt.Errorf("engine: diagonal tile (%d,%d): %w", k, k, err)
			}
			return nil
		}, taskrt.ReadWrite(h[k][k]))

		// Single-precision panel tiles solve against a float32 copy of the
		// factored diagonal, materialized lazily at execution time by the
		// first solve that needs it: under streaming assembly the
		// representation of a panel tile is decided on the workers, so
		// submission time cannot know whether the copy will be needed.
		l32 := &lazy32{}
		needFree := false
		if asm != nil {
			needFree = k+1 < nt
		} else {
			for i := k + 1; i < nt; i++ {
				if g.tiles[i][k].Kind() == tile.KindDenseF32 {
					needFree = true
					break
				}
			}
		}
		for i := k + 1; i < nt; i++ {
			i := i
			if asm != nil {
				ensure(i, k)
			}
			sub.Submit("trsm", 3*nt-3*k-1, func() {
				trsmPanel(g, k, i, l32)
			}, taskrt.Read(h[k][k]), taskrt.ReadWrite(h[i][k]))
		}
		if needFree {
			// Runs after every panel solve (they read h[k][k]); recycles the
			// f32 diagonal copy, or no-ops if none was materialized.
			sub.Submit("free32", 3*nt-3*k-1, l32.free, taskrt.ReadWrite(h[k][k]))
		}
		for i := k + 1; i < nt; i++ {
			i := i
			if asm != nil {
				ensure(i, i)
			}
			sub.Submit("syrk", 3*nt-3*k-2, func() {
				syrkInto(g.tiles[i][k], g.Diag(i))
			}, taskrt.Read(h[i][k]), taskrt.ReadWrite(h[i][i]))
			for j := k + 1; j < i; j++ {
				j := j
				if asm != nil {
					ensure(i, j)
				}
				sub.Submit("gemm", 3*nt-3*k-2, func() {
					gemmInto(g.tiles[i][k], g.tiles[j][k], g.tiles[i][j], cfg)
				}, taskrt.Read(h[i][k]), taskrt.Read(h[j][k]), taskrt.ReadWrite(h[i][j]))
			}
		}
		// Right-looking eviction: column k+1 received its last Schur update
		// in this panel (GEMM(i,k+1,k)), so each of its off-band tiles can
		// compress before panel k+1 consumes it. The ReadWrite dependency
		// orders the eviction after the tile's last update and before its
		// panel solve.
		if cfg.Evict && k+1 < nt {
			j := k + 1
			for i := j + 1; i < nt; i++ {
				if i-j <= band {
					continue
				}
				i := i
				sub.Submit("evict", 3*nt-3*k-2, func() {
					g.evictTile(i, j, cfg)
				}, taskrt.ReadWrite(h[i][j]))
			}
		}
	}
	sub.Wait()
	if err := sub.Err(); err != nil {
		return err
	}
	for k := 0; k < nt; k++ {
		g.Diag(k).LowerFromFull()
	}
	return nil
}

// trsmPanel solves panel tile (i,k) against the factored diagonal k in the
// tile's representation at execution time.
func trsmPanel(g *Grid, k, i int, l32 *lazy32) {
	dk := g.Diag(k)
	switch t := g.tiles[i][k].(type) {
	case *tile.DenseF64:
		linalg.TrsmLower(linalg.Right, true, 1, dk, t.D)
	case *tile.LowRank:
		if t.Rank() > 0 {
			linalg.TrsmLower(linalg.Left, false, 1, dk, t.V)
		}
	case *tile.DenseF32:
		tile.TrsmRightLowerTrans32(l32.get(dk), t.D)
	}
}

// lazy32 is the per-panel float32 copy of the factored diagonal, built by
// the first single-precision solve that needs it (sync.Once makes the
// concurrent first touches safe) and recycled by the panel's free32 task,
// which the handle graph orders after every solve.
type lazy32 struct {
	once sync.Once
	d    *tile.Matrix32
}

func (l *lazy32) get(dk *linalg.Matrix) *tile.Matrix32 {
	l.once.Do(func() {
		w := tile.GetMat32(dk.Rows, dk.Cols)
		tile.ToSingleInto(dk, w)
		l.d = w
	})
	return l.d
}

func (l *lazy32) free() {
	if l.d != nil {
		tile.PutMat32(l.d)
		l.d = nil
	}
}

// DenseEntryAssembler streams every tile of the entry evaluator densely in
// float64 — the streaming analogue of the dense layout constructor. The
// grid must be the one passed to PotrfStream.
func DenseEntryAssembler(g *Grid, entry func(i, j int) float64) *Assembler {
	ts := g.TS
	return &Assembler{
		Tile: func(i, j int) tile.Tile {
			return &tile.DenseF64{D: denseBlockPooled(g.TileRows(i), g.TileRows(j), i*ts, j*ts, entry)}
		},
	}
}

// denseBlockPooled materializes the r×c block at (row0,col0) of the entry
// evaluator into a pooled matrix.
//repro:returns-pooled mat
func denseBlockPooled(r, c, row0, col0 int, entry func(i, j int) float64) *linalg.Matrix {
	d := getMat(r, c)
	for j := 0; j < c; j++ {
		col := d.Col(j)
		for i := 0; i < r; i++ {
			col[i] = entry(row0+i, col0+j)
		}
	}
	return d
}
