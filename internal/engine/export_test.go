package engine

// NewGridOversized returns a grid descriptor whose tile count exceeds
// maxTileRows without allocating its tile table, so tests can exercise the
// factorization-side size guard directly (NewGridChecked refuses to build
// such a grid through the public constructors).
func NewGridOversized() *Grid {
	nt := maxTileRows + 1
	return &Grid{N: nt * 4, TS: 4, NT: nt}
}
