package engine

import "repro/internal/linalg"

// The engine's kernel scratch (small core/product matrices of the low-rank
// SYRK/GEMM updates) comes from the linalg workspace pool, shared with the
// BLAS packing buffers and the recompression path, so a worker churning
// through tasks reuses its own buffers instead of allocating on every task.

// getMat returns a pooled r×c matrix whose contents are UNDEFINED: every
// caller's first operation must fully overwrite it (a beta=0 Gemm does —
// linalg.Gemm zeroes the destination first). Callers hand it back with
// putMat once the kernel no longer references it; the low-rank routines copy
// out of their arguments, so scratch never escapes a task.
func getMat(r, c int) *linalg.Matrix { return linalg.GetMat(r, c) }

// putMat recycles a matrix obtained from getMat. The buffer stays out of the
// pool between getMat and putMat, so concurrent workers never share scratch.
func putMat(m *linalg.Matrix) { linalg.PutMat(m) }
