package engine

import (
	"sync"

	"repro/internal/linalg"
)

// ws pools float64 scratch buffers for the hot kernel paths (the small
// core/product matrices of the low-rank SYRK/GEMM updates). sync.Pool's
// per-P caches make this an effectively per-worker workspace: a worker
// churning through recompression tasks reuses its own buffers instead of
// allocating on every task.
var ws = sync.Pool{New: func() any { return new([]float64) }}

// getMat returns a pooled r×c matrix whose contents are UNDEFINED: every
// caller's first operation must fully overwrite it (a beta=0 Gemm does —
// linalg.Gemm zeroes the destination first). Callers hand it back with
// putMat once the kernel no longer references it; the low-rank routines copy
// out of their arguments, so scratch never escapes a task.
func getMat(r, c int) *linalg.Matrix {
	buf := *ws.Get().(*[]float64)
	n := r * c
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return linalg.FromColMajor(r, c, buf[:n])
}

// putMat recycles a matrix obtained from getMat. The buffer stays out of the
// pool between getMat and putMat, so concurrent workers never share scratch.
func putMat(m *linalg.Matrix) {
	buf := m.Data[:cap(m.Data)]
	ws.Put(&buf)
}
