package engine_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/engine"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tlr"
)

// densifyFactor reassembles the grid's lower-triangular factor densely,
// whatever each tile's representation.
func densifyFactor(g *engine.Grid) *linalg.Matrix {
	l := linalg.NewMatrix(g.N, g.N)
	for i := 0; i < g.NT; i++ {
		for j := 0; j <= i; j++ {
			var d *linalg.Matrix
			switch t := g.At(i, j).(type) {
			case *tile.DenseF64:
				d = t.D
			case *tile.DenseF32:
				d = t.D.ToDouble()
			case *tile.LowRank:
				d = t.Dense()
			}
			l.View(i*g.TS, j*g.TS, d.Rows, d.Cols).CopyFrom(d)
		}
	}
	return l
}

// materialize assembles every tile of the grid up front by calling the
// assembler serially — diagonals first, matching the DiagFirst ordering the
// streaming graph enforces, so norm-dependent policies make the same choices.
func materialize(g *engine.Grid, asm *engine.Assembler) {
	for i := 0; i < g.NT; i++ {
		g.Set(i, i, asm.Tile(i, i))
	}
	for i := 0; i < g.NT; i++ {
		for j := 0; j < i; j++ {
			g.Set(i, j, asm.Tile(i, j))
		}
	}
}

// streamFactor runs PotrfStream on a fresh grid with a fresh assembler.
func streamFactor(t *testing.T, n, ts int, cfg engine.Config, mk func(*engine.Grid) *engine.Assembler) *engine.Grid {
	t.Helper()
	g := engine.NewGrid(n, ts)
	rt := taskrt.New(4)
	defer rt.Shutdown()
	if err := engine.PotrfStream(rt, g, cfg, mk(g)); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPotrfStreamingMatchesMaterialized is the streaming-assembly property
// test: for each assembler family (dense, TLR/ACA, adaptive policy) the
// factor produced by PotrfStream — tiles built by tasks fused into the
// factorization graph — must match the factor of the same grid assembled up
// front and run through the non-streaming Potrf. Assembly is deterministic
// (ACA and the compression sketches are seeded per shape), so without
// eviction both paths see identical tile representations and the engine
// performs the identical per-tile kernel sequence; the comparison holds to
// kernel roundoff, with and without windowed submission, including a ragged
// last tile.
func TestPotrfStreamingMatchesMaterialized(t *testing.T) {
	geom := geo.RegularGrid(12, 12) // n = 144
	kern := &cov.Exponential{Sigma2: 1, Range: 0.15}
	entry := func(i, j int) float64 {
		if i == j {
			return kern.Cov(0)
		}
		return kern.Cov(geom.Dist(i, j))
	}
	const tol = 1e-4
	n := geom.Len()

	builders := []struct {
		name string
		mk   func(*engine.Grid) *engine.Assembler
	}{
		{"dense", func(g *engine.Grid) *engine.Assembler {
			return engine.DenseEntryAssembler(g, entry)
		}},
		{"tlr", func(g *engine.Grid) *engine.Assembler {
			return tlr.KernelAssembler(g, geom, kern, tol, 0)
		}},
		{"adaptive", func(g *engine.Grid) *engine.Assembler {
			p := engine.Policy{Band: 1, Tol: tol, RankFrac: 0.5, F32Norm: 0.5}
			return p.EntryAssembler(g, entry)
		}},
	}
	for _, b := range builders {
		for _, ts := range []int{24, 20} { // ts=20 leaves a ragged 4-row last tile
			ref := engine.NewGrid(n, ts)
			materialize(ref, b.mk(ref))
			rt := taskrt.New(4)
			err := engine.Potrf(rt, ref, engine.Config{Tol: tol})
			rt.Shutdown()
			if err != nil {
				t.Fatalf("%s ts=%d: materialized Potrf: %v", b.name, ts, err)
			}
			want := densifyFactor(ref)

			for _, window := range []int{0, 1} {
				got := streamFactor(t, n, ts, engine.Config{Tol: tol, Window: window}, b.mk)
				if d := relMaxDiff(densifyFactor(got), want); d > engineRefTol {
					t.Errorf("%s ts=%d window=%d: streaming factor differs from materialized by %v",
						b.name, ts, window, d)
				}
			}
		}
	}
}

// TestPotrfStreamingEvictionCompresses checks right-looking eviction: on a
// smooth kernel assembled densely, trailing tiles must actually be compressed
// to low rank during the factorization, the byte accounting must balance
// (current bytes + freed bytes = the fully dense assembly), and the evicted
// factor must still reconstruct the matrix to the compression accuracy.
func TestPotrfStreamingEvictionCompresses(t *testing.T) {
	geom := geo.RegularGrid(16, 16) // n = 256
	kern := &cov.Nugget{Kernel: cov.NewMatern(1, 0.3, 2.5), Tau2: 0.05}
	entry := func(i, j int) float64 {
		if i == j {
			return kern.Cov(0)
		}
		return kern.Cov(geom.Dist(i, j))
	}
	const tol, ts = 1e-4, 32 // nt = 8: 15 off-band eviction candidates
	n := geom.Len()

	mk := func(g *engine.Grid) *engine.Assembler { return engine.DenseEntryAssembler(g, entry) }
	g := streamFactor(t, n, ts, engine.Config{Tol: tol, Band: 1, Evict: true, Window: 2}, mk)

	evicted, freed := g.EvictStats()
	if evicted == 0 || freed <= 0 {
		t.Fatalf("no tiles evicted (evicted=%d freed=%d): right-looking eviction inert", evicted, freed)
	}
	mix := g.Mix()
	if mix.LowRank < evicted {
		t.Errorf("mix %+v reports fewer low-rank tiles than the %d evictions", mix, evicted)
	}
	if mix.Dense64 < g.NT {
		t.Errorf("diagonal tiles must stay dense float64: %+v", mix)
	}
	// Eviction happens after a tile's last Schur update, so its rank is final:
	// the freed bytes plus the surviving representation must equal the dense
	// assembly exactly.
	var denseLower int64
	for i := 0; i < g.NT; i++ {
		for j := 0; j <= i; j++ {
			denseLower += 8 * int64(g.TileRows(i)) * int64(g.TileRows(j))
		}
	}
	if got := g.Bytes() + freed; got != denseLower {
		t.Errorf("byte accounting: Bytes()+freed = %d, dense assembly = %d", got, denseLower)
	}

	// The compressed factor still factorizes the matrix: L·Lᵀ ≈ Σ at the
	// eviction tolerance (the bound is loose — each eviction perturbs a tile
	// by ~tol·‖tile‖ mid-factorization and the error propagates).
	l := densifyFactor(g)
	rec := linalg.NewMatrix(n, n)
	linalg.Gemm(false, true, 1, l, l, 0, rec)
	rec.SymmetrizeFromLower()
	full := cov.Matrix(geom, kern)
	full.SymmetrizeFromLower()
	if d := rec.MaxAbsDiff(full); d > 5e-3 {
		t.Errorf("evicted-factor LLᵀ residual %v", d)
	}
}

// TestGridSizeGuard pins the tile-count overflow guard: oversized grids are
// refused with the typed *SizeError — never a panic or an allocation attempt
// — by the constructor and by both factorization entry points.
func TestGridSizeGuard(t *testing.T) {
	if _, err := engine.NewGridChecked(8, 0); err == nil {
		t.Error("want error for tile size 0")
	}
	if _, err := engine.NewGridChecked(-1, 4); err == nil {
		t.Error("want error for negative dimension")
	}
	var se *engine.SizeError
	_, err := engine.NewGridChecked(math.MaxInt/2, 1)
	if !errors.As(err, &se) {
		t.Fatalf("want *SizeError, got %v", err)
	}
	if se.TS != 1 || se.NT != math.MaxInt/2 {
		t.Errorf("SizeError fields n=%d ts=%d nt=%d", se.N, se.TS, se.NT)
	}
	if se.Error() == "" {
		t.Error("SizeError must describe itself")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewGrid must panic where NewGridChecked errors")
			}
		}()
		engine.NewGrid(math.MaxInt/2, 1)
	}()

	rt := taskrt.New(1)
	defer rt.Shutdown()
	big := engine.NewGridOversized()
	if err := engine.Potrf(rt, big, engine.Config{}); !errors.As(err, &se) {
		t.Errorf("Potrf on oversized grid: want *SizeError, got %v", err)
	}
	asm := &engine.Assembler{Tile: func(i, j int) tile.Tile { return nil }}
	if err := engine.PotrfStream(rt, big, engine.Config{}, asm); !errors.As(err, &se) {
		t.Errorf("PotrfStream on oversized grid: want *SizeError, got %v", err)
	}
	if err := engine.PotrfStream(rt, engine.NewGrid(8, 4), engine.Config{}, nil); err == nil {
		t.Error("PotrfStream must reject a nil assembler")
	}
}
