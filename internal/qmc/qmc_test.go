package qmc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestPrimes(t *testing.T) {
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	got := Primes(10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Primes(10) = %v", got)
		}
	}
	if p := Primes(1000); p[999] != 7919 {
		t.Errorf("1000th prime = %d, want 7919", p[999])
	}
	if Primes(0) != nil {
		t.Error("Primes(0) should be nil")
	}
}

func TestGeneratorsInUnitInterval(t *testing.T) {
	gens := map[string]Generator{
		"richtmyer": NewRichtmyer(13),
		"halton":    NewHalton(13, nil),
		"pseudo":    NewPseudo(13, 1),
	}
	for name, g := range gens {
		dst := make([]float64, 13)
		for k := 0; k < 5000; k++ {
			g.Next(dst)
			for i, v := range dst {
				if v <= 0 || v >= 1 {
					t.Fatalf("%s: point %d dim %d = %v outside (0,1)", name, k, i, v)
				}
			}
		}
	}
}

func TestResetReproduces(t *testing.T) {
	for name, g := range map[string]Generator{
		"richtmyer": NewRichtmyerShifted(4, []float64{0.1, 0.2, 0.3, 0.4}),
		"halton":    NewHalton(4, nil),
		"pseudo":    NewPseudo(4, 42),
	} {
		a := make([]float64, 4)
		b := make([]float64, 4)
		first := make([][]float64, 10)
		for k := range first {
			g.Next(a)
			first[k] = append([]float64(nil), a...)
		}
		g.Reset()
		for k := range first {
			g.Next(b)
			for i := range b {
				if b[i] != first[k][i] {
					t.Fatalf("%s: Reset not reproducible at point %d", name, k)
				}
			}
		}
	}
}

func TestRichtmyerLatticeStructure(t *testing.T) {
	// Point k must equal frac(k·√p + shift); spot-check dimension 0 (p=2).
	g := NewRichtmyer(1)
	dst := make([]float64, 1)
	sqrt2 := math.Sqrt(2)
	for k := 1; k <= 100; k++ {
		g.Next(dst)
		want := float64(k) * (sqrt2 - 1)
		want -= math.Floor(want)
		if math.Abs(dst[0]-want) > 1e-9 {
			t.Fatalf("point %d = %v, want %v", k, dst[0], want)
		}
	}
}

func TestHaltonBase2Sequence(t *testing.T) {
	g := NewHalton(1, nil)
	want := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875}
	dst := make([]float64, 1)
	for i, w := range want {
		g.Next(dst)
		if math.Abs(dst[0]-w) > 1e-15 {
			t.Fatalf("halton point %d = %v, want %v", i+1, dst[0], w)
		}
	}
}

func TestUniformMean(t *testing.T) {
	// Sample means converge to 1/2 in every dimension.
	for name, g := range map[string]Generator{
		"richtmyer": NewRichtmyer(5),
		"halton":    NewHalton(5, nil),
	} {
		const n = 20000
		sums := make([]float64, 5)
		dst := make([]float64, 5)
		for k := 0; k < n; k++ {
			g.Next(dst)
			for i, v := range dst {
				sums[i] += v
			}
		}
		for i, s := range sums {
			if m := s / n; math.Abs(m-0.5) > 0.01 {
				t.Errorf("%s dim %d mean %v", name, i, m)
			}
		}
	}
}

func TestQMCBeatsMCOnSmoothIntegrand(t *testing.T) {
	// ∫ Π 12(x_i−1/2)² dx over [0,1]^d: exact value 1 for each factor...
	// use f = Π (1 + (x_i−1/2)) with exact integral 1. QMC error at N=4096
	// should be well below MC error averaged over seeds.
	const dim, n = 6, 4096
	integrate := func(g Generator) float64 {
		dst := make([]float64, dim)
		s := 0.0
		for k := 0; k < n; k++ {
			g.Next(dst)
			f := 1.0
			for _, v := range dst {
				f *= 1 + (v - 0.5)
			}
			s += f
		}
		return s / n
	}
	qmcErr := math.Abs(integrate(NewRichtmyer(dim)) - 1)
	mcErr := 0.0
	const trials = 10
	for s := int64(0); s < trials; s++ {
		mcErr += math.Abs(integrate(NewPseudo(dim, s)) - 1)
	}
	mcErr /= trials
	if qmcErr > mcErr {
		t.Errorf("QMC error %v not better than MC error %v", qmcErr, mcErr)
	}
}

func TestShiftedReplicatesDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g1 := NewRichtmyerShifted(3, RandomShift(3, rng))
	g2 := NewRichtmyerShifted(3, RandomShift(3, rng))
	a, b := make([]float64, 3), make([]float64, 3)
	g1.Next(a)
	g2.Next(b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("differently shifted generators produced identical points")
	}
}

func TestFillMatrix(t *testing.T) {
	g := NewHalton(4, nil)
	r := linalg.NewMatrix(4, 10)
	FillMatrix(g, r)
	// Column j must equal point j.
	g.Reset()
	dst := make([]float64, 4)
	for j := 0; j < 10; j++ {
		g.Next(dst)
		for i := range dst {
			if r.At(i, j) != dst[i] {
				t.Fatalf("FillMatrix mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFillMatrixDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on dim mismatch")
		}
	}()
	FillMatrix(NewHalton(3, nil), linalg.NewMatrix(4, 2))
}

func TestScrambledHaltonBasics(t *testing.T) {
	g := NewScrambledHalton(8, 1)
	dst := make([]float64, 8)
	for k := 0; k < 3000; k++ {
		g.Next(dst)
		for i, v := range dst {
			if v <= 0 || v >= 1 {
				t.Fatalf("point %d dim %d = %v", k, i, v)
			}
		}
	}
	// Reset reproducibility.
	g.Reset()
	first := make([]float64, 8)
	g.Next(first)
	g.Reset()
	again := make([]float64, 8)
	g.Next(again)
	for i := range first {
		if first[i] != again[i] {
			t.Fatal("Reset not reproducible")
		}
	}
}

func TestScrambledHaltonFixesHighDimUniformity(t *testing.T) {
	// In dimension ~50 the plain Halton base-229 coordinate is badly
	// non-uniform over short runs; the scrambled version's mean must be
	// much closer to 1/2.
	const dim, n = 50, 2000
	meanLast := func(g Generator) float64 {
		dst := make([]float64, dim)
		s := 0.0
		for k := 0; k < n; k++ {
			g.Next(dst)
			s += dst[dim-1]
		}
		return s / n
	}
	plain := math.Abs(meanLast(NewHalton(dim, nil)) - 0.5)
	scram := math.Abs(meanLast(NewScrambledHalton(dim, 3)) - 0.5)
	if scram > plain {
		t.Errorf("scrambling did not improve uniformity: plain %v, scrambled %v", plain, scram)
	}
	if scram > 0.05 {
		t.Errorf("scrambled Halton still biased: %v", scram)
	}
}

func TestScrambledHaltonLargeDimension(t *testing.T) {
	// Beyond the uint8 table range (primes > 255) the modular-shift path
	// must still produce valid points.
	g := NewScrambledHalton(60, 7) // 60th prime is 281
	dst := make([]float64, 60)
	for k := 0; k < 500; k++ {
		g.Next(dst)
		for i, v := range dst {
			if v <= 0 || v >= 1 {
				t.Fatalf("point %d dim %d = %v", k, i, v)
			}
		}
	}
}

func TestConstructorsPanicOnBadDim(t *testing.T) {
	for _, f := range []func(){
		func() { NewRichtmyer(0) },
		func() { NewHalton(-1, nil) },
		func() { NewPseudo(0, 1) },
		func() { NewRichtmyerShifted(2, []float64{0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor should panic")
				}
			}()
			f()
		}()
	}
}

// blockGens enumerates the block-capable generators with and without shifts.
func blockGens(dim int) map[string]BlockGenerator {
	rng := rand.New(rand.NewSource(9))
	return map[string]BlockGenerator{
		"richtmyer":         NewRichtmyer(dim),
		"richtmyer-shifted": NewRichtmyerShifted(dim, RandomShift(dim, rng)),
		"halton":            NewHalton(dim, nil),
		"halton-shifted":    NewHalton(dim, RandomShift(dim, rng)),
		"scrambled-halton":  NewScrambledHalton(dim, 3),
	}
}

// TestFillBlockMatchesSequential: any rectangular block must reproduce the
// sequential Next values exactly, at any (point, dimension) offset.
func TestFillBlockMatchesSequential(t *testing.T) {
	const dim, npts = 13, 40
	for name, g := range blockGens(dim) {
		// Reference: the sequential sequence.
		ref := linalg.NewMatrix(npts, dim)
		pt := make([]float64, dim)
		for p := 0; p < npts; p++ {
			g.Next(pt)
			for d, v := range pt {
				ref.Set(p, d, v)
			}
		}
		for _, c := range [][4]int{{0, 0, npts, dim}, {3, 2, 8, 5}, {17, 12, 23, 1}, {npts - 1, 0, 1, dim}} {
			p0, d0, rows, cols := c[0], c[1], c[2], c[3]
			blk := linalg.NewMatrix(rows, cols)
			g.FillBlock(blk, p0, d0)
			for l := 0; l < rows; l++ {
				for d := 0; d < cols; d++ {
					if got, want := blk.At(l, d), ref.At(p0+l, d0+d); got != want {
						t.Fatalf("%s: FillBlock(p0=%d,d0=%d)[%d,%d] = %v, sequential %v",
							name, p0, d0, l, d, got, want)
					}
				}
			}
		}
		// FillBlock must not have consumed sequential state.
		if got := g.Pos(); got != npts {
			t.Fatalf("%s: Pos after %d Next calls = %d", name, npts, got)
		}
	}
}

// TestNextBlockMatchesNext: the lane-major block fill advances the sequence
// exactly like per-point Next, for block-capable and sequential generators.
func TestNextBlockMatchesNext(t *testing.T) {
	const dim, npts = 7, 30
	gens := map[string]Generator{"pseudo": NewPseudo(dim, 5)}
	for name, g := range blockGens(dim) {
		gens[name] = g
	}
	for name, g := range gens {
		g.Reset()
		ref := linalg.NewMatrix(npts, dim)
		pt := make([]float64, dim)
		for p := 0; p < npts; p++ {
			g.Next(pt)
			for d, v := range pt {
				ref.Set(p, d, v)
			}
		}
		g.Reset()
		blk := linalg.NewMatrix(npts, dim)
		NextBlock(g, blk, 12)
		NextBlock(g, blk.View(12, 0, npts-12, dim), npts-12)
		if d := blk.MaxAbsDiff(ref); d != 0 {
			t.Fatalf("%s: NextBlock diverges from Next by %v", name, d)
		}
	}
}

// TestPooledRichtmyerMatchesFresh: the pooled constructor is substitutable
// for NewRichtmyerShifted.
func TestPooledRichtmyerMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shift := RandomShift(6, rng)
	fresh := NewRichtmyerShifted(6, shift)
	for round := 0; round < 3; round++ {
		g := GetRichtmyer(6, shift)
		fresh.Reset()
		a, b := make([]float64, 6), make([]float64, 6)
		for p := 0; p < 50; p++ {
			g.Next(a)
			fresh.Next(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round %d point %d: pooled %v vs fresh %v", round, p, a, b)
				}
			}
		}
		PutRichtmyer(g)
		// An unshifted pooled generator must not inherit the old shift.
		g2 := GetRichtmyer(6, nil)
		un := NewRichtmyer(6)
		g2.Next(a)
		un.Next(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: pooled unshifted %v vs fresh %v", round, a, b)
			}
		}
		PutRichtmyer(g2)
	}
}
