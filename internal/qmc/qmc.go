// Package qmc provides the quasi-Monte Carlo point generators the SOV
// integration consumes: the Richtmyer √prime lattice that Genz's classical
// MVN code uses (it works at any dimension without direction-number
// tables), a Halton sequence, and a plain pseudo-random generator as the MC
// baseline. Randomized (Cranley–Patterson shifted) replicates provide the
// error estimates.
package qmc

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/linalg"
)

// Generator produces a deterministic or random sequence of points in
// [0,1)^Dim.
type Generator interface {
	// Dim returns the dimensionality of generated points.
	//repro:noalloc
	Dim() int
	// Next fills dst (length Dim) with the next point in the sequence.
	Next(dst []float64)
	// Reset rewinds the sequence to its beginning.
	Reset()
}

// BlockGenerator is a Generator whose point k is a direct function of its
// index, so any rectangular (points × dimensions) block of the sequence can
// be produced without advancing sequential state. The chain-blocked SOV
// kernel relies on this to generate exactly the lane block it is about to
// consume — per sample-tile column, per row tile — instead of scattering
// whole points into a pre-allocated grid, and to skip generation entirely
// for dead lane blocks. All the deterministic generators in this package
// (Richtmyer, Halton, ScrambledHalton) implement it; Pseudo cannot.
type BlockGenerator interface {
	Generator
	// FillBlock writes the lane-major block dst[lane][d] = coordinate d0+d
	// of point p0+lane, for lane < dst.Rows and d < dst.Cols: each column of
	// dst holds one QMC dimension across a contiguous run of points. Point
	// indices are zero-based: point 0 is the first point Next produces after
	// Reset, and the values are identical to the sequential ones. FillBlock
	// does not advance the generator's sequential state.
	//repro:noalloc
	FillBlock(dst *linalg.Matrix, p0, d0 int)
	// Pos returns the zero-based index of the point the next Next call would
	// produce.
	Pos() int
	// Skip advances the sequential state by count points without producing
	// them.
	Skip(count int)
}

// NextBlock advances g by count points, writing them lane-major into dst:
// dst[l][d] = coordinate d of point l, so dst must be count × g.Dim().
// Block-capable generators fill whole columns directly (stride-1 writes, one
// pass per dimension); sequential generators fall back to per-point Next
// with a strided scatter through pooled scratch.
func NextBlock(g Generator, dst *linalg.Matrix, count int) {
	if dst.Rows < count || dst.Cols != g.Dim() {
		panic(fmt.Sprintf("qmc: NextBlock dst %dx%d cannot hold %d points of dim %d",
			dst.Rows, dst.Cols, count, g.Dim()))
	}
	if bg, ok := g.(BlockGenerator); ok {
		block := dst
		if dst.Rows != count {
			block = dst.View(0, 0, count, dst.Cols)
		}
		bg.FillBlock(block, bg.Pos(), 0)
		bg.Skip(count)
		return
	}
	point := linalg.GetVec(g.Dim())
	for l := 0; l < count; l++ {
		g.Next(point)
		for d, v := range point {
			dst.Set(l, d, v)
		}
	}
	linalg.PutVec(point)
}

// Primes returns the first n primes (sieve of Eratosthenes with a grown
// bound).
func Primes(n int) []int {
	if n <= 0 {
		return nil
	}
	// Upper bound for the n-th prime: n(ln n + ln ln n) for n ≥ 6.
	limit := 15
	if n >= 6 {
		f := float64(n)
		limit = int(f*(math.Log(f)+math.Log(math.Log(f)))) + 10
	}
	for {
		sieve := make([]bool, limit+1)
		var out []int
		for p := 2; p <= limit; p++ {
			if sieve[p] {
				continue
			}
			out = append(out, p)
			if len(out) == n {
				return out
			}
			for q := p * p; q <= limit; q += p {
				sieve[q] = true
			}
		}
		limit *= 2
	}
}

// Richtmyer is the rank-1 lattice x_k[i] = frac(k·√p_i + Δ_i) with p_i the
// i-th prime and Δ an optional Cranley–Patterson random shift. It is the
// generator used by Genz's MVN implementations because it extends to
// arbitrary dimension.
type Richtmyer struct {
	alpha []float64 // frac(√p_i), a read-only view of the shared table
	shift []float64
	k     float64
}

// alphaTable caches frac(√p_i) across generators: a served workload builds a
// Richtmyer per query (or per replicate), and re-sieving the primes and
// re-rooting them each time is both wasteful and an allocation the warm
// query path cannot afford. The table only ever grows; readers share it.
var alphaTable struct {
	sync.Mutex
	v []float64
}

// richtmyerAlpha returns the first dim lattice multipliers as a shared
// read-only slice.
func richtmyerAlpha(dim int) []float64 {
	alphaTable.Lock()
	defer alphaTable.Unlock()
	if len(alphaTable.v) < dim {
		grown := make([]float64, dim+dim/2)
		for i, p := range Primes(len(grown)) {
			s := math.Sqrt(float64(p))
			grown[i] = s - math.Floor(s)
		}
		alphaTable.v = grown
	}
	return alphaTable.v[:dim]
}

// NewRichtmyer returns an unshifted Richtmyer generator of dimension dim.
func NewRichtmyer(dim int) *Richtmyer {
	return NewRichtmyerShifted(dim, nil)
}

// NewRichtmyerShifted returns a Richtmyer generator with the given shift
// (length dim); a nil shift means no shift. The shift slice is copied.
func NewRichtmyerShifted(dim int, shift []float64) *Richtmyer {
	r := new(Richtmyer)
	initRichtmyer(r, dim, shift)
	return r
}

func initRichtmyer(r *Richtmyer, dim int, shift []float64) {
	if dim <= 0 {
		panic(fmt.Sprintf("qmc: invalid dimension %d", dim))
	}
	if shift != nil && len(shift) != dim {
		panic("qmc: shift length mismatch")
	}
	r.alpha = richtmyerAlpha(dim)
	r.k = 1
	if shift != nil {
		r.shift = append(r.shift[:0], shift...)
	} else {
		r.shift = nil
	}
}

// richtmyerPool recycles Richtmyer generators (and their shift backing
// arrays) so the warm query path can draw one per replicate without
// allocating; the lattice multipliers themselves come from the shared table.
var richtmyerPool = sync.Pool{New: func() any { return new(Richtmyer) }}

// GetRichtmyer returns a pooled Richtmyer generator, identical to
// NewRichtmyerShifted(dim, shift). Return it with PutRichtmyer once the
// caller no longer holds it.
func GetRichtmyer(dim int, shift []float64) *Richtmyer {
	r := richtmyerPool.Get().(*Richtmyer)
	initRichtmyer(r, dim, shift)
	return r
}

// PutRichtmyer recycles a generator obtained from GetRichtmyer. The caller
// must drop its pointer.
func PutRichtmyer(r *Richtmyer) {
	if r != nil {
		richtmyerPool.Put(r)
	}
}

// Dim implements Generator.
//repro:noalloc
func (r *Richtmyer) Dim() int { return len(r.alpha) }

// Next implements Generator.
func (r *Richtmyer) Next(dst []float64) {
	k := r.k
	for i, a := range r.alpha {
		v := k * a
		v -= math.Floor(v)
		if r.shift != nil {
			v += r.shift[i]
			if v >= 1 {
				v--
			}
		}
		// Clamp away from the endpoints: downstream Φ⁻¹ needs (0,1).
		dst[i] = clamp01(v)
	}
	r.k++
}

// Reset implements Generator.
func (r *Richtmyer) Reset() { r.k = 1 }

// Pos implements BlockGenerator.
func (r *Richtmyer) Pos() int { return int(r.k) - 1 }

// Skip implements BlockGenerator.
func (r *Richtmyer) Skip(count int) { r.k += float64(count) }

// FillBlock implements BlockGenerator: one pass per dimension, stride-1
// writes, the lattice recurrence reduced to a multiply, a floor and the
// shift fold per element.
//repro:noalloc
func (r *Richtmyer) FillBlock(dst *linalg.Matrix, p0, d0 int) {
	for d := 0; d < dst.Cols; d++ {
		a := r.alpha[d0+d]
		col := dst.Col(d)
		if r.shift == nil {
			k := float64(p0 + 1)
			for l := range col {
				v := k * a
				col[l] = clamp01(v - math.Floor(v))
				k++
			}
			continue
		}
		sh := r.shift[d0+d]
		k := float64(p0 + 1)
		for l := range col {
			v := k * a
			v -= math.Floor(v)
			v += sh
			if v >= 1 {
				v--
			}
			col[l] = clamp01(v)
			k++
		}
	}
}

// Halton is the van der Corput / Halton sequence in the first Dim prime
// bases with an optional random shift.
type Halton struct {
	bases []int
	shift []float64
	k     int64
}

// NewHalton returns a Halton generator of dimension dim with optional shift.
func NewHalton(dim int, shift []float64) *Halton {
	if dim <= 0 {
		panic(fmt.Sprintf("qmc: invalid dimension %d", dim))
	}
	if shift != nil && len(shift) != dim {
		panic("qmc: shift length mismatch")
	}
	h := &Halton{bases: Primes(dim), k: 1}
	if shift != nil {
		h.shift = append([]float64(nil), shift...)
	}
	return h
}

// Dim implements Generator.
//repro:noalloc
func (h *Halton) Dim() int { return len(h.bases) }

// Next implements Generator.
func (h *Halton) Next(dst []float64) {
	for i, b := range h.bases {
		dst[i] = radicalInverse(h.k, b)
		if h.shift != nil {
			dst[i] += h.shift[i]
			if dst[i] >= 1 {
				dst[i]--
			}
		}
		dst[i] = clamp01(dst[i])
	}
	h.k++
}

// Reset implements Generator.
func (h *Halton) Reset() { h.k = 1 }

// Pos implements BlockGenerator.
func (h *Halton) Pos() int { return int(h.k) - 1 }

// Skip implements BlockGenerator.
func (h *Halton) Skip(count int) { h.k += int64(count) }

// FillBlock implements BlockGenerator.
//repro:noalloc
func (h *Halton) FillBlock(dst *linalg.Matrix, p0, d0 int) {
	for d := 0; d < dst.Cols; d++ {
		b := h.bases[d0+d]
		col := dst.Col(d)
		var sh float64
		if h.shift != nil {
			sh = h.shift[d0+d]
		}
		for l := range col {
			v := radicalInverse(int64(p0+l+1), b) + sh
			if v >= 1 {
				v--
			}
			col[l] = clamp01(v)
		}
	}
}

//repro:noalloc
func radicalInverse(k int64, base int) float64 {
	inv := 1.0 / float64(base)
	f := inv
	v := 0.0
	for k > 0 {
		v += float64(k%int64(base)) * f
		k /= int64(base)
		f *= inv
	}
	return v
}

// ScrambledHalton is the Halton sequence with per-base random digit
// permutations (Braaten–Weller scrambling). Plain Halton degrades badly in
// high dimension because large prime bases produce long monotone runs;
// scrambling restores uniformity while keeping the low-discrepancy
// structure.
type ScrambledHalton struct {
	bases []int
	perms [][]uint8 // perms[d][digit]: permuted digit, perms[d][0] == 0
	k     int64
}

// NewScrambledHalton returns a scrambled Halton generator of dimension dim
// seeded by seed.
func NewScrambledHalton(dim int, seed int64) *ScrambledHalton {
	if dim <= 0 {
		panic(fmt.Sprintf("qmc: invalid dimension %d", dim))
	}
	rng := rand.New(rand.NewSource(seed))
	h := &ScrambledHalton{bases: Primes(dim), perms: make([][]uint8, dim), k: 1}
	for d, b := range h.bases {
		if b > 255 {
			// Digits are stored as uint8; the 54th prime is 251, so this
			// only matters beyond ~2500 dimensions — use a modular shift
			// permutation there instead of an explicit table.
			h.perms[d] = nil
			continue
		}
		p := make([]uint8, b)
		for i := range p {
			p[i] = uint8(i)
		}
		// Permute the nonzero digits; digit 0 must stay fixed so that the
		// radical inverse remains in [0,1).
		for i := b - 1; i > 1; i-- {
			j := 1 + rng.Intn(i)
			p[i], p[j] = p[j], p[i]
		}
		h.perms[d] = p
	}
	return h
}

// Dim implements Generator.
//repro:noalloc
func (h *ScrambledHalton) Dim() int { return len(h.bases) }

// Next implements Generator.
func (h *ScrambledHalton) Next(dst []float64) {
	for d, b := range h.bases {
		dst[d] = clamp01(scrambledRadicalInverse(h.k, b, h.perms[d]))
	}
	h.k++
}

// Reset implements Generator.
func (h *ScrambledHalton) Reset() { h.k = 1 }

// Pos implements BlockGenerator.
func (h *ScrambledHalton) Pos() int { return int(h.k) - 1 }

// Skip implements BlockGenerator.
func (h *ScrambledHalton) Skip(count int) { h.k += int64(count) }

// FillBlock implements BlockGenerator.
//repro:noalloc
func (h *ScrambledHalton) FillBlock(dst *linalg.Matrix, p0, d0 int) {
	for d := 0; d < dst.Cols; d++ {
		b := h.bases[d0+d]
		perm := h.perms[d0+d]
		col := dst.Col(d)
		for l := range col {
			col[l] = clamp01(scrambledRadicalInverse(int64(p0+l+1), b, perm))
		}
	}
}

//repro:noalloc
func scrambledRadicalInverse(k int64, base int, perm []uint8) float64 {
	inv := 1.0 / float64(base)
	f := inv
	v := 0.0
	b := int64(base)
	for k > 0 {
		digit := k % b
		if perm != nil {
			digit = int64(perm[digit])
		} else {
			// Modular-shift scrambling for bases beyond the table range.
			if digit != 0 {
				digit = 1 + (digit*7919+13)%(b-1)
			}
		}
		v += float64(digit) * f
		k /= b
		f *= inv
	}
	return v
}

// Pseudo is the plain Monte Carlo baseline: i.i.d. U(0,1) points.
type Pseudo struct {
	dim  int
	seed int64
	rng  *rand.Rand
}

// NewPseudo returns a pseudo-random generator of dimension dim.
func NewPseudo(dim int, seed int64) *Pseudo {
	if dim <= 0 {
		panic(fmt.Sprintf("qmc: invalid dimension %d", dim))
	}
	return &Pseudo{dim: dim, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Dim implements Generator.
//repro:noalloc
func (p *Pseudo) Dim() int { return p.dim }

// Next implements Generator.
func (p *Pseudo) Next(dst []float64) {
	for i := range dst[:p.dim] {
		dst[i] = clamp01(p.rng.Float64())
	}
}

// Reset implements Generator.
func (p *Pseudo) Reset() { p.rng = rand.New(rand.NewSource(p.seed)) }

// clamp01 keeps u strictly inside (0,1) so that Φ⁻¹ stays finite.
//repro:noalloc
func clamp01(u float64) float64 {
	const eps = 1e-15
	if u < eps {
		return eps
	}
	if u > 1-1e-12 {
		return 1 - 1e-12
	}
	return u
}

// FillMatrix fills the n×N matrix R with samples: column j holds point j of
// the sequence, so row i is QMC dimension i. This is the R matrix of the
// paper's Algorithm 2 (line 4).
func FillMatrix(g Generator, r *linalg.Matrix) {
	if r.Rows != g.Dim() {
		panic(fmt.Sprintf("qmc: matrix rows %d != generator dim %d", r.Rows, g.Dim()))
	}
	for j := 0; j < r.Cols; j++ {
		g.Next(r.Col(j))
	}
}

// RandomShift draws a uniform shift vector of length dim for randomized QMC
// replicates.
func RandomShift(dim int, rng *rand.Rand) []float64 {
	s := make([]float64, dim)
	FillShift(s, rng)
	return s
}

// FillShift is RandomShift into caller-owned storage (pooled by the warm
// replicate path).
func FillShift(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Float64()
	}
}

// FillShiftSeeded fills dst with a Cranley–Patterson shift derived from seed
// by the splitmix64 recurrence — the allocation-free deterministic
// counterpart of FillShift for paths that cannot afford a math/rand source
// (the early-stopping wave integration draws one pooled shifted generator
// per replicate on the warm serving path). Identical seeds produce identical
// shifts on every platform.
//repro:noalloc
func FillShiftSeeded(dst []float64, seed uint64) {
	x := seed
	for i := range dst {
		x += 0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		dst[i] = float64(z>>11) / (1 << 53)
	}
}
