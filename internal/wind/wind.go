// Package wind generates a synthetic stand-in for the Saudi-Arabia wind
// speed dataset the paper analyzes (hourly WRF reanalysis aggregated to
// daily means over 53,362 locations, 2013–2016). The real data is not
// redistributable, so this generator produces a field with the same
// structure the application code exercises: an orography-flavoured mean
// surface (elevated winds in the north, east and southwest mountains, as in
// the paper's Figure 2a), a smooth spatially correlated daily anomaly with
// temporal AR(1) persistence and a seasonal cycle, on a longitude/latitude
// box over the Arabian peninsula.
package wind

import (
	"math"
	"math/rand"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
)

// Domain is the approximate Saudi-Arabia bounding box of the paper's maps.
var Domain = struct{ Lon0, Lon1, Lat0, Lat1 float64 }{34, 56, 16, 33}

// Dataset is a simulated multi-day wind speed record.
type Dataset struct {
	Geom   *geo.Geom   // locations in lon/lat
	Speeds [][]float64 // Speeds[d][i]: daily mean wind speed (m/s) on day d at location i
}

// Days returns the number of simulated days.
func (d *Dataset) Days() int { return len(d.Speeds) }

// meanSurface is the "climatological" wind speed in m/s: a 5 m/s base with
// bumps over the northern plateau, the eastern coast and the southwestern
// (Asir) mountains, and calmer interior desert — shaped to resemble the
// paper's Figure 2a.
func meanSurface(p geo.Point) float64 {
	bump := func(lon, lat, amp, scale float64) float64 {
		dx := (p.X - lon) / scale
		dy := (p.Y - lat) / scale
		return amp * math.Exp(-(dx*dx+dy*dy)/2)
	}
	v := 4.2
	v += bump(41, 31, 3.5, 3.5) // north
	v += bump(50, 27, 2.8, 3.0) // east (Gulf coast)
	v += bump(43, 19, 3.2, 2.5) // southwest mountains
	v -= bump(46, 24, 1.8, 4.0) // calmer central desert
	return v
}

// Config controls the generator.
type Config struct {
	Nx, Ny int     // grid resolution over the domain
	Days   int     // number of simulated days
	Seed   int64   // RNG seed
	Range  float64 // spatial range of the daily anomaly, in domain fraction (default 0.12)
	Nu     float64 // Matérn smoothness of the anomaly (default 1.43391, the paper's fit)
	SD     float64 // anomaly standard deviation in m/s (default 1.6)
	AR1    float64 // day-to-day persistence (default 0.6)
}

func (c Config) withDefaults() Config {
	if c.Nx <= 0 {
		c.Nx = 24
	}
	if c.Ny <= 0 {
		c.Ny = 20
	}
	if c.Days <= 0 {
		c.Days = 120
	}
	if c.Range <= 0 {
		c.Range = 0.12
	}
	if c.Nu <= 0 {
		c.Nu = 1.43391
	}
	if c.SD <= 0 {
		c.SD = 1.6
	}
	if c.AR1 == 0 {
		c.AR1 = 0.6
	}
	return c
}

// Generate simulates the dataset. The spatial anomaly field uses a Matérn
// kernel factorized once and shared across days; wind speeds are floored at
// 0.2 m/s to stay physical.
func Generate(cfg Config) (*Dataset, error) {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	unit := geo.RegularGrid(c.Nx, c.Ny)
	k := cov.NewMatern(1, c.Range, c.Nu)
	sigma := cov.Matrix(unit, &cov.Nugget{Kernel: k, Tau2: 1e-8})
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		return nil, err
	}
	g := unit.Rect(Domain.Lon0, Domain.Lon1, Domain.Lat0, Domain.Lat1)
	n := g.Len()
	base := make([]float64, n)
	for i, p := range g.Pts {
		base[i] = meanSurface(p)
	}
	d := &Dataset{Geom: g, Speeds: make([][]float64, c.Days)}
	anom := make([]float64, n)  // AR(1) state
	fresh := make([]float64, n) // innovation
	z := make([]float64, n)
	innovScale := math.Sqrt(1 - c.AR1*c.AR1)
	for day := 0; day < c.Days; day++ {
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			acc := 0.0
			for j := 0; j <= i; j++ {
				acc += l.At(i, j) * z[j]
			}
			fresh[i] = acc
		}
		season := 0.8 * math.Sin(2*math.Pi*float64(day)/365+1.1)
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			if day == 0 {
				anom[i] = fresh[i]
			} else {
				anom[i] = c.AR1*anom[i] + innovScale*fresh[i]
			}
			v := base[i] + season + c.SD*anom[i]
			if v < 0.2 {
				v = 0.2
			}
			row[i] = v
		}
		d.Speeds[day] = row
	}
	return d, nil
}

// Standardize returns the standardized field for one day:
// z_i = (speed_i − mean_i)/sd_i with the per-location mean and standard
// deviation taken over all days — the preprocessing the paper applies
// before fitting the Matérn model (Section V-C.2).
func (d *Dataset) Standardize(day int) (z, mean, sd []float64) {
	n := d.Geom.Len()
	days := float64(d.Days())
	mean = make([]float64, n)
	sd = make([]float64, n)
	for _, row := range d.Speeds {
		for i, v := range row {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= days
	}
	for _, row := range d.Speeds {
		for i, v := range row {
			dv := v - mean[i]
			sd[i] += dv * dv
		}
	}
	for i := range sd {
		sd[i] = math.Sqrt(sd[i] / (days - 1))
		if sd[i] < 1e-9 {
			sd[i] = 1e-9
		}
	}
	z = make([]float64, n)
	for i, v := range d.Speeds[day] {
		z[i] = (v - mean[i]) / sd[i]
	}
	return z, mean, sd
}
