package wind

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func small() Config {
	return Config{Nx: 10, Ny: 8, Days: 60, Seed: 1}
}

func TestGenerateShapes(t *testing.T) {
	d, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	if d.Geom.Len() != 80 {
		t.Fatalf("n = %d", d.Geom.Len())
	}
	if d.Days() != 60 {
		t.Fatalf("days = %d", d.Days())
	}
	for day, row := range d.Speeds {
		if len(row) != 80 {
			t.Fatalf("day %d row length %d", day, len(row))
		}
	}
}

func TestSpeedsPhysical(t *testing.T) {
	d, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	for day, row := range d.Speeds {
		for i, v := range row {
			if v < 0.2 || v > 25 || math.IsNaN(v) {
				t.Fatalf("day %d loc %d speed %v unphysical", day, i, v)
			}
		}
	}
}

func TestDomainCoordinates(t *testing.T) {
	d, _ := Generate(small())
	for _, p := range d.Geom.Pts {
		if p.X < Domain.Lon0 || p.X > Domain.Lon1 || p.Y < Domain.Lat0 || p.Y > Domain.Lat1 {
			t.Fatalf("point %+v outside domain", p)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, _ := Generate(small())
	b, _ := Generate(small())
	for day := range a.Speeds {
		for i := range a.Speeds[day] {
			if a.Speeds[day][i] != b.Speeds[day][i] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	cfg := small()
	cfg.Seed = 2
	c, _ := Generate(cfg)
	same := true
	for i := range a.Speeds[0] {
		if a.Speeds[0][i] != c.Speeds[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestMeanSurfaceStructure(t *testing.T) {
	// The southwest mountains must be windier than the central desert, as
	// in the paper's maps.
	sw := meanSurface(geo.Point{X: 43, Y: 19})
	desert := meanSurface(geo.Point{X: 46, Y: 24})
	north := meanSurface(geo.Point{X: 41, Y: 31})
	if sw <= desert || north <= desert {
		t.Errorf("mean surface structure wrong: sw=%v north=%v desert=%v", sw, north, desert)
	}
}

func TestStandardizeMoments(t *testing.T) {
	cfg := small()
	cfg.Days = 200
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, mean, sd := d.Standardize(100)
	// Re-standardizing every day and averaging must give ~0 mean, ~1 sd.
	n := d.Geom.Len()
	m1 := make([]float64, n)
	m2 := make([]float64, n)
	for day := 0; day < d.Days(); day++ {
		z, _, _ := d.Standardize(day)
		for i, v := range z {
			m1[i] += v
			m2[i] += v * v
		}
	}
	for i := 0; i < n; i++ {
		if avg := m1[i] / float64(d.Days()); math.Abs(avg) > 1e-10 {
			t.Fatalf("standardized mean at %d = %v", i, avg)
		}
		if v := m2[i] / float64(d.Days()-1); math.Abs(v-1) > 0.05 {
			t.Fatalf("standardized var at %d = %v", i, v)
		}
	}
	for i := range sd {
		if sd[i] <= 0 || mean[i] < 0.2 {
			t.Fatalf("implausible mean/sd at %d: %v, %v", i, mean[i], sd[i])
		}
	}
}

func TestSpatialCorrelationPositive(t *testing.T) {
	// Neighbouring locations must be positively correlated across days.
	cfg := small()
	cfg.Days = 150
	d, _ := Generate(cfg)
	i, j := 0, 1 // adjacent grid points
	var si, sj, sij, s2i, s2j float64
	days := float64(d.Days())
	for _, row := range d.Speeds {
		si += row[i]
		sj += row[j]
	}
	mi, mj := si/days, sj/days
	for _, row := range d.Speeds {
		sij += (row[i] - mi) * (row[j] - mj)
		s2i += (row[i] - mi) * (row[i] - mi)
		s2j += (row[j] - mj) * (row[j] - mj)
	}
	corr := sij / math.Sqrt(s2i*s2j)
	if corr < 0.3 {
		t.Errorf("neighbour correlation %v too weak", corr)
	}
	// A far-away pair should be less correlated than neighbours.
	k := d.Geom.Len() - 1
	var sk, s2k, sik float64
	for _, row := range d.Speeds {
		sk += row[k]
	}
	mk := sk / days
	for _, row := range d.Speeds {
		sik += (row[i] - mi) * (row[k] - mk)
		s2k += (row[k] - mk) * (row[k] - mk)
	}
	corrFar := sik / math.Sqrt(s2i*s2k)
	if corrFar >= corr {
		t.Errorf("far correlation %v not below near correlation %v", corrFar, corr)
	}
}

func TestTemporalPersistence(t *testing.T) {
	cfg := small()
	cfg.Days = 200
	d, _ := Generate(cfg)
	// Lag-1 autocorrelation of the standardized series at a location should
	// be positive (AR(1) with coefficient 0.6).
	var num, den float64
	zPrev, _, _ := d.Standardize(0)
	prev := zPrev[5]
	mean := 0.0
	vals := make([]float64, d.Days())
	for day := 0; day < d.Days(); day++ {
		z, _, _ := d.Standardize(day)
		vals[day] = z[5]
		mean += z[5]
	}
	mean /= float64(d.Days())
	for day := 1; day < d.Days(); day++ {
		num += (vals[day] - mean) * (vals[day-1] - mean)
	}
	for day := 0; day < d.Days(); day++ {
		den += (vals[day] - mean) * (vals[day] - mean)
	}
	if ac := num / den; ac < 0.25 {
		t.Errorf("lag-1 autocorrelation %v too weak for AR1=0.6", ac)
	}
	_ = prev
}
