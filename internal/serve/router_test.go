package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// fakeBackend is a stub replica: health-checkable, counting proxied
// queries, with a switchable health/failure mode.
type fakeBackend struct {
	ts      *httptest.Server
	queries atomic.Uint64
	sick    atomic.Bool // /healthz returns 503
	reject  atomic.Bool // queries return 503
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	b := &fakeBackend{}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			if b.sick.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			io.WriteString(w, "ok\n")
		case strings.HasPrefix(r.URL.Path, "/v1/"):
			if b.reject.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":"overloaded"}`)
				return
			}
			b.queries.Add(1)
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"prob":0.5,"stderr":0.001,"n":16,"method":"dense"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func newTestRouter(t *testing.T, cfg RouterConfig) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Session.QMCSize == 0 {
		cfg.Session = parmvn.Config{QMCSize: 400, TileSize: 16}
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 25 * time.Millisecond
	}
	if cfg.HealthTimeout == 0 {
		cfg.HealthTimeout = 250 * time.Millisecond
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() { ts.Close(); r.Close() })
	return r, ts
}

func keyBody(rng float64) string {
	return fmt.Sprintf(`{"grid":{"nx":4,"ny":4},"kernel":{"family":"exponential","range":%g},"lower":-1}`, rng)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterPlacement checks consistent-hash placement: one key always
// lands on one backend, and a spread of keys uses both.
func TestRouterPlacement(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	_, ts := newTestRouter(t, RouterConfig{Backends: []string{b1.ts.URL, b2.ts.URL}})

	for i := 0; i < 5; i++ {
		status, _ := post(t, ts.URL+"/v1/mvnprob", keyBody(0.3))
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
	}
	q1, q2 := b1.queries.Load(), b2.queries.Load()
	if (q1 != 5 || q2 != 0) && (q1 != 0 || q2 != 5) {
		t.Errorf("one key split across backends: %d/%d, want 5/0 or 0/5", q1, q2)
	}

	for i := 0; i < 32; i++ {
		status, _ := post(t, ts.URL+"/v1/mvnprob", keyBody(0.05+float64(i)*0.01))
		if status != http.StatusOK {
			t.Fatalf("key %d status %d", i, status)
		}
	}
	if b1.queries.Load() == 0 || b2.queries.Load() == 0 {
		t.Errorf("32 keys never reached one backend: %d/%d", b1.queries.Load(), b2.queries.Load())
	}
}

// TestRouterFailover kills one backend: requests owned by it must retry to
// the surviving replica, and the dead backend must leave the ring.
func TestRouterFailover(t *testing.T) {
	b1 := newFakeBackend(t)
	dead := newFakeBackend(t)
	dead.ts.Close() // transport errors from the start

	r, ts := newTestRouter(t, RouterConfig{Backends: []string{b1.ts.URL, dead.ts.URL}})
	for i := 0; i < 20; i++ {
		status, out := post(t, ts.URL+"/v1/mvnprob", keyBody(0.05+float64(i)*0.013))
		if status != http.StatusOK {
			t.Fatalf("key %d status %d: %v", i, status, out)
		}
	}
	st := r.Snapshot()
	if st.HealthyBackends != 1 {
		t.Errorf("healthy backends = %d, want 1", st.HealthyBackends)
	}
	if st.Retries == 0 {
		t.Error("no retries recorded despite a dead backend in the ring")
	}
	if b1.queries.Load() != 20 {
		t.Errorf("surviving backend served %d, want all 20", b1.queries.Load())
	}
}

// TestRouterSpillOn503 checks overload spilling: a backend answering 503
// keeps its ring membership (it is alive), but its requests spill to the
// next replica instead of failing.
func TestRouterSpillOn503(t *testing.T) {
	ok, busy := newFakeBackend(t), newFakeBackend(t)
	busy.reject.Store(true)
	r, ts := newTestRouter(t, RouterConfig{Backends: []string{ok.ts.URL, busy.ts.URL}})

	for i := 0; i < 20; i++ {
		status, out := post(t, ts.URL+"/v1/mvnprob", keyBody(0.05+float64(i)*0.013))
		if status != http.StatusOK {
			t.Fatalf("key %d status %d: %v", i, status, out)
		}
	}
	st := r.Snapshot()
	if st.HealthyBackends != 2 {
		t.Errorf("healthy backends = %d, want 2 (503 is overload, not death)", st.HealthyBackends)
	}
	if st.Retries == 0 {
		t.Error("no spills recorded despite an overloaded backend")
	}
	if ok.queries.Load() != 20 {
		t.Errorf("healthy backend served %d, want all 20", ok.queries.Load())
	}
}

// TestRouterNoBackend drives the router to zero healthy backends.
func TestRouterNoBackend(t *testing.T) {
	dead := newFakeBackend(t)
	dead.ts.Close()
	r, ts := newTestRouter(t, RouterConfig{Backends: []string{dead.ts.URL}})

	// First request discovers the death (all replicas failed).
	status, _ := post(t, ts.URL+"/v1/mvnprob", keyBody(0.3))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("dead backend status %d, want 503", status)
	}
	// Later requests find an empty ring.
	status, _ = post(t, ts.URL+"/v1/mvnprob", keyBody(0.3))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("empty ring status %d, want 503", status)
	}
	if st := r.Snapshot(); st.NoBackend == 0 {
		t.Error("no_backend counter never moved")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz = %d, want 503 with no healthy backends", resp.StatusCode)
	}
}

// TestRouterHealthRecovery flips a backend sick and back: the ring must
// drop it and re-admit it (the key handoff round trip).
func TestRouterHealthRecovery(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	r, _ := newTestRouter(t, RouterConfig{Backends: []string{b1.ts.URL, b2.ts.URL}})

	waitFor(t, "both healthy", func() bool { return r.Snapshot().HealthyBackends == 2 })
	b2.sick.Store(true)
	waitFor(t, "sick backend leaving the ring", func() bool { return r.Snapshot().HealthyBackends == 1 })
	b2.sick.Store(false)
	waitFor(t, "recovered backend rejoining", func() bool { return r.Snapshot().HealthyBackends == 2 })
	if st := r.Snapshot(); st.RingRebuilds < 3 {
		t.Errorf("ring rebuilds = %d, want ≥3 (initial + leave + rejoin)", st.RingRebuilds)
	}
}

// TestRouterBadRequest checks the router rejects undecodable and
// unroutable requests itself, without burning a backend round trip.
func TestRouterBadRequest(t *testing.T) {
	b := newFakeBackend(t)
	r, ts := newTestRouter(t, RouterConfig{Backends: []string{b.ts.URL}})

	status, out := post(t, ts.URL+"/v1/mvnprob", `{"kernel":{"family":"nope"}}`)
	if status != http.StatusBadRequest {
		t.Errorf("bad request status %d: %v", status, out)
	}
	status, _ = post(t, ts.URL+"/v1/mvnprob", `not json`)
	if status != http.StatusBadRequest {
		t.Errorf("malformed JSON status %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/mvnprob")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", resp.StatusCode)
	}
	if b.queries.Load() != 0 {
		t.Errorf("bad requests reached the backend (%d)", b.queries.Load())
	}
	if st := r.Snapshot(); st.BadRequests != 2 {
		t.Errorf("bad_requests = %d, want 2", st.BadRequests)
	}
}

// TestRouterStatsEndpoint checks the /stats wire format.
func TestRouterStatsEndpoint(t *testing.T) {
	b := newFakeBackend(t)
	_, ts := newTestRouter(t, RouterConfig{Backends: []string{b.ts.URL}})

	if status, _ := post(t, ts.URL+"/v1/mvtprob", keyBody(0.2)); status != http.StatusOK {
		t.Fatalf("mvtprob via router status %d", status)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.Requests != 1 || len(st.Backends) != 1 || st.Backends[0].Forwarded != 1 {
		t.Errorf("stats = %+v, want 1 request forwarded to 1 backend", st)
	}
}

// TestNewRouterValidation pins the constructor's input checks.
func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRouter(RouterConfig{Backends: []string{"not-a-url"}}); err == nil {
		t.Error("relative URL accepted")
	}
	if _, err := NewRouter(RouterConfig{Backends: []string{"http://a:1", "http://a:1/"}}); err == nil {
		t.Error("duplicate backend accepted")
	}
}
