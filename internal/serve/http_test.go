package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
)

func newTestHTTP(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func TestHTTPEndpoints(t *testing.T) {
	srv, ts := newTestHTTP(t, testConfig())

	// A valid MVN query.
	status, out := post(t, ts.URL+"/v1/mvnprob",
		`{"grid":{"nx":4,"ny":4},"kernel":{"family":"exponential","range":0.3},"lower":-1}`)
	if status != http.StatusOK {
		t.Fatalf("mvnprob status %d: %v", status, out)
	}
	p, ok := out["prob"].(float64)
	if !ok || p <= 0 || p > 1 {
		t.Fatalf("prob = %v, want in (0,1]", out["prob"])
	}
	if out["method"] != "dense" || out["n"] != float64(16) {
		t.Fatalf("meta = %v/%v, want dense/16", out["method"], out["n"])
	}

	// The MVT endpoint with the same problem (shares the cached factor).
	status, out = post(t, ts.URL+"/v1/mvtprob",
		`{"grid":{"nx":4,"ny":4},"kernel":{"family":"exponential","range":0.3},"lower":-1,"nu":7}`)
	if status != http.StatusOK {
		t.Fatalf("mvtprob status %d: %v", status, out)
	}
	if st := srv.Snapshot(); st.Factorizations != 1 {
		t.Fatalf("factorizations = %d, want 1 across mvn+mvt", st.Factorizations)
	}

	// healthz.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	// stats reflects the two served queries.
	var st Stats
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	if st.Requests != 2 || st.MVNRequests != 1 || st.MVTRequests != 1 {
		t.Fatalf("stats requests = %d/%d/%d, want 2/1/1", st.Requests, st.MVNRequests, st.MVTRequests)
	}
	if st.LatencyCount != 2 || st.LatencyMeanMs <= 0 {
		t.Fatalf("latency count/mean = %d/%g", st.LatencyCount, st.LatencyMeanMs)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newTestHTTP(t, testConfig())
	cases := []struct {
		name, endpoint, body string
		status               int
		field                string
	}{
		{"bad json", "/v1/mvnprob", `{"grid":`, http.StatusBadRequest, "body"},
		{"empty body", "/v1/mvnprob", ``, http.StatusBadRequest, "body"},
		{"no problem", "/v1/mvnprob", `{"kernel":{"family":"exponential","range":0.2}}`, http.StatusBadRequest, "locs"},
		{"bad kernel", "/v1/mvnprob", `{"grid":{"nx":3,"ny":3},"kernel":{"family":"exponential","range":-2}}`, http.StatusBadRequest, "kernel"},
		{"nu on mvn", "/v1/mvnprob", `{"grid":{"nx":3,"ny":3},"kernel":{"family":"exponential","range":0.2},"nu":5}`, http.StatusBadRequest, "nu"},
		{"missing nu", "/v1/mvtprob", `{"grid":{"nx":3,"ny":3},"kernel":{"family":"exponential","range":0.2}}`, http.StatusBadRequest, "nu"},
		{"oversized", "/v1/mvnprob", `{"grid":{"nx":1000,"ny":1000},"kernel":{"family":"exponential","range":0.2}}`, http.StatusBadRequest, "grid"},
	}
	for _, tc := range cases {
		status, out := post(t, ts.URL+tc.endpoint, tc.body)
		if status != tc.status {
			t.Fatalf("%s: status %d, want %d (%v)", tc.name, status, tc.status, out)
		}
		if out["field"] != tc.field {
			t.Fatalf("%s: field %v, want %q", tc.name, out["field"], tc.field)
		}
	}

	// Wrong HTTP method.
	resp, err := http.Get(ts.URL + "/v1/mvnprob")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET mvnprob = %d, want 405", resp.StatusCode)
	}

	// Oversized body → 413.
	cfgSmall := testConfig()
	cfgSmall.MaxBodyBytes = 64
	_, tsSmall := newTestHTTP(t, cfgSmall)
	big := `{"grid":{"nx":3,"ny":3},"kernel":{"family":"exponential","range":0.2},"a":[` +
		strings.Repeat("0,", 500) + `0]}`
	resp, err = http.Post(tsSmall.URL+"/v1/mvnprob", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

// TestHTTPOverloadedStatus pins the 503 + Retry-After mapping for
// backpressure rejections.
func TestHTTPOverloadedStatus(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflightFactor = 1
	cfg.FactorQueueDepth = -1 // no queue
	srv, ts := newTestHTTP(t, cfg)

	blocker := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), testRequest(24, 0.1))
		blocker <- err
	}()
	for srv.Snapshot().Factorizations == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	var got503 bool
	for i := 0; i < 8 && !got503; i++ {
		resp, err := http.Post(ts.URL+"/v1/mvnprob", "application/json", strings.NewReader(
			`{"grid":{"nx":5,"ny":5},"kernel":{"family":"exponential","range":0.07},"lower":-1}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
			got503 = true
		}
		resp.Body.Close()
	}
	if err := <-blocker; err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if !got503 {
		t.Skip("factorization finished before overload could be observed")
	}
}

// TestHTTPExplicitLocsAndNullLimits covers the explicit-locations schema
// with per-dimension null (open) limits.
func TestHTTPExplicitLocsAndNullLimits(t *testing.T) {
	_, ts := newTestHTTP(t, testConfig())
	locs := parmvn.Grid(3, 3)
	wire := make([][2]float64, len(locs))
	for i, p := range locs {
		wire[i] = [2]float64{p.X, p.Y}
	}
	body, _ := json.Marshal(map[string]any{
		"locs":   wire,
		"kernel": map[string]any{"family": "exponential", "range": 0.3},
		"a":      []any{nil, -1, -1, nil, -1, -1, -1, -1, -1},
		"b":      []any{1, 1, nil, 1, nil, 1, 1, 1, 1},
	})
	status, out := post(t, ts.URL+"/v1/mvnprob", string(body))
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	if p := out["prob"].(float64); p <= 0 || p >= 1 {
		t.Fatalf("prob = %g, want in (0,1)", p)
	}
}
