package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro"
)

// goldenTol is the tolerance for the checked-in expected probabilities.
//
// With a fixed configuration the whole pipeline is deterministic (default-
// seeded QMC, deterministic compression), so on one machine the results are
// bit-stable; the tolerance only has to absorb cross-architecture floating-
// point variation (FMA contraction, the CPUID-gated assembly kernels vs the
// portable fallbacks), which is orders of magnitude below it. Any serving-
// layer regression — wrong factor served, limits misrouted in batch fan-in,
// seed drift, tile-bucket changes — moves the result far more than 1e-6
// relative, so it cannot hide behind the engine's own tolerance tests.
const goldenTol = 1e-6

// goldenCase is one fixture problem with its recorded expected probability.
// Re-record after an intentional numerical change with:
//
//	GOLDEN_PRINT=1 go test -run TestGoldenEndToEnd ./internal/serve/
type goldenCase struct {
	name   string
	method string
	kernel parmvn.KernelSpec
	lower  float64
	upper  float64 // +Inf ⇒ half-open box
	nu     float64 // >0 ⇒ Student-t
	want   float64
}

var goldenCases = []goldenCase{
	{name: "dense-mvn-halfopen", method: "dense",
		kernel: parmvn.KernelSpec{Family: "exponential", Range: 0.3},
		lower:  -1, upper: math.Inf(1), want: 0.1573968786767614},
	{name: "tlr-mvn-halfopen", method: "tlr",
		kernel: parmvn.KernelSpec{Family: "exponential", Range: 0.3},
		lower:  -1, upper: math.Inf(1), want: 0.1574468974571188},
	{name: "adaptive-mvn-halfopen", method: "adaptive",
		kernel: parmvn.KernelSpec{Family: "exponential", Range: 0.3},
		lower:  -1, upper: math.Inf(1), want: 0.1573968786767614},
	{name: "dense-mvn-box-matern", method: "dense",
		kernel: parmvn.KernelSpec{Family: "matern", Range: 0.2, Nu: 1.5},
		lower:  -2, upper: 0.5, want: 0.02223374314744166},
	{name: "tlr-mvt", method: "tlr",
		kernel: parmvn.KernelSpec{Family: "exponential", Range: 0.3},
		lower:  -1, upper: math.Inf(1), nu: 6, want: 0.1652857331284753},
	{name: "adaptive-mvt-powexp", method: "adaptive",
		kernel: parmvn.KernelSpec{Family: "powexp", Range: 0.25, Nu: 1.4},
		lower:  -1.5, upper: 1.5, nu: 8, want: 0.1591949765160755},
}

// goldenServerConfig is the fixed configuration the goldens were recorded
// under. Changing it invalidates the recorded values.
func goldenServerConfig() Config {
	return Config{Session: parmvn.Config{QMCSize: 500, TileSize: 8}, Shards: 2}
}

const goldenGrid = 4 // 4×4 grid, n = 16

// TestGoldenEndToEnd runs every fixture through BOTH entry surfaces — the
// in-process Go API (a Session configured exactly as the server pool
// configures its sessions) and the HTTP path (JSON in, JSON out, through
// flights and batching) — and checks each against the checked-in golden and
// against the other. The two surfaces must agree bit-exactly: they run the
// same deterministic engine, so any divergence is a serving-layer bug.
func TestGoldenEndToEnd(t *testing.T) {
	srv := New(goldenServerConfig())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	locs := parmvn.Grid(goldenGrid, goldenGrid)
	record := os.Getenv("GOLDEN_PRINT") != ""
	for _, gc := range goldenCases {
		// Surface 1: the Go API, on a session configured like the pool's.
		method := mustMethod(t, gc.method)
		sess := parmvn.NewSession(srv.sessionConfig(method, len(locs), false))
		a := make([]float64, len(locs))
		b := make([]float64, len(locs))
		for i := range a {
			a[i], b[i] = gc.lower, gc.upper
		}
		var apiRes parmvn.Result
		var err error
		if gc.nu > 0 {
			apiRes, err = sess.MVTProb(locs, gc.kernel, gc.nu, a, b)
		} else {
			apiRes, err = sess.MVNProb(locs, gc.kernel, a, b)
		}
		sess.Close()
		if err != nil {
			t.Fatalf("%s: api: %v", gc.name, err)
		}

		// Surface 2: the HTTP path.
		body := map[string]any{
			"grid":   map[string]int{"nx": goldenGrid, "ny": goldenGrid},
			"kernel": map[string]any{"family": gc.kernel.Family, "range": gc.kernel.Range, "nu": gc.kernel.Nu},
			"lower":  gc.lower,
			"method": gc.method,
		}
		endpoint := ts.URL + "/v1/mvnprob"
		if gc.nu > 0 {
			body["nu"] = gc.nu
			endpoint = ts.URL + "/v1/mvtprob"
		}
		if !math.IsInf(gc.upper, 1) {
			body["upper"] = gc.upper
		}
		payload, _ := json.Marshal(body)
		resp, err := http.Post(endpoint, "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("%s: http: %v", gc.name, err)
		}
		var wire Response
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: http status %d", gc.name, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			t.Fatalf("%s: decode: %v", gc.name, err)
		}
		resp.Body.Close()

		if record {
			fmt.Printf("%-24s want: %.16g\n", gc.name, apiRes.Prob)
			continue
		}
		if wire.Prob != apiRes.Prob {
			t.Errorf("%s: http %0.17g != api %0.17g (surfaces must agree bit-exactly)",
				gc.name, wire.Prob, apiRes.Prob)
		}
		if rel := math.Abs(apiRes.Prob-gc.want) / math.Max(math.Abs(gc.want), 1e-300); rel > goldenTol {
			t.Errorf("%s: prob %0.17g, golden %0.17g (rel err %.2e > %.0e)",
				gc.name, apiRes.Prob, gc.want, rel, goldenTol)
		}
	}
}
