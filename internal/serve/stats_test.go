package serve

import (
	"math"
	"testing"
)

// TestPercentilesNearestRank pins the percentile index rule: nearest-rank
// rounding over the retained observations, for small counts and for rings
// that have wrapped.
func TestPercentilesNearestRank(t *testing.T) {
	fill := func(vals ...float64) *reservoir {
		r := &reservoir{}
		for _, v := range vals {
			r.add(v)
		}
		return r
	}
	seq := func(lo, hi int) []float64 {
		out := make([]float64, 0, hi-lo+1)
		for v := lo; v <= hi; v++ {
			out = append(out, float64(v))
		}
		return out
	}
	cases := []struct {
		name          string
		vals          []float64
		p50, p90, p99 float64
	}{
		{"empty", nil, 0, 0, 0},
		{"single", []float64{7}, 7, 7, 7},
		{"two", []float64{1, 2}, 2, 2, 2}, // round(0.5*1)=1 → the larger value
		// n=10: p50 → round(4.5)=5 → value 6; p90 → round(8.1)=8 → 9;
		// p99 → round(8.91)=9 → 10. Truncation would report 5/9/9 — the old
		// bug mapped p99 of ten samples to the p80 value.
		{"ten", seq(1, 10), 6, 9, 10},
		// Wrapped ring: 1500 insertions keep the last 1024 (477..1500).
		// p50 → index round(0.50*1023)=512 → 989; p90 → round(920.7)=921 →
		// 1398; p99 → round(1012.77)=1013 → 1490.
		{"wrapped", seq(1, 1500), 989, 1398, 1490},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p50, p90, p99 := fill(tc.vals...).percentiles()
			if p50 != tc.p50 || p90 != tc.p90 || p99 != tc.p99 {
				t.Errorf("percentiles = %v/%v/%v, want %v/%v/%v",
					p50, p90, p99, tc.p50, tc.p90, tc.p99)
			}
		})
	}
}

// TestObserveQueryRelErrZero pins the serving-stats bugfix: an achieved
// relative error of exactly zero is a legitimate observation and must enter
// the reservoir; only non-finite and negative values stay out.
func TestObserveQueryRelErrZero(t *testing.T) {
	count := func(c *counters) uint64 {
		c.relErrRes.mu.Lock()
		defer c.relErrRes.mu.Unlock()
		return c.relErrRes.n
	}
	var c counters
	c.observeQuery(&Response{RelErr: 0}, true)
	if got := count(&c); got != 1 {
		t.Errorf("zero RelErr recorded %d observations, want 1", got)
	}
	c.observeQuery(&Response{RelErr: 2.5e-3}, true)
	if got := count(&c); got != 2 {
		t.Errorf("positive RelErr recorded %d observations, want 2", got)
	}
	c.observeQuery(&Response{RelErr: math.NaN()}, true)
	c.observeQuery(&Response{RelErr: math.Inf(1)}, true)
	c.observeQuery(&Response{RelErr: -1}, true)
	if got := count(&c); got != 2 {
		t.Errorf("non-finite/negative RelErr leaked into the reservoir (%d observations)", got)
	}
	// Unbudgeted queries contribute nothing regardless of RelErr.
	c.observeQuery(&Response{RelErr: 0}, false)
	if got := count(&c); got != 2 {
		t.Errorf("unbudgeted query recorded an observation (%d)", got)
	}
	if got := c.budgeted.Load(); got != 5 {
		t.Errorf("budgeted count = %d, want 5", got)
	}
}
