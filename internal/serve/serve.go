// Package serve is the query-serving layer over the parmvn engine: an
// in-process Server that owns a sharded pool of Sessions, coalesces
// concurrent requests for one uncached factorization into a single build,
// micro-batches same-factor queries into one batch call, and admission-
// controls factorizations so overload degrades into fast-fail backpressure
// instead of unbounded queues.
//
// The layering mirrors the session factor cache one level up: a request's
// parmvn.ProblemKey routes it to a shard (so all traffic for one covariance
// lands on one Session and its LRU factor cache), and the per-key flight —
// created on first arrival, joined by everyone else — is the single-flight
// unit that factorizes at most once and flushes all gathered queries as one
// MVNProbBatch/MVTProbBatch call.
package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"repro"
)

// ErrOverloaded is returned (and mapped to HTTP 503) when admission control
// rejects a request: the in-flight request cap is reached, or every
// factorization slot is busy and the factorization queue is full. Clients
// should back off and retry; the server sheds the load instead of growing
// its queues.
var ErrOverloaded = errors.New("serve: overloaded, retry later")

// errClosed is returned for requests arriving after Close.
var errClosed = errors.New("serve: server closed")

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// Session is the engine configuration every pooled Session is built
	// from. Session.Method is the default factorization method; requests
	// may override it per query. Session.TileSize (default 64) is the tile
	// size for large problems — small problems get a power-of-two tile
	// bucket ≤ n so any dimension is servable. Session.FactorCacheCap
	// bounds the factors each shard session retains (LRU).
	Session parmvn.Config
	// Shards is the number of session shards; requests route by
	// ProblemKey hash, so one covariance always hits one shard's factor
	// cache. Default 4.
	Shards int
	// BatchWindow is how long a warm-factor flight waits for same-key
	// queries to gather before flushing them as one batch call. Cold
	// flights gather for free during factorization. Default 1ms; negative
	// disables the wait (batching then only happens behind factorizations
	// and in-flight flushes).
	BatchWindow time.Duration
	// MaxBatch flushes a flight early once it has gathered this many
	// queries. Default 64.
	MaxBatch int
	// MaxInflightFactor bounds concurrent factorizations across the whole
	// server — the expensive, memory-hungry operation overload must not
	// multiply. Default 2.
	MaxInflightFactor int
	// FactorQueueDepth is how many cold-key flights may wait for a
	// factorization slot; beyond it, cold requests fail fast with
	// ErrOverloaded. Default 8.
	FactorQueueDepth int
	// MaxInFlight caps admitted requests server-wide (warm and cold);
	// beyond it requests fail fast with ErrOverloaded. Default 1024.
	MaxInFlight int
	// MaxDim rejects requests whose dimension exceeds it. Default 16384.
	MaxDim int
	// MaxBodyBytes caps an HTTP request body. Default 8 MiB.
	MaxBodyBytes int64
	// DegradeAt is the in-flight load fraction (of MaxInFlight) beyond
	// which admission control starts degrading: instead of letting the
	// queue walk toward the 503 cliff at full accuracy, queries get their
	// relative-error budget loosened — linearly with the excess load, up to
	// MaxErrorFloor at the cap — so easy queries early-stop and shed
	// compute. Default 0.75; ≥ 1 disables degradation.
	DegradeAt float64
	// MaxErrorFloor is the loosest relative-error budget degradation may
	// impose; a request's own max_error is never tightened, only loosened
	// toward (never past) this floor. Default 0.01.
	MaxErrorFloor float64
	// Store, when non-nil, is the persistent factor store: a flight whose
	// factor is neither cached nor building first tries to install the
	// stored factor (no factorization admission slot needed — loading is
	// I/O-bound, not O(n³)), and every factorization a flight leads is
	// written through to the store in the background, so restarts and new
	// replicas sharing the directory start hot.
	Store *parmvn.FactorStore
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxInflightFactor <= 0 {
		c.MaxInflightFactor = 2
	}
	if c.FactorQueueDepth < 0 {
		c.FactorQueueDepth = 0
	} else if c.FactorQueueDepth == 0 {
		c.FactorQueueDepth = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 16384
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DegradeAt <= 0 {
		c.DegradeAt = 0.75
	}
	if c.MaxErrorFloor <= 0 {
		c.MaxErrorFloor = 0.01
	}
	return c
}

// Server serves MVN/MVT probability queries from a sharded pool of engine
// sessions. Safe for concurrent use; create with New, stop with Close.
type Server struct {
	cfg       Config
	shards    []*shard
	factorSem chan struct{}
	ctr       counters
	start     time.Time
}

// shard owns the Sessions (one per method × tile bucket, created lazily)
// and the open flights for the problem keys that hash to it.
type shard struct {
	srv      *Server
	mu       sync.Mutex
	sessions map[sessionKey]*parmvn.Session
	flights  map[flightKey]*flight
}

// sessionKey picks the pooled Session a request runs on: everything else in
// the session configuration is fixed server-wide.
type sessionKey struct {
	method parmvn.Method
	tile   int
	f32    bool
}

// flightKey identifies one coalescible stream of queries: one factorization
// problem and, for Student-t, one ν (MVN and MVT flights for the same
// problem share the cached factor, but their queries cannot share one batch
// call). Sweep precision is part of the key too: f32 and f64 queries run on
// different pooled sessions, though they still share the cached factor.
type flightKey struct {
	pk  parmvn.ProblemKey
	nu  float64
	f32 bool
}

// New starts a server. It owns the Sessions it creates; Close releases them.
func New(cfg Config) *Server {
	c := cfg.withDefaults()
	// The serving layer is built on the session factor cache: problem keys,
	// FactorState coalescing and exactly-once builds all live there.
	// Serving without it would factorize on every flush, so the flag is
	// force-cleared rather than honored.
	c.Session.NoFactorCache = false
	s := &Server{
		cfg:       c,
		factorSem: make(chan struct{}, c.MaxInflightFactor),
		start:     time.Now(),
	}
	s.shards = make([]*shard, c.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{
			srv:      s,
			sessions: map[sessionKey]*parmvn.Session{},
			flights:  map[flightKey]*flight{},
		}
	}
	return s
}

// Close rejects new requests, waits for admitted requests and open flights
// to drain, and shuts down every pooled session.
func (s *Server) Close() {
	if !s.ctr.closed.CompareAndSwap(false, true) {
		return
	}
	for s.ctr.inFlight.Load() > 0 || s.ctr.openFlights.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			sess.Close()
		}
		sh.sessions = map[sessionKey]*parmvn.Session{}
		sh.mu.Unlock()
	}
}

// tileFor buckets the session tile size by problem dimension: the
// configured tile for problems at least that large, otherwise the largest
// power of two ≤ n. Bucketing (rather than min(tile, n)) bounds the session
// pool at a handful of sizes per method while keeping every n servable.
func tileFor(n, base int) int {
	if n >= base {
		return base
	}
	t := 1
	for t*2 <= n {
		t *= 2
	}
	return t
}

// sessionConfig is the exact parmvn.Config the pooled session for (method,
// n) is built from — and therefore also the config whose ProblemKey routes
// the request, keeping routing and caching definitionally consistent.
func (s *Server) sessionConfig(method parmvn.Method, n int, sweepF32 bool) parmvn.Config {
	return sessionConfigFor(s.cfg.Session, method, n, sweepF32)
}

// sessionConfigFor derives the per-request session configuration from a
// base config. Shared with the router, which must compute the same
// ProblemKey for a request as the backend serving it — same base config in,
// same key out — so one covariance lands on one backend's cache.
func sessionConfigFor(base parmvn.Config, method parmvn.Method, n int, sweepF32 bool) parmvn.Config {
	cfg := base
	cfg.Method = method
	bt := cfg.TileSize
	if bt <= 0 {
		bt = 64
	}
	cfg.TileSize = tileFor(n, bt)
	cfg.SweepF32 = sweepF32
	return cfg
}

// session returns the shard's session for cfg, creating it on first use.
func (sh *shard) session(cfg parmvn.Config) *parmvn.Session {
	k := sessionKey{method: cfg.Method, tile: cfg.TileSize, f32: cfg.SweepF32}
	sh.mu.Lock()
	sess, ok := sh.sessions[k]
	if !ok {
		sess = parmvn.NewSession(cfg)
		// The f32 and f64 sweeps of one (method, tile) differ only in
		// query-time precision; the Cholesky factor is identical (sweep is
		// outside the factor key), so twin sessions share one cache.
		if twin, ok := sh.sessions[sessionKey{method: k.method, tile: k.tile, f32: !k.f32}]; ok {
			sess.ShareCache(twin)
		}
		sh.sessions[k] = sess
	}
	sh.mu.Unlock()
	return sess
}

// Do serves one decoded request in-process (the HTTP handlers call it; Go
// callers may too). It validates, routes by problem key, joins or starts the
// key's flight, and waits for the flight to deliver this request's result.
func (s *Server) Do(ctx context.Context, req *Request) (*Response, error) {
	start := time.Now()
	s.ctr.requests.Add(1)
	if s.ctr.inFlight.Add(1) > int64(s.cfg.MaxInFlight) {
		s.ctr.inFlight.Add(-1)
		s.ctr.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer s.ctr.inFlight.Add(-1)
	// Checked after the in-flight increment: Close flips the flag first and
	// then drains the gauge, so a request past this check is guaranteed to
	// finish before Close tears the sessions down.
	if s.ctr.closed.Load() {
		return nil, errClosed
	}

	resp, err := s.do(ctx, req)
	switch {
	case err == nil:
		resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
		s.ctr.observeLatency(time.Since(start))
		s.ctr.observeQuery(resp, req.MaxError > 0 || req.DeadlineMs > 0 || resp.MaxError > 0)
	case errors.As(err, new(*RequestError)):
		s.ctr.badRequests.Add(1)
	case errors.Is(err, ErrOverloaded):
		// counted where it was rejected
	default:
		s.ctr.computeErrors.Add(1)
	}
	return resp, err
}

func (s *Server) do(ctx context.Context, req *Request) (*Response, error) {
	method, err := parseMethod(req.Method, s.cfg.Session.Method)
	if err != nil {
		return nil, err
	}
	n := len(req.Locs)
	if n <= 0 {
		return nil, badReq("locs", "empty problem (no locations)")
	}
	if n > s.cfg.MaxDim {
		return nil, badReq("locs", "dimension %d exceeds the server limit %d", n, s.cfg.MaxDim)
	}
	if req.Nu != 0 {
		if err := validNu(req.Nu); err != nil {
			return nil, err
		}
		s.ctr.mvt.Add(1)
	} else {
		s.ctr.mvn.Add(1)
	}
	if err := validSweep(req.Sweep); err != nil {
		return nil, err
	}
	sweepF32 := req.Sweep == "f32"
	if err := req.Kernel.Validate(); err != nil {
		return nil, badReq("kernel", "%v", err)
	}
	if err := parmvn.ValidateQuery(n, req.A, req.B); err != nil {
		return nil, badReq("limits", "%v", err)
	}
	if parmvn.EmptyQuery(req.A, req.B) {
		// The box is empty: the probability is exactly 0 and the engine
		// would never touch the factor, so don't spend a flight — or, on a
		// cold key, a factorization slot — on it either.
		resp := &Response{Prob: 0, N: n, Method: method.String()}
		if sweepF32 {
			resp.Sweep = "f32"
		}
		return resp, nil
	}

	if err := validBudgets(req.MaxError, req.DeadlineMs); err != nil {
		return nil, err
	}
	opt, degraded := s.queryOpts(ctx, req)

	cfg := s.sessionConfig(method, n, sweepF32)
	pk, err := cfg.ProblemKey(req.Locs, req.Kernel)
	if err != nil {
		return nil, badReq("kernel", "%v", err)
	}
	sh := s.shards[pk.Hash()%uint64(len(s.shards))]
	ch, coalesced := sh.enqueue(flightKey{pk: pk, nu: req.Nu, f32: sweepF32}, pk, cfg, req, opt)
	if coalesced {
		s.ctr.coalesced.Add(1)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		resp := &Response{
			Prob: r.res.Prob, StdErr: r.res.StdErr,
			Samples: r.res.Samples, Converged: r.res.Converged,
			Canceled: r.res.Canceled, MaxError: opt.MaxRelErr,
			Degraded: degraded,
			N:        n, Method: method.String(), Coalesced: coalesced,
		}
		// An infinite relative error (zero estimate, nonzero spread) has no
		// JSON encoding; the omitted field plus prob/stderr says the same.
		if !math.IsInf(r.res.RelErr, 0) {
			resp.RelErr = r.res.RelErr
		}
		if sweepF32 {
			resp.Sweep = "f32"
		}
		return resp, nil
	case <-ctx.Done():
		// The flight still computes and delivers into the buffered channel;
		// only this caller stops waiting.
		return nil, ctx.Err()
	}
}

// queryOpts resolves a request's accuracy/latency budgets into engine
// QueryOpts: the deadline becomes absolute at admission (queue and
// factorization wait count against it), the request context is honored
// inside the integration whenever the query is budgeted, and under queue
// pressure the relative-error budget is degraded (loosened, never past
// MaxErrorFloor) so load sheds compute instead of walking into 503s.
func (s *Server) queryOpts(ctx context.Context, req *Request) (parmvn.QueryOpts, bool) {
	q := parmvn.QueryOpts{MaxRelErr: req.MaxError}
	if req.DeadlineMs > 0 {
		q.Deadline = time.Now().Add(time.Duration(req.DeadlineMs * float64(time.Millisecond)))
	}
	degraded := false
	if t := s.loadPressure(); t > 0 {
		if budget := s.cfg.MaxErrorFloor * t; budget > q.MaxRelErr {
			q.MaxRelErr = budget
			degraded = true
			s.ctr.degraded.Add(1)
		}
	}
	if q.MaxRelErr > 0 || !q.Deadline.IsZero() {
		// Budgeted queries are cancelable mid-integration; unconstrained
		// ones keep the exact fixed-N path (Ctx would reroute them).
		q.Ctx = ctx
	}
	return q, degraded
}

// loadPressure maps the in-flight gauge to the degradation ramp: 0 at or
// below DegradeAt·MaxInFlight, rising linearly to 1 at the cap.
func (s *Server) loadPressure() float64 {
	at := s.cfg.DegradeAt
	if at >= 1 {
		return 0
	}
	load := float64(s.ctr.inFlight.Load()) / float64(s.cfg.MaxInFlight)
	t := (load - at) / (1 - at)
	if t <= 0 {
		return 0
	}
	if t > 1 {
		t = 1
	}
	return t
}

// result is what a flight delivers to each of its waiters, exactly once.
type result struct {
	res parmvn.Result
	err error
}

// flight is the single-flight/micro-batch unit for one flightKey: the first
// request creates it (and its goroutine), concurrent requests for the same
// key join it, and it flushes everything it gathered as one batch call.
// queries, waiters and closed are guarded by the owning shard's mutex; full
// is closed (under the same mutex, at most once) when MaxBatch is reached,
// waking a flight sleeping out its batch window so a full batch flushes
// early.
type flight struct {
	sh      *shard
	key     flightKey
	pk      parmvn.ProblemKey
	sess    *parmvn.Session
	locs    []parmvn.Point
	kernel  parmvn.KernelSpec
	full    chan struct{}
	closed  bool
	queries []parmvn.Bounds
	opts    []parmvn.QueryOpts
	waiters []chan result
}

// enqueue joins the open flight for fk, or creates one. The returned channel
// receives this request's result exactly once; coalesced reports whether an
// existing flight was joined.
func (sh *shard) enqueue(fk flightKey, pk parmvn.ProblemKey, cfg parmvn.Config, req *Request, opt parmvn.QueryOpts) (<-chan result, bool) {
	ch := make(chan result, 1)
	q := parmvn.Bounds{A: req.A, B: req.B}
	sh.mu.Lock()
	if f, ok := sh.flights[fk]; ok && !f.closed {
		f.join(q, opt, ch)
		sh.mu.Unlock()
		return ch, true
	}
	sh.mu.Unlock()
	sess := sh.session(cfg)
	f := &flight{
		sh: sh, key: fk, pk: pk, sess: sess,
		locs: req.Locs, kernel: req.Kernel,
		full:    make(chan struct{}),
		queries: []parmvn.Bounds{q},
		opts:    []parmvn.QueryOpts{opt},
		waiters: []chan result{ch},
	}
	sh.mu.Lock()
	if cur, ok := sh.flights[fk]; ok && !cur.closed {
		// Lost a race with another creator while the session was resolved:
		// join theirs instead.
		cur.join(q, opt, ch)
		sh.mu.Unlock()
		return ch, true
	}
	sh.flights[fk] = f
	sh.srv.ctr.openFlights.Add(1)
	sh.mu.Unlock()
	go f.run()
	return ch, false
}

// join adds one query to an open flight; at MaxBatch the flight stops
// accepting (the next arrival starts a fresh one) and is woken for an early
// flush. Called with the shard mutex held on an open (not closed) flight.
func (f *flight) join(q parmvn.Bounds, opt parmvn.QueryOpts, ch chan result) {
	f.queries = append(f.queries, q)
	f.opts = append(f.opts, opt)
	f.waiters = append(f.waiters, ch)
	if len(f.queries) >= f.sh.srv.cfg.MaxBatch {
		f.closed = true
		delete(f.sh.flights, f.key)
		close(f.full) // sole closer: closed flights cannot be joined again
	}
}

// run drives one flight: resolve the factor (warm → gather for the batch
// window; building elsewhere → wait for that build; absent → acquire a
// factorization slot under admission control and prefactorize, gathering
// joiners for free meanwhile), then flush everything as one batch call and
// deliver each waiter its result.
func (f *flight) run() {
	srv := f.sh.srv
	defer srv.ctr.openFlights.Add(-1)
	st, done := f.sess.FactorState(f.pk)
	switch st {
	case parmvn.FactorReady:
		if w := srv.cfg.BatchWindow; w > 0 {
			select {
			case <-time.After(w):
			case <-f.full: // MaxBatch reached: flush early
			}
		}
	case parmvn.FactorBuilding:
		// Another flight (same problem, different ν, or a direct API
		// caller) is already factorizing: coalesce onto its build.
		<-done
	default: // FactorAbsent — this flight leads the factorization.
		if srv.storeLoad(f.sess, f.pk) {
			// Installed from the persistent store: the key is warm without
			// ever spending a factorization admission slot.
			break
		}
		if err := srv.acquireFactorSlot(); err != nil {
			f.deliverErr(err)
			return
		}
		srv.ctr.factorizations.Add(1)
		err := f.sess.Prefactorize(f.locs, f.kernel)
		<-srv.factorSem
		if err != nil {
			f.deliverErr(err)
			return
		}
		defer srv.storeSave(f.sess, f.pk, f.locs, f.kernel)
	}
	// Re-check before flushing: under hot-set LRU pressure the factor can
	// be evicted between the state snapshot (or the prefactorization) and
	// here, in which case the batch call below would rebuild it — an O(n³)
	// build that must not dodge admission control. The residual window
	// (eviction after this check) only risks an unadmitted build, never a
	// wrong result.
	if st, _ := f.sess.FactorState(f.pk); st != parmvn.FactorReady {
		if err := srv.acquireFactorSlot(); err != nil {
			f.deliverErr(err)
			return
		}
		srv.ctr.factorizations.Add(1)
		defer func() { <-srv.factorSem }()
	}
	qs, qo, ws := f.take()
	var out []parmvn.Result
	var err error
	if f.key.nu > 0 {
		out, err = f.sess.MVTProbBatchOpts(f.locs, f.kernel, f.key.nu, qs, qo)
	} else {
		out, err = f.sess.MVNProbBatchOpts(f.locs, f.kernel, qs, qo)
	}
	srv.ctr.batches.Add(1)
	srv.ctr.batchedQueries.Add(uint64(len(qs)))
	for i, w := range ws {
		if err != nil {
			w <- result{err: err}
		} else {
			w <- result{res: out[i]}
		}
	}
}

// take closes the flight to joiners and claims its gathered queries.
func (f *flight) take() ([]parmvn.Bounds, []parmvn.QueryOpts, []chan result) {
	sh := f.sh
	sh.mu.Lock()
	f.closed = true
	if cur, ok := sh.flights[f.key]; ok && cur == f {
		delete(sh.flights, f.key)
	}
	qs, qo, ws := f.queries, f.opts, f.waiters
	sh.mu.Unlock()
	return qs, qo, ws
}

// deliverErr fails every waiter gathered so far with err. Backpressure
// rejections are counted here, per shed request — a failed slot acquisition
// rejects the whole flight, not just its leader.
func (f *flight) deliverErr(err error) {
	_, _, ws := f.take()
	if errors.Is(err, ErrOverloaded) {
		f.sh.srv.ctr.rejected.Add(uint64(len(ws)))
	}
	for _, w := range ws {
		w <- result{err: err}
	}
}

// storeLoad tries to install pk's factor from the persistent store into the
// session cache. A hit makes the key warm with zero factorizations; a miss
// (or an unreadable file — corruption is counted but never fatal, the
// flight just factorizes as if the store were empty) falls through to the
// admission-controlled factorization path.
func (s *Server) storeLoad(sess *parmvn.Session, pk parmvn.ProblemKey) bool {
	if s.cfg.Store == nil {
		return false
	}
	switch err := sess.LoadFactor(s.cfg.Store, pk); {
	case err == nil:
		s.ctr.storeHits.Add(1)
		return true
	case errors.Is(err, parmvn.ErrStoreMiss):
		s.ctr.storeMisses.Add(1)
	default:
		s.ctr.storeMisses.Add(1)
		s.ctr.storeErrors.Add(1)
	}
	return false
}

// storeSave writes a freshly built factor through to the persistent store
// (skipped when a file for the key already exists — replicas sharing one
// directory race benignly, rename is atomic either way). Runs on the
// flight goroutine after its waiters were delivered, so it never adds
// latency to the flight's own queries; the openFlights gauge is still held,
// so Close waits for in-progress saves.
func (s *Server) storeSave(sess *parmvn.Session, pk parmvn.ProblemKey, locs []parmvn.Point, kernel parmvn.KernelSpec) {
	if s.cfg.Store == nil || s.cfg.Store.Has(pk) {
		return
	}
	if err := sess.SaveFactor(s.cfg.Store, locs, kernel); err != nil {
		s.ctr.storeErrors.Add(1)
		return
	}
	s.ctr.storeSaves.Add(1)
}

// acquireFactorSlot admission-controls factorizations: take a free slot if
// one exists, otherwise wait in the bounded factorization queue — and when
// that is full too, fail fast. This is what keeps an overloaded server at a
// predictable memory/CPU ceiling (MaxInflightFactor builds plus
// FactorQueueDepth waiters) instead of stacking up O(n²) factorizations.
func (s *Server) acquireFactorSlot() error {
	select {
	case s.factorSem <- struct{}{}:
		return nil
	default:
	}
	if s.ctr.factorQueue.Add(1) > int64(s.cfg.FactorQueueDepth) {
		s.ctr.factorQueue.Add(-1)
		// Not counted here: deliverErr counts one rejection per request the
		// failing flight sheds, not one per flight.
		return ErrOverloaded
	}
	s.factorSem <- struct{}{}
	s.ctr.factorQueue.Add(-1)
	return nil
}

// validNu rejects a non-positive or non-finite ν with a typed request error.
func validNu(nu float64) error {
	if !(nu > 0) || math.IsInf(nu, 1) {
		return badReq("nu", "degrees of freedom %g must be positive and finite", nu)
	}
	return nil
}

// parseMethod resolves a request's method string against the server default.
func parseMethod(m string, def parmvn.Method) (parmvn.Method, error) {
	switch m {
	case "":
		return def, nil
	case "dense":
		return parmvn.Dense, nil
	case "tlr":
		return parmvn.TLR, nil
	case "adaptive":
		return parmvn.MethodAdaptive, nil
	}
	return 0, badReq("method", "unknown method %q (want dense, tlr or adaptive)", m)
}
