package serve

import (
	"sync/atomic"
	"time"
)

// counters is the server's live instrumentation — lock-free atomics on the
// request path, aggregated into a Stats snapshot on demand.
type counters struct {
	closed atomic.Bool

	requests       atomic.Uint64
	mvn, mvt       atomic.Uint64
	badRequests    atomic.Uint64
	computeErrors  atomic.Uint64
	rejected       atomic.Uint64
	coalesced      atomic.Uint64
	batches        atomic.Uint64
	batchedQueries atomic.Uint64
	factorizations atomic.Uint64

	inFlight    atomic.Int64
	openFlights atomic.Int64
	factorQueue atomic.Int64

	latCount atomic.Uint64
	latTotal atomic.Int64 // microseconds
	latMax   atomic.Int64 // microseconds
}

func (c *counters) observeLatency(d time.Duration) {
	us := d.Microseconds()
	c.latCount.Add(1)
	c.latTotal.Add(us)
	for {
		cur := c.latMax.Load()
		if us <= cur || c.latMax.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Stats is the /stats snapshot: cumulative counters since start plus the
// current gauges. All counters are monotone except the three gauges
// (in_flight, open_flights, factor_queue_depth).
type Stats struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests      uint64 `json:"requests"`
	MVNRequests   uint64 `json:"mvn_requests"`
	MVTRequests   uint64 `json:"mvt_requests"`
	BadRequests   uint64 `json:"bad_requests"`
	ComputeErrors uint64 `json:"compute_errors"`
	// Rejected counts fast-fail backpressure rejections (ErrOverloaded),
	// from the request cap and from the full factorization queue alike.
	Rejected uint64 `json:"rejected"`

	// Coalesced counts requests that joined an existing flight instead of
	// starting their own. Factorizations counts factorization leads: every
	// admission slot acquired for a cold (or evicted-and-rebuilt) key. A
	// lead can coalesce inside the session cache onto a concurrent build of
	// the same problem, so this can exceed CacheMisses — the count of
	// factorizations actually executed — but never by more than the flights
	// racing per key.
	Coalesced      uint64 `json:"coalesced"`
	Batches        uint64 `json:"batches"`
	BatchedQueries uint64 `json:"batched_queries"`
	Factorizations uint64 `json:"factorizations"`

	// CacheHits/Misses/CachedFactors aggregate the factor caches of every
	// pooled session; Sessions is the pool size.
	CacheHits     int `json:"cache_hits"`
	CacheMisses   int `json:"cache_misses"`
	CachedFactors int `json:"cached_factors"`
	Sessions      int `json:"sessions"`

	InFlight         int64 `json:"in_flight"`
	OpenFlights      int64 `json:"open_flights"`
	FactorQueueDepth int64 `json:"factor_queue_depth"`

	LatencyCount  uint64  `json:"latency_count"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	// SchedPeakInflight is the largest in-flight task-descriptor count any
	// pooled session's runtime reached (the windowed-submission bound);
	// SchedStolen sums the tasks executed by work stealing across sessions.
	SchedPeakInflight int `json:"sched_peak_inflight"`
	SchedStolen       int `json:"sched_stolen"`
}

// Snapshot assembles the current statistics.
func (s *Server) Snapshot() Stats {
	st := Stats{
		UptimeSec:        time.Since(s.start).Seconds(),
		Requests:         s.ctr.requests.Load(),
		MVNRequests:      s.ctr.mvn.Load(),
		MVTRequests:      s.ctr.mvt.Load(),
		BadRequests:      s.ctr.badRequests.Load(),
		ComputeErrors:    s.ctr.computeErrors.Load(),
		Rejected:         s.ctr.rejected.Load(),
		Coalesced:        s.ctr.coalesced.Load(),
		Batches:          s.ctr.batches.Load(),
		BatchedQueries:   s.ctr.batchedQueries.Load(),
		Factorizations:   s.ctr.factorizations.Load(),
		InFlight:         s.ctr.inFlight.Load(),
		OpenFlights:      s.ctr.openFlights.Load(),
		FactorQueueDepth: s.ctr.factorQueue.Load(),
		LatencyCount:     s.ctr.latCount.Load(),
	}
	if st.LatencyCount > 0 {
		st.LatencyMeanMs = float64(s.ctr.latTotal.Load()) / float64(st.LatencyCount) / 1000
	}
	st.LatencyMaxMs = float64(s.ctr.latMax.Load()) / 1000
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			h, m := sess.Cache().Stats()
			st.CacheHits += h
			st.CacheMisses += m
			st.CachedFactors += sess.Cache().Len()
			st.Sessions++
			sched := sess.SchedulerStats()
			if sched.PeakInflight > st.SchedPeakInflight {
				st.SchedPeakInflight = sched.PeakInflight
			}
			st.SchedStolen += sched.Stolen
		}
		sh.mu.Unlock()
	}
	return st
}
