package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counters is the server's live instrumentation — lock-free atomics on the
// request path, aggregated into a Stats snapshot on demand.
type counters struct {
	closed atomic.Bool

	requests       atomic.Uint64
	mvn, mvt       atomic.Uint64
	badRequests    atomic.Uint64
	computeErrors  atomic.Uint64
	rejected       atomic.Uint64
	coalesced      atomic.Uint64
	batches        atomic.Uint64
	batchedQueries atomic.Uint64
	factorizations atomic.Uint64

	inFlight    atomic.Int64
	openFlights atomic.Int64
	factorQueue atomic.Int64

	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
	storeSaves  atomic.Uint64
	storeErrors atomic.Uint64

	degraded        atomic.Uint64
	budgeted        atomic.Uint64
	budgetCapped    atomic.Uint64
	canceledQueries atomic.Uint64

	latCount atomic.Uint64
	latTotal atomic.Int64 // microseconds
	latMax   atomic.Int64 // microseconds

	latRes     reservoir // latency, milliseconds
	relErrRes  reservoir // achieved relative error, budgeted queries
	samplesRes reservoir // samples paid per query
}

func (c *counters) observeLatency(d time.Duration) {
	us := d.Microseconds()
	c.latCount.Add(1)
	c.latTotal.Add(us)
	c.latRes.add(float64(us) / 1000)
	for {
		cur := c.latMax.Load()
		if us <= cur || c.latMax.CompareAndSwap(cur, us) {
			return
		}
	}
}

// observeQuery records a successful response's accuracy/cost tail metrics
// and the budgeted-query outcome counters. budgeted is computed from the
// request (an error budget, a deadline, or a degradation-imposed budget) —
// the response alone cannot distinguish a deadline-capped query that met its
// deadline from an unconstrained one.
func (c *counters) observeQuery(resp *Response, budgeted bool) {
	if resp.Samples > 0 {
		c.samplesRes.add(float64(resp.Samples))
	}
	if resp.Canceled {
		c.canceledQueries.Add(1)
	}
	if !budgeted {
		return
	}
	c.budgeted.Add(1)
	// A zero achieved error is a real observation — exact degenerate-box
	// answers report RelErr 0 — and dropping it biases the reported
	// percentiles upward. Only non-finite and negative values (no estimate
	// was formed) stay out of the reservoir.
	if resp.RelErr >= 0 && !math.IsNaN(resp.RelErr) && !math.IsInf(resp.RelErr, 0) {
		c.relErrRes.add(resp.RelErr)
	}
	if !resp.Converged && !resp.Canceled {
		c.budgetCapped.Add(1)
	}
}

// reservoirSize is the ring capacity of the percentile reservoirs: large
// enough for stable p99 estimates, small enough that a snapshot sort is
// trivial. The ring keeps the most recent observations, so percentiles track
// current load rather than all-time history.
const reservoirSize = 1024

// reservoir is a fixed-size ring of float64 observations with mutex-guarded
// writes — one short critical section per served request, only on the
// response path (never inside the integration).
type reservoir struct {
	mu  sync.Mutex
	buf [reservoirSize]float64
	n   uint64
}

func (r *reservoir) add(v float64) {
	r.mu.Lock()
	r.buf[r.n%reservoirSize] = v
	r.n++
	r.mu.Unlock()
}

// percentiles returns the p50/p90/p99 of the retained observations (zeros
// when empty).
func (r *reservoir) percentiles() (p50, p90, p99 float64) {
	r.mu.Lock()
	n := r.n
	if n > reservoirSize {
		n = reservoirSize
	}
	vals := make([]float64, n)
	copy(vals, r.buf[:n])
	r.mu.Unlock()
	if len(vals) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(vals)
	at := func(p float64) float64 {
		// Nearest-rank rounding: truncation systematically under-reports the
		// upper percentiles at small n (n=10 would map p99 to index 8 — the
		// p80 value).
		i := int(math.Round(p * float64(len(vals)-1)))
		return vals[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

// Stats is the /stats snapshot: cumulative counters since start plus the
// current gauges. All counters are monotone except the three gauges
// (in_flight, open_flights, factor_queue_depth).
type Stats struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests      uint64 `json:"requests"`
	MVNRequests   uint64 `json:"mvn_requests"`
	MVTRequests   uint64 `json:"mvt_requests"`
	BadRequests   uint64 `json:"bad_requests"`
	ComputeErrors uint64 `json:"compute_errors"`
	// Rejected counts fast-fail backpressure rejections (ErrOverloaded),
	// from the request cap and from the full factorization queue alike.
	Rejected uint64 `json:"rejected"`

	// Coalesced counts requests that joined an existing flight instead of
	// starting their own. Factorizations counts factorization leads: every
	// admission slot acquired for a cold (or evicted-and-rebuilt) key. A
	// lead can coalesce inside the session cache onto a concurrent build of
	// the same problem, so this can exceed CacheMisses — the count of
	// factorizations actually executed — but never by more than the flights
	// racing per key.
	Coalesced      uint64 `json:"coalesced"`
	Batches        uint64 `json:"batches"`
	BatchedQueries uint64 `json:"batched_queries"`
	Factorizations uint64 `json:"factorizations"`

	// CacheHits/Misses/CachedFactors aggregate the factor caches of every
	// pooled session; Sessions is the pool size.
	CacheHits     int `json:"cache_hits"`
	CacheMisses   int `json:"cache_misses"`
	CachedFactors int `json:"cached_factors"`
	Sessions      int `json:"sessions"`

	InFlight         int64 `json:"in_flight"`
	OpenFlights      int64 `json:"open_flights"`
	FactorQueueDepth int64 `json:"factor_queue_depth"`

	// StoreHits counts cold keys served by installing a factor from the
	// persistent store (zero factorizations spent); StoreMisses counts cold
	// keys the store did not cover; StoreSaves counts factors written
	// through after a factorization; StoreErrors counts unreadable or
	// unwritable store files (corruption, I/O). All zero without a store.
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
	StoreSaves  uint64 `json:"store_saves"`
	StoreErrors uint64 `json:"store_errors"`

	LatencyCount  uint64  `json:"latency_count"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	// Latency percentiles over the most recent served requests (ring
	// reservoir), in milliseconds.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// BudgetedQueries counts served queries that ran with a relative-error
	// budget (requested or degraded-imposed). Degraded counts queries whose
	// budget admission control loosened under queue pressure; BudgetCapped
	// counts budgeted queries that exhausted their sample/deadline budget
	// before converging; CanceledQueries counts integrations stopped by
	// context cancellation (partial estimates served).
	BudgetedQueries uint64 `json:"budgeted_queries"`
	Degraded        uint64 `json:"degraded"`
	BudgetCapped    uint64 `json:"budget_capped"`
	CanceledQueries uint64 `json:"canceled_queries"`

	// Achieved relative-error percentiles over recent budgeted queries.
	RelErrP50 float64 `json:"rel_err_p50"`
	RelErrP90 float64 `json:"rel_err_p90"`
	RelErrP99 float64 `json:"rel_err_p99"`

	// QMC samples paid per query (all queries; under early stopping this is
	// where the waves stopped).
	SamplesP50 float64 `json:"samples_p50"`
	SamplesP90 float64 `json:"samples_p90"`
	SamplesP99 float64 `json:"samples_p99"`

	// SchedPeakInflight is the largest in-flight task-descriptor count any
	// pooled session's runtime reached (the windowed-submission bound);
	// SchedStolen sums the tasks executed by work stealing across sessions.
	SchedPeakInflight int `json:"sched_peak_inflight"`
	SchedStolen       int `json:"sched_stolen"`
}

// Snapshot assembles the current statistics.
func (s *Server) Snapshot() Stats {
	st := Stats{
		UptimeSec:        time.Since(s.start).Seconds(),
		Requests:         s.ctr.requests.Load(),
		MVNRequests:      s.ctr.mvn.Load(),
		MVTRequests:      s.ctr.mvt.Load(),
		BadRequests:      s.ctr.badRequests.Load(),
		ComputeErrors:    s.ctr.computeErrors.Load(),
		Rejected:         s.ctr.rejected.Load(),
		Coalesced:        s.ctr.coalesced.Load(),
		Batches:          s.ctr.batches.Load(),
		BatchedQueries:   s.ctr.batchedQueries.Load(),
		Factorizations:   s.ctr.factorizations.Load(),
		InFlight:         s.ctr.inFlight.Load(),
		OpenFlights:      s.ctr.openFlights.Load(),
		FactorQueueDepth: s.ctr.factorQueue.Load(),
		StoreHits:        s.ctr.storeHits.Load(),
		StoreMisses:      s.ctr.storeMisses.Load(),
		StoreSaves:       s.ctr.storeSaves.Load(),
		StoreErrors:      s.ctr.storeErrors.Load(),
		LatencyCount:     s.ctr.latCount.Load(),
		BudgetedQueries:  s.ctr.budgeted.Load(),
		Degraded:         s.ctr.degraded.Load(),
		BudgetCapped:     s.ctr.budgetCapped.Load(),
		CanceledQueries:  s.ctr.canceledQueries.Load(),
	}
	if st.LatencyCount > 0 {
		st.LatencyMeanMs = float64(s.ctr.latTotal.Load()) / float64(st.LatencyCount) / 1000
	}
	st.LatencyMaxMs = float64(s.ctr.latMax.Load()) / 1000
	st.LatencyP50Ms, st.LatencyP90Ms, st.LatencyP99Ms = s.ctr.latRes.percentiles()
	st.RelErrP50, st.RelErrP90, st.RelErrP99 = s.ctr.relErrRes.percentiles()
	st.SamplesP50, st.SamplesP90, st.SamplesP99 = s.ctr.samplesRes.percentiles()
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			h, m := sess.Cache().Stats()
			st.CacheHits += h
			st.CacheMisses += m
			st.CachedFactors += sess.Cache().Len()
			st.Sessions++
			sched := sess.SchedulerStats()
			if sched.PeakInflight > st.SchedPeakInflight {
				st.SchedPeakInflight = sched.PeakInflight
			}
			st.SchedStolen += sched.Stolen
		}
		sh.mu.Unlock()
	}
	return st
}
