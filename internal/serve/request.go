package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro"
)

// RequestError is the typed error for every malformed request: decode
// failures, structural problems and engine-level validation alike. The HTTP
// layer maps it to 400; everything else on the request path is either
// ErrOverloaded (503) or a compute failure (500).
type RequestError struct {
	// Field names what was wrong ("body", "locs", "grid", "kernel",
	// "limits", "nu", "method").
	Field string
	// Reason says why.
	Reason string
}

func (e *RequestError) Error() string {
	return "serve: bad request: " + e.Field + ": " + e.Reason
}

func badReq(field, format string, args ...any) *RequestError {
	return &RequestError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Request is one decoded, engine-ready probability query.
type Request struct {
	// Locs is the location set defining the covariance.
	Locs []parmvn.Point
	// Kernel is the covariance kernel specification.
	Kernel parmvn.KernelSpec
	// A, B are the integration limits (±Inf for half-open boxes).
	A, B []float64
	// Nu > 0 makes this a Student-t query with ν = Nu.
	Nu float64
	// Method optionally overrides the server's default factorization
	// method: "dense", "tlr" or "adaptive" ("" = server default).
	Method string
	// Sweep selects the QMC sweep precision: "f32" runs the conditioning
	// state in float32 (faster, accuracy within the QMC error bar), "f64"
	// or "" the default double-precision sweep. The cached factor is shared
	// across both.
	Sweep string
	// MaxError > 0 is the requested relative-error budget: the integration
	// runs incremental sample waves and stops as soon as its streaming
	// error estimate meets the budget. Under queue pressure the server may
	// degrade (loosen) this budget up to Config.MaxErrorFloor instead of
	// rejecting the request; the response reports the budget actually
	// applied. 0 = fixed-size integration.
	MaxError float64
	// DeadlineMs > 0 caps the query's integration wall clock in
	// milliseconds, measured from admission. A blown deadline still returns
	// the running estimate with its error bar (converged=false) rather than
	// an error. 0 = no deadline.
	DeadlineMs float64
}

// Response is the wire result of one query.
type Response struct {
	Prob   float64 `json:"prob"`
	StdErr float64 `json:"stderr"`
	N      int     `json:"n"`
	Method string  `json:"method"`
	// Sweep echoes the sweep precision the query ran with ("f32"; omitted
	// for the default f64 sweep).
	Sweep string `json:"sweep,omitempty"`
	// RelErr is the achieved relative-error estimate StdErr/|Prob| (omitted
	// when no replicate spread was computed, or when the estimate is zero
	// with nonzero spread — a relative error would be infinite).
	RelErr float64 `json:"rel_err,omitempty"`
	// Samples is the number of QMC samples the query actually paid, across
	// all replicates; under a budget this is where the waves stopped.
	Samples int `json:"samples,omitempty"`
	// Converged reports that the integration met the applied max_error
	// before exhausting its sample, deadline or context budget.
	Converged bool `json:"converged,omitempty"`
	// Canceled reports that the request context was canceled
	// mid-integration; prob/stderr hold the partial estimate.
	Canceled bool `json:"canceled,omitempty"`
	// MaxError is the relative-error budget the query actually ran with —
	// the requested max_error, or the degraded (loosened) budget admission
	// control applied under load.
	MaxError float64 `json:"max_error,omitempty"`
	// Degraded reports that admission control loosened the error budget
	// under queue pressure (max_error > the requested budget).
	Degraded bool `json:"degraded,omitempty"`
	// Coalesced reports that this request joined an in-flight
	// factorization or batch instead of starting its own.
	Coalesced bool    `json:"coalesced,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// errorResponse is the wire form of a request failure.
type errorResponse struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

// Limits bounds what DecodeRequest accepts before any memory proportional
// to the request is committed.
type Limits struct {
	// MaxDim caps the problem dimension (locations, and nx*ny for grids).
	MaxDim int
}

// wireKernel is the JSON kernel spec.
type wireKernel struct {
	Family string  `json:"family"`
	Sigma2 float64 `json:"sigma2"`
	Range  float64 `json:"range"`
	Nu     float64 `json:"nu"`
	Nugget float64 `json:"nugget"`
}

// wireGrid asks for a regular nx×ny grid on the unit square instead of an
// explicit location list.
type wireGrid struct {
	NX int `json:"nx"`
	NY int `json:"ny"`
}

// wireRequest is the JSON request schema shared by /v1/mvnprob and
// /v1/mvtprob:
//
//	{
//	  "locs":   [[x,y], ...]            // or "grid": {"nx":…, "ny":…}
//	  "kernel": {"family":"exponential", "range":0.1, …},
//	  "a": [null, -0.5, …],             // per-dimension lower limits, null = -Inf
//	  "b": [1.0, null, …],              // per-dimension upper limits, null = +Inf
//	  "lower": -0.5, "upper": 1.0,      // or broadcast scalars instead of a/b
//	  "nu": 7,                          // mvtprob only: degrees of freedom
//	  "method": "tlr",                  // optional: dense | tlr | adaptive
//	  "sweep": "f32",                   // optional: f64 (default) | f32
//	  "max_error": 1e-3,                // optional: relative-error budget (early stop)
//	  "deadline_ms": 50                 // optional: integration wall-clock cap
//	}
type wireRequest struct {
	Locs       [][]float64 `json:"locs"`
	Grid       *wireGrid   `json:"grid"`
	Kernel     *wireKernel `json:"kernel"`
	A          []*float64  `json:"a"`
	B          []*float64  `json:"b"`
	Lower      *float64    `json:"lower"`
	Upper      *float64    `json:"upper"`
	Nu         float64     `json:"nu"`
	Method     string      `json:"method"`
	Sweep      string      `json:"sweep"`
	MaxError   float64     `json:"max_error"`
	DeadlineMs float64     `json:"deadline_ms"`
}

// DecodeRequest parses and structurally validates one JSON request body.
// Every failure — malformed JSON, out-of-range numbers, mutually exclusive
// or mis-sized fields, dimensions beyond lim.MaxDim — is a *RequestError;
// DecodeRequest never panics on any input. Engine-level validation (kernel
// parameter ranges, NaN limits) runs again in Server.Do with the same typed
// errors, so in-process callers constructing a Request by hand get identical
// treatment.
func DecodeRequest(data []byte, lim Limits) (*Request, error) {
	if lim.MaxDim <= 0 {
		lim.MaxDim = 16384
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, badReq("body", "empty request body")
	}
	var w wireRequest
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, badReq("body", "%v", err)
	}

	req := &Request{
		Nu: w.Nu, Method: w.Method, Sweep: w.Sweep,
		MaxError: w.MaxError, DeadlineMs: w.DeadlineMs,
	}
	if err := validSweep(req.Sweep); err != nil {
		return nil, err
	}
	if err := validBudgets(req.MaxError, req.DeadlineMs); err != nil {
		return nil, err
	}
	switch {
	case w.Grid != nil && len(w.Locs) > 0:
		return nil, badReq("grid", "locs and grid are mutually exclusive")
	case w.Grid != nil:
		if w.Grid.NX <= 0 || w.Grid.NY <= 0 {
			return nil, badReq("grid", "nx and ny must be positive, got %d×%d", w.Grid.NX, w.Grid.NY)
		}
		if w.Grid.NX > lim.MaxDim || w.Grid.NY > lim.MaxDim || w.Grid.NX*w.Grid.NY > lim.MaxDim {
			return nil, badReq("grid", "dimension %d×%d exceeds the limit %d", w.Grid.NX, w.Grid.NY, lim.MaxDim)
		}
		req.Locs = parmvn.Grid(w.Grid.NX, w.Grid.NY)
	case len(w.Locs) > 0:
		if len(w.Locs) > lim.MaxDim {
			return nil, badReq("locs", "dimension %d exceeds the limit %d", len(w.Locs), lim.MaxDim)
		}
		req.Locs = make([]parmvn.Point, len(w.Locs))
		for i, p := range w.Locs {
			if len(p) != 2 {
				return nil, badReq("locs", "location %d has %d coordinates, want 2", i, len(p))
			}
			if !finite(p[0]) || !finite(p[1]) {
				return nil, badReq("locs", "location %d is not finite", i)
			}
			req.Locs[i] = parmvn.Point{X: p[0], Y: p[1]}
		}
	default:
		return nil, badReq("locs", "one of locs or grid is required")
	}
	n := len(req.Locs)

	if w.Kernel == nil {
		return nil, badReq("kernel", "kernel is required")
	}
	req.Kernel = parmvn.KernelSpec{
		Family: w.Kernel.Family, Sigma2: w.Kernel.Sigma2,
		Range: w.Kernel.Range, Nu: w.Kernel.Nu, Nugget: w.Kernel.Nugget,
	}

	var err error
	if req.A, err = limitVector("a", w.A, w.Lower, n, math.Inf(-1)); err != nil {
		return nil, err
	}
	if req.B, err = limitVector("b", w.B, w.Upper, n, math.Inf(1)); err != nil {
		return nil, err
	}
	return req, nil
}

// limitVector resolves one side of the integration box from the explicit
// per-dimension array (null entries = open side), the broadcast scalar, or —
// with neither — the fully open side.
func limitVector(field string, arr []*float64, scalar *float64, n int, open float64) ([]float64, error) {
	if arr != nil && scalar != nil {
		scalarName := "lower"
		if field == "b" {
			scalarName = "upper"
		}
		return nil, badReq(field, "%s and %s are mutually exclusive", field, scalarName)
	}
	out := make([]float64, n)
	switch {
	case arr != nil:
		if len(arr) != n {
			return nil, badReq(field, "length %d != dimension %d", len(arr), n)
		}
		for i, v := range arr {
			if v == nil {
				out[i] = open
				continue
			}
			if math.IsNaN(*v) {
				return nil, badReq(field, "entry %d is NaN", i)
			}
			out[i] = *v
		}
	case scalar != nil:
		if math.IsNaN(*scalar) {
			return nil, badReq(field, "broadcast limit is NaN")
		}
		for i := range out {
			out[i] = *scalar
		}
	default:
		for i := range out {
			out[i] = open
		}
	}
	return out, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// validSweep accepts the sweep-precision selector: "" (default f64), "f64"
// or "f32". Shared by DecodeRequest and Server.do so in-process callers get
// identical treatment.
func validSweep(s string) error {
	switch s {
	case "", "f64", "f32":
		return nil
	}
	return badReq("sweep", "unknown sweep %q (want f64 or f32)", s)
}

// validBudgets accepts the per-request accuracy/latency budgets: both
// optional (0 = unset), both finite and non-negative, max_error below 1 (a
// relative-error budget of 1 or more stops after the first wave regardless
// of the estimate — certainly a client mistake). Shared by DecodeRequest and
// Server.do.
func validBudgets(maxError, deadlineMs float64) error {
	if math.IsNaN(maxError) || maxError < 0 || maxError >= 1 {
		return badReq("max_error", "relative-error budget %g must be in [0,1)", maxError)
	}
	if math.IsNaN(deadlineMs) || math.IsInf(deadlineMs, 0) || deadlineMs < 0 {
		return badReq("deadline_ms", "deadline %g must be finite and non-negative", deadlineMs)
	}
	return nil
}
