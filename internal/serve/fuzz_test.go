package serve

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
)

// FuzzDecodeRequest pins the request decoder's contract on arbitrary bytes:
// it never panics, and every rejection is a typed *RequestError (so the
// HTTP layer can always map it to a 400 with a field name). When a body is
// accepted, the decoded request must be structurally sound — consistent
// dimensions, no NaN limits, dimension within the configured cap — because
// everything downstream (flight aggregation, batch fan-in) assumes it.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json at all`,
		`{"grid":{"nx":3,"ny":3},"kernel":{"family":"exponential","range":0.2},"lower":-1}`,
		`{"locs":[[0,0],[0.5,0.5]],"kernel":{"family":"matern","range":0.1,"nu":1.5},"a":[null,-1],"b":[1,null]}`,
		`{"locs":[[0,0],[1]],"kernel":{"family":"exponential","range":0.2}}`,
		`{"grid":{"nx":100000,"ny":100000},"kernel":{"family":"exponential","range":0.2}}`,
		`{"grid":{"nx":-3,"ny":2},"kernel":{"family":"exponential","range":0.2}}`,
		`{"locs":[[0,0]],"grid":{"nx":2,"ny":2},"kernel":{"family":"exponential","range":0.2}}`,
		`{"grid":{"nx":2,"ny":2},"kernel":{"family":"cubic","range":-1}}`,
		`{"grid":{"nx":2,"ny":2},"kernel":{"family":"exponential","range":0.2},"a":[0,0,0],"b":[1,1,1,1]}`,
		`{"grid":{"nx":2,"ny":2},"kernel":{"family":"exponential","range":0.2},"a":[0,0,0,0],"lower":-1}`,
		`{"grid":{"nx":2,"ny":2},"kernel":{"family":"exponential","range":0.2},"nu":-5,"method":"sparse"}`,
		`{"grid":{"nx":2,"ny":2},"kernel":{"family":"exponential","range":1e999}}`,
		`{"locs":[[1e999,0]],"kernel":{"family":"exponential","range":0.2}}`,
		`[1,2,3]`,
		`{"a":[0],"b":[1]}`,
		`{"grid":{"nx":1,"ny":1},"kernel":{"family":"powexp","range":0.3,"nu":2},"a":[-0.5],"b":[0.5],"nu":3,"method":"tlr"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := Limits{MaxDim: 4096}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data, lim)
		if err != nil {
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("error is %T (%v), want *RequestError", err, err)
			}
			if reqErr.Field == "" || reqErr.Reason == "" {
				t.Fatalf("request error missing field/reason: %+v", reqErr)
			}
			return
		}
		n := len(req.Locs)
		if n <= 0 || n > lim.MaxDim {
			t.Fatalf("accepted dimension %d outside (0,%d]", n, lim.MaxDim)
		}
		if len(req.A) != n || len(req.B) != n {
			t.Fatalf("accepted limits of lengths %d,%d for dimension %d", len(req.A), len(req.B), n)
		}
		for i := range req.A {
			if math.IsNaN(req.A[i]) || math.IsNaN(req.B[i]) {
				t.Fatalf("accepted NaN limit at %d", i)
			}
		}
		for i, p := range req.Locs {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				t.Fatalf("accepted non-finite location %d: %+v", i, p)
			}
		}
	})
}

// FuzzDecodeRequestStructured drives the decoder with syntactically valid
// JSON assembled from fuzzed numeric fields, reaching past the parse layer
// into the structural checks far more often than raw bytes do.
func FuzzDecodeRequestStructured(f *testing.F) {
	f.Add(3, 3, 0.2, -1.0, 1.0, 0.0, "exponential", "")
	f.Add(2, 2, 0.1, -0.5, 0.5, 5.0, "matern", "tlr")
	f.Add(-1, 7, -0.3, 2.0, -2.0, -1.0, "cubic", "sparse")
	f.Add(1000000, 1000000, 0.0, 0.0, 0.0, 0.0, "", "adaptive")
	f.Fuzz(func(t *testing.T, nx, ny int, rng, lo, hi, nu float64, family, method string) {
		body, err := json.Marshal(map[string]any{
			"grid":   map[string]any{"nx": nx, "ny": ny},
			"kernel": map[string]any{"family": family, "range": rng, "nu": nu},
			"lower":  lo, "upper": hi, "method": method,
		})
		if err != nil {
			return // NaN/Inf fields are not representable in JSON
		}
		req, err := DecodeRequest(body, Limits{MaxDim: 1024})
		if err != nil {
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("error is %T (%v), want *RequestError", err, err)
			}
			return
		}
		if n := len(req.Locs); n <= 0 || n > 1024 || len(req.A) != n || len(req.B) != n {
			t.Fatalf("accepted inconsistent request: n=%d a=%d b=%d", len(req.Locs), len(req.A), len(req.B))
		}
	})
}
