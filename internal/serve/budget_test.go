package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestServeBudgetedQuery runs a max_error-budgeted request end to end and
// checks the response carries the wave-path accounting: the applied budget,
// the samples actually paid, the achieved error and the converged flag.
func TestServeBudgetedQuery(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()

	req := testRequest(6, 0.2)
	req.MaxError = 0.02
	resp, err := srv.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Prob <= 0 || resp.Prob > 1 {
		t.Fatalf("prob %g not in (0,1]", resp.Prob)
	}
	if resp.MaxError != 0.02 || resp.Degraded {
		t.Fatalf("applied budget = %g (degraded %v), want the requested 0.02 undegraded", resp.MaxError, resp.Degraded)
	}
	if resp.Samples <= 0 {
		t.Fatalf("budgeted response reports no samples: %+v", resp)
	}
	if resp.Converged && (resp.RelErr <= 0 || resp.RelErr > 0.02) {
		t.Fatalf("converged with rel_err %g outside (0, 0.02]", resp.RelErr)
	}

	// The unconstrained query is untouched by the budgeted one: identical to
	// a fresh server's answer (deterministic engine, no budget set).
	plain, err := srv.Do(context.Background(), testRequest(6, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(testConfig())
	defer srv2.Close()
	fresh, err := srv2.Do(context.Background(), testRequest(6, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Prob != fresh.Prob {
		t.Fatalf("unconstrained prob %0.17g != fresh server %0.17g", plain.Prob, fresh.Prob)
	}
	if plain.MaxError != 0 || plain.Converged || plain.Degraded {
		t.Fatalf("unconstrained response carries budget fields: %+v", plain)
	}

	st := srv.Snapshot()
	if st.BudgetedQueries != 1 {
		t.Fatalf("budgeted_queries = %d, want 1", st.BudgetedQueries)
	}
	if st.SamplesP50 <= 0 {
		t.Fatalf("samples percentiles not recorded: %+v", st)
	}
}

// TestServeDeadlineCapped: an effectively-expired deadline still serves the
// first wave's estimate — budget-capped, never an error — and the stats
// count it.
func TestServeDeadlineCapped(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()

	// Warm the factor first so the deadline measures integration, not the
	// factorization the first request pays.
	if _, err := srv.Do(context.Background(), testRequest(6, 0.2)); err != nil {
		t.Fatal(err)
	}
	req := testRequest(6, 0.2)
	req.DeadlineMs = 0.001 // expired by the time the wave loop checks it
	resp, err := srv.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Converged || resp.Canceled {
		t.Fatalf("expired deadline: want budget-capped, got %+v", resp)
	}
	if resp.Samples <= 0 || resp.Samples >= 400 {
		t.Fatalf("expired deadline paid %d samples, want a partial wave count in (0,400)", resp.Samples)
	}
	if resp.Prob <= 0 || resp.Prob > 1 || resp.StdErr <= 0 {
		t.Fatalf("partial estimate unusable: %+v", resp)
	}
}

// TestServeDegradation pins the SLO-aware degradation ramp: at full
// in-flight load every query's error budget is loosened to MaxErrorFloor
// (never past it, and a looser client budget is never tightened), the
// response is flagged, and the counters see it.
func TestServeDegradation(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInFlight = 1 // the request itself saturates the gauge
	cfg.DegradeAt = 0.5
	cfg.MaxErrorFloor = 0.05
	srv := New(cfg)
	defer srv.Close()

	resp, err := srv.Do(context.Background(), testRequest(6, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.MaxError != 0.05 {
		t.Fatalf("full load: want budget degraded to the 0.05 floor, got %+v", resp)
	}
	// A client budget looser than the floor is kept, not tightened.
	req := testRequest(6, 0.2)
	req.MaxError = 0.2
	resp, err = srv.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.MaxError != 0.2 {
		t.Fatalf("looser client budget must win: got %+v", resp)
	}
	st := srv.Snapshot()
	if st.Degraded != 1 || st.BudgetedQueries != 2 {
		t.Fatalf("degraded/budgeted = %d/%d, want 1/2", st.Degraded, st.BudgetedQueries)
	}
	if st.Rejected != 0 {
		t.Fatalf("degradation must shed accuracy, not requests: %d rejected", st.Rejected)
	}
}

// TestServeBudgetValidation: malformed budgets are 400-class request errors,
// from the JSON decoder and the in-process path alike.
func TestServeBudgetValidation(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	for _, tc := range []struct{ maxErr, deadlineMs float64 }{
		{maxErr: 1.5}, {maxErr: -0.1}, {maxErr: math.NaN()},
		{deadlineMs: -5}, {deadlineMs: math.Inf(1)},
	} {
		req := testRequest(4, 0.2)
		req.MaxError, req.DeadlineMs = tc.maxErr, tc.deadlineMs
		_, err := srv.Do(context.Background(), req)
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("max_error=%g deadline_ms=%g: got %v, want RequestError", tc.maxErr, tc.deadlineMs, err)
		}
	}
	if _, err := DecodeRequest([]byte(`{"grid":{"nx":4,"ny":4},"kernel":{"family":"exponential","range":0.2},"max_error":2}`), Limits{}); err == nil {
		t.Error("decoder accepted max_error=2")
	}
	req, err := DecodeRequest([]byte(`{"grid":{"nx":4,"ny":4},"kernel":{"family":"exponential","range":0.2},"max_error":1e-3,"deadline_ms":50}`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if req.MaxError != 1e-3 || req.DeadlineMs != 50 {
		t.Fatalf("decoded budgets = %g/%g, want 1e-3/50", req.MaxError, req.DeadlineMs)
	}
}

// TestServeInterleavedBudgetStress interleaves deadline-capped and
// unconstrained queries on ONE shared factor from many goroutines: they
// coalesce into the same flights and batch calls, and the per-query opts
// must stay with their queries — every unconstrained result bit-identical
// across the run, every capped result a valid partial estimate. Race-gated:
// this exists to put the race detector over the opts fan-in.
func TestServeInterleavedBudgetStress(t *testing.T) {
	if !raceEnabled {
		t.Skip("stress test is race-gated: run with -race")
	}
	cfg := testConfig()
	cfg.BatchWindow = 200 * time.Microsecond
	srv := New(cfg)
	defer srv.Close()

	// Warm the shared factor so every goroutine below hits warm flights.
	if _, err := srv.Do(context.Background(), testRequest(6, 0.2)); err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 10
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		plain   = math.NaN()
		gate    = make(chan struct{})
		capped  int
		futured int
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			<-gate
			for it := 0; it < iters; it++ {
				req := testRequest(6, 0.2)
				budgeted := rng.Intn(2) == 0
				if budgeted {
					req.DeadlineMs = 0.001 // expired: one wave, partial estimate
				}
				resp, err := srv.Do(context.Background(), req)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if resp.Prob <= 0 || resp.Prob > 1 || math.IsNaN(resp.Prob) {
					t.Errorf("goroutine %d: prob %g out of (0,1]", g, resp.Prob)
					return
				}
				mu.Lock()
				if budgeted {
					if resp.Converged {
						futured++
					} else {
						capped++
					}
					if resp.StdErr <= 0 {
						t.Errorf("capped query lost its error bar: %+v", resp)
					}
				} else {
					if math.IsNaN(plain) {
						plain = resp.Prob
					} else if resp.Prob != plain {
						t.Errorf("unconstrained results diverge: %0.17g != %0.17g", resp.Prob, plain)
					}
					if resp.Samples != 400 {
						t.Errorf("unconstrained query paid %d samples, want the fixed 400", resp.Samples)
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	close(gate)
	wg.Wait()
	if capped == 0 {
		t.Fatalf("no deadline-capped queries observed (converged instead: %d)", futured)
	}
	st := srv.Snapshot()
	if st.BudgetCapped == 0 {
		t.Fatal("budget_capped counter never moved")
	}
}
