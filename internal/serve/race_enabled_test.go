//go:build race

package serve

// raceEnabled reports that the race detector instruments this build; the
// concurrency stress tests are gated on it — they exist to be run under
// -race (as CI does), where the detector checks every interleaving they
// provoke.
const raceEnabled = true
