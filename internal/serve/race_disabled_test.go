//go:build !race

package serve

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
