package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro"
)

// testConfig is a small, fast server configuration shared by the tests.
func testConfig() Config {
	return Config{
		Session: parmvn.Config{QMCSize: 400, TileSize: 16},
		Shards:  2,
	}
}

func testRequest(grid int, rng float64) *Request {
	locs := parmvn.Grid(grid, grid)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = math.Inf(1)
	}
	return &Request{
		Locs:   locs,
		Kernel: parmvn.KernelSpec{Family: "exponential", Range: rng},
		A:      a, B: b,
	}
}

func TestServeBasic(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	resp, err := srv.Do(context.Background(), testRequest(6, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Prob <= 0 || resp.Prob > 1 || math.IsNaN(resp.Prob) {
		t.Fatalf("prob %g not in (0,1]", resp.Prob)
	}
	if resp.N != 36 || resp.Method != "dense" {
		t.Fatalf("resp meta = %d/%s, want 36/dense", resp.N, resp.Method)
	}
	// Same problem again: warm, identical result (deterministic QMC).
	resp2, err := srv.Do(context.Background(), testRequest(6, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Prob != resp.Prob {
		t.Fatalf("warm prob %g != cold prob %g", resp2.Prob, resp.Prob)
	}
	st := srv.Snapshot()
	if st.Factorizations != 1 {
		t.Fatalf("factorizations = %d, want 1", st.Factorizations)
	}
	if st.Requests != 2 || st.MVNRequests != 2 {
		t.Fatalf("requests = %d/%d, want 2/2", st.Requests, st.MVNRequests)
	}
}

// TestServeIgnoresNoFactorCache pins that serve.New force-clears
// Session.NoFactorCache: serving is built on the factor cache, and honoring
// the flag would factorize on every flush.
func TestServeIgnoresNoFactorCache(t *testing.T) {
	cfg := testConfig()
	cfg.Session.NoFactorCache = true
	srv := New(cfg)
	defer srv.Close()
	for i := 0; i < 2; i++ {
		if _, err := srv.Do(context.Background(), testRequest(5, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Snapshot(); st.Factorizations != 1 || st.CacheMisses != 1 {
		t.Fatalf("factorizations/misses = %d/%d with NoFactorCache set, want 1/1 (flag must be cleared)",
			st.Factorizations, st.CacheMisses)
	}
}

// TestServeMatchesSession pins that the serving layer is a pass-through: a
// query served over a Server equals the same query on a directly-owned
// Session with the same configuration, for each method and for MVN and MVT.
func TestServeMatchesSession(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	for _, method := range []string{"dense", "tlr", "adaptive"} {
		req := testRequest(5, 0.3)
		req.Method = method
		got, err := srv.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		cfg := srv.sessionConfig(mustMethod(t, method), len(req.Locs), false)
		sess := parmvn.NewSession(cfg)
		want, err := sess.MVNProb(req.Locs, req.Kernel, req.A, req.B)
		sess.Close()
		if err != nil {
			t.Fatalf("%s session: %v", method, err)
		}
		if got.Prob != want.Prob {
			t.Fatalf("%s: served %g != session %g", method, got.Prob, want.Prob)
		}

		reqT := testRequest(5, 0.3)
		reqT.Method = method
		reqT.Nu = 7
		gotT, err := srv.Do(context.Background(), reqT)
		if err != nil {
			t.Fatalf("%s mvt: %v", method, err)
		}
		sess = parmvn.NewSession(cfg)
		wantT, err := sess.MVTProb(reqT.Locs, reqT.Kernel, reqT.Nu, reqT.A, reqT.B)
		sess.Close()
		if err != nil {
			t.Fatalf("%s mvt session: %v", method, err)
		}
		if gotT.Prob != wantT.Prob {
			t.Fatalf("%s mvt: served %g != session %g", method, gotT.Prob, wantT.Prob)
		}
	}
}

// TestServeSweepF32 pins the f32 sweep path through the serving layer: the
// response echoes the sweep it ran with, the result stays within the QMC
// error bar of the f64 sweep, and both precisions share one cached factor
// (sweep is excluded from the factor key; only the pooled sessions differ).
func TestServeSweepF32(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	ctx := context.Background()

	r64, err := srv.Do(ctx, testRequest(6, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if r64.Sweep != "" {
		t.Fatalf("f64 sweep echo = %q, want empty", r64.Sweep)
	}

	req := testRequest(6, 0.2)
	req.Sweep = "f32"
	r32, err := srv.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r32.Sweep != "f32" {
		t.Fatalf("f32 sweep echo = %q, want %q", r32.Sweep, "f32")
	}
	if math.Abs(r32.Prob-r64.Prob) > 1e-3+3*(r32.StdErr+r64.StdErr) {
		t.Fatalf("f32 prob %g vs f64 %g beyond error bar (stderr %g/%g)",
			r32.Prob, r64.Prob, r32.StdErr, r64.StdErr)
	}
	if st := srv.Snapshot(); st.Factorizations != 1 {
		t.Fatalf("factorizations = %d, want 1 (f32 and f64 share the cached factor)",
			st.Factorizations)
	}

	// The explicit "f64" spelling is accepted and equals the default.
	req64 := testRequest(6, 0.2)
	req64.Sweep = "f64"
	rExp, err := srv.Do(ctx, req64)
	if err != nil {
		t.Fatal(err)
	}
	if rExp.Prob != r64.Prob {
		t.Fatalf(`sweep "f64" prob %g != default prob %g`, rExp.Prob, r64.Prob)
	}

	// Wire-level: the sweep field decodes and bad values are rejected.
	body := []byte(`{"grid":{"nx":3,"ny":3},"kernel":{"family":"exponential","range":0.2},"lower":-1,"sweep":"f32"}`)
	dec, err := DecodeRequest(body, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Sweep != "f32" {
		t.Fatalf("decoded sweep = %q, want %q", dec.Sweep, "f32")
	}
	if _, err := DecodeRequest([]byte(`{"grid":{"nx":3,"ny":3},"kernel":{"family":"exponential","range":0.2},"sweep":"half"}`), Limits{}); err == nil {
		t.Fatal("bad sweep value decoded without error")
	}
}

func mustMethod(t *testing.T, s string) parmvn.Method {
	t.Helper()
	m, err := parseMethod(s, parmvn.Dense)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestServeValidation(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	ctx := context.Background()
	cases := []struct {
		name  string
		mut   func(*Request)
		field string
	}{
		{"no locs", func(r *Request) { r.Locs = nil }, "locs"},
		{"bad kernel", func(r *Request) { r.Kernel.Range = -1 }, "kernel"},
		{"bad family", func(r *Request) { r.Kernel.Family = "cubic" }, "kernel"},
		{"short a", func(r *Request) { r.A = r.A[:3] }, "limits"},
		{"nan limit", func(r *Request) { r.B[2] = math.NaN() }, "limits"},
		{"bad method", func(r *Request) { r.Method = "sparse" }, "method"},
		{"bad sweep", func(r *Request) { r.Sweep = "f16" }, "sweep"},
		{"bad nu", func(r *Request) { r.Nu = -2 }, "nu"},
		{"huge", func(r *Request) { r.Locs = parmvn.Grid(200, 200) }, "locs"},
	}
	for _, tc := range cases {
		req := testRequest(4, 0.3)
		tc.mut(req)
		_, err := srv.Do(ctx, req)
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Fatalf("%s: err = %v, want *RequestError", tc.name, err)
		}
		if reqErr.Field != tc.field {
			t.Fatalf("%s: field = %q, want %q", tc.name, reqErr.Field, tc.field)
		}
	}
	if st := srv.Snapshot(); st.BadRequests != uint64(len(cases)) {
		t.Fatalf("bad_requests = %d, want %d", st.BadRequests, len(cases))
	}
}

// TestServeEmptyBox pins the degenerate-box semantics through the serving
// layer: a box with a[i] ≥ b[i] has probability exactly 0 and is answered
// without a flight, a factorization slot, or a session — so statically-zero
// requests cannot evict real factors or occupy admission capacity.
func TestServeEmptyBox(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	req := testRequest(4, 0.3)
	req.A[0], req.B[0] = 2, 1
	resp, err := srv.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Prob != 0 {
		t.Fatalf("empty box prob = %g, want 0", resp.Prob)
	}
	st := srv.Snapshot()
	if st.Batches != 0 || st.Factorizations != 0 || st.Sessions != 0 {
		t.Fatalf("empty box spent work: batches=%d factorizations=%d sessions=%d, want all 0",
			st.Batches, st.Factorizations, st.Sessions)
	}
}

// TestServeMaxBatchFlushesEarly pins that a flight gathering MaxBatch
// queries flushes immediately instead of sleeping out its batch window.
func TestServeMaxBatchFlushesEarly(t *testing.T) {
	cfg := testConfig()
	cfg.BatchWindow = 10 * time.Second // far beyond the test timeout budget
	cfg.MaxBatch = 2
	srv := New(cfg)
	defer srv.Close()
	// Warm the factor first; a cold flight flushes right after its
	// factorization, so the giant window does not apply to it.
	if _, err := srv.Do(context.Background(), testRequest(4, 0.3)); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			if _, err := srv.Do(context.Background(), testRequest(4, 0.3)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("two queries at MaxBatch=2 took %v; the full batch did not flush early", d)
	}
}

// TestServeCoalesce pins the acceptance criterion: 32 concurrent clients
// requesting the same cold problem key trigger exactly one factorization,
// every client gets exactly one response, and all responses agree.
func TestServeCoalesce(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 64 // hold all 32 in one flight
	srv := New(cfg)
	defer srv.Close()

	const clients = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
		probs [clients]float64
		errs  [clients]error
	)
	start.Add(clients)
	done.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer done.Done()
			req := testRequest(8, 0.15)
			start.Done()
			<-gate
			resp, err := srv.Do(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			probs[i] = resp.Prob
		}(i)
	}
	start.Wait()
	close(gate)
	done.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if probs[i] != probs[0] {
			t.Fatalf("client %d: prob %g != client 0's %g", i, probs[i], probs[0])
		}
		if probs[i] <= 0 || probs[i] > 1 {
			t.Fatalf("client %d: prob %g not in (0,1]", i, probs[i])
		}
	}
	st := srv.Snapshot()
	if st.Factorizations != 1 {
		t.Fatalf("factorizations = %d, want exactly 1 for one cold key", st.Factorizations)
	}
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 (single build)", st.CacheMisses)
	}
	if st.Coalesced == 0 {
		t.Fatalf("coalesced = 0, want most of the %d clients to join the flight", clients)
	}
	if st.Requests != clients {
		t.Fatalf("requests = %d, want %d", st.Requests, clients)
	}
}

// TestServeBackpressure pins the other acceptance criterion: a saturated
// server fails fast with ErrOverloaded instead of queueing without bound.
// One slow cold factorization occupies the single slot; with a zero-depth
// factorization queue, every other cold key must be rejected immediately.
func TestServeBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflightFactor = 1
	cfg.FactorQueueDepth = -1 // → 0 after defaulting: no waiting at all
	srv := New(cfg)
	defer srv.Close()

	// Occupy the only factorization slot with a big cold problem.
	blockerDone := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), testRequest(28, 0.1)) // n=784
		blockerDone <- err
	}()
	// Wait until the blocker holds the slot (its factorization lead is
	// counted before the build starts).
	for srv.Snapshot().Factorizations == 0 {
		time.Sleep(200 * time.Microsecond)
	}

	// Every distinct cold key now fails fast.
	var rejected int
	for i := 0; i < 8; i++ {
		_, err := srv.Do(context.Background(), testRequest(6, 0.05+0.01*float64(i)))
		if errors.Is(err, ErrOverloaded) {
			rejected++
		} else if err != nil {
			t.Fatalf("cold key %d: unexpected error %v", i, err)
		}
	}
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if rejected == 0 {
		t.Fatal("no request was rejected while the factorization slot was held")
	}
	st := srv.Snapshot()
	if st.Rejected != uint64(rejected) {
		t.Fatalf("rejected counter = %d, want %d", st.Rejected, rejected)
	}
	if st.FactorQueueDepth != 0 {
		t.Fatalf("factor queue depth = %d after drain, want 0", st.FactorQueueDepth)
	}

	// After the blocker finishes, the same keys are admitted again.
	if _, err := srv.Do(context.Background(), testRequest(6, 0.05)); err != nil {
		t.Fatalf("post-drain query: %v", err)
	}
}

// TestServeMaxInFlight exercises the total-request cap path.
func TestServeMaxInFlight(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInFlight = 1
	cfg.BatchWindow = 20 * time.Millisecond // keep the first request in flight
	srv := New(cfg)
	defer srv.Close()

	// Warm the factor so the in-flight request sits in the batch window.
	if _, err := srv.Do(context.Background(), testRequest(4, 0.3)); err != nil {
		t.Fatal(err)
	}
	held := make(chan struct{})
	go func() {
		srv.Do(context.Background(), testRequest(4, 0.3))
		close(held)
	}()
	// Wait for the in-flight gauge, then collide with the cap.
	for srv.Snapshot().InFlight == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := srv.Do(context.Background(), testRequest(4, 0.3)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded at the in-flight cap", err)
	}
	<-held
}

// TestServeMVTSharesFactor pins that MVN and MVT flights for one problem
// share a single cached factor (the key ignores ν).
func TestServeMVTSharesFactor(t *testing.T) {
	srv := New(testConfig())
	defer srv.Close()
	if _, err := srv.Do(context.Background(), testRequest(5, 0.25)); err != nil {
		t.Fatal(err)
	}
	reqT := testRequest(5, 0.25)
	reqT.Nu = 9
	if _, err := srv.Do(context.Background(), reqT); err != nil {
		t.Fatal(err)
	}
	st := srv.Snapshot()
	if st.Factorizations != 1 || st.CacheMisses != 1 {
		t.Fatalf("factorizations/misses = %d/%d, want 1/1 across MVN+MVT", st.Factorizations, st.CacheMisses)
	}
	if st.MVTRequests != 1 {
		t.Fatalf("mvt_requests = %d, want 1", st.MVTRequests)
	}
}

// TestServeClosed pins that a closed server rejects instead of hanging.
func TestServeClosed(t *testing.T) {
	srv := New(testConfig())
	srv.Close()
	if _, err := srv.Do(context.Background(), testRequest(4, 0.3)); err == nil {
		t.Fatal("Do on a closed server succeeded")
	}
	srv.Close() // idempotent
}

// TestServeContextCancel pins that a canceled waiter returns promptly while
// the flight still completes for everyone else.
func TestServeContextCancel(t *testing.T) {
	cfg := testConfig()
	cfg.BatchWindow = 50 * time.Millisecond
	srv := New(cfg)
	defer srv.Close()
	// Warm the factor so the next request sits in the batch window.
	if _, err := srv.Do(context.Background(), testRequest(4, 0.3)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Do(ctx, testRequest(4, 0.3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
