package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Router is the thin horizontal-scaling tier over N mvnserve backends:
// it decodes just enough of each request to compute its parmvn.ProblemKey,
// picks a backend by consistent hashing on ProblemKey.Hash(), and proxies
// the request there — so one covariance model always lands on one
// backend's factor cache, no matter how many replicas serve traffic.
//
// Backends are health-checked in the background. When one fails its
// checks, the hash ring is rebuilt without it: consistent hashing hands
// only the failed backend's keys to their next replicas (everything else
// keeps its placement), and hands them back when the backend recovers. A
// request whose chosen backend fails mid-proxy retries on the next
// distinct replica around the ring.
//
// The router holds no sessions and no factors; paired with a shared
// persistent factor store on the backends, any replica can warm any key it
// inherits.
type Router struct {
	cfg      RouterConfig
	client   *http.Client
	backends []*backend
	ring     atomic.Pointer[hashRing]
	stop     chan struct{}
	wg       sync.WaitGroup
	start    time.Time

	requests  atomic.Uint64
	badReqs   atomic.Uint64
	retries   atomic.Uint64
	noBackend atomic.Uint64
	rebuilds  atomic.Uint64
}

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Backends are the base URLs of the mvnserve replicas, e.g.
	// "http://10.0.0.1:8080". At least one is required.
	Backends []string
	// Session must mirror the backends' engine configuration (method, tile
	// size, tolerances): the router derives each request's ProblemKey from
	// it exactly as a backend's serving layer would, so router placement and
	// backend caching agree. A mismatch only costs cache locality, never
	// correctness — every backend can serve every key.
	Session parmvn.Config
	// VirtualNodes is the number of hash-ring points per backend; more
	// points smooth the key distribution. Default 128.
	VirtualNodes int
	// HealthInterval is the backend health-check period. Default 1s.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe. Default 500ms.
	HealthTimeout time.Duration
	// MaxDim rejects requests whose dimension exceeds it. Default 16384.
	MaxDim int
	// MaxBodyBytes caps an HTTP request body. Default 8 MiB.
	MaxBodyBytes int64
	// Client optionally overrides the proxy HTTP client (tests).
	Client *http.Client
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 128
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 500 * time.Millisecond
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 16384
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// backend is one replica and its health/traffic state.
type backend struct {
	url       string
	healthy   atomic.Bool
	forwarded atomic.Uint64
	failures  atomic.Uint64
}

// hashRing is an immutable consistent-hash ring over the currently healthy
// backends: points[i].hash is sorted ascending, and a key is served by the
// first point clockwise from its hash. Rebuilt (atomically swapped) on
// membership change only, so lookups are lock-free.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	idx  int // index into Router.backends
}

// NewRouter validates the backend list and starts the health loop. Close
// stops it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	c := cfg.withDefaults()
	if len(c.Backends) == 0 {
		return nil, errors.New("serve: router needs at least one backend")
	}
	r := &Router{
		cfg:    c,
		client: c.Client,
		stop:   make(chan struct{}),
		start:  time.Now(),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 60 * time.Second}
	}
	seen := map[string]bool{}
	for _, b := range c.Backends {
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("serve: router backend %q is not an absolute URL", b)
		}
		base := strings.TrimRight(b, "/")
		if seen[base] {
			return nil, fmt.Errorf("serve: duplicate router backend %q", base)
		}
		seen[base] = true
		be := &backend{url: base}
		// Optimistically healthy until the first probe says otherwise, so a
		// router serves immediately after startup.
		be.healthy.Store(true)
		r.backends = append(r.backends, be)
	}
	r.rebuild()
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// Close stops the health loop.
func (r *Router) Close() {
	close(r.stop)
	r.wg.Wait()
}

// rebuild swaps in a fresh ring over the currently healthy backends — the
// membership-change key handoff: only keys owned by departed backends move
// (to their next clockwise replica), and they move back on recovery.
func (r *Router) rebuild() {
	ring := &hashRing{}
	var key [2]uint64
	for i, b := range r.backends {
		if !b.healthy.Load() {
			continue
		}
		// Virtual node hashes: FNV-1a over the backend URL and the node
		// index, well mixed; stable across processes so every router replica
		// computes the same placement.
		h := fnvString(b.url)
		for v := 0; v < r.cfg.VirtualNodes; v++ {
			key[0], key[1] = h, uint64(v)
			ring.points = append(ring.points, ringPoint{hash: mix128(key), idx: i})
		}
	}
	sort.Slice(ring.points, func(a, b int) bool { return ring.points[a].hash < ring.points[b].hash })
	r.ring.Store(ring)
	r.rebuilds.Add(1)
}

// fnvString is FNV-1a/64 over s.
func fnvString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// mix128 hashes a (backend, vnode) pair to a ring position.
func mix128(k [2]uint64) uint64 {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], k[0])
	binary.LittleEndian.PutUint64(b[8:], k[1])
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	// Final avalanche (splitmix64 tail) so sequential vnode indices spread.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// pick returns up to max distinct healthy backends for key hash h, in
// consistent-hash order: the owner first, then the retry replicas walking
// clockwise.
func (r *Router) pick(h uint64, max int) []*backend {
	ring := r.ring.Load()
	if ring == nil || len(ring.points) == 0 {
		return nil
	}
	start := sort.Search(len(ring.points), func(i int) bool { return ring.points[i].hash >= h })
	var out []*backend
	seen := map[int]bool{}
	for i := 0; i < len(ring.points) && len(out) < max; i++ {
		p := ring.points[(start+i)%len(ring.points)]
		if seen[p.idx] {
			continue
		}
		seen[p.idx] = true
		b := r.backends[p.idx]
		if b.healthy.Load() {
			out = append(out, b)
		}
	}
	return out
}

// healthLoop probes every backend each interval and rebuilds the ring when
// membership changes.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		changed := false
		for _, b := range r.backends {
			ok := r.probe(b)
			if b.healthy.Swap(ok) != ok {
				changed = true
			}
		}
		if changed {
			r.rebuild()
		}
	}
}

// probe is one health check.
func (r *Router) probe(b *backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markDown flags a backend that failed a live request and rebuilds the
// ring immediately — the fast handoff path; the health loop will bring the
// backend back when it recovers.
func (r *Router) markDown(b *backend) {
	if b.healthy.Swap(false) {
		r.rebuild()
	}
}

// Handler returns the router's HTTP surface — the same /v1 endpoints as a
// backend, plus the router's own /healthz and /stats.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/mvnprob", r.handleProxy)
	mux.HandleFunc("/v1/mvtprob", r.handleProxy)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if len(r.pick(0, 1)) == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "no healthy backends\n")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Snapshot())
	})
	return mux
}

// handleProxy routes one probability query: decode enough to compute the
// problem key, pick the key's backend, proxy, and on backend failure retry
// the next distinct replica around the ring.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	r.requests.Add(1)
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, badReq("body", "use POST"), http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		r.badReqs.Add(1)
		writeErr(w, badReq("body", "%v", err), status)
		return
	}
	h, rerr := r.routeHash(body)
	if rerr != nil {
		r.badReqs.Add(1)
		writeError(w, rerr)
		return
	}
	cands := r.pick(h, len(r.backends))
	if len(cands) == 0 {
		w.Header().Set("Retry-After", "1")
		r.noBackend.Add(1)
		writeErr(w, errors.New("serve: router has no healthy backend"), http.StatusServiceUnavailable)
		return
	}
	var lastErr error
	for i, b := range cands {
		if i > 0 {
			r.retries.Add(1)
		}
		resp, err := r.forward(req.Context(), b, req.URL.Path, body)
		if err != nil {
			// Transport-level failure: the backend is gone or wedged. Hand
			// its keys off immediately and try the next replica.
			b.failures.Add(1)
			r.markDown(b)
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && i+1 < len(cands) {
			// Overloaded backend: spill this request to the next replica
			// (its cache stays authoritative for the key — spilling trades
			// one cold factorization for not shedding the request).
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			b.failures.Add(1)
			lastErr = ErrOverloaded
			continue
		}
		b.forwarded.Add(1)
		relay(w, resp)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeErr(w, fmt.Errorf("serve: all replicas failed: %v", lastErr), http.StatusServiceUnavailable)
}

// routeHash computes the request's placement hash: decode, validate, and
// key exactly as the backend's serving layer will.
func (r *Router) routeHash(body []byte) (uint64, error) {
	req, err := DecodeRequest(body, Limits{MaxDim: r.cfg.MaxDim})
	if err != nil {
		return 0, err
	}
	method, err := parseMethod(req.Method, r.cfg.Session.Method)
	if err != nil {
		return 0, err
	}
	if err := req.Kernel.Validate(); err != nil {
		return 0, badReq("kernel", "%v", err)
	}
	cfg := sessionConfigFor(r.cfg.Session, method, len(req.Locs), req.Sweep == "f32")
	pk, err := cfg.ProblemKey(req.Locs, req.Kernel)
	if err != nil {
		return 0, badReq("kernel", "%v", err)
	}
	return pk.Hash(), nil
}

// forward proxies one request body to a backend.
func (r *Router) forward(ctx context.Context, b *backend, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return r.client.Do(req)
}

// relay copies a backend response through to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// RouterStats is the router's /stats snapshot.
type RouterStats struct {
	UptimeSec float64 `json:"uptime_sec"`
	// Requests counts proxied query requests (not health probes).
	Requests    uint64 `json:"requests"`
	BadRequests uint64 `json:"bad_requests"`
	// Retries counts proxy attempts beyond the first — requests that had to
	// fail over to another replica.
	Retries uint64 `json:"retries"`
	// NoBackend counts requests rejected because no backend was healthy.
	NoBackend uint64 `json:"no_backend"`
	// RingRebuilds counts membership changes (including the initial
	// build): each one is a consistent-hash key handoff.
	RingRebuilds uint64 `json:"ring_rebuilds"`
	// HealthyBackends is the current healthy count.
	HealthyBackends int                  `json:"healthy_backends"`
	Backends        []RouterBackendStats `json:"backends"`
}

// RouterBackendStats is one backend's routing state.
type RouterBackendStats struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Forwarded uint64 `json:"forwarded"`
	Failures  uint64 `json:"failures"`
}

// Snapshot assembles the router statistics.
func (r *Router) Snapshot() RouterStats {
	st := RouterStats{
		UptimeSec:    time.Since(r.start).Seconds(),
		Requests:     r.requests.Load(),
		BadRequests:  r.badReqs.Load(),
		Retries:      r.retries.Load(),
		NoBackend:    r.noBackend.Load(),
		RingRebuilds: r.rebuilds.Load(),
	}
	for _, b := range r.backends {
		healthy := b.healthy.Load()
		if healthy {
			st.HealthyBackends++
		}
		st.Backends = append(st.Backends, RouterBackendStats{
			URL: b.url, Healthy: healthy,
			Forwarded: b.forwarded.Load(), Failures: b.failures.Load(),
		})
	}
	return st
}
