package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// Handler returns the server's HTTP surface:
//
//	POST /v1/mvnprob  — one MVN probability query (JSON, see wireRequest)
//	POST /v1/mvtprob  — one MVT probability query (requires "nu")
//	GET  /healthz     — liveness
//	GET  /stats       — Stats snapshot (counters, cache, latency)
//
// Error mapping: malformed requests → 400 with {"error","field"}, admission
// rejections → 503 with Retry-After, compute failures → 500.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/mvnprob", s.handleProb(false))
	mux.HandleFunc("/v1/mvtprob", s.handleProb(true))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	return mux
}

func (s *Server) handleProb(mvt bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeErr(w, badReq("body", "use POST"), http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			writeErr(w, badReq("body", "%v", err), status)
			return
		}
		req, err := DecodeRequest(body, Limits{MaxDim: s.cfg.MaxDim})
		if err != nil {
			writeError(w, err)
			return
		}
		if mvt && req.Nu == 0 {
			writeError(w, badReq("nu", "degrees of freedom are required for mvtprob"))
			return
		}
		if !mvt && req.Nu != 0 {
			writeError(w, badReq("nu", "nu is only valid for /v1/mvtprob"))
			return
		}
		resp, err := s.Do(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// writeError maps a request-path error to its HTTP status.
func writeError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		writeErr(w, reqErr, http.StatusBadRequest)
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErr(w, err, http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or timed out; 499 is conventional but not in
		// net/http, so report the nearest standard status.
		writeErr(w, err, http.StatusRequestTimeout)
	default:
		writeErr(w, err, http.StatusInternalServerError)
	}
}

func writeErr(w http.ResponseWriter, err error, status int) {
	resp := errorResponse{Error: err.Error()}
	var reqErr *RequestError
	if errors.As(err, &reqErr) {
		resp.Field = reqErr.Field
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
