package serve

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServeConcurrentMixedLoad hammers one Server from 32 goroutines with a
// mixed workload over overlapping problem keys — four kernels × two methods,
// MVN and MVT, all racing through the shared flights and session caches —
// and pins the serving invariants:
//
//   - exactly-once factorization per key: the aggregated session cache
//     misses equal the number of distinct problem keys touched (each key is
//     built once, no matter how many clients collided on it cold);
//   - no lost or duplicated responses: every request returns exactly one
//     result, and all results for one (problem, ν) tuple are identical
//     (the engine is deterministic, so any cross-request state bleed or
//     misrouted batch fan-in would show up as a mismatch).
//
// The test is race-gated: it exists to put the race detector (as CI runs
// it) over the flight/shard/cache interleavings, not to re-test
// single-threaded behavior.
func TestServeConcurrentMixedLoad(t *testing.T) {
	if !raceEnabled {
		t.Skip("stress test is race-gated: run with -race")
	}
	cfg := testConfig()
	cfg.BatchWindow = 200 * time.Microsecond
	cfg.Session.FactorCacheCap = 16 // no eviction: makes miss counts exact
	// This test pins coalescing and response integrity, not admission: up
	// to 16 flights (8 keys × MVN/MVT) can race to lead cold builds, so
	// give them headroom that the default queue depth does not.
	cfg.MaxInflightFactor = 4
	cfg.FactorQueueDepth = 64
	srv := New(cfg)
	defer srv.Close()

	ranges := []float64{0.1, 0.2, 0.3, 0.4}
	methods := []string{"dense", "tlr"}
	nus := []float64{0, 5} // 0 = MVN
	type tuple struct {
		ri, mi, ni int
	}

	const (
		goroutines = 32
		iters      = 12
	)
	var (
		mu     sync.Mutex
		seen   = map[tuple]float64{}
		gotN   int
		wg     sync.WaitGroup
		gate   = make(chan struct{})
		failed = make(chan string, goroutines*iters)
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			<-gate
			for it := 0; it < iters; it++ {
				tp := tuple{rng.Intn(len(ranges)), rng.Intn(len(methods)), rng.Intn(len(nus))}
				req := testRequest(6, ranges[tp.ri])
				req.Method = methods[tp.mi]
				req.Nu = nus[tp.ni]
				resp, err := srv.Do(context.Background(), req)
				if err != nil {
					failed <- err.Error()
					continue
				}
				if resp.Prob < 0 || resp.Prob > 1 || math.IsNaN(resp.Prob) {
					failed <- "prob out of [0,1]"
					continue
				}
				mu.Lock()
				gotN++
				if prev, ok := seen[tp]; ok && prev != resp.Prob {
					mu.Unlock()
					failed <- "mismatched result for one problem tuple"
					continue
				}
				seen[tp] = resp.Prob
				mu.Unlock()
			}
		}(g)
	}
	close(gate)
	wg.Wait()
	close(failed)
	for msg := range failed {
		t.Fatal(msg)
	}
	if gotN != goroutines*iters {
		t.Fatalf("responses = %d, want %d (lost or duplicated)", gotN, goroutines*iters)
	}

	st := srv.Snapshot()
	// Distinct factorization problems = kernels × methods (ν shares the
	// factor). Not every tuple is necessarily drawn, so count what was.
	keys := map[[2]int]bool{}
	for tp := range seen {
		keys[[2]int{tp.ri, tp.mi}] = true
	}
	if st.CacheMisses != len(keys) {
		t.Fatalf("cache misses = %d, want exactly %d (one build per distinct key)", st.CacheMisses, len(keys))
	}
	// A key's MVN and MVT flights can race to lead its factorization (both
	// see it absent), but the session cache still builds once; the lead
	// count is bounded by flights-per-key, not by clients.
	if int(st.Factorizations) < len(keys) || int(st.Factorizations) > 2*len(keys) {
		t.Fatalf("factorization leads = %d, want within [%d, %d]", st.Factorizations, len(keys), 2*len(keys))
	}
	if st.Requests != goroutines*iters {
		t.Fatalf("requests = %d, want %d", st.Requests, goroutines*iters)
	}
}

// TestServeConcurrentColdKeysUnderPressure mixes admission control with the
// mixed load: many goroutines race distinct cold keys through one
// factorization slot with a small queue, and every request must end in
// exactly one of (valid result, ErrOverloaded) — overload must shed, never
// wedge or corrupt.
func TestServeConcurrentColdKeysUnderPressure(t *testing.T) {
	if !raceEnabled {
		t.Skip("stress test is race-gated: run with -race")
	}
	cfg := testConfig()
	cfg.MaxInflightFactor = 1
	cfg.FactorQueueDepth = 2
	srv := New(cfg)
	defer srv.Close()

	const goroutines = 24
	var (
		wg        sync.WaitGroup
		succeeded atomic.Int64
		rejected  atomic.Int64
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			req := testRequest(7, 0.05+0.007*float64(g)) // distinct cold keys
			resp, err := srv.Do(context.Background(), req)
			switch {
			case err == nil && resp.Prob >= 0 && resp.Prob <= 1:
				succeeded.Add(1)
			case err == ErrOverloaded:
				rejected.Add(1)
			default:
				t.Errorf("goroutine %d: unexpected outcome: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if got := succeeded.Load() + rejected.Load(); got != goroutines {
		t.Fatalf("outcomes = %d, want %d", got, goroutines)
	}
	if succeeded.Load() == 0 {
		t.Fatal("every request was rejected; admission control is wedged")
	}
	st := srv.Snapshot()
	if st.Rejected != uint64(rejected.Load()) {
		t.Fatalf("rejected counter = %d, want %d", st.Rejected, rejected.Load())
	}
}
