package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// storeConfig is testConfig plus a persistent factor store.
func storeConfig(t *testing.T, dir string) Config {
	t.Helper()
	store, err := parmvn.OpenFactorStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Store = store
	return cfg
}

// TestServerStoreWarmRestart is the serving-layer restart contract: a
// server that factorized with a store attached writes the factor through;
// a second server sharing the directory serves its first query for that
// key warm — zero factorizations, one store hit.
func TestServerStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"grid":{"nx":4,"ny":4},"kernel":{"family":"exponential","range":0.3},"lower":-1}`

	srv1, ts1 := newTestHTTP(t, storeConfig(t, dir))
	if status, out := post(t, ts1.URL+"/v1/mvnprob", body); status != http.StatusOK {
		t.Fatalf("cold query status %d: %v", status, out)
	}
	// The write-through runs after the response is delivered; wait for it.
	waitFor(t, "store write-through", func() bool { return srv1.Snapshot().StoreSaves == 1 })
	st := srv1.Snapshot()
	if st.Factorizations != 1 || st.StoreMisses != 1 || st.StoreHits != 0 {
		t.Fatalf("first server factorizations/misses/hits = %d/%d/%d, want 1/1/0",
			st.Factorizations, st.StoreMisses, st.StoreHits)
	}

	// "Restart": a fresh server over the same directory.
	srv2, ts2 := newTestHTTP(t, storeConfig(t, dir))
	if status, out := post(t, ts2.URL+"/v1/mvnprob", body); status != http.StatusOK {
		t.Fatalf("warm query status %d: %v", status, out)
	}
	st = srv2.Snapshot()
	if st.Factorizations != 0 {
		t.Errorf("restarted server factorized %d times, want 0", st.Factorizations)
	}
	if st.StoreHits != 1 || st.StoreSaves != 0 {
		t.Errorf("restarted server store hits/saves = %d/%d, want 1/0", st.StoreHits, st.StoreSaves)
	}
	// MVT over the same covariance shares the stored factor too.
	if status, _ := post(t, ts2.URL+"/v1/mvtprob",
		`{"grid":{"nx":4,"ny":4},"kernel":{"family":"exponential","range":0.3},"lower":-1,"nu":7}`); status != http.StatusOK {
		t.Fatalf("mvt warm query status %d", status)
	}
	if st = srv2.Snapshot(); st.Factorizations != 0 {
		t.Errorf("MVT re-factorized (%d) despite the stored factor", st.Factorizations)
	}
}

// TestServerStoreCorruptFile checks the degraded path: an unreadable store
// file surfaces as a store error, and the server falls back to factorizing
// — the request still succeeds.
func TestServerStoreCorruptFile(t *testing.T) {
	dir := t.TempDir()
	body := `{"grid":{"nx":4,"ny":4},"kernel":{"family":"exponential","range":0.2},"lower":-1}`

	srv1, ts1 := newTestHTTP(t, storeConfig(t, dir))
	if status, _ := post(t, ts1.URL+"/v1/mvnprob", body); status != http.StatusOK {
		t.Fatal("cold query failed")
	}
	waitFor(t, "store write-through", func() bool { return srv1.Snapshot().StoreSaves == 1 })

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("store dir: %v entries, err %v", len(ents), err)
	}
	path := filepath.Join(dir, ents[0].Name())
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newTestHTTP(t, storeConfig(t, dir))
	if status, out := post(t, ts2.URL+"/v1/mvnprob", body); status != http.StatusOK {
		t.Fatalf("query over corrupt store status %d: %v", status, out)
	}
	st := srv2.Snapshot()
	if st.StoreErrors == 0 {
		t.Error("corrupt store file not counted as a store error")
	}
	if st.Factorizations != 1 {
		t.Errorf("fallback factorizations = %d, want 1", st.Factorizations)
	}
}
