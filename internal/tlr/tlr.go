// Package tlr implements Tile Low-Rank (TLR) matrix compression and the TLR
// Cholesky factorization in the style of HiCMA (Akbudak et al.): diagonal
// tiles stay dense while each off-diagonal tile of the lower triangle is
// stored as a rank-k outer product U·Vᵀ, with k chosen per tile by a
// truncated SVD at a user accuracy ε. The TLR factorization is what gives
// the paper its up-to-20X speedup over the dense path.
package tlr

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/tile"
)

// LRTile is a low-rank tile A ≈ U·Vᵀ with U m×k and V n×k. A zero-rank tile
// (k = 0) represents an exactly-zero block.
type LRTile struct {
	U, V *linalg.Matrix
	M, N int // logical tile shape
}

// Rank returns the current rank k.
func (t *LRTile) Rank() int {
	if t.U == nil {
		return 0
	}
	return t.U.Cols
}

// Dense materializes U·Vᵀ as a dense m×n matrix.
func (t *LRTile) Dense() *linalg.Matrix {
	d := linalg.NewMatrix(t.M, t.N)
	if t.Rank() > 0 {
		linalg.Gemm(false, true, 1, t.U, t.V, 0, d)
	}
	return d
}

// Clone returns a deep copy.
func (t *LRTile) Clone() *LRTile {
	c := &LRTile{M: t.M, N: t.N}
	if t.U != nil {
		c.U, c.V = t.U.Clone(), t.V.Clone()
	}
	return c
}

// Compress builds a low-rank tile from a dense block by truncated SVD,
// keeping the smallest rank whose tail satisfies ‖tail‖_F ≤ tol·‖A‖_F,
// capped at maxRank (0 means no cap). The singular values are folded into U.
func Compress(a *linalg.Matrix, tol float64, maxRank int) *LRTile {
	res := linalg.SVD(a)
	k := linalg.TruncationRank(res.S, tol)
	if res.S[0] == 0 {
		k = 0
	}
	if maxRank > 0 && k > maxRank {
		k = maxRank
	}
	t := &LRTile{M: a.Rows, N: a.Cols}
	if k == 0 {
		return t
	}
	t.U = linalg.NewMatrix(a.Rows, k)
	t.V = linalg.NewMatrix(a.Cols, k)
	for j := 0; j < k; j++ {
		copy(t.U.Col(j), res.U.Col(j))
		linalg.Scal(res.S[j], t.U.Col(j))
		copy(t.V.Col(j), res.V.Col(j))
	}
	return t
}

// AddLowRank appends a second low-rank term αU₂V₂ᵀ to the tile
// (A ← U₁V₁ᵀ + α·U₂V₂ᵀ) by concatenating factors and recompressing to tol
// (capped at maxRank, 0 = uncapped) via the standard QR+SVD rounding.
func (t *LRTile) AddLowRank(alpha float64, u2, v2 *linalg.Matrix, tol float64, maxRank int) {
	k1, k2 := t.Rank(), u2.Cols
	if k2 == 0 {
		return
	}
	ku := k1 + k2
	bigU := linalg.NewMatrix(t.M, ku)
	bigV := linalg.NewMatrix(t.N, ku)
	for j := 0; j < k1; j++ {
		copy(bigU.Col(j), t.U.Col(j))
		copy(bigV.Col(j), t.V.Col(j))
	}
	for j := 0; j < k2; j++ {
		copy(bigU.Col(k1+j), u2.Col(j))
		linalg.Scal(alpha, bigU.Col(k1+j))
		copy(bigV.Col(k1+j), v2.Col(j))
	}
	u, v := roundLR(bigU, bigV, tol, maxRank)
	t.U, t.V = u, v
}

// roundLR recompresses the product bigU·bigVᵀ to the requested tolerance:
// QR both factors, SVD the small core Ru·Rvᵀ, truncate.
func roundLR(bigU, bigV *linalg.Matrix, tol float64, maxRank int) (*linalg.Matrix, *linalg.Matrix) {
	qu := linalg.QR(bigU)
	qv := linalg.QR(bigV)
	ru, rv := qu.R(), qv.R()
	core := linalg.NewMatrix(ru.Rows, rv.Rows)
	linalg.Gemm(false, true, 1, ru, rv, 0, core)
	res := linalg.SVD(core)
	k := linalg.TruncationRank(res.S, tol)
	if res.S[0] == 0 {
		return nil, nil
	}
	if maxRank > 0 && k > maxRank {
		k = maxRank
	}
	// u = Qu·(Ub·diag(S))[:,0:k], v = Qv·Vb[:,0:k], applying the Householder
	// reflectors directly instead of forming the thin Q factors.
	ub := linalg.NewMatrix(res.U.Rows, k)
	for j := 0; j < k; j++ {
		copy(ub.Col(j), res.U.Col(j))
		linalg.Scal(res.S[j], ub.Col(j))
	}
	vb := linalg.NewMatrix(res.V.Rows, k)
	for j := 0; j < k; j++ {
		copy(vb.Col(j), res.V.Col(j))
	}
	return qu.ApplyQ(ub), qv.ApplyQ(vb)
}

// ApplyTo accumulates c += alpha·(U·Vᵀ)·b without densifying the tile:
// first w = Vᵀ·b (k×cols), then c += alpha·U·w. This is the cheap GEMM the
// TLR PMVN propagation uses (paper Algorithm 2, lines 11–12).
func (t *LRTile) ApplyTo(alpha float64, b, c *linalg.Matrix) {
	k := t.Rank()
	if k == 0 {
		return
	}
	w := linalg.NewMatrix(k, b.Cols)
	linalg.Gemm(true, false, 1, t.V, b, 0, w)
	linalg.Gemm(false, false, alpha, t.U, w, 1, c)
}

// ApplyToPair accumulates the same low-rank product into two outputs
// (c1 += alpha·UVᵀb and c2 += alpha·UVᵀb) computing the shared w = Vᵀ·b
// only once. The PMVN propagation uses it for the paired A/B limit updates.
func (t *LRTile) ApplyToPair(alpha float64, b, c1, c2 *linalg.Matrix) {
	k := t.Rank()
	if k == 0 {
		return
	}
	w := linalg.NewMatrix(k, b.Cols)
	linalg.Gemm(true, false, 1, t.V, b, 0, w)
	linalg.Gemm(false, false, alpha, t.U, w, 1, c1)
	linalg.Gemm(false, false, alpha, t.U, w, 1, c2)
}

// Matrix is a symmetric positive definite matrix in TLR format: dense
// diagonal tiles D[k] and low-rank strictly-lower tiles Low[i][j] (i > j).
// After Potrf it holds the Cholesky factor in the same structure.
type Matrix struct {
	N, TS   int
	NT      int
	Tol     float64
	MaxRank int
	Diag    []*linalg.Matrix
	Low     [][]*LRTile // Low[i][j] valid for j < i
}

// TileRows returns the number of rows of tile row i.
func (a *Matrix) TileRows(i int) int {
	if i == a.NT-1 {
		if r := a.N - i*a.TS; r > 0 {
			return r
		}
	}
	return min(a.TS, a.N)
}

// CompressSPD converts a symmetric tiled dense matrix into TLR format with
// relative per-tile accuracy tol and rank cap maxRank (0 = uncapped).
func CompressSPD(src *tile.Matrix, tol float64, maxRank int) (*Matrix, error) {
	if src.M != src.N {
		return nil, fmt.Errorf("tlr: CompressSPD needs square input, got %dx%d", src.M, src.N)
	}
	a := &Matrix{N: src.M, TS: src.TS, NT: src.MT, Tol: tol, MaxRank: maxRank}
	a.Diag = make([]*linalg.Matrix, a.NT)
	a.Low = make([][]*LRTile, a.NT)
	for i := 0; i < a.NT; i++ {
		a.Diag[i] = src.Tile(i, i).Clone()
		a.Low[i] = make([]*LRTile, i)
		for j := 0; j < i; j++ {
			a.Low[i][j] = Compress(src.Tile(i, j), tol, maxRank)
		}
	}
	return a, nil
}

// BuildFromKernel assembles a covariance matrix directly in TLR format,
// compressing each off-diagonal tile as it is generated — the HiCMA-style
// pmvn_init() path that never materializes the dense matrix.
func BuildFromKernel(g *geo.Geom, k cov.Kernel, ts int, tol float64, maxRank int) *Matrix {
	n := g.Len()
	a := &Matrix{N: n, TS: ts, NT: (n + ts - 1) / ts, Tol: tol, MaxRank: maxRank}
	a.Diag = make([]*linalg.Matrix, a.NT)
	a.Low = make([][]*LRTile, a.NT)
	buf := linalg.NewMatrix(ts, ts)
	for i := 0; i < a.NT; i++ {
		ri := a.TileRows(i)
		d := linalg.NewMatrix(ri, ri)
		cov.Block(d, g, k, i*ts, i*ts)
		a.Diag[i] = d
		a.Low[i] = make([]*LRTile, i)
		for j := 0; j < i; j++ {
			rj := a.TileRows(j)
			blk := buf.View(0, 0, ri, rj)
			cov.Block(blk, g, k, i*ts, j*ts)
			a.Low[i][j] = Compress(blk, tol, maxRank)
		}
	}
	return a
}

// ToDense reassembles the full symmetric matrix (or, after Potrf, the
// explicit lower-triangular factor).
func (a *Matrix) ToDense() *linalg.Matrix {
	out := linalg.NewMatrix(a.N, a.N)
	for i := 0; i < a.NT; i++ {
		ri := a.TileRows(i)
		out.View(i*a.TS, i*a.TS, ri, ri).CopyFrom(a.Diag[i])
		for j := 0; j < i; j++ {
			d := a.Low[i][j].Dense()
			out.View(i*a.TS, j*a.TS, d.Rows, d.Cols).CopyFrom(d)
		}
	}
	return out
}

// SymmetrizeDense returns ToDense with the lower triangle mirrored up — the
// full symmetric matrix for comparison against dense references.
func (a *Matrix) SymmetrizeDense() *linalg.Matrix {
	d := a.ToDense()
	d.SymmetrizeFromLower()
	return d
}

// Ranks returns the rank of each strictly-lower tile, Ranks[i][j] for j < i
// (the data behind the paper's Figure 5 rank-distribution maps).
func (a *Matrix) Ranks() [][]int {
	r := make([][]int, a.NT)
	for i := range r {
		r[i] = make([]int, i)
		for j := 0; j < i; j++ {
			r[i][j] = a.Low[i][j].Rank()
		}
	}
	return r
}

// RankStats returns the min, max and mean off-diagonal tile rank.
func (a *Matrix) RankStats() (minRank, maxRank int, mean float64) {
	count := 0
	minRank = 1 << 30
	for i := 1; i < a.NT; i++ {
		for j := 0; j < i; j++ {
			k := a.Low[i][j].Rank()
			if k < minRank {
				minRank = k
			}
			if k > maxRank {
				maxRank = k
			}
			mean += float64(k)
			count++
		}
	}
	if count == 0 {
		return 0, 0, 0
	}
	return minRank, maxRank, mean / float64(count)
}

// MemoryFloats returns the number of float64 values stored by the TLR
// representation; together with N² it gives the compression ratio.
func (a *Matrix) MemoryFloats() int {
	total := 0
	for i := 0; i < a.NT; i++ {
		total += a.Diag[i].Rows * a.Diag[i].Cols
		for j := 0; j < i; j++ {
			t := a.Low[i][j]
			total += t.Rank() * (t.M + t.N)
		}
	}
	return total
}
