// Package tlr implements Tile Low-Rank (TLR) matrix compression and the TLR
// Cholesky factorization in the style of HiCMA (Akbudak et al.): diagonal
// tiles stay dense while each off-diagonal tile of the lower triangle is
// stored as a rank-k outer product U·Vᵀ, with k chosen per tile by a
// truncated SVD at a user accuracy ε. The TLR factorization is what gives
// the paper its up-to-20X speedup over the dense path.
package tlr

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// LRTile is a low-rank tile A ≈ U·Vᵀ with U m×k and V n×k. It is an alias
// of the shared tile.LowRank representation, so the same tiles flow through
// the unified factorization engine and the TLR-specific assembly here.
type LRTile = tile.LowRank

// Compress builds a low-rank tile from a dense block by truncated SVD,
// keeping the smallest rank whose tail satisfies ‖tail‖_F ≤ tol·‖A‖_F,
// capped at maxRank (0 means no cap). It forwards to the shared
// representation in package tile.
func Compress(a *linalg.Matrix, tol float64, maxRank int) *LRTile {
	return tile.Compress(a, tol, maxRank)
}

// Matrix is a symmetric positive definite matrix in TLR format: dense
// diagonal tiles D[k] and low-rank strictly-lower tiles Low[i][j] (i > j).
// After Potrf it holds the Cholesky factor in the same structure.
type Matrix struct {
	N, TS   int
	NT      int
	Tol     float64
	MaxRank int
	Diag    []*linalg.Matrix
	Low     [][]*LRTile // Low[i][j] valid for j < i
}

// TileRows returns the number of rows of tile row i.
//repro:noalloc
func (a *Matrix) TileRows(i int) int {
	if i == a.NT-1 {
		if r := a.N - i*a.TS; r > 0 {
			return r
		}
	}
	return min(a.TS, a.N)
}

// CompressSPD converts a symmetric tiled dense matrix into TLR format with
// relative per-tile accuracy tol and rank cap maxRank (0 = uncapped).
func CompressSPD(src *tile.Matrix, tol float64, maxRank int) (*Matrix, error) {
	return CompressSPDPar(nil, src, tol, maxRank)
}

// CompressSPDPar is CompressSPD with every tile compression submitted as an
// independent task on sub (the caller's group scope); nil compresses
// serially.
func CompressSPDPar(sub taskrt.Submitter, src *tile.Matrix, tol float64, maxRank int) (*Matrix, error) {
	if src.M != src.N {
		return nil, fmt.Errorf("tlr: CompressSPD needs square input, got %dx%d", src.M, src.N)
	}
	a := &Matrix{N: src.M, TS: src.TS, NT: src.MT, Tol: tol, MaxRank: maxRank}
	a.Diag = make([]*linalg.Matrix, a.NT)
	a.Low = make([][]*LRTile, a.NT)
	run, wait := taskrt.Scatter(sub, "compress")
	for i := 0; i < a.NT; i++ {
		i := i
		a.Diag[i] = src.Tile(i, i).Clone()
		a.Low[i] = make([]*LRTile, i)
		for j := 0; j < i; j++ {
			j := j
			run(func() {
				a.Low[i][j] = Compress(src.Tile(i, j), tol, maxRank)
			})
		}
	}
	wait()
	return a, nil
}

// BuildFromKernel assembles a covariance matrix directly in TLR format,
// compressing each off-diagonal tile as it is generated — the HiCMA-style
// pmvn_init() path that never materializes the dense matrix.
func BuildFromKernel(g *geo.Geom, k cov.Kernel, ts int, tol float64, maxRank int) *Matrix {
	n := g.Len()
	a := &Matrix{N: n, TS: ts, NT: (n + ts - 1) / ts, Tol: tol, MaxRank: maxRank}
	a.Diag = make([]*linalg.Matrix, a.NT)
	a.Low = make([][]*LRTile, a.NT)
	buf := linalg.NewMatrix(ts, ts)
	for i := 0; i < a.NT; i++ {
		ri := a.TileRows(i)
		d := linalg.NewMatrix(ri, ri)
		cov.Block(d, g, k, i*ts, i*ts)
		a.Diag[i] = d
		a.Low[i] = make([]*LRTile, i)
		for j := 0; j < i; j++ {
			rj := a.TileRows(j)
			blk := buf.View(0, 0, ri, rj)
			cov.Block(blk, g, k, i*ts, j*ts)
			a.Low[i][j] = Compress(blk, tol, maxRank)
		}
	}
	return a
}

// ToDense reassembles the full symmetric matrix (or, after Potrf, the
// explicit lower-triangular factor).
func (a *Matrix) ToDense() *linalg.Matrix {
	out := linalg.NewMatrix(a.N, a.N)
	for i := 0; i < a.NT; i++ {
		ri := a.TileRows(i)
		out.View(i*a.TS, i*a.TS, ri, ri).CopyFrom(a.Diag[i])
		for j := 0; j < i; j++ {
			d := a.Low[i][j].Dense()
			out.View(i*a.TS, j*a.TS, d.Rows, d.Cols).CopyFrom(d)
		}
	}
	return out
}

// SymmetrizeDense returns ToDense with the lower triangle mirrored up — the
// full symmetric matrix for comparison against dense references.
func (a *Matrix) SymmetrizeDense() *linalg.Matrix {
	d := a.ToDense()
	d.SymmetrizeFromLower()
	return d
}

// Ranks returns the rank of each strictly-lower tile, Ranks[i][j] for j < i
// (the data behind the paper's Figure 5 rank-distribution maps).
func (a *Matrix) Ranks() [][]int {
	r := make([][]int, a.NT)
	for i := range r {
		r[i] = make([]int, i)
		for j := 0; j < i; j++ {
			r[i][j] = a.Low[i][j].Rank()
		}
	}
	return r
}

// RankStats returns the min, max and mean off-diagonal tile rank.
func (a *Matrix) RankStats() (minRank, maxRank int, mean float64) {
	count := 0
	minRank = 1 << 30
	for i := 1; i < a.NT; i++ {
		for j := 0; j < i; j++ {
			k := a.Low[i][j].Rank()
			if k < minRank {
				minRank = k
			}
			if k > maxRank {
				maxRank = k
			}
			mean += float64(k)
			count++
		}
	}
	if count == 0 {
		return 0, 0, 0
	}
	return minRank, maxRank, mean / float64(count)
}

// MemoryFloats returns the number of float64 values stored by the TLR
// representation; together with N² it gives the compression ratio.
func (a *Matrix) MemoryFloats() int {
	total := 0
	for i := 0; i < a.NT; i++ {
		total += a.Diag[i].Rows * a.Diag[i].Cols
		for j := 0; j < i; j++ {
			t := a.Low[i][j]
			total += t.Rank() * (t.M + t.N)
		}
	}
	return total
}
