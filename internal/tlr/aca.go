package tlr

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/tile"
)

// CompressACA builds a low-rank tile with partially-pivoted Adaptive Cross
// Approximation followed by QR+SVD recompression. ACA touches only O(k(m+n))
// matrix entries per rank instead of the full tile an SVD needs, which is
// how HiCMA-style libraries assemble large covariance matrices without ever
// forming the dense tiles. entry(i,j) evaluates the underlying matrix
// element; the tile has m×n logical entries.
//
// The iteration stops when the new cross's norm estimate falls below
// tol·‖A_k‖_F (estimated incrementally) or the rank reaches maxRank
// (0 = min(m,n)).
func CompressACA(m, n int, entry func(i, j int) float64, tol float64, maxRank int) *LRTile {
	limit := min(m, n)
	if maxRank > 0 && maxRank < limit {
		limit = maxRank
	}
	t := &LRTile{M: m, N: n}
	if limit == 0 {
		return t
	}
	us := make([][]float64, 0, limit)
	vs := make([][]float64, 0, limit)
	rowUsed := make([]bool, m)
	colUsed := make([]bool, n)

	// Frobenius-norm estimate of the accumulated approximation.
	var normSq float64
	nextRow := 0
	for k := 0; k < limit; k++ {
		// Residual row `nextRow`: A(i,:) − Σ u_t[i]·v_t.
		i := nextRow
		if i < 0 || rowUsed[i] {
			i = -1
			for r := 0; r < m; r++ {
				if !rowUsed[r] {
					i = r
					break
				}
			}
			if i < 0 {
				break
			}
		}
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = entry(i, j)
		}
		for t := range us {
			linalg.Axpy(-us[t][i], vs[t], row)
		}
		// Pivot column: largest residual entry in the row.
		jPiv, pivVal := -1, 0.0
		for j := 0; j < n; j++ {
			if colUsed[j] {
				continue
			}
			if a := math.Abs(row[j]); a > pivVal {
				pivVal, jPiv = a, j
			}
		}
		if jPiv < 0 || pivVal == 0 {
			rowUsed[i] = true
			nextRow = -1
			if allUsed(rowUsed) {
				break
			}
			continue
		}
		// Residual column jPiv.
		col := make([]float64, m)
		for r := 0; r < m; r++ {
			col[r] = entry(r, jPiv)
		}
		for t := range us {
			linalg.Axpy(-vs[t][jPiv], us[t], col)
		}
		pivot := row[jPiv]
		u := make([]float64, m)
		for r := 0; r < m; r++ {
			u[r] = col[r] / pivot
		}
		v := make([]float64, n)
		copy(v, row)
		rowUsed[i] = true
		colUsed[jPiv] = true
		us = append(us, u)
		vs = append(vs, v)

		// Update the norm estimate: ‖A_k‖² = ‖A_{k-1}‖² + 2Σ⟨u_k,u_t⟩⟨v_k,v_t⟩ + ‖u_k‖²‖v_k‖².
		uNorm := linalg.Dot(u, u)
		vNorm := linalg.Dot(v, v)
		cross := 0.0
		for t := 0; t < len(us)-1; t++ {
			cross += linalg.Dot(u, us[t]) * linalg.Dot(v, vs[t])
		}
		normSq += 2*cross + uNorm*vNorm
		// Next pivot row: largest residual entry in the chosen column.
		nextRow = -1
		best := 0.0
		for r := 0; r < m; r++ {
			if rowUsed[r] {
				continue
			}
			if a := math.Abs(col[r]); a > best {
				best, nextRow = a, r
			}
		}
		// Convergence: the latest cross is small relative to the estimate.
		if math.Sqrt(uNorm*vNorm) <= tol*math.Sqrt(math.Max(normSq, 0)) {
			break
		}
	}
	k := len(us)
	if k == 0 {
		return t
	}
	bigU := linalg.NewMatrix(m, k)
	bigV := linalg.NewMatrix(n, k)
	for j := 0; j < k; j++ {
		copy(bigU.Col(j), us[j])
		copy(bigV.Col(j), vs[j])
	}
	// Recompress: ACA overshoots the rank slightly; rounding restores the
	// SVD-grade truncation the rest of the TLR stack expects.
	u, v := tile.RoundLR(bigU, bigV, tol, maxRank)
	t.U, t.V = u, v
	return t
}

func allUsed(used []bool) bool {
	for _, u := range used {
		if !u {
			return false
		}
	}
	return true
}

// BuildFromKernelACA assembles a covariance matrix in TLR format using ACA
// for the off-diagonal tiles: only O(rank·ts) covariance evaluations per
// tile instead of ts². The diagonal tiles are still formed densely.
func BuildFromKernelACA(g geomLike, k kernelLike, ts int, tol float64, maxRank int) *Matrix {
	n := g.Len()
	a := &Matrix{N: n, TS: ts, NT: (n + ts - 1) / ts, Tol: tol, MaxRank: maxRank}
	a.Diag = make([]*linalg.Matrix, a.NT)
	a.Low = make([][]*LRTile, a.NT)
	for i := 0; i < a.NT; i++ {
		ri := a.TileRows(i)
		d := linalg.NewMatrix(ri, ri)
		for c := 0; c < ri; c++ {
			for r := 0; r < ri; r++ {
				d.Set(r, c, covAt(g, k, i*ts+r, i*ts+c))
			}
		}
		a.Diag[i] = d
		a.Low[i] = make([]*LRTile, i)
		for j := 0; j < i; j++ {
			rj := a.TileRows(j)
			row0, col0 := i*ts, j*ts
			a.Low[i][j] = CompressACA(ri, rj, func(r, c int) float64 {
				return covAt(g, k, row0+r, col0+c)
			}, tol, maxRank)
		}
	}
	return a
}

// geomLike and kernelLike are the minimal interfaces ACA assembly needs;
// geo.Geom and cov.Kernel satisfy them (kept structural to avoid an import
// cycle in tests).
type geomLike interface {
	Len() int
	Dist(i, j int) float64
}

type kernelLike interface {
	Cov(h float64) float64
}

func covAt(g geomLike, k kernelLike, i, j int) float64 {
	if i == j {
		return k.Cov(0)
	}
	return k.Cov(g.Dist(i, j))
}
