package tlr

import (
	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// CompressACA builds a low-rank tile with partially-pivoted Adaptive Cross
// Approximation followed by QR+SVD recompression; it forwards to the shared
// implementation in package tile (which the adaptive policy also probes
// with). See tile.CompressACA for the contract.
func CompressACA(m, n int, entry func(i, j int) float64, tol float64, maxRank int) *LRTile {
	return tile.CompressACA(m, n, entry, tol, maxRank)
}

// BuildFromKernelACA assembles a covariance matrix in TLR format using ACA
// for the off-diagonal tiles: only O(rank·ts) covariance evaluations per
// tile instead of ts². The diagonal tiles are still formed densely. When sub
// is non-nil every tile is assembled as an independent task on it (the
// caller waits via a group scope); nil assembles serially.
func BuildFromKernelACA(sub taskrt.Submitter, g geomLike, k kernelLike, ts int, tol float64, maxRank int) *Matrix {
	n := g.Len()
	a := &Matrix{N: n, TS: ts, NT: (n + ts - 1) / ts, Tol: tol, MaxRank: maxRank}
	a.Diag = make([]*linalg.Matrix, a.NT)
	a.Low = make([][]*LRTile, a.NT)
	run, wait := taskrt.Scatter(sub, "assemble")
	for i := 0; i < a.NT; i++ {
		i := i
		ri := a.TileRows(i)
		a.Low[i] = make([]*LRTile, i)
		run(func() {
			d := linalg.NewMatrix(ri, ri)
			fillKernelDiag(d, g, k, ts, i)
			a.Diag[i] = d
		})
		for j := 0; j < i; j++ {
			j := j
			run(func() {
				a.Low[i][j] = acaOffTile(g, k, ts, tol, maxRank, i, j, ri, a.TileRows(j))
			})
		}
	}
	wait()
	return a
}

// fillKernelDiag evaluates diagonal tile i of the kernel into d (ri×ri).
func fillKernelDiag(d *linalg.Matrix, g geomLike, k kernelLike, ts, i int) {
	for c := 0; c < d.Cols; c++ {
		col := d.Col(c)
		for r := range col {
			col[r] = covAt(g, k, i*ts+r, i*ts+c)
		}
	}
}

// acaOffTile builds off-diagonal tile (i,j) by ACA, densifying for the
// optimal truncation when the cross iteration runs out of rank budget
// (typical for near-diagonal tiles of smooth kernels, where a capped ACA
// has uncontrolled error).
func acaOffTile(g geomLike, k kernelLike, ts int, tol float64, maxRank, i, j, ri, rj int) *LRTile {
	row0, col0 := i*ts, j*ts
	entry := func(r, c int) float64 {
		return covAt(g, k, row0+r, col0+c)
	}
	lt, ok := tile.CompressACAConv(ri, rj, entry, tol, maxRank)
	if !ok {
		d := linalg.GetMat(ri, rj)
		for c := 0; c < rj; c++ {
			col := d.Col(c)
			for r := 0; r < ri; r++ {
				col[r] = entry(r, c)
			}
		}
		lt = tile.Compress(d, tol, maxRank)
		linalg.PutMat(d)
	}
	return lt
}

// KernelAssembler returns a streaming assembler producing the TLR layout —
// dense float64 diagonal, ACA low-rank off-diagonal, exactly the tiles
// BuildFromKernelACA materializes — directly inside the factorization graph,
// for engine.PotrfStream on grid. Diagonal tiles draw from the workspace
// pool (the grid becomes engine-owned); the covariance matrix as a whole is
// never materialized.
func KernelAssembler(grid *engine.Grid, g geomLike, k kernelLike, tol float64, maxRank int) *engine.Assembler {
	ts := grid.TS
	return &engine.Assembler{
		Tile: func(i, j int) tile.Tile {
			ri := grid.TileRows(i)
			if i == j {
				d := linalg.GetMat(ri, ri)
				fillKernelDiag(d, g, k, ts, i)
				return &tile.DenseF64{D: d}
			}
			return acaOffTile(g, k, ts, tol, maxRank, i, j, ri, grid.TileRows(j))
		},
	}
}

// geomLike and kernelLike are the minimal interfaces ACA assembly needs;
// geo.Geom and cov.Kernel satisfy them (kept structural to avoid an import
// cycle in tests).
type geomLike interface {
	Len() int
	Dist(i, j int) float64
}

type kernelLike interface {
	Cov(h float64) float64
}

func covAt(g geomLike, k kernelLike, i, j int) float64 {
	if i == j {
		return k.Cov(0)
	}
	return k.Cov(g.Dist(i, j))
}
