package tlr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/taskrt"
)

func entryOf(a *linalg.Matrix) func(i, j int) float64 {
	return func(i, j int) float64 { return a.At(i, j) }
}

func TestACAExactForLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := randMat(18, 3, rng)
	v := randMat(14, 3, rng)
	a := linalg.NewMatrix(18, 14)
	linalg.Gemm(false, true, 1, u, v, 0, a)
	lt := CompressACA(18, 14, entryOf(a), 1e-10, 0)
	if lt.Rank() > 4 {
		t.Errorf("rank-3 matrix compressed to ACA rank %d", lt.Rank())
	}
	if d := lt.Dense().MaxAbsDiff(a); d > 1e-8*a.FrobNorm() {
		t.Errorf("ACA reconstruction diff %v", d)
	}
}

func TestACAOnCovarianceTile(t *testing.T) {
	g := geo.RegularGrid(12, 12)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.1})
	blk := sigma.View(72, 0, 72, 72).Clone()
	for _, tol := range []float64{1e-2, 1e-4, 1e-7} {
		lt := CompressACA(72, 72, entryOf(blk), tol, 0)
		err := lt.Dense().MaxAbsDiff(blk)
		// ACA's stopping rule is heuristic; allow a modest constant over the
		// requested tolerance.
		if err > 20*tol*blk.FrobNorm() {
			t.Errorf("tol=%g: ACA error %v (rank %d)", tol, err, lt.Rank())
		}
	}
}

func TestACARankComparableToSVD(t *testing.T) {
	g := geo.RegularGrid(12, 12)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.234})
	blk := sigma.View(72, 0, 72, 72).Clone()
	svdRank := Compress(blk, 1e-4, 0).Rank()
	acaRank := CompressACA(72, 72, entryOf(blk), 1e-4, 0).Rank()
	// The post-ACA recompression should bring the rank close to optimal.
	if acaRank > 2*svdRank+4 {
		t.Errorf("ACA rank %d far above SVD rank %d", acaRank, svdRank)
	}
}

func TestACAZeroMatrix(t *testing.T) {
	lt := CompressACA(6, 8, func(i, j int) float64 { return 0 }, 1e-6, 0)
	if lt.Rank() != 0 {
		t.Errorf("zero matrix ACA rank %d", lt.Rank())
	}
}

func TestACAMaxRankCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(16, 16, rng)
	lt := CompressACA(16, 16, entryOf(a), 1e-15, 5)
	if lt.Rank() > 5 {
		t.Errorf("rank %d exceeds cap 5", lt.Rank())
	}
}

func TestACADegenerateShapes(t *testing.T) {
	// Single row / column tiles.
	row := CompressACA(1, 6, func(i, j int) float64 { return float64(j + 1) }, 1e-12, 0)
	if row.Rank() != 1 {
		t.Errorf("1×6 rank %d", row.Rank())
	}
	want := linalg.NewMatrix(1, 6)
	for j := 0; j < 6; j++ {
		want.Set(0, j, float64(j+1))
	}
	if d := row.Dense().MaxAbsDiff(want); d > 1e-10 {
		t.Errorf("1×6 reconstruction diff %v", d)
	}
	col := CompressACA(5, 1, func(i, j int) float64 { return float64(i) - 2 }, 1e-12, 0)
	if col.Rank() != 1 {
		t.Errorf("5×1 rank %d", col.Rank())
	}
}

func TestBuildFromKernelACAMatchesSVDBuild(t *testing.T) {
	g := geo.RegularGrid(10, 10)
	k := &cov.Exponential{Sigma2: 1, Range: 0.15}
	ts := 25
	svd := BuildFromKernel(g, k, ts, 1e-6, 0)
	aca := BuildFromKernelACA(nil, g, k, ts, 1e-6, 0)
	d := aca.SymmetrizeDense().MaxAbsDiff(svd.SymmetrizeDense())
	if d > 1e-4 {
		t.Errorf("ACA vs SVD assembly differ by %v", d)
	}
}

func TestACAPotrfEndToEnd(t *testing.T) {
	// An ACA-assembled matrix must factorize and reconstruct like the
	// SVD-assembled one.
	g := geo.RegularGrid(10, 10)
	k := &cov.Exponential{Sigma2: 1, Range: 0.2}
	sigma := cov.Matrix(g, k)
	a := BuildFromKernelACA(nil, g, k, 25, 1e-8, 0)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	if err := Potrf(rt, a); err != nil {
		t.Fatal(err)
	}
	l := a.ToDense()
	rec := linalg.NewMatrix(100, 100)
	linalg.Gemm(false, true, 1, l, l, 0, rec)
	res := 0.0
	for j := 0; j < 100; j++ {
		for i := j; i < 100; i++ {
			res = math.Max(res, math.Abs(rec.At(i, j)-sigma.At(i, j)))
		}
	}
	if res > 1e-5 {
		t.Errorf("ACA TLR Cholesky residual %v", res)
	}
}
