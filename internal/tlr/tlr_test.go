package tlr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

func randMat(r, c int, rng *rand.Rand) *linalg.Matrix {
	m := linalg.NewMatrix(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return m
}

// covGrid builds an exponential-kernel covariance on a k×k grid — the tile
// structure the paper compresses.
func covGrid(k int, rang float64) (*geo.Geom, *linalg.Matrix) {
	g := geo.RegularGrid(k, k)
	return g, cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: rang})
}

func TestCompressExactForLowRankInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := randMat(20, 3, rng)
	v := randMat(15, 3, rng)
	a := linalg.NewMatrix(20, 15)
	linalg.Gemm(false, true, 1, u, v, 0, a)
	lt := Compress(a, 1e-12, 0)
	if lt.Rank() > 3 {
		t.Errorf("rank-3 matrix compressed to rank %d", lt.Rank())
	}
	if d := lt.Dense().MaxAbsDiff(a); d > 1e-10 {
		t.Errorf("reconstruction diff %v", d)
	}
}

func TestCompressRespectsTolerance(t *testing.T) {
	_, sigma := covGrid(12, 0.1)
	blk := sigma.View(72, 0, 72, 72).Clone()
	for _, tol := range []float64{1e-1, 1e-3, 1e-6, 1e-9} {
		lt := Compress(blk, tol, 0)
		err := lt.Dense().MaxAbsDiff(blk)
		// Frobenius-relative truncation bounds the max error loosely.
		bound := tol * blk.FrobNorm()
		if err > bound+1e-12 {
			t.Errorf("tol=%g: error %v exceeds bound %v (rank %d)", tol, err, bound, lt.Rank())
		}
	}
	// Ranks must grow as the tolerance tightens.
	r1 := Compress(blk, 1e-1, 0).Rank()
	r2 := Compress(blk, 1e-6, 0).Rank()
	if r1 >= r2 {
		t.Errorf("rank did not grow with accuracy: %d vs %d", r1, r2)
	}
}

func TestCompressMaxRankCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(16, 16, rng) // full rank
	lt := Compress(a, 1e-12, 5)
	if lt.Rank() != 5 {
		t.Errorf("rank %d, want capped at 5", lt.Rank())
	}
}

func TestCompressZeroTile(t *testing.T) {
	lt := Compress(linalg.NewMatrix(8, 6), 1e-3, 0)
	if lt.Rank() != 0 {
		t.Errorf("zero tile rank %d", lt.Rank())
	}
	if d := lt.Dense().FrobNorm(); d != 0 {
		t.Errorf("zero tile dense norm %v", d)
	}
}

func TestAddLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(12, 10, rng)
	lt := Compress(a, 1e-12, 0)
	u2, v2 := randMat(12, 2, rng), randMat(10, 2, rng)
	want := a.Clone()
	linalg.Gemm(false, true, -2.5, u2, v2, 1, want)
	lt.AddLowRank(-2.5, u2, v2, 1e-12, 0)
	if d := lt.Dense().MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("AddLowRank diff %v", d)
	}
}

func TestAddLowRankCancellation(t *testing.T) {
	// Adding the exact negative must collapse the rank to ~0.
	rng := rand.New(rand.NewSource(4))
	u, v := randMat(10, 4, rng), randMat(8, 4, rng)
	a := linalg.NewMatrix(10, 8)
	linalg.Gemm(false, true, 1, u, v, 0, a)
	lt := Compress(a, 1e-12, 0)
	lt.AddLowRank(-1, u, v, 1e-10, 0)
	if d := lt.Dense().FrobNorm(); d > 1e-8 {
		t.Errorf("cancellation left norm %v (rank %d)", d, lt.Rank())
	}
}

func TestApplyRightTransMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(9, 7, rng) // tile A ≈ U·Vᵀ, 9×7
	lt := Compress(a, 1e-13, 0)
	b := randMat(5, 7, rng) // lanes × tile cols
	c := randMat(5, 9, rng)
	want := c.Clone()
	linalg.Gemm(false, true, -1, b, a, 1, want) // c += -1·b·Aᵀ
	lt.ApplyRightTrans(-1, b, 1, c)
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("ApplyRightTrans diff %v", d)
	}
	// beta = 0 overwrites, matching the dense form.
	linalg.Gemm(false, true, 2, b, a, 0, want)
	lt.ApplyRightTrans(2, b, 0, c)
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("ApplyRightTrans beta=0 diff %v", d)
	}
}

func TestApplyRightTransZeroRank(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	z := &LRTile{M: 9, N: 7}
	b := randMat(5, 7, rng)
	c := randMat(5, 9, rng)
	// beta = 1: no-op.
	before := c.Clone()
	z.ApplyRightTrans(1, b, 1, c)
	if d := c.MaxAbsDiff(before); d != 0 {
		t.Error("zero-rank beta=1 modified output")
	}
	// beta = 0.5: pure scaling; beta = 0: fully zeroes c.
	z.ApplyRightTrans(3, b, 0.5, c)
	for j := 0; j < c.Cols; j++ {
		for i := 0; i < c.Rows; i++ {
			if c.At(i, j) != 0.5*before.At(i, j) {
				t.Fatalf("zero-rank beta=0.5 wrong at (%d,%d)", i, j)
			}
		}
	}
	z.ApplyRightTrans(3, b, 0, c)
	if n := c.FrobNorm(); n != 0 {
		t.Errorf("zero-rank beta=0 left norm %v", n)
	}
}

func TestCompressSPDRoundTrip(t *testing.T) {
	_, sigma := covGrid(10, 0.1) // n=100
	ts := 25
	tm := tile.FromDense(sigma, ts)
	a, err := CompressSPD(tm, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	back := a.SymmetrizeDense()
	if d := back.MaxAbsDiff(sigma); d > 1e-7 {
		t.Errorf("TLR roundtrip diff %v", d)
	}
}

func TestBuildFromKernelMatchesCompressSPD(t *testing.T) {
	g, sigma := covGrid(9, 0.15)
	k := &cov.Exponential{Sigma2: 1, Range: 0.15}
	ts := 27
	a := BuildFromKernel(g, k, ts, 1e-8, 0)
	b, _ := CompressSPD(tile.FromDense(sigma, ts), 1e-8, 0)
	if d := a.SymmetrizeDense().MaxAbsDiff(b.SymmetrizeDense()); d > 1e-7 {
		t.Errorf("assembly paths differ by %v", d)
	}
}

func TestRanksDecayWithDistance(t *testing.T) {
	// In a spatially ordered covariance matrix, tiles far from the diagonal
	// should have rank no larger than near-diagonal tiles (the paper's
	// Figure 5 structure).
	g := geo.RegularGrid(16, 16)
	k := &cov.Exponential{Sigma2: 1, Range: 0.234}
	a := BuildFromKernel(g, k, 32, 1e-3, 0)
	if a.NT != 8 {
		t.Fatalf("NT = %d", a.NT)
	}
	near := a.Low[1][0].Rank()
	far := a.Low[a.NT-1][0].Rank()
	if far > near {
		t.Errorf("far tile rank %d exceeds near tile rank %d", far, near)
	}
	mn, mx, mean := a.RankStats()
	if mn < 0 || mx > 32 || mean <= 0 {
		t.Errorf("rank stats (%d,%d,%v) implausible", mn, mx, mean)
	}
	// Strong compression: mean rank well below the tile size.
	if mean > 16 {
		t.Errorf("mean rank %v too high for 1e-3 accuracy", mean)
	}
}

func TestMemoryFloatsCompresses(t *testing.T) {
	g := geo.RegularGrid(16, 16)
	a := BuildFromKernel(g, &cov.Exponential{Sigma2: 1, Range: 0.1}, 32, 1e-3, 0)
	denseFloats := 256 * 256
	if m := a.MemoryFloats(); m >= denseFloats {
		t.Errorf("TLR stores %d floats, dense lower needs %d", m, denseFloats)
	}
}

func TestPotrfMatchesDenseHighAccuracy(t *testing.T) {
	_, sigma := covGrid(12, 0.1) // n=144
	want, err := linalg.Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := CompressSPD(tile.FromDense(sigma, 36), 1e-12, 0)
	rt := taskrt.New(3)
	defer rt.Shutdown()
	if err := Potrf(rt, a); err != nil {
		t.Fatal(err)
	}
	got := a.ToDense()
	if d := got.MaxAbsDiff(want); d > 1e-6 {
		t.Errorf("TLR factor vs dense factor diff %v", d)
	}
}

func TestPotrfResidualScalesWithTolerance(t *testing.T) {
	_, sigma := covGrid(12, 0.234)
	norm := sigma.FrobNorm()
	var prev float64 = math.Inf(1)
	for _, tol := range []float64{1e-2, 1e-5, 1e-9} {
		a, _ := CompressSPD(tile.FromDense(sigma, 36), tol, 0)
		rt := taskrt.New(2)
		if err := Potrf(rt, a); err != nil {
			rt.Shutdown()
			t.Fatalf("tol=%g: %v", tol, err)
		}
		rt.Shutdown()
		l := a.ToDense()
		rec := linalg.NewMatrix(sigma.Rows, sigma.Rows)
		linalg.Gemm(false, true, 1, l, l, 0, rec)
		// Compare lower triangles.
		res := 0.0
		for j := 0; j < sigma.Cols; j++ {
			for i := j; i < sigma.Rows; i++ {
				res = math.Max(res, math.Abs(rec.At(i, j)-sigma.At(i, j)))
			}
		}
		relRes := res / norm
		if relRes > 50*tol {
			t.Errorf("tol=%g: relative residual %v too large", tol, relRes)
		}
		if relRes > prev*1.5 {
			t.Errorf("residual did not improve with tighter tol: %v after %v", relRes, prev)
		}
		prev = relRes
	}
}

func TestPotrfDeterministicAcrossWorkers(t *testing.T) {
	_, sigma := covGrid(10, 0.1)
	var ref *linalg.Matrix
	for _, w := range []int{1, 4} {
		a, _ := CompressSPD(tile.FromDense(sigma, 25), 1e-8, 0)
		rt := taskrt.New(w)
		if err := Potrf(rt, a); err != nil {
			rt.Shutdown()
			t.Fatal(err)
		}
		rt.Shutdown()
		d := a.ToDense()
		if ref == nil {
			ref = d
		} else if diff := d.MaxAbsDiff(ref); diff != 0 {
			t.Errorf("worker count changed TLR factor by %v", diff)
		}
	}
}

func TestPotrfIndefiniteFails(t *testing.T) {
	bad := linalg.Eye(40)
	bad.Set(30, 30, -5)
	a, _ := CompressSPD(tile.FromDense(bad, 10), 1e-9, 0)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	if err := Potrf(rt, a); err == nil {
		t.Error("want error for indefinite matrix")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(6, 6, rng)
	lt := Compress(a, 1e-12, 0)
	cl := lt.Clone()
	if lt.Rank() > 0 {
		lt.U.Set(0, 0, 999)
		if cl.U.At(0, 0) == 999 {
			t.Error("clone shares storage")
		}
	}
}
