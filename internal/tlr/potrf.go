package tlr

import (
	"fmt"
	"sync"

	"repro/internal/linalg"
	"repro/internal/taskrt"
)

// Potrf computes the TLR Cholesky factorization in place: on return Diag[k]
// holds the dense lower-triangular diagonal blocks of L and Low[i][j] the
// low-rank off-diagonal blocks, with A ≈ L·Lᵀ to the matrix's compression
// accuracy. The task graph mirrors the dense tile Cholesky, with the HiCMA
// kernels:
//
//	POTRF  dense factorization of Diag[k]
//	TRSM   V(i,k) ← L(k,k)⁻¹·V(i,k)                  (rank unchanged)
//	SYRK   Diag[i] ← Diag[i] − U(V ᵀV)Uᵀ              (dense update)
//	GEMM   Low[i][j] ← Low[i][j] − U_i(V_iᵀV_j)U_jᵀ   (concat + recompress)
//
// It is executed task-parallel on the given runtime.
func Potrf(rt taskrt.Submitter, a *Matrix) error {
	nt := a.NT
	diagH := make([]*taskrt.Handle, nt)
	lowH := make([][]*taskrt.Handle, nt)
	for i := 0; i < nt; i++ {
		diagH[i] = rt.NewHandle("D(%d)", i)
		lowH[i] = make([]*taskrt.Handle, i)
		for j := 0; j < i; j++ {
			lowH[i][j] = rt.NewHandle("L(%d,%d)", i, j)
		}
	}
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	for k := 0; k < nt; k++ {
		k := k
		dk := a.Diag[k]
		rt.Submit("potrf", 3*nt-3*k, func() {
			if err := linalg.PotrfUnblocked(dk); err != nil {
				setErr(fmt.Errorf("tlr: diagonal tile %d: %w", k, err))
			}
		}, taskrt.ReadWrite(diagH[k]))

		for i := k + 1; i < nt; i++ {
			i := i
			tik := a.Low[i][k]
			rt.Submit("trsm", 3*nt-3*k-1, func() {
				if tik.Rank() > 0 {
					linalg.TrsmLower(linalg.Left, false, 1, dk, tik.V)
				}
			}, taskrt.Read(diagH[k]), taskrt.ReadWrite(lowH[i][k]))
		}
		for i := k + 1; i < nt; i++ {
			i := i
			tik := a.Low[i][k]
			di := a.Diag[i]
			rt.Submit("syrk", 3*nt-3*k-2, func() {
				syrkLR(tik, di)
			}, taskrt.Read(lowH[i][k]), taskrt.ReadWrite(diagH[i]))
			for j := k + 1; j < i; j++ {
				j := j
				tjk := a.Low[j][k]
				tij := a.Low[i][j]
				rt.Submit("gemm", 3*nt-3*k-2, func() {
					gemmLR(tik, tjk, tij, a.Tol, a.MaxRank)
				}, taskrt.Read(lowH[i][k]), taskrt.Read(lowH[j][k]), taskrt.ReadWrite(lowH[i][j]))
			}
		}
	}
	rt.Wait()
	if firstErr != nil {
		return firstErr
	}
	for k := 0; k < nt; k++ {
		a.Diag[k].LowerFromFull()
	}
	return nil
}

// syrkLR computes D ← D − U·(VᵀV)·Uᵀ for the low-rank tile t = U·Vᵀ.
func syrkLR(t *LRTile, d *linalg.Matrix) {
	k := t.Rank()
	if k == 0 {
		return
	}
	s := linalg.NewMatrix(k, k)
	linalg.Gemm(true, false, 1, t.V, t.V, 0, s)
	us := linalg.NewMatrix(t.M, k)
	linalg.Gemm(false, false, 1, t.U, s, 0, us)
	linalg.Gemm(false, true, -1, us, t.U, 1, d)
}

// gemmLR applies the Schur-complement update
// C ← C − A·Bᵀ = C − U_a·(V_aᵀ·V_b)·U_bᵀ, keeping C in low-rank form via
// concatenation and recompression.
func gemmLR(ta, tb *LRTile, c *LRTile, tol float64, maxRank int) {
	ka, kb := ta.Rank(), tb.Rank()
	if ka == 0 || kb == 0 {
		return
	}
	s := linalg.NewMatrix(ka, kb)
	linalg.Gemm(true, false, 1, ta.V, tb.V, 0, s)
	u2 := linalg.NewMatrix(ta.M, kb)
	linalg.Gemm(false, false, 1, ta.U, s, 0, u2)
	c.AddLowRank(-1, u2, tb.U, tol, maxRank)
}
