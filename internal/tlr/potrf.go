package tlr

import (
	"repro/internal/engine"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Potrf computes the TLR Cholesky factorization in place: on return Diag[k]
// holds the dense lower-triangular diagonal blocks of L and Low[i][j] the
// low-rank off-diagonal blocks, with A ≈ L·Lᵀ to the matrix's compression
// accuracy.
//
// It is a TLR layout over the unified factorization engine: dense diagonal
// tiles plus low-rank off-diagonal tiles enter one grid, and the engine's
// polymorphic kernels perform the HiCMA operations —
//
//	POTRF  dense factorization of Diag[k]
//	TRSM   V(i,k) ← L(k,k)⁻¹·V(i,k)                  (rank unchanged)
//	SYRK   Diag[i] ← Diag[i] − U(V ᵀV)Uᵀ              (dense update)
//	GEMM   Low[i][j] ← Low[i][j] − U_i(V_iᵀV_j)U_jᵀ   (concat + recompress)
func Potrf(rt taskrt.Submitter, a *Matrix) error {
	g := engine.NewGrid(a.N, a.TS)
	for i := 0; i < a.NT; i++ {
		g.Set(i, i, &tile.DenseF64{D: a.Diag[i]})
		for j := 0; j < i; j++ {
			g.Set(i, j, a.Low[i][j])
		}
	}
	return engine.Potrf(rt, g, engine.Config{Tol: a.Tol, MaxRank: a.MaxRank})
}
