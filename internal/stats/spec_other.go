//go:build !amd64

package stats

// hasVecSpecials is always false without the amd64 kernels: every batch
// dispatcher takes its portable scalar path.
var hasVecSpecials = false

// The vector entry points are never reached when hasVecSpecials is false;
// the stubs exist so the dispatchers compile on every platform.

func erfcSimd(n int, x, dst *float64, mulIn, mulOut float64) {
	panic("stats: erfcSimd without vector kernels")
}

func phiInvCentralSimd(n int, p, dst *float64) {
	panic("stats: phiInvCentralSimd without vector kernels")
}
