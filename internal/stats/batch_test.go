package stats

import (
	"math"
	"math/rand"
	"testing"
)

// hardInputs are the deep-tail, endpoint and non-finite arguments the batch
// functions must handle exactly like their scalar counterparts.
var hardInputs = []float64{
	math.Inf(-1), -40, -37.6, -8.3, -8.2, -6, -1.5, -0.425001, -0.425,
	-1e-9, 0, 1e-9, 0.3, 0.425, 0.425001, 1.2, 6, 8.2, 8.3, 37.6, 40,
	math.Inf(1), math.NaN(),
}

// hardProbs covers PhiInv's regions: endpoints, subnormal-tail p, central
// band boundaries and out-of-range values.
var hardProbs = []float64{
	0, 5e-324, 1e-300, 1e-17, 1e-9, 0.074, 0.075, 0.0749999,
	0.3, 0.5, 0.7, 0.9249999, 0.925, 0.9250001, 1 - 1e-9, 1 - 1e-16, 1,
	-0.1, 1.1, math.NaN(),
}

func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

func TestPhiBatchMatchesScalarExactly(t *testing.T) {
	xs := append([]float64(nil), hardInputs...)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		xs = append(xs, (rng.Float64()-0.5)*80)
	}
	dst := make([]float64, len(xs))
	PhiBatch(xs, dst)
	for i, x := range xs {
		if want := Phi(x); !sameFloat(dst[i], want) {
			t.Fatalf("PhiBatch(%g) = %g, scalar %g", x, dst[i], want)
		}
	}
}

func TestPhiIntervalBatchMatchesScalarExactly(t *testing.T) {
	var as, bs []float64
	for _, a := range hardInputs {
		for _, b := range hardInputs {
			as = append(as, a)
			bs = append(bs, b)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := (rng.Float64() - 0.5) * 80
		as = append(as, a)
		bs = append(bs, a+rng.NormFloat64()*3)
	}
	dst := make([]float64, len(as))
	PhiIntervalBatch(as, bs, dst)
	for i := range as {
		if want := PhiInterval(as[i], bs[i]); !sameFloat(dst[i], want) {
			t.Fatalf("PhiIntervalBatch(%g,%g) = %g, scalar %g", as[i], bs[i], dst[i], want)
		}
	}
}

func TestPhiIntervalPhiBatchMatchesScalarExactly(t *testing.T) {
	var as, bs []float64
	for _, a := range hardInputs {
		for _, b := range hardInputs {
			as = append(as, a)
			bs = append(bs, b)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := (rng.Float64() - 0.5) * 80
		as = append(as, a)
		bs = append(bs, a+rng.NormFloat64()*3)
	}
	dif := make([]float64, len(as))
	da := make([]float64, len(as))
	PhiIntervalPhiBatch(as, bs, dif, da)
	for i := range as {
		// The interval probability is bit-identical to the scalar form in
		// every branch.
		if want := PhiInterval(as[i], bs[i]); !sameFloat(dif[i], want) {
			t.Fatalf("PhiIntervalPhiBatch(%g,%g) dif = %g, scalar %g", as[i], bs[i], dif[i], want)
		}
		// The batch must equal the shared scalar kernel exactly…
		wantDif, wantDa := PhiIntervalAndPhi(as[i], bs[i])
		if !sameFloat(dif[i], wantDif) || !sameFloat(da[i], wantDa) {
			t.Fatalf("PhiIntervalPhiBatch(%g,%g) = (%g,%g), scalar pair (%g,%g)",
				as[i], bs[i], dif[i], da[i], wantDif, wantDa)
		}
		// …and da tracks Phi(a): exact except the documented half-open
		// complement form, which is within one ulp; unused when dif ≤ 0.
		if dif[i] > 0 {
			want := Phi(as[i])
			if math.IsInf(bs[i], 1) && as[i] >= 0 {
				if math.Abs(da[i]-want) > 2.3e-16 {
					t.Fatalf("PhiIntervalAndPhi(%g,+Inf) da = %g, Phi %g", as[i], da[i], want)
				}
			} else if !sameFloat(da[i], want) {
				t.Fatalf("PhiIntervalPhiBatch(%g,%g) da = %g, scalar %g", as[i], bs[i], da[i], want)
			}
		}
	}
}

func TestPhiInvBatchMatchesScalarExactly(t *testing.T) {
	ps := append([]float64(nil), hardProbs...)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		ps = append(ps, rng.Float64())
	}
	// Probabilities clustered hard against 0 and 1.
	for e := 1; e < 300; e += 7 {
		ps = append(ps, math.Pow(10, -float64(e)), 1-math.Pow(10, -float64(e)))
	}
	dst := make([]float64, len(ps))
	PhiInvBatch(ps, dst)
	for i, p := range ps {
		if want := PhiInv(p); !sameFloat(dst[i], want) {
			t.Fatalf("PhiInvBatch(%g) = %g, scalar %g", p, dst[i], want)
		}
	}
}

// TestBatchAliasing: dst may alias the input slice.
func TestBatchAliasing(t *testing.T) {
	x := []float64{-2, -0.5, 0, 0.5, 2}
	want := make([]float64, len(x))
	PhiBatch(x, want)
	PhiBatch(x, x)
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("aliased PhiBatch diverged at %d: %g vs %g", i, x[i], want[i])
		}
	}
	p := []float64{0.01, 0.3, 0.5, 0.7, 0.99}
	wantInv := make([]float64, len(p))
	PhiInvBatch(p, wantInv)
	PhiInvBatch(p, p)
	for i := range p {
		if p[i] != wantInv[i] {
			t.Fatalf("aliased PhiInvBatch diverged at %d: %g vs %g", i, p[i], wantInv[i])
		}
	}
}

func BenchmarkPhiInvBatch(b *testing.B) {
	const n = 64
	p := make([]float64, n)
	dst := make([]float64, n)
	rng := rand.New(rand.NewSource(4))
	for i := range p {
		p[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PhiInvBatch(p, dst)
	}
}
