package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// hardInputs are the deep-tail, endpoint and non-finite arguments the batch
// functions must handle consistently with their scalar counterparts.
var hardInputs = []float64{
	math.Inf(-1), -40, -37.6, -8.3, -8.2, -6, -1.5, -0.425001, -0.425,
	-1e-9, 0, 1e-9, 0.3, 0.425, 0.425001, 0.84374, 0.84375, 1.2, 1.25,
	2.857142, 2.857143, 6, 8.2, 8.3, 26.5, 26.6, 27.2, 28, 37.6, 40,
	math.Inf(1), math.NaN(),
}

// hardProbs covers PhiInv's regions: endpoints, subnormal-tail p, central
// band boundaries and out-of-range values.
var hardProbs = []float64{
	0, 5e-324, 1e-300, 1e-17, 1e-9, 0.074, 0.075, 0.0749999,
	0.3, 0.5, 0.7, 0.9249999, 0.925, 0.9250001, 1 - 1e-9, 1 - 1e-16, 1,
	-0.1, 1.1, math.NaN(),
}

func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// tinyAbsTol is the absolute agreement floor for near-underflow erfc tails:
// the vector exp clamps at exp(−708), inflating results below
// ErfcVecTinyAbs by at most ~1.3e-309 (see batch.go).
const tinyAbsTol = 2e-309

// closeTol reports whether got agrees with want within an absolute
// tolerance, treating NaN/Inf by identity.
func closeTol(got, want, tol float64) bool {
	if math.IsNaN(want) || math.IsNaN(got) {
		return math.IsNaN(want) && math.IsNaN(got)
	}
	if math.IsInf(want, 0) || math.IsInf(got, 0) {
		return got == want
	}
	return math.Abs(got-want) <= tol
}

// erfcTol is the documented agreement bound for a single erfc-derived value:
// relative for results above the tiny floor, absolute below it.
func erfcTol(want float64) float64 {
	t := ErfcVecMaxRel * math.Abs(want)
	if math.Abs(want) < ErfcVecTinyAbs {
		t = tinyAbsTol
	}
	return t
}

// intervalTol bounds the interval probability dif = Φ(b)−Φ(a): the two erfc
// streams carry relative error, so a nearly-cancelled difference is accurate
// relative to the bounding tail mass 2·min(Φ(a),Φ(−a)) + |dif|, not to dif
// itself.
func intervalTol(a, dif float64) float64 {
	m := 0.5 * math.Erfc(math.Abs(a)/Sqrt2)
	return ErfcVecMaxRel*(2*m+math.Abs(dif)) + tinyAbsTol
}

// setVecSpecials flips the vector-kernel dispatch for the duration of a
// (sub)test, restoring the host default afterwards.
func setVecSpecials(t *testing.T, on bool) {
	t.Helper()
	old := hasVecSpecials
	if on && !old {
		t.Skip("no vector kernels on this host")
	}
	hasVecSpecials = on
	t.Cleanup(func() { hasVecSpecials = old })
}

func phiInputs() []float64 {
	xs := append([]float64(nil), hardInputs...)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		xs = append(xs, (rng.Float64()-0.5)*80)
	}
	for i := 0; i < 2000; i++ {
		xs = append(xs, rng.NormFloat64())
	}
	return xs
}

func intervalInputs(seed int64) (as, bs []float64) {
	for _, a := range hardInputs {
		for _, b := range hardInputs {
			as = append(as, a)
			bs = append(bs, b)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2000; i++ {
		a := (rng.Float64() - 0.5) * 80
		as = append(as, a)
		bs = append(bs, a+rng.NormFloat64()*3)
	}
	// Nearly-degenerate intervals: a ≈ b stresses the cancellation bound.
	for i := 0; i < 500; i++ {
		a := rng.NormFloat64() * 4
		as = append(as, a)
		bs = append(bs, a+math.Abs(rng.NormFloat64())*1e-8)
	}
	return as, bs
}

func TestPhiBatchMatchesScalar(t *testing.T) {
	xs := phiInputs()
	dst := make([]float64, len(xs))
	PhiBatch(xs, dst)
	for i, x := range xs {
		want := Phi(x)
		if !closeTol(dst[i], want, erfcTol(want)) {
			t.Fatalf("PhiBatch(%g) = %g, scalar %g", x, dst[i], want)
		}
	}
}

func TestErfcBatchMatchesScalar(t *testing.T) {
	xs := phiInputs()
	dst := make([]float64, len(xs))
	ErfcBatch(xs, dst)
	for i, x := range xs {
		want := math.Erfc(x)
		if !closeTol(dst[i], want, erfcTol(want)) {
			t.Fatalf("ErfcBatch(%g) = %g, scalar %g", x, dst[i], want)
		}
	}
}

// TestBatchScalarPathIsExact pins the kill-switch fallback: with the vector
// kernels disabled every batch form is bit-identical to its scalar
// counterpart, which is what REPRO_NOASM=1 runs verify continuously.
func TestBatchScalarPathIsExact(t *testing.T) {
	setVecSpecials(t, false)
	xs := phiInputs()
	dst := make([]float64, len(xs))
	PhiBatch(xs, dst)
	for i, x := range xs {
		if want := Phi(x); !sameFloat(dst[i], want) {
			t.Fatalf("scalar PhiBatch(%g) = %g, want %g", x, dst[i], want)
		}
	}
	as, bs := intervalInputs(11)
	dif := make([]float64, len(as))
	da := make([]float64, len(as))
	PhiIntervalPhiBatch(as, bs, dif, da)
	for i := range as {
		wd, wa := PhiIntervalAndPhi(as[i], bs[i])
		if !sameFloat(dif[i], wd) || !sameFloat(da[i], wa) {
			t.Fatalf("scalar PhiIntervalPhiBatch(%g,%g) = (%g,%g), want (%g,%g)",
				as[i], bs[i], dif[i], da[i], wd, wa)
		}
	}
	ps := append([]float64(nil), hardProbs...)
	inv := make([]float64, len(ps))
	PhiInvBatch(ps, inv)
	for i, p := range ps {
		if want := PhiInv(p); !sameFloat(inv[i], want) {
			t.Fatalf("scalar PhiInvBatch(%g) = %g, want %g", p, inv[i], want)
		}
	}
}

func TestPhiIntervalBatchMatchesScalar(t *testing.T) {
	as, bs := intervalInputs(2)
	dst := make([]float64, len(as))
	PhiIntervalBatch(as, bs, dst)
	for i := range as {
		want := PhiInterval(as[i], bs[i])
		if !closeTol(dst[i], want, intervalTol(as[i], want)) {
			t.Fatalf("PhiIntervalBatch(%g,%g) = %g, scalar %g", as[i], bs[i], dst[i], want)
		}
	}
}

func TestPhiIntervalPhiBatchMatchesScalar(t *testing.T) {
	as, bs := intervalInputs(7)
	dif := make([]float64, len(as))
	da := make([]float64, len(as))
	PhiIntervalPhiBatch(as, bs, dif, da)
	for i := range as {
		wantDif, wantDa := PhiIntervalAndPhi(as[i], bs[i])
		if !closeTol(dif[i], wantDif, intervalTol(as[i], wantDif)) {
			t.Fatalf("PhiIntervalPhiBatch(%g,%g) dif = %g, scalar %g", as[i], bs[i], dif[i], wantDif)
		}
		// da is only consumed when the lane survives (dif > 0); there it
		// tracks the scalar pair within the single-value erfc tolerance plus
		// the one-ulp complement forms.
		if wantDif > 0 && !closeTol(da[i], wantDa, erfcTol(wantDa)+3e-16) {
			t.Fatalf("PhiIntervalPhiBatch(%g,%g) da = %g, scalar %g", as[i], bs[i], da[i], wantDa)
		}
		// Structural invariants the sweep relies on, independent of path:
		// dead intervals are exactly (0,0) and live dif is positive.
		if bs[i] <= as[i] && (dif[i] != 0 || da[i] != 0) {
			t.Fatalf("empty interval (%g,%g) gave (%g,%g)", as[i], bs[i], dif[i], da[i])
		}
		if !math.IsNaN(dif[i]) && dif[i] < 0 {
			t.Fatalf("negative dif %g for (%g,%g)", dif[i], as[i], bs[i])
		}
	}
}

func TestPhiInvBatchMatchesScalar(t *testing.T) {
	ps := append([]float64(nil), hardProbs...)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		ps = append(ps, rng.Float64())
	}
	// Probabilities clustered hard against 0 and 1.
	for e := 1; e < 300; e += 7 {
		ps = append(ps, math.Pow(10, -float64(e)), 1-math.Pow(10, -float64(e)))
	}
	dst := make([]float64, len(ps))
	PhiInvBatch(ps, dst)
	for i, p := range ps {
		want := PhiInv(p)
		tol := PhiInvVecMaxRel * math.Abs(want)
		if !closeTol(dst[i], want, tol) {
			t.Fatalf("PhiInvBatch(%g) = %g, scalar %g", p, dst[i], want)
		}
	}
}

// TestBatchAliasing: dst may alias the input slice; aliased calls fall back
// to the scalar path, so they agree with the scalar reference exactly and
// with the vector result within tolerance.
func TestBatchAliasing(t *testing.T) {
	x := []float64{-2, -0.5, 0, 0.5, 2, -1, 3, 0.1, 1.7}
	scalar := make([]float64, len(x))
	phiBatchScalar(x, scalar)
	vec := make([]float64, len(x))
	PhiBatch(x, vec)
	aliased := append([]float64(nil), x...)
	PhiBatch(aliased, aliased)
	for i := range x {
		if !closeTol(aliased[i], scalar[i], erfcTol(scalar[i])) {
			t.Fatalf("aliased PhiBatch diverged at %d: %g vs %g", i, aliased[i], scalar[i])
		}
		if !closeTol(vec[i], scalar[i], erfcTol(scalar[i])) {
			t.Fatalf("PhiBatch diverged at %d: %g vs %g", i, vec[i], scalar[i])
		}
	}
	p := []float64{0.01, 0.3, 0.5, 0.7, 0.99}
	wantInv := make([]float64, len(p))
	phiInvBatchScalar(p, wantInv)
	aliasedP := append([]float64(nil), p...)
	PhiInvBatch(aliasedP, aliasedP)
	for i := range p {
		if !sameFloat(aliasedP[i], wantInv[i]) {
			t.Fatalf("aliased PhiInvBatch diverged at %d: %g vs %g", i, aliasedP[i], wantInv[i])
		}
	}
}

// TestBatchRaggedLengths exercises every tail length of the 4-lane kernels.
func TestBatchRaggedLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for n := 0; n <= 17; n++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		dst := make([]float64, n)
		ErfcBatch(x, dst)
		for i := range x {
			want := math.Erfc(x[i])
			if !closeTol(dst[i], want, erfcTol(want)) {
				t.Fatalf("n=%d: ErfcBatch(%g)[%d] = %g, scalar %g", n, x[i], i, dst[i], want)
			}
		}
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
		}
		inv := make([]float64, n)
		PhiInvBatch(p, inv)
		for i := range p {
			want := PhiInv(p[i])
			if !closeTol(inv[i], want, PhiInvVecMaxRel*math.Abs(want)) {
				t.Fatalf("n=%d: PhiInvBatch(%g)[%d] = %g, scalar %g", n, p[i], i, inv[i], want)
			}
		}
	}
}

// FuzzErfcBatch pins vector-vs-scalar erfc agreement on arbitrary inputs,
// including NaN/±Inf bit patterns and ragged slice lengths.
func FuzzErfcBatch(f *testing.F) {
	f.Add(0.0, 1.3, -40.0, 27.0, uint8(7))
	f.Add(math.Inf(1), math.Inf(-1), math.NaN(), 0.84375, uint8(3))
	f.Add(1.25, 2.857143, -1.25, 26.6, uint8(5))
	f.Add(1e-300, -1e-300, 5e-324, -0.0, uint8(1))
	f.Fuzz(func(t *testing.T, x0, x1, x2, x3 float64, nn uint8) {
		seed := [4]float64{x0, x1, x2, x3}
		n := 1 + int(nn%9)
		x := make([]float64, n)
		for i := range x {
			x[i] = seed[i%4]
		}
		dst := make([]float64, n)
		ErfcBatch(x, dst)
		for i := range x {
			want := math.Erfc(x[i])
			if !closeTol(dst[i], want, erfcTol(want)) {
				t.Fatalf("ErfcBatch(%g)[%d] = %g, scalar %g (len %d)", x[i], i, dst[i], want, n)
			}
		}
	})
}

// FuzzPhiIntervalBatch pins the interval forms — dif against PhiInterval and
// the fused pair against PhiIntervalAndPhi — on arbitrary limit pairs,
// including a ≈ b, reversed, and non-finite limits, across ragged lengths.
func FuzzPhiIntervalBatch(f *testing.F) {
	f.Add(-1.0, 1.0, 0.5, 0.5000001, uint8(6))
	f.Add(math.Inf(-1), math.Inf(1), -40.0, 40.0, uint8(4))
	f.Add(2.0, math.NaN(), math.Inf(1), -8.3, uint8(2))
	f.Add(-37.6, -37.5, 8.2, 8.3, uint8(9))
	f.Fuzz(func(t *testing.T, a0, b0, a1, b1 float64, nn uint8) {
		seedA := [2]float64{a0, a1}
		seedB := [2]float64{b0, b1}
		n := 1 + int(nn%9)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = seedA[i%2], seedB[i%2]
		}
		dst := make([]float64, n)
		PhiIntervalBatch(a, b, dst)
		for i := range a {
			want := PhiInterval(a[i], b[i])
			if !closeTol(dst[i], want, intervalTol(a[i], want)) {
				t.Fatalf("PhiIntervalBatch(%g,%g) = %g, scalar %g", a[i], b[i], dst[i], want)
			}
		}
		dif := make([]float64, n)
		da := make([]float64, n)
		PhiIntervalPhiBatch(a, b, dif, da)
		for i := range a {
			wd, wa := PhiIntervalAndPhi(a[i], b[i])
			if !closeTol(dif[i], wd, intervalTol(a[i], wd)) {
				t.Fatalf("PhiIntervalPhiBatch(%g,%g) dif = %g, scalar %g", a[i], b[i], dif[i], wd)
			}
			if wd > 0 && !closeTol(da[i], wa, erfcTol(wa)+3e-16) {
				t.Fatalf("PhiIntervalPhiBatch(%g,%g) da = %g, scalar %g", a[i], b[i], da[i], wa)
			}
		}
	})
}

// BenchmarkSpecials compares the scalar loops against the vector kernels at
// the sweep's lane-block sizes; recorded in BENCH_kernels.json.
func BenchmarkSpecials(b *testing.B) {
	for _, n := range []int{64, 1000} {
		x := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		pr := make([]float64, n)
		dst := make([]float64, n)
		da := make([]float64, n)
		rng := rand.New(rand.NewSource(4))
		for i := range x {
			x[i] = rng.NormFloat64() * 2
			lo[i] = rng.NormFloat64() - 1
			hi[i] = lo[i] + 2 + rng.Float64()
			// The sweep hands PhiInvBatch uniforms scaled into (0,1), so
			// that is the representative input (mostly central-branch).
			pr[i] = rng.Float64()
		}
		for _, vec := range []bool{false, true} {
			if vec && !hasVecSpecials {
				continue
			}
			old := hasVecSpecials
			hasVecSpecials = vec
			name := "scalar"
			if vec {
				name = "vec"
			}
			b.Run(fmt.Sprintf("erfc/%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ErfcBatch(x, dst)
				}
			})
			b.Run(fmt.Sprintf("phi/%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					PhiBatch(x, dst)
				}
			})
			b.Run(fmt.Sprintf("phiintervalphi/%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					PhiIntervalPhiBatch(lo, hi, dst, da)
				}
			})
			b.Run(fmt.Sprintf("phiinv/%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					PhiInvBatch(pr, dst)
				}
			})
			hasVecSpecials = old
		}
	}
}

func BenchmarkPhiInvBatch(b *testing.B) {
	const n = 64
	p := make([]float64, n)
	dst := make([]float64, n)
	rng := rand.New(rand.NewSource(4))
	for i := range p {
		p[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PhiInvBatch(p, dst)
	}
}
