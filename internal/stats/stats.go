// Package stats provides the scalar special functions underlying the
// multivariate normal (MVN) probability computation: the univariate normal
// distribution function Φ and its inverse Φ⁻¹ (Wichura's AS241), numerically
// stable interval probabilities, and the modified Bessel function of the
// second kind K_ν required by the Matérn covariance family.
//
// Everything in this package is pure scalar float64 code with no allocation,
// so the tiled QMC kernels can call it in tight inner loops.
package stats

import "math"

// Sqrt2 is √2, used to map Φ onto erfc.
const Sqrt2 = 1.4142135623730950488016887242096980786

// EulerGamma is the Euler–Mascheroni constant γ.
const EulerGamma = 0.57721566490153286060651209008240243104

// Phi returns the standard normal cumulative distribution function
// P(Z ≤ x). It is accurate in both tails because it is evaluated through
// erfc rather than erf.
//repro:noalloc
func Phi(x float64) float64 {
	return 0.5 * math.Erfc(-x/Sqrt2)
}

// PhiDensity returns the standard normal density φ(x).
//repro:noalloc
func PhiDensity(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// PhiInterval returns P(a < Z ≤ b) for a standard normal Z, computed in a
// tail-stable way: when both endpoints sit in the same tail the difference is
// evaluated with the complementary error function on that tail so that no
// catastrophic cancellation of values near 1 occurs.
//repro:noalloc
func PhiInterval(a, b float64) float64 {
	if b <= a {
		return 0
	}
	switch {
	case a >= 0: // right tail: Φ(b)-Φ(a) = (erfc(a/√2)-erfc(b/√2))/2
		return 0.5 * (math.Erfc(a/Sqrt2) - math.Erfc(b/Sqrt2))
	case b <= 0: // left tail: symmetric form
		return 0.5 * (math.Erfc(-b/Sqrt2) - math.Erfc(-a/Sqrt2))
	default: // straddles zero; both Φ values are moderate
		return Phi(b) - Phi(a)
	}
}
