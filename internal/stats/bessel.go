package stats

import "math"

// BesselK returns the modified Bessel function of the second kind K_ν(x) for
// real order ν ≥ 0 and x > 0. It uses Temme's series for x ≤ 2 and the
// Steed/Thompson–Barnett continued fraction CF2 for x > 2, followed by the
// standard upward recurrence in the order. This is the special function that
// powers the Matérn covariance kernel.
//
// Negative orders are handled through the symmetry K_{-ν} = K_ν.
// BesselK returns +Inf for x == 0 and NaN for x < 0.
func BesselK(nu, x float64) float64 {
	nu = math.Abs(nu) // K is even in the order
	switch {
	case math.IsNaN(nu) || math.IsNaN(x) || x < 0:
		return math.NaN()
	case x == 0:
		return math.Inf(1)
	}
	// Half-integer orders have closed forms; they are both the common Matérn
	// cases (ν = 1/2, 3/2, 5/2) and much cheaper than the general path.
	if h := nu - math.Floor(nu); h == 0.5 {
		return besselKHalfInt(nu, x)
	}

	nl := int(nu + 0.5)    // number of upward recurrences
	mu := nu - float64(nl) // |mu| ≤ 1/2
	var kmu, knu1 float64  // K_mu(x), K_{mu+1}(x)
	if x <= 2 {
		kmu, knu1 = besselKTemme(mu, x)
	} else {
		kmu, knu1 = besselKCF2(mu, x)
	}
	// Upward recurrence K_{m+1} = K_{m-1} + 2m/x · K_m.
	for i := 1; i <= nl; i++ {
		kmu, knu1 = knu1, (mu+float64(i))*(2/x)*knu1+kmu
	}
	return kmu
}

// besselKHalfInt evaluates K_{m+1/2}(x) exactly via the finite closed form
// K_{1/2}(x) = sqrt(pi/2x)·e^{-x}, with the upward order recurrence.
func besselKHalfInt(nu, x float64) float64 {
	k0 := math.Sqrt(math.Pi/(2*x)) * math.Exp(-x) // K_{1/2}
	if nu == 0.5 {
		return k0
	}
	k1 := k0 * (1 + 1/x) // K_{3/2}
	m := 1.5
	for m < nu {
		k0, k1 = k1, k0+(2*m/x)*k1
		m++
	}
	return k1
}

// temmeGammas returns the auxiliary gamma combinations used by Temme's
// series:
//
//	gam1 = (1/Γ(1-µ) − 1/Γ(1+µ)) / (2µ)
//	gam2 = (1/Γ(1-µ) + 1/Γ(1+µ)) / 2
//	gampl = 1/Γ(1+µ),  gammi = 1/Γ(1-µ)
//
// with the µ→0 limit gam1 → γ handled by a short Taylor expansion.
func temmeGammas(mu float64) (gam1, gam2, gampl, gammi float64) {
	gampl = 1 / math.Gamma(1+mu)
	gammi = 1 / math.Gamma(1-mu)
	if math.Abs(mu) < 1e-5 {
		// With g(µ) = 1/Γ(1+µ) = 1 + γµ + a2µ² + a3µ³ + …,
		// gam1 = (g(-µ) − g(µ))/(2µ) → −γ − a3µ² where
		// a3 = ζ(3)/3 − γπ²/12 + γ³/6 ≈ −0.0420153.
		const a3 = -0.042015351336218557
		gam1 = -EulerGamma - a3*mu*mu
	} else {
		gam1 = (gammi - gampl) / (2 * mu)
	}
	gam2 = 0.5 * (gammi + gampl)
	return
}

// besselKTemme computes K_mu and K_{mu+1} for |mu| ≤ 1/2 and 0 < x ≤ 2
// using Temme's power series (cf. Numerical Recipes §6.7, routine bessik).
func besselKTemme(mu, x float64) (kmu, kmu1 float64) {
	const eps = 1e-16
	const maxIter = 10000

	pimu := math.Pi * mu
	fact := 1.0
	if pimu != 0 {
		fact = pimu / math.Sin(pimu)
	}
	d := -math.Log(x / 2)
	e := mu * d
	fact2 := 1.0
	if e != 0 {
		fact2 = math.Sinh(e) / e
	}
	gam1, gam2, gampl, gammi := temmeGammas(mu)
	ff := fact * (gam1*math.Cosh(e) + gam2*fact2*d)
	sum := ff
	e = math.Exp(e)
	p := 0.5 * e / gampl
	q := 0.5 / (e * gammi)
	c := 1.0
	d = 0.25 * x * x
	sum1 := p
	for i := 1; i <= maxIter; i++ {
		fi := float64(i)
		ff = (fi*ff + p + q) / (fi*fi - mu*mu)
		c *= d / fi
		p /= fi - mu
		q /= fi + mu
		del := c * ff
		sum += del
		sum1 += c * (p - fi*ff)
		if math.Abs(del) < math.Abs(sum)*eps {
			return sum, sum1 * (2 / x)
		}
	}
	return sum, sum1 * (2 / x) // converged to working precision anyway
}

// besselKCF2 computes K_mu and K_{mu+1} for |mu| ≤ 1/2 and x > 2 using the
// CF2 continued fraction with the Thompson–Barnett sum (cf. Numerical
// Recipes §6.7).
func besselKCF2(mu, x float64) (kmu, kmu1 float64) {
	const eps = 1e-16
	const maxIter = 10000

	b := 2 * (1 + x)
	d := 1 / b
	h := d
	delh := d
	q1, q2 := 0.0, 1.0
	a1 := 0.25 - mu*mu
	q := a1
	c := a1
	a := -a1
	s := 1 + q*delh
	for i := 2; i <= maxIter; i++ {
		a -= 2 * float64(i-1)
		c = -a * c / float64(i)
		qnew := (q1 - b*q2) / a
		q1, q2 = q2, qnew
		q += c * qnew
		b += 2
		d = 1 / (b + a*d)
		delh = (b*d - 1) * delh
		h += delh
		dels := q * delh
		s += dels
		if math.Abs(dels/s) < eps {
			break
		}
	}
	h = a1 * h
	kmu = math.Sqrt(math.Pi/(2*x)) * math.Exp(-x) / s
	kmu1 = kmu * (mu + x + 0.5 - h) / x
	return
}

// BesselKScaled returns e^x · K_ν(x), which stays representable for large x
// where K_ν itself underflows. It follows the same evaluation strategy as
// BesselK.
func BesselKScaled(nu, x float64) float64 {
	if x <= 700 {
		k := BesselK(nu, x)
		if k > 0 && !math.IsInf(k, 1) {
			return k * math.Exp(x)
		}
	}
	// Large-x asymptotic expansion: K_ν(x) ~ sqrt(π/2x)·e^{-x}·Σ a_k(ν)/x^k.
	mu4 := 4 * nu * nu
	s := 1.0
	term := 1.0
	for k := 1; k <= 12; k++ {
		num := mu4 - float64((2*k-1)*(2*k-1))
		term *= num / (8 * float64(k) * x)
		s += term
		if math.Abs(term) < 1e-17*math.Abs(s) {
			break
		}
	}
	return math.Sqrt(math.Pi/(2*x)) * s
}
