package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 − e^{-x} exactly.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almostEq(got, want, 1e-13) {
			t.Errorf("GammaP(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(1/2, x) = erf(√x).
	for _, x := range []float64{0.2, 1, 3, 8} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); !almostEq(got, want, 1e-12) {
			t.Errorf("GammaP(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := 0.1 + 10*rng.Float64()
		x := 12 * rng.Float64()
		p, q := GammaP(a, x), GammaQ(a, x)
		if !almostEq(p+q, 1, 1e-12) {
			t.Fatalf("P+Q = %v at a=%v x=%v", p+q, a, x)
		}
	}
}

func TestGammaPEdges(t *testing.T) {
	if GammaP(2, 0) != 0 {
		t.Error("P(a,0) should be 0")
	}
	if GammaP(2, math.Inf(1)) != 1 {
		t.Error("P(a,Inf) should be 1")
	}
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, -1}} {
		if !math.IsNaN(GammaP(bad[0], bad[1])) {
			t.Errorf("GammaP%v should be NaN", bad)
		}
	}
}

func TestGammaPMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.2 + 5*rng.Float64()
		x := 8 * rng.Float64()
		return GammaP(a, x) <= GammaP(a, x+0.1)+1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGammaPInvRoundTrip(t *testing.T) {
	for _, a := range []float64{0.3, 0.5, 1, 2.5, 10, 50} {
		for _, p := range []float64{1e-6, 0.01, 0.3, 0.5, 0.9, 0.999} {
			x := GammaPInv(a, p)
			if got := GammaP(a, x); !almostEq(got, p, 1e-8) {
				t.Errorf("GammaP(%v, GammaPInv(%v,%v)=%v) = %v", a, a, p, x, got)
			}
		}
	}
	if GammaPInv(2, 0) != 0 || !math.IsInf(GammaPInv(2, 1), 1) {
		t.Error("GammaPInv endpoints wrong")
	}
	if !math.IsNaN(GammaPInv(2, -0.1)) || !math.IsNaN(GammaPInv(-1, 0.5)) {
		t.Error("GammaPInv should reject invalid input")
	}
}

func TestChi2InvKnownQuantiles(t *testing.T) {
	cases := []struct{ p, k, want float64 }{
		{0.95, 1, 3.841458820694124},
		{0.95, 10, 18.307038053275146},
		{0.5, 2, 2 * math.Ln2}, // median of χ²₂ = 2 ln 2
		{0.99, 5, 15.08627246938899},
	}
	for _, c := range cases {
		if got := Chi2Inv(c.p, c.k); !almostEq(got, c.want, 1e-8) {
			t.Errorf("Chi2Inv(%v,%v) = %v, want %v", c.p, c.k, got, c.want)
		}
	}
}

func TestStudentTCDFExactCases(t *testing.T) {
	// ν=1 is Cauchy: F(t) = 1/2 + atan(t)/π.
	for _, tt := range []float64{-3, -1, 0, 0.5, 2, 10} {
		want := 0.5 + math.Atan(tt)/math.Pi
		if got := StudentTCDF(tt, 1); !almostEq(got, want, 1e-12) {
			t.Errorf("t-CDF ν=1 at %v: %v, want %v", tt, got, want)
		}
	}
	// ν=2: F(t) = 1/2 + t/(2√(2+t²)).
	for _, tt := range []float64{-2, -0.5, 0, 1, 4} {
		want := 0.5 + tt/(2*math.Sqrt(2+tt*tt))
		if got := StudentTCDF(tt, 2); !almostEq(got, want, 1e-12) {
			t.Errorf("t-CDF ν=2 at %v: %v, want %v", tt, got, want)
		}
	}
}

func TestStudentTCDFLimitsToNormal(t *testing.T) {
	for _, tt := range []float64{-2, -0.5, 0, 1, 2.5} {
		if got, want := StudentTCDF(tt, 1e7), Phi(tt); !almostEq(got, want, 1e-5) {
			t.Errorf("ν→∞ limit at %v: %v vs Φ %v", tt, got, want)
		}
	}
	if StudentTCDF(math.Inf(1), 3) != 1 || StudentTCDF(math.Inf(-1), 3) != 0 {
		t.Error("t-CDF infinite-argument values wrong")
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		tt := math.Mod(raw, 10)
		nu := 3.5
		return almostEq(StudentTCDF(tt, nu)+StudentTCDF(-tt, nu), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkChi2Inv(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += Chi2Inv(0.0001+float64(i%9998)/10000, 7)
	}
	_ = s
}
