package stats

import "math"

// AS241 PPND16 coefficients (Wichura 1988, Applied Statistics 37).
// Central region |p-1/2| ≤ 0.425.
var ppnd16A = [8]float64{
	3.3871328727963666080e0,
	1.3314166789178437745e2,
	1.9715909503065514427e3,
	1.3731693765509461125e4,
	4.5921953931549871457e4,
	6.7265770927008700853e4,
	3.3430575583588128105e4,
	2.5090809287301226727e3,
}

var ppnd16B = [8]float64{
	1.0,
	4.2313330701600911252e1,
	6.8718700749205790830e2,
	5.3941960214247511077e3,
	2.1213794301586595867e4,
	3.9307895800092710610e4,
	2.8729085735721942674e4,
	5.2264952788528545610e3,
}

// Intermediate region r = sqrt(-log(min(p,1-p))) ≤ 5.
var ppnd16C = [8]float64{
	1.42343711074968357734e0,
	4.63033784615654529590e0,
	5.76949722146069140550e0,
	3.64784832476320460504e0,
	1.27045825245236838258e0,
	2.41780725177450611770e-1,
	2.27238449892691845833e-2,
	7.74545014278341407640e-4,
}

var ppnd16D = [8]float64{
	1.0,
	2.05319162663775882187e0,
	1.67638483018380384940e0,
	6.89767334985100004550e-1,
	1.48103976427480074590e-1,
	1.51986665636164571966e-2,
	5.47593808499534494600e-4,
	1.05075007164441684324e-9,
}

// Far-tail region r > 5.
var ppnd16E = [8]float64{
	6.65790464350110377720e0,
	5.46378491116411436990e0,
	1.78482653991729133580e0,
	2.96560571828504891230e-1,
	2.65321895265761230930e-2,
	1.24266094738807843860e-3,
	2.71155556874348757815e-5,
	2.01033439929228813265e-7,
}

var ppnd16F = [8]float64{
	1.0,
	5.99832206555887937690e-1,
	1.36929880922735805310e-1,
	1.48753612908506148525e-2,
	7.86869131145613259100e-4,
	1.84631831751005468180e-5,
	1.42151175831644588870e-7,
	2.04426310338993978564e-15,
}

//repro:noalloc
func poly8(c *[8]float64, r float64) float64 {
	return ((((((c[7]*r+c[6])*r+c[5])*r+c[4])*r+c[3])*r+c[2])*r+c[1])*r + c[0]
}

// PhiInv returns the inverse of the standard normal distribution function,
// Φ⁻¹(p), using Wichura's algorithm AS241 (PPND16), accurate to roughly
// machine precision for p in (0,1). PhiInv(0) is -Inf, PhiInv(1) is +Inf and
// values outside [0,1] return NaN.
//repro:noalloc
func PhiInv(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	q := p - 0.5
	if math.Abs(q) <= 0.425 {
		r := 0.180625 - q*q
		return q * poly8(&ppnd16A, r) / poly8(&ppnd16B, r)
	}
	r := p
	if q > 0 {
		r = 1 - p
	}
	r = math.Sqrt(-math.Log(r))
	var x float64
	if r <= 5 {
		r -= 1.6
		x = poly8(&ppnd16C, r) / poly8(&ppnd16D, r)
	} else {
		r -= 5
		x = poly8(&ppnd16E, r) / poly8(&ppnd16F, r)
	}
	if q < 0 {
		return -x
	}
	return x
}
