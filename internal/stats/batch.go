package stats

import "math"

// Batched special functions for the chain-blocked SOV kernel: the QMC
// integration applies Φ, Φ⁻¹ and the interval probability to a whole lane
// block of chains at once, so the batch forms take contiguous slices and
// keep the inner loops branch-light.
//
// On amd64 hosts with AVX2+FMA the batch forms dispatch to the 4-lane vector
// kernels in spec_amd64.s (kill-switch: REPRO_NOASM, see spec_amd64.go); the
// scalar loops below remain the portable fallback and the reference the
// property/fuzz tests in batch_test.go compare against. The vector erfc
// re-evaluates the FDLIBM rationals branch-free with a single-split
// exponential, so results are NOT bit-identical to math.Erfc; agreement is
// bounded by the documented tolerances:
//
//	ErfcVecMaxRel   relative error of the vector erfc (and everything built
//	                on it: PhiBatch, PhiIntervalBatch, PhiIntervalPhiBatch)
//	                against the scalar forms, for results ≥ ErfcVecTinyAbs.
//	ErfcVecTinyAbs  absolute error floor for near-underflow tails: the
//	                vector exp clamps its argument at −708, so erfc results
//	                below ~1e-305 can be inflated up to ~1.3e-309 absolute
//	                (DBL_MIN/|x|) instead of rounding to subnormals/zero.
//	PhiInvVecMaxRel relative error of the vector Φ⁻¹ central rational (FMA
//	                contraction only; same AS241 coefficients).
//
// The fix-up semantics (dead lanes, empty intervals, tail clamps, NaN and
// ±Inf handling) are identical on both paths, which the fuzz targets pin.
const (
	ErfcVecMaxRel   = 5e-13
	ErfcVecTinyAbs  = 1e-305
	PhiInvVecMaxRel = 1e-13
)

// erfcArgs is the shared argument preparation of the interval forms: both
// scalar and vector paths scale the limits onto the erfc axis exactly once,
// through this helper, so their branch selections agree bit-for-bit
// (negating a scaled limit is exact, so ±a/√2 and ±b/√2 all derive from one
// division each).
//repro:noalloc
func erfcArgs(a, b float64) (sa, sb float64) {
	return a / Sqrt2, b / Sqrt2
}

// PhiBatch fills dst[i] = Phi(x[i]). x and dst must have equal length and may
// alias.
//repro:noalloc
func PhiBatch(x, dst []float64) {
	dst = dst[:len(x)]
	if hasVecSpecials && len(x) >= 4 {
		erfcVec(x, dst, -1/Sqrt2, 0.5)
		return
	}
	phiBatchScalar(x, dst)
}

//repro:noalloc
func phiBatchScalar(x, dst []float64) {
	for i, v := range x {
		dst[i] = 0.5 * math.Erfc(-v/Sqrt2)
	}
}

// ErfcBatch fills dst[i] = erfc(x[i]); the raw batched complementary error
// function behind the Φ forms, exported for callers that work on the erfc
// axis directly. x and dst must have equal length and may alias.
//repro:noalloc
func ErfcBatch(x, dst []float64) {
	dst = dst[:len(x)]
	if hasVecSpecials && len(x) >= 4 {
		erfcVec(x, dst, 1, 1)
		return
	}
	for i, v := range x {
		dst[i] = math.Erfc(v)
	}
}

// specChunk is the lane-block granularity of PhiIntervalBatch's vector path:
// one stack-resident scratch vector of this length holds the second erfc
// stream, so the batch stays allocation-free at any input length.
const specChunk = 128

// PhiIntervalBatch fills dst[i] = PhiInterval(a[i], b[i]), the tail-stable
// interval probability per lane. The slices must have equal length; dst may
// alias a or b (aliased calls take the scalar path).
//repro:noalloc
func PhiIntervalBatch(a, b, dst []float64) {
	dst = dst[:len(a)]
	b = b[:len(a)]
	if !hasVecSpecials || len(a) < 4 || &dst[0] == &a[0] || &dst[0] == &b[0] {
		phiIntervalBatchScalar(a, b, dst)
		return
	}
	var e1 [specChunk]float64
	for o := 0; o < len(a); o += specChunk {
		m := len(a) - o
		if m > specChunk {
			m = specChunk
		}
		ac, bc, dc := a[o:o+m], b[o:o+m], dst[o:o+m]
		for i, ai := range ac {
			sa, sb := erfcArgs(ai, bc[i])
			if ai >= 0 {
				e1[i], dc[i] = sa, sb
			} else {
				e1[i], dc[i] = -sa, -sb
			}
		}
		erfcVec(e1[:m], e1[:m], 1, 0.5)
		erfcVec(dc, dc, 1, 0.5)
		for i, ai := range ac {
			switch {
			case bc[i] <= ai:
				dc[i] = 0
			case ai >= 0: // right tail / half-open: Φ(b)−Φ(a) on the a-side
				dc[i] = e1[i] - dc[i]
			case ai < 0: // left tail / straddle, mirrored
				dc[i] = dc[i] - e1[i]
			default: // a is NaN
				dc[i] = math.NaN()
			}
		}
	}
}

//repro:noalloc
func phiIntervalBatchScalar(a, b, dst []float64) {
	for i, ai := range a {
		dst[i] = PhiInterval(ai, b[i])
	}
}

// PhiIntervalAndPhi returns dif = PhiInterval(a, b) together with the lower
// distribution value da the Genz chain step combines it with
// (u = da + w·dif), sharing erfc evaluations between the two. dif is
// bit-identical to PhiInterval in every branch. da is Phi(a) except in two
// places where a cheaper exact-complement form is used: for the half-open
// interval (a, +∞) with a ≥ 0, da = 1 − dif (one erfc instead of two,
// within one ulp of Phi(a)); and when dif ≤ 0, da is 0 and must not be used
// (the chain is dead and the step never forms u). The scalar chainStep and
// the batched kernel's scalar fallback both evaluate through this function;
// the vector path agrees within ErfcVecMaxRel.
//repro:noalloc
func PhiIntervalAndPhi(a, b float64) (dif, da float64) {
	if b <= a {
		return 0, 0
	}
	sa, sb := erfcArgs(a, b)
	switch {
	case math.IsInf(b, 1):
		// Half-open exceedance interval — the excursion/prefix query shape:
		// one tail erfc serves both quantities.
		if a >= 0 {
			dif = 0.5 * math.Erfc(sa)
			return dif, 1 - dif
		}
		da = 0.5 * math.Erfc(-sa)
		return 1 - da, da
	case a >= 0: // right tail
		return 0.5 * (math.Erfc(sa) - math.Erfc(sb)), 0.5 * math.Erfc(-sa)
	case b <= 0: // left tail: Φ(a) shares the interval's erfc(−a/√2)
		ea := math.Erfc(-sa)
		return 0.5 * (math.Erfc(-sb) - ea), 0.5 * ea
	default: // straddles zero
		da = 0.5 * math.Erfc(-sa)
		return 0.5*math.Erfc(-sb) - da, da
	}
}

// PhiIntervalPhiBatch fills dif[i], da[i] = PhiIntervalAndPhi(a[i], b[i])
// over contiguous lane vectors. Slices must have equal length; dif and da
// may alias a or b (aliased calls take the scalar path — the vector path
// stages its erfc streams in dif and da while it still needs a and b).
//repro:noalloc
func PhiIntervalPhiBatch(a, b, dif, da []float64) {
	b = b[:len(a)]
	dif = dif[:len(a)]
	da = da[:len(a)]
	if !hasVecSpecials || len(a) < 4 ||
		&dif[0] == &a[0] || &dif[0] == &b[0] || &da[0] == &a[0] || &da[0] == &b[0] {
		phiIntervalPhiBatchScalar(a, b, dif, da)
		return
	}
	// e1 = ½erfc(|a|/√2) in dif, e2 = ½erfc(sign(a)·b/√2) in da: for a ≥ 0
	// these are the right-tail pair (Φ(-a), Φ(-b)); for a < 0 the mirrored
	// left-tail pair (Φ(a), Φ(b)) — exactly the quantities every branch of
	// PhiIntervalAndPhi combines.
	for i, ai := range a {
		sa, sb := erfcArgs(ai, b[i])
		if ai >= 0 {
			dif[i], da[i] = sa, sb
		} else {
			dif[i], da[i] = -sa, -sb
		}
	}
	erfcVec(dif, dif, 1, 0.5)
	erfcVec(da, da, 1, 0.5)
	for i, ai := range a {
		e1, e2 := dif[i], da[i]
		switch {
		case b[i] <= ai:
			dif[i], da[i] = 0, 0
		case ai >= 0:
			dif[i], da[i] = e1-e2, 1-e1
		case ai < 0:
			dif[i], da[i] = e2-e1, e1
		default: // a is NaN
			dif[i], da[i] = math.NaN(), math.NaN()
		}
	}
}

//repro:noalloc
func phiIntervalPhiBatchScalar(a, b, dif, da []float64) {
	for i, ai := range a {
		dif[i], da[i] = PhiIntervalAndPhi(ai, b[i])
	}
}

// PhiInvBatch fills dst[i] = PhiInv(p[i]). The central region
// |p−1/2| ≤ 0.425 — the bulk of uniform QMC draws — is a single rational
// polynomial, vectorized over all lanes with a scalar fix-up pass for tail,
// endpoint and invalid lanes (NaN compares false, so it lands in the
// fallback too). p and dst must have equal length and may alias (aliased
// calls take the scalar path).
//repro:noalloc
func PhiInvBatch(p, dst []float64) {
	dst = dst[:len(p)]
	if !hasVecSpecials || len(p) < 4 || &dst[0] == &p[0] {
		phiInvBatchScalar(p, dst)
		return
	}
	n := len(p) &^ 3
	phiInvCentralSimd(n, &p[0], &dst[0])
	for i := 0; i < n; i++ {
		q := p[i] - 0.5
		if !(q >= -0.425 && q <= 0.425) {
			dst[i] = PhiInv(p[i])
		}
	}
	phiInvBatchScalar(p[n:], dst[n:])
}

//repro:noalloc
func phiInvBatchScalar(p, dst []float64) {
	for i, v := range p {
		q := v - 0.5
		if q >= -0.425 && q <= 0.425 {
			r := 0.180625 - q*q
			dst[i] = q * poly8(&ppnd16A, r) / poly8(&ppnd16B, r)
		} else {
			dst[i] = PhiInv(v)
		}
	}
}

// erfcVec fills dst[i] = mulOut·erfc(mulIn·x[i]) with the vector kernel;
// callers guarantee hasVecSpecials and len ≥ 1. Ragged tails shorter than a
// lane block run through one extra vector iteration on a stack buffer, so
// any length is allocation-free. x and dst may alias exactly.
//repro:noalloc
func erfcVec(x, dst []float64, mulIn, mulOut float64) {
	n := len(x) &^ 3
	if n > 0 {
		erfcSimd(n, &x[0], &dst[0], mulIn, mulOut)
	}
	if n == len(x) {
		return
	}
	var xs, ds [4]float64
	copy(xs[:], x[n:])
	erfcSimd(4, &xs[0], &ds[0], mulIn, mulOut)
	copy(dst[n:], ds[:len(x)-n])
}
