package stats

import "math"

// Batched special functions for the chain-blocked SOV kernel: the QMC
// integration applies Φ, Φ⁻¹ and the interval probability to a whole lane
// block of chains at once, so the batch forms take contiguous slices and
// keep the inner loops branch-light. Every batch function computes exactly
// the same expressions as its scalar counterpart — results are bit-identical,
// which the property tests in batch_test.go pin — so callers can mix scalar
// and batched evaluation freely.

// PhiBatch fills dst[i] = Phi(x[i]). x and dst must have equal length and may
// alias.
//repro:noalloc
func PhiBatch(x, dst []float64) {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = 0.5 * math.Erfc(-v/Sqrt2)
	}
}

// PhiIntervalBatch fills dst[i] = PhiInterval(a[i], b[i]), the tail-stable
// interval probability per lane. The slices must have equal length; dst may
// alias a or b.
//repro:noalloc
func PhiIntervalBatch(a, b, dst []float64) {
	dst = dst[:len(a)]
	b = b[:len(a)]
	for i, ai := range a {
		dst[i] = PhiInterval(ai, b[i])
	}
}

// PhiIntervalAndPhi returns dif = PhiInterval(a, b) together with the lower
// distribution value da the Genz chain step combines it with
// (u = da + w·dif), sharing erfc evaluations between the two. dif is
// bit-identical to PhiInterval in every branch. da is Phi(a) except in two
// places where a cheaper exact-complement form is used: for the half-open
// interval (a, +∞) with a ≥ 0, da = 1 − dif (one erfc instead of two,
// within one ulp of Phi(a)); and when dif ≤ 0, da is 0 and must not be used
// (the chain is dead and the step never forms u). The scalar chainStep and
// the batched kernel both evaluate through this function, so their values
// agree exactly.
//repro:noalloc
func PhiIntervalAndPhi(a, b float64) (dif, da float64) {
	switch {
	case b <= a:
		return 0, 0
	case math.IsInf(b, 1):
		// Half-open exceedance interval — the excursion/prefix query shape:
		// one tail erfc serves both quantities.
		if a >= 0 {
			dif = 0.5 * math.Erfc(a/Sqrt2)
			return dif, 1 - dif
		}
		da = 0.5 * math.Erfc(-a/Sqrt2)
		return 1 - da, da
	case a >= 0: // right tail
		return 0.5 * (math.Erfc(a/Sqrt2) - math.Erfc(b/Sqrt2)), 0.5 * math.Erfc(-a/Sqrt2)
	case b <= 0: // left tail: Φ(a) shares the interval's erfc(−a/√2)
		ea := math.Erfc(-a / Sqrt2)
		return 0.5 * (math.Erfc(-b/Sqrt2) - ea), 0.5 * ea
	default: // straddles zero
		da = 0.5 * math.Erfc(-a/Sqrt2)
		return 0.5*math.Erfc(-b/Sqrt2) - da, da
	}
}

// PhiIntervalPhiBatch fills dif[i], da[i] = PhiIntervalAndPhi(a[i], b[i])
// over contiguous lane vectors. Slices must have equal length; dif and da
// may alias a or b.
//repro:noalloc
func PhiIntervalPhiBatch(a, b, dif, da []float64) {
	b = b[:len(a)]
	dif = dif[:len(a)]
	da = da[:len(a)]
	for i, ai := range a {
		dif[i], da[i] = PhiIntervalAndPhi(ai, b[i])
	}
}

// PhiInvBatch fills dst[i] = PhiInv(p[i]). The central region
// |p−1/2| ≤ 0.425 — the bulk of uniform QMC draws — is a single rational
// polynomial evaluated in a branch-light pass; tails, endpoints and invalid
// inputs fall back to the scalar PhiInv (NaN compares false, so it lands in
// the fallback too). p and dst must have equal length and may alias.
//repro:noalloc
func PhiInvBatch(p, dst []float64) {
	dst = dst[:len(p)]
	for i, v := range p {
		q := v - 0.5
		if q >= -0.425 && q <= 0.425 {
			r := 0.180625 - q*q
			dst[i] = q * poly8(&ppnd16A, r) / poly8(&ppnd16B, r)
		} else {
			dst[i] = PhiInv(v)
		}
	}
}
