// AVX2+FMA batch special-function kernels (see spec_amd64.go for the Go
// declarations and batch.go for the dispatchers).
//
// erfcSimd evaluates 4 lanes of erfc per iteration with the FDLIBM region
// scheme (the same rational approximations math.Erfc uses), made branch-free
// across lanes: the three region results are computed for every lane and
// mask-blended. The central regions
//
//	|x| <  0.84375          erf  = x + x·pp(x²)/qq(x²)
//	|x| ∈ [0.84375, 1.25)   erf  = erx + pa(|x|−1)/qa(|x|−1)
//
// combine into erfc = 1 − (erf ⊕ sign(x)), and the tail region
//
//	|x| ∈ [1.25, ∞)         erfc = exp(−x² − 0.5625 + R(1/x²)/S(1/x²))/|x|
//
// blends the ra/sa and rb/sb rationals BEFORE its single division and uses
// one vector exp (FDLIBM splits the exponential in two to stay exact; the
// single-split form costs ~x²·ε relative error, bounded by the documented
// tolerance in batch.go). The exp argument is clamped at −708 so the 2^k
// scale stays normal; erfc results below ~1e-305 may therefore be inflated
// by up to ~1.3e-309 absolute (they underflow toward DBL_MIN/|x| instead of
// true subnormal/zero). NaN lanes fall out of all region masks and inherit
// the NaN the central polynomials propagate; ±Inf lanes ride the tail
// region's exp(−Inf)/Inf → 0 and 2−0.
//
// The whole tail region is skipped (VMOVMSKPD) when no lane needs it — the
// common case for the sweep's central conditioning values — saving the two
// rationals, the divisions and the exp.
//
// specTab layout (Go side fills it; every constant replicated ×4 so FMA/cmp
// memory operands broadcast for free):
//
//	idx  0 absMask   1 one      2 two      3 erx     4 0.84375  5 1.25
//	     6 1/0.35    7..11 pp0..pp4       12..16 qq1..qq5
//	    17..23 pa0..pa6                   24..29 qa1..qa6
//	    30..37 ra0..ra7                   38..45 sa1..sa8
//	    46..52 rb0..rb6                   53..59 sb1..sb7
//	    60 log2e    61 ln2hi   62 ln2lo   63..67 expP1..expP5
//	    68 2^52+1023  69 −708  70 0.5625  71 0.5    72 0.180625
//	    73..80 ppnd16A[0..7]              81..87 ppnd16B[1..7]

#include "textflag.h"

#define C_ABS   0(R15)
#define C_ONE   32(R15)
#define C_TWO   64(R15)
#define C_ERX   96(R15)
#define C_T1    128(R15)
#define C_T2    160(R15)
#define C_TAB   192(R15)
#define C_PP0   224(R15)
#define C_PP1   256(R15)
#define C_PP2   288(R15)
#define C_PP3   320(R15)
#define C_PP4   352(R15)
#define C_QQ1   384(R15)
#define C_QQ2   416(R15)
#define C_QQ3   448(R15)
#define C_QQ4   480(R15)
#define C_QQ5   512(R15)
#define C_PA0   544(R15)
#define C_PA1   576(R15)
#define C_PA2   608(R15)
#define C_PA3   640(R15)
#define C_PA4   672(R15)
#define C_PA5   704(R15)
#define C_PA6   736(R15)
#define C_QA1   768(R15)
#define C_QA2   800(R15)
#define C_QA3   832(R15)
#define C_QA4   864(R15)
#define C_QA5   896(R15)
#define C_QA6   928(R15)
#define C_RA0   960(R15)
#define C_RA1   992(R15)
#define C_RA2   1024(R15)
#define C_RA3   1056(R15)
#define C_RA4   1088(R15)
#define C_RA5   1120(R15)
#define C_RA6   1152(R15)
#define C_RA7   1184(R15)
#define C_SA1   1216(R15)
#define C_SA2   1248(R15)
#define C_SA3   1280(R15)
#define C_SA4   1312(R15)
#define C_SA5   1344(R15)
#define C_SA6   1376(R15)
#define C_SA7   1408(R15)
#define C_SA8   1440(R15)
#define C_RB0   1472(R15)
#define C_RB1   1504(R15)
#define C_RB2   1536(R15)
#define C_RB3   1568(R15)
#define C_RB4   1600(R15)
#define C_RB5   1632(R15)
#define C_RB6   1664(R15)
#define C_SB1   1696(R15)
#define C_SB2   1728(R15)
#define C_SB3   1760(R15)
#define C_SB4   1792(R15)
#define C_SB5   1824(R15)
#define C_SB6   1856(R15)
#define C_SB7   1888(R15)
#define C_LOG2E 1920(R15)
#define C_LN2HI 1952(R15)
#define C_LN2LO 1984(R15)
#define C_EP1   2016(R15)
#define C_EP2   2048(R15)
#define C_EP3   2080(R15)
#define C_EP4   2112(R15)
#define C_EP5   2144(R15)
#define C_KBIAS 2176(R15)
#define C_UFLOW 2208(R15)
#define C_C5625 2240(R15)
#define C_HALF  2272(R15)
#define C_R018  2304(R15)
#define C_A0    2336(R15)
#define C_A1    2368(R15)
#define C_A2    2400(R15)
#define C_A3    2432(R15)
#define C_A4    2464(R15)
#define C_A5    2496(R15)
#define C_A6    2528(R15)
#define C_A7    2560(R15)
#define C_B1    2592(R15)
#define C_B2    2624(R15)
#define C_B3    2656(R15)
#define C_B4    2688(R15)
#define C_B5    2720(R15)
#define C_B6    2752(R15)
#define C_B7    2784(R15)

// func statsCPUHasAVX2FMA() bool
TEXT ·statsCPUHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVQ $1, AX
	XORQ CX, CX
	CPUID
	// Need FMA (CX bit 12) and OSXSAVE (CX bit 27).
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27), R8
	CMPL R8, $(1<<12 | 1<<27)
	JNE  no
	// OS must have enabled XMM+YMM state (XCR0 bits 1 and 2).
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// AVX2: leaf 7 subleaf 0, BX bit 5.
	MOVQ $7, AX
	XORQ CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func erfcSimd(n int, x, dst *float64, mulIn, mulOut float64)
//
// dst[i] = mulOut·erfc(mulIn·x[i]) for i < n; n must be a positive multiple
// of 4. x and dst may alias exactly (each block is fully loaded before its
// store).
TEXT ·erfcSimd(SB), NOSPLIT, $0-40
	MOVQ n+0(FP), CX
	MOVQ x+8(FP), SI
	MOVQ dst+16(FP), DI
	MOVQ $·specTab(SB), R15
	VBROADCASTSD mulIn+24(FP), Y14
	VBROADCASTSD mulOut+32(FP), Y13

eloop:
	VMOVUPD (SI), Y0
	VMULPD  Y14, Y0, Y0            // x ← mulIn·x
	VANDPD  C_ABS, Y0, Y1          // t = |x|

	// Region masks.
	VMOVUPD C_T1, Y2
	VCMPPD  $1, Y2, Y1, Y2         // maskR1: t < 0.84375
	VMOVUPD C_T2, Y3
	VCMPPD  $13, Y3, Y1, Y3        // maskR3: t ≥ 1.25

	// Regions 1+2: E = erf(t), then erfc = 1 − (E ⊕ sign(x)).
	VMULPD  Y1, Y1, Y5             // z = t²
	VMOVUPD C_PP4, Y6
	VFMADD213PD C_PP3, Y5, Y6
	VFMADD213PD C_PP2, Y5, Y6
	VFMADD213PD C_PP1, Y5, Y6
	VFMADD213PD C_PP0, Y5, Y6      // pp(z)
	VMOVUPD C_QQ5, Y7
	VFMADD213PD C_QQ4, Y5, Y7
	VFMADD213PD C_QQ3, Y5, Y7
	VFMADD213PD C_QQ2, Y5, Y7
	VFMADD213PD C_QQ1, Y5, Y7
	VFMADD213PD C_ONE, Y5, Y7      // qq(z) = 1 + z·(…)
	VDIVPD  Y7, Y6, Y6             // r = pp/qq
	VFMADD213PD Y1, Y1, Y6         // E1 = t·r + t

	VMOVUPD C_ONE, Y8
	VSUBPD  Y8, Y1, Y5             // s = t − 1
	VMOVUPD C_PA6, Y8
	VFMADD213PD C_PA5, Y5, Y8
	VFMADD213PD C_PA4, Y5, Y8
	VFMADD213PD C_PA3, Y5, Y8
	VFMADD213PD C_PA2, Y5, Y8
	VFMADD213PD C_PA1, Y5, Y8
	VFMADD213PD C_PA0, Y5, Y8      // pa(s)
	VMOVUPD C_QA6, Y9
	VFMADD213PD C_QA5, Y5, Y9
	VFMADD213PD C_QA4, Y5, Y9
	VFMADD213PD C_QA3, Y5, Y9
	VFMADD213PD C_QA2, Y5, Y9
	VFMADD213PD C_QA1, Y5, Y9
	VFMADD213PD C_ONE, Y5, Y9      // qa(s) = 1 + s·(…)
	VDIVPD  Y9, Y8, Y8
	VADDPD  C_ERX, Y8, Y8          // E2 = erx + pa/qa

	VBLENDVPD Y2, Y6, Y8, Y4       // E = maskR1 ? E1 : E2
	VMOVUPD C_ABS, Y5
	VANDNPD Y0, Y5, Y5             // sign bit of x
	VXORPD  Y4, Y5, Y5             // ±E
	VMOVUPD C_ONE, Y4
	VSUBPD  Y5, Y4, Y4             // res12 = 1 − ±E

	// Region 3, only when some lane has t ≥ 1.25.
	VMOVMSKPD Y3, AX
	TESTL   AX, AX
	JE      eblend

	VMULPD  Y1, Y1, Y5             // z = t²
	VMOVUPD C_ONE, Y6
	VDIVPD  Y5, Y6, Y6             // s = 1/t²
	VMOVUPD C_RA7, Y7
	VFMADD213PD C_RA6, Y6, Y7
	VFMADD213PD C_RA5, Y6, Y7
	VFMADD213PD C_RA4, Y6, Y7
	VFMADD213PD C_RA3, Y6, Y7
	VFMADD213PD C_RA2, Y6, Y7
	VFMADD213PD C_RA1, Y6, Y7
	VFMADD213PD C_RA0, Y6, Y7      // Ra(s)
	VMOVUPD C_SA8, Y8
	VFMADD213PD C_SA7, Y6, Y8
	VFMADD213PD C_SA6, Y6, Y8
	VFMADD213PD C_SA5, Y6, Y8
	VFMADD213PD C_SA4, Y6, Y8
	VFMADD213PD C_SA3, Y6, Y8
	VFMADD213PD C_SA2, Y6, Y8
	VFMADD213PD C_SA1, Y6, Y8
	VFMADD213PD C_ONE, Y6, Y8      // Sa(s) = 1 + s·(…)
	VMOVUPD C_RB6, Y9
	VFMADD213PD C_RB5, Y6, Y9
	VFMADD213PD C_RB4, Y6, Y9
	VFMADD213PD C_RB3, Y6, Y9
	VFMADD213PD C_RB2, Y6, Y9
	VFMADD213PD C_RB1, Y6, Y9
	VFMADD213PD C_RB0, Y6, Y9      // Rb(s)
	VMOVUPD C_SB7, Y10
	VFMADD213PD C_SB6, Y6, Y10
	VFMADD213PD C_SB5, Y6, Y10
	VFMADD213PD C_SB4, Y6, Y10
	VFMADD213PD C_SB3, Y6, Y10
	VFMADD213PD C_SB2, Y6, Y10
	VFMADD213PD C_SB1, Y6, Y10
	VFMADD213PD C_ONE, Y6, Y10     // Sb(s) = 1 + s·(…)
	VMOVUPD C_TAB, Y11
	VCMPPD  $1, Y11, Y1, Y11       // t < 1/0.35 → ra/sa, else rb/sb
	VBLENDVPD Y11, Y7, Y9, Y7      // R
	VBLENDVPD Y11, Y8, Y10, Y8     // S
	VDIVPD  Y8, Y7, Y7             // R/S
	VSUBPD  C_C5625, Y7, Y7
	VSUBPD  Y5, Y7, Y7             // arg = R/S − 0.5625 − t²

	// exp(arg) → Y7 (FDLIBM kernel, one split; arg clamped ≥ −708 so the
	// 2^k scale stays a normal float).
	VMAXPD  C_UFLOW, Y7, Y7
	VMULPD  C_LOG2E, Y7, Y8
	VROUNDPD $0, Y8, Y8            // k
	VMOVAPD Y7, Y9
	VFNMADD231PD C_LN2HI, Y8, Y9   // hi = arg − k·ln2hi
	VMULPD  C_LN2LO, Y8, Y10       // lo = k·ln2lo
	VSUBPD  Y10, Y9, Y11           // rr = hi − lo
	VMULPD  Y11, Y11, Y12          // rr²
	VMOVUPD C_EP5, Y7
	VFMADD213PD C_EP4, Y12, Y7
	VFMADD213PD C_EP3, Y12, Y7
	VFMADD213PD C_EP2, Y12, Y7
	VFMADD213PD C_EP1, Y12, Y7    // pe(rr²)
	VMOVAPD Y11, Y5
	VFNMADD231PD Y7, Y12, Y5      // c = rr − rr²·pe
	VMOVUPD C_TWO, Y6
	VSUBPD  Y5, Y6, Y6            // 2 − c
	VMULPD  Y5, Y11, Y5           // rr·c
	VDIVPD  Y6, Y5, Y5            // q = rr·c/(2−c)
	VSUBPD  Y5, Y10, Y10          // lo − q
	VSUBPD  Y9, Y10, Y10          // (lo−q) − hi
	VMOVUPD C_ONE, Y9
	VSUBPD  Y10, Y9, Y9           // y = 1 − ((lo−q) − hi)
	VADDPD  C_KBIAS, Y8, Y8       // k + (2^52 + 1023)
	VPSLLQ  $52, Y8, Y8           // 2^k bit pattern
	VMULPD  Y8, Y9, Y7            // e = y·2^k

	VDIVPD  Y1, Y7, Y7            // r3 = e/t
	VXORPD  Y8, Y8, Y8
	VCMPPD  $1, Y8, Y0, Y8        // x < 0
	VMOVUPD C_TWO, Y9
	VSUBPD  Y7, Y9, Y9            // 2 − r3
	VBLENDVPD Y8, Y9, Y7, Y7      // res3
	VBLENDVPD Y3, Y7, Y4, Y4      // res = maskR3 ? res3 : res12

eblend:
	VMULPD  Y13, Y4, Y4            // mulOut·erfc
	VMOVUPD Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JG      eloop
	VZEROUPPER
	RET

// func phiInvCentralSimd(n int, p, dst *float64)
//
// Evaluates the AS241 PPND16 central rational q·A(r)/B(r), q = p−½,
// r = 0.180625−q², for EVERY lane — lanes outside |q| ≤ 0.425 produce
// garbage the Go dispatcher overwrites with the scalar tail path. n must be
// a positive multiple of 4; p and dst may alias exactly.
TEXT ·phiInvCentralSimd(SB), NOSPLIT, $0-24
	MOVQ n+0(FP), CX
	MOVQ p+8(FP), SI
	MOVQ dst+16(FP), DI
	MOVQ $·specTab(SB), R15

ploop:
	VMOVUPD (SI), Y0
	VSUBPD  C_HALF, Y0, Y0        // q = p − 0.5
	VMULPD  Y0, Y0, Y1            // q²  (unfused, matching the scalar)
	VMOVUPD C_R018, Y2
	VSUBPD  Y1, Y2, Y1            // r = 0.180625 − q²
	VMOVUPD C_A7, Y2
	VFMADD213PD C_A6, Y1, Y2
	VFMADD213PD C_A5, Y1, Y2
	VFMADD213PD C_A4, Y1, Y2
	VFMADD213PD C_A3, Y1, Y2
	VFMADD213PD C_A2, Y1, Y2
	VFMADD213PD C_A1, Y1, Y2
	VFMADD213PD C_A0, Y1, Y2      // A(r)
	VMOVUPD C_B7, Y3
	VFMADD213PD C_B6, Y1, Y3
	VFMADD213PD C_B5, Y1, Y3
	VFMADD213PD C_B4, Y1, Y3
	VFMADD213PD C_B3, Y1, Y3
	VFMADD213PD C_B2, Y1, Y3
	VFMADD213PD C_B1, Y1, Y3
	VFMADD213PD C_ONE, Y1, Y3     // B(r), B[0] = 1
	VMULPD  Y2, Y0, Y0            // q·A
	VDIVPD  Y3, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JG      ploop
	VZEROUPPER
	RET
