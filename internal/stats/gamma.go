package stats

import "math"

// GammaP returns the regularized lower incomplete gamma function
// P(a,x) = γ(a,x)/Γ(a) for a > 0, x ≥ 0, using the series expansion for
// x < a+1 and the Lentz continued fraction for the complement otherwise.
// It is the backbone of the χ² distribution used by the Student-t (MVT)
// extension of the SOV algorithm.
//repro:noalloc
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a,x) = 1 − P(a,x).
//repro:noalloc
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) by its power series (x < a+1).
//repro:noalloc
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) by the modified Lentz continued fraction
// (x ≥ a+1).
//repro:noalloc
func gammaCF(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// GammaPInv returns x such that P(a,x) = p, by a Wilson–Hilferty initial
// guess refined with Halley iterations (cf. Numerical Recipes invgammp).
//repro:noalloc
func GammaPInv(a, p float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}
	lg, _ := math.Lgamma(a)
	a1 := a - 1
	var lna1, afac float64
	if a > 1 {
		lna1 = math.Log(a1)
		afac = math.Exp(a1*(lna1-1) - lg)
	}
	var x float64
	if a > 1 {
		// Wilson–Hilferty.
		gau := PhiInv(p)
		t := math.Sqrt(a)
		x = 1 - 1/(9*a) + gau/(3*t)
		x = a * x * x * x
		if x <= 0 {
			x = 1e-8
		}
	} else {
		t := 1 - a*(0.253+a*0.12)
		if p < t {
			x = math.Pow(p/t, 1/a)
		} else {
			x = 1 - math.Log(1-(p-t)/(1-t))
		}
	}
	const eps = 1e-12
	for it := 0; it < 20; it++ {
		if x <= 0 {
			return 0
		}
		err := GammaP(a, x) - p
		var t float64
		if a > 1 {
			t = afac * math.Exp(-(x-a1)+a1*(math.Log(x)-lna1))
		} else {
			t = math.Exp(-x + a1*math.Log(x) - lg)
		}
		if t == 0 {
			break
		}
		u := err / t
		// Halley step.
		step := u / (1 - 0.5*math.Min(1, u*(a1/x-1)))
		x -= step
		if x <= 0 {
			x = 0.5 * (x + step) // bisect back into the domain
		}
		if math.Abs(step) < eps*x {
			break
		}
	}
	return x
}

// Chi2Inv returns the p-quantile of the χ² distribution with k degrees of
// freedom.
//repro:noalloc
func Chi2Inv(p, k float64) float64 {
	return 2 * GammaPInv(k/2, p)
}

// StudentTCDF returns P(T ≤ t) for the Student-t distribution with ν > 0
// degrees of freedom, via the regularized incomplete beta function
// evaluated through its continued fraction.
func StudentTCDF(t, nu float64) float64 {
	if math.IsNaN(t) || nu <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := nu / (nu + t*t)
	ib := 0.5 * incBeta(nu/2, 0.5, x)
	if t >= 0 {
		return 1 - ib
	}
	return ib
}

// incBeta is the regularized incomplete beta function I_x(a,b).
func incBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF is the Lentz continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 300; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}
