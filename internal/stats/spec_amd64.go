//go:build amd64

package stats

import (
	"math"
	"os"
)

// statsCPUHasAVX2FMA reports whether the CPU and OS support the AVX2+FMA
// special-function kernels in spec_amd64.s (the same probe internal/linalg
// runs for its micro-kernels; duplicated so stats stays dependency-free).
func statsCPUHasAVX2FMA() bool

// erfcSimd fills dst[0:n] with mulOut·erfc(mulIn·x[i]) using the 4-lane AVX2
// kernel. n must be a positive multiple of 4; x and dst may alias exactly.
//
//go:noescape
//repro:noalloc
func erfcSimd(n int, x, dst *float64, mulIn, mulOut float64)

// phiInvCentralSimd evaluates the AS241 central rational q·A(r)/B(r) for
// every lane of p[0:n], including lanes outside the central region
// |p−½| ≤ 0.425 whose garbage values the dispatcher overwrites. n must be a
// positive multiple of 4; p and dst may alias exactly.
//
//go:noescape
//repro:noalloc
func phiInvCentralSimd(n int, p, dst *float64)

// hasVecSpecials gates the batch dispatchers in batch.go onto the AVX2
// kernels. Setting REPRO_NOASM to any non-empty value forces the portable
// scalar path, so the fallback stays continuously testable on
// vector-capable hosts (mirrors the switch in internal/linalg).
var hasVecSpecials = statsCPUHasAVX2FMA() && os.Getenv("REPRO_NOASM") == ""

// specTab holds every constant the vector kernels use, each replicated ×4 so
// the assembly's FMA/compare memory operands read a broadcast lane block
// directly. The index layout is documented at the top of spec_amd64.s; the
// FDLIBM coefficients are the ones math.Erfc and math.Exp use.
var specTab [88 * 4]float64

func init() {
	var vals [88]float64
	copy(vals[:], []float64{
		math.Float64frombits(0x7FFFFFFFFFFFFFFF), // 0: |x| mask
		1,                           // 1
		2,                           // 2
		8.45062911510467529297e-01,  // 3: erx = erf(0.84375)
		0.84375,                     // 4: region-1/2 boundary
		1.25,                        // 5: region-2/3 boundary
		1 / 0.35,                    // 6: ra/sa vs rb/sb boundary
		1.28379167095512558561e-01,  // 7: pp0
		-3.25042107247001499370e-01, // pp1
		-2.84817495755985104766e-02, // pp2
		-5.77027029648944159157e-03, // pp3
		-2.37630166566501626084e-05, // pp4
		3.97917223959155352819e-01,  // 12: qq1
		6.50222499887672944485e-02,  // qq2
		5.08130628187576562776e-03,  // qq3
		1.32494738004321644526e-04,  // qq4
		-3.96022827877536812320e-06, // qq5
		-2.36211856075265944077e-03, // 17: pa0
		4.14856118683748331666e-01,  // pa1
		-3.72207876035701323847e-01, // pa2
		3.18346619901161753674e-01,  // pa3
		-1.10894694282396677476e-01, // pa4
		3.54783043256182359371e-02,  // pa5
		-2.16637559486879084300e-03, // pa6
		1.06420880400844228286e-01,  // 24: qa1
		5.40397917702171048937e-01,  // qa2
		7.18286544141962662868e-02,  // qa3
		1.26171219808761642112e-01,  // qa4
		1.36370839120290507362e-02,  // qa5
		1.19844998467991074170e-02,  // qa6
		-9.86494403484714822705e-03, // 30: ra0
		-6.93858572707181764372e-01, // ra1
		-1.05586262253232909814e+01, // ra2
		-6.23753324503260060396e+01, // ra3
		-1.62396669462573470355e+02, // ra4
		-1.84605092906711035994e+02, // ra5
		-8.12874355063065934246e+01, // ra6
		-9.81432934416914548592e+00, // ra7
		1.96512716674392571292e+01,  // 38: sa1
		1.37657754143519042600e+02,  // sa2
		4.34565877475229228821e+02,  // sa3
		6.45387271733267880336e+02,  // sa4
		4.29008140027567833386e+02,  // sa5
		1.08635005541779435134e+02,  // sa6
		6.57024977031928170135e+00,  // sa7
		-6.04244152148580987438e-02, // sa8
		-9.86494292470009928597e-03, // 46: rb0
		-7.99283237680523006574e-01, // rb1
		-1.77579549177547519889e+01, // rb2
		-1.60636384855821916062e+02, // rb3
		-6.37566443368389627722e+02, // rb4
		-1.02509513161107724954e+03, // rb5
		-4.83519191608651397019e+02, // rb6
		3.03380607434824582924e+01,  // 53: sb1
		3.25792512996573918826e+02,  // sb2
		1.53672958608443695994e+03,  // sb3
		3.19985821950859553908e+03,  // sb4
		2.55305040643316442583e+03,  // sb5
		4.74528541206955367215e+02,  // sb6
		-2.24409524465858183362e+01, // sb7
		1.44269504088896338700e+00,  // 60: log2(e)
		6.93147180369123816490e-01,  // 61: ln2 hi
		1.90821492927058770002e-10,  // 62: ln2 lo
		1.66666666666666657415e-01,  // 63: exp P1
		-2.77777777770155933842e-03, // exp P2
		6.61375632143793436117e-05,  // exp P3
		-1.65339022054652515390e-06, // exp P4
		4.13813679705723846039e-08,  // exp P5
		4503599627370496.0 + 1023,   // 68: 2^52 + exponent bias
		-708.0,                      // 69: exp underflow clamp
		0.5625,                      // 70
		0.5,                         // 71
		0.180625,                    // 72
	})
	copy(vals[73:81], ppnd16A[:])
	copy(vals[81:88], ppnd16B[1:])
	for i, v := range vals {
		for l := 0; l < 4; l++ {
			specTab[4*i+l] = v
		}
	}
}
