package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestPhiKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
		{-3, 0.0013498980316300933},
		{6, 0.9999999990134124},
	}
	for _, c := range cases {
		if got := Phi(c.x); !almostEq(got, c.want, 1e-14) {
			t.Errorf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPhiTails(t *testing.T) {
	// Deep left tail must not underflow to zero prematurely and must match
	// the erfc-based asymptotics.
	if p := Phi(-10); !almostEq(p, 7.619853024160526e-24, 1e-12) {
		t.Errorf("Phi(-10) = %v", p)
	}
	if p := Phi(-37); p <= 0 {
		t.Errorf("Phi(-37) underflowed to %v", p)
	}
	if p := Phi(10); p != 1 && !almostEq(p, 1, 1e-15) {
		t.Errorf("Phi(10) = %v", p)
	}
}

func TestPhiDensityIntegratesToPhi(t *testing.T) {
	// Simpson integration of the density should reproduce Phi differences.
	integ := func(a, b float64, n int) float64 {
		h := (b - a) / float64(n)
		s := PhiDensity(a) + PhiDensity(b)
		for i := 1; i < n; i++ {
			x := a + float64(i)*h
			if i%2 == 1 {
				s += 4 * PhiDensity(x)
			} else {
				s += 2 * PhiDensity(x)
			}
		}
		return s * h / 3
	}
	for _, pair := range [][2]float64{{-1, 1}, {0, 2.5}, {-3, -0.5}} {
		want := Phi(pair[1]) - Phi(pair[0])
		got := integ(pair[0], pair[1], 2000)
		if !almostEq(got, want, 1e-10) {
			t.Errorf("∫φ over %v = %v, want %v", pair, got, want)
		}
	}
}

func TestPhiIntervalMatchesDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.NormFloat64() * 2
		b := a + math.Abs(rng.NormFloat64())
		want := Phi(b) - Phi(a)
		got := PhiInterval(a, b)
		if !almostEq(got, want, 1e-13) {
			t.Fatalf("PhiInterval(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestPhiIntervalTailStability(t *testing.T) {
	// In the far right tail a naive Φ(b)-Φ(a) cancels to zero; the interval
	// form must retain relative accuracy. Reference via erfc directly.
	a, b := 10.0, 11.0
	want := 0.5 * (math.Erfc(a/Sqrt2) - math.Erfc(b/Sqrt2))
	if got := PhiInterval(a, b); !almostEq(got, want, 1e-14) || got <= 0 {
		t.Errorf("PhiInterval(10,11) = %v, want %v", got, want)
	}
	if got := PhiInterval(-11, -10); !almostEq(got, want, 1e-14) {
		t.Errorf("PhiInterval(-11,-10) = %v, want %v (symmetry)", got, want)
	}
	if got := PhiInterval(3, 2); got != 0 {
		t.Errorf("PhiInterval(3,2) = %v, want 0 for reversed limits", got)
	}
}

func TestPhiInvKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
		{0.0013498980316300933, -3},
		{1e-10, -6.361340902404056},
		{0.9, 1.2815515655446004},
	}
	for _, c := range cases {
		if got := PhiInv(c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("PhiInv(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPhiInvEdgeCases(t *testing.T) {
	if !math.IsInf(PhiInv(0), -1) {
		t.Error("PhiInv(0) should be -Inf")
	}
	if !math.IsInf(PhiInv(1), +1) {
		t.Error("PhiInv(1) should be +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(PhiInv(p)) {
			t.Errorf("PhiInv(%v) should be NaN", p)
		}
	}
}

func TestPhiInvRoundTrip(t *testing.T) {
	f := func(u float64) bool {
		p := math.Abs(math.Mod(u, 1)) // p in [0,1)
		if p == 0 {
			p = 0.5
		}
		x := PhiInv(p)
		return almostEq(Phi(x), p, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPhiInvMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 1e-8; p < 1; p += 1e-4 {
		x := PhiInv(p)
		if x < prev {
			t.Fatalf("PhiInv not monotone at p=%v: %v < %v", p, x, prev)
		}
		prev = x
	}
}

// besselKIntegral is an independent oracle: K_ν(x) = ∫₀^∞ e^{-x·cosh t}·cosh(νt) dt,
// evaluated with composite Simpson on a truncated domain.
func besselKIntegral(nu, x float64) float64 {
	f := func(tt float64) float64 {
		return math.Exp(-x*math.Cosh(tt)) * math.Cosh(nu*tt)
	}
	// Integrand decays like exp(-x·e^t/2); pick T so x·cosh(T) ≥ 750.
	T := math.Acosh(math.Max(750/x, 2))
	const n = 200000
	h := T / n
	s := f(0) + f(T)
	for i := 1; i < n; i++ {
		if i%2 == 1 {
			s += 4 * f(float64(i)*h)
		} else {
			s += 2 * f(float64(i)*h)
		}
	}
	return s * h / 3
}

func TestBesselKKnownValues(t *testing.T) {
	cases := []struct{ nu, x, want float64 }{
		{0, 1, 0.42102443824070834},
		{1, 1, 0.6019072301972346},
		{0, 2, 0.11389387274953344},
		{1, 2, 0.13986588181652243},
		{2, 1, 1.6248388986351774},
	}
	for _, c := range cases {
		if got := BesselK(c.nu, c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("BesselK(%v,%v) = %v, want %v", c.nu, c.x, got, c.want)
		}
	}
}

func TestBesselKHalfIntegerClosedForms(t *testing.T) {
	for _, x := range []float64{0.05, 0.3, 1, 2.5, 7, 30} {
		k12 := math.Sqrt(math.Pi/(2*x)) * math.Exp(-x)
		k32 := k12 * (1 + 1/x)
		k52 := k12 * (1 + 3/x + 3/(x*x))
		if got := BesselK(0.5, x); !almostEq(got, k12, 1e-13) {
			t.Errorf("K_1/2(%v) = %v, want %v", x, got, k12)
		}
		if got := BesselK(1.5, x); !almostEq(got, k32, 1e-13) {
			t.Errorf("K_3/2(%v) = %v, want %v", x, got, k32)
		}
		if got := BesselK(2.5, x); !almostEq(got, k52, 1e-13) {
			t.Errorf("K_5/2(%v) = %v, want %v", x, got, k52)
		}
	}
}

func TestBesselKAgainstIntegral(t *testing.T) {
	if testing.Short() {
		t.Skip("quadrature oracle is slow")
	}
	for _, c := range []struct{ nu, x float64 }{
		{0.3, 0.5}, {0.3, 3}, {1.43391, 0.8}, {1.43391, 4},
		{2.2, 1.7}, {3.7, 2.1}, {0.01, 1.2}, {5.5, 9},
	} {
		want := besselKIntegral(c.nu, c.x)
		got := BesselK(c.nu, c.x)
		if !almostEq(got, want, 1e-9) {
			t.Errorf("BesselK(%v,%v) = %v, integral oracle %v", c.nu, c.x, got, want)
		}
	}
}

func TestBesselKRecurrence(t *testing.T) {
	// K_{ν+1}(x) = K_{ν-1}(x) + (2ν/x)·K_ν(x) must hold across the
	// Temme/CF2 boundary and for fractional orders.
	for _, x := range []float64{0.3, 1.5, 1.9999, 2.0001, 6, 20} {
		for _, nu := range []float64{0.7, 1.2, 2.3, 3.9} {
			lhs := BesselK(nu+1, x)
			rhs := BesselK(nu-1, x) + (2*nu/x)*BesselK(nu, x)
			if !almostEq(lhs, rhs, 1e-10) {
				t.Errorf("recurrence fails at ν=%v x=%v: %v vs %v", nu, x, lhs, rhs)
			}
		}
	}
}

func TestBesselKBoundaryContinuity(t *testing.T) {
	// The x=2 algorithm switch must be seamless.
	for _, nu := range []float64{0, 0.25, 1.43391, 3.2} {
		lo := BesselK(nu, 2-1e-9)
		hi := BesselK(nu, 2+1e-9)
		if !almostEq(lo, hi, 1e-7) {
			t.Errorf("discontinuity at x=2 for ν=%v: %v vs %v", nu, lo, hi)
		}
	}
	// The half-integer fast path must agree with the general path nearby.
	g := BesselK(1.5000001, 1.3)
	h := BesselK(1.5, 1.3)
	if !almostEq(g, h, 1e-5) {
		t.Errorf("half-integer path inconsistent: %v vs %v", g, h)
	}
}

func TestBesselKEdgeCases(t *testing.T) {
	if !math.IsInf(BesselK(0.5, 0), 1) {
		t.Error("BesselK(ν,0) should be +Inf")
	}
	if got, want := BesselK(-1, 1), BesselK(1, 1); got != want {
		t.Errorf("BesselK(-1,1) = %v, want %v (even symmetry)", got, want)
	}
	if !math.IsNaN(BesselK(1, -1)) {
		t.Error("BesselK(1,-1) should be NaN")
	}
	if v := BesselK(0.5, 800); v != 0 && !almostEq(v, 0, 1e-300) {
		// deep underflow is fine; must not be NaN
		if math.IsNaN(v) {
			t.Error("BesselK(0.5,800) is NaN")
		}
	}
}

func TestBesselKScaled(t *testing.T) {
	for _, c := range []struct{ nu, x float64 }{{0.5, 1}, {1.5, 10}, {0.3, 50}, {2.5, 200}} {
		want := BesselK(c.nu, c.x) * math.Exp(c.x)
		got := BesselKScaled(c.nu, c.x)
		if !almostEq(got, want, 1e-10) {
			t.Errorf("BesselKScaled(%v,%v) = %v, want %v", c.nu, c.x, got, want)
		}
	}
	// Far beyond the underflow point the scaled version must stay finite and
	// close to the asymptotic sqrt(π/2x).
	v := BesselKScaled(0.5, 2000)
	want := math.Sqrt(math.Pi / (2 * 2000.0))
	if !almostEq(v, want, 1e-10) {
		t.Errorf("BesselKScaled(0.5,2000) = %v, want %v", v, want)
	}
}

func TestBesselKMonotoneInX(t *testing.T) {
	f := func(raw float64) bool {
		x := 0.1 + math.Abs(math.Mod(raw, 10))
		nu := 1.43391
		return BesselK(nu, x) > BesselK(nu, x+0.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPhi(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += Phi(float64(i%7) - 3)
	}
	_ = s
}

func BenchmarkPhiInv(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += PhiInv(0.1 + 0.0001*float64(i%8000))
	}
	_ = s
}

func BenchmarkBesselK(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += BesselK(1.43391, 0.5+float64(i%100)*0.05)
	}
	_ = s
}
