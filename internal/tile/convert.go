package tile

import "repro/internal/linalg"

// In-place conversion kernels between the tile representations. The
// allocating forms (ToSingle, ToDouble, LowRank.Dense) build their result on
// the Go heap and suit one-off construction; the Into forms write into a
// caller-supplied (typically pooled) destination, so the factorization's
// mixed-representation updates convert operands without allocating per task.

// ToSingleInto converts a into the preallocated float32 matrix dst, which
// must have a's shape.
//repro:noalloc
func ToSingleInto(a *linalg.Matrix, dst *Matrix32) {
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("tile: ToSingleInto shape mismatch")
	}
	for j := 0; j < a.Cols; j++ {
		src := a.Col(j)
		out := dst.Col(j)
		for i, v := range src {
			out[i] = float32(v)
		}
	}
}

// ToDoubleInto converts m into the preallocated float64 matrix dst, which
// must have m's shape.
//repro:noalloc
func (m *Matrix32) ToDoubleInto(dst *linalg.Matrix) {
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic("tile: ToDoubleInto shape mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		out := dst.Col(j)
		for i, v := range src {
			out[i] = float64(v)
		}
	}
}

// DenseInto materializes U·Vᵀ into the preallocated t.M×t.N matrix dst.
//repro:noalloc
func (t *LowRank) DenseInto(dst *linalg.Matrix) {
	if dst.Rows != t.M || dst.Cols != t.N {
		panic("tile: DenseInto shape mismatch")
	}
	if t.Rank() == 0 {
		dst.Zero()
		return
	}
	linalg.Gemm(false, true, 1, t.U, t.V, 0, dst)
}
