package tile

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// lowRankPlusNoise builds an m×n matrix with numerical rank ~r at scale eps.
func lowRankPlusNoise(m, n, r int, eps float64, rng *rand.Rand) *linalg.Matrix {
	u := linalg.NewMatrix(m, r)
	v := linalg.NewMatrix(n, r)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	a := linalg.NewMatrix(m, n)
	linalg.Gemm(false, true, 1, u, v, 0, a)
	for i := range a.Data {
		a.Data[i] += eps * rng.NormFloat64()
	}
	return a
}

// TestCompressRandomizedAccuracy pins the randomized compressor's accuracy
// contract — ‖A − UVᵀ‖_F ≤ O(tol)·‖A‖_F — across shapes (tall, wide,
// square), tolerances and rank caps, against the plain dense product.
func TestCompressRandomizedAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, n int }{{48, 48}, {90, 48}, {48, 90}, {33, 65}, {7, 100}}
	for _, sh := range shapes {
		for _, tol := range []float64{1e-3, 1e-6, 1e-10} {
			a := lowRankPlusNoise(sh.m, sh.n, 9, tol/50, rng)
			lr := Compress(a, tol, 0)
			d := lr.Dense()
			err := 0.0
			for j := 0; j < a.Cols; j++ {
				ac, dc := a.Col(j), d.Col(j)
				for i := range ac {
					e := ac[i] - dc[i]
					err += e * e
				}
			}
			rel := math.Sqrt(err) / a.FrobNorm()
			if rel > 3*tol {
				t.Errorf("m=%d n=%d tol=%g: relative error %g", sh.m, sh.n, tol, rel)
			}
			if lr.Rank() > 20 {
				t.Errorf("m=%d n=%d tol=%g: rank %d for a ~rank-9 matrix", sh.m, sh.n, tol, lr.Rank())
			}
		}
	}
}

// TestCompressMatchesFullSVDRank checks the randomized truncation picks the
// same rank as the full Jacobi SVD reference on clean low-rank inputs, and
// that the rank cap binds.
func TestCompressMatchesFullSVDRank(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := lowRankPlusNoise(60, 44, 12, 1e-9, rng)
	res := linalg.SVD(a)
	want := linalg.TruncationRank(res.S, 1e-4)
	got := Compress(a, 1e-4, 0).Rank()
	if got != want {
		t.Errorf("rank %d, full-SVD reference %d", got, want)
	}
	if r := Compress(a, 1e-4, 5).Rank(); r != 5 {
		t.Errorf("rank cap 5 not binding: got %d", r)
	}
}

// TestCompressEdgeCases: empty, zero and tiny tiles.
func TestCompressEdgeCases(t *testing.T) {
	if r := Compress(linalg.NewMatrix(0, 5), 1e-4, 0).Rank(); r != 0 {
		t.Errorf("empty tile rank %d", r)
	}
	if r := Compress(linalg.NewMatrix(10, 8), 1e-4, 0).Rank(); r != 0 {
		t.Errorf("zero tile rank %d", r)
	}
	one := linalg.NewMatrix(1, 1)
	one.Set(0, 0, 3)
	lr := Compress(one, 1e-6, 0)
	if lr.Rank() != 1 || math.Abs(lr.Dense().At(0, 0)-3) > 1e-12 {
		t.Errorf("1x1 tile mishandled: rank %d", lr.Rank())
	}
}

// TestCompressDeterministic pins run-to-run determinism (the sketch stream
// is keyed by shape only), which the worker-count determinism of the
// adaptive engine relies on.
func TestCompressDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := lowRankPlusNoise(50, 40, 8, 1e-8, rng)
	l1 := Compress(a, 1e-5, 0)
	l2 := Compress(a, 1e-5, 0)
	if l1.Rank() != l2.Rank() {
		t.Fatalf("ranks differ: %d vs %d", l1.Rank(), l2.Rank())
	}
	if l1.Rank() > 0 {
		if d := l1.U.MaxAbsDiff(l2.U); d != 0 {
			t.Errorf("U differs by %g between runs", d)
		}
		if d := l1.V.MaxAbsDiff(l2.V); d != 0 {
			t.Errorf("V differs by %g between runs", d)
		}
	}
}

// TestCompressACAConvergenceFlag pins the budget-exhaustion signal the TLR
// assembly fallback relies on.
func TestCompressACAConvergenceFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Numerically full-rank tile with a budget far below its rank.
	full := linalg.NewMatrix(32, 32)
	for i := range full.Data {
		full.Data[i] = rng.NormFloat64()
	}
	if _, ok := CompressACAConv(32, 32, full.At, 1e-8, 8); ok {
		t.Error("full-rank tile reported converged within rank budget 8")
	}
	// Clean low-rank tile converges within budget.
	lo := lowRankPlusNoise(32, 32, 4, 1e-12, rng)
	lt, ok := CompressACAConv(32, 32, lo.At, 1e-6, 16)
	if !ok {
		t.Error("rank-4 tile did not converge within budget 16")
	}
	d := lt.Dense()
	if diff := d.MaxAbsDiff(lo); diff > 1e-4*lo.FrobNorm() {
		t.Errorf("ACA reconstruction error %g", diff)
	}
}

// TestGemm32BlockedMatchesNaive pins the packed float32 kernel against the
// unpacked loops for both transB variants across ragged sizes. The blocked
// kernel reassociates sums, so agreement is to f32 roundoff.
func TestGemm32BlockedMatchesNaive(t *testing.T) {
	if !linalg.HasVectorKernels() {
		t.Skip("no vector kernels on this platform")
	}
	rng := rand.New(rand.NewSource(11))
	for _, sz := range []struct{ m, n, k int }{{48, 48, 48}, {65, 30, 17}, {16, 96, 40}, {33, 33, 257}} {
		for _, transB := range []bool{false, true} {
			mk := func(r, c int) *Matrix32 {
				x := NewMatrix32(r, c)
				for i := range x.Data {
					x.Data[i] = float32(rng.NormFloat64())
				}
				return x
			}
			a := mk(sz.m, sz.k)
			var b *Matrix32
			if transB {
				b = mk(sz.n, sz.k)
			} else {
				b = mk(sz.k, sz.n)
			}
			want := mk(sz.m, sz.n)
			got := NewMatrix32(sz.m, sz.n)
			copy(got.Data, want.Data)
			gemm32Naive(transB, -1, a, b, want)
			gemm32Blocked(transB, -1, a, b, got, sz.m, sz.n, sz.k)
			for i := range want.Data {
				diff := float64(want.Data[i] - got.Data[i])
				if math.Abs(diff) > 1e-3*float64(sz.k) {
					t.Fatalf("m=%d n=%d k=%d transB=%v: idx %d diff %g", sz.m, sz.n, sz.k, transB, i, diff)
				}
			}
		}
	}
}

// BenchmarkKernelsLowRankUpdate measures the steady-state low-rank update
// (AddLowRank: concat + QR + small SVD + truncate) — the recompression hot
// loop of the TLR/adaptive factorization — with allocation reporting. The
// pre-PR3 implementation allocated ~30 objects per update; the pooled
// workspace path reports (near) zero.
func BenchmarkKernelsLowRankUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	m, k1, k2 := 90, 17, 17
	base := Compress(lowRankPlusNoise(m, m, k1, 1e-9, rng), 1e-6, 0)
	u2 := linalg.NewMatrix(m, k2)
	v2 := linalg.NewMatrix(m, k2)
	for i := range u2.Data {
		u2.Data[i] = 1e-3 * rng.NormFloat64()
		v2.Data[i] = 1e-3 * rng.NormFloat64()
	}
	t := base.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.AddLowRank(-1, u2, v2, 1e-6, 0)
		if t.Rank() == 0 {
			b.Fatal("tile collapsed")
		}
	}
}

// BenchmarkKernelsCompress measures the randomized compressor against the
// full Jacobi SVD on a covariance-like tile.
func BenchmarkKernelsCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := lowRankPlusNoise(96, 96, 14, 1e-8, rng)
	for _, cap := range []int{0, 24} {
		b.Run(fmt.Sprintf("randomized/cap=%d", cap), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lr := Compress(a, 1e-4, cap)
				linalg.PutMat(lr.U)
				linalg.PutMat(lr.V)
			}
		})
	}
	b.Run("fullJacobiSVD", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := linalg.SVD(a)
			_ = res.S[0]
		}
	})
}
