package tile

import "repro/internal/linalg"

// Kind identifies a tile representation.
type Kind int

// Tile representations.
const (
	// KindDenseF64 is a dense float64 tile — full accuracy, full cost.
	KindDenseF64 Kind = iota
	// KindDenseF32 is a dense float32 tile — half the memory traffic for
	// tiles whose contribution is below the double-precision noise floor.
	KindDenseF32
	// KindLowRank is a rank-k outer-product tile U·Vᵀ.
	KindLowRank
)

// String returns "dense64", "dense32" or "lowrank".
func (k Kind) String() string {
	switch k {
	case KindDenseF32:
		return "dense32"
	case KindLowRank:
		return "lowrank"
	default:
		return "dense64"
	}
}

// Tile is the polymorphic tile representation the unified factorization
// engine dispatches its kernels over. A tiled matrix mixes representations
// per tile — dense float64 on the diagonal band, dense float32 or low rank
// off-diagonal — and one task graph drives them all.
type Tile interface {
	// Dims returns the logical (rows, cols) of the tile.
	Dims() (int, int)
	// Kind identifies the representation for dispatch and reporting.
	Kind() Kind
}

// DenseF64 is a dense double-precision tile (the classical Chameleon tile).
type DenseF64 struct{ D *linalg.Matrix }

// Dims implements Tile.
func (t *DenseF64) Dims() (int, int) { return t.D.Rows, t.D.Cols }

// Kind implements Tile.
func (t *DenseF64) Kind() Kind { return KindDenseF64 }

// DenseF32 is a dense single-precision tile (the mixed-precision band
// representation).
type DenseF32 struct{ D *Matrix32 }

// Dims implements Tile.
func (t *DenseF32) Dims() (int, int) { return t.D.Rows, t.D.Cols }

// Kind implements Tile.
func (t *DenseF32) Kind() Kind { return KindDenseF32 }

// Dims implements Tile for the low-rank representation.
func (t *LowRank) Dims() (int, int) { return t.M, t.N }

// Kind implements Tile.
func (t *LowRank) Kind() Kind { return KindLowRank }
