package tile

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Matrix32 is a dense column-major float32 matrix (the single-precision
// mirror of linalg.Matrix), the storage behind DenseF32 tiles.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len Rows*Cols, column-major, stride = Rows
}

// NewMatrix32 returns a zeroed r×c float32 matrix.
func NewMatrix32(r, c int) *Matrix32 {
	return &Matrix32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// At returns element (i,j).
//repro:noalloc
func (m *Matrix32) At(i, j int) float32 { return m.Data[i+j*m.Rows] }

// Set assigns element (i,j).
//repro:noalloc
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i+j*m.Rows] = v }

// Col returns column j.
//repro:noalloc
func (m *Matrix32) Col(j int) []float32 { return m.Data[j*m.Rows : (j+1)*m.Rows] }

// ToSingle converts a float64 matrix to float32.
func ToSingle(a *linalg.Matrix) *Matrix32 {
	out := NewMatrix32(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		src := a.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float32(v)
		}
	}
	return out
}

// ToDouble converts back to float64.
func (m *Matrix32) ToDouble() *linalg.Matrix {
	out := linalg.NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float64(v)
		}
	}
	return out
}

// Gemm32 computes C += alpha·A·Bᵀ (transB=true) or C += alpha·A·B in
// float32; the only variants the Cholesky update needs. Large products run
// through the packed 16×6 vector micro-kernel when the platform has one.
//repro:noalloc
func Gemm32(transB bool, alpha float32, a, b, c *Matrix32) {
	if !transB {
		if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
			//repro:alloc-ok shape-mismatch panic path
			panic("tile: Gemm32 shape mismatch")
		}
	} else if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("tile: Gemm32 shape mismatch")
	}
	m, n, k := c.Rows, c.Cols, a.Cols
	if alpha == 0 || k == 0 || m == 0 || n == 0 {
		return
	}
	if linalg.HasVectorKernels() && m*n*k > 8192 {
		gemm32Blocked(transB, alpha, a, b, c, m, n, k)
		return
	}
	gemm32Naive(transB, alpha, a, b, c)
}

// gemm32Naive is the historical unpacked float32 kernel, the reference for
// the blocked path and the small-product fast path.
//repro:noalloc
func gemm32Naive(transB bool, alpha float32, a, b, c *Matrix32) {
	if !transB {
		for j := 0; j < c.Cols; j++ {
			cc, bc := c.Col(j), b.Col(j)
			for l := 0; l < a.Cols; l++ {
				v := alpha * bc[l]
				if v == 0 {
					continue
				}
				ac := a.Col(l)
				for i := range cc {
					cc[i] += v * ac[i]
				}
			}
		}
		return
	}
	for l := 0; l < a.Cols; l++ {
		ac, bc := a.Col(l), b.Col(l)
		for j := 0; j < c.Cols; j++ {
			v := alpha * bc[j]
			if v == 0 {
				continue
			}
			cc := c.Col(j)
			for i := range cc {
				cc[i] += v * ac[i]
			}
		}
	}
}

// f32 packed-panel blocking; the micro-tile is 16×6 (two 8-float YMM rows).
const (
	mr32 = 16
	nr32 = 6
	kc32 = 256
	mc32 = 128
	nc32 = 504
)

// gemm32Blocked is the packed single-precision driver: identical structure
// to the float64 path in linalg (pack op(B) and A panels from pooled
// buffers, run the register micro-kernel, mask ragged edges on write-back).
//repro:noalloc
func gemm32Blocked(transB bool, alpha float32, a, b, c *Matrix32, m, n, k int) {
	apack := getVec32(mc32 * kc32)
	bpack := getVec32(kc32 * nc32)
	for jc := 0; jc < n; jc += nc32 {
		nc := min(nc32, n-jc)
		for pc := 0; pc < k; pc += kc32 {
			kcc := min(kc32, k-pc)
			packB32(transB, b, bpack, pc, jc, kcc, nc)
			for ic := 0; ic < m; ic += mc32 {
				mcc := min(mc32, m-ic)
				packA32(a, apack, ic, pc, mcc, kcc)
				for jr := 0; jr < nc; jr += nr32 {
					cols := min(nr32, nc-jr)
					bp := bpack[jr*kcc:]
					for ir := 0; ir < mcc; ir += mr32 {
						rows := min(mr32, mcc-ir)
						var acc [mr32 * nr32]float32
						linalg.MicroF32(kcc, apack[ir*kcc:], bp, &acc)
						for j := 0; j < cols; j++ {
							cc := c.Col(jc + jr + j)[ic+ir:]
							t := acc[j*mr32:]
							for i := 0; i < rows; i++ {
								cc[i] += alpha * t[i]
							}
						}
					}
				}
			}
		}
	}
	putVec32(bpack)
	putVec32(apack)
}

// packA32 packs the mcc×kcc block of A at (ic,pc) into mr32-row
// micro-panels, zero-padding ragged bottom panels.
//repro:noalloc
func packA32(a *Matrix32, dst []float32, ic, pc, mcc, kcc int) {
	for ip := 0; ip < mcc; ip += mr32 {
		rows := min(mr32, mcc-ip)
		panel := dst[ip*kcc : ip*kcc+mr32*kcc]
		for l := 0; l < kcc; l++ {
			src := a.Col(pc + l)[ic+ip:]
			o := l * mr32
			for i := 0; i < rows; i++ {
				panel[o+i] = src[i]
			}
			for i := rows; i < mr32; i++ {
				panel[o+i] = 0
			}
		}
	}
}

// packB32 packs the kcc×nc block of op(B) at (pc,jc) into nr32-column
// micro-panels, zero-padding ragged right panels.
//repro:noalloc
func packB32(transB bool, b *Matrix32, dst []float32, pc, jc, kcc, nc int) {
	for jp := 0; jp < nc; jp += nr32 {
		cols := min(nr32, nc-jp)
		panel := dst[jp*kcc : jp*kcc+nr32*kcc]
		if !transB {
			for j := 0; j < cols; j++ {
				src := b.Col(jc + jp + j)[pc:]
				for l := 0; l < kcc; l++ {
					panel[l*nr32+j] = src[l]
				}
			}
			for j := cols; j < nr32; j++ {
				for l := 0; l < kcc; l++ {
					panel[l*nr32+j] = 0
				}
			}
		} else {
			for l := 0; l < kcc; l++ {
				src := b.Col(pc + l)[jc+jp:]
				o := l * nr32
				for j := 0; j < cols; j++ {
					panel[o+j] = src[j]
				}
				for j := cols; j < nr32; j++ {
					panel[o+j] = 0
				}
			}
		}
	}
}

// Syrk32 computes the lower triangle of C += alpha·A·Aᵀ in float32.
func Syrk32(alpha float32, a, c *Matrix32) {
	n := a.Rows
	if c.Rows != n || c.Cols != n {
		panic("tile: Syrk32 shape mismatch")
	}
	for l := 0; l < a.Cols; l++ {
		al := a.Col(l)
		for j := 0; j < n; j++ {
			v := alpha * al[j]
			if v == 0 {
				continue
			}
			cc := c.Col(j)
			for i := j; i < n; i++ {
				cc[i] += v * al[i]
			}
		}
	}
}

// TrsmRightLowerTrans32 solves X·Lᵀ = B in float32, overwriting b, for
// lower-triangular l (the panel update of the right-looking Cholesky).
func TrsmRightLowerTrans32(l, b *Matrix32) {
	n := l.Rows
	if l.Cols != n || b.Cols != n {
		panic("tile: Trsm32 shape mismatch")
	}
	for k := 0; k < n; k++ {
		xk := b.Col(k)
		for i := 0; i < k; i++ {
			v := l.At(k, i)
			if v == 0 {
				continue
			}
			xi := b.Col(i)
			for r := range xk {
				xk[r] -= v * xi[r]
			}
		}
		inv := 1 / l.At(k, k)
		for r := range xk {
			xk[r] *= inv
		}
	}
}

// Potrf32 factorizes the lower triangle in float32.
func Potrf32(a *Matrix32) error {
	n := a.Rows
	for k := 0; k < n; k++ {
		ck := a.Col(k)
		d := ck[k]
		if d <= 0 || d != d {
			return fmt.Errorf("tile: %w (pivot %d = %g)", linalg.ErrNotPositiveDefinite, k, d)
		}
		s := float32(math.Sqrt(float64(d)))
		ck[k] = s
		inv := 1 / s
		for i := k + 1; i < n; i++ {
			ck[i] *= inv
		}
		for j := k + 1; j < n; j++ {
			v := ck[j]
			if v == 0 {
				continue
			}
			cj := a.Col(j)
			for i := j; i < n; i++ {
				cj[i] -= v * ck[i]
			}
		}
	}
	return nil
}
