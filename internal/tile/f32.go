package tile

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Matrix32 is a dense column-major float32 matrix (the single-precision
// mirror of linalg.Matrix), the storage behind DenseF32 tiles.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len Rows*Cols, column-major, stride = Rows
}

// NewMatrix32 returns a zeroed r×c float32 matrix.
func NewMatrix32(r, c int) *Matrix32 {
	return &Matrix32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// At returns element (i,j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i+j*m.Rows] }

// Set assigns element (i,j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i+j*m.Rows] = v }

// Col returns column j.
func (m *Matrix32) Col(j int) []float32 { return m.Data[j*m.Rows : (j+1)*m.Rows] }

// ToSingle converts a float64 matrix to float32.
func ToSingle(a *linalg.Matrix) *Matrix32 {
	out := NewMatrix32(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		src := a.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float32(v)
		}
	}
	return out
}

// ToDouble converts back to float64.
func (m *Matrix32) ToDouble() *linalg.Matrix {
	out := linalg.NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float64(v)
		}
	}
	return out
}

// Gemm32 computes C += alpha·A·Bᵀ (transB=true) or C += alpha·A·B in
// float32; the only variants the Cholesky update needs.
func Gemm32(transB bool, alpha float32, a, b, c *Matrix32) {
	if !transB {
		if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
			panic("tile: Gemm32 shape mismatch")
		}
		for j := 0; j < c.Cols; j++ {
			cc, bc := c.Col(j), b.Col(j)
			for l := 0; l < a.Cols; l++ {
				v := alpha * bc[l]
				if v == 0 {
					continue
				}
				ac := a.Col(l)
				for i := range cc {
					cc[i] += v * ac[i]
				}
			}
		}
		return
	}
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("tile: Gemm32 shape mismatch")
	}
	for l := 0; l < a.Cols; l++ {
		ac, bc := a.Col(l), b.Col(l)
		for j := 0; j < c.Cols; j++ {
			v := alpha * bc[j]
			if v == 0 {
				continue
			}
			cc := c.Col(j)
			for i := range cc {
				cc[i] += v * ac[i]
			}
		}
	}
}

// Syrk32 computes the lower triangle of C += alpha·A·Aᵀ in float32.
func Syrk32(alpha float32, a, c *Matrix32) {
	n := a.Rows
	if c.Rows != n || c.Cols != n {
		panic("tile: Syrk32 shape mismatch")
	}
	for l := 0; l < a.Cols; l++ {
		al := a.Col(l)
		for j := 0; j < n; j++ {
			v := alpha * al[j]
			if v == 0 {
				continue
			}
			cc := c.Col(j)
			for i := j; i < n; i++ {
				cc[i] += v * al[i]
			}
		}
	}
}

// TrsmRightLowerTrans32 solves X·Lᵀ = B in float32, overwriting b, for
// lower-triangular l (the panel update of the right-looking Cholesky).
func TrsmRightLowerTrans32(l, b *Matrix32) {
	n := l.Rows
	if l.Cols != n || b.Cols != n {
		panic("tile: Trsm32 shape mismatch")
	}
	for k := 0; k < n; k++ {
		xk := b.Col(k)
		for i := 0; i < k; i++ {
			v := l.At(k, i)
			if v == 0 {
				continue
			}
			xi := b.Col(i)
			for r := range xk {
				xk[r] -= v * xi[r]
			}
		}
		inv := 1 / l.At(k, k)
		for r := range xk {
			xk[r] *= inv
		}
	}
}

// Potrf32 factorizes the lower triangle in float32.
func Potrf32(a *Matrix32) error {
	n := a.Rows
	for k := 0; k < n; k++ {
		ck := a.Col(k)
		d := ck[k]
		if d <= 0 || d != d {
			return fmt.Errorf("tile: %w (pivot %d = %g)", linalg.ErrNotPositiveDefinite, k, d)
		}
		s := float32(math.Sqrt(float64(d)))
		ck[k] = s
		inv := 1 / s
		for i := k + 1; i < n; i++ {
			ck[i] *= inv
		}
		for j := k + 1; j < n; j++ {
			v := ck[j]
			if v == 0 {
				continue
			}
			cj := a.Col(j)
			for i := j; i < n; i++ {
				cj[i] -= v * ck[i]
			}
		}
	}
	return nil
}
