package tile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func randDense(r, c int, rng *rand.Rand) *linalg.Matrix {
	m := linalg.NewMatrix(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return m
}

func TestRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ m, n, ts int }{
		{8, 8, 4}, {10, 7, 3}, {5, 5, 8}, {1, 1, 4}, {9, 4, 4}, {16, 16, 16},
	} {
		a := randDense(tc.m, tc.n, rng)
		tm := FromDense(a, tc.ts)
		back := tm.ToDense()
		if d := back.MaxAbsDiff(a); d != 0 {
			t.Errorf("%dx%d ts=%d roundtrip diff %v", tc.m, tc.n, tc.ts, d)
		}
	}
}

func TestTileShapes(t *testing.T) {
	tm := New(10, 7, 4) // 3x2 tile grid; boundary tiles 2 rows / 3 cols
	if tm.MT != 3 || tm.NT != 2 {
		t.Fatalf("grid %dx%d, want 3x2", tm.MT, tm.NT)
	}
	if r := tm.TileRows(2); r != 2 {
		t.Errorf("last tile rows %d, want 2", r)
	}
	if c := tm.TileCols(1); c != 3 {
		t.Errorf("last tile cols %d, want 3", c)
	}
	if r := tm.TileRows(0); r != 4 {
		t.Errorf("interior tile rows %d, want 4", r)
	}
}

func TestAtSetGlobalIndexing(t *testing.T) {
	tm := New(9, 9, 4)
	tm.Set(8, 8, 3.5)
	tm.Set(0, 5, -1)
	if tm.At(8, 8) != 3.5 || tm.At(0, 5) != -1 {
		t.Error("global At/Set failed")
	}
	if tm.Tile(2, 2).At(0, 0) != 3.5 {
		t.Error("global write did not land in the right tile")
	}
}

func TestFillMatchesGlobal(t *testing.T) {
	tm := New(7, 7, 3)
	tm.Fill(func(dst *linalg.Matrix, r0, c0 int) {
		for j := 0; j < dst.Cols; j++ {
			for i := 0; i < dst.Rows; i++ {
				dst.Set(i, j, float64((r0+i)*100+(c0+j)))
			}
		}
	})
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if got := tm.At(i, j); got != float64(i*100+j) {
				t.Fatalf("Fill mismatch at (%d,%d): %v", i, j, got)
			}
		}
	}
}

func TestSetTile(t *testing.T) {
	tm := New(6, 6, 3)
	repl := linalg.NewMatrix(3, 3)
	repl.Fill(2)
	tm.SetTile(1, 0, repl)
	if tm.At(3, 0) != 2 {
		t.Error("SetTile content not visible")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetTile with wrong shape should panic")
		}
	}()
	tm.SetTile(0, 0, linalg.NewMatrix(2, 2))
}

func TestTileBounds(t *testing.T) {
	tm := New(6, 6, 3)
	defer func() {
		if recover() == nil {
			t.Error("Tile out of range should panic")
		}
	}()
	tm.Tile(2, 0)
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with ts=0 should panic")
		}
	}()
	New(4, 4, 0)
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		ts := 1 + rng.Intn(8)
		a := randDense(m, n, rng)
		return FromDense(a, ts).ToDense().MaxAbsDiff(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
