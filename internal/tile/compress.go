package tile

import (
	"math"

	"repro/internal/linalg"
)

// Compress builds a low-rank tile from a dense block, keeping the smallest
// rank whose tail satisfies ‖tail‖_F ≤ tol·‖A‖_F, capped at maxRank (0 means
// no cap). The singular values are folded into U.
//
// Instead of the full-tile Jacobi SVD the seed used, it runs a randomized
// range finder (Halko/Martinsson/Tropp): sketch Y = A·Ω, orthonormalize,
// project B = QᵀA, and SVD only the small core — with the capture error
// measured a posteriori (‖A‖²−‖B‖²) and the sample grown geometrically until
// the tail bound holds, so the result meets the same accuracy contract as
// the full SVD while the dominant cost becomes blocked GEMM. The sketch is
// drawn from a deterministic stream keyed by the tile shape, keeping
// factorizations reproducible across runs and worker counts.
func Compress(a *linalg.Matrix, tol float64, maxRank int) *LowRank {
	m, n := a.Rows, a.Cols
	if m < n {
		// Compress the transpose and swap the factors back.
		at := linalg.GetMat(n, m)
		for j := 0; j < m; j++ {
			tc := at.Col(j)
			for i := 0; i < n; i++ {
				tc[i] = a.At(j, i)
			}
		}
		t := Compress(at, tol, maxRank)
		linalg.PutMat(at)
		t.U, t.V = t.V, t.U
		t.M, t.N = m, n
		return t
	}
	t := &LowRank{M: m, N: n}
	if m == 0 || n == 0 {
		return t
	}
	froSq := frobSq(a)
	if froSq == 0 {
		return t
	}

	// Range finder: grow the sample until the unexplained energy fits under
	// the truncation budget (or the rank cap makes a larger basis pointless).
	l := 16
	if maxRank > 0 {
		l = maxRank + 8
	}
	var (
		q       *linalg.Matrix // m×l orthonormal basis (nil on the full path)
		b       *linalg.Matrix // l×n projected coefficients
		y       *linalg.Matrix
		tau     []float64
		qf      linalg.QRFactor
		residSq float64
	)
	for {
		if l >= n {
			// Full path: QR(A) spans the exact range and B is just R.
			l = n
			y = linalg.GetMat(m, n)
			y.CopyFrom(a)
			tau = linalg.GetVec(n)
			qf = linalg.QRInPlace(y, tau)
			b = linalg.GetMat(n, n)
			qf.RInto(b)
			residSq = 0
			break
		}
		omega := gaussMat(n, l)
		y = linalg.GetMat(m, l)
		linalg.Gemm(false, false, 1, a, omega, 0, y)
		linalg.PutMat(omega)
		tau = linalg.GetVec(l)
		qf = linalg.QRInPlace(y, tau)
		q = linalg.GetMat(m, l)
		qf.ThinQInto(q)
		b = linalg.GetMat(l, n)
		linalg.Gemm(true, false, 1, q, a, 0, b)
		residSq = math.Max(froSq-frobSq(b), 0)
		if residSq <= 0.25*tol*tol*froSq || (maxRank > 0 && l >= maxRank+8) {
			break
		}
		linalg.PutMat(b)
		linalg.PutMat(q)
		linalg.PutVec(tau)
		linalg.PutMat(y)
		q = nil
		l = min(2*l, n)
	}

	sv := svdPooled(b, tol)
	k := sv.truncate(tol, residSq, maxRank)
	if k > 0 {
		x1 := linalg.GetMat(l, k)
		sv.leftScaledInto(x1, k)
		t.U = linalg.GetMat(m, k)
		if q != nil {
			linalg.Gemm(false, false, 1, q, x1, 0, t.U)
		} else {
			qf.ApplyQInto(x1, t.U)
		}
		linalg.PutMat(x1)
		t.V = linalg.GetMat(n, k)
		sv.rightInto(t.V, k)
	}
	sv.release()
	linalg.PutMat(b)
	linalg.PutMat(q)
	linalg.PutVec(tau)
	linalg.PutMat(y)
	return t
}

// frobSq returns the plain sum of squares of the entries (no overflow
// guard: compression operates on covariance-scale tiles, and the capture
// test needs the unguarded quantity so ‖A‖² − ‖B‖² is consistent).
func frobSq(a *linalg.Matrix) float64 {
	s := 0.0
	for j := 0; j < a.Cols; j++ {
		for _, v := range a.Col(j) {
			s += v * v
		}
	}
	return s
}

// gaussMat returns a pooled r×c matrix of standard normal samples from a
// splitmix64 stream seeded only by the shape: the sketch is independent of
// the data (which is all the randomized analysis needs) and deterministic
// across runs, workers and repeated calls.
//
//repro:returns-pooled mat
func gaussMat(r, c int) *linalg.Matrix {
	m := linalg.GetMat(r, c)
	state := uint64(r)<<32 ^ uint64(c) ^ 0x9e3779b97f4a7c15
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		z ^= z >> 31
		// Uniform in (0,1]: keep 53 bits, offset away from zero.
		return (float64(z>>11) + 1) / (1 << 53)
	}
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			// Box–Muller, one normal per pair of uniforms.
			u1, u2 := next(), next()
			col[i] = math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		}
	}
	return m
}
