package tile

import "sync"

// Pooled float32 scratch for the packed single-precision kernels, same box
// discipline as the linalg float64 pool (the boxes cycle through their own
// pool so steady state allocates nothing).
var (
	f32Pool    sync.Pool
	f32BoxPool = sync.Pool{New: func() any { return new([]float32) }}
)

// getVec32 returns a pooled float32 slice of length n, contents UNDEFINED.
func getVec32(n int) []float32 {
	var buf []float32
	if p, _ := f32Pool.Get().(*[]float32); p != nil {
		buf = *p
		*p = nil
		f32BoxPool.Put(p)
	}
	if cap(buf) < n {
		c := 1
		for c < n {
			c <<= 1
		}
		buf = make([]float32, c)
	}
	return buf[:n]
}

// putVec32 recycles a slice obtained from getVec32.
func putVec32(v []float32) {
	if cap(v) == 0 {
		return
	}
	p := f32BoxPool.Get().(*[]float32)
	*p = v[:cap(v)]
	f32Pool.Put(p)
}
