package tile

import "sync"

// Pooled float32 scratch for the packed single-precision kernels, same box
// discipline as the linalg float64 pool (the boxes cycle through their own
// pool so steady state allocates nothing).
var (
	f32Pool    sync.Pool
	f32BoxPool = sync.Pool{New: func() any { return new([]float32) }}
)

// getVec32 returns a pooled float32 slice of length n, contents UNDEFINED.
func getVec32(n int) []float32 {
	var buf []float32
	if p, _ := f32Pool.Get().(*[]float32); p != nil {
		buf = *p
		*p = nil
		f32BoxPool.Put(p)
	}
	if cap(buf) < n {
		c := 1
		for c < n {
			c <<= 1
		}
		buf = make([]float32, c)
	}
	return buf[:n]
}

// putVec32 recycles a slice obtained from getVec32.
func putVec32(v []float32) {
	if cap(v) == 0 {
		return
	}
	p := f32BoxPool.Get().(*[]float32)
	*p = v[:cap(v)]
	f32Pool.Put(p)
}

// The exported pool mirrors linalg's float64 Get/Put API for the f32 sweep
// (internal/mvn): pooled vectors, pooled Matrix32 headers, and full-height
// column views that share the parent's storage. Same ownership rules as the
// f64 pool: Put* only what the caller owns outright, never a view's data.

// GetVec32 returns a pooled float32 slice of length n, contents UNDEFINED.
func GetVec32(n int) []float32 { return getVec32(n) }

// PutVec32 recycles a slice obtained from GetVec32.
func PutVec32(v []float32) { putVec32(v) }

// mat32HeaderPool recycles Matrix32 headers so pooled Get/Put cycles are
// allocation-free on the warm path.
var mat32HeaderPool = sync.Pool{New: func() any { return new(Matrix32) }}

// GetMat32 returns a pooled r×c float32 matrix whose contents are UNDEFINED:
// the caller's first operation must fully overwrite it (note Gemm32 only
// accumulates — zero first or use GetMat32Zero).
func GetMat32(r, c int) *Matrix32 {
	m := mat32HeaderPool.Get().(*Matrix32)
	m.Rows, m.Cols, m.Data = r, c, getVec32(r*c)
	return m
}

// GetMat32Zero returns a pooled zeroed r×c float32 matrix.
func GetMat32Zero(r, c int) *Matrix32 {
	m := GetMat32(r, c)
	clear(m.Data)
	return m
}

// PutMat32 recycles a matrix obtained from GetMat32/GetMat32Zero (never a
// view — see PutMat32View). The caller must drop its pointer.
func PutMat32(m *Matrix32) {
	if m == nil {
		return
	}
	putVec32(m.Data)
	m.Data = nil
	mat32HeaderPool.Put(m)
}

// GetMat32View returns a pooled header for the full-height c-column span of
// parent starting at column j, sharing parent's storage. Matrix32 carries no
// stride, so only full-height column views exist. Return with PutMat32View.
func GetMat32View(parent *Matrix32, j, c int) *Matrix32 {
	if j < 0 || c < 0 || j+c > parent.Cols {
		panic("tile: Matrix32 view out of range")
	}
	m := mat32HeaderPool.Get().(*Matrix32)
	m.Rows, m.Cols, m.Data = parent.Rows, c, parent.Data[j*parent.Rows:(j+c)*parent.Rows]
	return m
}

// PutMat32View recycles a header obtained from GetMat32View; the shared data
// stays with the parent.
func PutMat32View(m *Matrix32) {
	if m == nil {
		return
	}
	m.Data = nil
	mat32HeaderPool.Put(m)
}
