package tile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Binary tile codec: the per-representation encode/decode the persistent
// factor store is built on. Every representation round-trips bit-exactly
// (float payloads are raw IEEE-754 bit patterns, little endian), so a
// deserialized factor answers queries bit-identically to the in-memory
// factor it was encoded from.
//
// The codec works on byte slices, not streams: the caller (the factorio
// container) hands it one checksummed section, so every length check below
// is against data whose integrity was already verified. Decoders never
// panic and never allocate more than the input can justify — dimensions are
// validated against the remaining payload before any buffer is sized from
// them.

// ErrTileCodec is wrapped by every structural decode failure (truncated
// payload, dimension overflow, unknown representation).
var ErrTileCodec = errors.New("tile: malformed tile encoding")

func codecErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTileCodec, fmt.Sprintf(format, args...))
}

// Wire kind tags. These are persistent format values — append only, never
// renumber. They deliberately mirror Kind but are decoupled from it so a
// Kind reordering in memory cannot silently corrupt stored factors.
const (
	wireDenseF64 = byte(1)
	wireDenseF32 = byte(2)
	wireLowRank  = byte(3)
)

// appendU32 appends v little endian.
func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// decodeU32 reads one u32, returning the remainder.
func decodeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, codecErr("truncated u32 (%d bytes left)", len(b))
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

// checkDims validates a decoded (rows, cols, elemSize) triple against the
// remaining payload, so a corrupt or hostile header cannot drive a huge
// allocation: the elements it promises must actually be present.
func checkDims(rows, cols uint32, elemSize, avail int) (int, int, error) {
	r, c := int(rows), int(cols)
	if r > math.MaxInt32 || c > math.MaxInt32 {
		return 0, 0, codecErr("dimensions %dx%d out of range", rows, cols)
	}
	// r·c ≤ 2^62 here, so the product cannot overflow int64.
	if int64(r)*int64(c) > int64(avail/elemSize) {
		return 0, 0, codecErr("%dx%d payload exceeds the %d bytes present", r, c, avail)
	}
	return r, c, nil
}

// AppendMatrix appends a dense float64 matrix: rows, cols, then the
// elements column-major as raw float64 bits. Strided views encode compactly
// (the stride is not persisted).
func AppendMatrix(buf []byte, m *linalg.Matrix) []byte {
	buf = appendU32(buf, uint32(m.Rows))
	buf = appendU32(buf, uint32(m.Cols))
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// DecodeMatrix decodes one AppendMatrix payload, returning the remainder.
func DecodeMatrix(b []byte) (*linalg.Matrix, []byte, error) {
	rows, b, err := decodeU32(b)
	if err != nil {
		return nil, nil, err
	}
	cols, b, err := decodeU32(b)
	if err != nil {
		return nil, nil, err
	}
	r, c, err := checkDims(rows, cols, 8, len(b))
	if err != nil {
		return nil, nil, err
	}
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return m, b[8*r*c:], nil
}

// AppendMatrix32 appends a dense float32 matrix (rows, cols, raw bits).
func AppendMatrix32(buf []byte, m *Matrix32) []byte {
	buf = appendU32(buf, uint32(m.Rows))
	buf = appendU32(buf, uint32(m.Cols))
	for _, v := range m.Data {
		buf = appendU32(buf, math.Float32bits(v))
	}
	return buf
}

// DecodeMatrix32 decodes one AppendMatrix32 payload.
func DecodeMatrix32(b []byte) (*Matrix32, []byte, error) {
	rows, b, err := decodeU32(b)
	if err != nil {
		return nil, nil, err
	}
	cols, b, err := decodeU32(b)
	if err != nil {
		return nil, nil, err
	}
	r, c, err := checkDims(rows, cols, 4, len(b))
	if err != nil {
		return nil, nil, err
	}
	m := NewMatrix32(r, c)
	for i := range m.Data {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return m, b[4*r*c:], nil
}

// AppendTile appends one tile in its representation: a wire kind tag, then
// the representation payload.
func AppendTile(buf []byte, t Tile) ([]byte, error) {
	switch tt := t.(type) {
	case *DenseF64:
		buf = append(buf, wireDenseF64)
		return AppendMatrix(buf, tt.D), nil
	case *DenseF32:
		buf = append(buf, wireDenseF32)
		return AppendMatrix32(buf, tt.D), nil
	case *LowRank:
		buf = append(buf, wireLowRank)
		buf = appendU32(buf, uint32(tt.M))
		buf = appendU32(buf, uint32(tt.N))
		k := tt.Rank()
		buf = appendU32(buf, uint32(k))
		if k > 0 {
			buf = AppendMatrix(buf, tt.U)
			buf = AppendMatrix(buf, tt.V)
		}
		return buf, nil
	default:
		return nil, codecErr("unencodable tile type %T", t)
	}
}

// DecodeTile decodes one AppendTile payload, returning the remainder. The
// returned tile owns freshly allocated storage (never pooled buffers), so
// it is safe to hold for a session cache's lifetime.
func DecodeTile(b []byte) (Tile, []byte, error) {
	if len(b) == 0 {
		return nil, nil, codecErr("truncated tile (no kind tag)")
	}
	kind, b := b[0], b[1:]
	switch kind {
	case wireDenseF64:
		m, rest, err := DecodeMatrix(b)
		if err != nil {
			return nil, nil, err
		}
		return &DenseF64{D: m}, rest, nil
	case wireDenseF32:
		m, rest, err := DecodeMatrix32(b)
		if err != nil {
			return nil, nil, err
		}
		return &DenseF32{D: m}, rest, nil
	case wireLowRank:
		mm, b, err := decodeU32(b)
		if err != nil {
			return nil, nil, err
		}
		nn, b, err := decodeU32(b)
		if err != nil {
			return nil, nil, err
		}
		kk, b, err := decodeU32(b)
		if err != nil {
			return nil, nil, err
		}
		m, n, k := int(mm), int(nn), int(kk)
		if m < 0 || n < 0 || k < 0 || k > m || k > n {
			return nil, nil, codecErr("low-rank shape %dx%d rank %d out of range", m, n, k)
		}
		t := &LowRank{M: m, N: n}
		if k > 0 {
			var u, v *linalg.Matrix
			if u, b, err = DecodeMatrix(b); err != nil {
				return nil, nil, err
			}
			if v, b, err = DecodeMatrix(b); err != nil {
				return nil, nil, err
			}
			if u.Rows != m || u.Cols != k || v.Rows != n || v.Cols != k {
				return nil, nil, codecErr("low-rank factors %dx%d/%dx%d disagree with header %dx%d rank %d",
					u.Rows, u.Cols, v.Rows, v.Cols, m, n, k)
			}
			t.U, t.V = u, v
		}
		return t, b, nil
	default:
		return nil, nil, codecErr("unknown tile kind tag %d", kind)
	}
}
