package tile

import (
	"math"

	"repro/internal/linalg"
)

// CompressACA builds a low-rank tile with partially-pivoted Adaptive Cross
// Approximation followed by QR+SVD recompression. ACA touches only O(k(m+n))
// matrix entries per rank instead of the full tile an SVD needs, which is
// how HiCMA-style libraries assemble large covariance matrices without ever
// forming the dense tiles — and how the adaptive policy probes
// compressibility without densify-then-SVD. entry(i,j) evaluates the
// underlying matrix element; the tile has m×n logical entries.
//
// The iteration stops when the new cross's norm estimate falls below
// tol·‖A_k‖_F (estimated incrementally) or the rank reaches maxRank
// (0 = min(m,n)).
func CompressACA(m, n int, entry func(i, j int) float64, tol float64, maxRank int) *LowRank {
	t, _ := CompressACAConv(m, n, entry, tol, maxRank)
	return t
}

// CompressACAConv is CompressACA reporting whether the cross iteration
// actually converged to tol within the rank budget. A false return means
// the budget was exhausted first: the result is NOT a controlled-error
// approximation (unlike a truncated SVD, a budget-capped cross
// approximation has no optimality guarantee), and callers that need
// accuracy — e.g. TLR assembly of near-diagonal high-rank tiles — must fall
// back to densify-and-compress.
func CompressACAConv(m, n int, entry func(i, j int) float64, tol float64, maxRank int) (*LowRank, bool) {
	limit := min(m, n)
	if maxRank > 0 && maxRank < limit {
		limit = maxRank
	}
	converged := false
	t := &LowRank{M: m, N: n}
	if limit == 0 {
		return t, true
	}
	// Crosses accumulate as columns of pooled factor panels.
	us := linalg.GetMat(m, limit)
	vs := linalg.GetMat(n, limit)
	rowUsed := make([]bool, m)
	colUsed := make([]bool, n)
	row := linalg.GetVec(n)
	col := linalg.GetVec(m)

	// Frobenius-norm estimate of the accumulated approximation.
	var normSq float64
	nextRow := 0
	k := 0
	small := 0
	for k < limit {
		// Residual row `nextRow`: A(i,:) − Σ u_t[i]·v_t.
		i := nextRow
		if i < 0 || rowUsed[i] {
			i = -1
			for r := 0; r < m; r++ {
				if !rowUsed[r] {
					i = r
					break
				}
			}
			if i < 0 {
				break
			}
		}
		for j := 0; j < n; j++ {
			row[j] = entry(i, j)
		}
		for t := 0; t < k; t++ {
			linalg.Axpy(-us.Col(t)[i], vs.Col(t), row)
		}
		// Pivot column: largest residual entry in the row.
		jPiv, pivVal := -1, 0.0
		for j := 0; j < n; j++ {
			if colUsed[j] {
				continue
			}
			if a := math.Abs(row[j]); a > pivVal {
				pivVal, jPiv = a, j
			}
		}
		if jPiv < 0 || pivVal == 0 {
			rowUsed[i] = true
			nextRow = -1
			if allUsed(rowUsed) {
				converged = true // residual exhausted: exact representation
				break
			}
			continue
		}
		// Residual column jPiv.
		for r := 0; r < m; r++ {
			col[r] = entry(r, jPiv)
		}
		for t := 0; t < k; t++ {
			linalg.Axpy(-vs.Col(t)[jPiv], us.Col(t), col)
		}
		pivot := row[jPiv]
		u := us.Col(k)
		for r := 0; r < m; r++ {
			u[r] = col[r] / pivot
		}
		v := vs.Col(k)
		copy(v, row)
		rowUsed[i] = true
		colUsed[jPiv] = true
		k++

		// Update the norm estimate: ‖A_k‖² = ‖A_{k-1}‖² + 2Σ⟨u_k,u_t⟩⟨v_k,v_t⟩ + ‖u_k‖²‖v_k‖².
		uNorm := linalg.Dot(u, u)
		vNorm := linalg.Dot(v, v)
		cross := 0.0
		for t := 0; t < k-1; t++ {
			cross += linalg.Dot(u, us.Col(t)) * linalg.Dot(v, vs.Col(t))
		}
		normSq += 2*cross + uNorm*vNorm
		// Next pivot row: largest residual entry in the chosen column.
		nextRow = -1
		best := 0.0
		for r := 0; r < m; r++ {
			if rowUsed[r] {
				continue
			}
			if a := math.Abs(col[r]); a > best {
				best, nextRow = a, r
			}
		}
		// Convergence: the cross norms must sit well below the tolerance for
		// two consecutive iterations. A single small cross is a weak signal —
		// partial pivoting can land on a nearly-converged row while
		// substantial residual remains elsewhere — and that slack is exactly
		// what made capped assemblies drift far past tol in aggregate.
		if math.Sqrt(uNorm*vNorm) <= 0.25*tol*math.Sqrt(math.Max(normSq, 0)) {
			small++
			if small >= 2 {
				converged = true
				break
			}
		} else {
			small = 0
		}
	}
	linalg.PutVec(row)
	linalg.PutVec(col)
	if k > 0 {
		// Recompress: ACA overshoots the rank slightly; rounding restores
		// the SVD-grade truncation the rest of the TLR stack expects.
		// RoundLR overwrites the views, which is fine — the panels are
		// recycled right after.
		t.U, t.V = RoundLR(us.View(0, 0, m, k), vs.View(0, 0, n, k), tol, maxRank)
	}
	linalg.PutMat(us)
	linalg.PutMat(vs)
	return t, converged
}

func allUsed(used []bool) bool {
	for _, u := range used {
		if !u {
			return false
		}
	}
	return true
}
