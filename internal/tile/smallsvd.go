package tile

import "repro/internal/linalg"

// smallSVD is a pooled thin SVD of a small core matrix, the shared engine
// behind low-rank rounding and the randomized compressor. Everything it
// holds comes from the workspace pool; release returns it.
type smallSVD struct {
	w      *linalg.Matrix // left factor work matrix (rows ≥ cols)
	v      *linalg.Matrix // right factor (orthonormal)
	s      []float64      // unsorted singular values
	idx    []int          // decreasing order of s
	ss     []float64      // s sorted decreasingly
	trans  bool           // SVD ran on the transpose (core had rows < cols)
	scaled bool           // w columns carry U·s (Jacobi fallback) vs U (GR)
}

// svdPooled computes the thin SVD of core (p×q) with pooled scratch; core is
// not modified. The heavy lifting is Golub–Reinsch (bidiagonalization +
// shifted QR); the one-sided Jacobi — slower but unconditionally convergent
// — is the fallback, with its sweep threshold tied to the downstream
// truncation tolerance tol.
func svdPooled(core *linalg.Matrix, tol float64) smallSVD {
	sv := smallSVD{}
	p, q := core.Rows, core.Cols
	if p >= q {
		sv.w = linalg.GetMat(p, q)
		sv.w.CopyFrom(core)
	} else {
		sv.trans = true
		sv.w = linalg.GetMat(q, p)
		for j := 0; j < p; j++ {
			wc := sv.w.Col(j)
			for i := 0; i < q; i++ {
				wc[i] = core.At(j, i)
			}
		}
	}
	r := sv.w.Cols
	sv.v = linalg.GetMat(r, r)
	sv.s = linalg.GetVec(r)
	if !linalg.GolubReinschSVD(sv.w, sv.v, sv.s) {
		// QR iteration failed (essentially never in practice): redo with
		// Jacobi, which cannot fail. Restore the work matrix first.
		if !sv.trans {
			sv.w.CopyFrom(core)
		} else {
			for j := 0; j < p; j++ {
				wc := sv.w.Col(j)
				for i := 0; i < q; i++ {
					wc[i] = core.At(j, i)
				}
			}
		}
		sv.v.Zero()
		for i := 0; i < r; i++ {
			sv.v.Set(i, i, 1)
		}
		off := tol * 1e-2
		if off > 1e-8 {
			off = 1e-8
		}
		linalg.JacobiSVDTol(sv.w, sv.v, sv.s, off)
		sv.scaled = true
	}
	// Decreasing order by insertion sort: r is micro-tile sized.
	sv.idx = linalg.GetInts(r)
	for i := range sv.idx {
		sv.idx[i] = i
	}
	for i := 1; i < r; i++ {
		j, key := i, sv.idx[i]
		for j > 0 && sv.s[sv.idx[j-1]] < sv.s[key] {
			sv.idx[j] = sv.idx[j-1]
			j--
		}
		sv.idx[j] = key
	}
	sv.ss = linalg.GetVec(r)
	for i, j := range sv.idx {
		sv.ss[i] = sv.s[j]
	}
	return sv
}

// truncate returns the rank keeping the relative Frobenius tail within tol,
// counting extraTailSq (energy already lost outside this spectrum, e.g. a
// range-finder residual) toward both the total and the tail. The result is
// at least 1 when any singular value is nonzero, and capped at maxRank
// (0 = uncapped).
func (sv *smallSVD) truncate(tol, extraTailSq float64, maxRank int) int {
	if len(sv.ss) == 0 || sv.ss[0] == 0 {
		return 0
	}
	total := extraTailSq
	for _, v := range sv.ss {
		total += v * v
	}
	thresh := tol * tol * total
	tail := extraTailSq
	k := len(sv.ss)
	for k > 0 {
		v := sv.ss[k-1]
		if tail+v*v > thresh {
			break
		}
		tail += v * v
		k--
	}
	k = max(k, 1)
	if maxRank > 0 && k > maxRank {
		k = maxRank
	}
	return k
}

// leftScaledInto writes the top-k left singular vectors scaled by their
// singular values (U·diag(S), p×k) into x.
func (sv *smallSVD) leftScaledInto(x *linalg.Matrix, k int) {
	for j := 0; j < k; j++ {
		col := sv.idx[j]
		src := sv.w
		if sv.trans {
			src = sv.v
		}
		if !sv.trans && sv.scaled {
			copy(x.Col(j), src.Col(col)) // Jacobi w columns are already U·s
			continue
		}
		xc, sc := x.Col(j), src.Col(col)
		s := sv.s[col]
		for i := range xc {
			xc[i] = s * sc[i]
		}
	}
}

// rightInto writes the top-k right singular vectors (orthonormal, q×k)
// into x.
func (sv *smallSVD) rightInto(x *linalg.Matrix, k int) {
	for j := 0; j < k; j++ {
		col := sv.idx[j]
		src := sv.v
		if sv.trans {
			src = sv.w
		}
		if sv.trans && sv.scaled {
			// Jacobi w columns carry U·s: normalize.
			xc, wc := x.Col(j), src.Col(col)
			if s := sv.s[col]; s > 0 {
				inv := 1 / s
				for i := range xc {
					xc[i] = inv * wc[i]
				}
			} else {
				for i := range xc {
					xc[i] = 0
				}
			}
			continue
		}
		copy(x.Col(j), src.Col(col))
	}
}

// release returns all pooled scratch.
func (sv *smallSVD) release() {
	linalg.PutMat(sv.w)
	linalg.PutMat(sv.v)
	linalg.PutVec(sv.s)
	linalg.PutVec(sv.ss)
	linalg.PutInts(sv.idx)
}
