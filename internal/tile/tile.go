// Package tile provides the tiled-matrix descriptor used by the
// task-parallel algorithms: an m×n matrix stored as an array of independent
// column-major tiles, each of which can be owned, locked and computed on by
// one task at a time. It plays the role of the Chameleon/HiCMA matrix
// descriptors the paper initializes in pmvn_init().
package tile

import (
	"fmt"

	"repro/internal/linalg"
)

// Matrix is an M×N matrix partitioned into TS×TS tiles (boundary tiles are
// smaller), stored as separately allocated column-major tiles so two tasks
// touching different tiles never share storage: tiles[i + j*MT] is tile
// (i,j).
type Matrix struct {
	M, N   int
	TS     int
	MT, NT int // number of tile rows / columns
	tiles  []*linalg.Matrix
}

// New returns an M×N tiled matrix with tile size ts, all tiles allocated and
// zeroed.
func New(m, n, ts int) *Matrix {
	if m < 0 || n < 0 || ts <= 0 {
		panic(fmt.Sprintf("tile: invalid descriptor %dx%d ts=%d", m, n, ts))
	}
	mt, nt := ceilDiv(m, ts), ceilDiv(n, ts)
	t := &Matrix{M: m, N: n, TS: ts, MT: mt, NT: nt, tiles: make([]*linalg.Matrix, mt*nt)}
	for j := 0; j < nt; j++ {
		for i := 0; i < mt; i++ {
			t.tiles[i+j*mt] = linalg.NewMatrix(t.TileRows(i), t.TileCols(j))
		}
	}
	return t
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// TileRows returns the row count of tile row i.
//repro:noalloc
func (t *Matrix) TileRows(i int) int {
	if i == t.MT-1 {
		if r := t.M - i*t.TS; r > 0 {
			return r
		}
	}
	return min(t.TS, t.M)
}

// TileCols returns the column count of tile column j.
func (t *Matrix) TileCols(j int) int {
	if j == t.NT-1 {
		if c := t.N - j*t.TS; c > 0 {
			return c
		}
	}
	return min(t.TS, t.N)
}

// Tile returns tile (i,j).
//repro:noalloc
func (t *Matrix) Tile(i, j int) *linalg.Matrix {
	if i < 0 || i >= t.MT || j < 0 || j >= t.NT {
		//repro:alloc-ok out-of-grid panic path
		panic(fmt.Sprintf("tile: tile (%d,%d) out of %dx%d grid", i, j, t.MT, t.NT))
	}
	return t.tiles[i+j*t.MT]
}

// SetTile replaces tile (i,j); the replacement must have the same shape.
func (t *Matrix) SetTile(i, j int, m *linalg.Matrix) {
	cur := t.Tile(i, j)
	if m.Rows != cur.Rows || m.Cols != cur.Cols {
		panic("tile: SetTile shape mismatch")
	}
	t.tiles[i+j*t.MT] = m
}

// At returns global element (i,j).
func (t *Matrix) At(i, j int) float64 {
	return t.Tile(i/t.TS, j/t.TS).At(i%t.TS, j%t.TS)
}

// Set assigns global element (i,j).
func (t *Matrix) Set(i, j int, v float64) {
	t.Tile(i/t.TS, j/t.TS).Set(i%t.TS, j%t.TS, v)
}

// FromDense partitions a dense matrix into tiles (copying).
func FromDense(a *linalg.Matrix, ts int) *Matrix {
	t := New(a.Rows, a.Cols, ts)
	for tj := 0; tj < t.NT; tj++ {
		for ti := 0; ti < t.MT; ti++ {
			dst := t.Tile(ti, tj)
			src := a.View(ti*ts, tj*ts, dst.Rows, dst.Cols)
			dst.CopyFrom(src)
		}
	}
	return t
}

// ToDense reassembles the tiles into a compact dense matrix (copying).
func (t *Matrix) ToDense() *linalg.Matrix {
	a := linalg.NewMatrix(t.M, t.N)
	for tj := 0; tj < t.NT; tj++ {
		for ti := 0; ti < t.MT; ti++ {
			src := t.Tile(ti, tj)
			a.View(ti*t.TS, tj*t.TS, src.Rows, src.Cols).CopyFrom(src)
		}
	}
	return a
}

// Fill assembles every tile through fn(dst, rowOffset, colOffset); fn writes
// the tile contents for the global sub-block starting at that offset. This
// is how covariance matrices are built tile-by-tile without ever
// materializing the dense matrix.
func (t *Matrix) Fill(fn func(dst *linalg.Matrix, row0, col0 int)) {
	for tj := 0; tj < t.NT; tj++ {
		for ti := 0; ti < t.MT; ti++ {
			fn(t.Tile(ti, tj), ti*t.TS, tj*t.TS)
		}
	}
}
