package tile

import (
	"math"

	"repro/internal/linalg"
)

// LowRank is a low-rank tile A ≈ U·Vᵀ with U m×k and V n×k (HiCMA-style).
// A zero-rank tile (k = 0) represents an exactly-zero block. U and V may
// live on the linalg workspace pool: a tile owns its factors outright and
// recycles them when recompression replaces them.
type LowRank struct {
	U, V *linalg.Matrix
	M, N int // logical tile shape
}

// Rank returns the current rank k.
//repro:noalloc
func (t *LowRank) Rank() int {
	if t.U == nil {
		return 0
	}
	return t.U.Cols
}

// Dense materializes U·Vᵀ as a dense m×n matrix.
func (t *LowRank) Dense() *linalg.Matrix {
	d := linalg.NewMatrix(t.M, t.N)
	if t.Rank() > 0 {
		linalg.Gemm(false, true, 1, t.U, t.V, 0, d)
	}
	return d
}

// Clone returns a deep copy.
func (t *LowRank) Clone() *LowRank {
	c := &LowRank{M: t.M, N: t.N}
	if t.U != nil {
		c.U, c.V = t.U.Clone(), t.V.Clone()
	}
	return c
}

// AddLowRank appends a second low-rank term αU₂V₂ᵀ to the tile
// (A ← U₁V₁ᵀ + α·U₂V₂ᵀ) by concatenating factors and recompressing to tol
// (capped at maxRank, 0 = uncapped) via the standard QR+SVD rounding. The
// tile's previous factors are recycled onto the workspace pool, so the
// factorization's recompression loop is allocation-free at steady state.
//
// Updates that fall below the rounding floor are dropped without touching
// the factors: rounding at tol would truncate them anyway, and the skip
// test costs O(k·(m+n)) against RoundLR's O(k²·(m+n) + k³). The test uses
// the invariant RoundLR establishes — U's columns are orthogonal (the
// singular values folded in) and V's orthonormal — so ‖A‖_F is exactly the
// norm of U's column norms, while the update norm is bounded by the
// triangle inequality over its rank-1 terms. The safety factor keeps the
// sum of all drops across a factorization step sequence under tol.
func (t *LowRank) AddLowRank(alpha float64, u2, v2 *linalg.Matrix, tol float64, maxRank int) {
	k1, k2 := t.Rank(), u2.Cols
	if k2 == 0 {
		return
	}
	if k1 > 0 && tol > 0 {
		upd := 0.0
		for j := 0; j < k2; j++ {
			upd += linalg.Nrm2(u2.Col(j)) * linalg.Nrm2(v2.Col(j))
		}
		cur := 0.0
		for j := 0; j < k1; j++ {
			n := linalg.Nrm2(t.U.Col(j))
			cur += n * n
		}
		if math.Abs(alpha)*upd <= 0.05*tol*math.Sqrt(cur) {
			return
		}
	}
	ku := k1 + k2
	bigU := linalg.GetMat(t.M, ku)
	bigV := linalg.GetMat(t.N, ku)
	for j := 0; j < k1; j++ {
		copy(bigU.Col(j), t.U.Col(j))
		copy(bigV.Col(j), t.V.Col(j))
	}
	for j := 0; j < k2; j++ {
		uc := bigU.Col(k1 + j)
		copy(uc, u2.Col(j))
		linalg.Scal(alpha, uc)
		copy(bigV.Col(k1+j), v2.Col(j))
	}
	u, v := RoundLR(bigU, bigV, tol, maxRank)
	linalg.PutMat(bigU)
	linalg.PutMat(bigV)
	linalg.PutMat(t.U)
	linalg.PutMat(t.V)
	t.U, t.V = u, v
}

// RoundLR recompresses the product bigU·bigVᵀ to the requested tolerance:
// QR both factors in place, SVD the small core Ru·Rvᵀ, truncate. The inputs
// are OVERWRITTEN (they hold the packed QR factors afterwards); the caller
// keeps ownership and may recycle them once the call returns. The returned
// factors are drawn from the workspace pool.
//
// At loose tolerances the panel orthogonalization runs as CholeskyQR —
// Gram, Cholesky, triangular solve — which is pure level-3 work on the
// packed vector kernels. CholQR loses ~cond(panel)²·ε of orthogonality, and
// the panels' spread is ~1/tol, so the path is gated to tol ≥ 1e-5 (error
// ≤ ~1e-6, far under the truncation) with Householder as the fallback
// whenever the Gram matrix is numerically semidefinite.
func RoundLR(bigU, bigV *linalg.Matrix, tol float64, maxRank int) (*linalg.Matrix, *linalg.Matrix) {
	if tol >= 1e-5 {
		if u, v, ok := roundLRCholQR(bigU, bigV, tol, maxRank); ok {
			return u, v
		}
	}
	m, n, ku := bigU.Rows, bigV.Rows, bigU.Cols
	p, q := min(m, ku), min(n, ku)
	tauU := linalg.GetVec(p)
	tauV := linalg.GetVec(q)
	qu := linalg.QRInPlace(bigU, tauU)
	qv := linalg.QRInPlace(bigV, tauV)
	ru := linalg.GetMat(p, ku)
	rv := linalg.GetMat(q, ku)
	qu.RInto(ru)
	qv.RInto(rv)
	core := linalg.GetMat(p, q)
	linalg.Gemm(false, true, 1, ru, rv, 0, core)
	linalg.PutMat(ru)
	linalg.PutMat(rv)

	// Thin SVD of the small core with pooled scratch (working in core
	// itself); x1 picks up the left vectors scaled by the kept singular
	// values, x2 the right vectors.
	sv := svdPooled(core, tol)
	k := sv.truncate(tol, 0, maxRank)
	var u, v *linalg.Matrix
	if k > 0 {
		x1 := linalg.GetMat(p, k)
		x2 := linalg.GetMat(q, k)
		sv.leftScaledInto(x1, k)
		sv.rightInto(x2, k)
		u = linalg.GetMat(m, k)
		v = linalg.GetMat(n, k)
		qu.ApplyQInto(x1, u)
		qv.ApplyQInto(x2, v)
		linalg.PutMat(x1)
		linalg.PutMat(x2)
	}
	sv.release()
	linalg.PutMat(core)
	linalg.PutVec(tauU)
	linalg.PutVec(tauV)
	return u, v
}

// shiftedChol factorizes the Gram matrix g after adding the standard
// shifted-CholQR regularization δ·I with δ = 1e-12·tr(G). Concatenated
// low-rank panels are routinely numerically rank-deficient (the Schur
// updates largely live in the span of the existing factors), so the plain
// Gram Cholesky breaks down; the shift keeps every pivot ≥ δ while the
// factorization identity B = (B·L̃⁻ᵀ)·L̃ᵀ stays EXACT for any nonsingular
// L̃ — the shift only injects spurious spectrum of size ~√(δ·tr) ≈
// 1e-6·‖B‖, far below the gated tolerances, which the core SVD truncates.
func shiftedChol(g *linalg.Matrix) bool {
	tr := 0.0
	for i := 0; i < g.Rows; i++ {
		tr += g.At(i, i)
	}
	shift := 1e-12 * tr
	for i := 0; i < g.Rows; i++ {
		g.Add(i, i, shift)
	}
	return linalg.PotrfUnblocked(g) == nil
}

// roundLRCholQR is the level-3 rounding path: B = Q̃·L̃ᵀ with
// L̃ = chol(BᵀB + δI), so Q̃ = B·L̃⁻ᵀ materializes via SYRK + TRSM and the
// final factors via GEMM. It reports false — leaving the inputs intact —
// when a shifted Gram factorization still breaks down (essentially never)
// or the panels are too short for a nonsingular Gram.
func roundLRCholQR(bigU, bigV *linalg.Matrix, tol float64, maxRank int) (*linalg.Matrix, *linalg.Matrix, bool) {
	m, n, ku := bigU.Rows, bigV.Rows, bigU.Cols
	if ku > m || ku > n {
		return nil, nil, false
	}
	gu := linalg.GetMat(ku, ku)
	linalg.Syrk(true, 1, bigU, 0, gu)
	if !shiftedChol(gu) {
		linalg.PutMat(gu)
		return nil, nil, false
	}
	gv := linalg.GetMat(ku, ku)
	linalg.Syrk(true, 1, bigV, 0, gv)
	if !shiftedChol(gv) {
		linalg.PutMat(gv)
		linalg.PutMat(gu)
		return nil, nil, false
	}
	// SYRK only writes the lower triangles; clear the junk above the
	// diagonal before level-3 ops touch the full matrices.
	gu.LowerFromFull()
	gv.LowerFromFull()
	// core = Ru·Rvᵀ = Luᵀ·Lv.
	core := linalg.GetMat(ku, ku)
	linalg.Gemm(true, false, 1, gu, gv, 0, core)
	// Orthonormalize the panels in place: Q = B·L⁻ᵀ.
	linalg.TrsmLower(linalg.Right, true, 1, gu, bigU)
	linalg.TrsmLower(linalg.Right, true, 1, gv, bigV)
	linalg.PutMat(gu)
	linalg.PutMat(gv)

	sv := svdPooled(core, tol)
	k := sv.truncate(tol, 0, maxRank)
	var u, v *linalg.Matrix
	if k > 0 {
		x1 := linalg.GetMat(ku, k)
		x2 := linalg.GetMat(ku, k)
		sv.leftScaledInto(x1, k)
		sv.rightInto(x2, k)
		u = linalg.GetMat(m, k)
		v = linalg.GetMat(n, k)
		linalg.Gemm(false, false, 1, bigU, x1, 0, u)
		linalg.Gemm(false, false, 1, bigV, x2, 0, v)
		linalg.PutMat(x1)
		linalg.PutMat(x2)
	}
	sv.release()
	linalg.PutMat(core)
	return u, v, true
}

// ApplyRightTrans computes c = alpha·b·(U·Vᵀ)ᵀ + beta·c = alpha·(b·V)·Uᵀ +
// beta·c without densifying the tile — the cheap level-3 form the TLR PMVN
// propagation applies (paper Algorithm 2, lines 11–12), in the lane-major
// (chains × rows) layout of the chain-blocked sweep: the sample lanes run
// down the stride-1 axis of b and c. A rank-0 tile still applies the beta
// scaling (beta = 0 fully defines c, even over uninitialized scratch).
//repro:noalloc
func (t *LowRank) ApplyRightTrans(alpha float64, b *linalg.Matrix, beta float64, c *linalg.Matrix) {
	k := t.Rank()
	if k == 0 {
		switch beta {
		case 1:
		case 0:
			c.Zero()
		default:
			for j := 0; j < c.Cols; j++ {
				linalg.Scal(beta, c.Col(j))
			}
		}
		return
	}
	w := linalg.GetMat(b.Rows, k)
	linalg.Gemm(false, false, 1, b, t.V, 0, w)
	linalg.Gemm(false, true, alpha, w, t.U, beta, c)
	linalg.PutMat(w)
}
