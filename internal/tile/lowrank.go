package tile

import "repro/internal/linalg"

// LowRank is a low-rank tile A ≈ U·Vᵀ with U m×k and V n×k (HiCMA-style).
// A zero-rank tile (k = 0) represents an exactly-zero block.
type LowRank struct {
	U, V *linalg.Matrix
	M, N int // logical tile shape
}

// Rank returns the current rank k.
func (t *LowRank) Rank() int {
	if t.U == nil {
		return 0
	}
	return t.U.Cols
}

// Dense materializes U·Vᵀ as a dense m×n matrix.
func (t *LowRank) Dense() *linalg.Matrix {
	d := linalg.NewMatrix(t.M, t.N)
	if t.Rank() > 0 {
		linalg.Gemm(false, true, 1, t.U, t.V, 0, d)
	}
	return d
}

// Clone returns a deep copy.
func (t *LowRank) Clone() *LowRank {
	c := &LowRank{M: t.M, N: t.N}
	if t.U != nil {
		c.U, c.V = t.U.Clone(), t.V.Clone()
	}
	return c
}

// Compress builds a low-rank tile from a dense block by truncated SVD,
// keeping the smallest rank whose tail satisfies ‖tail‖_F ≤ tol·‖A‖_F,
// capped at maxRank (0 means no cap). The singular values are folded into U.
func Compress(a *linalg.Matrix, tol float64, maxRank int) *LowRank {
	res := linalg.SVD(a)
	k := linalg.TruncationRank(res.S, tol)
	if res.S[0] == 0 {
		k = 0
	}
	if maxRank > 0 && k > maxRank {
		k = maxRank
	}
	t := &LowRank{M: a.Rows, N: a.Cols}
	if k == 0 {
		return t
	}
	t.U = linalg.NewMatrix(a.Rows, k)
	t.V = linalg.NewMatrix(a.Cols, k)
	for j := 0; j < k; j++ {
		copy(t.U.Col(j), res.U.Col(j))
		linalg.Scal(res.S[j], t.U.Col(j))
		copy(t.V.Col(j), res.V.Col(j))
	}
	return t
}

// AddLowRank appends a second low-rank term αU₂V₂ᵀ to the tile
// (A ← U₁V₁ᵀ + α·U₂V₂ᵀ) by concatenating factors and recompressing to tol
// (capped at maxRank, 0 = uncapped) via the standard QR+SVD rounding.
func (t *LowRank) AddLowRank(alpha float64, u2, v2 *linalg.Matrix, tol float64, maxRank int) {
	k1, k2 := t.Rank(), u2.Cols
	if k2 == 0 {
		return
	}
	ku := k1 + k2
	bigU := linalg.NewMatrix(t.M, ku)
	bigV := linalg.NewMatrix(t.N, ku)
	for j := 0; j < k1; j++ {
		copy(bigU.Col(j), t.U.Col(j))
		copy(bigV.Col(j), t.V.Col(j))
	}
	for j := 0; j < k2; j++ {
		copy(bigU.Col(k1+j), u2.Col(j))
		linalg.Scal(alpha, bigU.Col(k1+j))
		copy(bigV.Col(k1+j), v2.Col(j))
	}
	u, v := RoundLR(bigU, bigV, tol, maxRank)
	t.U, t.V = u, v
}

// RoundLR recompresses the product bigU·bigVᵀ to the requested tolerance:
// QR both factors, SVD the small core Ru·Rvᵀ, truncate.
func RoundLR(bigU, bigV *linalg.Matrix, tol float64, maxRank int) (*linalg.Matrix, *linalg.Matrix) {
	qu := linalg.QR(bigU)
	qv := linalg.QR(bigV)
	ru, rv := qu.R(), qv.R()
	core := linalg.NewMatrix(ru.Rows, rv.Rows)
	linalg.Gemm(false, true, 1, ru, rv, 0, core)
	res := linalg.SVD(core)
	k := linalg.TruncationRank(res.S, tol)
	if res.S[0] == 0 {
		return nil, nil
	}
	if maxRank > 0 && k > maxRank {
		k = maxRank
	}
	// u = Qu·(Ub·diag(S))[:,0:k], v = Qv·Vb[:,0:k], applying the Householder
	// reflectors directly instead of forming the thin Q factors.
	ub := linalg.NewMatrix(res.U.Rows, k)
	for j := 0; j < k; j++ {
		copy(ub.Col(j), res.U.Col(j))
		linalg.Scal(res.S[j], ub.Col(j))
	}
	vb := linalg.NewMatrix(res.V.Rows, k)
	for j := 0; j < k; j++ {
		copy(vb.Col(j), res.V.Col(j))
	}
	return qu.ApplyQ(ub), qv.ApplyQ(vb)
}

// ApplyTo accumulates c += alpha·(U·Vᵀ)·b without densifying the tile:
// first w = Vᵀ·b (k×cols), then c += alpha·U·w. This is the cheap GEMM the
// TLR PMVN propagation uses (paper Algorithm 2, lines 11–12).
func (t *LowRank) ApplyTo(alpha float64, b, c *linalg.Matrix) {
	k := t.Rank()
	if k == 0 {
		return
	}
	w := linalg.NewMatrix(k, b.Cols)
	linalg.Gemm(true, false, 1, t.V, b, 0, w)
	linalg.Gemm(false, false, alpha, t.U, w, 1, c)
}

// ApplyToPair accumulates the same low-rank product into two outputs
// (c1 += alpha·UVᵀb and c2 += alpha·UVᵀb) computing the shared w = Vᵀ·b
// only once. The PMVN propagation uses it for the paired A/B limit updates.
func (t *LowRank) ApplyToPair(alpha float64, b, c1, c2 *linalg.Matrix) {
	k := t.Rank()
	if k == 0 {
		return
	}
	w := linalg.NewMatrix(k, b.Cols)
	linalg.Gemm(true, false, 1, t.V, b, 0, w)
	linalg.Gemm(false, false, alpha, t.U, w, 1, c1)
	linalg.Gemm(false, false, alpha, t.U, w, 1, c2)
}
