package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestAsciiMapDimensions(t *testing.T) {
	var buf bytes.Buffer
	vals := make([]float64, 12)
	for i := range vals {
		vals[i] = float64(i)
	}
	asciiMap(&buf, vals, 4, 3, 0, 11)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	for _, l := range lines {
		if len(l) != 4 {
			t.Fatalf("line %q has width %d", l, len(l))
		}
	}
	// Row 0 is printed last (bottom of the map); its first cell is the
	// minimum value → lightest shade (space).
	if lines[2][0] != ' ' {
		t.Errorf("minimum cell rendered as %q", lines[2][0])
	}
	// Maximum value (top right) gets the darkest shade.
	if lines[0][3] != '@' {
		t.Errorf("maximum cell rendered as %q", lines[0][3])
	}
}

func TestAsciiMapClampsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	asciiMap(&buf, []float64{-10, 100}, 2, 1, 0, 1)
	line := strings.TrimRight(buf.String(), "\n")
	if line[0] != ' ' || line[1] != '@' {
		t.Errorf("clamping failed: %q", line)
	}
}

func TestAsciiMapDegenerateRange(t *testing.T) {
	// lo == hi must not divide by zero (minMax widens, but direct calls may
	// pass equal bounds).
	var buf bytes.Buffer
	asciiMap(&buf, []float64{1, 1}, 2, 1, 1, 1)
	if !strings.Contains(" .:-=+*#%@", string(buf.String()[0])) {
		t.Errorf("unexpected output %q", buf.String())
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := minMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("minMax = (%v,%v)", lo, hi)
	}
	lo, hi = minMax([]float64{5, 5})
	if lo != 5 || hi <= lo {
		t.Errorf("degenerate minMax = (%v,%v): hi must exceed lo", lo, hi)
	}
}

func TestBoolMap(t *testing.T) {
	m := boolMap([]int{0, 3}, 5)
	want := []float64{1, 0, 0, 1, 0}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("boolMap = %v", m)
		}
	}
}

func TestRankBucket(t *testing.T) {
	cases := map[int]int{1: 0, 5: 0, 6: 1, 10: 1, 11: 2, 20: 2, 21: 3, 50: 3, 51: 4, 100: 4, 101: 5, 980: 5}
	for r, want := range cases {
		if got := rankBucket(r); got != want {
			t.Errorf("rankBucket(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestSortInts(t *testing.T) {
	v := []int{512, 16, 128, 64}
	sortInts(v)
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			t.Fatalf("not sorted: %v", v)
		}
	}
}

func TestLevelsMatchPaper(t *testing.T) {
	if len(Levels) != 3 {
		t.Fatal("paper has three correlation levels")
	}
	want := map[string]float64{"weak": 0.033, "medium": 0.1, "strong": 0.234}
	for _, lv := range Levels {
		if want[lv.Name] != lv.Range {
			t.Errorf("level %s has range %v", lv.Name, lv.Range)
		}
	}
}
