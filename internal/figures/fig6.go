package figures

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/excursion"
	"repro/internal/linalg"
)

// Fig6Row is one timing of the MC validation process.
type Fig6Row struct {
	Dim     int
	Samples int
	Seconds float64
	PHat    float64
}

// Fig6 reproduces the MC-validation cost figure (paper Figure 6): the wall
// time of the Monte Carlo validation algorithm across problem dimensions.
// As the paper notes, this validation is not part of the detection
// algorithm itself; its cost is reported for completeness.
func Fig6(w io.Writer, cfg Config) ([]Fig6Row, error) {
	sides := []int{15, 20, 25}
	samples := 5000
	if !cfg.Quick {
		sides = []int{20, 30, 40}
		samples = 50000
	}
	var rows []Fig6Row
	fmt.Fprintf(w, "Figure 6: MC validation cost (N=%d samples)\n", samples)
	fmt.Fprintf(w, "%8s %10s %12s %10s\n", "dim", "samples", "seconds", "p-hat")
	for _, side := range sides {
		_, sigma := exponentialCorrelation(side, 0.1)
		lCorr, err := linalg.Cholesky(sigma)
		if err != nil {
			return nil, err
		}
		n := side * side
		mean := make([]float64, n)
		sd := make([]float64, n)
		for i := range sd {
			sd[i] = 1
			mean[i] = 0.5 // uniformly elevated field
		}
		// Validate a fixed-size region: the top decile of locations.
		region := make([]int, n/10)
		for i := range region {
			region[i] = i
		}
		rng := rand.New(rand.NewSource(3))
		var phat float64
		sec := timeIt(func() {
			phat = excursion.MCValidate(region, mean, sd, 0.0, lCorr, samples, rng)
		})
		row := Fig6Row{Dim: n, Samples: samples, Seconds: sec, PHat: phat}
		rows = append(rows, row)
		fmt.Fprintf(w, "%8d %10d %12.3f %10.4f\n", row.Dim, row.Samples, row.Seconds, row.PHat)
	}
	return rows, nil
}
