package figures

import (
	"fmt"
	"io"
)

// Fig5Result holds one rank-distribution map.
type Fig5Result struct {
	Level    string
	N, TS    int
	Ranks    [][]int // Ranks[i][j] for tile (i,j), j < i
	MeanRank float64
	MaxRank  int
	// Histogram buckets the ranks like the paper's legend:
	// [1,5] (6,10] (11,20] (21,50] (51,100] (101,∞)
	Histogram [6]int
}

// Fig5 reproduces the TLR rank-distribution maps (paper Figure 5): compress
// the covariance of each correlation level at accuracy 1e-3 on a 20×20 tile
// grid (the paper's 19600² matrix with 980-tiles, scaled) and report the
// per-tile ranks.
func Fig5(w io.Writer, cfg Config) ([]Fig5Result, error) {
	side := 40 // n=1600, ts=80: a 20×20 tile grid like the paper's
	if !cfg.Quick {
		side = 70 // n=4900, ts=245
	}
	n := side * side
	ts := n / 20
	const tol = 1e-3
	var out []Fig5Result
	for _, lv := range Levels {
		_, sigma := exponentialCorrelation(side, lv.Range)
		a, meanRank, err := tlrPrecompress(sigma, ts, tol)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", lv.Name, err)
		}
		_, maxRank, _ := a.RankStats()
		res := Fig5Result{Level: lv.Name, N: n, TS: ts, Ranks: a.Ranks(), MeanRank: meanRank, MaxRank: maxRank}
		for i := 1; i < a.NT; i++ {
			for j := 0; j < i; j++ {
				res.Histogram[rankBucket(a.Ranks()[i][j])]++
			}
		}
		out = append(out, res)
		fmt.Fprintf(w, "Figure 5 (%s, range %.3f): %d×%d matrix, tile %d, acc %.0e — mean rank %.1f, max %d\n",
			lv.Name, lv.Range, n, n, ts, tol, meanRank, maxRank)
		fmt.Fprintf(w, "buckets [1,5]:%d (5,10]:%d (10,20]:%d (20,50]:%d (50,100]:%d (100,∞):%d\n",
			res.Histogram[0], res.Histogram[1], res.Histogram[2], res.Histogram[3], res.Histogram[4], res.Histogram[5])
		for i := 0; i < a.NT; i++ {
			for j := 0; j <= i; j++ {
				if j == i {
					fmt.Fprintf(w, "%4s", "D")
				} else {
					fmt.Fprintf(w, "%4d", res.Ranks[i][j])
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return out, nil
}

func rankBucket(r int) int {
	switch {
	case r <= 5:
		return 0
	case r <= 10:
		return 1
	case r <= 20:
		return 2
	case r <= 50:
		return 3
	case r <= 100:
		return 4
	default:
		return 5
	}
}
