package figures

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

var quick = Config{Quick: true, Workers: 2}

func TestFig1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 is heavy")
	}
	var buf bytes.Buffer
	rows, err := Fig1(&buf, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The MC validation must agree with the PMVN boundary probability
		// (the paper's MC-error panels; at our scaled n the raw 1−α−p̂ also
		// contains prefix discreteness, so we compare against the boundary
		// probability and keep a loose sanity band on the raw error).
		phatD := r.Conf - r.MCErrDense
		phatT := r.Conf - r.MCErrTLR
		if math.Abs(phatD-r.PrefixDense) > 0.03 || math.Abs(phatT-r.PrefixTLR) > 0.03 {
			t.Errorf("%s conf %.2f: MC vs PMVN mismatch: %v vs %v, %v vs %v",
				r.Level, r.Conf, phatD, r.PrefixDense, phatT, r.PrefixTLR)
		}
		if math.Abs(r.MCErrDense) > 0.15 || math.Abs(r.MCErrTLR) > 0.15 {
			t.Errorf("%s conf %.2f: MC errors too large: %v %v", r.Level, r.Conf, r.MCErrDense, r.MCErrTLR)
		}
		// TLR at 1e-3 accuracy: probability differences well below 1e-2.
		if r.DenseTLRDiff > 1e-2 {
			t.Errorf("%s conf %.2f: dense-TLR diff %v", r.Level, r.Conf, r.DenseTLRDiff)
		}
		// The confidence region is a subset of the marginal region.
		if r.RegionDense > r.MarginalSize {
			t.Errorf("%s conf %.2f: |E|=%d exceeds marginal region %d", r.Level, r.Conf, r.RegionDense, r.MarginalSize)
		}
	}
	// Regions shrink as confidence grows, per level.
	for _, level := range []string{"weak", "medium", "strong"} {
		prev := 1 << 30
		for _, r := range rows {
			if r.Level != level {
				continue
			}
			if r.RegionDense > prev {
				t.Errorf("%s: region grew with confidence", level)
			}
			prev = r.RegionDense
		}
	}
}

func TestFig2WindApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 is heavy")
	}
	var buf bytes.Buffer
	res, err := Fig2(&buf, quick)
	if err != nil {
		t.Fatal(err)
	}
	// Dense and TLR regions must agree almost everywhere (paper: ~1e-4
	// differences).
	if res.Overlap < 0.9 {
		t.Errorf("dense/TLR region overlap %v", res.Overlap)
	}
	if res.MaxDiff > 0.05 {
		t.Errorf("max confidence-function difference %v", res.MaxDiff)
	}
	// The confidence region must be smaller than the marginal p>0.95 set
	// is misleadingly large — at minimum it must not cover everything.
	if len(res.RegionDense) == 0 || len(res.RegionDense) >= res.N {
		t.Errorf("implausible region size %d of %d", len(res.RegionDense), res.N)
	}
	out := buf.String()
	for _, panel := range []string{"Figure 2a", "Figure 2b", "Figure 2c", "Figure 2d", "Figure 3"} {
		if !strings.Contains(out, panel) {
			t.Errorf("output missing %s", panel)
		}
	}
}

func TestFig4AndTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 is heavy")
	}
	var buf bytes.Buffer
	rows, err := Fig4(&buf, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2*2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("non-positive timing for %+v", r)
		}
	}
	sp := Table2(&buf, rows)
	if len(sp) == 0 {
		t.Fatal("no speedups derived")
	}
	for q, s := range sp {
		if s < 1 {
			t.Errorf("TLR slower than dense at QMC %d: %.2fX", q, s)
		}
	}
	// The paper's Table II shape: speedup grows (or at least does not
	// shrink much) with the QMC sample size.
	if sp[1000] < sp[100]*0.7 {
		t.Errorf("speedup collapsed with larger N: %v vs %v", sp[1000], sp[100])
	}
}

func TestFig5RankMaps(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 is heavy")
	}
	var buf bytes.Buffer
	res, err := Fig5(&buf, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d levels", len(res))
	}
	// Stronger correlation compresses better: mean rank decreases from
	// weak to strong (paper Figure 5's main observation).
	if !(res[2].MeanRank <= res[1].MeanRank && res[1].MeanRank <= res[0].MeanRank) {
		t.Errorf("mean ranks not decreasing with correlation: %v %v %v",
			res[0].MeanRank, res[1].MeanRank, res[2].MeanRank)
	}
	for _, r := range res {
		if r.MeanRank <= 0 || r.MaxRank > r.TS {
			t.Errorf("%s: implausible ranks mean=%v max=%d ts=%d", r.Level, r.MeanRank, r.MaxRank, r.TS)
		}
		total := 0
		for _, h := range r.Histogram {
			total += h
		}
		nt := r.N / r.TS
		if total != nt*(nt-1)/2 {
			t.Errorf("%s: histogram covers %d tiles, want %d", r.Level, total, nt*(nt-1)/2)
		}
	}
}

func TestFig6Timing(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig6(&buf, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	prev := 0.0
	for _, r := range rows {
		if r.Seconds <= 0 || r.PHat < 0 || r.PHat > 1 {
			t.Errorf("implausible row %+v", r)
		}
		if r.Seconds < prev*0.2 {
			t.Errorf("cost did not grow with dimension: %+v", rows)
		}
		prev = r.Seconds
	}
}

func TestFig7AndTable3(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig7(&buf, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Strong scaling: at fixed dim and method, more nodes = faster.
	byKey := map[[2]interface{}]map[int]float64{}
	for _, r := range rows {
		k := [2]interface{}{r.Dim, r.Method}
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
		}
		byKey[k][r.Nodes] = r.TotalSec
	}
	for k, m := range byKey {
		var nodes []int
		for n := range m {
			nodes = append(nodes, n)
		}
		sortInts(nodes)
		for i := 1; i < len(nodes); i++ {
			if m[nodes[i]] > m[nodes[i-1]]*1.05 {
				t.Errorf("%v: time grew from %d to %d nodes (%v -> %v)",
					k, nodes[i-1], nodes[i], m[nodes[i-1]], m[nodes[i]])
			}
		}
	}
	sp := Table3(&buf, rows)
	for n, s := range sp {
		// The paper's Table III: modest 1.3–1.8X overall speedups. Allow a
		// wide band, but both directions must stay plausible.
		if s < 1.0 || s > 5 {
			t.Errorf("nodes %d: overall TLR speedup %.2fX outside plausible band", n, s)
		}
	}
}
