package figures

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/wind"
)

// Fig2Result summarizes the wind-speed application (paper Figures 2 and 3).
type Fig2Result struct {
	N            int
	RegionDense  []int
	RegionTLR    []int
	Overlap      float64   // Jaccard overlap of the two regions
	LevelDiffs   []float64 // |F_dense − F_TLR| per probability-level bucket
	LevelCenters []float64
	MaxDiff      float64
}

// Fig2 runs the wind-farm siting application end to end on the synthetic
// Saudi wind dataset: standardize the target day, model the field with the
// paper's fitted Matérn smoothness, detect the u = 4 m/s, 95%-confidence
// regions with dense and TLR factorizations, and render the four panels of
// Figure 2 as ASCII maps. The per-level dense-vs-TLR differences form
// Figure 3.
func Fig2(w io.Writer, cfg Config) (*Fig2Result, error) {
	nx, ny, days := 20, 16, 90
	qmcN := 3000
	if !cfg.Quick {
		nx, ny, days = 32, 26, 160
		qmcN = 10000
	}
	const (
		u       = 4.0  // m/s threshold, following Chen et al.
		conf    = 0.95 // paper's confidence level
		tlrTol  = 1e-4 // paper's wind-experiment accuracy
		fPoints = 24
	)
	ds, err := wind.Generate(wind.Config{Nx: nx, Ny: ny, Days: days, Seed: 11})
	if err != nil {
		return nil, err
	}
	day := days * 2 / 3 // a mid-summer day, standing in for July 15 2015
	_, mean, sd := ds.Standardize(day)
	n := ds.Geom.Len()

	// The standardized field is modeled as a zero-mean, unit-variance
	// Matérn GRF. The paper's ExaGeoStat fit found (1, 0.005069, 1.43391)
	// in lon/lat units; our synthetic generator's truth is Range = 0.12 of
	// the unit square with the same smoothness, so we use the generating
	// correlation — the analogue of a perfectly converged MLE fit.
	corrM := windCorrelation(nx, ny)
	rt := taskrt.New(cfg.workers())
	defer rt.Shutdown()
	ts := max(16, n/10)
	fD, err := denseFactor(rt, corrM, ts)
	if err != nil {
		return nil, err
	}
	fT, _, err := tlrFactor(rt, corrM, ts, tlrTol)
	if err != nil {
		return nil, err
	}
	cD, err := newComputer(rt, fD, mean, sd, u, qmcN)
	if err != nil {
		return nil, err
	}
	cT, err := newComputer(rt, fT, mean, sd, u, qmcN)
	if err != nil {
		return nil, err
	}
	resD := cD.ConfidenceFunction(fPoints)
	resT := cT.ConfidenceFunction(fPoints)
	regD := cD.Region(conf)
	regT := cT.Region(conf)

	// Panels.
	lo, hi := minMax(ds.Speeds[day])
	fmt.Fprintf(w, "Figure 2a: wind speed on target day (%.1f–%.1f m/s)\n", lo, hi)
	asciiMap(w, ds.Speeds[day], nx, ny, lo, hi)
	pM := cD.MarginalProbs()
	fmt.Fprintf(w, "\nFigure 2b: marginal probability P(wind > %g m/s)\n", u)
	asciiMap(w, pM, nx, ny, 0, 1)
	fmt.Fprintf(w, "\nFigure 2c: confidence region, dense (|E| = %d of %d)\n", len(regD), n)
	asciiMap(w, boolMap(regD, n), nx, ny, 0, 1)
	fmt.Fprintf(w, "\nFigure 2d: confidence region, TLR acc %.0e (|E| = %d of %d)\n", tlrTol, len(regT), n)
	asciiMap(w, boolMap(regT, n), nx, ny, 0, 1)

	// Figure 3: dense-vs-TLR confidence-function differences by level.
	const buckets = 10
	diffSum := make([]float64, buckets)
	diffCount := make([]int, buckets)
	maxDiff := 0.0
	for i := 0; i < n; i++ {
		d := math.Abs(resD.F[i] - resT.F[i])
		maxDiff = math.Max(maxDiff, d)
		bi := int(resD.F[i] * buckets)
		if bi >= buckets {
			bi = buckets - 1
		}
		diffSum[bi] += d
		diffCount[bi]++
	}
	res := &Fig2Result{N: n, RegionDense: regD, RegionTLR: regT, MaxDiff: maxDiff}
	fmt.Fprintf(w, "\nFigure 3: |F_dense − F_TLR| by probability level\n")
	fmt.Fprintf(w, "%-12s %12s %8s\n", "level", "mean-diff", "count")
	for bIdx := 0; bIdx < buckets; bIdx++ {
		center := (float64(bIdx) + 0.5) / buckets
		mean := 0.0
		if diffCount[bIdx] > 0 {
			mean = diffSum[bIdx] / float64(diffCount[bIdx])
		}
		res.LevelCenters = append(res.LevelCenters, center)
		res.LevelDiffs = append(res.LevelDiffs, mean)
		fmt.Fprintf(w, "%-12.2f %12.3e %8d\n", center, mean, diffCount[bIdx])
	}
	fmt.Fprintf(w, "max |F_dense − F_TLR| = %.3e\n", maxDiff)

	// Region overlap (Jaccard).
	inD := map[int]bool{}
	for _, i := range regD {
		inD[i] = true
	}
	inter := 0
	for _, i := range regT {
		if inD[i] {
			inter++
		}
	}
	union := len(regD) + len(regT) - inter
	if union > 0 {
		res.Overlap = float64(inter) / float64(union)
	} else {
		res.Overlap = 1
	}
	fmt.Fprintf(w, "dense/TLR region Jaccard overlap = %.3f\n", res.Overlap)
	return res, nil
}

// windCorrelation builds the Matérn correlation of the standardized wind
// anomaly on the generator's unit grid (the generating model, i.e. a
// perfectly converged MLE fit; smoothness 1.43391 as in the paper).
func windCorrelation(nx, ny int) *linalg.Matrix {
	g := geo.RegularGrid(nx, ny)
	k := cov.NewMatern(1, 0.12, 1.43391)
	return cov.Matrix(g, &cov.Nugget{Kernel: k, Tau2: 1e-6})
}
