package figures

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/excursion"
	"repro/internal/linalg"
	"repro/internal/taskrt"
)

// Fig1Row is one (correlation level, confidence level) cell of Figure 1.
type Fig1Row struct {
	Level        string
	Conf         float64 // 1 − α
	RegionDense  int     // |E⁺| via dense factorization
	RegionTLR    int     // |E⁺| via TLR factorization
	MarginalSize int     // #{pM ≥ 1−α}: the naive marginal-probability region
	MCErrDense   float64 // 1−α − p̂(α), dense
	MCErrTLR     float64 // 1−α − p̂(α), TLR
	PrefixDense  float64 // PMVN probability at the dense region boundary
	PrefixTLR    float64 // PMVN probability at the TLR region boundary
	DenseTLRDiff float64 // |P_dense − P_TLR| at the dense region boundary
}

// Fig1 reproduces the accuracy assessment on the synthetic datasets
// (paper Figure 1): confidence-region detection with dense and TLR
// factorizations on posterior fields at three correlation levels, validated
// with the MC algorithm. It returns all rows and writes a table.
func Fig1(w io.Writer, cfg Config) ([]Fig1Row, error) {
	side := 16 // 256 locations
	qmcN := 2500
	mcN := 12000
	obsFrac := 0.25
	if !cfg.Quick {
		side = 32 // 1024 locations
		qmcN = 10000
		mcN = 50000
	}
	tlrTol := 1e-3
	u := 0.0
	confs := []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95}

	var rows []Fig1Row
	fmt.Fprintf(w, "Figure 1: CRD accuracy on %dx%d synthetic posterior fields (QMC N=%d, MC val N=%d, TLR acc %.0e)\n",
		side, side, qmcN, mcN, tlrTol)
	fmt.Fprintf(w, "%-8s %6s %8s %8s %9s %12s %12s %12s\n",
		"level", "1-a", "|E|dense", "|E|tlr", "marginal", "MCerr-dense", "MCerr-tlr", "dense-tlr")
	for _, lv := range Levels {
		rng := rand.New(rand.NewSource(42))
		post, mu, err := fig1Posterior(side, obsFrac, lv.Range, rng)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", lv.Name, err)
		}
		corr, sd := excursion.CorrelationFromCovariance(post)
		lCorr, err := linalg.Cholesky(corr)
		if err != nil {
			return nil, err
		}
		rt := taskrt.New(cfg.workers())
		ts := side * side / 8
		fD, err := denseFactor(rt, corr, ts)
		if err != nil {
			rt.Shutdown()
			return nil, err
		}
		fT, _, err := tlrFactor(rt, corr, ts, tlrTol)
		if err != nil {
			rt.Shutdown()
			return nil, err
		}
		cD, err := newComputer(rt, fD, mu, sd, u, qmcN)
		if err != nil {
			rt.Shutdown()
			return nil, err
		}
		cT, err := newComputer(rt, fT, mu, sd, u, qmcN)
		if err != nil {
			rt.Shutdown()
			return nil, err
		}
		pM := cD.MarginalProbs()
		for _, conf := range confs {
			regD := cD.Region(conf)
			regT := cT.Region(conf)
			marg := 0
			for _, p := range pM {
				if p >= conf {
					marg++
				}
			}
			mcRng := rand.New(rand.NewSource(7))
			phatD := excursion.MCValidate(regD, mu, sd, u, lCorr, mcN, mcRng)
			mcRng = rand.New(rand.NewSource(7))
			phatT := excursion.MCValidate(regT, mu, sd, u, lCorr, mcN, mcRng)
			diff := math.Abs(cD.PrefixProb(len(regD)) - cT.PrefixProb(len(regD)))
			row := Fig1Row{
				Level: lv.Name, Conf: conf,
				RegionDense: len(regD), RegionTLR: len(regT), MarginalSize: marg,
				MCErrDense: conf - phatD, MCErrTLR: conf - phatT,
				PrefixDense: cD.PrefixProb(len(regD)), PrefixTLR: cT.PrefixProb(len(regT)),
				DenseTLRDiff: diff,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-8s %6.2f %8d %8d %9d %12.5f %12.5f %12.3e\n",
				row.Level, row.Conf, row.RegionDense, row.RegionTLR, row.MarginalSize,
				row.MCErrDense, row.MCErrTLR, row.DenseTLRDiff)
		}
		rt.Shutdown()
	}
	return rows, nil
}

// fig1Posterior reproduces the paper's synthetic posterior pipeline at a
// harness-chosen size: simulate the exponential field, observe a random
// subset with N(0,0.5²) noise and return the posterior covariance and mean
// (eqs. 7–8). It builds the pieces directly (rather than via
// datagen.NewSyntheticDataset) so the grid side and observation fraction
// stay configurable.
func fig1Posterior(side int, obsFrac, rng0 float64, rng *rand.Rand) (*linalg.Matrix, []float64, error) {
	g, sigma := exponentialCorrelation(side, rng0)
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		return nil, nil, err
	}
	n := g.Len()
	z := make([]float64, n)
	x := make([]float64, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		acc := 0.0
		for j := 0; j <= i; j++ {
			acc += l.At(i, j) * z[j]
		}
		x[i] = acc
	}
	const tau = 0.5
	nObs := int(obsFrac * float64(n))
	obs := rng.Perm(n)[:nObs]
	y := make([]float64, nObs)
	for i, idx := range obs {
		y[i] = x[idx] + tau*rng.NormFloat64()
	}
	mu := make([]float64, n)
	return posteriorOf(sigma, mu, obs, y, tau*tau)
}
