package figures

import (
	"fmt"
	"io"
	"math"

	"repro/internal/mvn"
	"repro/internal/taskrt"
)

// Fig4Row is one cell of the shared-memory performance sweep.
type Fig4Row struct {
	Dim     int
	QMCSize int
	Method  string // "dense" or "tlr"
	Seconds float64
}

// Fig4 reproduces the shared-memory time-to-solution sweep (paper
// Figure 4): one MVN integration operation (Cholesky factorization + tiled
// QMC integration) across problem dimensions and QMC sample sizes, dense vs
// TLR. The paper sweeps four architectures; on one host the architecture
// axis collapses, but the dense/TLR and dimension/sample-size shapes are
// preserved. TLR compression (pmvn_init in the paper) is excluded from the
// timing, as in the paper.
func Fig4(w io.Writer, cfg Config) ([]Fig4Row, error) {
	sides := []int{20, 30, 40} // 400, 900, 1600
	qmcSizes := []int{100, 1000}
	if !cfg.Quick {
		sides = []int{20, 30, 40, 50, 70} // up to 4900
		qmcSizes = []int{100, 1000, 10000}
	}
	const (
		corrRange = 0.1 // medium correlation
		tlrTol    = 1e-3
	)
	var rows []Fig4Row
	fmt.Fprintf(w, "Figure 4: one MVN integration, dense vs TLR (medium correlation, TLR acc %.0e)\n", tlrTol)
	fmt.Fprintf(w, "%8s %8s %8s %12s\n", "dim", "QMC-N", "method", "seconds")
	for _, side := range sides {
		n := side * side
		_, sigma := exponentialCorrelation(side, corrRange)
		ts := n / 10
		if ts < 25 {
			ts = 25
		}
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = -0.5
			b[i] = math.Inf(1)
		}
		for _, qn := range qmcSizes {
			for _, method := range []string{"dense", "tlr"} {
				rt := taskrt.New(cfg.workers())
				var sec float64
				if method == "dense" {
					sec = timeIt(func() {
						f, err := denseFactor(rt, sigma, ts)
						if err != nil {
							panic(err)
						}
						mvn.PMVN(rt, f, a, b, mvn.Options{N: qn})
					})
				} else {
					// Compress first (excluded from timing, like pmvn_init),
					// then time TLR Cholesky + integration.
					pre, _, err := tlrPrecompress(sigma, ts, tlrTol)
					if err != nil {
						rt.Shutdown()
						return nil, err
					}
					sec = timeIt(func() {
						if err := tlrPotrf(rt, pre); err != nil {
							panic(err)
						}
						mvn.PMVN(rt, mvn.NewTLRFactor(pre), a, b, mvn.Options{N: qn})
					})
				}
				rt.Shutdown()
				row := Fig4Row{Dim: n, QMCSize: qn, Method: method, Seconds: sec}
				rows = append(rows, row)
				fmt.Fprintf(w, "%8d %8d %8s %12.3f\n", row.Dim, row.QMCSize, row.Method, row.Seconds)
			}
		}
	}
	return rows, nil
}

// Table2 derives the TLR-vs-dense speedup table (paper Table II) from the
// Figure 4 rows, at the largest dimension of the sweep.
func Table2(w io.Writer, rows []Fig4Row) map[int]float64 {
	maxDim := 0
	for _, r := range rows {
		if r.Dim > maxDim {
			maxDim = r.Dim
		}
	}
	dense := map[int]float64{}
	tlr := map[int]float64{}
	var qmcs []int
	for _, r := range rows {
		if r.Dim != maxDim {
			continue
		}
		switch r.Method {
		case "dense":
			dense[r.QMCSize] = r.Seconds
			qmcs = append(qmcs, r.QMCSize)
		case "tlr":
			tlr[r.QMCSize] = r.Seconds
		}
	}
	speedups := map[int]float64{}
	fmt.Fprintf(w, "Table II: TLR speedup over dense at n=%d\n", maxDim)
	fmt.Fprintf(w, "%8s %10s\n", "QMC-N", "speedup")
	for _, q := range qmcs {
		if tlr[q] > 0 {
			speedups[q] = dense[q] / tlr[q]
			fmt.Fprintf(w, "%8d %9.1fX\n", q, speedups[q])
		}
	}
	return speedups
}
