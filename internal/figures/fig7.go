package figures

import (
	"fmt"
	"io"

	"repro/internal/cluster"
)

// Fig7Row is one simulated distributed-memory timing.
type Fig7Row struct {
	Dim      int
	Nodes    int
	Method   string
	CholSec  float64
	PMVNSec  float64
	TotalSec float64
}

// Fig7 reproduces the distributed-memory scaling study (paper Figure 7) on
// the discrete-event Shaheen-II simulator, at the paper's exact dimensions
// and node counts: the left panel sweeps 16–128 nodes up to n = 360,000;
// the right panel 64–512 nodes up to n = 760,384. The TLR variant
// accelerates only the Cholesky step, matching the paper's distributed
// implementation.
func Fig7(w io.Writer, cfg Config) ([]Fig7Row, error) {
	type panel struct {
		dims  []int
		nodes []int
	}
	panels := []panel{
		{dims: []int{108900, 187489, 266256, 360000}, nodes: []int{16, 32, 64, 128}},
		{dims: []int{266256, 360000, 435600, 537289, 760384}, nodes: []int{64, 128, 256, 512}},
	}
	if cfg.Quick {
		panels = []panel{
			{dims: []int{108900, 187489}, nodes: []int{16, 64}},
			{dims: []int{266256, 360000}, nodes: []int{128, 512}},
		}
	}
	const (
		tileSize = 980 // the paper's TLR tile size
		qmcN     = 10000
		sampleTS = 500 // chains per tile column; fine enough to keep the QMC
		// chain critical path below the per-node work share
		meanRank  = 145 // the paper's maximum-rank setting, used as mean (conservative)
		propScale = 2.5 // tall-skinny GEMM efficiency (see cluster.Workload)
	)
	var rows []Fig7Row
	for pi, p := range panels {
		fmt.Fprintf(w, "Figure 7 (panel %d): simulated Cray XC40, tile %d, QMC N=%d\n", pi+1, tileSize, qmcN)
		fmt.Fprintf(w, "%10s %7s %8s %10s %10s %10s\n", "dim", "nodes", "method", "chol-s", "pmvn-s", "total-s")
		for _, nodes := range p.nodes {
			for _, dim := range p.dims {
				for _, method := range []string{"dense", "tlr"} {
					wl := cluster.Workload{
						N: dim, TileSize: tileSize, QMC: qmcN, SampleTS: sampleTS,
						TLR: method == "tlr", MeanRank: meanRank, PropFlopScale: propScale,
					}
					chol, pmvn := cluster.MVNMakespan(cluster.ShaheenII(nodes), wl)
					row := Fig7Row{Dim: dim, Nodes: nodes, Method: method,
						CholSec: chol, PMVNSec: pmvn, TotalSec: chol + pmvn}
					rows = append(rows, row)
					fmt.Fprintf(w, "%10d %7d %8s %10.1f %10.1f %10.1f\n",
						row.Dim, row.Nodes, row.Method, row.CholSec, row.PMVNSec, row.TotalSec)
				}
			}
		}
	}
	return rows, nil
}

// Table3 derives the per-node-count TLR speedups (paper Table III) from the
// Figure 7 rows, at the largest dimension available per node count.
func Table3(w io.Writer, rows []Fig7Row) map[int]float64 {
	largest := map[int]int{}
	for _, r := range rows {
		if r.Dim > largest[r.Nodes] {
			largest[r.Nodes] = r.Dim
		}
	}
	dense := map[int]float64{}
	tlrT := map[int]float64{}
	cholDense := map[int]float64{}
	cholTLR := map[int]float64{}
	for _, r := range rows {
		if r.Dim != largest[r.Nodes] {
			continue
		}
		if r.Method == "dense" {
			dense[r.Nodes] = r.TotalSec
			cholDense[r.Nodes] = r.CholSec
		} else {
			tlrT[r.Nodes] = r.TotalSec
			cholTLR[r.Nodes] = r.CholSec
		}
	}
	var nodes []int
	for n := range dense {
		nodes = append(nodes, n)
	}
	sortInts(nodes)
	speedups := map[int]float64{}
	fmt.Fprintf(w, "Table III: TLR speedup over dense (simulated, QMC N=10,000)\n")
	fmt.Fprintf(w, "%7s %10s %14s\n", "nodes", "overall", "cholesky-only")
	for _, n := range nodes {
		if tlrT[n] > 0 {
			speedups[n] = dense[n] / tlrT[n]
			fmt.Fprintf(w, "%7d %9.1fX %13.1fX\n", n, speedups[n], cholDense[n]/cholTLR[n])
		}
	}
	return speedups
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
