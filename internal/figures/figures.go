// Package figures regenerates every table and figure of the paper's
// evaluation section as text: the synthetic-data accuracy assessment
// (Fig. 1), the wind-speed application maps and dense-vs-TLR differences
// (Figs. 2–3), the shared-memory performance sweep and TLR speedup table
// (Fig. 4, Table II), the TLR rank-distribution maps (Fig. 5), the MC
// validation cost (Fig. 6) and the simulated distributed-memory scaling
// (Fig. 7, Table III). Each experiment has a Quick variant sized for a
// laptop and a full variant closer to the paper's settings; absolute times
// differ from the paper's hardware, but the comparative shapes are the
// reproduction target.
package figures

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cov"
	"repro/internal/excursion"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/mvn"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
	"repro/internal/tlr"
)

// Config controls the harness.
type Config struct {
	// Quick shrinks every experiment to seconds-scale.
	Quick bool
	// Workers for the task runtime (default 4; on a single-core host the
	// runtime still schedules correctly).
	Workers int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 4
}

// Levels are the paper's three synthetic correlation levels.
var Levels = []struct {
	Name  string
	Range float64
}{
	{"weak", 0.033},
	{"medium", 0.1},
	{"strong", 0.234},
}

// timeIt runs f once and returns the elapsed wall time in seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// denseFactor computes the dense tiled Cholesky factor of sigma.
func denseFactor(rt *taskrt.Runtime, sigma *linalg.Matrix, ts int) (mvn.Factor, error) {
	t := tile.FromDense(sigma, ts)
	if err := tiledalg.Potrf(rt, t); err != nil {
		return nil, err
	}
	return mvn.NewDenseFactor(t), nil
}

// tlrFactor compresses sigma at tol and computes the TLR Cholesky factor.
func tlrFactor(rt *taskrt.Runtime, sigma *linalg.Matrix, ts int, tol float64) (mvn.Factor, *tlr.Matrix, error) {
	a, err := tlr.CompressSPD(tile.FromDense(sigma, ts), tol, 0)
	if err != nil {
		return nil, nil, err
	}
	if err := tlr.Potrf(rt, a); err != nil {
		return nil, nil, err
	}
	return mvn.NewTLRFactor(a), a, nil
}

// asciiMap renders a scalar field on an nx×ny grid as a small character
// map (row 0 at the bottom, like the paper's latitude axis).
func asciiMap(w io.Writer, vals []float64, nx, ny int, lo, hi float64) {
	const shades = " .:-=+*#%@"
	span := hi - lo
	if span <= 0 {
		span = 1 // constant field: render everything at the low shade
	}
	for j := ny - 1; j >= 0; j-- {
		for i := 0; i < nx; i++ {
			v := vals[j*nx+i]
			t := (v - lo) / span
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			idx := int(t * float64(len(shades)-1))
			fmt.Fprintf(w, "%c", shades[idx])
		}
		fmt.Fprintln(w)
	}
}

func boolMap(region []int, n int) []float64 {
	v := make([]float64, n)
	for _, i := range region {
		v[i] = 1
	}
	return v
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo == hi {
		hi = lo + 1
	}
	return
}

// exponentialCorrelation builds the exponential-kernel covariance (which is
// already a correlation matrix at σ²=1) on a side×side grid.
func exponentialCorrelation(side int, rng float64) (*geo.Geom, *linalg.Matrix) {
	g := geo.RegularGrid(side, side)
	return g, cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: rng})
}

// tlrPrecompress builds the TLR representation of sigma without factorizing
// it (the pmvn_init compression step, excluded from the paper's timings).
func tlrPrecompress(sigma *linalg.Matrix, ts int, tol float64) (*tlr.Matrix, float64, error) {
	a, err := tlr.CompressSPD(tile.FromDense(sigma, ts), tol, 0)
	if err != nil {
		return nil, 0, err
	}
	_, _, mean := a.RankStats()
	return a, mean, nil
}

// tlrPotrf forwards to tlr.Potrf.
func tlrPotrf(rt *taskrt.Runtime, a *tlr.Matrix) error { return tlr.Potrf(rt, a) }

// posteriorOf forwards to cov.Posterior (eqs. 7–8).
func posteriorOf(sigma *linalg.Matrix, mu []float64, obs []int, y []float64, tau2 float64) (*linalg.Matrix, []float64, error) {
	return cov.Posterior(sigma, mu, obs, y, tau2)
}

// newComputer wraps excursion.NewComputer with the harness defaults.
func newComputer(rt *taskrt.Runtime, f mvn.Factor, mean, sd []float64, u float64, qmcN int) (*excursion.Computer, error) {
	return excursion.NewComputer(rt, f, mean, sd, u, mvn.Options{N: qmcN})
}
