// Package excursion implements the confidence-region (excursion-set)
// detection of Bolin & Lindgren driven by high-dimensional MVN
// probabilities — the paper's Algorithm 1. Locations are ordered by
// marginal exceedance probability; the positive confidence function
// F⁺(s) is the joint probability that every location in the prefix ending
// at s exceeds the threshold; the confidence region at level 1−α is the
// largest prefix whose joint probability still exceeds 1−α.
//
// The joint prefix probability is non-increasing in the prefix length, so
// the region boundary can be found with O(log n) PMVN evaluations
// (bisection mode) instead of the n evaluations of the literal Algorithm 1
// loop (exact mode); both are provided and validated against each other.
package excursion

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
	"repro/internal/mvn"
	"repro/internal/stats"
	"repro/internal/taskrt"
)

// Marginals returns the marginal exceedance probabilities
// pM[i] = P(X_i > u) = 1 − Φ((u − mean[i])/sd[i])  (Algorithm 1, lines 3–5).
func Marginals(mean, sd []float64, u float64) []float64 {
	p := make([]float64, len(mean))
	for i := range p {
		p[i] = 1 - stats.Phi((u-mean[i])/sd[i])
	}
	return p
}

// Order returns the location indices sorted by decreasing marginal
// probability (the opM vector of Algorithm 1, line 6). Ties break by index
// for determinism.
func Order(pM []float64) []int {
	idx := make([]int, len(pM))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pM[idx[a]] > pM[idx[b]] })
	return idx
}

// CorrelationFromCovariance returns the correlation matrix
// R = D^{-1/2}·Σ·D^{-1/2} and the standard deviations √Σii. The excursion
// limits are standardized per location, so the MVN integration runs on the
// correlation matrix.
func CorrelationFromCovariance(sigma *linalg.Matrix) (*linalg.Matrix, []float64) {
	n := sigma.Rows
	sd := make([]float64, n)
	for i := 0; i < n; i++ {
		sd[i] = math.Sqrt(sigma.At(i, i))
	}
	r := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		src, dst := sigma.Col(j), r.Col(j)
		for i := 0; i < n; i++ {
			dst[i] = src[i] / (sd[i] * sd[j])
		}
	}
	return r, sd
}

// Computer evaluates prefix joint probabilities for one detection problem.
// Factor must hold the Cholesky factor of the CORRELATION matrix of the
// field; Mean and SD describe the (posterior) marginal distribution at each
// location; U is the exceedance threshold.
type Computer struct {
	RT     *taskrt.Runtime
	Factor mvn.Factor
	Mean   []float64
	SD     []float64
	U      float64
	Opts   mvn.Options

	// Sequential evaluates PrefixProbs one prefix at a time instead of
	// fanning the independent PMVN queries out across the runtime.
	Sequential bool

	// negative selects E⁻ (regions where X < u) instead of E⁺.
	negative bool

	pM    []float64
	order []int
	cache map[int]float64
}

// NewComputer validates the inputs and precomputes the marginal ordering
// for positive excursion sets E⁺ (X > u).
func NewComputer(rt *taskrt.Runtime, f mvn.Factor, mean, sd []float64, u float64, opts mvn.Options) (*Computer, error) {
	return newComputerDir(rt, f, mean, sd, u, opts, false)
}

// NewNegativeComputer is NewComputer for negative excursion sets E⁻
// (regions where X < u with the given confidence), the mirror-image
// construction of Bolin & Lindgren.
func NewNegativeComputer(rt *taskrt.Runtime, f mvn.Factor, mean, sd []float64, u float64, opts mvn.Options) (*Computer, error) {
	return newComputerDir(rt, f, mean, sd, u, opts, true)
}

func newComputerDir(rt *taskrt.Runtime, f mvn.Factor, mean, sd []float64, u float64, opts mvn.Options, negative bool) (*Computer, error) {
	n := f.N()
	if len(mean) != n || len(sd) != n {
		return nil, fmt.Errorf("excursion: mean/sd lengths (%d,%d) != dimension %d", len(mean), len(sd), n)
	}
	for i, s := range sd {
		if s <= 0 {
			return nil, fmt.Errorf("excursion: sd[%d] = %g must be positive", i, s)
		}
	}
	c := &Computer{RT: rt, Factor: f, Mean: mean, SD: sd, U: u, Opts: opts, negative: negative, cache: map[int]float64{}}
	if negative {
		c.pM = make([]float64, n)
		for i := range c.pM {
			c.pM[i] = stats.Phi((u - mean[i]) / sd[i]) // P(X_i < u)
		}
	} else {
		c.pM = Marginals(mean, sd, u)
	}
	c.order = Order(c.pM)
	return c, nil
}

// MarginalProbs returns pM.
func (c *Computer) MarginalProbs() []float64 { return c.pM }

// Ordering returns opM, the indices ordered by decreasing marginal
// probability.
func (c *Computer) Ordering() []int { return c.order }

// PrefixProb returns the joint probability that the top-k locations (in
// marginal order) all exceed U: one PMVN evaluation with standardized lower
// limits on the prefix and −∞ elsewhere (Algorithm 1, lines 10–15). Results
// are cached per k.
func (c *Computer) PrefixProb(k int) float64 {
	n := c.Factor.N()
	switch {
	case k <= 0:
		return 1
	case k > n:
		k = n
	}
	if p, ok := c.cache[k]; ok {
		return p
	}
	p := c.prefixProbUncached(k, false)
	c.cache[k] = p
	return p
}

// prefixProbUncached runs the single PMVN evaluation for prefix size k
// (1 ≤ k ≤ n), with pooled limit vectors. It only reads the Computer, so
// independent prefix sizes may evaluate concurrently; inline runs the
// integration on the calling goroutine (the batched fan-out sets it so each
// prefix occupies exactly one worker, and a warm prefix query then runs
// allocation-free — mostly on the chain-blocked sweep's free-row fast path,
// since only the prefix locations are constrained).
func (c *Computer) prefixProbUncached(k int, inline bool) float64 {
	n := c.Factor.N()
	a := linalg.GetVec(n)
	b := linalg.GetVec(n)
	for i := range a {
		a[i] = math.Inf(-1)
		b[i] = math.Inf(1)
	}
	for _, loc := range c.order[:k] {
		lim := (c.U - c.Mean[loc]) / c.SD[loc]
		if c.negative {
			b[loc] = lim // P(X < u) on the prefix
		} else {
			a[loc] = lim // P(X > u) on the prefix
		}
	}
	opts := c.Opts
	opts.Inline = inline
	p := mvn.PMVN(c.RT, c.Factor, a, b, opts).Prob
	linalg.PutVec(a)
	linalg.PutVec(b)
	return p
}

// PrefixProbs evaluates the joint prefix probability at every size in ks —
// the batched counterpart of PrefixProb. Sizes missing from the cache are
// independent MVN queries against the one shared factor, so they fan out
// across the runtime (unless Sequential is set); results land in the cache.
// The output is identical to calling PrefixProb per element.
func (c *Computer) PrefixProbs(ks []int) []float64 {
	n := c.Factor.N()
	out := make([]float64, len(ks))
	// Resolve degenerate and cached sizes; collect distinct misses.
	miss := make([]int, 0, len(ks))
	missSet := map[int]struct{}{}
	for _, k := range ks {
		if k <= 0 {
			continue
		}
		if k > n {
			k = n
		}
		if _, ok := c.cache[k]; ok {
			continue
		}
		if _, ok := missSet[k]; !ok {
			missSet[k] = struct{}{}
			miss = append(miss, k)
		}
	}
	// A caller-supplied shared Opts.Rng is consumed when Replicates ≥ 2
	// (it draws the replicate shifts inside each PMVN call), so those
	// evaluations must stay sequential to avoid racing on it; with the
	// default nil Rng every query seeds its own.
	sharedRng := c.Opts.Rng != nil && c.Opts.Replicates >= 2
	probs := make([]float64, len(miss))
	if c.Sequential || sharedRng || len(miss) <= 1 {
		for i, k := range miss {
			probs[i] = c.prefixProbUncached(k, false)
		}
	} else {
		// Fan out bounded by the worker count: each query occupies one
		// worker and sweeps inline (pooled working sets, no per-query task
		// graphs), so the fan-out is also what bounds the O(n·N) working
		// memory of the batch (fPoints=0, the literal Algorithm 1 loop,
		// evaluates every prefix).
		taskrt.ForEachLimit(len(miss), c.RT.Workers(), func(i int) {
			probs[i] = c.prefixProbUncached(miss[i], true)
		})
	}
	for i, k := range miss {
		c.cache[k] = probs[i]
	}
	for i, k := range ks {
		switch {
		case k <= 0:
			out[i] = 1
			continue
		case k > n:
			k = n
		}
		out[i] = c.cache[k]
	}
	return out
}

// Result is the output of a confidence-function evaluation.
type Result struct {
	// Order is opM.
	Order []int
	// F is the positive confidence function per location index.
	F []float64
	// EvalK and EvalP record the prefix sizes at which PMVN was actually
	// evaluated and the probabilities obtained there.
	EvalK []int
	EvalP []float64
}

// ConfidenceFunction computes F⁺ for every location. It evaluates the joint
// prefix probability at `points` prefix sizes (plus 1 and n) and linearly
// interpolates between them, relying on the monotonicity of the prefix
// probability; points ≥ n evaluates every prefix exactly — the literal
// Algorithm 1 loop.
func (c *Computer) ConfidenceFunction(points int) *Result {
	n := c.Factor.N()
	res := &Result{Order: c.order, F: make([]float64, n)}
	var ks []int
	if points >= n || points <= 0 {
		for k := 1; k <= n; k++ {
			ks = append(ks, k)
		}
	} else {
		if points == 1 {
			points = 2 // the endpoints 1 and n are always evaluated
		}
		seen := map[int]bool{}
		for i := 0; i < points; i++ {
			k := 1 + int(math.Round(float64(i)*float64(n-1)/float64(points-1)))
			if !seen[k] {
				seen[k] = true
				ks = append(ks, k)
			}
		}
	}
	// Batched evaluation: the prefix probabilities are independent MVN
	// queries against the shared factor, so they run in parallel.
	ps := c.PrefixProbs(ks)
	for i := range ps {
		// Enforce monotonicity against QMC noise.
		if i > 0 && ps[i] > ps[i-1] {
			ps[i] = ps[i-1]
		}
	}
	res.EvalK, res.EvalP = ks, ps
	// Interpolate F along the ordering.
	for rank := 1; rank <= n; rank++ {
		loc := c.order[rank-1]
		res.F[loc] = interpMonotone(ks, ps, rank)
	}
	return res
}

// interpMonotone linearly interpolates the (k, p) table at prefix size k.
func interpMonotone(ks []int, ps []float64, k int) float64 {
	i := sort.SearchInts(ks, k)
	if i < len(ks) && ks[i] == k {
		return ps[i]
	}
	if i == 0 {
		return ps[0]
	}
	if i == len(ks) {
		return ps[len(ps)-1]
	}
	k0, k1 := ks[i-1], ks[i]
	t := float64(k-k0) / float64(k1-k0)
	return ps[i-1] + t*(ps[i]-ps[i-1])
}

// Region returns the confidence region E⁺_{u,α} at confidence level conf =
// 1−α: the indices of the largest marginal-ordered prefix whose joint
// exceedance probability is still ≥ conf. It uses bisection over the prefix
// size (the prefix probability is non-increasing), costing O(log n) PMVN
// evaluations.
func (c *Computer) Region(conf float64) []int {
	n := c.Factor.N()
	if c.PrefixProb(1) < conf {
		return nil
	}
	lo, hi := 1, n // invariant: P(lo) ≥ conf; hi is the first candidate that may fail
	if c.PrefixProb(n) >= conf {
		return append([]int(nil), c.order...)
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if c.PrefixProb(mid) >= conf {
			lo = mid
		} else {
			hi = mid
		}
	}
	return append([]int(nil), c.order[:lo]...)
}

// MCValidate draws samples of the standardized field (via the correlation
// Cholesky factor lCorr) and returns the fraction for which EVERY location
// of the region exceeds the threshold — the MC estimate p̂(α) that should
// match 1−α when the region is correct (the validation algorithm of the
// paper's Section V-C).
func MCValidate(region []int, mean, sd []float64, u float64, lCorr *linalg.Matrix, samples int, rng *rand.Rand) float64 {
	if len(region) == 0 {
		return 1
	}
	n := lCorr.Rows
	z := make([]float64, n)
	x := make([]float64, n)
	// Standardized limits per region location.
	lim := make([]float64, len(region))
	for i, loc := range region {
		lim[i] = (u - mean[loc]) / sd[loc]
	}
	hits := 0
	for s := 0; s < samples; s++ {
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			acc := 0.0
			for j := 0; j <= i; j++ {
				acc += lCorr.At(i, j) * z[j]
			}
			x[i] = acc
		}
		ok := true
		for i, loc := range region {
			if x[loc] <= lim[i] {
				ok = false
				break
			}
		}
		if ok {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}
