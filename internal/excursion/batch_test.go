package excursion

import (
	"testing"

	"repro/internal/mvn"
)

// TestPrefixProbsMatchesPrefixProb checks the batched (parallel) prefix
// evaluation is element-for-element identical to the sequential path,
// including degenerate and duplicate sizes, and that it fills the cache.
func TestPrefixProbsMatchesPrefixProb(t *testing.T) {
	opts := mvn.Options{N: 400}
	cSeq, _, _, _, rtSeq := setup(t, 5, 0.2, 0.3, opts)
	defer rtSeq.Shutdown()
	cPar, _, _, _, rtPar := setup(t, 5, 0.2, 0.3, opts)
	defer rtPar.Shutdown()
	cSeq.Sequential = true

	n := cSeq.Factor.N()
	ks := []int{-1, 0, 1, 3, 3, 7, n, n + 5}
	want := cSeq.PrefixProbs(ks)
	got := cPar.PrefixProbs(ks)
	for i := range ks {
		if got[i] != want[i] {
			t.Errorf("k=%d: parallel %v != sequential %v", ks[i], got[i], want[i])
		}
		if p := cPar.PrefixProb(ks[i]); p != got[i] {
			t.Errorf("k=%d: cached PrefixProb %v != batched %v", ks[i], p, got[i])
		}
	}
}

// TestConfidenceFunctionOnePoint regresses the points==1 division by zero:
// a single interpolation point must degrade to the {1, n} endpoints, not to
// NaN-derived prefix sizes that report the whole domain as confident.
func TestConfidenceFunctionOnePoint(t *testing.T) {
	opts := mvn.Options{N: 300}
	c, _, _, _, rt := setup(t, 4, 0.2, 0.3, opts)
	defer rt.Shutdown()
	res := c.ConfidenceFunction(1)
	n := c.Factor.N()
	if len(res.EvalK) != 2 || res.EvalK[0] != 1 || res.EvalK[1] != n {
		t.Fatalf("EvalK = %v, want [1 %d]", res.EvalK, n)
	}
	for i, f := range res.F {
		if f < 0 || f > 1 || f != f {
			t.Fatalf("F[%d] = %v out of [0,1]", i, f)
		}
	}
}

// TestConfidenceFunctionParallelMatchesSequential checks the batched
// ConfidenceFunction produces exactly the sequential result.
func TestConfidenceFunctionParallelMatchesSequential(t *testing.T) {
	opts := mvn.Options{N: 300}
	cSeq, _, _, _, rtSeq := setup(t, 5, 0.25, 0.2, opts)
	defer rtSeq.Shutdown()
	cPar, _, _, _, rtPar := setup(t, 5, 0.25, 0.2, opts)
	defer rtPar.Shutdown()
	cSeq.Sequential = true

	want := cSeq.ConfidenceFunction(9)
	got := cPar.ConfidenceFunction(9)
	if len(got.F) != len(want.F) {
		t.Fatalf("F sizes differ: %d vs %d", len(got.F), len(want.F))
	}
	for i := range want.F {
		if got.F[i] != want.F[i] {
			t.Errorf("F[%d]: parallel %v != sequential %v", i, got.F[i], want.F[i])
		}
	}
	for i := range want.EvalP {
		if got.EvalP[i] != want.EvalP[i] {
			t.Errorf("EvalP[%d]: parallel %v != sequential %v", i, got.EvalP[i], want.EvalP[i])
		}
	}
}
