package excursion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/mvn"
	"repro/internal/stats"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
)

// setup builds a correlation-factor Computer for an exponential field on a
// k×k grid with a linearly varying mean surface.
func setup(t *testing.T, k int, rang float64, u float64, opts mvn.Options) (*Computer, *linalg.Matrix, []float64, []float64, *taskrt.Runtime) {
	t.Helper()
	g := geo.RegularGrid(k, k)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1.3, Range: rang})
	corr, sd := CorrelationFromCovariance(sigma)
	lCorr, err := linalg.Cholesky(corr)
	if err != nil {
		t.Fatal(err)
	}
	rt := taskrt.New(4)
	tl := tile.FromDense(corr, max(4, k*k/4))
	if err := tiledalg.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	mean := make([]float64, g.Len())
	for i, p := range g.Pts {
		mean[i] = 1.5 - 2.2*p.X - 0.8*p.Y // high in the west, low in the east
	}
	c, err := NewComputer(rt, mvn.NewDenseFactor(tl), mean, sd, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, lCorr, mean, sd, rt
}

func TestMarginals(t *testing.T) {
	mean := []float64{0, 1, -1}
	sd := []float64{1, 2, 0.5}
	u := 0.5
	p := Marginals(mean, sd, u)
	for i := range mean {
		want := 1 - stats.Phi((u-mean[i])/sd[i])
		if math.Abs(p[i]-want) > 1e-15 {
			t.Errorf("pM[%d] = %v, want %v", i, p[i], want)
		}
	}
}

func TestOrderDescendingStable(t *testing.T) {
	p := []float64{0.2, 0.9, 0.5, 0.9, 0.1}
	ord := Order(p)
	want := []int{1, 3, 2, 0, 4}
	for i := range want {
		if ord[i] != want[i] {
			t.Fatalf("Order = %v, want %v", ord, want)
		}
	}
}

func TestCorrelationFromCovariance(t *testing.T) {
	g := geo.RegularGrid(4, 4)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 2.5, Range: 0.2})
	corr, sd := CorrelationFromCovariance(sigma)
	for i := 0; i < 16; i++ {
		if math.Abs(corr.At(i, i)-1) > 1e-14 {
			t.Fatalf("corr diagonal %v", corr.At(i, i))
		}
		if math.Abs(sd[i]-math.Sqrt(2.5)) > 1e-14 {
			t.Fatalf("sd[%d] = %v", i, sd[i])
		}
	}
	// Off-diagonal entries are Σij/(sd_i·sd_j).
	if math.Abs(corr.At(0, 1)-sigma.At(0, 1)/2.5) > 1e-14 {
		t.Error("off-diagonal scaling wrong")
	}
}

func TestPrefixProbMonotone(t *testing.T) {
	c, _, _, _, rt := setup(t, 5, 0.2, 0.3, mvn.Options{N: 3000})
	defer rt.Shutdown()
	prev := 1.0
	for _, k := range []int{1, 3, 6, 10, 15, 20, 25} {
		p := c.PrefixProb(k)
		if p > prev+5e-3 {
			t.Errorf("prefix prob increased at k=%d: %v > %v", k, p, prev)
		}
		prev = p
	}
	if p0 := c.PrefixProb(0); p0 != 1 {
		t.Errorf("PrefixProb(0) = %v", p0)
	}
	// Out-of-range k clamps to n.
	if pn, pm := c.PrefixProb(25), c.PrefixProb(99); pn != pm {
		t.Errorf("clamp failed: %v vs %v", pn, pm)
	}
}

func TestPrefixProbIndependentMatchesProduct(t *testing.T) {
	// Identity correlation: prefix probability is the product of the
	// ordered marginals.
	rt := taskrt.New(2)
	defer rt.Shutdown()
	n := 9
	tl := tile.FromDense(linalg.Eye(n), 3)
	if err := tiledalg.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	mean := make([]float64, n)
	sd := make([]float64, n)
	for i := range mean {
		mean[i] = float64(i) * 0.2
		sd[i] = 1
	}
	c, err := NewComputer(rt, mvn.NewDenseFactor(tl), mean, sd, 0.7, mvn.Options{N: 4000})
	if err != nil {
		t.Fatal(err)
	}
	pM := c.MarginalProbs()
	ord := c.Ordering()
	for _, k := range []int{1, 3, 6, 9} {
		want := 1.0
		for _, loc := range ord[:k] {
			want *= pM[loc]
		}
		got := c.PrefixProb(k)
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("k=%d: prefix %v, product %v", k, got, want)
		}
	}
}

func TestConfidenceFunctionExactVsInterpolated(t *testing.T) {
	cEx, _, _, _, rt := setup(t, 4, 0.25, 0.2, mvn.Options{N: 4000})
	defer rt.Shutdown()
	exact := cEx.ConfidenceFunction(0) // every prefix
	interp := cEx.ConfidenceFunction(6)
	for i := range exact.F {
		if d := math.Abs(exact.F[i] - interp.F[i]); d > 0.05 {
			t.Errorf("location %d: exact %v vs interpolated %v", i, exact.F[i], interp.F[i])
		}
	}
	if len(exact.EvalK) != 16 {
		t.Errorf("exact mode evaluated %d prefixes, want 16", len(exact.EvalK))
	}
	if len(interp.EvalK) >= 16 {
		t.Errorf("interpolated mode evaluated %d prefixes", len(interp.EvalK))
	}
}

func TestConfidenceFunctionFollowsOrdering(t *testing.T) {
	c, _, _, _, rt := setup(t, 5, 0.2, 0.0, mvn.Options{N: 2000})
	defer rt.Shutdown()
	res := c.ConfidenceFunction(8)
	// F must be non-increasing along the marginal ordering.
	prev := 1.0
	for _, loc := range res.Order {
		if res.F[loc] > prev+1e-9 {
			t.Fatalf("confidence function increases along ordering")
		}
		prev = res.F[loc]
	}
}

func TestRegionNesting(t *testing.T) {
	c, _, _, _, rt := setup(t, 5, 0.2, 0.1, mvn.Options{N: 3000})
	defer rt.Shutdown()
	r95 := c.Region(0.95)
	r80 := c.Region(0.80)
	r50 := c.Region(0.50)
	if len(r95) > len(r80) || len(r80) > len(r50) {
		t.Errorf("regions not nested: |r95|=%d |r80|=%d |r50|=%d", len(r95), len(r80), len(r50))
	}
	// Higher confidence region must be a prefix of the lower one.
	for i, loc := range r95 {
		if r80[i] != loc {
			t.Fatal("r95 is not a prefix of r80")
		}
	}
}

func TestRegionMatchesExactScan(t *testing.T) {
	c, _, _, _, rt := setup(t, 4, 0.25, 0.2, mvn.Options{N: 5000})
	defer rt.Shutdown()
	conf := 0.9
	region := c.Region(conf)
	// Exact scan over every prefix size using the same cached computer.
	wantK := 0
	for k := 1; k <= 16; k++ {
		if c.PrefixProb(k) >= conf {
			wantK = k
		} else {
			break
		}
	}
	if len(region) != wantK {
		t.Errorf("bisection found %d locations, exact scan %d", len(region), wantK)
	}
}

func TestRegionEmptyAndFull(t *testing.T) {
	// Threshold far above the field: no location qualifies at high
	// confidence. Far below: every location qualifies.
	cHigh, _, _, _, rt1 := setup(t, 4, 0.2, 50, mvn.Options{N: 500})
	defer rt1.Shutdown()
	if r := cHigh.Region(0.95); len(r) != 0 {
		t.Errorf("u=50: region size %d, want 0", len(r))
	}
	cLow, _, _, _, rt2 := setup(t, 4, 0.2, -50, mvn.Options{N: 500})
	defer rt2.Shutdown()
	if r := cLow.Region(0.95); len(r) != 16 {
		t.Errorf("u=-50: region size %d, want 16", len(r))
	}
}

func TestMCValidateMatchesConfidence(t *testing.T) {
	c, lCorr, mean, sd, rt := setup(t, 5, 0.25, 0.0, mvn.Options{N: 8000})
	defer rt.Shutdown()
	for _, conf := range []float64{0.5, 0.8, 0.95} {
		region := c.Region(conf)
		if len(region) == 0 {
			continue
		}
		phat := MCValidate(region, mean, sd, c.U, lCorr, 40000, rand.New(rand.NewSource(9)))
		// p̂ should be ≥ conf (region chosen conservatively) and close to the
		// prefix probability at the boundary.
		pk := c.PrefixProb(len(region))
		if math.Abs(phat-pk) > 0.02 {
			t.Errorf("conf %v: MC validation %v vs PMVN %v", conf, phat, pk)
		}
		if phat < conf-0.02 {
			t.Errorf("conf %v: MC validation %v below confidence", conf, phat)
		}
	}
}

func TestMCValidateEmptyRegion(t *testing.T) {
	if p := MCValidate(nil, nil, nil, 0, linalg.Eye(3), 100, rand.New(rand.NewSource(1))); p != 1 {
		t.Errorf("empty region validation %v, want 1", p)
	}
}

func TestNewComputerValidation(t *testing.T) {
	rt := taskrt.New(1)
	defer rt.Shutdown()
	tl := tile.FromDense(linalg.Eye(4), 2)
	if err := tiledalg.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	f := mvn.NewDenseFactor(tl)
	if _, err := NewComputer(rt, f, make([]float64, 3), make([]float64, 4), 0, mvn.Options{}); err == nil {
		t.Error("want error for mean length mismatch")
	}
	bad := []float64{1, 1, 0, 1}
	if _, err := NewComputer(rt, f, make([]float64, 4), bad, 0, mvn.Options{}); err == nil {
		t.Error("want error for non-positive sd")
	}
}

func TestNegativeRegionMirrorsPositive(t *testing.T) {
	// By symmetry of the Gaussian field, E⁻ at threshold −u with mean −m
	// equals E⁺ at u with mean m.
	c, _, mean, sd, rt := setup(t, 4, 0.25, 0.2, mvn.Options{N: 4000})
	defer rt.Shutdown()
	negMean := make([]float64, len(mean))
	for i, m := range mean {
		negMean[i] = -m
	}
	cNeg, err := NewNegativeComputer(rt, c.Factor, negMean, sd, -0.2, mvn.Options{N: 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Marginals mirror exactly.
	pPos := c.MarginalProbs()
	pNeg := cNeg.MarginalProbs()
	for i := range pPos {
		if math.Abs(pPos[i]-pNeg[i]) > 1e-12 {
			t.Fatalf("marginal mirror broken at %d: %v vs %v", i, pPos[i], pNeg[i])
		}
	}
	// Prefix probabilities mirror to QMC accuracy.
	for _, k := range []int{1, 4, 9, 16} {
		pp, pn := c.PrefixProb(k), cNeg.PrefixProb(k)
		if math.Abs(pp-pn) > 5e-3 {
			t.Errorf("prefix %d: %v vs %v", k, pp, pn)
		}
	}
	// Regions mirror.
	rp := c.Region(0.8)
	rn := cNeg.Region(0.8)
	if len(rp) != len(rn) {
		t.Errorf("mirrored regions differ in size: %d vs %d", len(rp), len(rn))
	}
}

func TestNegativeRegionDetectsLowField(t *testing.T) {
	// With a mean surface that dips in the east, E⁻ at u=0 must select
	// eastern (high-x) locations.
	c, _, _, _, rt := setup(t, 5, 0.2, 0.0, mvn.Options{N: 3000})
	defer rt.Shutdown()
	cNeg, err := NewNegativeComputer(rt, c.Factor, c.Mean, c.SD, 0.0, mvn.Options{N: 3000})
	if err != nil {
		t.Fatal(err)
	}
	region := cNeg.Region(0.8)
	if len(region) == 0 {
		t.Fatal("empty negative region")
	}
	g := geo.RegularGrid(5, 5)
	for _, loc := range region {
		if g.Pts[loc].X < 0.5 {
			t.Errorf("negative region contains western location %d (mean %.2f)", loc, c.Mean[loc])
		}
	}
}

func TestInterpMonotone(t *testing.T) {
	ks := []int{1, 5, 9}
	ps := []float64{1.0, 0.6, 0.2}
	if v := interpMonotone(ks, ps, 5); v != 0.6 {
		t.Errorf("exact node %v", v)
	}
	if v := interpMonotone(ks, ps, 3); math.Abs(v-0.8) > 1e-14 {
		t.Errorf("midpoint %v, want 0.8", v)
	}
	if v := interpMonotone(ks, ps, 12); v != 0.2 {
		t.Errorf("beyond range %v", v)
	}
}
