package optim

import (
	"math"
	"testing"
)

func TestQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	res := Minimize(f, []float64{0, 0}, Options{})
	if !res.Converged {
		t.Error("did not converge")
	}
	if math.Abs(res.X[0]-3) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("minimizer %v, want (3,-1)", res.X)
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res := Minimize(f, []float64{-1.2, 1}, Options{MaxEvals: 6000, TolF: 1e-12, TolX: 1e-9})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock minimizer %v, want (1,1)", res.X)
	}
}

func TestOneDimensional(t *testing.T) {
	f := func(x []float64) float64 { return math.Cosh(x[0] - 0.7) }
	res := Minimize(f, []float64{5}, Options{})
	if math.Abs(res.X[0]-0.7) > 1e-4 {
		t.Errorf("minimizer %v, want 0.7", res.X[0])
	}
}

func TestNaNObjectiveTreatedAsInf(t *testing.T) {
	// NaN regions (e.g. invalid covariance parameters) must repel the
	// simplex, not poison it.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	res := Minimize(f, []float64{0.5}, Options{})
	if math.Abs(res.X[0]-2) > 1e-3 {
		t.Errorf("minimizer %v, want 2", res.X[0])
	}
}

func TestEvalBudgetRespected(t *testing.T) {
	count := 0
	f := func(x []float64) float64 {
		count++
		return x[0] * x[0]
	}
	res := Minimize(f, []float64{100}, Options{MaxEvals: 30, TolF: 1e-300, TolX: 1e-300})
	if count > 33 { // initial simplex + a few per iteration over budget check
		t.Errorf("objective evaluated %d times with budget 30", count)
	}
	if res.Converged {
		t.Error("should report non-convergence on budget exhaustion")
	}
}

func TestZeroDimensional(t *testing.T) {
	res := Minimize(func([]float64) float64 { return 42 }, nil, Options{})
	if res.F != 42 || !res.Converged {
		t.Errorf("degenerate case: %+v", res)
	}
}
