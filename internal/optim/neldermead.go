// Package optim provides the derivative-free Nelder–Mead simplex minimizer
// used by the maximum-likelihood parameter estimation — the role NLopt
// plays in the paper's toolchain.
package optim

import (
	"math"
)

// Options controls the Nelder–Mead iteration.
type Options struct {
	// MaxEvals bounds the number of objective evaluations. Default 2000.
	MaxEvals int
	// TolF stops when the simplex function-value spread falls below it.
	// Default 1e-8.
	TolF float64
	// TolX stops when the simplex diameter falls below it. Default 1e-8.
	TolX float64
	// Step is the initial simplex step per coordinate. Default 0.1
	// (relative to the start point, with an absolute floor).
	Step float64
}

func (o Options) withDefaults() Options {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 2000
	}
	if o.TolF <= 0 {
		o.TolF = 1e-8
	}
	if o.TolX <= 0 {
		o.TolX = 1e-8
	}
	if o.Step <= 0 {
		o.Step = 0.1
	}
	return o
}

// Result reports the minimizer found.
type Result struct {
	X     []float64
	F     float64
	Evals int
	// Converged is false when the evaluation budget ran out first.
	Converged bool
}

// Minimize runs Nelder–Mead from x0 on f and returns the best point found.
func Minimize(f func([]float64) float64, x0 []float64, opt Options) Result {
	o := opt.withDefaults()
	n := len(x0)
	if n == 0 {
		return Result{X: nil, F: f(nil), Evals: 1, Converged: true}
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	// Build the initial simplex.
	pts := make([][]float64, n+1)
	fv := make([]float64, n+1)
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	pts[0] = append([]float64(nil), x0...)
	fv[0] = eval(pts[0])
	for i := 0; i < n; i++ {
		p := append([]float64(nil), x0...)
		h := o.Step * math.Abs(p[i])
		if h < o.Step*0.1 {
			h = o.Step * 0.1
		}
		p[i] += h
		pts[i+1] = p
		fv[i+1] = eval(p)
	}
	order := func() {
		// Insertion sort of the simplex by function value.
		for i := 1; i <= n; i++ {
			p, v := pts[i], fv[i]
			j := i - 1
			for j >= 0 && fv[j] > v {
				pts[j+1], fv[j+1] = pts[j], fv[j]
				j--
			}
			pts[j+1], fv[j+1] = p, v
		}
	}
	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)
	for evals < o.MaxEvals {
		order()
		// Convergence: value spread and simplex diameter.
		if fv[n]-fv[0] < o.TolF {
			diam := 0.0
			for i := 1; i <= n; i++ {
				for j := 0; j < n; j++ {
					diam = math.Max(diam, math.Abs(pts[i][j]-pts[0][j]))
				}
			}
			if diam < o.TolX {
				return Result{X: pts[0], F: fv[0], Evals: evals, Converged: true}
			}
		}
		// Centroid of all but the worst.
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += pts[i][j]
			}
			centroid[j] = s / float64(n)
		}
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-pts[n][j])
		}
		fr := eval(xr)
		switch {
		case fr < fv[0]:
			// Try expanding.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			if fe := eval(xe); fe < fr {
				copy(pts[n], xe)
				fv[n] = fe
			} else {
				copy(pts[n], xr)
				fv[n] = fr
			}
		case fr < fv[n-1]:
			copy(pts[n], xr)
			fv[n] = fr
		default:
			// Contract (outside if the reflection helped, inside otherwise).
			if fr < fv[n] {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + rho*(xr[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] - rho*(centroid[j]-pts[n][j])
				}
			}
			if fc := eval(xc); fc < math.Min(fr, fv[n]) {
				copy(pts[n], xc)
				fv[n] = fc
			} else {
				// Shrink toward the best point.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					fv[i] = eval(pts[i])
				}
			}
		}
	}
	order()
	return Result{X: pts[0], F: fv[0], Evals: evals, Converged: false}
}
