package taskrt

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleTaskRuns(t *testing.T) {
	r := New(2)
	defer r.Shutdown()
	var ran atomic.Bool
	r.Submit("t", 0, func() { ran.Store(true) })
	r.Wait()
	if !ran.Load() {
		t.Error("task did not run")
	}
}

func TestWriteAfterWriteOrdering(t *testing.T) {
	r := New(4)
	defer r.Shutdown()
	h := r.NewHandle("x")
	var order []int
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		i := i
		r.Submit("w", 0, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, Write(h))
	}
	r.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("writes out of order: %v", order)
		}
	}
}

func TestReadersRunConcurrentlyAfterWriter(t *testing.T) {
	r := New(4)
	defer r.Shutdown()
	h := r.NewHandle("x")
	var wrote atomic.Bool
	r.Submit("writer", 0, func() {
		time.Sleep(10 * time.Millisecond)
		wrote.Store(true)
	}, Write(h))
	var bad atomic.Int32
	var wg sync.WaitGroup
	wg.Add(8)
	for i := 0; i < 8; i++ {
		r.Submit("reader", 0, func() {
			defer wg.Done()
			if !wrote.Load() {
				bad.Add(1)
			}
		}, Read(h))
	}
	r.Wait()
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d readers observed pre-write state", bad.Load())
	}
}

func TestWriterWaitsForAllReaders(t *testing.T) {
	r := New(4)
	defer r.Shutdown()
	h := r.NewHandle("x")
	var readers atomic.Int32
	r.Submit("init", 0, func() {}, Write(h))
	for i := 0; i < 6; i++ {
		r.Submit("reader", 0, func() {
			time.Sleep(5 * time.Millisecond)
			readers.Add(1)
		}, Read(h))
	}
	var sawAll atomic.Bool
	r.Submit("writer", 0, func() {
		sawAll.Store(readers.Load() == 6)
	}, Write(h))
	r.Wait()
	if !sawAll.Load() {
		t.Error("writer ran before all readers finished")
	}
}

func TestIndependentTasksParallel(t *testing.T) {
	// With k workers, k long tasks with no shared handles should overlap:
	// total wall time must be well under the serial sum.
	const workers = 4
	r := New(workers)
	defer r.Shutdown()
	start := time.Now()
	for i := 0; i < workers; i++ {
		r.Submit("sleep", 0, func() { time.Sleep(50 * time.Millisecond) })
	}
	r.Wait()
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("independent tasks serialized: %v", elapsed)
	}
}

func TestDiamondDependency(t *testing.T) {
	//    a
	//   / \
	//  b   c
	//   \ /
	//    d
	r := New(4)
	defer r.Shutdown()
	ha, hb, hc := r.NewHandle("a"), r.NewHandle("b"), r.NewHandle("c")
	var log []string
	var mu sync.Mutex
	add := func(s string) {
		mu.Lock()
		log = append(log, s)
		mu.Unlock()
	}
	r.Submit("a", 0, func() { add("a") }, Write(ha))
	r.Submit("b", 0, func() { add("b") }, Read(ha), Write(hb))
	r.Submit("c", 0, func() { add("c") }, Read(ha), Write(hc))
	r.Submit("d", 0, func() { add("d") }, Read(hb), Read(hc))
	r.Wait()
	pos := map[string]int{}
	for i, s := range log {
		pos[s] = i
	}
	if pos["a"] != 0 || pos["d"] != 3 {
		t.Errorf("diamond order violated: %v", log)
	}
}

func TestChainedRWDependencies(t *testing.T) {
	// A long RW chain on one handle must execute strictly in order even
	// with many workers racing.
	r := New(8)
	defer r.Shutdown()
	h := r.NewHandle("acc")
	val := 0
	for i := 0; i < 500; i++ {
		r.Submit("inc", 0, func() { val++ }, ReadWrite(h))
	}
	r.Wait()
	if val != 500 {
		t.Errorf("val = %d, want 500 (lost updates mean broken ordering)", val)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// With one worker and a full queue, higher priority runs first.
	r := New(1)
	defer r.Shutdown()
	gate := r.NewHandle("gate")
	var mu sync.Mutex
	var order []int
	release := make(chan struct{})
	r.Submit("gate", 100, func() { <-release }, Write(gate))
	for _, p := range []int{1, 3, 2} {
		p := p
		r.Submit("t", p, func() {
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
		}, Read(gate))
	}
	close(release)
	r.Wait()
	want := []int{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order %v, want %v", order, want)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	r := New(2)
	defer r.Shutdown()
	for i := 0; i < 5; i++ {
		r.Submit("gemm", 0, func() { time.Sleep(time.Millisecond) })
	}
	r.Submit("potrf", 0, func() {})
	r.Wait()
	s := r.Snapshot()
	if s.Tasks["gemm"] != 5 || s.Tasks["potrf"] != 1 {
		t.Errorf("task counts %v", s.Tasks)
	}
	if s.BusyTime["gemm"] < 4*time.Millisecond {
		t.Errorf("busy time %v", s.BusyTime["gemm"])
	}
}

func TestManyTasksStress(t *testing.T) {
	r := New(4)
	defer r.Shutdown()
	handles := make([]*Handle, 16)
	for i := range handles {
		handles[i] = r.NewHandle("h%d", i)
	}
	var sum atomic.Int64
	for i := 0; i < 5000; i++ {
		hi, hj := handles[i%16], handles[(i*7)%16]
		r.Submit("t", i%3, func() { sum.Add(1) }, Read(hi), Write(hj))
	}
	r.Wait()
	if sum.Load() != 5000 {
		t.Errorf("ran %d tasks, want 5000", sum.Load())
	}
}

func TestReuseAfterWait(t *testing.T) {
	r := New(2)
	defer r.Shutdown()
	h := r.NewHandle("x")
	v := 0
	r.Submit("a", 0, func() { v = 1 }, Write(h))
	r.Wait()
	r.Submit("b", 0, func() { v = 2 }, ReadWrite(h))
	r.Wait()
	if v != 2 {
		t.Errorf("v = %d after second phase", v)
	}
}

func TestSubmitSameHandleTwiceInOneTask(t *testing.T) {
	// A task reading and writing the same handle (listed twice) must not
	// deadlock on itself.
	r := New(2)
	defer r.Shutdown()
	h := r.NewHandle("x")
	done := false
	r.Submit("init", 0, func() {}, Write(h))
	r.Submit("self", 0, func() { done = true }, Read(h), Write(h))
	r.Wait()
	if !done {
		t.Error("self-referencing task never ran")
	}
}

func TestTraceExport(t *testing.T) {
	r := New(2)
	defer r.Shutdown()
	// Untraced tasks are not recorded.
	r.Submit("before", 0, func() {})
	r.Wait()
	r.EnableTracing()
	h := r.NewHandle("x")
	for i := 0; i < 7; i++ {
		r.Submit("traced", 0, func() { time.Sleep(time.Millisecond) }, ReadWrite(h))
	}
	r.Wait()
	r.DisableTracing()
	r.Submit("after", 0, func() {})
	r.Wait()
	if n := r.TraceEventCount(); n != 7 {
		t.Fatalf("recorded %d events, want 7", n)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != 7 {
		t.Fatalf("trace has %d events", len(events))
	}
	for _, e := range events {
		if e["name"] != "traced" || e["ph"] != "X" {
			t.Fatalf("malformed event %v", e)
		}
		if e["dur"].(float64) < 1 {
			t.Fatalf("event duration %v", e["dur"])
		}
	}
}

func TestWorkersClamped(t *testing.T) {
	r := New(0)
	defer r.Shutdown()
	if r.Workers() != 1 {
		t.Errorf("Workers() = %d, want clamp to 1", r.Workers())
	}
	ran := false
	r.Submit("t", 0, func() { ran = true })
	r.Wait()
	if !ran {
		t.Error("task did not run with clamped pool")
	}
}
