package taskrt

import (
	"errors"
	"fmt"
	"testing"
)

// TestSubmitErrRecordsFirstFailurePerGroup checks each group keeps its own
// first error and that reading it resets the scope.
func TestSubmitErrRecordsFirstFailurePerGroup(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()

	g1 := rt.NewGroup()
	g2 := rt.NewGroup()
	h := g1.NewHandle("x")
	for i := 0; i < 3; i++ {
		i := i
		g1.SubmitErr("step", 0, func() error {
			return fmt.Errorf("fail %d", i)
		}, ReadWrite(h))
	}
	g2.SubmitErr("fine", 0, func() error { return nil })
	g1.Wait()
	g2.Wait()
	if err := g1.Err(); err == nil || err.Error() != "fail 0" {
		t.Errorf("group 1 first error = %v, want fail 0", err)
	}
	if err := g1.Err(); err != nil {
		t.Errorf("group error must reset after read, got %v", err)
	}
	if err := g2.Err(); err != nil {
		t.Errorf("group 2 must be clean, got %v", err)
	}
}

// TestSubmitErrOnRuntimeScope checks the runtime scope records and resets.
func TestSubmitErrOnRuntimeScope(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	sentinel := errors.New("boom")
	rt.SubmitErr("bad", 0, func() error { return sentinel })
	rt.SubmitErr("good", 0, func() error { return nil })
	rt.Wait()
	if err := rt.Err(); !errors.Is(err, sentinel) {
		t.Errorf("runtime error = %v, want sentinel", err)
	}
	if err := rt.Err(); err != nil {
		t.Errorf("runtime error must reset after read, got %v", err)
	}
}

// TestStatsPeakReady checks the scheduler reports how deep the ready queue
// got: many independent tasks on one worker must pile up.
func TestStatsPeakReady(t *testing.T) {
	rt := New(1)
	block := make(chan struct{})
	rt.Submit("gate", 0, func() { <-block })
	for i := 0; i < 16; i++ {
		rt.Submit("work", 0, func() {})
	}
	close(block)
	rt.Wait()
	s := rt.Snapshot()
	if s.PeakReady < 8 {
		t.Errorf("peak ready-queue depth %d, want ≥ 8", s.PeakReady)
	}
	if got := s.Total(); got != 17 {
		t.Errorf("total tasks %d, want 17", got)
	}
	rt.Shutdown()
}
