// Package taskrt is a task-based runtime in the style of StarPU: the
// algorithm is written as a sequence of task submissions, each declaring how
// it accesses named data handles (read, write or read-write), and the
// runtime infers the dependency DAG from those declarations — the
// "sequential task flow" model. Ready tasks are executed by a pool of worker
// goroutines through per-worker priority queues with owner-computes
// affinity: a ready task is enqueued on the worker that last wrote the data
// it writes (its output tile is warm in that worker's cache), idle workers
// steal the best-priority task from the busiest-looking peer, and within a
// queue the original priority semantics (higher first, submission order as
// tie-break) are preserved.
//
// This is the substrate on which the tiled Cholesky factorization and the
// tiled PMVN integration (Algorithms 1–3 of the paper, red boxes (a)–(d))
// are parallelized.
package taskrt

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Access declares how a task uses a data handle.
type Access int

// Access modes. W and RW are distinguished only for documentation; both
// serialize against all earlier readers and the earlier writer.
const (
	R Access = iota
	W
	RW
)

// Handle identifies a piece of data (typically one tile) whose access
// sequence defines task dependencies. Handles are created by
// Runtime.NewHandle; the dependency fields are only mutated during task
// submission, which is single-threaded by the STF contract, while owner (the
// worker that last completed a writer task — the locality hint) is guarded
// by the runtime scheduler lock.
type Handle struct {
	name       string
	lastWriter *task
	readers    []*task
	owner      int // worker that last wrote the data; -1 = unwritten
}

// String returns the debug name of the handle.
func (h *Handle) String() string { return h.name }

// Dep pairs a handle with an access mode in a Submit call.
type Dep struct {
	H    *Handle
	Mode Access
}

// Read declares read access to h.
func Read(h *Handle) Dep { return Dep{H: h, Mode: R} }

// Write declares write access to h.
func Write(h *Handle) Dep { return Dep{H: h, Mode: W} }

// ReadWrite declares read-write access to h.
func ReadWrite(h *Handle) Dep { return Dep{H: h, Mode: RW} }

type task struct {
	name     string
	fn       func()
	priority int
	seq      int64  // submission order, tie-breaker for determinism
	onDone   func() // completion callback (group bookkeeping), may be nil

	writes []*Handle // handles this task writes; writes[0] is the affinity key
	queue  int       // worker queue the ready task was placed on

	mu         sync.Mutex
	remaining  int
	done       bool
	successors []*task
}

// addSuccessor registers succ to run after t; it reports whether t is still
// pending (true = the dependency counts).
func (t *task) addSuccessor(succ *task) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return false
	}
	t.successors = append(t.successors, succ)
	return true
}

// Stats aggregates per-task-kind execution counts and busy time, plus the
// scheduler-behavior signals the CLI and the serving layer report: the peak
// depth of the ready queues (how far ahead of the workers the submitted
// graph ran), the peak number of live task descriptors (how much graph a
// windowed submission actually kept in flight) and how many ready tasks were
// stolen off their affinity owner's queue.
type Stats struct {
	Tasks    map[string]int
	BusyTime map[string]time.Duration
	// PeakReady is the deepest the ready queues have been (summed).
	PeakReady int
	// PeakInflight is the most task descriptors alive at once — submitted
	// but not yet finished, whether waiting on dependencies, ready or
	// running. Windowed submission bounds exactly this number.
	PeakInflight int
	// Stolen counts ready tasks executed by a worker other than the one
	// their owner-computes affinity placed them on.
	Stolen int
}

// Total returns the number of tasks executed across all kinds.
func (s Stats) Total() int {
	n := 0
	for _, v := range s.Tasks {
		n += v
	}
	return n
}

// Submitter is the common task-submission surface of Runtime and Group:
// algorithms written against it can run either on the global runtime scope
// or inside an isolated completion group.
type Submitter interface {
	// NewHandle registers a named data handle.
	NewHandle(format string, args ...any) *Handle
	// Submit enqueues a task with declared handle accesses.
	Submit(name string, priority int, fn func(), deps ...Dep)
	// SubmitErr enqueues a task whose function may fail. The first failure
	// is recorded on the submission scope (the Group, or the Runtime for
	// master submissions) and reported by Err — the error-propagation
	// pattern every fallible task graph (e.g. a Cholesky hitting a
	// non-positive-definite pivot) shares.
	SubmitErr(name string, priority int, fn func() error, deps ...Dep)
	// Err returns the first failure recorded by SubmitErr on this scope and
	// resets the record, so a scope reused for a new algorithm phase starts
	// clean. Call it after Wait.
	Err() error
	// Wait blocks until every task submitted through this Submitter has
	// completed.
	Wait()
}

// errScope is the shared first-failure record behind SubmitErr/Err on both
// Runtime and Group — one implementation of the lock-check-set pattern the
// factorizations used to each carry as a mutex closure.
type errScope struct {
	mu       sync.Mutex
	firstErr error
}

// record keeps the first non-nil error.
func (e *errScope) record(err error) {
	e.mu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.mu.Unlock()
}

// take returns the recorded error and resets the scope.
func (e *errScope) take() error {
	e.mu.Lock()
	err := e.firstErr
	e.firstErr = nil
	e.mu.Unlock()
	return err
}

// Runtime schedules tasks over a fixed worker pool. Create one with New,
// submit tasks, then Wait. A Runtime may be reused for several algorithm
// phases; call Shutdown when finished.
//
// Submissions that share data handles must come from a single goroutine (the
// STF master). Independent task graphs — disjoint handle sets — may be
// submitted concurrently from multiple goroutines, each through its own
// Group, which is how batched MVN queries and randomized-QMC replicates
// share one worker pool.
type Runtime struct {
	workers int

	mu           sync.Mutex
	cond         *sync.Cond // workers: some ready queue not empty / closed
	idle         *sync.Cond // waiters: inflight dropped to zero
	queues       []taskHeap // one priority queue per worker
	readyCount   int        // tasks across all queues
	closed       bool
	seq          int64
	inflight     int // tasks submitted but not yet finished
	peakReady    int // deepest the ready queues have been (summed)
	peakInflight int // most task descriptors alive at once

	statsMu sync.Mutex
	stats   Stats

	errs errScope

	trace tracer
}

// New returns a runtime with the given number of worker goroutines
// (at least 1).
func New(workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	r := &Runtime{
		workers: workers,
		queues:  make([]taskHeap, workers),
		stats:   Stats{Tasks: map[string]int{}, BusyTime: map[string]time.Duration{}},
	}
	r.cond = sync.NewCond(&r.mu)
	r.idle = sync.NewCond(&r.mu)
	for i := 0; i < workers; i++ {
		go r.worker(i)
	}
	return r
}

// Workers returns the size of the worker pool.
//repro:noalloc
func (r *Runtime) Workers() int { return r.workers }

// NewHandle registers a named data handle.
func (r *Runtime) NewHandle(format string, args ...any) *Handle {
	return &Handle{name: fmt.Sprintf(format, args...), owner: -1}
}

// Submit enqueues a task. The runtime derives its dependencies from how
// earlier tasks accessed the same handles: readers wait for the last writer;
// writers wait for the last writer and all readers since. Tasks sharing
// handles must be submitted from a single goroutine (the STF master),
// mirroring StarPU's starpu_task_insert; independent graphs may submit
// concurrently (see Group).
func (r *Runtime) Submit(name string, priority int, fn func(), deps ...Dep) {
	r.submit(name, priority, fn, nil, deps)
}

// SubmitErr enqueues a fallible task on the runtime scope; the first failure
// is kept and returned (once) by Err.
func (r *Runtime) SubmitErr(name string, priority int, fn func() error, deps ...Dep) {
	r.submit(name, priority, func() {
		if err := fn(); err != nil {
			r.errs.record(err)
		}
	}, nil, deps)
}

// Err returns the first failure recorded by Runtime.SubmitErr since the last
// call and clears it, so a runtime reused across algorithm phases reports
// each phase's outcome independently. Like master task submission itself,
// fallible phases on the raw runtime scope must not overlap; concurrent task
// graphs each use their own Group, whose Err is scoped per group.
func (r *Runtime) Err() error { return r.errs.take() }

func (r *Runtime) submit(name string, priority int, fn func(), onDone func(), deps []Dep) {
	t := &task{name: name, fn: fn, priority: priority, onDone: onDone}
	r.mu.Lock()
	r.inflight++
	if r.inflight > r.peakInflight {
		r.peakInflight = r.inflight
	}
	r.mu.Unlock()

	// Collect unique predecessor tasks.
	preds := map[*task]struct{}{}
	for _, d := range deps {
		switch d.Mode {
		case R:
			if w := d.H.lastWriter; w != nil && w != t {
				preds[w] = struct{}{}
			}
			d.H.readers = append(d.H.readers, t)
		case W, RW:
			if w := d.H.lastWriter; w != nil && w != t {
				preds[w] = struct{}{}
			}
			for _, rd := range d.H.readers {
				if rd != t {
					preds[rd] = struct{}{}
				}
			}
			d.H.lastWriter = t
			d.H.readers = nil
			t.writes = append(t.writes, d.H)
		default:
			panic("taskrt: invalid access mode")
		}
	}
	n := 0
	for p := range preds {
		if p.addSuccessor(t) {
			n++
		}
	}
	t.mu.Lock()
	t.remaining += n
	ready := t.remaining == 0
	t.mu.Unlock()
	if ready {
		r.push(t)
	}
}

// push places a ready task on a worker queue: the one that last wrote the
// task's output handle when known (owner-computes affinity — the data the
// task is about to touch is warm in that worker's cache), otherwise spread
// round-robin by submission sequence.
func (r *Runtime) push(t *task) {
	r.mu.Lock()
	t.seq = r.seq
	r.seq++
	q := -1
	if len(t.writes) > 0 {
		q = t.writes[0].owner
	}
	if q < 0 {
		q = int(t.seq) % len(r.queues)
	}
	t.queue = q
	heap.Push(&r.queues[q], t)
	r.readyCount++
	if r.readyCount > r.peakReady {
		r.peakReady = r.readyCount
	}
	r.mu.Unlock()
	r.cond.Signal()
}

// take pops the next task for worker id under r.mu: its own queue first
// (affinity), otherwise it steals the best-priority ready task among the
// other queues' tops, so the global priority semantics still decide what an
// idle worker picks up.
func (r *Runtime) take(id int) *task {
	if len(r.queues[id]) > 0 {
		r.readyCount--
		return heap.Pop(&r.queues[id]).(*task)
	}
	victim := -1
	for q := range r.queues {
		if q == id || len(r.queues[q]) == 0 {
			continue
		}
		if victim < 0 || taskBefore(r.queues[q][0], r.queues[victim][0]) {
			victim = q
		}
	}
	if victim < 0 {
		return nil
	}
	r.readyCount--
	return heap.Pop(&r.queues[victim]).(*task)
}

func (r *Runtime) worker(id int) {
	for {
		r.mu.Lock()
		var t *task
		for {
			if t = r.take(id); t != nil || r.closed {
				break
			}
			r.cond.Wait()
		}
		if t == nil {
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()

		start := time.Now()
		t.fn()
		elapsed := time.Since(start)
		r.trace.record(t.name, id, start, elapsed)

		r.statsMu.Lock()
		r.stats.Tasks[t.name]++
		r.stats.BusyTime[t.name] += elapsed
		if t.queue != id {
			r.stats.Stolen++
		}
		r.statsMu.Unlock()

		// Record ownership of the written data before any successor can
		// become ready: a successor pushed after this point reads the
		// owner under the same scheduler lock.
		if len(t.writes) > 0 {
			r.mu.Lock()
			for _, h := range t.writes {
				h.owner = id
			}
			r.mu.Unlock()
		}

		t.mu.Lock()
		t.done = true
		succ := t.successors
		t.successors = nil
		t.mu.Unlock()
		for _, s := range succ {
			s.mu.Lock()
			s.remaining--
			ready := s.remaining == 0
			s.mu.Unlock()
			if ready {
				r.push(s)
			}
		}
		if t.onDone != nil {
			t.onDone()
		}
		r.mu.Lock()
		r.inflight--
		if r.inflight == 0 {
			r.idle.Broadcast()
		}
		r.mu.Unlock()
	}
}

// Wait blocks until every submitted task has completed — across all groups
// and master submissions. For a barrier over one batch only, use Group.Wait.
func (r *Runtime) Wait() {
	r.mu.Lock()
	for r.inflight > 0 {
		r.idle.Wait()
	}
	r.mu.Unlock()
}

// Shutdown waits for outstanding tasks and stops the workers. The runtime
// must not be used afterwards.
func (r *Runtime) Shutdown() {
	r.Wait()
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Group scopes a set of task submissions to their own completion barrier:
// tasks submitted through a Group run on the shared worker pool, but
// Group.Wait blocks only until the group's own tasks have finished, not the
// whole runtime. Concurrent goroutines may each submit through their own
// Group as long as their handle sets are disjoint — this is the per-batch
// wait scope used by batched MVN queries and parallel QMC replicates.
type Group struct {
	rt   *Runtime
	wg   sync.WaitGroup
	errs errScope
}

// NewGroup returns a fresh completion group on the runtime's worker pool.
func (r *Runtime) NewGroup() *Group { return &Group{rt: r} }

// NewHandle registers a named data handle (handles are runtime-global; the
// group only scopes completion).
func (g *Group) NewHandle(format string, args ...any) *Handle {
	return g.rt.NewHandle(format, args...)
}

// Submit enqueues a task whose completion is tracked by this group. Like
// Runtime.Submit, tasks sharing handles must be submitted from a single
// goroutine.
func (g *Group) Submit(name string, priority int, fn func(), deps ...Dep) {
	g.wg.Add(1)
	g.rt.submit(name, priority, fn, g.wg.Done, deps)
}

// SubmitErr enqueues a fallible task; the group records the first failure
// across all of its tasks, replacing the per-algorithm mutex-and-closure
// error plumbing the factorizations used to carry.
func (g *Group) SubmitErr(name string, priority int, fn func() error, deps ...Dep) {
	g.Submit(name, priority, func() {
		if err := fn(); err != nil {
			g.errs.record(err)
		}
	}, deps...)
}

// Err returns the first failure recorded by SubmitErr on this group and
// resets it. Call after Wait.
func (g *Group) Err() error { return g.errs.take() }

// Wait blocks until every task submitted through this group has completed.
func (g *Group) Wait() { g.wg.Wait() }

// Throttle is a Submitter decorator that bounds the number of
// submitted-but-unfinished tasks: Submit blocks the STF master while the
// bound is reached and resumes as tasks complete. This is the windowed
// ("lookahead") submission used by the streamed factorization — task
// descriptors for an nt-tile Cholesky number O(nt³), so submitting the whole
// graph eagerly costs more memory than the matrix; the throttle keeps only a
// scheduling window alive.
//
// Blocking the master is deadlock-free under the STF contract: a submitted
// task can only depend on earlier-submitted tasks, so the tasks already in
// flight always make progress without the master.
type Throttle struct {
	sub      Submitter
	mu       sync.Mutex
	cond     *sync.Cond
	limit    int
	inflight int
}

// NewThrottle wraps sub with an in-flight task bound of limit (at least 1).
func NewThrottle(sub Submitter, limit int) *Throttle {
	if limit < 1 {
		limit = 1
	}
	t := &Throttle{sub: sub, limit: limit}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// NewHandle registers a named data handle on the underlying scope.
func (th *Throttle) NewHandle(format string, args ...any) *Handle {
	return th.sub.NewHandle(format, args...)
}

func (th *Throttle) acquire() {
	th.mu.Lock()
	for th.inflight >= th.limit {
		th.cond.Wait()
	}
	th.inflight++
	th.mu.Unlock()
}

func (th *Throttle) release() {
	th.mu.Lock()
	th.inflight--
	th.mu.Unlock()
	th.cond.Signal()
}

// Submit enqueues a task, blocking while the in-flight bound is reached.
func (th *Throttle) Submit(name string, priority int, fn func(), deps ...Dep) {
	th.acquire()
	th.sub.Submit(name, priority, func() {
		fn()
		th.release()
	}, deps...)
}

// SubmitErr enqueues a fallible task, blocking while the in-flight bound is
// reached; errors propagate to the underlying scope.
func (th *Throttle) SubmitErr(name string, priority int, fn func() error, deps ...Dep) {
	th.acquire()
	th.sub.SubmitErr(name, priority, func() error {
		err := fn()
		th.release()
		return err
	}, deps...)
}

// Err reports the underlying scope's first recorded failure.
func (th *Throttle) Err() error { return th.sub.Err() }

// Wait blocks until every task submitted through the underlying scope has
// completed.
func (th *Throttle) Wait() { th.sub.Wait() }

// Scatter adapts an optional Submitter to a fan-out of independent tasks:
// run executes fn inline when sub is nil, or submits it under name
// (priority 0, no dependencies) otherwise; wait blocks until every
// submitted task completed (a no-op when serial). This is the shared
// scaffolding of the parallel assembly/compression paths, which build
// disjoint tiles and only need a completion barrier.
func Scatter(sub Submitter, name string) (run func(func()), wait func()) {
	if sub == nil {
		return func(fn func()) { fn() }, func() {}
	}
	return func(fn func()) { sub.Submit(name, 0, fn) }, sub.Wait
}

// ForEachLimit runs fn(i) for every i in [0,n) with at most limit calls in
// flight — the fan-out shape of batched queries, where each item allocates
// its whole working set up front, so unbounded spawning would exhaust
// memory long before the worker pool could drain it. limit < 1 means 1.
func ForEachLimit(n, limit int, fn func(int)) {
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}()
	}
	wg.Wait()
}

// Snapshot returns a copy of the accumulated execution statistics.
func (r *Runtime) Snapshot() Stats {
	r.mu.Lock()
	peak := r.peakReady
	peakIn := r.peakInflight
	r.mu.Unlock()
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	s := Stats{
		Tasks: map[string]int{}, BusyTime: map[string]time.Duration{},
		PeakReady: peak, PeakInflight: peakIn, Stolen: r.stats.Stolen,
	}
	for k, v := range r.stats.Tasks {
		s.Tasks[k] = v
	}
	for k, v := range r.stats.BusyTime {
		s.BusyTime[k] = v
	}
	return s
}

// taskBefore reports whether a should run before b: higher priority first,
// earlier submission as tie-break.
func taskBefore(a, b *task) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// taskHeap is a max-heap on (priority, earlier submission wins ties).
type taskHeap []*task

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return taskBefore(h[i], h[j]) }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
