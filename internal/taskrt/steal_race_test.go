//go:build race

package taskrt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// The work-stealing stress test runs under the race detector only: its value
// is the detector sweeping the scheduler's queue handoff, owner-affinity
// recording and steal path under heavy contention while failures propagate.

// runStealWorkload drives a serial read-write chain (pinned to its owner's
// queue by the affinity router) interleaved with independent filler tasks
// that keep every worker busy, through a throttled submitter with an
// injected failure. It returns the steal count, tasks executed and the
// scope's recorded error.
func runStealWorkload(sentinel error) (stolen int, ran int64, err error) {
	rt := New(4)
	defer rt.Shutdown()
	th := NewThrottle(rt, 64)
	chain := th.NewHandle("chain")
	var count atomic.Int64
	const total = 2000
	for i := 0; i < total; i++ {
		i := i
		if i%5 == 0 {
			// Fillers occupy whichever worker owns the chain's queue, so
			// ready chain tasks back up there and idle workers raid them.
			th.Submit("filler", 1, func() {
				count.Add(1)
				time.Sleep(20 * time.Microsecond)
			})
			continue
		}
		th.SubmitErr("chain", 0, func() error {
			count.Add(1)
			if i == 777 {
				return sentinel
			}
			return nil
		}, ReadWrite(chain))
	}
	th.Wait()
	return rt.Snapshot().Stolen, count.Load(), th.Err()
}

// TestStealStressWithFailureInjection checks, under contention, that the
// serial chain loses no updates, the injected failure surfaces exactly once
// through the throttled scope, and that work stealing actually fires (the
// owner's queue is raided while it runs fillers). Steals are timing-
// dependent, so the workload retries a few times before declaring the
// stealing path dead.
func TestStealStressWithFailureInjection(t *testing.T) {
	sentinel := errors.New("injected failure")
	for attempt := 0; attempt < 5; attempt++ {
		stolen, ran, err := runStealWorkload(sentinel)
		if ran != 2000 {
			t.Fatalf("attempt %d: ran %d tasks, want 2000 (lost chain updates)", attempt, ran)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("attempt %d: scope error = %v, want the injected failure", attempt, err)
		}
		if stolen > 0 {
			return
		}
	}
	t.Error("no steals observed across 5 contended runs")
}
