package taskrt

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// traceEvent is one completed task execution.
type traceEvent struct {
	Name   string
	Worker int
	Start  time.Duration // since tracing was enabled
	Dur    time.Duration
}

// tracer collects execution events when enabled. StarPU ships the same
// facility (FxT traces rendered with ViTE); we emit the Chrome trace-event
// format, which chrome://tracing and Perfetto read directly.
type tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	start   time.Time
	events  []traceEvent
}

func (t *tracer) record(name string, worker int, start time.Time, dur time.Duration) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name:   name,
		Worker: worker,
		Start:  start.Sub(t.start),
		Dur:    dur,
	})
	t.mu.Unlock()
}

// EnableTracing starts recording one event per executed task. Call before
// submitting the work of interest.
func (r *Runtime) EnableTracing() {
	r.trace.mu.Lock()
	r.trace.start = time.Now()
	r.trace.events = r.trace.events[:0]
	r.trace.mu.Unlock()
	r.trace.enabled.Store(true)
}

// DisableTracing stops recording.
func (r *Runtime) DisableTracing() { r.trace.enabled.Store(false) }

// chromeEvent is the Chrome trace-event JSON schema ("X" complete events).
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`  // microseconds
	Dur  int64  `json:"dur"` // microseconds
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

// WriteTrace dumps the recorded events as a Chrome trace-event JSON array
// (open in chrome://tracing or Perfetto): one row per worker, one slice per
// task.
func (r *Runtime) WriteTrace(w io.Writer) error {
	r.trace.mu.Lock()
	events := make([]chromeEvent, len(r.trace.events))
	for i, e := range r.trace.events {
		events[i] = chromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   e.Start.Microseconds(),
			Dur:  max64(e.Dur.Microseconds(), 1),
			Pid:  1,
			Tid:  e.Worker,
		}
	}
	r.trace.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TraceEventCount returns the number of recorded events (for tests and
// sanity checks).
func (r *Runtime) TraceEventCount() int {
	r.trace.mu.Lock()
	defer r.trace.mu.Unlock()
	return len(r.trace.events)
}
