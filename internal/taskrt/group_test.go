package taskrt

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupWaitScopesToOwnTasks checks Group.Wait returns once the group's
// tasks are done, even while another group's task is still blocked.
func TestGroupWaitScopesToOwnTasks(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()

	release := make(chan struct{})
	slow := rt.NewGroup()
	slow.Submit("slow", 0, func() { <-release })

	fast := rt.NewGroup()
	var ran atomic.Int32
	for i := 0; i < 8; i++ {
		h := fast.NewHandle("f(%d)", i)
		fast.Submit("fast", 0, func() { ran.Add(1) }, ReadWrite(h))
	}
	fast.Wait() // must not require the slow group's task to finish
	if got := ran.Load(); got != 8 {
		t.Errorf("fast group ran %d tasks, want 8", got)
	}
	close(release)
	slow.Wait()
}

// TestGroupDependenciesWithinGroup checks handle-derived ordering still holds
// for tasks submitted through a group.
func TestGroupDependenciesWithinGroup(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()

	g := rt.NewGroup()
	h := g.NewHandle("x")
	order := make([]int, 0, 3)
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		i := i
		g.Submit("step", 0, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, ReadWrite(h))
	}
	g.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("RW chain executed out of order: %v", order)
		}
	}
}

// TestConcurrentGroups submits independent task graphs from many goroutines
// at once — the batched-query pattern — and checks per-group counts and that
// Runtime.Wait covers everything.
func TestConcurrentGroups(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()

	const groups, tasks = 16, 50
	var total atomic.Int32
	var wg sync.WaitGroup
	for gi := 0; gi < groups; gi++ {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := rt.NewGroup()
			var local atomic.Int32
			var prev *Handle
			for ti := 0; ti < tasks; ti++ {
				deps := []Dep{}
				if prev != nil {
					deps = append(deps, Read(prev))
				}
				h := g.NewHandle("g%d t%d", gi, ti)
				deps = append(deps, Write(h))
				g.Submit("t", ti%3, func() {
					local.Add(1)
					total.Add(1)
				}, deps...)
				prev = h
			}
			g.Wait()
			if got := local.Load(); got != tasks {
				t.Errorf("group %d ran %d tasks, want %d", gi, got, tasks)
			}
		}()
	}
	wg.Wait()
	rt.Wait() // must be a no-op barrier now
	if got := total.Load(); got != groups*tasks {
		t.Errorf("total %d, want %d", got, groups*tasks)
	}
}

// TestRuntimeWaitCoversGroups checks the global barrier includes tasks
// submitted through groups.
func TestRuntimeWaitCoversGroups(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	var done atomic.Bool
	g := rt.NewGroup()
	g.Submit("t", 0, func() { done.Store(true) })
	rt.Wait()
	if !done.Load() {
		t.Error("Runtime.Wait returned before group task finished")
	}
}
