package taskrt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestThrottleBlocksAtLimit checks the windowed-submission decorator: the
// STF master must block in Submit once the in-flight bound is reached and
// resume as tasks retire.
func TestThrottleBlocksAtLimit(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	th := NewThrottle(rt, 3)
	gate := make(chan struct{})
	for i := 0; i < 3; i++ {
		th.Submit("held", 0, func() { <-gate })
	}
	fourth := make(chan struct{})
	go func() {
		th.Submit("fourth", 0, func() {})
		close(fourth)
	}()
	select {
	case <-fourth:
		t.Fatal("submission past the in-flight bound did not block")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case <-fourth:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked submission never resumed")
	}
	th.Wait()
	// The throttle releases its slot at the end of the task function, just
	// before the runtime retires the descriptor, so the runtime's in-flight
	// peak can transiently exceed the bound by up to one task per worker —
	// but never by the unthrottled graph size.
	if peak := rt.Snapshot().PeakInflight; peak > 3+rt.Workers() {
		t.Errorf("peak in-flight %d far exceeds the throttle bound 3", peak)
	}
}

// TestThrottleClampsLimit pins the at-least-1 clamp: a degenerate limit must
// not deadlock the first submission.
func TestThrottleClampsLimit(t *testing.T) {
	rt := New(1)
	defer rt.Shutdown()
	th := NewThrottle(rt, 0)
	ran := false
	th.Submit("t", 0, func() { ran = true })
	th.Wait()
	if !ran {
		t.Error("task did not run through clamped throttle")
	}
}

// TestThrottleReleasesOnError checks failing tasks still release their
// window slot — a leaked slot would deadlock the master — and that the
// error reaches the underlying scope.
func TestThrottleReleasesOnError(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	th := NewThrottle(rt, 2)
	sentinel := errors.New("boom")
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		i := i
		th.SubmitErr("step", 0, func() error {
			ran.Add(1)
			if i%7 == 0 {
				return sentinel
			}
			return nil
		})
	}
	th.Wait()
	if got := ran.Load(); got != 50 {
		t.Errorf("ran %d tasks, want 50 (a failing task leaked its window slot)", got)
	}
	if err := th.Err(); !errors.Is(err, sentinel) {
		t.Errorf("throttle Err = %v, want the injected failure", err)
	}
}

// TestStatsPeakInflightAndStolen checks the two scheduler counters added for
// the windowed/locality scheduler are populated: with a gated dependency
// fan the in-flight peak must reach the full graph size.
func TestStatsPeakInflightAndStolen(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	gate := make(chan struct{})
	h := rt.NewHandle("x")
	rt.Submit("gate", 0, func() { <-gate }, Write(h))
	for i := 0; i < 9; i++ {
		rt.Submit("r", 0, func() {}, Read(h))
	}
	close(gate)
	rt.Wait()
	s := rt.Snapshot()
	if s.PeakInflight != 10 {
		t.Errorf("peak in-flight %d, want 10", s.PeakInflight)
	}
	if s.Stolen < 0 || s.Stolen > s.Total() {
		t.Errorf("stolen %d out of range (total %d)", s.Stolen, s.Total())
	}
}
