// Package tiledalg contains the task-parallel tiled dense algorithms built
// on the taskrt runtime — most importantly the tiled Cholesky factorization
// (red box (a) in the paper's Algorithm 1). It is the Chameleon layer of the
// reproduction.
package tiledalg

import (
	"fmt"
	"sync"

	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Handles caches one runtime handle per tile of a tiled matrix, so repeated
// algorithm phases reuse the same dependency chains.
type Handles struct {
	rt taskrt.Submitter
	hs []*taskrt.Handle
	mt int
}

// NewHandles creates a handle grid for an mt×nt tile grid.
func NewHandles(rt taskrt.Submitter, name string, mt, nt int) *Handles {
	h := &Handles{rt: rt, hs: make([]*taskrt.Handle, mt*nt), mt: mt}
	for j := 0; j < nt; j++ {
		for i := 0; i < mt; i++ {
			h.hs[i+j*mt] = rt.NewHandle("%s(%d,%d)", name, i, j)
		}
	}
	return h
}

// At returns the handle for tile (i,j).
func (h *Handles) At(i, j int) *taskrt.Handle { return h.hs[i+j*h.mt] }

// Potrf performs the task-parallel tiled Cholesky factorization of the
// symmetric positive definite tiled matrix a (lower variant): on return the
// lower-triangular tiles of a hold L with a = L·Lᵀ. Only the lower triangle
// (tile (i,j) with i ≥ j) is referenced or written.
//
// The task graph is the classical right-looking tile Cholesky:
//
//	POTRF(a[k][k])
//	TRSM(a[k][k], a[i][k])            i > k
//	SYRK(a[i][k], a[i][i])            i > k
//	GEMM(a[i][k], a[j][k], a[i][j])   i > j > k
//
// Priorities favor the critical path (panel column) as StarPU's
// heteroprio-style schedulers do.
func Potrf(rt taskrt.Submitter, a *tile.Matrix) error {
	if a.M != a.N {
		return fmt.Errorf("tiledalg: Potrf needs square matrix, got %dx%d", a.M, a.N)
	}
	h := NewHandles(rt, "A", a.MT, a.NT)
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	nt := a.NT
	for k := 0; k < nt; k++ {
		k := k
		akk := a.Tile(k, k)
		rt.Submit("potrf", 3*nt-3*k, func() {
			if err := linalg.PotrfUnblocked(akk); err != nil {
				setErr(fmt.Errorf("tile (%d,%d): %w", k, k, err))
			}
		}, taskrt.ReadWrite(h.At(k, k)))
		for i := k + 1; i < nt; i++ {
			i := i
			aik := a.Tile(i, k)
			rt.Submit("trsm", 3*nt-3*k-1, func() {
				linalg.TrsmLower(linalg.Right, true, 1, akk, aik)
			}, taskrt.Read(h.At(k, k)), taskrt.ReadWrite(h.At(i, k)))
		}
		for i := k + 1; i < nt; i++ {
			i := i
			aik := a.Tile(i, k)
			aii := a.Tile(i, i)
			rt.Submit("syrk", 3*nt-3*k-2, func() {
				linalg.Syrk(false, -1, aik, 1, aii)
			}, taskrt.Read(h.At(i, k)), taskrt.ReadWrite(h.At(i, i)))
			for j := k + 1; j < i; j++ {
				j := j
				ajk := a.Tile(j, k)
				aij := a.Tile(i, j)
				rt.Submit("gemm", 3*nt-3*k-2, func() {
					linalg.Gemm(false, true, -1, aik, ajk, 1, aij)
				}, taskrt.Read(h.At(i, k)), taskrt.Read(h.At(j, k)), taskrt.ReadWrite(h.At(i, j)))
			}
		}
	}
	rt.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Zero the strict upper triangles of diagonal tiles and discard upper
	// tiles so the result is an explicit lower factor.
	for k := 0; k < nt; k++ {
		a.Tile(k, k).LowerFromFull()
		for j := k + 1; j < nt; j++ {
			a.Tile(k, j).Zero()
		}
	}
	return nil
}

// GemmCounts reports the number of each tile kernel a Potrf of nt tile
// columns submits; exposed for the scheduler-calibration tests and the
// cluster simulator.
func GemmCounts(nt int) (potrf, trsm, syrk, gemm int) {
	potrf = nt
	trsm = nt * (nt - 1) / 2
	syrk = trsm
	gemm = nt * (nt - 1) * (nt - 2) / 6
	return
}
