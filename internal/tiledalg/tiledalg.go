// Package tiledalg contains the task-parallel tiled dense algorithms — most
// importantly the dense layout of the tiled Cholesky factorization (red box
// (a) in the paper's Algorithm 1). It is the Chameleon layer of the
// reproduction; the task graph itself lives in the shared engine.
package tiledalg

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Potrf performs the task-parallel tiled Cholesky factorization of the
// symmetric positive definite tiled matrix a (lower variant): on return the
// lower-triangular tiles of a hold L with a = L·Lᵀ. Only the lower triangle
// (tile (i,j) with i ≥ j) is referenced or written.
//
// It is a dense-float64 layout over the unified factorization engine: every
// lower tile enters the engine grid as a DenseF64 tile and the engine owns
// the POTRF/TRSM/SYRK/GEMM task graph.
func Potrf(rt taskrt.Submitter, a *tile.Matrix) error {
	if a.M != a.N {
		return fmt.Errorf("tiledalg: Potrf needs square matrix, got %dx%d", a.M, a.N)
	}
	g := engine.NewGrid(a.M, a.TS)
	for i := 0; i < a.MT; i++ {
		for j := 0; j <= i; j++ {
			g.Set(i, j, &tile.DenseF64{D: a.Tile(i, j)})
		}
	}
	if err := engine.Potrf(rt, g, engine.Config{}); err != nil {
		return err
	}
	// Discard upper tiles so the result is an explicit lower factor (the
	// engine already zeroed the strict upper triangles of diagonal tiles).
	for k := 0; k < a.NT; k++ {
		for j := k + 1; j < a.NT; j++ {
			a.Tile(k, j).Zero()
		}
	}
	return nil
}

// GemmCounts reports the number of each tile kernel a Potrf of nt tile
// columns submits; exposed for the scheduler-calibration tests and the
// cluster simulator.
func GemmCounts(nt int) (potrf, trsm, syrk, gemm int) {
	potrf = nt
	trsm = nt * (nt - 1) / 2
	syrk = trsm
	gemm = nt * (nt - 1) * (nt - 2) / 6
	return
}
