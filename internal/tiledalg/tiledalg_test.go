package tiledalg

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

func randSPD(n int, rng *rand.Rand) *linalg.Matrix {
	g := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		col := g.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	a := linalg.NewMatrix(n, n)
	linalg.Gemm(true, false, 1, g, g, 0, a)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestPotrfMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rt := taskrt.New(4)
	defer rt.Shutdown()
	for _, tc := range []struct{ n, ts int }{
		{8, 4}, {12, 4}, {13, 4}, {20, 7}, {5, 8}, {32, 8}, {1, 4},
	} {
		a := randSPD(tc.n, rng)
		want, err := linalg.Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		ta := tile.FromDense(a, tc.ts)
		if err := Potrf(rt, ta); err != nil {
			t.Fatalf("n=%d ts=%d: %v", tc.n, tc.ts, err)
		}
		got := ta.ToDense()
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("n=%d ts=%d: tiled vs dense Cholesky diff %v", tc.n, tc.ts, d)
		}
	}
}

func TestPotrfReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rt := taskrt.New(3)
	defer rt.Shutdown()
	n := 25
	a := randSPD(n, rng)
	ta := tile.FromDense(a, 6)
	if err := Potrf(rt, ta); err != nil {
		t.Fatal(err)
	}
	l := ta.ToDense()
	rec := linalg.NewMatrix(n, n)
	linalg.Gemm(false, true, 1, l, l, 0, rec)
	if d := rec.MaxAbsDiff(a); d > 1e-9 {
		t.Errorf("LLᵀ reconstruction diff %v", d)
	}
}

func TestPotrfNonSquare(t *testing.T) {
	rt := taskrt.New(1)
	defer rt.Shutdown()
	if err := Potrf(rt, tile.New(4, 6, 2)); err == nil {
		t.Error("want error for non-square input")
	}
}

func TestPotrfIndefiniteReportsError(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	a := linalg.Eye(8)
	a.Set(5, 5, -2)
	ta := tile.FromDense(a, 3)
	err := Potrf(rt, ta)
	if !errors.Is(err, linalg.ErrNotPositiveDefinite) {
		t.Errorf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestPotrfManyWorkersDeterministic(t *testing.T) {
	// The factor must be identical regardless of worker count: the task
	// graph fully orders every tile update.
	rng := rand.New(rand.NewSource(3))
	a := randSPD(30, rng)
	var results []*linalg.Matrix
	for _, w := range []int{1, 2, 8} {
		rt := taskrt.New(w)
		ta := tile.FromDense(a, 5)
		if err := Potrf(rt, ta); err != nil {
			t.Fatal(err)
		}
		rt.Shutdown()
		results = append(results, ta.ToDense())
	}
	for i := 1; i < len(results); i++ {
		if d := results[i].MaxAbsDiff(results[0]); d != 0 {
			t.Errorf("worker count changed the result by %v", d)
		}
	}
}

func TestGemmCounts(t *testing.T) {
	for _, tc := range []struct{ nt, p, tr, sy, ge int }{
		{1, 1, 0, 0, 0},
		{2, 2, 1, 1, 0},
		{3, 3, 3, 3, 1},
		{4, 4, 6, 6, 4},
	} {
		p, tr, sy, ge := GemmCounts(tc.nt)
		if p != tc.p || tr != tc.tr || sy != tc.sy || ge != tc.ge {
			t.Errorf("GemmCounts(%d) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				tc.nt, p, tr, sy, ge, tc.p, tc.tr, tc.sy, tc.ge)
		}
	}
	// Counts must match what the runtime actually executed.
	rng := rand.New(rand.NewSource(4))
	rt := taskrt.New(2)
	defer rt.Shutdown()
	ta := tile.FromDense(randSPD(20, rng), 5) // nt = 4
	if err := Potrf(rt, ta); err != nil {
		t.Fatal(err)
	}
	s := rt.Snapshot()
	p, tr, sy, ge := GemmCounts(4)
	if s.Tasks["potrf"] != p || s.Tasks["trsm"] != tr || s.Tasks["syrk"] != sy || s.Tasks["gemm"] != ge {
		t.Errorf("executed %v, want potrf=%d trsm=%d syrk=%d gemm=%d", s.Tasks, p, tr, sy, ge)
	}
}
