// Package geo provides the spatial-geometry substrate: 2-D point sets on
// regular grids or irregular (jittered / uniform random) layouts, and the
// pairwise distances the covariance kernels consume. It mirrors the location
// generator of ExaGeoStat that the paper uses to produce its synthetic
// datasets.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Geom is an ordered collection of spatial locations. The index of a point
// is its variable index in every covariance matrix and probability vector
// built from the geometry.
type Geom struct {
	Pts []Point
	// Nx, Ny record the grid shape when the geometry is a regular grid
	// (zero otherwise); plotting and the rank-map figure use them.
	Nx, Ny int
}

// Len returns the number of locations.
func (g *Geom) Len() int { return len(g.Pts) }

// Dist returns the distance between locations i and j.
func (g *Geom) Dist(i, j int) float64 { return g.Pts[i].Dist(g.Pts[j]) }

// RegularGrid returns an nx×ny grid of points filling the unit square,
// ordered row-major. With nx = ny = k the spacing is 1/(k-1) except for the
// degenerate 1-point case.
func RegularGrid(nx, ny int) *Geom {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("geo: invalid grid %dx%d", nx, ny))
	}
	pts := make([]Point, 0, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			pts = append(pts, Point{X: frac(i, nx), Y: frac(j, ny)})
		}
	}
	return &Geom{Pts: pts, Nx: nx, Ny: ny}
}

func frac(i, n int) float64 {
	if n == 1 {
		return 0.5
	}
	return float64(i) / float64(n-1)
}

// JitteredGrid returns a regular nx×ny grid with each point perturbed by a
// uniform offset of at most `jitter` grid cells in each coordinate. This is
// the "irregularly distributed locations" layout ExaGeoStat generates: it
// keeps points distinct and spread while breaking the lattice structure.
func JitteredGrid(nx, ny int, jitter float64, rng *rand.Rand) *Geom {
	g := RegularGrid(nx, ny)
	hx := 1.0 / float64(max(nx-1, 1))
	hy := 1.0 / float64(max(ny-1, 1))
	for i := range g.Pts {
		g.Pts[i].X += (rng.Float64()*2 - 1) * jitter * hx
		g.Pts[i].Y += (rng.Float64()*2 - 1) * jitter * hy
	}
	g.Nx, g.Ny = 0, 0
	return g
}

// UniformRandom returns n points drawn uniformly from the unit square.
func UniformRandom(n int, rng *rand.Rand) *Geom {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return &Geom{Pts: pts}
}

// Rect returns a copy of g affinely mapped from the unit square onto the
// rectangle [x0,x1]×[y0,y1]. It is used to place synthetic fields on
// physical coordinates (e.g. longitude/latitude boxes).
func (g *Geom) Rect(x0, x1, y0, y1 float64) *Geom {
	out := &Geom{Pts: make([]Point, len(g.Pts)), Nx: g.Nx, Ny: g.Ny}
	for i, p := range g.Pts {
		out.Pts[i] = Point{X: x0 + p.X*(x1-x0), Y: y0 + p.Y*(y1-y0)}
	}
	return out
}

// Subset returns the geometry restricted to the given indices, in order.
func (g *Geom) Subset(idx []int) *Geom {
	out := &Geom{Pts: make([]Point, len(idx))}
	for k, i := range idx {
		out.Pts[k] = g.Pts[i]
	}
	return out
}

// MortonOrder returns a permutation of the location indices sorted along a
// Z-order (Morton) space-filling curve. Tile low-rank compression depends on
// spatial locality of the index ordering: Morton ordering keeps nearby
// points in nearby indices so off-diagonal tiles have decaying ranks.
func (g *Geom) MortonOrder() []int {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range g.Pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	sx, sy := maxX-minX, maxY-minY
	if sx == 0 {
		sx = 1
	}
	if sy == 0 {
		sy = 1
	}
	const bits = 16
	keys := make([]uint64, len(g.Pts))
	for i, p := range g.Pts {
		ix := uint32(((p.X - minX) / sx) * float64((1<<bits)-1))
		iy := uint32(((p.Y - minY) / sy) * float64((1<<bits)-1))
		keys[i] = interleave(ix) | interleave(iy)<<1
	}
	idx := make([]int, len(g.Pts))
	for i := range idx {
		idx[i] = i
	}
	sortByKey(idx, keys)
	return idx
}

// interleave spreads the low 16 bits of v so there is a zero bit between
// each pair of consecutive bits.
func interleave(v uint32) uint64 {
	x := uint64(v) & 0xFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

func sortByKey(idx []int, keys []uint64) {
	// Simple bottom-up merge sort on the permutation; stable and
	// allocation-light for the sizes we use.
	n := len(idx)
	buf := make([]int, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if keys[idx[i]] <= keys[idx[j]] {
					buf[k] = idx[i]
					i++
				} else {
					buf[k] = idx[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = idx[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = idx[j]
				j++
				k++
			}
		}
		copy(idx, buf)
	}
}

// Permute returns a copy of g with locations reordered so that
// out.Pts[k] = g.Pts[perm[k]].
func (g *Geom) Permute(perm []int) *Geom {
	return g.Subset(perm)
}
