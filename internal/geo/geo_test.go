package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegularGrid(t *testing.T) {
	g := RegularGrid(3, 2)
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6", g.Len())
	}
	if g.Pts[0] != (Point{0, 0}) || g.Pts[2] != (Point{1, 0}) || g.Pts[5] != (Point{1, 1}) {
		t.Errorf("unexpected corner points: %+v", g.Pts)
	}
	if g.Nx != 3 || g.Ny != 2 {
		t.Errorf("grid shape %dx%d, want 3x2", g.Nx, g.Ny)
	}
}

func TestRegularGridSinglePoint(t *testing.T) {
	g := RegularGrid(1, 1)
	if g.Pts[0] != (Point{0.5, 0.5}) {
		t.Errorf("1x1 grid should sit at the centre, got %+v", g.Pts[0])
	}
}

func TestRegularGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RegularGrid(0,3) should panic")
		}
	}()
	RegularGrid(0, 3)
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := UniformRandom(40, rng)
	for i := 0; i < g.Len(); i++ {
		for j := 0; j < g.Len(); j++ {
			dij, dji := g.Dist(i, j), g.Dist(j, i)
			if dij != dji {
				t.Fatalf("distance not symmetric at (%d,%d)", i, j)
			}
			if i == j && dij != 0 {
				t.Fatalf("self distance nonzero at %d", i)
			}
		}
	}
	// Triangle inequality on random triples.
	for k := 0; k < 200; k++ {
		a, b, c := rng.Intn(40), rng.Intn(40), rng.Intn(40)
		if g.Dist(a, c) > g.Dist(a, b)+g.Dist(b, c)+1e-12 {
			t.Fatalf("triangle inequality violated for (%d,%d,%d)", a, b, c)
		}
	}
}

func TestJitteredGridStaysDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := JitteredGrid(8, 8, 0.4, rng)
	if g.Len() != 64 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i := 0; i < g.Len(); i++ {
		for j := i + 1; j < g.Len(); j++ {
			if g.Dist(i, j) == 0 {
				t.Fatalf("points %d and %d coincide", i, j)
			}
		}
	}
}

func TestUniformRandomInUnitSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := UniformRandom(500, rng)
	for i, p := range g.Pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point %d outside unit square: %+v", i, p)
		}
	}
}

func TestRectMapsCorners(t *testing.T) {
	g := RegularGrid(2, 2).Rect(34, 56, 16, 33)
	want := []Point{{34, 16}, {56, 16}, {34, 33}, {56, 33}}
	for i, w := range want {
		if math.Abs(g.Pts[i].X-w.X) > 1e-12 || math.Abs(g.Pts[i].Y-w.Y) > 1e-12 {
			t.Errorf("corner %d = %+v, want %+v", i, g.Pts[i], w)
		}
	}
}

func TestSubsetAndPermute(t *testing.T) {
	g := RegularGrid(4, 4)
	idx := []int{5, 0, 15}
	s := g.Subset(idx)
	for k, i := range idx {
		if s.Pts[k] != g.Pts[i] {
			t.Errorf("Subset[%d] = %+v, want %+v", k, s.Pts[k], g.Pts[i])
		}
	}
	perm := make([]int, g.Len())
	for i := range perm {
		perm[i] = g.Len() - 1 - i
	}
	p := g.Permute(perm)
	if p.Pts[0] != g.Pts[g.Len()-1] {
		t.Error("Permute did not reorder")
	}
}

func TestMortonOrderIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := UniformRandom(100, rng)
		ord := g.MortonOrder()
		seen := make([]bool, 100)
		for _, i := range ord {
			if i < 0 || i >= 100 || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMortonOrderImprovesLocality(t *testing.T) {
	// Mean distance between index-neighbours should be smaller after Morton
	// ordering than under a random permutation.
	rng := rand.New(rand.NewSource(11))
	g := UniformRandom(400, rng)
	meanStep := func(idx []int) float64 {
		s := 0.0
		for k := 1; k < len(idx); k++ {
			s += g.Dist(idx[k-1], idx[k])
		}
		return s / float64(len(idx)-1)
	}
	ord := g.MortonOrder()
	randIdx := rng.Perm(g.Len())
	if m, r := meanStep(ord), meanStep(randIdx); m >= r {
		t.Errorf("Morton locality %v not better than random %v", m, r)
	}
}

func TestMortonOrderDegenerateGeometry(t *testing.T) {
	// All points identical: must still return a valid permutation.
	g := &Geom{Pts: make([]Point, 10)}
	ord := g.MortonOrder()
	if len(ord) != 10 {
		t.Fatalf("len = %d", len(ord))
	}
	seen := map[int]bool{}
	for _, i := range ord {
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Error("not a permutation")
	}
}
