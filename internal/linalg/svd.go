package linalg

import (
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// U m×k, S length k and V n×k where k = min(m,n). Singular values are sorted
// in decreasing order.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes the thin singular value decomposition of a using the
// one-sided Jacobi method (Hestenes), which is simple, robust and accurate
// for the small tile-sized matrices used by TLR compression. The input is
// not modified.
func SVD(a *Matrix) *SVDResult {
	m, n := a.Rows, a.Cols
	if m < n {
		// Work on the transpose and swap the factors back.
		r := SVD(a.Transpose())
		return &SVDResult{U: r.V, S: r.S, V: r.U}
	}
	// One-sided Jacobi: orthogonalize the columns of W = A·V by plane
	// rotations accumulated into V.
	w := a.Clone()
	v := Eye(n)
	const eps = 1e-15
	for sweep := 0; sweep < 60; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			wp := w.Col(p)
			for q := p + 1; q < n; q++ {
				wq := w.Col(q)
				alpha := Dot(wp, wp)
				beta := Dot(wq, wq)
				gamma := Dot(wp, wq)
				if gamma == 0 {
					continue
				}
				denom := math.Sqrt(alpha * beta)
				if denom == 0 || math.Abs(gamma) <= eps*denom {
					continue
				}
				off = math.Max(off, math.Abs(gamma)/denom)
				// Jacobi rotation eliminating the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1/(math.Abs(zeta)+math.Sqrt(1+zeta*zeta)), zeta)
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotate(wp, wq, c, s)
				rotate(v.Col(p), v.Col(q), c, s)
			}
		}
		if off < 1e-14 {
			break
		}
	}
	// Column norms of W are the singular values; normalized columns are U.
	s := make([]float64, n)
	u := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		s[j] = Nrm2(w.Col(j))
		uc, wc := u.Col(j), w.Col(j)
		if s[j] > 0 {
			inv := 1 / s[j]
			for i := range wc {
				uc[i] = wc[i] * inv
			}
		}
	}
	// Sort by decreasing singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	us, vs, ss := NewMatrix(m, n), NewMatrix(n, n), make([]float64, n)
	for k, j := range idx {
		copy(us.Col(k), u.Col(j))
		copy(vs.Col(k), v.Col(j))
		ss[k] = s[j]
	}
	return &SVDResult{U: us, S: ss, V: vs}
}

func rotate(x, y []float64, c, s float64) {
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi - s*yi
		y[i] = s*xi + c*yi
	}
}

// TruncationRank returns the smallest k such that the trailing singular
// values satisfy ‖S[k:]‖₂ ≤ tol·‖S‖₂, i.e. a relative Frobenius-norm
// truncation. It returns at least 1 when any singular value is nonzero.
func TruncationRank(s []float64, tol float64) int {
	total := 0.0
	for _, v := range s {
		total += v * v
	}
	if total == 0 {
		return 0
	}
	thresh := tol * tol * total
	tail := 0.0
	k := len(s)
	for k > 0 {
		v := s[k-1]
		if tail+v*v > thresh {
			break
		}
		tail += v * v
		k--
	}
	return max(k, 1)
}
