package linalg

import (
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// U m×k, S length k and V n×k where k = min(m,n). Singular values are sorted
// in decreasing order.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes the thin singular value decomposition of a using the
// one-sided Jacobi method (Hestenes), which is simple, robust and accurate
// for the small tile-sized matrices used by TLR compression. The input is
// not modified.
func SVD(a *Matrix) *SVDResult {
	m, n := a.Rows, a.Cols
	if m < n {
		// Work on the transpose and swap the factors back.
		r := SVD(a.Transpose())
		return &SVDResult{U: r.V, S: r.S, V: r.U}
	}
	w := GetMat(m, n)
	w.CopyFrom(a)
	v := GetMatZero(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	s := GetVec(n)
	JacobiSVDInPlace(w, v, s)
	// Normalize the columns of W into U and sort by decreasing singular
	// value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	us, vs, ss := NewMatrix(m, n), NewMatrix(n, n), make([]float64, n)
	for k, j := range idx {
		uc, wc := us.Col(k), w.Col(j)
		if s[j] > 0 {
			inv := 1 / s[j]
			for i := range wc {
				uc[i] = wc[i] * inv
			}
		}
		copy(vs.Col(k), v.Col(j))
		ss[k] = s[j]
	}
	PutVec(s)
	PutMat(v)
	PutMat(w)
	return &SVDResult{U: us, S: ss, V: vs}
}

// JacobiSVDInPlace computes a thin SVD of w in place by one-sided Jacobi
// (Hestenes) plane rotations: on return the columns of w are U·diag(s)
// (unsorted — column j has norm s[j]), v has accumulated the rotations (it
// must be the identity on entry; it exits as the right singular vectors),
// and s (length w.Cols) holds the singular values. This is the
// allocation-free core behind SVD and the low-rank recompression path.
func JacobiSVDInPlace(w, v *Matrix, s []float64) {
	JacobiSVDTol(w, v, s, 1e-14)
}

// JacobiSVDTol is JacobiSVDInPlace with an explicit convergence threshold on
// the largest pairwise column cosine (floored at 1e-14). Looser thresholds
// save sweeps when the factorization only needs the spectrum for a
// truncation decision: the product W·Vᵀ is exactly preserved by every
// rotation, so an early stop only blurs the singular-value estimates by
// ~offTol, never the reconstruction.
func JacobiSVDTol(w, v *Matrix, s []float64, offTol float64) {
	if offTol < 1e-14 {
		offTol = 1e-14
	}
	n := w.Cols
	const eps = 1e-15
	// Column square norms are the diagonal of the Gram matrix; caching them
	// per sweep (with the standard 2×2 eigenvalue update α−tγ / β+tγ after
	// each rotation) removes two of the three inner products per pair. The
	// refresh at each sweep stops the update recurrences from drifting.
	nrm := GetVec(n)
	for sweep := 0; sweep < 60; sweep++ {
		off := 0.0
		for j := 0; j < n; j++ {
			wc := w.Col(j)
			nrm[j] = Dot(wc, wc)
		}
		for p := 0; p < n-1; p++ {
			wp := w.Col(p)
			for q := p + 1; q < n; q++ {
				wq := w.Col(q)
				alpha, beta := nrm[p], nrm[q]
				gamma := Dot(wp, wq)
				if gamma == 0 {
					continue
				}
				denom := math.Sqrt(alpha * beta)
				if denom == 0 || math.Abs(gamma) <= eps*denom {
					continue
				}
				off = math.Max(off, math.Abs(gamma)/denom)
				// Jacobi rotation eliminating the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1/(math.Abs(zeta)+math.Sqrt(1+zeta*zeta)), zeta)
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				rotate(wp, wq, c, sn)
				rotate(v.Col(p), v.Col(q), c, sn)
				nrm[p] = alpha - t*gamma
				nrm[q] = beta + t*gamma
			}
		}
		if off < offTol {
			break
		}
	}
	PutVec(nrm)
	for j := 0; j < n; j++ {
		s[j] = Nrm2(w.Col(j))
	}
}

func rotate(x, y []float64, c, s float64) {
	if hasVectorKernels && len(x) >= vecMinLen {
		rotVec(x, y, c, s)
		return
	}
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi - s*yi
		y[i] = s*xi + c*yi
	}
}

// TruncationRank returns the smallest k such that the trailing singular
// values satisfy ‖S[k:]‖₂ ≤ tol·‖S‖₂, i.e. a relative Frobenius-norm
// truncation. It returns at least 1 when any singular value is nonzero.
func TruncationRank(s []float64, tol float64) int {
	total := 0.0
	for _, v := range s {
		total += v * v
	}
	if total == 0 {
		return 0
	}
	thresh := tol * tol * total
	tail := 0.0
	k := len(s)
	for k > 0 {
		v := s[k-1]
		if tail+v*v > thresh {
			break
		}
		tail += v * v
		k--
	}
	return max(k, 1)
}
