//go:build amd64

package linalg

import "os"

// cpuHasAVX2FMA reports whether the CPU and OS support the AVX2+FMA
// micro-kernels (implemented in kern_amd64.s).
func cpuHasAVX2FMA() bool

// dgemmKern8x6 computes the packed 8×6 double-precision register tile.
//
//go:noescape
//repro:noalloc
func dgemmKern8x6(k int, ap, bp, c *float64)

// sgemmKern16x6 computes the packed 16×6 single-precision register tile.
//
//go:noescape
//repro:noalloc
func sgemmKern16x6(k int, ap, bp, c *float32)

// ddot returns Σ x[i]·y[i] (AVX2+FMA).
//
//go:noescape
//repro:noalloc
func ddot(n int, x, y *float64) float64

// daxpy computes y += a·x (AVX2+FMA).
//
//go:noescape
//repro:noalloc
func daxpy(n int, a float64, x, y *float64)

// drot applies the plane rotation (x,y) ← (c·x−s·y, s·x+c·y) (AVX2+FMA).
//
//go:noescape
func drot(n int, x, y *float64, c, s float64)

// saxpy computes y += a·x in single precision (AVX2+FMA, 16 lanes/iter).
//
//go:noescape
//repro:noalloc
func saxpy(n int, a float32, x, y *float32)

//repro:noalloc
func dotVec(x, y []float64) float64     { return ddot(len(x), &x[0], &y[0]) }
//repro:noalloc
func axpyVec(a float64, x, y []float64) { daxpy(len(x), a, &x[0], &y[0]) }
//repro:noalloc
func axpy32Vec(a float32, x, y []float32) { saxpy(len(x), a, &x[0], &y[0]) }
func rotVec(x, y []float64, c, s float64) {
	drot(len(x), &x[0], &y[0], c, s)
}

// hasVectorKernels gates the packed blocked kernels onto the native
// micro-kernel; when false the portable Go micro-kernel is used and the
// public dispatchers prefer the historical unpacked loops. Setting
// REPRO_NOASM to any non-empty value forces the portable path even on
// vector-capable hosts (same switch internal/stats honours), keeping the
// fallback loops continuously testable.
var hasVectorKernels = cpuHasAVX2FMA() && os.Getenv("REPRO_NOASM") == ""

// microF64 runs the native 8×6 micro-kernel.
//repro:noalloc
func microF64(k int, ap, bp []float64, c *[mrReg * nrReg]float64) {
	dgemmKern8x6(k, &ap[0], &bp[0], &c[0])
}

// MicroF32 exposes the native 16×6 single-precision micro-kernel to the
// float32 tile kernels (package tile): c[i+16j] = Σ_l ap[16l+i]·bp[6l+j].
// Callers must check HasVectorKernels first.
//repro:noalloc
func MicroF32(k int, ap, bp []float32, c *[96]float32) {
	sgemmKern16x6(k, &ap[0], &bp[0], &c[0])
}
