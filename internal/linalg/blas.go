package linalg

import (
	"fmt"
	"math"
)

// vecMinLen is the slice length below which the scalar level-1 loops beat
// the vector kernels' call overhead.
const vecMinLen = 12

// Dot returns xᵀy.
//repro:noalloc
func Dot(x, y []float64) float64 {
	if hasVectorKernels && len(x) >= vecMinLen {
		return dotVec(x, y[:len(x)])
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha·x.
//repro:noalloc
func Axpy(alpha float64, x, y []float64) {
	if alpha == 0 {
		return
	}
	if hasVectorKernels && len(x) >= vecMinLen {
		axpyVec(alpha, x, y[:len(x)])
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Axpy32 computes y += alpha·x in single precision; the lane-propagation
// primitive of the f32 sweep (internal/mvn).
//repro:noalloc
func Axpy32(alpha float32, x, y []float32) {
	if alpha == 0 {
		return
	}
	if hasVectorKernels && len(x) >= vecMinLen {
		axpy32Vec(alpha, x, y[:len(x)])
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
//repro:noalloc
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns the Euclidean norm of x, overflow-guarded by the classical
// scaled-sum-of-squares recurrence. It allocates nothing.
func Nrm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Gemv computes y = alpha·op(A)·x + beta·y where op is the identity or the
// transpose.
func Gemv(transA bool, alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	rows, cols := a.Rows, a.Cols
	if transA {
		rows, cols = cols, rows
	}
	if len(x) != cols || len(y) != rows {
		panic("linalg: Gemv shape mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			for i := range y {
				y[i] = 0
			}
		} else {
			Scal(beta, y)
		}
	}
	if !transA {
		// y += alpha * A x: accumulate column-wise (stride-1 on A and y).
		for j := 0; j < a.Cols; j++ {
			Axpy(alpha*x[j], a.Col(j), y)
		}
	} else {
		// y += alpha * Aᵀ x: each y[j] is a column dot (stride-1 again).
		for j := 0; j < a.Cols; j++ {
			y[j] += alpha * Dot(a.Col(j), x)
		}
	}
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C. op(A) is m×k, op(B) is k×n,
// C is m×n. Large products run through the packed register-blocked kernel
// (see blocked.go); tiny ones through the unpacked column-oriented loops.
//repro:noalloc
func Gemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	m, k := a.Rows, a.Cols
	if transA {
		m, k = k, m
	}
	kb, n := b.Rows, b.Cols
	if transB {
		kb, n = n, kb
	}
	if k != kb || c.Rows != m || c.Cols != n {
		//repro:alloc-ok shape-mismatch panic path
		panic(fmt.Sprintf("linalg: Gemm shape mismatch: op(A)=%dx%d op(B)=%dx%d C=%dx%d", m, k, kb, n, c.Rows, c.Cols))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			for j := 0; j < n; j++ {
				Scal(beta, c.Col(j))
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	if !hasVectorKernels || m*n*k <= gemmNaiveCutoff {
		gemmNaive(transA, transB, alpha, a, b, c, m, n, k)
		return
	}
	gemmBlocked(transA, transB, alpha, a, b, c, m, n, k)
}

// gemmNaive accumulates C += alpha·op(A)·op(B) with the historical unpacked
// loops, each transpose case ordered to keep the innermost accesses at
// stride 1. It is the reference implementation the blocked kernel is tested
// against and the fast path for tiny products.
//repro:noalloc
func gemmNaive(transA, transB bool, alpha float64, a, b, c *Matrix, m, n, k int) {
	switch {
	case !transA && !transB:
		// C(:,j) += alpha * A(:,l) * B(l,j): axpy panels, all stride-1.
		for j := 0; j < n; j++ {
			cc, bc := c.Col(j), b.Col(j)
			for l := 0; l < k; l++ {
				Axpy(alpha*bc[l], a.Col(l), cc)
			}
		}
	case transA && !transB:
		// C(i,j) += alpha * dot(A(:,i), B(:,j)).
		for j := 0; j < n; j++ {
			cc, bc := c.Col(j), b.Col(j)
			for i := 0; i < m; i++ {
				cc[i] += alpha * Dot(a.Col(i)[:k], bc[:k])
			}
		}
	case !transA && transB:
		// C(:,j) += alpha * A(:,l) * B(j,l): walk B rows; A columns stride-1.
		for l := 0; l < k; l++ {
			ac, bc := a.Col(l), b.Col(l)
			for j := 0; j < n; j++ {
				if bl := bc[j]; bl != 0 {
					Axpy(alpha*bl, ac, c.Col(j))
				}
			}
		}
	default: // transA && transB
		for j := 0; j < n; j++ {
			cc := c.Col(j)
			for i := 0; i < m; i++ {
				ai := a.Col(i)
				s := 0.0
				for l := 0; l < k; l++ {
					s += ai[l] * b.At(j, l)
				}
				cc[i] += alpha * s
			}
		}
	}
}

// Syrk computes the lower triangle of C = alpha·A·Aᵀ + beta·C (trans=false)
// or C = alpha·Aᵀ·A + beta·C (trans=true). Only the lower triangle of C is
// referenced and updated, as in BLAS DSYRK with uplo='L'. Large updates run
// blockwise through the packed GEMM kernel.
func Syrk(trans bool, alpha float64, a *Matrix, beta float64, c *Matrix) {
	n, k := a.Rows, a.Cols
	if trans {
		n, k = k, n
	}
	if c.Rows != n || c.Cols != n {
		panic("linalg: Syrk shape mismatch")
	}
	if beta != 1 {
		for j := 0; j < n; j++ {
			cc := c.Col(j)
			for i := j; i < n; i++ {
				cc[i] *= beta
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	if !hasVectorKernels || n*n*k <= gemmNaiveCutoff {
		syrkNaive(trans, alpha, a, c, n, k)
		return
	}
	syrkBlocked(trans, alpha, a, c, n, k)
}

// syrkNaive is the historical unpacked SYRK, kept as the blocked kernel's
// reference and the small-size fast path.
func syrkNaive(trans bool, alpha float64, a, c *Matrix, n, k int) {
	if !trans {
		for l := 0; l < k; l++ {
			al := a.Col(l)
			for j := 0; j < n; j++ {
				if v := alpha * al[j]; v != 0 {
					cc := c.Col(j)
					for i := j; i < n; i++ {
						cc[i] += v * al[i]
					}
				}
			}
		}
	} else {
		for j := 0; j < n; j++ {
			aj := a.Col(j)[:k]
			cc := c.Col(j)
			for i := j; i < n; i++ {
				cc[i] += alpha * Dot(a.Col(i)[:k], aj)
			}
		}
	}
}

// TrsmSide selects which side of the unknown the triangular matrix is on.
type TrsmSide int

// Triangular-solve sides.
const (
	Left  TrsmSide = iota // solve op(L)·X = alpha·B
	Right                 // solve X·op(L) = alpha·B
)

// TrsmLower solves a triangular system with the lower-triangular matrix l,
// overwriting b with the solution X:
//
//	side=Left,  trans=false:  L·X = alpha·B
//	side=Left,  trans=true:   Lᵀ·X = alpha·B
//	side=Right, trans=false:  X·L = alpha·B
//	side=Right, trans=true:   X·Lᵀ = alpha·B
//
// Only the lower triangle of l is referenced. Solves larger than one block
// run the blocked right-looking algorithm whose trailing updates are level-3
// GEMMs.
func TrsmLower(side TrsmSide, trans bool, alpha float64, l, b *Matrix) {
	n := l.Rows
	if l.Cols != n {
		panic("linalg: TrsmLower needs square L")
	}
	if (side == Left && b.Rows != n) || (side == Right && b.Cols != n) {
		panic("linalg: TrsmLower shape mismatch")
	}
	if alpha != 1 {
		for j := 0; j < b.Cols; j++ {
			Scal(alpha, b.Col(j))
		}
	}
	if n == 0 || b.Rows == 0 || b.Cols == 0 {
		return
	}
	if !hasVectorKernels || n <= trsmBlockSize {
		trsmLowerUnblocked(side, trans, l, b)
		return
	}
	trsmLowerBlocked(side, trans, l, b)
}

// trsmLowerUnblocked is the historical substitution kernel, the per-block
// solve of the blocked algorithm and the reference implementation.
func trsmLowerUnblocked(side TrsmSide, trans bool, l, b *Matrix) {
	n := l.Rows
	switch {
	case side == Left && !trans:
		// Forward substitution, column-oriented over B.
		for j := 0; j < b.Cols; j++ {
			x := b.Col(j)
			for k := 0; k < n; k++ {
				x[k] /= l.At(k, k)
				if xk := x[k]; xk != 0 {
					lk := l.Col(k)
					for i := k + 1; i < n; i++ {
						x[i] -= xk * lk[i]
					}
				}
			}
		}
	case side == Left && trans:
		// Back substitution with Lᵀ (upper triangular).
		for j := 0; j < b.Cols; j++ {
			x := b.Col(j)
			for k := n - 1; k >= 0; k-- {
				lk := l.Col(k)
				s := x[k]
				for i := k + 1; i < n; i++ {
					s -= lk[i] * x[i]
				}
				x[k] = s / lk[k]
			}
		}
	case side == Right && !trans:
		// X·L = B ⇒ columns resolved right-to-left:
		// X(:,k) = (B(:,k) − Σ_{i>k} X(:,i)·L(i,k)) / L(k,k)
		for k := n - 1; k >= 0; k-- {
			lk := l.Col(k)
			xk := b.Col(k)
			for i := k + 1; i < n; i++ {
				Axpy(-lk[i], b.Col(i), xk)
			}
			Scal(1/lk[k], xk)
		}
	default: // side == Right && trans
		// X·Lᵀ = B ⇒ left-to-right:
		// X(:,k) = (B(:,k) − Σ_{i<k} X(:,i)·Lᵀ(i,k)) / L(k,k),  Lᵀ(i,k)=L(k,i)
		for k := 0; k < n; k++ {
			xk := b.Col(k)
			for i := 0; i < k; i++ {
				Axpy(-l.At(k, i), b.Col(i), xk)
			}
			Scal(1/l.At(k, k), xk)
		}
	}
}

// TrmmLowerNoTrans computes B = L·B in place for lower-triangular l.
func TrmmLowerNoTrans(l, b *Matrix) {
	n := l.Rows
	if l.Cols != n || b.Rows != n {
		panic("linalg: TrmmLowerNoTrans shape mismatch")
	}
	for j := 0; j < b.Cols; j++ {
		x := b.Col(j)
		for i := n - 1; i >= 0; i-- {
			s := 0.0
			for k := 0; k <= i; k++ {
				s += l.At(i, k) * x[k]
			}
			x[i] = s
		}
	}
}
