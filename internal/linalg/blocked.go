package linalg

// Cache-blocked, register-tiled BLAS-3 kernels in the GotoBLAS/BLIS style:
// operands are packed into contiguous panels drawn from the workspace pool,
// and the innermost computation is an mr×nr register micro-kernel (native
// AVX2+FMA on amd64, portable Go elsewhere) that amortizes every packed load
// over nr (resp. mr) fused multiply-adds. This is the layer that plays the
// role of the optimized vendor BLAS under Chameleon and HiCMA in the paper:
// the tile kernels of every factorization route through it.
//
// Panel blocking parameters. kcBlk×nrReg and mrReg×kcBlk micro-panels stream
// from L1; an mcBlk×kcBlk packed A block is meant to stay L2-resident while
// the macro-kernel sweeps the packed B panels over it.
const (
	mrReg = 8   // micro-kernel rows (register tile height, two YMM vectors)
	nrReg = 6   // micro-kernel cols (register tile width)
	kcBlk = 256 // packed panel depth
	mcBlk = 128 // packed A block rows
	ncBlk = 504 // packed B block cols (multiple of nrReg)

	// gemmNaiveCutoff routes tiny products (rank-k cores of the low-rank
	// arithmetic, boundary slivers) to the unpacked kernel, whose constant
	// factor is smaller than pack-and-micro-kernel below ~20³ flops.
	gemmNaiveCutoff = 8192
)

// HasVectorKernels reports whether the packed kernels run on the native
// vector micro-kernel (AVX2+FMA). When false, the public dispatchers keep
// the historical unpacked loops, which beat packing overhead without vector
// FMA underneath.
//repro:noalloc
func HasVectorKernels() bool { return hasVectorKernels }

// gemmBlocked computes C += alpha·op(A)·op(B) for the already-validated,
// beta-scaled destination: the five-loop packed algorithm. m, n, k are the
// logical op() dimensions.
//repro:noalloc
func gemmBlocked(transA, transB bool, alpha float64, a, b *Matrix, c *Matrix, m, n, k int) {
	apack := GetVec(mcBlk * kcBlk)
	bpack := GetVec(kcBlk * ncBlk)
	for jc := 0; jc < n; jc += ncBlk {
		nc := min(ncBlk, n-jc)
		for pc := 0; pc < k; pc += kcBlk {
			kcc := min(kcBlk, k-pc)
			packB(transB, b, bpack, pc, jc, kcc, nc)
			for ic := 0; ic < m; ic += mcBlk {
				mcc := min(mcBlk, m-ic)
				packA(transA, a, apack, ic, pc, mcc, kcc)
				for jr := 0; jr < nc; jr += nrReg {
					cols := min(nrReg, nc-jr)
					bp := bpack[jr*kcc:]
					for ir := 0; ir < mcc; ir += mrReg {
						rows := min(mrReg, mcc-ir)
						microKernel(kcc, apack[ir*kcc:], bp, c, ic+ir, jc+jr, rows, cols, alpha)
					}
				}
			}
		}
	}
	PutVec(bpack)
	PutVec(apack)
}

// packA packs the mcc×kcc block of op(A) at (ic,pc) into mrReg-row
// micro-panels: dst[panel·(mrReg·kcc) + l·mrReg + i] = op(A)[ic+ip+i, pc+l].
// Ragged bottom panels are zero-padded so the micro-kernel never branches on
// the depth loop.
//repro:noalloc
func packA(transA bool, a *Matrix, dst []float64, ic, pc, mcc, kcc int) {
	for ip := 0; ip < mcc; ip += mrReg {
		rows := min(mrReg, mcc-ip)
		panel := dst[ip*kcc : ip*kcc+mrReg*kcc]
		if !transA {
			if rows == mrReg {
				for l := 0; l < kcc; l++ {
					src := a.Col(pc + l)[ic+ip:]
					copy(panel[l*mrReg:l*mrReg+mrReg], src[:mrReg])
				}
			} else {
				for l := 0; l < kcc; l++ {
					src := a.Col(pc + l)[ic+ip:]
					o := l * mrReg
					for i := 0; i < rows; i++ {
						panel[o+i] = src[i]
					}
					for i := rows; i < mrReg; i++ {
						panel[o+i] = 0
					}
				}
			}
		} else {
			// op(A)[i,l] = A[l,i]: each micro-panel row i streams column
			// ic+ip+i of A, stride 1 along l.
			for i := 0; i < rows; i++ {
				src := a.Col(ic + ip + i)[pc:]
				for l := 0; l < kcc; l++ {
					panel[l*mrReg+i] = src[l]
				}
			}
			for i := rows; i < mrReg; i++ {
				for l := 0; l < kcc; l++ {
					panel[l*mrReg+i] = 0
				}
			}
		}
	}
}

// packB packs the kcc×nc block of op(B) at (pc,jc) into nrReg-column
// micro-panels: dst[panel·(nrReg·kcc) + l·nrReg + j] = op(B)[pc+l, jc+jp+j],
// zero-padding ragged right panels.
//repro:noalloc
func packB(transB bool, b *Matrix, dst []float64, pc, jc, kcc, nc int) {
	for jp := 0; jp < nc; jp += nrReg {
		cols := min(nrReg, nc-jp)
		panel := dst[jp*kcc : jp*kcc+nrReg*kcc]
		if !transB {
			for j := 0; j < cols; j++ {
				src := b.Col(jc + jp + j)[pc:]
				for l := 0; l < kcc; l++ {
					panel[l*nrReg+j] = src[l]
				}
			}
			for j := cols; j < nrReg; j++ {
				for l := 0; l < kcc; l++ {
					panel[l*nrReg+j] = 0
				}
			}
		} else {
			// op(B)[l,j] = B[j,l]: row slice of B's column pc+l, stride 1
			// along j.
			for l := 0; l < kcc; l++ {
				src := b.Col(pc + l)[jc+jp:]
				o := l * nrReg
				for j := 0; j < cols; j++ {
					panel[o+j] = src[j]
				}
				for j := cols; j < nrReg; j++ {
					panel[o+j] = 0
				}
			}
		}
	}
}

// microKernel computes the mrReg×nrReg register tile over the packed
// micro-panels into stack scratch, then accumulates
// C[i0:i0+rows, j0:j0+cols] += alpha·tile. rows/cols mask the write-back at
// ragged edges (the packed operands are zero-padded there).
//repro:noalloc
func microKernel(kcc int, ap, bp []float64, c *Matrix, i0, j0, rows, cols int, alpha float64) {
	var acc [mrReg * nrReg]float64
	if hasVectorKernels {
		microF64(kcc, ap, bp, &acc)
	} else {
		microF64Go(kcc, ap, bp, &acc)
	}
	if rows == mrReg {
		for j := 0; j < cols; j++ {
			cc := c.Col(j0 + j)[i0 : i0+mrReg]
			t := acc[j*mrReg : j*mrReg+mrReg]
			for i := 0; i < mrReg; i++ {
				cc[i] += alpha * t[i]
			}
		}
		return
	}
	for j := 0; j < cols; j++ {
		cc := c.Col(j0 + j)[i0:]
		t := acc[j*mrReg:]
		for i := 0; i < rows; i++ {
			cc[i] += alpha * t[i]
		}
	}
}

// microF64Go is the portable micro-kernel: same packed contract as the
// native one, two-row register tiles to stay within scalar registers.
//repro:noalloc
func microF64Go(kcc int, ap, bp []float64, acc *[mrReg * nrReg]float64) {
	for i := 0; i < mrReg; i += 2 {
		var c00, c01, c02, c03, c04, c05 float64
		var c10, c11, c12, c13, c14, c15 float64
		for l := 0; l < kcc; l++ {
			a0, a1 := ap[l*mrReg+i], ap[l*mrReg+i+1]
			ob := l * nrReg
			b0, b1, b2 := bp[ob], bp[ob+1], bp[ob+2]
			b3, b4, b5 := bp[ob+3], bp[ob+4], bp[ob+5]
			c00 += a0 * b0
			c10 += a1 * b0
			c01 += a0 * b1
			c11 += a1 * b1
			c02 += a0 * b2
			c12 += a1 * b2
			c03 += a0 * b3
			c13 += a1 * b3
			c04 += a0 * b4
			c14 += a1 * b4
			c05 += a0 * b5
			c15 += a1 * b5
		}
		acc[0*mrReg+i], acc[0*mrReg+i+1] = c00, c10
		acc[1*mrReg+i], acc[1*mrReg+i+1] = c01, c11
		acc[2*mrReg+i], acc[2*mrReg+i+1] = c02, c12
		acc[3*mrReg+i], acc[3*mrReg+i+1] = c03, c13
		acc[4*mrReg+i], acc[4*mrReg+i+1] = c04, c14
		acc[5*mrReg+i], acc[5*mrReg+i+1] = c05, c15
	}
}

// syrkBlockSize partitions SYRK destinations: off-diagonal blocks go through
// the full blocked GEMM, diagonal blocks through a scratch product.
const syrkBlockSize = 64

// syrkBlocked computes the lower triangle of C += alpha·op(A)·op(A)ᵀ for the
// already beta-scaled destination, n the order of C and k the contraction
// depth. Off-diagonal blocks are plain blocked GEMMs; a diagonal block is
// formed fully into pooled scratch (its strict upper half is redundant work,
// bounded by the block size) and its lower triangle accumulated.
func syrkBlocked(trans bool, alpha float64, a *Matrix, c *Matrix, n, k int) {
	opView := func(i0, rows int) *Matrix {
		if trans {
			return a.View(0, i0, k, rows)
		}
		return a.View(i0, 0, rows, k)
	}
	ta, tb := false, true // op(A_I)·op(A_J)ᵀ = A_I·A_Jᵀ
	if trans {
		ta, tb = true, false // … = A_Iᵀ·A_J
	}
	for jb := 0; jb < n; jb += syrkBlockSize {
		jn := min(syrkBlockSize, n-jb)
		aj := opView(jb, jn)
		// Diagonal block: full product into scratch, fold in the triangle.
		s := GetMat(jn, jn)
		gemmAny(ta, tb, alpha, aj, aj, s, jn, jn, k, true)
		cv := c.View(jb, jb, jn, jn)
		for j := 0; j < jn; j++ {
			sc, cc := s.Col(j), cv.Col(j)
			for i := j; i < jn; i++ {
				cc[i] += sc[i]
			}
		}
		PutMat(s)
		for ib := jb + jn; ib < n; ib += syrkBlockSize {
			in := min(syrkBlockSize, n-ib)
			gemmAny(ta, tb, alpha, opView(ib, in), aj, c.View(ib, jb, in, jn), in, jn, k, false)
		}
	}
}

// gemmAny routes a validated C += alpha·op(A)·op(B) (or = when zero is set)
// to the packed or naive kernel by problem volume and kernel availability.
func gemmAny(transA, transB bool, alpha float64, a, b, c *Matrix, m, n, k int, zero bool) {
	if zero {
		c.Zero()
	}
	if alpha == 0 || k == 0 || m == 0 || n == 0 {
		return
	}
	if !hasVectorKernels || m*n*k <= gemmNaiveCutoff {
		gemmNaive(transA, transB, alpha, a, b, c, m, n, k)
		return
	}
	gemmBlocked(transA, transB, alpha, a, b, c, m, n, k)
}

// trsmBlockSize partitions blocked triangular solves; diagonal blocks run
// the unblocked substitution, off-diagonal updates are blocked GEMMs.
const trsmBlockSize = 32

// trsmLowerBlocked solves the four lower-triangular variants blockwise,
// right-looking: each diagonal block is an unblocked substitution, and the
// bulk of the work — the trailing updates — becomes level-3 GEMM calls.
func trsmLowerBlocked(side TrsmSide, trans bool, l, b *Matrix) {
	n := l.Rows
	nb := trsmBlockSize
	switch {
	case side == Left && !trans:
		// L·X = B, forward: after solving block K, eliminate it from the
		// rows below.
		for kb := 0; kb < n; kb += nb {
			kn := min(nb, n-kb)
			xk := b.View(kb, 0, kn, b.Cols)
			trsmLowerUnblocked(Left, false, l.View(kb, kb, kn, kn), xk)
			if rem := n - kb - kn; rem > 0 {
				gemmAny(false, false, -1, l.View(kb+kn, kb, rem, kn), xk,
					b.View(kb+kn, 0, rem, b.Cols), rem, b.Cols, kn, false)
			}
		}
	case side == Left && trans:
		// Lᵀ·X = B, backward: block K depends on the blocks below it.
		for kb := ((n - 1) / nb) * nb; kb >= 0; kb -= nb {
			kn := min(nb, n-kb)
			xk := b.View(kb, 0, kn, b.Cols)
			if rem := n - kb - kn; rem > 0 {
				gemmAny(true, false, -1, l.View(kb+kn, kb, rem, kn),
					b.View(kb+kn, 0, rem, b.Cols), xk, kn, b.Cols, rem, false)
			}
			trsmLowerUnblocked(Left, true, l.View(kb, kb, kn, kn), xk)
		}
	case side == Right && !trans:
		// X·L = B: block column J depends on the columns right of it.
		for jb := ((n - 1) / nb) * nb; jb >= 0; jb -= nb {
			jn := min(nb, n-jb)
			xj := b.View(0, jb, b.Rows, jn)
			if rem := n - jb - jn; rem > 0 {
				gemmAny(false, false, -1, b.View(0, jb+jn, b.Rows, rem),
					l.View(jb+jn, jb, rem, jn), xj, b.Rows, jn, rem, false)
			}
			trsmLowerUnblocked(Right, false, l.View(jb, jb, jn, jn), xj)
		}
	default: // side == Right && trans
		// X·Lᵀ = B: block column J depends on the columns left of it;
		// right-looking, eliminate X_J from the columns to its right.
		for jb := 0; jb < n; jb += nb {
			jn := min(nb, n-jb)
			xj := b.View(0, jb, b.Rows, jn)
			trsmLowerUnblocked(Right, true, l.View(jb, jb, jn, jn), xj)
			if rem := n - jb - jn; rem > 0 {
				gemmAny(false, true, -1, xj, l.View(jb+jn, jb, rem, jn),
					b.View(0, jb+jn, b.Rows, rem), b.Rows, rem, jn, false)
			}
		}
	}
}
