package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkSVD(t *testing.T, a *Matrix) {
	t.Helper()
	res := SVD(a)
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if res.U.Rows != m || res.U.Cols != k || len(res.S) != k || res.V.Rows != n || res.V.Cols != k {
		t.Fatalf("SVD shapes wrong: U %dx%d S %d V %dx%d", res.U.Rows, res.U.Cols, len(res.S), res.V.Rows, res.V.Cols)
	}
	// Reconstruction.
	us := res.U.Clone()
	for j := 0; j < k; j++ {
		Scal(res.S[j], us.Col(j))
	}
	rec := NewMatrix(m, n)
	Gemm(false, true, 1, us, res.V, 0, rec)
	scale := math.Max(1, a.FrobNorm())
	if d := rec.MaxAbsDiff(a); d > 1e-10*scale {
		t.Errorf("SVD reconstruction diff %v", d)
	}
	// Orthonormality of U and V.
	utu := NewMatrix(k, k)
	Gemm(true, false, 1, res.U, res.U, 0, utu)
	vtv := NewMatrix(k, k)
	Gemm(true, false, 1, res.V, res.V, 0, vtv)
	for j := 0; j < k; j++ {
		if res.S[j] == 0 {
			continue // zero singular columns may be unnormalized
		}
		for i := 0; i < k; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if res.S[i] == 0 {
				continue
			}
			if math.Abs(utu.At(i, j)-want) > 1e-10 {
				t.Fatalf("UᵀU(%d,%d) = %v", i, j, utu.At(i, j))
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-10 {
				t.Fatalf("VᵀV(%d,%d) = %v", i, j, vtv.At(i, j))
			}
		}
	}
	// Decreasing order.
	for j := 1; j < k; j++ {
		if res.S[j] > res.S[j-1]+1e-14 {
			t.Fatalf("singular values not sorted: %v", res.S)
		}
	}
}

func TestSVDRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, sh := range [][2]int{{1, 1}, {3, 3}, {8, 5}, {5, 8}, {20, 20}, {32, 7}} {
		checkSVD(t, randMatrix(sh[0], sh[1], rng))
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -5) // sign goes into the vectors
	a.Set(2, 2, 1)
	res := SVD(a)
	want := []float64{5, 3, 1}
	for i, w := range want {
		if math.Abs(res.S[i]-w) > 1e-12 {
			t.Errorf("S[%d] = %v, want %v", i, res.S[i], w)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: exactly one nonzero singular value.
	rng := rand.New(rand.NewSource(31))
	u := randMatrix(6, 1, rng)
	v := randMatrix(4, 1, rng)
	a := NewMatrix(6, 4)
	Gemm(false, true, 1, u, v, 0, a)
	res := SVD(a)
	if res.S[0] < 1e-10 {
		t.Fatal("leading singular value vanished")
	}
	for j := 1; j < len(res.S); j++ {
		if res.S[j] > 1e-10*res.S[0] {
			t.Errorf("rank-1 matrix has S[%d]=%v", j, res.S[j])
		}
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	res := SVD(NewMatrix(4, 3))
	for _, s := range res.S {
		if s != 0 {
			t.Errorf("zero matrix should have zero singular values, got %v", res.S)
		}
	}
}

func TestSVDSingularValuesMatchEigen(t *testing.T) {
	// For SPD A, singular values equal eigenvalues; check trace identities:
	// Σσ_i = tr(A) and Σσ_i² = ‖A‖_F².
	rng := rand.New(rand.NewSource(32))
	a := randSPD(10, rng)
	a.SymmetrizeFromLower()
	res := SVD(a)
	tr, sum, sum2 := 0.0, 0.0, 0.0
	for i := 0; i < 10; i++ {
		tr += a.At(i, i)
	}
	for _, s := range res.S {
		sum += s
		sum2 += s * s
	}
	if math.Abs(tr-sum) > 1e-8*tr {
		t.Errorf("Σσ=%v but tr=%v", sum, tr)
	}
	f := a.FrobNorm()
	if math.Abs(sum2-f*f) > 1e-8*f*f {
		t.Errorf("Σσ²=%v but ‖A‖²=%v", sum2, f*f)
	}
}

func TestTruncationRank(t *testing.T) {
	s := []float64{10, 1, 0.1, 0.01, 0.001}
	if k := TruncationRank(s, 0); k != 5 {
		t.Errorf("tol=0 rank %d, want 5", k)
	}
	if k := TruncationRank(s, 1); k != 1 {
		t.Errorf("tol=1 rank %d, want 1", k)
	}
	// tol=1e-3: tail norm must satisfy ‖S[k:]‖ ≤ tol·‖S‖ ≈ 0.01005.
	if k := TruncationRank(s, 1e-3); k != 3 {
		t.Errorf("tol=1e-3 rank %d, want 3", k)
	}
	if k := TruncationRank([]float64{0, 0}, 1e-3); k != 0 {
		t.Errorf("zero spectrum rank %d, want 0", k)
	}
}

func TestTruncationRankProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		s := make([]float64, n)
		v := math.Abs(rng.NormFloat64()) + 1
		for i := range s {
			s[i] = v
			v *= rng.Float64()
		}
		tol := math.Pow(10, -1-6*rng.Float64())
		k := TruncationRank(s, tol)
		if k < 1 || k > n {
			return false
		}
		// Verify the defining property.
		total, tail := 0.0, 0.0
		for _, x := range s {
			total += x * x
		}
		for i := k; i < n; i++ {
			tail += s[i] * s[i]
		}
		if tail > tol*tol*total*(1+1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, sh := range [][2]int{{5, 5}, {8, 3}, {3, 8}, {1, 1}, {20, 6}} {
		a := randMatrix(sh[0], sh[1], rng)
		f := QR(a)
		q, r := f.ThinQ(), f.R()
		rec := NewMatrix(a.Rows, a.Cols)
		Gemm(false, false, 1, q, r, 0, rec)
		if d := rec.MaxAbsDiff(a); d > 1e-12*math.Max(1, a.FrobNorm()) {
			t.Errorf("QR %v reconstruction diff %v", sh, d)
		}
		// Orthonormal Q.
		k := min(sh[0], sh[1])
		qtq := NewMatrix(k, k)
		Gemm(true, false, 1, q, q, 0, qtq)
		if d := qtq.MaxAbsDiff(Eye(k)); d > 1e-12 {
			t.Errorf("QR %v: QᵀQ−I = %v", sh, d)
		}
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	r := QR(randMatrix(7, 4, rng)).R()
	for j := 0; j < r.Cols; j++ {
		for i := j + 1; i < r.Rows; i++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v, want 0", i, j, r.At(i, j))
			}
		}
	}
}

func TestApplyQMatchesThinQ(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, sh := range [][2]int{{10, 4}, {6, 6}, {12, 2}} {
		f := QR(randMatrix(sh[0], sh[1], rng))
		k := min(sh[0], sh[1])
		x := randMatrix(k, 3, rng)
		want := NewMatrix(sh[0], 3)
		Gemm(false, false, 1, f.ThinQ(), x, 0, want)
		got := f.ApplyQ(x)
		if d := got.MaxAbsDiff(want); d > 1e-12 {
			t.Errorf("shape %v: ApplyQ vs ThinQ diff %v", sh, d)
		}
	}
}

func TestApplyQPanicsOnWrongRows(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	f := QR(randMatrix(8, 3, rng))
	defer func() {
		if recover() == nil {
			t.Error("ApplyQ with wrong row count should panic")
		}
	}()
	f.ApplyQ(NewMatrix(5, 2))
}

func TestQRZeroColumn(t *testing.T) {
	a := NewMatrix(4, 2)
	a.Set(0, 1, 1) // first column all zero
	f := QR(a)
	q, r := f.ThinQ(), f.R()
	rec := NewMatrix(4, 2)
	Gemm(false, false, 1, q, r, 0, rec)
	if d := rec.MaxAbsDiff(a); d > 1e-13 {
		t.Errorf("QR with zero column: diff %v", d)
	}
}
