// Package linalg is the dense linear-algebra substrate: a column-major
// matrix type with shared-backing views, the BLAS-3 kernels the tiled
// algorithms are built from (GEMM, SYRK, TRSM), Cholesky factorization,
// Householder QR and a one-sided Jacobi SVD. It plays the role Intel MKL and
// the Chameleon kernels play in the paper.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense column-major matrix: element (i,j) lives at
// Data[i + j*Stride]. A Matrix may be a view into a larger allocation, which
// is how tiles address their part of a tiled matrix without copying.
type Matrix struct {
	Rows, Cols int
	Stride     int // distance between consecutive columns; Stride ≥ Rows
	Data       []float64
}

// NewMatrix returns a zeroed r×c matrix with a fresh backing slice.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: max(r, 1), Data: make([]float64, r*c)}
}

// FromColMajor wraps an existing column-major slice (no copy).
func FromColMajor(r, c int, data []float64) *Matrix {
	if len(data) < r*c {
		panic("linalg: slice too short for dimensions")
	}
	return &Matrix{Rows: r, Cols: c, Stride: max(r, 1), Data: data}
}

// At returns element (i,j).
//repro:noalloc
func (m *Matrix) At(i, j int) float64 { return m.Data[i+j*m.Stride] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i+j*m.Stride] = v }

// Add increments element (i,j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i+j*m.Stride] += v }

// Col returns column j as a length-Rows slice sharing the backing array.
//repro:noalloc
func (m *Matrix) Col(j int) []float64 {
	if m.Rows == 0 {
		// A 0×c matrix has Stride 1 but no storage behind it.
		return nil
	}
	off := j * m.Stride
	return m.Data[off : off+m.Rows]
}

// View returns the r×c submatrix with upper-left corner (i,j), sharing
// backing storage with m.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("linalg: view (%d,%d,%d,%d) out of %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i+j*m.Stride:]}
}

// Clone returns a compact deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		copy(out.Col(j), m.Col(j))
	}
	return out
}

// CopyFrom copies src (same shape) into m.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom shape mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero clears every element.
//repro:noalloc
func (m *Matrix) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = v
		}
	}
}

// Eye returns the n×n identity.
func Eye(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Transpose returns a compact copy of mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := 0; i < m.Rows; i++ {
			out.Set(j, i, col[i])
		}
	}
	return out
}

// MaxAbsDiff returns max |m−b| over all elements; shapes must match.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: MaxAbsDiff shape mismatch")
	}
	d := 0.0
	for j := 0; j < m.Cols; j++ {
		mc, bc := m.Col(j), b.Col(j)
		for i := range mc {
			d = math.Max(d, math.Abs(mc[i]-bc[i]))
		}
	}
	return d
}

// FrobNorm returns the Frobenius norm, guarded against overflow by scaling.
func (m *Matrix) FrobNorm() float64 {
	scale, ssq := 0.0, 1.0
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// LowerFromFull zeroes the strict upper triangle in place (keeps the lower
// triangle including the diagonal), turning a symmetric matrix buffer into
// an explicit lower-triangular factor.
func (m *Matrix) LowerFromFull() {
	for j := 1; j < m.Cols; j++ {
		col := m.Col(j)
		for i := 0; i < min(j, m.Rows); i++ {
			col[i] = 0
		}
	}
}

// SymmetrizeFromLower mirrors the lower triangle into the upper triangle.
func (m *Matrix) SymmetrizeFromLower() {
	n := min(m.Rows, m.Cols)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			m.Set(j, i, m.At(i, j))
		}
	}
}
