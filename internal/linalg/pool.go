package linalg

import (
	"fmt"
	"math/bits"
	"sync"
)

// The workspace pool recycles float64 scratch buffers across the hot kernel
// paths: GEMM packing panels, low-rank recompression intermediates, QR tau
// vectors, SVD work matrices. Buffers are segregated into power-of-two size
// classes — a single mixed pool thrashes under the factorization's blend of
// tile-sized, panel-sized and rank-sized requests (a small buffer popped for
// a large request is dropped and reallocated), and that churn is what drove
// the streamed factorization's peak heap. Within a class, sync.Pool's per-P
// caches make this an effectively per-worker workspace: a worker churning
// through factorization or recompression tasks reuses its own buffers
// instead of allocating on every task, which is what keeps the steady-state
// hot loops allocation-free.
var vecPools [vecClasses]sync.Pool // class c holds *[]float64 with cap ≥ 1<<c

// vecClasses bounds the size classes at 2^30 floats (8 GiB); larger requests
// are never sensible scratch.
const vecClasses = 31

// boxPool recycles the empty *[]float64 header boxes themselves, so the
// Get/Put cycle allocates nothing at steady state (a bare
// sync.Pool.Put(&v) would heap-allocate the box on every call).
var boxPool = sync.Pool{New: func() any { return new([]float64) }}

// vecClass returns the smallest class whose buffers hold n floats.
func vecClass(n int) int { return bits.Len(uint(n - 1)) }

// GetVec returns a pooled float64 slice of length n with UNDEFINED contents;
// the caller's first operation must fully overwrite it. Return it with
// PutVec when no longer referenced.
func GetVec(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := vecClass(n)
	if c < vecClasses {
		if p, _ := vecPools[c].Get().(*[]float64); p != nil {
			buf := *p
			*p = nil
			boxPool.Put(p)
			return buf[:n]
		}
	}
	return make([]float64, 1<<c)[:n]
}

// PutVec recycles a slice obtained from GetVec (or any slice whose backing
// array the caller owns outright — never a view into shared storage). The
// buffer is filed under the largest class its capacity fully covers, so a
// later Get from that class always fits.
func PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	c := bits.Len(uint(cap(v))) - 1 // floor log2
	if c >= vecClasses {
		c = vecClasses - 1
	}
	p := boxPool.Get().(*[]float64)
	*p = v[:cap(v)]
	vecPools[c].Put(p)
}

// GetVecZero returns a pooled zeroed slice of length n.
func GetVecZero(n int) []float64 {
	v := GetVec(n)
	for i := range v {
		v[i] = 0
	}
	return v
}

// matHeaderPool recycles the *Matrix headers themselves so a pooled
// Get/Put cycle is completely allocation-free.
var matHeaderPool = sync.Pool{New: func() any { return new(Matrix) }}

// GetMat returns a pooled r×c matrix whose contents are UNDEFINED: every
// caller's first operation must fully overwrite it (a beta=0 Gemm does —
// Gemm zeroes the destination first). Hand it back with PutMat once nothing
// references it.
func GetMat(r, c int) *Matrix {
	m := matHeaderPool.Get().(*Matrix)
	m.Rows, m.Cols, m.Stride, m.Data = r, c, max(r, 1), GetVec(r*c)
	return m
}

// GetMatZero returns a pooled zeroed r×c matrix.
func GetMatZero(r, c int) *Matrix {
	m := matHeaderPool.Get().(*Matrix)
	m.Rows, m.Cols, m.Stride, m.Data = r, c, max(r, 1), GetVecZero(r*c)
	return m
}

// PutMat recycles a matrix obtained from GetMat/GetMatZero, or any compact
// matrix (Stride == max(Rows,1)) whose backing slice the caller owns
// outright. It must NEVER be called on a view into a larger allocation —
// recycling a view's backing array while the parent is alive would hand the
// same memory to two owners — and the caller must drop its pointer: the
// header itself is recycled too. A nil matrix is ignored.
func PutMat(m *Matrix) {
	if m == nil {
		return
	}
	PutVec(m.Data)
	m.Data = nil
	matHeaderPool.Put(m)
}

// GetMatView returns a pooled Matrix header for the r×c submatrix of parent
// with upper-left corner (i,j), sharing parent's backing storage — View
// without the header allocation. Return it with PutMatView (never PutMat:
// the data belongs to the parent).
func GetMatView(parent *Matrix, i, j, r, c int) *Matrix {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > parent.Rows || j+c > parent.Cols {
		panic(fmt.Sprintf("linalg: view (%d,%d,%d,%d) out of %dx%d", i, j, r, c, parent.Rows, parent.Cols))
	}
	m := matHeaderPool.Get().(*Matrix)
	m.Rows, m.Cols, m.Stride, m.Data = r, c, parent.Stride, parent.Data[i+j*parent.Stride:]
	return m
}

// PutMatView recycles a header obtained from GetMatView. The shared backing
// data is left with its owner; the caller must drop its pointer.
func PutMatView(m *Matrix) {
	if m == nil {
		return
	}
	m.Data = nil
	matHeaderPool.Put(m)
}

// intPool recycles []int index scratch (sort permutations of the small-core
// SVDs), same box discipline as the float pool.
var intPool sync.Pool

var intBoxPool = sync.Pool{New: func() any { return new([]int) }}

// GetInts returns a pooled int slice of length n with UNDEFINED contents.
func GetInts(n int) []int {
	var buf []int
	if p, _ := intPool.Get().(*[]int); p != nil {
		buf = *p
		*p = nil
		intBoxPool.Put(p)
	}
	if cap(buf) < n {
		buf = make([]int, roundUpPow2(n))
	}
	return buf[:n]
}

// PutInts recycles a slice obtained from GetInts.
func PutInts(v []int) {
	if cap(v) == 0 {
		return
	}
	p := intBoxPool.Get().(*[]int)
	*p = v[:cap(v)]
	intPool.Put(p)
}

func roundUpPow2(n int) int {
	if n <= 0 {
		return 0
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
