package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// gkReconstruct forms U·diag(s)·Vᵀ from a GolubReinschSVD result.
func gkReconstruct(u *Matrix, s []float64, v *Matrix) *Matrix {
	us := u.Clone()
	for j := 0; j < us.Cols; j++ {
		Scal(s[j], us.Col(j))
	}
	out := NewMatrix(u.Rows, v.Rows)
	Gemm(false, true, 1, us, v, 0, out)
	return out
}

// TestGolubReinschSVD pins the shifted-QR SVD against reconstruction,
// orthogonality and the Jacobi singular values across shapes, including
// rank-deficient and near-degenerate spectra.
func TestGolubReinschSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	shapes := []struct{ m, n int }{
		{1, 1}, {4, 4}, {5, 3}, {17, 17}, {40, 40}, {64, 33}, {90, 48}, {128, 7},
	}
	for _, sh := range shapes {
		a := NewMatrix(sh.m, sh.n)
		for j := 0; j < sh.n; j++ {
			col := a.Col(j)
			scale := math.Pow(10, -6*float64(j)/float64(sh.n)) // decaying spectrum
			for i := range col {
				col[i] = scale * rng.NormFloat64()
			}
		}
		u := a.Clone()
		v := NewMatrix(sh.n, sh.n)
		s := make([]float64, sh.n)
		if !GolubReinschSVD(u, v, s) {
			t.Fatalf("m=%d n=%d: did not converge", sh.m, sh.n)
		}
		norm := math.Max(a.FrobNorm(), 1e-300)
		// Reconstruction.
		if d := gkReconstruct(u, s, v).MaxAbsDiff(a) / norm; d > 1e-12 {
			t.Errorf("m=%d n=%d: reconstruction error %g", sh.m, sh.n, d)
		}
		// Orthogonality of U and V.
		for _, f := range []*Matrix{u, v} {
			g := NewMatrix(f.Cols, f.Cols)
			Gemm(true, false, 1, f, f, 0, g)
			for j := 0; j < f.Cols; j++ {
				g.Add(j, j, -1)
			}
			if d := g.FrobNorm(); d > 1e-12*float64(f.Cols) {
				t.Errorf("m=%d n=%d: factor not orthonormal (dev %g)", sh.m, sh.n, d)
			}
		}
		// Non-negative singular values matching Jacobi's (sorted).
		ref := SVD(a)
		got := append([]float64(nil), s...)
		sortDesc(got)
		for i := range got {
			if got[i] < 0 {
				t.Fatalf("negative singular value %g", got[i])
			}
			if math.Abs(got[i]-ref.S[i]) > 1e-10*math.Max(ref.S[0], 1e-300) {
				t.Errorf("m=%d n=%d: s[%d]=%g, Jacobi %g", sh.m, sh.n, i, got[i], ref.S[i])
			}
		}
	}
	// Exact-zero and rank-one inputs.
	z := NewMatrix(6, 4)
	u := z.Clone()
	v := NewMatrix(4, 4)
	s := make([]float64, 4)
	if !GolubReinschSVD(u, v, s) {
		t.Fatal("zero matrix did not converge")
	}
	for _, si := range s {
		if si != 0 {
			t.Errorf("zero matrix singular value %g", si)
		}
	}
	r1 := NewMatrix(8, 5)
	for j := 0; j < 5; j++ {
		for i := 0; i < 8; i++ {
			r1.Set(i, j, float64(i+1)*float64(j+1))
		}
	}
	u = r1.Clone()
	v = NewMatrix(5, 5)
	s = make([]float64, 5)
	if !GolubReinschSVD(u, v, s) {
		t.Fatal("rank-one matrix did not converge")
	}
	if d := gkReconstruct(u, s, v).MaxAbsDiff(r1); d > 1e-12*r1.FrobNorm() {
		t.Errorf("rank-one reconstruction error %g", d)
	}
}

func sortDesc(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j-1] < x[j]; j-- {
			x[j-1], x[j] = x[j], x[j-1]
		}
	}
}
