package linalg

import "math"

// GolubReinschSVD computes the thin SVD A = U·diag(s)·Vᵀ of a (m×n, m ≥ n)
// by the classical Golub–Reinsch algorithm: Householder bidiagonalization
// followed by implicit-shift QR iteration on the bidiagonal form, the same
// scheme LAPACK's dbdsqr-based solvers use. On return a is overwritten with
// U (m×n, orthonormal columns), v (n×n, must be provided) holds V, and s
// (length n) the singular values — non-negative but UNSORTED. It reports
// false if the QR iteration failed to converge (callers fall back to the
// slower one-sided Jacobi, which cannot fail).
//
// Compared with Jacobi — O(sweeps·n²) length-m inner products that resist
// convergence acceleration — the shifted QR iteration deflates one singular
// value every couple of iterations, each costing O(n) plane rotations
// applied with the level-1 vector kernels. For the tile-core sizes the
// low-rank rounding path produces, it is several times faster at equal
// accuracy, which is what lets TLR recompression keep up with the packed
// dense kernels.
func GolubReinschSVD(a, v *Matrix, s []float64) bool {
	m, n := a.Rows, a.Cols
	if m < n || v.Rows != n || v.Cols != n || len(s) != n {
		panic("linalg: GolubReinschSVD shape mismatch")
	}
	if n == 0 {
		return true
	}
	rv1 := GetVec(n)
	defer PutVec(rv1)
	// rbuf gathers one row of a at a time so the right-reflector passes run
	// stride-1; sums carries the per-row inner products so the trailing
	// update is column-oriented Axpys instead of stride-n row walks.
	rbuf := GetVec(n)
	defer PutVec(rbuf)
	sums := GetVec(m)
	defer PutVec(sums)
	var g, scale, anorm float64

	// Householder reduction to bidiagonal form.
	for i := 0; i < n; i++ {
		l := i + 1
		rv1[i] = scale * g
		g, scale = 0, 0
		if i < m {
			ci := a.Col(i)
			for k := i; k < m; k++ {
				scale += math.Abs(ci[k])
			}
			if scale != 0 {
				ssum := 0.0
				for k := i; k < m; k++ {
					ci[k] /= scale
					ssum += ci[k] * ci[k]
				}
				f := ci[i]
				g = -math.Copysign(math.Sqrt(ssum), f)
				h := f*g - ssum
				ci[i] = f - g
				for j := l; j < n; j++ {
					cj := a.Col(j)
					sum := Dot(ci[i:m], cj[i:m])
					Axpy(sum/h, ci[i:m], cj[i:m])
				}
				for k := i; k < m; k++ {
					ci[k] *= scale
				}
			}
		}
		s[i] = scale * g
		g, scale = 0, 0
		if i < m && i != n-1 {
			for k := l; k < n; k++ {
				rbuf[k] = a.At(i, k)
				scale += math.Abs(rbuf[k])
			}
			if scale != 0 {
				ssum := 0.0
				for k := l; k < n; k++ {
					rbuf[k] /= scale
					ssum += rbuf[k] * rbuf[k]
				}
				f := rbuf[l]
				g = -math.Copysign(math.Sqrt(ssum), f)
				h := f*g - ssum
				rbuf[l] = f - g
				for k := l; k < n; k++ {
					rv1[k] = rbuf[k] / h
				}
				// Trailing rows l..m: sums = A[l:m, l:n]·row, then
				// A[:, k] += rv1[k]·sums — all stride-1 on columns.
				for j := l; j < m; j++ {
					sums[j] = 0
				}
				for k := l; k < n; k++ {
					Axpy(rbuf[k], a.Col(k)[l:m], sums[l:m])
				}
				for k := l; k < n; k++ {
					Axpy(rv1[k], sums[l:m], a.Col(k)[l:m])
				}
				for k := l; k < n; k++ {
					a.Set(i, k, rbuf[k]*scale)
				}
			}
		}
		anorm = math.Max(anorm, math.Abs(s[i])+math.Abs(rv1[i]))
	}

	// Accumulate the right-hand transformations into v.
	for i := n - 1; i >= 0; i-- {
		l := i + 1
		if i < n-1 {
			if g != 0 {
				for k := l; k < n; k++ {
					rbuf[k] = a.At(i, k)
				}
				denom := rbuf[l] * g
				vi := v.Col(i)
				for j := l; j < n; j++ {
					vi[j] = rbuf[j] / denom
				}
				for j := l; j < n; j++ {
					vj := v.Col(j)
					sum := Dot(rbuf[l:n], vj[l:n])
					Axpy(sum, vi[l:n], vj[l:n])
				}
			}
			for j := l; j < n; j++ {
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		}
		v.Set(i, i, 1)
		g = rv1[i]
	}

	// Accumulate the left-hand transformations into a (becoming U).
	for i := n - 1; i >= 0; i-- {
		l := i + 1
		g = s[i]
		ci := a.Col(i)
		for j := l; j < n; j++ {
			a.Set(i, j, 0)
		}
		if g != 0 {
			g = 1 / g
			for j := l; j < n; j++ {
				cj := a.Col(j)
				sum := Dot(ci[l:m], cj[l:m])
				Axpy((sum/ci[i])*g, ci[i:m], cj[i:m])
			}
			for j := i; j < m; j++ {
				ci[j] *= g
			}
		} else {
			for j := i; j < m; j++ {
				ci[j] = 0
			}
		}
		ci[i]++
	}

	// Diagonalize the bidiagonal form: implicit-shift QR with deflation.
	for k := n - 1; k >= 0; k-- {
		for its := 0; ; its++ {
			flag := true
			l, nm := k, k-1
			for ; l >= 0; l-- {
				nm = l - 1
				if math.Abs(rv1[l])+anorm == anorm {
					flag = false
					break
				}
				if math.Abs(s[nm])+anorm == anorm {
					break
				}
			}
			if flag {
				// s[nm] is negligible: cancel rv1[l] by rotations from the
				// left, touching columns nm and l..k of U.
				c, sn := 0.0, 1.0
				for i := l; i <= k; i++ {
					f := sn * rv1[i]
					rv1[i] = c * rv1[i]
					if math.Abs(f)+anorm == anorm {
						break
					}
					g = s[i]
					h := math.Hypot(f, g)
					s[i] = h
					h = 1 / h
					c = g * h
					sn = -f * h
					rotate(a.Col(nm), a.Col(i), c, -sn)
				}
			}
			z := s[k]
			if l == k {
				// Converged: enforce non-negative singular value.
				if z < 0 {
					s[k] = -z
					vk := v.Col(k)
					for j := range vk {
						vk[j] = -vk[j]
					}
				}
				break
			}
			if its >= 30*n {
				return false
			}
			// Shift from the bottom 2×2 minor (Wilkinson-style).
			x := s[l]
			nm = k - 1
			y := s[nm]
			g = rv1[nm]
			h := rv1[k]
			f := ((y-z)*(y+z) + (g-h)*(g+h)) / (2 * h * y)
			g = math.Hypot(f, 1)
			f = ((x-z)*(x+z) + h*(y/(f+math.Copysign(g, f))-h)) / x
			// QR sweep: chase the bulge down the bidiagonal.
			c, sn := 1.0, 1.0
			for j := l; j <= nm; j++ {
				i := j + 1
				g = rv1[i]
				y = s[i]
				h = sn * g
				g = c * g
				z = math.Hypot(f, h)
				rv1[j] = z
				c = f / z
				sn = h / z
				f = x*c + g*sn
				g = g*c - x*sn
				h = y * sn
				y *= c
				rotate(v.Col(j), v.Col(i), c, -sn)
				z = math.Hypot(f, h)
				s[j] = z
				if z != 0 {
					z = 1 / z
					c = f * z
					sn = h * z
				}
				f = c*g + sn*y
				x = c*y - sn*g
				rotate(a.Col(j), a.Col(i), c, -sn)
			}
			rv1[l] = 0
			rv1[k] = f
			s[k] = x
		}
	}
	return true
}
