package linalg

import "math"

// QRFactor holds a Householder QR factorization A = Q·R computed by QR.
// The factors are stored compactly: reflectors in the strict lower part of
// QR plus Tau, and R in the upper triangle.
type QRFactor struct {
	QR  *Matrix   // m×n packed factorization
	Tau []float64 // n Householder scalars
}

// QR computes the Householder QR factorization of a (m×n, m ≥ n is typical
// but not required). The input is not modified.
func QR(a *Matrix) *QRFactor {
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	k := min(m, n)
	tau := make([]float64, k)
	for j := 0; j < k; j++ {
		col := qr.Col(j)
		// Build the Householder reflector annihilating col[j+1:].
		alpha := col[j]
		norm := Nrm2(col[j+1 : m])
		if norm == 0 {
			tau[j] = 0
			continue
		}
		beta := -math.Copysign(math.Hypot(alpha, norm), alpha)
		tau[j] = (beta - alpha) / beta
		inv := 1 / (alpha - beta)
		for i := j + 1; i < m; i++ {
			col[i] *= inv
		}
		col[j] = beta
		// Apply H = I − tau·v·vᵀ to the trailing columns.
		for c := j + 1; c < n; c++ {
			cc := qr.Col(c)
			s := cc[j]
			for i := j + 1; i < m; i++ {
				s += col[i] * cc[i]
			}
			s *= tau[j]
			cc[j] -= s
			for i := j + 1; i < m; i++ {
				cc[i] -= s * col[i]
			}
		}
	}
	return &QRFactor{QR: qr, Tau: tau}
}

// R returns the k×n upper-triangular factor, k = min(m,n).
func (f *QRFactor) R() *Matrix {
	m, n := f.QR.Rows, f.QR.Cols
	k := min(m, n)
	r := NewMatrix(k, n)
	for j := 0; j < n; j++ {
		src := f.QR.Col(j)
		dst := r.Col(j)
		for i := 0; i <= min(j, k-1); i++ {
			dst[i] = src[i]
		}
	}
	return r
}

// ApplyQ returns Q·[X; 0] for a k×c matrix X (k = min(m,n)): X is padded
// with zero rows to height m and the Householder reflectors are applied in
// reverse order. This is the cheap way to form Q·X without materializing
// the thin Q (cost 2·m·k·c instead of 2·m·k² + a GEMM), used by the TLR
// recompression kernel.
func (f *QRFactor) ApplyQ(x *Matrix) *Matrix {
	m, n := f.QR.Rows, f.QR.Cols
	k := min(m, n)
	if x.Rows != k {
		panic("linalg: ApplyQ needs k rows")
	}
	out := NewMatrix(m, x.Cols)
	for j := 0; j < x.Cols; j++ {
		copy(out.Col(j)[:k], x.Col(j))
	}
	for j := k - 1; j >= 0; j-- {
		tau := f.Tau[j]
		if tau == 0 {
			continue
		}
		v := f.QR.Col(j)
		for c := 0; c < x.Cols; c++ {
			cc := out.Col(c)
			s := cc[j]
			for i := j + 1; i < m; i++ {
				s += v[i] * cc[i]
			}
			s *= tau
			cc[j] -= s
			for i := j + 1; i < m; i++ {
				cc[i] -= s * v[i]
			}
		}
	}
	return out
}

// ThinQ returns the m×k orthonormal factor, k = min(m,n), by accumulating
// the Householder reflectors against the identity.
func (f *QRFactor) ThinQ() *Matrix {
	m, n := f.QR.Rows, f.QR.Cols
	k := min(m, n)
	q := NewMatrix(m, k)
	for j := 0; j < k; j++ {
		q.Set(j, j, 1)
	}
	// Apply H_k-1 … H_0 to I (reverse order builds Q).
	for j := k - 1; j >= 0; j-- {
		if f.Tau[j] == 0 {
			continue
		}
		v := f.QR.Col(j)
		for c := 0; c < k; c++ {
			cc := q.Col(c)
			s := cc[j]
			for i := j + 1; i < m; i++ {
				s += v[i] * cc[i]
			}
			s *= f.Tau[j]
			cc[j] -= s
			for i := j + 1; i < m; i++ {
				cc[i] -= s * v[i]
			}
		}
	}
	return q
}
