package linalg

import "math"

// QRFactor holds a Householder QR factorization A = Q·R computed by QR.
// The factors are stored compactly: reflectors in the strict lower part of
// QR plus Tau, and R in the upper triangle.
type QRFactor struct {
	QR  *Matrix   // m×n packed factorization
	Tau []float64 // n Householder scalars
}

// QR computes the Householder QR factorization of a (m×n, m ≥ n is typical
// but not required). The input is not modified.
func QR(a *Matrix) *QRFactor {
	f := QRInPlace(a.Clone(), make([]float64, min(a.Rows, a.Cols)))
	return &f
}

// QRInPlace factors a in place: the returned factor's QR field aliases a and
// Tau aliases tau (length min(m,n)). It is returned by value so the
// allocation-free recompression hot path keeps it on the stack.
func QRInPlace(a *Matrix, tau []float64) QRFactor {
	m, n := a.Rows, a.Cols
	qr := a
	k := min(m, n)
	if len(tau) != k {
		panic("linalg: QRInPlace tau length mismatch")
	}
	for j := 0; j < k; j++ {
		col := qr.Col(j)
		// Build the Householder reflector annihilating col[j+1:].
		alpha := col[j]
		norm := Nrm2(col[j+1 : m])
		if norm == 0 {
			tau[j] = 0
			continue
		}
		beta := -math.Copysign(math.Hypot(alpha, norm), alpha)
		tau[j] = (beta - alpha) / beta
		inv := 1 / (alpha - beta)
		for i := j + 1; i < m; i++ {
			col[i] *= inv
		}
		col[j] = beta
		// Apply H = I − tau·v·vᵀ to the trailing columns.
		v := col[j+1 : m]
		for c := j + 1; c < n; c++ {
			cc := qr.Col(c)
			s := (cc[j] + Dot(v, cc[j+1:m])) * tau[j]
			cc[j] -= s
			Axpy(-s, v, cc[j+1:m])
		}
	}
	return QRFactor{QR: qr, Tau: tau}
}

// R returns the k×n upper-triangular factor, k = min(m,n).
func (f *QRFactor) R() *Matrix {
	r := NewMatrix(min(f.QR.Rows, f.QR.Cols), f.QR.Cols)
	f.RInto(r)
	return r
}

// RInto writes the k×n upper-triangular factor into r (k×n, k = min(m,n)),
// zeroing its lower part.
func (f *QRFactor) RInto(r *Matrix) {
	m, n := f.QR.Rows, f.QR.Cols
	k := min(m, n)
	if r.Rows != k || r.Cols != n {
		panic("linalg: RInto shape mismatch")
	}
	for j := 0; j < n; j++ {
		src := f.QR.Col(j)
		dst := r.Col(j)
		top := min(j+1, k)
		copy(dst[:top], src[:top])
		for i := top; i < k; i++ {
			dst[i] = 0
		}
	}
}

// ApplyQ returns Q·[X; 0] for a k×c matrix X (k = min(m,n)): X is padded
// with zero rows to height m and the Householder reflectors are applied in
// reverse order. This is the cheap way to form Q·X without materializing
// the thin Q (cost 2·m·k·c instead of 2·m·k² + a GEMM), used by the TLR
// recompression kernel.
func (f *QRFactor) ApplyQ(x *Matrix) *Matrix {
	out := NewMatrix(f.QR.Rows, x.Cols)
	f.ApplyQInto(x, out)
	return out
}

// ApplyQInto writes Q·[X; 0] into out (m×cols), the allocation-free form of
// ApplyQ. out must not alias x.
func (f *QRFactor) ApplyQInto(x, out *Matrix) {
	m, n := f.QR.Rows, f.QR.Cols
	k := min(m, n)
	if x.Rows != k {
		panic("linalg: ApplyQ needs k rows")
	}
	if out.Rows != m || out.Cols != x.Cols {
		panic("linalg: ApplyQInto shape mismatch")
	}
	for j := 0; j < x.Cols; j++ {
		oc := out.Col(j)
		copy(oc[:k], x.Col(j))
		for i := k; i < m; i++ {
			oc[i] = 0
		}
	}
	for j := k - 1; j >= 0; j-- {
		tau := f.Tau[j]
		if tau == 0 {
			continue
		}
		v := f.QR.Col(j)[j+1 : m]
		for c := 0; c < x.Cols; c++ {
			cc := out.Col(c)
			s := (cc[j] + Dot(v, cc[j+1:m])) * tau
			cc[j] -= s
			Axpy(-s, v, cc[j+1:m])
		}
	}
}

// ThinQ returns the m×k orthonormal factor, k = min(m,n), by accumulating
// the Householder reflectors against the identity.
func (f *QRFactor) ThinQ() *Matrix {
	q := NewMatrix(f.QR.Rows, min(f.QR.Rows, f.QR.Cols))
	f.ThinQInto(q)
	return q
}

// ThinQInto writes the m×k orthonormal factor into q, the allocation-free
// form of ThinQ.
func (f *QRFactor) ThinQInto(q *Matrix) {
	m, n := f.QR.Rows, f.QR.Cols
	k := min(m, n)
	if q.Rows != m || q.Cols != k {
		panic("linalg: ThinQInto shape mismatch")
	}
	q.Zero()
	for j := 0; j < k; j++ {
		q.Set(j, j, 1)
	}
	// Apply H_k-1 … H_0 to I (reverse order builds Q).
	for j := k - 1; j >= 0; j-- {
		if f.Tau[j] == 0 {
			continue
		}
		v := f.QR.Col(j)[j+1 : m]
		for c := 0; c < k; c++ {
			cc := q.Col(c)
			s := (cc[j] + Dot(v, cc[j+1:m])) * f.Tau[j]
			cc[j] -= s
			Axpy(-s, v, cc[j+1:m])
		}
	}
}
