//go:build !amd64

package linalg

// Non-amd64 builds have no native micro-kernel: the packed blocked path
// stays available through the portable Go micro-kernel (for tests and
// callers that ask for it), but the public dispatchers keep routing to the
// historical unpacked loops, which are faster than packing without vector
// FMA underneath.
var hasVectorKernels = false

func microF64(k int, ap, bp []float64, c *[mrReg * nrReg]float64) {
	microF64Go(k, ap, bp, c)
}

// MicroF32 exists only on platforms with native kernels; see
// HasVectorKernels.
func MicroF32(k int, ap, bp []float32, c *[96]float32) {
	panic("linalg: MicroF32 without vector kernels")
}

// The level-1 vector kernels are never reached when hasVectorKernels is
// false; the dispatchers fall back to the scalar loops first.
func dotVec(x, y []float64) float64        { panic("linalg: no vector kernels") }
func axpyVec(a float64, x, y []float64)    { panic("linalg: no vector kernels") }
func rotVec(x, y []float64, c, s float64)  { panic("linalg: no vector kernels") }
func axpy32Vec(a float32, x, y []float32)  { panic("linalg: no vector kernels") }
