package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite reports that a Cholesky factorization encountered a
// non-positive pivot; the input matrix is not (numerically) positive
// definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// PotrfUnblocked overwrites the lower triangle of a with its Cholesky factor
// L (A = L·Lᵀ) using the unblocked right-looking algorithm. The strict upper
// triangle is left untouched. This is the per-tile kernel of the tiled
// factorization.
func PotrfUnblocked(a *Matrix) error {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: PotrfUnblocked needs square matrix")
	}
	for k := 0; k < n; k++ {
		ck := a.Col(k)
		d := ck[k]
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, k, d)
		}
		d = math.Sqrt(d)
		ck[k] = d
		inv := 1 / d
		for i := k + 1; i < n; i++ {
			ck[i] *= inv
		}
		// Rank-1 update of the trailing lower triangle.
		for j := k + 1; j < n; j++ {
			if v := ck[j]; v != 0 {
				cj := a.Col(j)
				for i := j; i < n; i++ {
					cj[i] -= v * ck[i]
				}
			}
		}
	}
	return nil
}

// PotrfBlocked overwrites the lower triangle of a with its Cholesky factor
// using a right-looking blocked algorithm with block size nb. It is the
// sequential reference for the task-parallel tiled version.
func PotrfBlocked(a *Matrix, nb int) error {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: PotrfBlocked needs square matrix")
	}
	if nb <= 0 {
		nb = 64
	}
	for k := 0; k < n; k += nb {
		b := min(nb, n-k)
		akk := a.View(k, k, b, b)
		if err := PotrfUnblocked(akk); err != nil {
			return err
		}
		rest := n - k - b
		if rest == 0 {
			continue
		}
		panel := a.View(k+b, k, rest, b)
		TrsmLower(Right, true, 1, akk, panel)
		Syrk(false, -1, panel, 1, a.View(k+b, k+b, rest, rest))
	}
	return nil
}

// Cholesky returns the lower Cholesky factor of the symmetric positive
// definite matrix a (only the lower triangle of a is read). The input is not
// modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	l := a.Clone()
	if err := PotrfBlocked(l, 64); err != nil {
		return nil, err
	}
	l.LowerFromFull()
	return l, nil
}

// SolveSPD solves A·X = B for symmetric positive definite A, returning X.
// B is not modified.
func SolveSPD(a, b *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	x := b.Clone()
	TrsmLower(Left, false, 1, l, x)
	TrsmLower(Left, true, 1, l, x)
	return x, nil
}

// InvSPD returns the inverse of a symmetric positive definite matrix.
func InvSPD(a *Matrix) (*Matrix, error) {
	return SolveSPD(a, Eye(a.Rows))
}

// LogDetFromChol returns log|A| given the lower Cholesky factor of A.
func LogDetFromChol(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
