package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(r, c int, rng *rand.Rand) *Matrix {
	m := NewMatrix(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return m
}

// randSPD returns a well-conditioned random symmetric positive definite
// matrix A = GᵀG + n·I.
func randSPD(n int, rng *rand.Rand) *Matrix {
	g := randMatrix(n, n, rng)
	a := NewMatrix(n, n)
	Gemm(true, false, 1, g, g, 0, a)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestMatrixAtSetView(t *testing.T) {
	m := NewMatrix(4, 5)
	m.Set(2, 3, 7.5)
	if m.At(2, 3) != 7.5 {
		t.Fatal("At/Set roundtrip failed")
	}
	v := m.View(1, 2, 3, 3)
	if v.At(1, 1) != 7.5 {
		t.Errorf("view should alias (2,3): got %v", v.At(1, 1))
	}
	v.Set(0, 0, -1)
	if m.At(1, 2) != -1 {
		t.Error("view write did not propagate")
	}
}

func TestMatrixViewBounds(t *testing.T) {
	m := NewMatrix(3, 3)
	for _, c := range [][4]int{{-1, 0, 1, 1}, {0, 0, 4, 1}, {2, 2, 2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("View%v should panic", c)
				}
			}()
			m.View(c[0], c[1], c[2], c[3])
		}()
	}
}

func TestTransposeCloneCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(4, 6, rng)
	mt := m.Transpose()
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	c := m.Clone()
	if c.MaxAbsDiff(m) != 0 {
		t.Error("clone differs")
	}
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("clone shares storage")
	}
	d := NewMatrix(4, 6)
	d.CopyFrom(m)
	if d.MaxAbsDiff(m) != 0 {
		t.Error("CopyFrom differs")
	}
}

func TestFrobNorm(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4)
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-14 {
		t.Errorf("FrobNorm = %v, want 5", got)
	}
	// Overflow guard: huge entries should not produce +Inf.
	h := NewMatrix(2, 1)
	h.Set(0, 0, 1e300)
	h.Set(1, 0, 1e300)
	if got := h.FrobNorm(); math.IsInf(got, 1) {
		t.Error("FrobNorm overflowed")
	}
}

func TestLowerFromFullAndSymmetrize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(4, 4, rng)
	l := m.Clone()
	l.LowerFromFull()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := m.At(i, j)
			if i < j {
				want = 0
			}
			if l.At(i, j) != want {
				t.Fatalf("LowerFromFull wrong at (%d,%d)", i, j)
			}
		}
	}
	s := m.Clone()
	s.SymmetrizeFromLower()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if s.At(i, j) != s.At(j, i) {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// naiveGemm is the O(mnk) reference used to validate the kernel variants.
func naiveGemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) *Matrix {
	opA := a
	if transA {
		opA = a.Transpose()
	}
	opB := b
	if transB {
		opB = b.Transpose()
	}
	out := NewMatrix(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			s := 0.0
			for k := 0; k < opA.Cols; k++ {
				s += opA.At(i, k) * opB.At(k, j)
			}
			out.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
	return out
}

func TestGemmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ ta, tb bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
		m, n, k := 5, 7, 4
		var a, b *Matrix
		if tc.ta {
			a = randMatrix(k, m, rng)
		} else {
			a = randMatrix(m, k, rng)
		}
		if tc.tb {
			b = randMatrix(n, k, rng)
		} else {
			b = randMatrix(k, n, rng)
		}
		c := randMatrix(m, n, rng)
		want := naiveGemm(tc.ta, tc.tb, 1.7, a, b, 0.3, c)
		Gemm(tc.ta, tc.tb, 1.7, a, b, 0.3, c)
		if d := c.MaxAbsDiff(want); d > 1e-12 {
			t.Errorf("Gemm(%v,%v) max diff %v", tc.ta, tc.tb, d)
		}
	}
}

func TestGemmBetaZeroClearsNaN(t *testing.T) {
	// beta=0 must overwrite even NaN-poisoned C.
	rng := rand.New(rand.NewSource(4))
	a, b := randMatrix(3, 3, rng), randMatrix(3, 3, rng)
	c := NewMatrix(3, 3)
	c.Fill(math.NaN())
	Gemm(false, false, 1, a, b, 0, c)
	want := naiveGemm(false, false, 1, a, b, 0, NewMatrix(3, 3))
	if d := c.MaxAbsDiff(want); d > 1e-12 || math.IsNaN(c.At(0, 0)) {
		t.Errorf("beta=0 did not clear: diff %v", d)
	}
}

func TestGemmOnViews(t *testing.T) {
	// Kernels must work on strided views, not just compact matrices.
	rng := rand.New(rand.NewSource(5))
	big := randMatrix(10, 10, rng)
	a := big.View(1, 1, 4, 3)
	b := big.View(5, 2, 3, 4)
	c := NewMatrix(4, 4)
	want := naiveGemm(false, false, 1, a.Clone(), b.Clone(), 0, c)
	Gemm(false, false, 1, a, b, 0, c)
	if d := c.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("view Gemm diff %v", d)
	}
}

func TestGemvBothVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(4, 3, rng)
	x := []float64{1, -2, 0.5}
	y := []float64{0.1, 0.2, 0.3, 0.4}
	want := make([]float64, 4)
	for i := 0; i < 4; i++ {
		s := 0.0
		for j := 0; j < 3; j++ {
			s += a.At(i, j) * x[j]
		}
		want[i] = 2*s + 0.5*y[i]
	}
	Gemv(false, 2, a, x, 0.5, y)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-13 {
			t.Fatalf("Gemv notrans y[%d]=%v want %v", i, y[i], want[i])
		}
	}
	yt := []float64{1, 1, 1}
	wantT := make([]float64, 3)
	xt := []float64{1, 2, 3, 4}
	for j := 0; j < 3; j++ {
		s := 0.0
		for i := 0; i < 4; i++ {
			s += a.At(i, j) * xt[i]
		}
		wantT[j] = s + yt[j]
	}
	Gemv(true, 1, a, xt, 1, yt)
	for j := range yt {
		if math.Abs(yt[j]-wantT[j]) > 1e-13 {
			t.Fatalf("Gemv trans y[%d]=%v want %v", j, yt[j], wantT[j])
		}
	}
}

func TestSyrkMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, trans := range []bool{false, true} {
		a := randMatrix(5, 3, rng)
		n := 5
		if trans {
			n = 3
		}
		c := randMatrix(n, n, rng)
		c.SymmetrizeFromLower()
		want := naiveGemm(trans, !trans, -1, a, a, 1, c)
		got := c.Clone()
		Syrk(trans, -1, a, 1, got)
		// Only the lower triangle is touched.
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-12 {
					t.Fatalf("Syrk(trans=%v) mismatch at (%d,%d)", trans, i, j)
				}
			}
		}
	}
}

func TestTrsmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 6
	spd := randSPD(n, rng)
	l, err := Cholesky(spd)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		side  TrsmSide
		trans bool
	}{{Left, false}, {Left, true}, {Right, false}, {Right, true}} {
		var b *Matrix
		if tc.side == Left {
			b = randMatrix(n, 4, rng)
		} else {
			b = randMatrix(4, n, rng)
		}
		x := b.Clone()
		TrsmLower(tc.side, tc.trans, 1, l, x)
		// Multiply back: op(L)·X or X·op(L) must reproduce B.
		check := NewMatrix(b.Rows, b.Cols)
		if tc.side == Left {
			Gemm(tc.trans, false, 1, l, x, 0, check)
		} else {
			Gemm(false, tc.trans, 1, x, l, 0, check)
		}
		if d := check.MaxAbsDiff(b); d > 1e-10 {
			t.Errorf("Trsm side=%v trans=%v residual %v", tc.side, tc.trans, d)
		}
	}
}

func TestTrsmAlphaScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l, _ := Cholesky(randSPD(4, rng))
	b := randMatrix(4, 2, rng)
	x1 := b.Clone()
	TrsmLower(Left, false, 2, l, x1)
	x2 := b.Clone()
	TrsmLower(Left, false, 1, l, x2)
	for j := 0; j < 2; j++ {
		for i := 0; i < 4; i++ {
			if math.Abs(x1.At(i, j)-2*x2.At(i, j)) > 1e-12 {
				t.Fatal("alpha scaling incorrect")
			}
		}
	}
}

func TestTrmmLowerNoTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l, _ := Cholesky(randSPD(5, rng))
	b := randMatrix(5, 3, rng)
	want := NewMatrix(5, 3)
	Gemm(false, false, 1, l, b, 0, want)
	got := b.Clone()
	TrmmLowerNoTrans(l, got)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("Trmm diff %v", d)
	}
}
