package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func randMat(r, c int, rng *rand.Rand) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// relDiff returns max|a−b| scaled by the magnitude of b (elementwise norms).
func relDiff(a, b *Matrix) float64 {
	d := a.MaxAbsDiff(b)
	scale := math.Max(b.FrobNorm(), 1)
	return d / scale
}

// TestGemmBlockedMatchesNaive pins the packed register-blocked GEMM against
// the historical unpacked kernel across all four transpose cases, empty
// dimensions, k=0 and sizes that are not multiples of the micro-kernel or
// panel blocking.
func TestGemmBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []struct{ m, n, k int }{
		{0, 5, 3}, {5, 0, 3}, {4, 4, 0}, {1, 1, 1}, {3, 5, 7},
		{4, 4, 4}, {47, 31, 5}, {48, 48, 48}, {96, 96, 96},
		{65, 33, 129}, {130, 70, 258}, {257, 19, 40},
	}
	for _, sz := range sizes {
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				ar, ac := sz.m, sz.k
				if transA {
					ar, ac = ac, ar
				}
				br, bc := sz.k, sz.n
				if transB {
					br, bc = bc, br
				}
				a := randMat(ar, ac, rng)
				b := randMat(br, bc, rng)
				c0 := randMat(sz.m, sz.n, rng)
				want := c0.Clone()
				got := c0.Clone()
				if sz.m > 0 && sz.n > 0 && sz.k > 0 {
					gemmNaive(transA, transB, 0.75, a, b, want, sz.m, sz.n, sz.k)
					gemmBlocked(transA, transB, 0.75, a, b, got, sz.m, sz.n, sz.k)
				}
				if d := relDiff(got, want); d > 1e-13*float64(sz.k+1) {
					t.Errorf("m=%d n=%d k=%d tA=%v tB=%v: blocked vs naive diff %g",
						sz.m, sz.n, sz.k, transA, transB, d)
				}
			}
		}
	}
}

// TestGemmPublicBetaAndDispatch checks the public Gemm entry point (which
// routes to either kernel by size) handles beta=0, beta≠1 and accumulation
// identically to an elementwise reference.
func TestGemmPublicBetaAndDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{6, 50} {
		a := randMat(n, n, rng)
		b := randMat(n, n, rng)
		for _, beta := range []float64{0, 1, 0.5} {
			c := randMat(n, n, rng)
			want := NewMatrix(n, n)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					s := beta * c.At(i, j)
					for l := 0; l < n; l++ {
						s += 2 * a.At(i, l) * b.At(l, j)
					}
					want.Set(i, j, s)
				}
			}
			Gemm(false, false, 2, a, b, beta, c)
			if d := relDiff(c, want); d > 1e-12 {
				t.Errorf("n=%d beta=%g: Gemm diff %g", n, beta, d)
			}
		}
	}
}

// TestSyrkBlockedMatchesNaive pins the blocked SYRK against the unpacked
// kernel for both trans cases and checks the strict upper triangle is never
// touched.
func TestSyrkBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := []struct{ n, k int }{
		{1, 1}, {5, 3}, {48, 48}, {64, 40}, {96, 96}, {130, 67}, {65, 129},
	}
	const sentinel = 1e300
	for _, sz := range sizes {
		for _, trans := range []bool{false, true} {
			ar, ac := sz.n, sz.k
			if trans {
				ar, ac = ac, ar
			}
			a := randMat(ar, ac, rng)
			c0 := randMat(sz.n, sz.n, rng)
			for j := 1; j < sz.n; j++ {
				for i := 0; i < j; i++ {
					c0.Set(i, j, sentinel)
				}
			}
			want := c0.Clone()
			got := c0.Clone()
			syrkNaive(trans, -1, a, want, sz.n, sz.k)
			syrkBlocked(trans, -1, a, got, sz.n, sz.k)
			for j := 0; j < sz.n; j++ {
				for i := 0; i < sz.n; i++ {
					if i < j {
						if got.At(i, j) != sentinel {
							t.Fatalf("n=%d k=%d trans=%v: upper triangle (%d,%d) written", sz.n, sz.k, trans, i, j)
						}
						continue
					}
					diff := math.Abs(got.At(i, j) - want.At(i, j))
					if diff > 1e-12*float64(sz.k+1) {
						t.Errorf("n=%d k=%d trans=%v: (%d,%d) diff %g", sz.n, sz.k, trans, i, j, diff)
					}
				}
			}
		}
	}
}

// TestTrsmBlockedMatchesUnblocked pins the blocked triangular solves against
// the unblocked substitution for all four side/trans variants, including
// sizes that are not multiples of the block size.
func TestTrsmBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 5, 32, 33, 80, 130} {
		l := randMat(n, n, rng)
		for i := 0; i < n; i++ {
			l.Set(i, i, 4+math.Abs(l.At(i, i))) // well-conditioned diagonal
		}
		for _, side := range []TrsmSide{Left, Right} {
			for _, trans := range []bool{false, true} {
				br, bc := 37, n
				if side == Left {
					br, bc = n, 37
				}
				b0 := randMat(br, bc, rng)
				want := b0.Clone()
				got := b0.Clone()
				trsmLowerUnblocked(side, trans, l, want)
				trsmLowerBlocked(side, trans, l, got)
				if d := relDiff(got, want); d > 1e-12 {
					t.Errorf("n=%d side=%v trans=%v: blocked vs unblocked diff %g", n, side, trans, d)
				}
			}
		}
	}
}

// TestNrm2 checks the allocation-free norm against the matrix Frobenius norm
// and pins overflow/underflow guarding.
func TestNrm2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := FromColMajor(len(x), 1, x).FrobNorm()
	if got := Nrm2(x); math.Abs(got-want) > 1e-12*want {
		t.Errorf("Nrm2 = %g, want %g", got, want)
	}
	huge := []float64{1e300, 1e300}
	if got := Nrm2(huge); math.IsInf(got, 0) || math.Abs(got-1e300*math.Sqrt2) > 1e285 {
		t.Errorf("overflow guard failed: %g", got)
	}
	tiny := []float64{1e-300, 1e-300}
	if got := Nrm2(tiny); got == 0 || math.Abs(got-1e-300*math.Sqrt2) > 1e-315 {
		t.Errorf("underflow guard failed: %g", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Errorf("Nrm2(nil) = %g", got)
	}
	if testing.AllocsPerRun(10, func() { Nrm2(x) }) != 0 {
		t.Error("Nrm2 allocates")
	}
}

// FuzzGemmBlocked cross-checks the blocked kernel against the naive one on
// fuzzer-chosen shapes.
func FuzzGemmBlocked(f *testing.F) {
	f.Add(uint8(5), uint8(7), uint8(9), false, true)
	f.Add(uint8(48), uint8(48), uint8(48), true, false)
	f.Add(uint8(1), uint8(130), uint8(3), true, true)
	f.Fuzz(func(t *testing.T, m8, n8, k8 uint8, transA, transB bool) {
		m, n, k := int(m8), int(n8), int(k8)
		if m == 0 || n == 0 || k == 0 {
			return
		}
		rng := rand.New(rand.NewSource(int64(m)<<16 | int64(n)<<8 | int64(k)))
		ar, ac := m, k
		if transA {
			ar, ac = ac, ar
		}
		br, bc := k, n
		if transB {
			br, bc = bc, br
		}
		a := randMat(ar, ac, rng)
		b := randMat(br, bc, rng)
		want := NewMatrix(m, n)
		got := NewMatrix(m, n)
		gemmNaive(transA, transB, 1, a, b, want, m, n, k)
		gemmBlocked(transA, transB, 1, a, b, got, m, n, k)
		if d := relDiff(got, want); d > 1e-12*float64(k+1) {
			t.Errorf("m=%d n=%d k=%d tA=%v tB=%v: diff %g", m, n, k, transA, transB, d)
		}
	})
}

// sink defeats dead-code elimination in benchmarks.
var sink float64

// gemmSeedScalar is a pinned copy of the seed's GEMM kernel (the
// !transA && transB case): scalar axpy panels with no vector dispatch
// underneath. It is the historical baseline the blocked-kernel speedups in
// BENCH_kernels.json are measured against; the live gemmNaive now sits on
// the vectorized level-1 kernels and is no longer that baseline.
func gemmSeedScalar(alpha float64, a, b, c *Matrix, n, k int) {
	for l := 0; l < k; l++ {
		ac, bc := a.Col(l), b.Col(l)
		for j := 0; j < n; j++ {
			if bl := alpha * bc[j]; bl != 0 {
				cc := c.Col(j)
				for i, v := range ac {
					cc[i] += bl * v
				}
			}
		}
	}
}

// BenchmarkKernels measures the blocked kernels against the historical
// unpacked ones at the tile sizes the factorizations actually use; results
// are recorded in BENCH_kernels.json.
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{48, 64, 96, 192} {
		a := randMat(n, n, rng)
		bb := randMat(n, n, rng)
		c := NewMatrix(n, n)
		b.Run(fmt.Sprintf("GemmBlocked/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gemmBlocked(false, true, -1, a, bb, c, n, n, n)
			}
		})
		b.Run(fmt.Sprintf("GemmNaive/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gemmNaive(false, true, -1, a, bb, c, n, n, n)
			}
		})
		b.Run(fmt.Sprintf("GemmSeedScalar/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gemmSeedScalar(-1, a, bb, c, n, n)
			}
		})
		b.Run(fmt.Sprintf("SyrkBlocked/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				syrkBlocked(false, -1, a, c, n, n)
			}
		})
		b.Run(fmt.Sprintf("SyrkNaive/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				syrkNaive(false, -1, a, c, n, n)
			}
		})
	}
	l := randMat(96, 96, rng)
	for i := 0; i < 96; i++ {
		l.Set(i, i, 8+math.Abs(l.At(i, i)))
	}
	x := randMat(96, 96, rng)
	b.Run("TrsmBlocked/n=96", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trsmLowerBlocked(Right, true, l, x)
		}
	})
	b.Run("TrsmUnblocked/n=96", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trsmLowerUnblocked(Right, true, l, x)
		}
	})
	v := make([]float64, 4096)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.Run("Nrm2/n=4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = Nrm2(v)
		}
	})
}
