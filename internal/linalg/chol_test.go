package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func cholReconstructs(t *testing.T, a *Matrix, factor func(*Matrix) error) {
	t.Helper()
	l := a.Clone()
	if err := factor(l); err != nil {
		t.Fatal(err)
	}
	l.LowerFromFull()
	llt := NewMatrix(a.Rows, a.Rows)
	Gemm(false, true, 1, l, l, 0, llt)
	// Compare on the lower triangle (upper of a may hold anything symmetric).
	for j := 0; j < a.Cols; j++ {
		for i := j; i < a.Rows; i++ {
			if math.Abs(llt.At(i, j)-a.At(i, j)) > 1e-9*math.Max(1, math.Abs(a.At(i, j))) {
				t.Fatalf("LLᵀ mismatch at (%d,%d): %v vs %v", i, j, llt.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestPotrfUnblockedReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 3, 8, 17, 40} {
		cholReconstructs(t, randSPD(n, rng), PotrfUnblocked)
	}
}

func TestPotrfBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, nb := range []int{1, 3, 8, 16, 100} {
		a := randSPD(25, rng)
		l1 := a.Clone()
		if err := PotrfUnblocked(l1); err != nil {
			t.Fatal(err)
		}
		l2 := a.Clone()
		if err := PotrfBlocked(l2, nb); err != nil {
			t.Fatal(err)
		}
		l1.LowerFromFull()
		l2.LowerFromFull()
		if d := l1.MaxAbsDiff(l2); d > 1e-9 {
			t.Errorf("nb=%d: blocked vs unblocked diff %v", nb, d)
		}
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	a := Eye(3)
	a.Set(2, 2, -1)
	if err := PotrfUnblocked(a.Clone()); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("want ErrNotPositiveDefinite, got %v", err)
	}
	b := NewMatrix(2, 2) // all-zero: first pivot is 0
	if err := PotrfBlocked(b, 1); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskyDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randSPD(6, rng)
	orig := a.Clone()
	if _, err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if a.MaxAbsDiff(orig) != 0 {
		t.Error("Cholesky modified its input")
	}
}

func TestCholeskyPropertySPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := randSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		llt := NewMatrix(n, n)
		Gemm(false, true, 1, l, l, 0, llt)
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if math.Abs(llt.At(i, j)-a.At(i, j)) > 1e-8*math.Max(1, math.Abs(a.At(i, j))) {
					return false
				}
			}
		}
		// Diagonal of L must be strictly positive.
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randSPD(12, rng)
	xTrue := randMatrix(12, 3, rng)
	b := NewMatrix(12, 3)
	Gemm(false, false, 1, a, xTrue, 0, b)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := x.MaxAbsDiff(xTrue); d > 1e-8 {
		t.Errorf("SolveSPD residual %v", d)
	}
}

func TestInvSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randSPD(10, rng)
	inv, err := InvSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := NewMatrix(10, 10)
	Gemm(false, false, 1, a, inv, 0, prod)
	if d := prod.MaxAbsDiff(Eye(10)); d > 1e-8 {
		t.Errorf("A·A⁻¹ differs from I by %v", d)
	}
}

func TestLogDetFromChol(t *testing.T) {
	// diag(4, 9) has log det = log 36.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 9)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := LogDetFromChol(l), math.Log(36); math.Abs(got-want) > 1e-14 {
		t.Errorf("logdet = %v, want %v", got, want)
	}
}
