package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestAxpy32MatchesScalar pins the saxpy kernel against the scalar loop on
// every tail length, including the sub-threshold sizes that skip the kernel.
func TestAxpy32MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n <= 40; n++ {
		x := make([]float32, n)
		y := make([]float32, n)
		want := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
			y[i] = float32(rng.NormFloat64())
			want[i] = y[i]
		}
		const a = float32(1.25) // exact in f32: kernel FMA vs scalar agree
		Axpy32(a, x, y)
		for i := range want {
			want[i] += a * x[i]
		}
		for i := range y {
			if d := math.Abs(float64(y[i] - want[i])); d > 1e-6*math.Abs(float64(want[i]))+1e-7 {
				t.Fatalf("n=%d: Axpy32 y[%d]=%g want %g", n, i, y[i], want[i])
			}
		}
	}
	// alpha == 0 must not touch y even with NaN x.
	x := []float32{float32(math.NaN())}
	y := []float32{3}
	Axpy32(0, x, y)
	if y[0] != 3 {
		t.Fatalf("Axpy32 with alpha=0 modified y: %g", y[0])
	}
}
