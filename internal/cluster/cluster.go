// Package cluster is a discrete-event simulator of the distributed-memory
// execution of the tiled MVN pipeline on a Cray-XC40-like machine: tiles
// are owned 2D-block-cyclically by nodes, each task executes on the node
// owning its output tile, inter-node tile transfers pay latency plus
// bytes/bandwidth, and every node schedules its tasks over a fixed number
// of cores. It stands in for the paper's Shaheen-II runs (Figure 7,
// Table III), reproducing the scaling *shape* from the same task DAG and
// communication volume.
//
// Matching the paper's distributed implementation, the TLR variant
// accelerates only the Cholesky factorization; the QMC propagation GEMMs
// stay dense ("A and B are non-admissible"), which is why distributed TLR
// speedups (≈1.3–1.8X) are far below the shared-memory ones.
package cluster

import (
	"container/heap"
	"fmt"
	"math"
)

// Config describes the simulated machine.
type Config struct {
	Nodes         int
	CoresPerNode  int
	GflopsPerCore float64 // sustained double-precision Gflop/s per core
	LatencySec    float64 // per-message network latency
	BandwidthBps  float64 // per-link bandwidth in bytes/s
}

// ShaheenII returns a configuration calibrated to the paper's Cray XC40
// nodes (dual-socket 16-core Haswell @ 2.3 GHz, Aries interconnect).
func ShaheenII(nodes int) Config {
	return Config{
		Nodes:         nodes,
		CoresPerNode:  32,
		GflopsPerCore: 16, // sustained DGEMM per core
		LatencySec:    1.5e-6,
		BandwidthBps:  8e9,
	}
}

// task is a node-pinned unit of work in the simulated DAG.
type task struct {
	node   int
	flops  float64
	finish float64
	// deps are the predecessor tasks with the bytes that must move if the
	// producer lives on a different node.
	deps []dataDep
}

type dataDep struct {
	t     *task
	bytes float64
}

// Sim accumulates a DAG and computes its makespan under the configuration.
type Sim struct {
	cfg   Config
	tasks []*task
	cores [][]float64 // per node: min-heap of core-free times
}

// NewSim returns an empty simulation for the machine cfg.
func NewSim(cfg Config) *Sim {
	if cfg.Nodes < 1 || cfg.CoresPerNode < 1 {
		panic(fmt.Sprintf("cluster: invalid config %+v", cfg))
	}
	s := &Sim{cfg: cfg, cores: make([][]float64, cfg.Nodes)}
	for i := range s.cores {
		s.cores[i] = make([]float64, cfg.CoresPerNode)
	}
	return s
}

// Add appends a task pinned to node with the given flop cost and
// dependencies; it must be called in a valid topological order (dependencies
// added first). It returns the task for use as a later dependency.
func (s *Sim) Add(node int, flops float64, deps ...dataDep) *task {
	t := &task{node: node, flops: flops, deps: deps}
	s.tasks = append(s.tasks, t)
	return t
}

// Dep declares a dependency carrying the given payload bytes.
func Dep(t *task, bytes float64) dataDep { return dataDep{t: t, bytes: bytes} }

// Run executes the list-scheduling simulation and returns the makespan in
// seconds. Tasks start when their data has arrived and a core on their node
// is free, in submission order (the STF order a dynamic runtime would also
// respect for equal priorities).
func (s *Sim) Run() float64 {
	makespan := 0.0
	for _, t := range s.tasks {
		ready := 0.0
		for _, d := range t.deps {
			arrive := d.t.finish
			if d.t.node != t.node && d.bytes > 0 {
				arrive += s.cfg.LatencySec + d.bytes/s.cfg.BandwidthBps
			}
			ready = math.Max(ready, arrive)
		}
		h := coreHeap(s.cores[t.node])
		start := math.Max(ready, h[0])
		t.finish = start + t.flops/(s.cfg.GflopsPerCore*1e9)
		h[0] = t.finish
		heap.Fix(&h, 0)
		makespan = math.Max(makespan, t.finish)
	}
	return makespan
}

type coreHeap []float64

func (h coreHeap) Len() int           { return len(h) }
func (h coreHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h coreHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *coreHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// grid returns a near-square process grid pr×pc = nodes.
func grid(nodes int) (pr, pc int) {
	pr = int(math.Sqrt(float64(nodes)))
	for nodes%pr != 0 {
		pr--
	}
	return pr, nodes / pr
}

// Workload describes one MVN problem instance for the simulator.
type Workload struct {
	N        int     // problem dimension
	TileSize int     // tile size (the paper's 980-style TLR tiles)
	QMC      int     // QMC sample size
	SampleTS int     // chains per tile column
	TLR      bool    // TLR Cholesky (propagation stays dense)
	MeanRank float64 // mean off-diagonal rank for the TLR kernels
	// PropFlopScale inflates the propagation-GEMM cost to model the lower
	// arithmetic efficiency of tall-skinny GEMMs relative to the square
	// DGEMMs the Gflops rating assumes (1 = peak efficiency; ~2.5 matches
	// the paper's observation that Algorithm 2 outweighs the Cholesky).
	PropFlopScale float64
}

const bytesPerFloat = 8

// machine is the streaming counterpart of Sim: it tracks per-node core
// availability and computes task finish times in submission order without
// materializing the DAG, so paper-scale tile counts (nt ≈ 776 → tens of
// millions of GEMM tasks) simulate in seconds.
type machine struct {
	cfg   Config
	cores [][]float64
	mk    float64
}

func newMachine(cfg Config) *machine {
	m := &machine{cfg: cfg, cores: make([][]float64, cfg.Nodes)}
	for i := range m.cores {
		m.cores[i] = make([]float64, cfg.CoresPerNode)
	}
	return m
}

// run executes one task on node at the given data-ready time and returns
// its finish time.
func (m *machine) run(node int, flops, ready float64) float64 {
	h := coreHeap(m.cores[node])
	start := math.Max(ready, h[0])
	finish := start + flops/(m.cfg.GflopsPerCore*1e9)
	h[0] = finish
	heap.Fix(&h, 0)
	if finish > m.mk {
		m.mk = finish
	}
	return finish
}

// arrive returns when data produced at time t on node `from` becomes usable
// on node `to`.
func (m *machine) arrive(t float64, from, to int, bytes float64) float64 {
	if from == to || bytes == 0 {
		return t
	}
	return t + m.cfg.LatencySec + bytes/m.cfg.BandwidthBps
}

// MVNMakespan simulates one full MVN integration (Cholesky + tiled QMC
// propagation) on the machine and returns (cholesky seconds, pmvn seconds).
// The DAG is streamed in STF submission order, matching Sim's semantics.
func MVNMakespan(cfg Config, w Workload) (cholSec, pmvnSec float64) {
	nt := (w.N + w.TileSize - 1) / w.TileSize
	pr, pc := grid(cfg.Nodes)
	owner := func(i, j int) int { return (i%pr)*pc + j%pc }
	m := float64(w.TileSize)
	tileBytes := m * m * bytesPerFloat
	k := w.MeanRank
	payload := tileBytes
	if w.TLR {
		payload = 2 * m * k * bytesPerFloat
	}
	potrfFlops := m * m * m / 3
	trsmFlops := m * m * m
	syrkFlops := m * m * m
	gemmFlops := 2 * m * m * m
	if w.TLR {
		trsmFlops = m * m * k
		syrkFlops = 2*m*k*k + 2*m*m*k
		// LR×LR product + QR/SVD recompression of the stacked factors
		// (the HiCMA gemm kernel).
		gemmFlops = 22 * m * k * k
	}

	// --- Cholesky ---
	mach := newMachine(cfg)
	diagF := make([]float64, nt) // finish time of the last writer per tile
	lowF := make([][]float64, nt)
	for i := range lowF {
		lowF[i] = make([]float64, i)
	}
	for kk := 0; kk < nt; kk++ {
		okk := owner(kk, kk)
		diagF[kk] = mach.run(okk, potrfFlops, diagF[kk])
		for i := kk + 1; i < nt; i++ {
			oik := owner(i, kk)
			ready := math.Max(lowF[i][kk], mach.arrive(diagF[kk], okk, oik, tileBytes))
			lowF[i][kk] = mach.run(oik, trsmFlops, ready)
		}
		for i := kk + 1; i < nt; i++ {
			oik := owner(i, kk)
			ready := math.Max(diagF[i], mach.arrive(lowF[i][kk], oik, owner(i, i), payload))
			diagF[i] = mach.run(owner(i, i), syrkFlops, ready)
			for j := kk + 1; j < i; j++ {
				oij := owner(i, j)
				ready := math.Max(lowF[i][j],
					math.Max(mach.arrive(lowF[i][kk], oik, oij, payload),
						mach.arrive(lowF[j][kk], owner(j, kk), oij, payload)))
				lowF[i][j] = mach.run(oij, gemmFlops, ready)
			}
		}
	}
	cholSec = mach.mk

	// --- PMVN (propagation always dense, as on the paper's cluster) ---
	mc := w.SampleTS
	if mc <= 0 {
		mc = w.TileSize
	}
	kt := (w.QMC + mc - 1) / mc
	mcF := float64(mc)
	// Per-element QMC kernel cost: the triangular accumulation plus the
	// Φ/Φ⁻¹ evaluations (~60 flops each).
	qmcFlops := m*m*mcF + 120*m*mcF
	propScale := w.PropFlopScale
	if propScale <= 0 {
		propScale = 1
	}
	propFlops := propScale * 2 * 2 * m * m * mcF // A and B dense GEMM updates
	yBytes := m * mcF * bytesPerFloat

	pm := newMachine(cfg)
	yF := make([]float64, kt)
	abF := make([][]float64, nt)
	for j := range abF {
		abF[j] = make([]float64, kt)
	}
	for kcol := 0; kcol < kt; kcol++ {
		yF[kcol] = pm.run(owner(0, kcol), qmcFlops, 0)
	}
	for r := 1; r < nt; r++ {
		for j := r; j < nt; j++ {
			for kcol := 0; kcol < kt; kcol++ {
				oj := owner(j, kcol)
				ready := math.Max(abF[j][kcol], pm.arrive(yF[kcol], owner(r-1, kcol), oj, yBytes))
				abF[j][kcol] = pm.run(oj, propFlops, ready)
			}
		}
		for kcol := 0; kcol < kt; kcol++ {
			yF[kcol] = pm.run(owner(r, kcol), qmcFlops, abF[r][kcol])
		}
	}
	pmvnSec = pm.mk
	return cholSec, pmvnSec
}
