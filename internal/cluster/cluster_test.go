package cluster

import (
	"math"
	"testing"
)

func TestSimSingleTask(t *testing.T) {
	cfg := Config{Nodes: 1, CoresPerNode: 1, GflopsPerCore: 1, LatencySec: 0, BandwidthBps: 1e9}
	s := NewSim(cfg)
	s.Add(0, 2e9) // 2 Gflop at 1 Gflop/s = 2 s
	if got := s.Run(); math.Abs(got-2) > 1e-9 {
		t.Errorf("makespan %v, want 2", got)
	}
}

func TestSimSerialChain(t *testing.T) {
	cfg := Config{Nodes: 1, CoresPerNode: 4, GflopsPerCore: 1, LatencySec: 0, BandwidthBps: 1e9}
	s := NewSim(cfg)
	a := s.Add(0, 1e9)
	b := s.Add(0, 1e9, Dep(a, 0))
	s.Add(0, 1e9, Dep(b, 0))
	// Chain serializes despite 4 cores.
	if got := s.Run(); math.Abs(got-3) > 1e-9 {
		t.Errorf("chain makespan %v, want 3", got)
	}
}

func TestSimParallelOnCores(t *testing.T) {
	cfg := Config{Nodes: 1, CoresPerNode: 2, GflopsPerCore: 1, LatencySec: 0, BandwidthBps: 1e9}
	s := NewSim(cfg)
	for i := 0; i < 4; i++ {
		s.Add(0, 1e9)
	}
	// 4 unit tasks on 2 cores: 2 seconds.
	if got := s.Run(); math.Abs(got-2) > 1e-9 {
		t.Errorf("makespan %v, want 2", got)
	}
}

func TestSimCommunicationDelay(t *testing.T) {
	cfg := Config{Nodes: 2, CoresPerNode: 1, GflopsPerCore: 1, LatencySec: 0.5, BandwidthBps: 1e9}
	s := NewSim(cfg)
	a := s.Add(0, 1e9)
	s.Add(1, 1e9, Dep(a, 1e9)) // 1 GB over 1 GB/s + 0.5 s latency
	want := 1 + 0.5 + 1 + 1.0
	if got := s.Run(); math.Abs(got-want) > 1e-9 {
		t.Errorf("makespan %v, want %v", got, want)
	}
	// Same-node dependency pays no communication.
	s2 := NewSim(cfg)
	a2 := s2.Add(0, 1e9)
	s2.Add(0, 1e9, Dep(a2, 1e9))
	if got := s2.Run(); math.Abs(got-2) > 1e-9 {
		t.Errorf("local dep makespan %v, want 2", got)
	}
}

func TestGrid(t *testing.T) {
	for _, tc := range []struct{ n, pr, pc int }{
		{1, 1, 1}, {4, 2, 2}, {16, 4, 4}, {32, 4, 8}, {512, 16, 32}, {6, 2, 3},
	} {
		pr, pc := grid(tc.n)
		if pr*pc != tc.n {
			t.Errorf("grid(%d) = %dx%d does not cover", tc.n, pr, pc)
		}
		if pr != tc.pr || pc != tc.pc {
			t.Errorf("grid(%d) = %dx%d, want %dx%d", tc.n, pr, pc, tc.pr, tc.pc)
		}
	}
}

func TestMVNMakespanScalesDown(t *testing.T) {
	// More nodes: shorter makespan (strong scaling), for both variants.
	w := Workload{N: 40000, TileSize: 1000, QMC: 10000, SampleTS: 1000, MeanRank: 60}
	prevChol, prevTotal := math.Inf(1), math.Inf(1)
	for _, nodes := range []int{1, 4, 16} {
		chol, pmvn := MVNMakespan(ShaheenII(nodes), w)
		total := chol + pmvn
		if chol <= 0 || pmvn <= 0 {
			t.Fatalf("nodes=%d: nonpositive times %v %v", nodes, chol, pmvn)
		}
		if total >= prevTotal {
			t.Errorf("no strong scaling at %d nodes: %v >= %v", nodes, total, prevTotal)
		}
		if chol >= prevChol {
			t.Errorf("cholesky does not scale at %d nodes", nodes)
		}
		prevChol, prevTotal = chol, total
	}
}

func TestMVNMakespanTLRFasterCholesky(t *testing.T) {
	w := Workload{N: 60000, TileSize: 3000, QMC: 10000, SampleTS: 3000, MeanRank: 80}
	cfg := ShaheenII(16)
	cholD, pmvnD := MVNMakespan(cfg, w)
	w.TLR = true
	cholT, pmvnT := MVNMakespan(cfg, w)
	if cholT >= cholD {
		t.Errorf("TLR cholesky %v not faster than dense %v", cholT, cholD)
	}
	// Propagation is dense in both distributed variants: times comparable.
	if rel := math.Abs(pmvnT-pmvnD) / pmvnD; rel > 0.05 {
		t.Errorf("propagation times should match: %v vs %v", pmvnT, pmvnD)
	}
	// Overall speedup is modest (the paper's 1.3–1.8X regime), bounded by
	// the dense propagation share.
	speedup := (cholD + pmvnD) / (cholT + pmvnT)
	if speedup < 1.05 || speedup > 6 {
		t.Errorf("overall TLR speedup %v outside the plausible range", speedup)
	}
}

func TestMVNMakespanGrowsWithDimension(t *testing.T) {
	cfg := ShaheenII(16)
	prev := 0.0
	for _, n := range []int{20000, 40000, 80000} {
		chol, pmvn := MVNMakespan(cfg, Workload{N: n, TileSize: 2000, QMC: 1000, SampleTS: 2000})
		total := chol + pmvn
		if total <= prev {
			t.Errorf("makespan did not grow with n=%d: %v <= %v", n, total, prev)
		}
		prev = total
	}
}

// TestStreamingMatchesExplicitDAG rebuilds the Cholesky task DAG with the
// explicit Sim API and checks the streaming MVNMakespan computes the same
// makespan — the two engines must implement identical semantics.
func TestStreamingMatchesExplicitDAG(t *testing.T) {
	cfg := Config{Nodes: 4, CoresPerNode: 2, GflopsPerCore: 1, LatencySec: 0.01, BandwidthBps: 1e8}
	w := Workload{N: 50, TileSize: 10, QMC: 20, SampleTS: 10}
	nt := 5
	pr, pc := grid(cfg.Nodes)
	owner := func(i, j int) int { return (i%pr)*pc + j%pc }
	m := float64(w.TileSize)
	tileBytes := m * m * bytesPerFloat

	s := NewSim(cfg)
	diag := make([]*task, nt)
	low := map[[2]int]*task{}
	for kk := 0; kk < nt; kk++ {
		var pd []dataDep
		if diag[kk] != nil {
			pd = append(pd, Dep(diag[kk], 0))
		}
		diag[kk] = s.Add(owner(kk, kk), m*m*m/3, pd...)
		for i := kk + 1; i < nt; i++ {
			deps := []dataDep{Dep(diag[kk], tileBytes)}
			if p, ok := low[[2]int{i, kk}]; ok {
				deps = append(deps, Dep(p, 0))
			}
			low[[2]int{i, kk}] = s.Add(owner(i, kk), m*m*m, deps...)
		}
		for i := kk + 1; i < nt; i++ {
			deps := []dataDep{Dep(low[[2]int{i, kk}], tileBytes)}
			if diag[i] != nil {
				deps = append(deps, Dep(diag[i], 0))
			}
			diag[i] = s.Add(owner(i, i), m*m*m, deps...)
			for j := kk + 1; j < i; j++ {
				gdeps := []dataDep{
					Dep(low[[2]int{i, kk}], tileBytes),
					Dep(low[[2]int{j, kk}], tileBytes),
				}
				if p, ok := low[[2]int{i, j}]; ok {
					gdeps = append(gdeps, Dep(p, 0))
				}
				low[[2]int{i, j}] = s.Add(owner(i, j), 2*m*m*m, gdeps...)
			}
		}
	}
	explicit := s.Run()
	streaming, _ := MVNMakespan(cfg, w)
	if math.Abs(explicit-streaming) > 1e-9*math.Max(explicit, 1) {
		t.Errorf("explicit DAG makespan %v vs streaming %v", explicit, streaming)
	}
}

func TestNewSimPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for zero nodes")
		}
	}()
	NewSim(Config{Nodes: 0, CoresPerNode: 1})
}
