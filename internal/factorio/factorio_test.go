package factorio

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/mvn"
	"repro/internal/tile"
	"repro/internal/tlr"
)

// mat fills a deterministic pseudo-random matrix (xorshift over the seed),
// so every test factor has distinctive, reproducible bit patterns.
func mat(r, c int, seed uint64) *linalg.Matrix {
	m := linalg.NewMatrix(r, c)
	x := seed*2654435761 + 1
	for i := range m.Data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Data[i] = float64(x%100000)/99991 + 0.5
	}
	return m
}

func mat32(r, c int, seed uint64) *tile.Matrix32 {
	m := tile.NewMatrix32(r, c)
	src := mat(r, c, seed)
	for i := range m.Data {
		m.Data[i] = float32(src.Data[i])
	}
	return m
}

// testFactors builds one hand-assembled factor of each concrete type over
// n=10, ts=4 (tile dims 4,4,2 — a ragged edge on purpose).
func testFactors(t *testing.T) map[string]mvn.Factor {
	t.Helper()
	const n, ts = 10, 4
	dims := func(i int) int {
		if i == 2 {
			return 2
		}
		return 4
	}

	dl := tile.New(n, n, ts)
	for i := 0; i < dl.MT; i++ {
		for j := 0; j <= i; j++ {
			dl.SetTile(i, j, mat(dims(i), dims(j), uint64(10*i+j)))
		}
	}

	tl := &tlr.Matrix{N: n, TS: ts, NT: 3, Tol: 1e-5, MaxRank: 2}
	tl.Diag = make([]*linalg.Matrix, 3)
	tl.Low = make([][]*tlr.LRTile, 3)
	for i := 0; i < 3; i++ {
		tl.Diag[i] = mat(dims(i), dims(i), uint64(100+i))
		tl.Low[i] = make([]*tlr.LRTile, i)
		for j := 0; j < i; j++ {
			lr := &tile.LowRank{M: dims(i), N: dims(j)}
			if i != 2 || j != 0 { // leave one rank-0 tile to cover K=0
				lr.U = mat(dims(i), 1, uint64(200+10*i+j))
				lr.V = mat(dims(j), 1, uint64(300+10*i+j))
			}
			tl.Low[i][j] = lr
		}
	}

	g, err := engine.NewGridChecked(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		g.Set(i, i, &tile.DenseF64{D: mat(dims(i), dims(i), uint64(400+i))})
	}
	// Off-diagonal representation mix: every wire kind in one factor.
	g.Set(1, 0, &tile.DenseF32{D: mat32(dims(1), dims(0), 500)})
	g.Set(2, 0, &tile.LowRank{M: dims(2), N: dims(0),
		U: mat(dims(2), 2, 501), V: mat(dims(0), 2, 502)})
	g.Set(2, 1, &tile.DenseF64{D: mat(dims(2), dims(1), 503)})

	return map[string]mvn.Factor{
		"dense": mvn.NewDenseFactor(dl),
		"tlr":   mvn.NewTLRFactor(tl),
		"grid":  mvn.NewGridFactor(g),
	}
}

func encode(t *testing.T, keyBlob []byte, f mvn.Factor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, keyBlob, f); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestRoundTripBitIdentical checks encode→decode→encode fixpoint for every
// factor kind: the re-encoded container is byte-for-byte the original, so
// the decoded factor carries exactly the bits that were stored.
func TestRoundTripBitIdentical(t *testing.T) {
	key := []byte("problem-key-blob")
	for name, f := range testFactors(t) {
		t.Run(name, func(t *testing.T) {
			enc := encode(t, key, f)
			gotKey, dec, err := Decode(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(gotKey, key) {
				t.Errorf("key blob %q, want %q", gotKey, key)
			}
			if dec.N() != f.N() || dec.TS() != f.TS() || dec.NT() != f.NT() {
				t.Fatalf("decoded shape %d/%d/%d, want %d/%d/%d",
					dec.N(), dec.TS(), dec.NT(), f.N(), f.TS(), f.NT())
			}
			if re := encode(t, key, dec); !bytes.Equal(re, enc) {
				t.Errorf("re-encoded container differs from the original (%d vs %d bytes)", len(re), len(enc))
			}
		})
	}
}

// TestDecodeTruncation feeds every proper prefix of a valid container to
// Decode: each must fail with a typed error, never panic, never succeed.
func TestDecodeTruncation(t *testing.T) {
	enc := encode(t, []byte("k"), testFactors(t)["grid"])
	for i := 0; i < len(enc); i++ {
		_, _, err := Decode(bytes.NewReader(enc[:i]))
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", i, len(enc))
		}
		if !errors.Is(err, ErrFormat) {
			t.Fatalf("truncation to %d bytes: error %v, want ErrFormat", i, err)
		}
	}
}

// TestDecodeCorruption flips every byte of a valid container in turn: each
// flip must surface as a typed error (a payload flip as ErrChecksum), and
// none may panic or decode.
func TestDecodeCorruption(t *testing.T) {
	enc := encode(t, []byte("key-blob"), testFactors(t)["tlr"])
	checksum := 0
	for i := 0; i < len(enc); i++ {
		mut := make([]byte, len(enc))
		copy(mut, enc)
		mut[i] ^= 0x40
		_, _, err := Decode(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flipped byte %d decoded successfully", i)
		}
		ok := errors.Is(err, ErrFormat) || errors.Is(err, ErrChecksum) ||
			errors.Is(err, ErrVersion) || errors.Is(err, ErrFeature)
		if !ok {
			t.Fatalf("flipped byte %d: untyped error %v", i, err)
		}
		if errors.Is(err, ErrChecksum) {
			checksum++
		}
	}
	// The overwhelming share of the file is section payload, where a flip
	// must be caught by the section CRC specifically.
	if checksum < len(enc)/2 {
		t.Errorf("only %d/%d flips surfaced as ErrChecksum", checksum, len(enc))
	}
}

// TestDecodeGates checks the version/feature gates and the magic check.
func TestDecodeGates(t *testing.T) {
	enc := encode(t, nil, testFactors(t)["dense"])

	future := make([]byte, len(enc))
	copy(future, enc)
	future[8] = Version + 1 // container version field
	if _, _, err := Decode(bytes.NewReader(future)); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: error %v, want ErrVersion", err)
	}

	feat := make([]byte, len(enc))
	copy(feat, enc)
	feat[12] |= 0x01 // feature bitmask
	if _, _, err := Decode(bytes.NewReader(feat)); !errors.Is(err, ErrFeature) {
		t.Errorf("unknown feature bit: error %v, want ErrFeature", err)
	}

	magic := make([]byte, len(enc))
	copy(magic, enc)
	magic[0] ^= 0xFF
	if _, _, err := Decode(bytes.NewReader(magic)); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic: error %v, want ErrFormat", err)
	}
}

// TestEncodeRejectsUnknownFactor pins the encoder's closed type set.
func TestEncodeRejectsUnknownFactor(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil, nil); err == nil {
		t.Error("encoding a nil factor succeeded")
	}
}

// TestDecodeRejectsShapeLies corrupts structural facts that individual
// section CRCs cannot catch (the lie is checksummed too): a tile payload
// whose shape disagrees with the meta header must be refused after the CRC
// is recomputed to match.
func TestDecodeRejectsShapeLies(t *testing.T) {
	// A dense factor whose meta says n=10 but whose tiles are for n=6.
	small := tile.New(6, 6, 4)
	for i := 0; i < small.MT; i++ {
		for j := 0; j <= i; j++ {
			r, c := 4, 4
			if i == small.MT-1 {
				r = 2
			}
			if j == small.NT-1 {
				c = 2
			}
			small.SetTile(i, j, mat(r, c, uint64(i*10+j)))
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, nil, mvn.NewDenseFactor(small)); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Patch n in the meta section from 6 to 10 and fix up its CRC. Layout:
	// 24-byte header, then sections (id u32, len u64, payload, crc u32);
	// sectionKey payload is empty, so meta's payload starts at 24+16.
	metaOff := 24 + 16 + 12
	if enc[metaOff] != kindDense || enc[metaOff+1] != 6 {
		t.Fatalf("meta starts %d/%d, want kind %d n 6 (layout drifted?)",
			enc[metaOff], enc[metaOff+1], kindDense)
	}
	enc[metaOff+1] = 10
	payload := enc[metaOff : metaOff+21] // kind + n + ts + tol + maxRank
	fixCRC(enc[metaOff+21:], payload)
	if _, _, err := Decode(bytes.NewReader(enc)); !errors.Is(err, ErrFormat) {
		t.Errorf("shape lie: error %v, want ErrFormat", err)
	}
}

// fixCRC recomputes a section CRC in place so a deliberate payload
// mutation tests structural validation, not the checksum.
func fixCRC(dst, payload []byte) {
	c := crc32.Checksum(payload, castagnoli)
	dst[0], dst[1], dst[2], dst[3] = byte(c), byte(c>>8), byte(c>>16), byte(c>>24)
}
