// Package factorio is the persistent serialization format for Cholesky
// factors: a versioned, feature-gated container of checksummed sections
// holding a factor's tiles (in whatever per-tile representations the
// factorization chose) plus an opaque caller key blob identifying the
// problem the factor solves.
//
// Layout (all integers little endian):
//
//	magic   [8]byte  "PMVNFAC1"
//	version u32      container version (currently 1)
//	features u64     feature bitmask; decoders reject unknown bits
//	nsect   u32      section count
//	nsect × sections:
//	    id      u32
//	    length  u64   payload bytes
//	    payload [length]byte
//	    crc     u32   CRC-32C (Castagnoli) of the payload
//
// Every section carries its own checksum, so a flipped byte anywhere in a
// payload is a typed ErrChecksum, not a garbage factor; truncation anywhere
// is a typed ErrFormat; a future container version or an unknown feature
// bit is refused up front (ErrVersion/ErrFeature) instead of misparsed.
// Decode never panics on any input and never allocates more than the input
// length can justify.
//
// The format stores the factor exactly: float payloads are raw IEEE-754
// bit patterns, so a decoded factor answers queries bit-identically to the
// factor that was encoded.
package factorio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/mvn"
	"repro/internal/tile"
	"repro/internal/tlr"
)

// Magic identifies a factor container file.
var Magic = [8]byte{'P', 'M', 'V', 'N', 'F', 'A', 'C', '1'}

// Version is the current container version. Decoders accept only versions
// they know; bumping it is the escape hatch for incompatible layout
// changes, while compatible additions use feature bits.
const Version = 1

// Typed decode failures, distinguishable with errors.Is.
var (
	// ErrFormat: structurally malformed input — bad magic, truncation,
	// impossible lengths, malformed tile payloads.
	ErrFormat = errors.New("factorio: malformed factor file")
	// ErrChecksum: a section's CRC does not match its payload.
	ErrChecksum = errors.New("factorio: section checksum mismatch")
	// ErrVersion: the container version is newer than this decoder.
	ErrVersion = errors.New("factorio: unsupported container version")
	// ErrFeature: the container uses feature bits this decoder lacks.
	ErrFeature = errors.New("factorio: unsupported feature flags")
)

func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// Section ids. Persistent format values — append only.
const (
	sectionKey   = uint32(1) // opaque caller key blob
	sectionMeta  = uint32(2) // factor kind + structural header
	sectionTiles = uint32(3) // tile payloads, order fixed per kind
)

// Factor kind tags inside sectionMeta. Persistent format values.
const (
	kindDense = byte(1) // mvn.DenseFactor (full tiled dense factor)
	kindTLR   = byte(2) // mvn.TLRFactor (dense diagonal + low-rank lower)
	kindGrid  = byte(3) // mvn.GridFactor (adaptive per-tile representations)
)

// maxSectionBytes bounds a single section so a corrupt length cannot drive
// a monster allocation before its checksum is ever verified.
const maxSectionBytes = 1 << 32

// castagnoli is the CRC-32C table (hardware-accelerated on amd64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode writes f and its identifying keyBlob as one container to w.
// Factors must be one of the engine's three concrete types; anything else
// is an error (no partial output discipline is the caller's job — the
// store writes to a temp file and renames).
func Encode(w io.Writer, keyBlob []byte, f mvn.Factor) error {
	meta, tiles, err := encodeFactor(f)
	if err != nil {
		return err
	}
	var hdr []byte
	hdr = append(hdr, Magic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint64(hdr, 0) // no feature bits yet
	hdr = binary.LittleEndian.AppendUint32(hdr, 3) // section count
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, s := range []struct {
		id      uint32
		payload []byte
	}{{sectionKey, keyBlob}, {sectionMeta, meta}, {sectionTiles, tiles}} {
		var sh []byte
		sh = binary.LittleEndian.AppendUint32(sh, s.id)
		sh = binary.LittleEndian.AppendUint64(sh, uint64(len(s.payload)))
		if _, err := w.Write(sh); err != nil {
			return err
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
		var crc []byte
		crc = binary.LittleEndian.AppendUint32(crc, crc32.Checksum(s.payload, castagnoli))
		if _, err := w.Write(crc); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads one container and reconstructs the factor and its key blob.
// All failures are typed: ErrVersion/ErrFeature for gated-out files,
// ErrChecksum for corrupted payloads, ErrFormat for everything structural.
func Decode(r io.Reader) (keyBlob []byte, f mvn.Factor, err error) {
	hdr := make([]byte, 8+4+8+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, nil, formatErr("truncated header: %v", err)
	}
	if [8]byte(hdr[:8]) != Magic {
		return nil, nil, formatErr("bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return nil, nil, fmt.Errorf("%w: file version %d, decoder version %d", ErrVersion, v, Version)
	}
	if feats := binary.LittleEndian.Uint64(hdr[12:]); feats != 0 {
		return nil, nil, fmt.Errorf("%w: unknown feature bits %#x", ErrFeature, feats)
	}
	nsect := binary.LittleEndian.Uint32(hdr[20:])
	if nsect > 64 {
		return nil, nil, formatErr("implausible section count %d", nsect)
	}
	sections := map[uint32][]byte{}
	var sh [12]byte
	for i := uint32(0); i < nsect; i++ {
		if _, err := io.ReadFull(r, sh[:]); err != nil {
			return nil, nil, formatErr("truncated section header: %v", err)
		}
		id := binary.LittleEndian.Uint32(sh[:])
		length := binary.LittleEndian.Uint64(sh[4:])
		if length > maxSectionBytes {
			return nil, nil, formatErr("section %d length %d exceeds the format bound", id, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, nil, formatErr("truncated section %d payload: %v", id, err)
		}
		var crcb [4]byte
		if _, err := io.ReadFull(r, crcb[:]); err != nil {
			return nil, nil, formatErr("truncated section %d checksum: %v", id, err)
		}
		want := binary.LittleEndian.Uint32(crcb[:])
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return nil, nil, fmt.Errorf("%w: section %d crc %#x, want %#x", ErrChecksum, id, got, want)
		}
		if id < sectionKey || id > sectionTiles {
			// Unknown sections are structural corruption, not forward
			// compatibility: compatible additions are signaled by feature
			// bits (checked above), incompatible ones by a version bump.
			return nil, nil, formatErr("unknown section id %d", id)
		}
		if _, dup := sections[id]; dup {
			return nil, nil, formatErr("duplicate section %d", id)
		}
		sections[id] = payload
	}
	for _, id := range []uint32{sectionKey, sectionMeta, sectionTiles} {
		if _, ok := sections[id]; !ok {
			return nil, nil, formatErr("missing section %d", id)
		}
	}
	meta, tiles := sections[sectionMeta], sections[sectionTiles]
	f, err = decodeFactor(meta, tiles)
	if err != nil {
		return nil, nil, err
	}
	return sections[sectionKey], f, nil
}

// metaHeader is the fixed prefix of sectionMeta: kind, n, ts, plus the TLR
// truncation parameters (zero for the other kinds).
func appendMeta(kind byte, n, ts int, tol float64, maxRank int) []byte {
	var b []byte
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = binary.LittleEndian.AppendUint32(b, uint32(ts))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(tol))
	b = binary.LittleEndian.AppendUint32(b, uint32(maxRank))
	return b
}

// encodeFactor flattens one of the three concrete factor types into its
// meta header and tile payload.
func encodeFactor(f mvn.Factor) (meta, tiles []byte, err error) {
	switch ff := f.(type) {
	case *mvn.DenseFactor:
		meta = appendMeta(kindDense, ff.L.M, ff.L.TS, 0, 0)
		// Lower triangle only: the SOV integration reads Diag(k) and the
		// strictly-lower tiles; the upper triangle of a factored tile.Matrix
		// is dead storage and decodes as zeros.
		for i := 0; i < ff.L.MT; i++ {
			for j := 0; j <= i && j < ff.L.NT; j++ {
				tiles = tile.AppendMatrix(tiles, ff.L.Tile(i, j))
			}
		}
		return meta, tiles, nil
	case *mvn.TLRFactor:
		meta = appendMeta(kindTLR, ff.L.N, ff.L.TS, ff.L.Tol, ff.L.MaxRank)
		for k := 0; k < ff.L.NT; k++ {
			tiles = tile.AppendMatrix(tiles, ff.L.Diag[k])
		}
		for i := 1; i < ff.L.NT; i++ {
			for j := 0; j < i; j++ {
				if tiles, err = tile.AppendTile(tiles, ff.L.Low[i][j]); err != nil {
					return nil, nil, err
				}
			}
		}
		return meta, tiles, nil
	case *mvn.GridFactor:
		g := ff.G
		meta = appendMeta(kindGrid, g.N, g.TS, 0, 0)
		for i := 0; i < g.NT; i++ {
			for j := 0; j <= i; j++ {
				t := g.At(i, j)
				if t == nil {
					return nil, nil, fmt.Errorf("factorio: grid tile (%d,%d) unassigned", i, j)
				}
				if tiles, err = tile.AppendTile(tiles, t); err != nil {
					return nil, nil, err
				}
			}
		}
		return meta, tiles, nil
	default:
		return nil, nil, fmt.Errorf("factorio: unencodable factor type %T", f)
	}
}

// decodeFactor reconstructs the factor from its meta header and tile
// payload, validating every structural fact the payload claims against the
// header before installing a tile.
func decodeFactor(meta, tiles []byte) (mvn.Factor, error) {
	if len(meta) < 1+4+4+8+4 {
		return nil, formatErr("meta section too short (%d bytes)", len(meta))
	}
	kind := meta[0]
	n := int(binary.LittleEndian.Uint32(meta[1:]))
	ts := int(binary.LittleEndian.Uint32(meta[5:]))
	tol := math.Float64frombits(binary.LittleEndian.Uint64(meta[9:]))
	maxRank := int(binary.LittleEndian.Uint32(meta[17:]))
	if n <= 0 || ts <= 0 || ts > n {
		return nil, formatErr("impossible factor shape n=%d ts=%d", n, ts)
	}
	nt := (n + ts - 1) / ts
	tileDims := func(i int) int {
		if i == nt-1 {
			if r := n - i*ts; r > 0 {
				return r
			}
		}
		return ts
	}
	wantShape := func(m *linalg.Matrix, r, c int, what string) error {
		if m.Rows != r || m.Cols != c {
			return formatErr("%s is %dx%d, want %dx%d", what, m.Rows, m.Cols, r, c)
		}
		return nil
	}
	switch kind {
	case kindDense:
		l := tile.New(n, n, ts)
		for i := 0; i < nt; i++ {
			for j := 0; j <= i; j++ {
				m, rest, err := tile.DecodeMatrix(tiles)
				if err != nil {
					return nil, err
				}
				if err := wantShape(m, tileDims(i), tileDims(j), fmt.Sprintf("dense tile (%d,%d)", i, j)); err != nil {
					return nil, err
				}
				l.SetTile(i, j, m)
				tiles = rest
			}
		}
		if len(tiles) != 0 {
			return nil, formatErr("%d trailing bytes after dense tiles", len(tiles))
		}
		return mvn.NewDenseFactor(l), nil
	case kindTLR:
		a := &tlr.Matrix{N: n, TS: ts, NT: nt, Tol: tol, MaxRank: maxRank}
		a.Diag = make([]*linalg.Matrix, nt)
		for k := 0; k < nt; k++ {
			m, rest, err := tile.DecodeMatrix(tiles)
			if err != nil {
				return nil, err
			}
			if err := wantShape(m, tileDims(k), tileDims(k), fmt.Sprintf("diagonal tile %d", k)); err != nil {
				return nil, err
			}
			a.Diag[k] = m
			tiles = rest
		}
		a.Low = make([][]*tlr.LRTile, nt)
		for i := 1; i < nt; i++ {
			a.Low[i] = make([]*tlr.LRTile, i)
			for j := 0; j < i; j++ {
				t, rest, err := tile.DecodeTile(tiles)
				if err != nil {
					return nil, err
				}
				lr, ok := t.(*tile.LowRank)
				if !ok {
					return nil, formatErr("TLR tile (%d,%d) decoded as %T, want low rank", i, j, t)
				}
				if lr.M != tileDims(i) || lr.N != tileDims(j) {
					return nil, formatErr("TLR tile (%d,%d) is %dx%d, want %dx%d", i, j, lr.M, lr.N, tileDims(i), tileDims(j))
				}
				a.Low[i][j] = lr
				tiles = rest
			}
		}
		if len(tiles) != 0 {
			return nil, formatErr("%d trailing bytes after TLR tiles", len(tiles))
		}
		return mvn.NewTLRFactor(a), nil
	case kindGrid:
		g, err := engine.NewGridChecked(n, ts)
		if err != nil {
			return nil, formatErr("%v", err)
		}
		for i := 0; i < nt; i++ {
			for j := 0; j <= i; j++ {
				t, rest, err := tile.DecodeTile(tiles)
				if err != nil {
					return nil, err
				}
				r, c := t.Dims()
				if r != tileDims(i) || c != tileDims(j) {
					return nil, formatErr("grid tile (%d,%d) is %dx%d, want %dx%d", i, j, r, c, tileDims(i), tileDims(j))
				}
				if i == j {
					if _, ok := t.(*tile.DenseF64); !ok {
						return nil, formatErr("grid diagonal tile %d decoded as %s, want dense64", i, t.Kind())
					}
				}
				g.Set(i, j, t)
				tiles = rest
			}
		}
		if len(tiles) != 0 {
			return nil, formatErr("%d trailing bytes after grid tiles", len(tiles))
		}
		return mvn.NewGridFactor(g), nil
	default:
		return nil, formatErr("unknown factor kind %d", kind)
	}
}
