package mixprec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

func covGrid(side int, rng float64) *linalg.Matrix {
	g := geo.RegularGrid(side, side)
	return cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: rng})
}

func TestConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := linalg.NewMatrix(7, 5)
	for j := 0; j < 5; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	back := ToSingle(a).ToDouble()
	if d := back.MaxAbsDiff(a); d > 1e-6 {
		t.Errorf("f32 roundtrip error %v", d)
	}
}

func TestGemm32MatchesDouble(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(r, c int) *linalg.Matrix {
		m := linalg.NewMatrix(r, c)
		for j := 0; j < c; j++ {
			col := m.Col(j)
			for i := range col {
				col[i] = rng.NormFloat64()
			}
		}
		return m
	}
	a, b, c := mk(6, 4), mk(5, 4), mk(6, 5)
	want := c.Clone()
	linalg.Gemm(false, true, -1, a, b, 1, want)
	c32 := ToSingle(c)
	Gemm32(true, -1, ToSingle(a), ToSingle(b), c32)
	if d := c32.ToDouble().MaxAbsDiff(want); d > 1e-5 {
		t.Errorf("Gemm32 transB diff %v", d)
	}
	// No-transpose variant.
	b2 := mk(4, 5)
	want2 := c.Clone()
	linalg.Gemm(false, false, 2, a, b2, 1, want2)
	c322 := ToSingle(c)
	Gemm32(false, 2, ToSingle(a), ToSingle(b2), c322)
	if d := c322.ToDouble().MaxAbsDiff(want2); d > 1e-5 {
		t.Errorf("Gemm32 notrans diff %v", d)
	}
}

func TestSyrk32MatchesDouble(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := linalg.NewMatrix(5, 3)
	for j := 0; j < 3; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	c := linalg.NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		c.Set(i, i, 10)
	}
	want := c.Clone()
	linalg.Syrk(false, -1, a, 1, want)
	c32 := ToSingle(c)
	Syrk32(-1, ToSingle(a), c32)
	got := c32.ToDouble()
	for j := 0; j < 5; j++ {
		for i := j; i < 5; i++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-5 {
				t.Fatalf("Syrk32 mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPotrf32Reconstructs(t *testing.T) {
	sigma := covGrid(5, 0.2)
	s := ToSingle(sigma)
	if err := Potrf32(s); err != nil {
		t.Fatal(err)
	}
	l := s.ToDouble()
	l.LowerFromFull()
	rec := linalg.NewMatrix(25, 25)
	linalg.Gemm(false, true, 1, l, l, 0, rec)
	if d := rec.MaxAbsDiff(sigma); d > 1e-4 {
		t.Errorf("f32 LLᵀ residual %v", d)
	}
}

func TestPotrf32RejectsIndefinite(t *testing.T) {
	a := linalg.Eye(4)
	a.Set(2, 2, -1)
	if err := Potrf32(ToSingle(a)); err == nil {
		t.Error("want error for indefinite matrix")
	}
}

func TestMixedPotrfAccuracyLadder(t *testing.T) {
	// Residual should improve monotonically (up to noise) as the double-
	// precision band widens, and hit f64 accuracy at full band.
	sigma := covGrid(8, 0.15) // n=64
	want, err := linalg.Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	ts := 8 // 8x8 tiles
	var errs []float64
	for _, band := range []int{0, 2, 7} {
		rt := taskrt.New(3)
		f, err := Potrf(rt, tile.FromDense(sigma, ts), band)
		rt.Shutdown()
		if err != nil {
			t.Fatalf("band %d: %v", band, err)
		}
		d := f.ToDense().MaxAbsDiff(want)
		errs = append(errs, d)
	}
	if errs[2] > 1e-12 {
		t.Errorf("full-band mixed factorization differs from f64 by %v", errs[2])
	}
	if errs[0] < errs[2] {
		t.Errorf("band 0 cannot beat full double precision: %v", errs)
	}
	// Single precision should still be near-f32-accurate.
	if errs[0] > 1e-3 {
		t.Errorf("band 0 error %v too large", errs[0])
	}
	if errs[1] > errs[0]+1e-12 {
		t.Errorf("widening the band did not help: %v", errs)
	}
}

func TestMixedPotrfDeterministicAcrossWorkers(t *testing.T) {
	sigma := covGrid(6, 0.2)
	var ref *linalg.Matrix
	for _, w := range []int{1, 4} {
		rt := taskrt.New(w)
		f, err := Potrf(rt, tile.FromDense(sigma, 9), 1)
		rt.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		d := f.ToDense()
		if ref == nil {
			ref = d
		} else if diff := d.MaxAbsDiff(ref); diff != 0 {
			t.Errorf("worker count changed mixed factor by %v", diff)
		}
	}
}

func TestMixedPotrfNonSquare(t *testing.T) {
	rt := taskrt.New(1)
	defer rt.Shutdown()
	if _, err := Potrf(rt, tile.New(4, 6, 2), 1); err == nil {
		t.Error("want error for non-square matrix")
	}
}

func TestSinglePotrfMatchesPotrf32(t *testing.T) {
	sigma := covGrid(4, 0.25)
	l, err := SinglePotrf(sigma)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := linalg.Cholesky(sigma)
	if d := l.MaxAbsDiff(want); d > 1e-4 {
		t.Errorf("single-precision factor off by %v", d)
	}
}
