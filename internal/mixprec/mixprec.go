// Package mixprec implements the paper's stated future-work direction:
// multi-precision execution of the tiled Cholesky factorization. Tiles far
// from the diagonal — whose entries are small and whose contribution to the
// factor is already at the TLR-accuracy level — are stored and updated in
// float32, while the diagonal band stays in float64. The package provides
// the float32 tile kernels (GEMM/SYRK/TRSM/POTRF), the banded-precision
// tiled factorization on the task runtime, and conversion utilities, so the
// accuracy/performance trade-off the paper anticipates can be measured.
package mixprec

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Matrix32 is a dense column-major float32 matrix (the single-precision
// mirror of linalg.Matrix).
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len Rows*Cols, column-major, stride = Rows
}

// NewMatrix32 returns a zeroed r×c float32 matrix.
func NewMatrix32(r, c int) *Matrix32 {
	return &Matrix32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// At returns element (i,j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i+j*m.Rows] }

// Set assigns element (i,j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i+j*m.Rows] = v }

// Col returns column j.
func (m *Matrix32) Col(j int) []float32 { return m.Data[j*m.Rows : (j+1)*m.Rows] }

// ToSingle converts a float64 matrix to float32.
func ToSingle(a *linalg.Matrix) *Matrix32 {
	out := NewMatrix32(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		src := a.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float32(v)
		}
	}
	return out
}

// ToDouble converts back to float64.
func (m *Matrix32) ToDouble() *linalg.Matrix {
	out := linalg.NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float64(v)
		}
	}
	return out
}

// Gemm32 computes C += alpha·A·Bᵀ (transB=true) or C += alpha·A·B in
// float32; the only variants the Cholesky update needs.
func Gemm32(transB bool, alpha float32, a, b, c *Matrix32) {
	if !transB {
		if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
			panic("mixprec: Gemm32 shape mismatch")
		}
		for j := 0; j < c.Cols; j++ {
			cc, bc := c.Col(j), b.Col(j)
			for l := 0; l < a.Cols; l++ {
				v := alpha * bc[l]
				if v == 0 {
					continue
				}
				ac := a.Col(l)
				for i := range cc {
					cc[i] += v * ac[i]
				}
			}
		}
		return
	}
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("mixprec: Gemm32 shape mismatch")
	}
	for l := 0; l < a.Cols; l++ {
		ac, bc := a.Col(l), b.Col(l)
		for j := 0; j < c.Cols; j++ {
			v := alpha * bc[j]
			if v == 0 {
				continue
			}
			cc := c.Col(j)
			for i := range cc {
				cc[i] += v * ac[i]
			}
		}
	}
}

// Syrk32 computes the lower triangle of C += alpha·A·Aᵀ in float32.
func Syrk32(alpha float32, a, c *Matrix32) {
	n := a.Rows
	if c.Rows != n || c.Cols != n {
		panic("mixprec: Syrk32 shape mismatch")
	}
	for l := 0; l < a.Cols; l++ {
		al := a.Col(l)
		for j := 0; j < n; j++ {
			v := alpha * al[j]
			if v == 0 {
				continue
			}
			cc := c.Col(j)
			for i := j; i < n; i++ {
				cc[i] += v * al[i]
			}
		}
	}
}

// TrsmRightLowerTrans32 solves X·Lᵀ = B in float32, overwriting b, for
// lower-triangular l (the panel update of the right-looking Cholesky).
func TrsmRightLowerTrans32(l, b *Matrix32) {
	n := l.Rows
	if l.Cols != n || b.Cols != n {
		panic("mixprec: Trsm32 shape mismatch")
	}
	for k := 0; k < n; k++ {
		xk := b.Col(k)
		for i := 0; i < k; i++ {
			v := l.At(k, i)
			if v == 0 {
				continue
			}
			xi := b.Col(i)
			for r := range xk {
				xk[r] -= v * xi[r]
			}
		}
		inv := 1 / l.At(k, k)
		for r := range xk {
			xk[r] *= inv
		}
	}
}

// Potrf32 factorizes the lower triangle in float32.
func Potrf32(a *Matrix32) error {
	n := a.Rows
	for k := 0; k < n; k++ {
		ck := a.Col(k)
		d := ck[k]
		if d <= 0 || d != d {
			return fmt.Errorf("mixprec: %w (pivot %d = %g)", linalg.ErrNotPositiveDefinite, k, d)
		}
		s := float32(math.Sqrt(float64(d)))
		ck[k] = s
		inv := 1 / s
		for i := k + 1; i < n; i++ {
			ck[i] *= inv
		}
		for j := k + 1; j < n; j++ {
			v := ck[j]
			if v == 0 {
				continue
			}
			cj := a.Col(j)
			for i := j; i < n; i++ {
				cj[i] -= v * ck[i]
			}
		}
	}
	return nil
}

// Factorization holds a banded mixed-precision Cholesky factor: tiles with
// |i−j| ≤ Band in float64, the rest in float32.
type Factorization struct {
	N, TS, NT int
	Band      int
	D64       [][]*linalg.Matrix // D64[i][j] for |i-j| <= band (lower)
	D32       [][]*Matrix32      // D32[i][j] for |i-j| >  band (lower)
}

// Tile64 reports whether lower tile (i,j) is kept in double precision.
func (f *Factorization) Tile64(i, j int) bool { return i-j <= f.Band }

// Potrf computes the banded mixed-precision tiled Cholesky of the symmetric
// tiled matrix a: the right-looking tile algorithm with all kernels touching
// only far-from-diagonal tiles executed in float32. band is the number of
// sub-diagonals kept in float64 (band ≥ nt-1 degenerates to the full
// double-precision factorization).
func Potrf(rt taskrt.Submitter, a *tile.Matrix, band int) (*Factorization, error) {
	if a.M != a.N {
		return nil, fmt.Errorf("mixprec: Potrf needs square matrix, got %dx%d", a.M, a.N)
	}
	if band < 0 {
		band = 0
	}
	nt := a.MT
	f := &Factorization{N: a.M, TS: a.TS, NT: nt, Band: band}
	f.D64 = make([][]*linalg.Matrix, nt)
	f.D32 = make([][]*Matrix32, nt)
	h := make([][]*taskrt.Handle, nt)
	for i := 0; i < nt; i++ {
		f.D64[i] = make([]*linalg.Matrix, i+1)
		f.D32[i] = make([]*Matrix32, i+1)
		h[i] = make([]*taskrt.Handle, i+1)
		for j := 0; j <= i; j++ {
			h[i][j] = rt.NewHandle("M(%d,%d)", i, j)
			if f.Tile64(i, j) {
				f.D64[i][j] = a.Tile(i, j).Clone()
			} else {
				f.D32[i][j] = ToSingle(a.Tile(i, j))
			}
		}
	}
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for k := 0; k < nt; k++ {
		k := k
		dk := f.D64[k][k] // diagonal always double
		rt.Submit("potrf", 3*nt-3*k, func() {
			if err := linalg.PotrfUnblocked(dk); err != nil {
				setErr(fmt.Errorf("mixprec: tile (%d,%d): %w", k, k, err))
			}
		}, taskrt.ReadWrite(h[k][k]))
		// The float32 TRSM needs the factored diagonal tile converted once.
		var dk32 *Matrix32
		var dk32H *taskrt.Handle
		needs32 := k+band+1 < nt
		if needs32 {
			dk32H = rt.NewHandle("D32(%d)", k)
			rt.Submit("convert", 3*nt-3*k, func() {
				dk32 = ToSingle(dk)
			}, taskrt.Read(h[k][k]), taskrt.Write(dk32H))
		}
		for i := k + 1; i < nt; i++ {
			i := i
			if f.Tile64(i, k) {
				aik := f.D64[i][k]
				rt.Submit("trsm", 3*nt-3*k-1, func() {
					linalg.TrsmLower(linalg.Right, true, 1, dk, aik)
				}, taskrt.Read(h[k][k]), taskrt.ReadWrite(h[i][k]))
			} else {
				rt.Submit("trsm32", 3*nt-3*k-1, func() {
					TrsmRightLowerTrans32(dk32, f.D32[i][k])
				}, taskrt.Read(dk32H), taskrt.ReadWrite(h[i][k]))
			}
		}
		for i := k + 1; i < nt; i++ {
			i := i
			for j := k + 1; j <= i; j++ {
				j := j
				deps := []taskrt.Dep{taskrt.Read(h[i][k]), taskrt.Read(h[j][k]), taskrt.ReadWrite(h[i][j])}
				rt.Submit("update", 3*nt-3*k-2, func() {
					f.update(i, j, k)
				}, deps...)
			}
		}
	}
	rt.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for k := 0; k < nt; k++ {
		f.D64[k][k].LowerFromFull()
	}
	return f, nil
}

// update applies A(i,j) -= A(i,k)·A(j,k)ᵀ choosing the precision of the
// destination tile; operands are converted on the fly when they live in the
// other precision.
func (f *Factorization) update(i, j, k int) {
	if f.Tile64(i, j) {
		ai := f.tileAs64(i, k)
		aj := f.tileAs64(j, k)
		if i == j {
			linalg.Syrk(false, -1, ai, 1, f.D64[i][j])
		} else {
			linalg.Gemm(false, true, -1, ai, aj, 1, f.D64[i][j])
		}
		return
	}
	ai := f.tileAs32(i, k)
	aj := f.tileAs32(j, k)
	if i == j {
		Syrk32(-1, ai, f.D32[i][j])
	} else {
		Gemm32(true, -1, ai, aj, f.D32[i][j])
	}
}

func (f *Factorization) tileAs64(i, j int) *linalg.Matrix {
	if f.Tile64(i, j) {
		return f.D64[i][j]
	}
	return f.D32[i][j].ToDouble()
}

func (f *Factorization) tileAs32(i, j int) *Matrix32 {
	if f.Tile64(i, j) {
		return ToSingle(f.D64[i][j])
	}
	return f.D32[i][j]
}

// ToDense reassembles the full factor in float64 for accuracy studies.
func (f *Factorization) ToDense() *linalg.Matrix {
	out := linalg.NewMatrix(f.N, f.N)
	for i := 0; i < f.NT; i++ {
		for j := 0; j <= i; j++ {
			var t *linalg.Matrix
			if f.Tile64(i, j) {
				t = f.D64[i][j]
			} else {
				t = f.D32[i][j].ToDouble()
			}
			out.View(i*f.TS, j*f.TS, t.Rows, t.Cols).CopyFrom(t)
		}
	}
	return out
}

// SinglePotrf factorizes entirely in float32 (band = -1 conceptually): the
// reference point for the precision/accuracy trade-off.
func SinglePotrf(a *linalg.Matrix) (*linalg.Matrix, error) {
	s := ToSingle(a)
	if err := Potrf32(s); err != nil {
		return nil, err
	}
	l := s.ToDouble()
	l.LowerFromFull()
	return l, nil
}
