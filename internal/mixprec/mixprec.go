// Package mixprec implements the paper's stated future-work direction:
// multi-precision execution of the tiled Cholesky factorization. Tiles far
// from the diagonal — whose entries are small and whose contribution to the
// factor is already at the TLR-accuracy level — are stored and updated in
// float32, while the diagonal band stays in float64. The banded layout is a
// thin constructor over the unified factorization engine, which owns the
// task graph and the per-representation kernels; the float32 matrix type and
// kernels themselves live in package tile and are re-exported here.
package mixprec

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/taskrt"
	"repro/internal/tile"
)

// Matrix32 is a dense column-major float32 matrix (the single-precision
// mirror of linalg.Matrix), shared with the engine's DenseF32 tiles.
type Matrix32 = tile.Matrix32

// NewMatrix32 returns a zeroed r×c float32 matrix.
func NewMatrix32(r, c int) *Matrix32 { return tile.NewMatrix32(r, c) }

// ToSingle converts a float64 matrix to float32.
func ToSingle(a *linalg.Matrix) *Matrix32 { return tile.ToSingle(a) }

// Gemm32 computes C += alpha·A·Bᵀ (transB=true) or C += alpha·A·B in
// float32; the only variants the Cholesky update needs.
func Gemm32(transB bool, alpha float32, a, b, c *Matrix32) { tile.Gemm32(transB, alpha, a, b, c) }

// Syrk32 computes the lower triangle of C += alpha·A·Aᵀ in float32.
func Syrk32(alpha float32, a, c *Matrix32) { tile.Syrk32(alpha, a, c) }

// TrsmRightLowerTrans32 solves X·Lᵀ = B in float32, overwriting b, for
// lower-triangular l (the panel update of the right-looking Cholesky).
func TrsmRightLowerTrans32(l, b *Matrix32) { tile.TrsmRightLowerTrans32(l, b) }

// Potrf32 factorizes the lower triangle in float32.
func Potrf32(a *Matrix32) error { return tile.Potrf32(a) }

// Factorization holds a banded mixed-precision Cholesky factor: tiles with
// |i−j| ≤ Band in float64, the rest in float32.
type Factorization struct {
	N, TS, NT int
	Band      int
	D64       [][]*linalg.Matrix // D64[i][j] for |i-j| <= band (lower)
	D32       [][]*Matrix32      // D32[i][j] for |i-j| >  band (lower)
}

// Tile64 reports whether lower tile (i,j) is kept in double precision.
func (f *Factorization) Tile64(i, j int) bool { return i-j <= f.Band }

// Potrf computes the banded mixed-precision tiled Cholesky of the symmetric
// tiled matrix a: the right-looking tile algorithm with all kernels touching
// only far-from-diagonal tiles executed in float32. band is the number of
// sub-diagonals kept in float64 (band ≥ nt-1 degenerates to the full
// double-precision factorization). The task graph is the unified engine's;
// this function only lays out the banded representation mix.
func Potrf(rt taskrt.Submitter, a *tile.Matrix, band int) (*Factorization, error) {
	if a.M != a.N {
		return nil, fmt.Errorf("mixprec: Potrf needs square matrix, got %dx%d", a.M, a.N)
	}
	if band < 0 {
		band = 0
	}
	nt := a.MT
	f := &Factorization{N: a.M, TS: a.TS, NT: nt, Band: band}
	f.D64 = make([][]*linalg.Matrix, nt)
	f.D32 = make([][]*Matrix32, nt)
	g := engine.NewGrid(a.M, a.TS)
	for i := 0; i < nt; i++ {
		f.D64[i] = make([]*linalg.Matrix, i+1)
		f.D32[i] = make([]*Matrix32, i+1)
		for j := 0; j <= i; j++ {
			if f.Tile64(i, j) {
				f.D64[i][j] = a.Tile(i, j).Clone()
				g.Set(i, j, &tile.DenseF64{D: f.D64[i][j]})
			} else {
				f.D32[i][j] = ToSingle(a.Tile(i, j))
				g.Set(i, j, &tile.DenseF32{D: f.D32[i][j]})
			}
		}
	}
	if err := engine.Potrf(rt, g, engine.Config{}); err != nil {
		return nil, err
	}
	return f, nil
}

// ToDense reassembles the full factor in float64 for accuracy studies.
func (f *Factorization) ToDense() *linalg.Matrix {
	out := linalg.NewMatrix(f.N, f.N)
	for i := 0; i < f.NT; i++ {
		for j := 0; j <= i; j++ {
			var t *linalg.Matrix
			if f.Tile64(i, j) {
				t = f.D64[i][j]
			} else {
				t = f.D32[i][j].ToDouble()
			}
			out.View(i*f.TS, j*f.TS, t.Rows, t.Cols).CopyFrom(t)
		}
	}
	return out
}

// SinglePotrf factorizes entirely in float32 (band = -1 conceptually): the
// reference point for the precision/accuracy trade-off.
func SinglePotrf(a *linalg.Matrix) (*linalg.Matrix, error) {
	s := ToSingle(a)
	if err := Potrf32(s); err != nil {
		return nil, err
	}
	l := s.ToDouble()
	l.LowerFromFull()
	return l, nil
}
