package cov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/linalg"
)

func TestMaternHalfIntegerMatchesExponential(t *testing.T) {
	// Matérn with ν=1/2 reduces to the exponential kernel.
	m := NewMatern(2.5, 0.3, 0.5)
	e := &Exponential{Sigma2: 2.5, Range: 0.3}
	for _, h := range []float64{0, 0.01, 0.1, 0.5, 1, 3} {
		if got, want := m.Cov(h), e.Cov(h); math.Abs(got-want) > 1e-12*want && math.Abs(got-want) > 1e-15 {
			t.Errorf("ν=1/2 Matérn(%v) = %v, exponential = %v", h, got, want)
		}
	}
}

func TestMaternNu15ClosedForm(t *testing.T) {
	// ν=3/2: C(h) = σ²(1 + h/a)·exp(−h/a).
	m := NewMatern(1, 0.2, 1.5)
	for _, h := range []float64{0.05, 0.2, 0.7} {
		tt := h / 0.2
		want := (1 + tt) * math.Exp(-tt)
		if got := m.Cov(h); math.Abs(got-want) > 1e-12 {
			t.Errorf("ν=3/2 Matérn(%v) = %v, want %v", h, got, want)
		}
	}
}

func TestMaternNu25ClosedForm(t *testing.T) {
	// ν=5/2: C(h) = σ²(1 + t + t²/3)·exp(−t), t = h/a.
	m := NewMatern(1, 0.5, 2.5)
	for _, h := range []float64{0.1, 0.4, 1.2} {
		tt := h / 0.5
		want := (1 + tt + tt*tt/3) * math.Exp(-tt)
		if got := m.Cov(h); math.Abs(got-want) > 1e-12 {
			t.Errorf("ν=5/2 Matérn(%v) = %v, want %v", h, got, want)
		}
	}
}

func TestMaternGeneralProperties(t *testing.T) {
	// The wind-dataset smoothness ν=1.43391 exercises the general K_ν path.
	m := NewMatern(1, 0.005069, 1.43391)
	if got := m.Cov(0); got != 1 {
		t.Errorf("C(0) = %v, want 1", got)
	}
	prev := m.Cov(1e-6)
	if prev > 1 {
		t.Errorf("C(h) exceeded variance: %v", prev)
	}
	for _, h := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1} {
		c := m.Cov(h)
		if c > prev+1e-12 {
			t.Errorf("Matérn not decreasing at h=%v: %v > %v", h, c, prev)
		}
		if c < 0 {
			t.Errorf("negative covariance at h=%v: %v", h, c)
		}
		prev = c
	}
	// Continuity at h→0 of the general-ν path.
	if c := m.Cov(1e-12); math.Abs(c-1) > 1e-6 {
		t.Errorf("C(h→0) = %v, want →1", c)
	}
}

func TestMaternPanicsOnBadParams(t *testing.T) {
	for _, p := range [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatern%v should panic", p)
				}
			}()
			NewMatern(p[0], p[1], p[2])
		}()
	}
}

func TestPoweredExponential(t *testing.T) {
	p := &PoweredExponential{Sigma2: 2, Range: 0.5, Power: 1}
	e := &Exponential{Sigma2: 2, Range: 0.5}
	for _, h := range []float64{0, 0.2, 1} {
		if math.Abs(p.Cov(h)-e.Cov(h)) > 1e-14 {
			t.Errorf("power=1 should equal exponential at h=%v", h)
		}
	}
	g := &PoweredExponential{Sigma2: 1, Range: 0.5, Power: 2}
	if got, want := g.Cov(0.5), math.Exp(-1); math.Abs(got-want) > 1e-14 {
		t.Errorf("gaussian kernel at range: %v want %v", got, want)
	}
}

func TestNugget(t *testing.T) {
	n := &Nugget{Kernel: &Exponential{Sigma2: 1, Range: 0.1}, Tau2: 0.25}
	if got := n.Cov(0); math.Abs(got-1.25) > 1e-14 {
		t.Errorf("nugget C(0) = %v, want 1.25", got)
	}
	if got := n.Cov(0.1); math.Abs(got-math.Exp(-1)) > 1e-14 {
		t.Errorf("nugget C(h>0) = %v, want %v", got, math.Exp(-1))
	}
	if got := n.Variance(); got != 1.25 {
		t.Errorf("Variance = %v", got)
	}
}

func TestMatrixSymmetricUnitDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := geo.UniformRandom(30, rng)
	k := &Exponential{Sigma2: 1.5, Range: 0.1}
	s := Matrix(g, k)
	for i := 0; i < 30; i++ {
		if s.At(i, i) != 1.5 {
			t.Fatalf("diagonal %v", s.At(i, i))
		}
		for j := 0; j < 30; j++ {
			if s.At(i, j) != s.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
			want := k.Cov(g.Dist(i, j))
			if math.Abs(s.At(i, j)-want) > 1e-15 {
				t.Fatalf("value mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixIsPositiveDefinite(t *testing.T) {
	// Exponential covariance on distinct points is strictly PD; Cholesky
	// must succeed across correlation strengths including the paper's three.
	rng := rand.New(rand.NewSource(2))
	g := geo.JitteredGrid(7, 7, 0.3, rng)
	for _, rng2 := range []float64{0.033, 0.1, 0.234} {
		s := Matrix(g, &Exponential{Sigma2: 1, Range: rng2})
		if _, err := linalg.Cholesky(s); err != nil {
			t.Errorf("range %v: %v", rng2, err)
		}
	}
}

func TestBlockMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := geo.UniformRandom(20, rng)
	k := NewMatern(1, 0.1, 1.5)
	full := Matrix(g, k)
	blk := linalg.NewMatrix(5, 7)
	Block(blk, g, k, 10, 3)
	for j := 0; j < 7; j++ {
		for i := 0; i < 5; i++ {
			if blk.At(i, j) != full.At(10+i, 3+j) {
				t.Fatalf("Block(%d,%d) = %v, want %v", i, j, blk.At(i, j), full.At(10+i, 3+j))
			}
		}
	}
}

func TestCrossMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := geo.UniformRandom(6, rng)
	b := geo.UniformRandom(9, rng)
	k := &Exponential{Sigma2: 1, Range: 0.2}
	c := CrossMatrix(a, b, k)
	if c.Rows != 6 || c.Cols != 9 {
		t.Fatalf("shape %dx%d", c.Rows, c.Cols)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 9; j++ {
			want := k.Cov(a.Pts[i].Dist(b.Pts[j]))
			if c.At(i, j) != want {
				t.Fatalf("cross (%d,%d)", i, j)
			}
		}
	}
}

func TestPosteriorShrinksVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := geo.JitteredGrid(6, 6, 0.2, rng)
	sigma := Matrix(g, &Exponential{Sigma2: 1, Range: 0.2})
	mu := make([]float64, g.Len())
	obs := []int{0, 7, 14, 21, 28, 35}
	y := make([]float64, len(obs))
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	post, muPost, err := Posterior(sigma, mu, obs, y, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Len(); i++ {
		if post.At(i, i) >= sigma.At(i, i)+1e-12 {
			t.Errorf("posterior variance at %d did not shrink: %v vs %v", i, post.At(i, i), sigma.At(i, i))
		}
		if post.At(i, i) <= 0 {
			t.Errorf("posterior variance at %d nonpositive", i)
		}
	}
	if len(muPost) != g.Len() {
		t.Fatalf("muPost length %d", len(muPost))
	}
	// Observed locations should move toward their observations.
	for k, i := range obs {
		if y[k] != 0 && math.Signbit(muPost[i]) != math.Signbit(y[k]) && math.Abs(muPost[i]) > 0.3*math.Abs(y[k]) {
			t.Errorf("posterior mean at observed %d has wrong sign: %v vs y=%v", i, muPost[i], y[k])
		}
	}
}

func TestPosteriorAgainstDirectFormula(t *testing.T) {
	// Compare against literally materializing A and computing eq. 7–8.
	rng := rand.New(rand.NewSource(6))
	g := geo.UniformRandom(12, rng)
	sigma := Matrix(g, &Exponential{Sigma2: 1, Range: 0.3})
	mu := make([]float64, 12)
	for i := range mu {
		mu[i] = rng.NormFloat64() * 0.1
	}
	obs := []int{2, 5, 9}
	y := []float64{1, -0.5, 0.2}
	tau2 := 0.25

	a := linalg.NewMatrix(3, 12)
	for k, i := range obs {
		a.Set(k, i, 1)
	}
	prior, _ := linalg.InvSPD(sigma)
	ata := linalg.NewMatrix(12, 12)
	linalg.Gemm(true, false, 1/tau2, a, a, 0, ata)
	for j := 0; j < 12; j++ {
		for i := 0; i < 12; i++ {
			prior.Add(i, j, ata.At(i, j))
		}
	}
	wantPost, _ := linalg.InvSPD(prior)
	resid := make([]float64, 3)
	for k, i := range obs {
		resid[k] = (y[k] - mu[i]) / tau2
	}
	rhs := make([]float64, 12)
	linalg.Gemv(true, 1, a, resid, 0, rhs)
	wantMu := make([]float64, 12)
	copy(wantMu, mu)
	linalg.Gemv(false, 1, wantPost, rhs, 1, wantMu)

	post, muPost, err := Posterior(sigma, mu, obs, y, tau2)
	if err != nil {
		t.Fatal(err)
	}
	if d := post.MaxAbsDiff(wantPost); d > 1e-9 {
		t.Errorf("posterior covariance diff %v", d)
	}
	for i := range muPost {
		if math.Abs(muPost[i]-wantMu[i]) > 1e-9 {
			t.Errorf("posterior mean[%d] = %v, want %v", i, muPost[i], wantMu[i])
		}
	}
}

func TestPosteriorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := geo.UniformRandom(5, rng)
	sigma := Matrix(g, &Exponential{Sigma2: 1, Range: 0.2})
	if _, _, err := Posterior(sigma, make([]float64, 4), nil, nil, 1); err == nil {
		t.Error("want error for mu length mismatch")
	}
	if _, _, err := Posterior(sigma, make([]float64, 5), []int{0}, nil, 1); err == nil {
		t.Error("want error for obs/y mismatch")
	}
	if _, _, err := Posterior(sigma, make([]float64, 5), []int{9}, []float64{1}, 1); err == nil {
		t.Error("want error for out-of-range index")
	}
}

func TestKernelParamsRoundTrip(t *testing.T) {
	f := func(s, r, nu float64) bool {
		s2 := math.Abs(s) + 0.1
		rr := math.Abs(r) + 0.01
		nn := math.Mod(math.Abs(nu), 3) + 0.1
		m := NewMatern(s2, rr, nn)
		p := m.Params()
		return p[0] == s2 && p[1] == rr && p[2] == nn && m.Variance() == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
