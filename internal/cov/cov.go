// Package cov builds covariance matrices from spatial geometries and
// stationary covariance kernels — the Matérn family the paper uses
// (equation 6) plus the exponential and powered-exponential kernels of its
// synthetic datasets — and implements the posterior covariance/mean update
// (equations 7–8) used in the confidence-region experiments. It replaces the
// covariance module of ExaGeoStat.
package cov

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// Kernel is a stationary isotropic covariance function C(h) of the distance
// h between two locations.
type Kernel interface {
	// Cov returns C(h) for distance h ≥ 0.
	Cov(h float64) float64
	// Variance returns C(0), the marginal variance.
	Variance() float64
	// Params returns the parameter vector in ExaGeoStat order
	// (variance, range, smoothness) where applicable.
	Params() []float64
}

// Matern is the Matérn covariance (paper eq. 6):
//
//	C(h) = σ²/(2^{ν-1}·Γ(ν)) · (h/a)^ν · K_ν(h/a)
//
// with marginal variance σ², spatial range a and smoothness ν.
type Matern struct {
	Sigma2 float64 // σ² > 0
	Range  float64 // a > 0
	Nu     float64 // ν > 0
	norm   float64 // cached 1/(2^{ν-1}Γ(ν))
}

// NewMatern returns a Matérn kernel; it panics on non-positive parameters.
func NewMatern(sigma2, rang, nu float64) *Matern {
	if sigma2 <= 0 || rang <= 0 || nu <= 0 {
		panic(fmt.Sprintf("cov: invalid Matérn parameters (%g,%g,%g)", sigma2, rang, nu))
	}
	return &Matern{
		Sigma2: sigma2, Range: rang, Nu: nu,
		norm: 1 / (math.Pow(2, nu-1) * math.Gamma(nu)),
	}
}

// Cov implements Kernel.
func (m *Matern) Cov(h float64) float64 {
	if h == 0 {
		return m.Sigma2
	}
	t := h / m.Range
	v := m.Sigma2 * m.norm * math.Pow(t, m.Nu) * stats.BesselK(m.Nu, t)
	if math.IsNaN(v) || v < 0 {
		return 0 // deep underflow at extreme distances
	}
	return math.Min(v, m.Sigma2)
}

// Variance implements Kernel.
func (m *Matern) Variance() float64 { return m.Sigma2 }

// Params implements Kernel.
func (m *Matern) Params() []float64 { return []float64{m.Sigma2, m.Range, m.Nu} }

// Exponential is C(h) = σ²·exp(−h/a), the Matérn kernel with ν = 1/2,
// evaluated in closed form. The paper's synthetic datasets use this kernel
// with ranges 0.033 (weak), 0.1 (medium) and 0.234 (strong correlation).
type Exponential struct {
	Sigma2 float64
	Range  float64
}

// Cov implements Kernel.
func (e *Exponential) Cov(h float64) float64 { return e.Sigma2 * math.Exp(-h/e.Range) }

// Variance implements Kernel.
func (e *Exponential) Variance() float64 { return e.Sigma2 }

// Params implements Kernel.
func (e *Exponential) Params() []float64 { return []float64{e.Sigma2, e.Range, 0.5} }

// PoweredExponential is C(h) = σ²·exp(−(h/a)^p) for 0 < p ≤ 2.
type PoweredExponential struct {
	Sigma2 float64
	Range  float64
	Power  float64
}

// Cov implements Kernel.
func (p *PoweredExponential) Cov(h float64) float64 {
	return p.Sigma2 * math.Exp(-math.Pow(h/p.Range, p.Power))
}

// Variance implements Kernel.
func (p *PoweredExponential) Variance() float64 { return p.Sigma2 }

// Params implements Kernel.
func (p *PoweredExponential) Params() []float64 { return []float64{p.Sigma2, p.Range, p.Power} }

// Nugget wraps a kernel with additive white noise of variance Tau2 at
// distance zero, i.e. C'(0) = C(0) + τ², C'(h) = C(h) for h > 0. A small
// nugget keeps near-duplicate locations numerically positive definite.
type Nugget struct {
	Kernel
	Tau2 float64
}

// Cov implements Kernel.
func (n *Nugget) Cov(h float64) float64 {
	c := n.Kernel.Cov(h)
	if h == 0 {
		c += n.Tau2
	}
	return c
}

// Variance implements Kernel.
func (n *Nugget) Variance() float64 { return n.Kernel.Variance() + n.Tau2 }

// Matrix assembles the full covariance matrix Σ with Σij = C(‖si−sj‖).
func Matrix(g *geo.Geom, k Kernel) *linalg.Matrix {
	n := g.Len()
	sigma := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		col := sigma.Col(j)
		col[j] = k.Cov(0)
		for i := j + 1; i < n; i++ {
			col[i] = k.Cov(g.Dist(i, j))
		}
	}
	sigma.SymmetrizeFromLower()
	return sigma
}

// CrossMatrix assembles the rectangular cross-covariance between two
// geometries: out[i,j] = C(‖ai − bj‖).
func CrossMatrix(a, b *geo.Geom, k Kernel) *linalg.Matrix {
	out := linalg.NewMatrix(a.Len(), b.Len())
	for j := 0; j < b.Len(); j++ {
		col := out.Col(j)
		q := b.Pts[j]
		for i := 0; i < a.Len(); i++ {
			col[i] = k.Cov(a.Pts[i].Dist(q))
		}
	}
	return out
}

// Block fills dst (r×c) with the covariance sub-block whose rows are
// locations rows[0:r] and columns cols[0:c] of g. This is the tile-assembly
// kernel the tiled data structures call lazily.
func Block(dst *linalg.Matrix, g *geo.Geom, k Kernel, row0, col0 int) {
	for j := 0; j < dst.Cols; j++ {
		col := dst.Col(j)
		q := g.Pts[col0+j]
		for i := 0; i < dst.Rows; i++ {
			p := g.Pts[row0+i]
			if row0+i == col0+j {
				col[i] = k.Cov(0)
			} else {
				col[i] = k.Cov(p.Dist(q))
			}
		}
	}
}

// Posterior computes the posterior covariance and mean of a latent field x
// observed at a subset of locations with i.i.d. Gaussian noise (paper
// eqs. 7–8):
//
//	Σ_post = (Σ⁻¹ + (1/τ²)·AᵀA)⁻¹
//	µ_post = µ + (1/τ²)·Σ_post·Aᵀ·(y − Aµ)
//
// A is the indicator matrix selecting the observed locations obsIdx, y the
// noisy observations and tau2 the noise variance. Because A is an indicator,
// AᵀA is diagonal and Aᵀ(y−Aµ) is a scatter; both are formed without
// materializing A.
func Posterior(sigma *linalg.Matrix, mu []float64, obsIdx []int, y []float64, tau2 float64) (*linalg.Matrix, []float64, error) {
	n := sigma.Rows
	if len(mu) != n {
		return nil, nil, fmt.Errorf("cov: mu length %d != n %d", len(mu), n)
	}
	if len(obsIdx) != len(y) {
		return nil, nil, fmt.Errorf("cov: %d observation indices but %d values", len(obsIdx), len(y))
	}
	prec, err := linalg.InvSPD(sigma)
	if err != nil {
		return nil, nil, fmt.Errorf("cov: inverting prior covariance: %w", err)
	}
	invTau2 := 1 / tau2
	for _, i := range obsIdx {
		if i < 0 || i >= n {
			return nil, nil, fmt.Errorf("cov: observation index %d out of range", i)
		}
		prec.Add(i, i, invTau2)
	}
	post, err := linalg.InvSPD(prec)
	if err != nil {
		return nil, nil, fmt.Errorf("cov: inverting posterior precision: %w", err)
	}
	// rhs = (1/τ²)·Aᵀ(y − Aµ), a scatter of the residuals.
	rhs := make([]float64, n)
	for k, i := range obsIdx {
		rhs[i] += invTau2 * (y[k] - mu[i])
	}
	muPost := make([]float64, n)
	copy(muPost, mu)
	linalg.Gemv(false, 1, post, rhs, 1, muPost)
	return post, muPost, nil
}
