package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// Package is one loaded, parsed and typechecked package.
type Package struct {
	Path   string
	Dir    string
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Target bool // named by the load patterns (vs. pulled in as a dependency)
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool, parses every package in the
// dependency closure and typechecks them in dependency order — the
// standard-library-only replacement for go/packages. CGO is disabled so the
// pure-Go variants of the few cgo-capable std packages are selected and
// everything typechecks from source.
func Load(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()

	// Parse the whole closure up front with one worker per CPU: the read+parse
	// stage is embarrassingly parallel and dominates wall time, while the
	// typecheck pass below must follow dependency order anyway.
	type parsed struct {
		files []*ast.File
		errs  []error
	}
	parsedByPath := make(map[string]*parsed, len(listed))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4*runtime.GOMAXPROCS(0))
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" || lp.Error != nil {
			continue
		}
		pr := &parsed{files: make([]*ast.File, len(lp.GoFiles)), errs: make([]error, len(lp.GoFiles))}
		parsedByPath[lp.ImportPath] = pr
		for i, name := range lp.GoFiles {
			i, path := i, filepath.Join(lp.Dir, name)
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer func() { <-sem; wg.Done() }()
				f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					pr.errs[i] = fmt.Errorf("parsing %s: %v", path, err)
				}
				pr.files[i] = f
			}()
		}
	}
	wg.Wait()

	byPath := map[string]*Package{}
	var pkgs []*Package
	// -deps prints dependencies before dependents, so a single in-order pass
	// can typecheck with a map-backed importer.
	imp := mapImporter{byPath: byPath}
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = &Package{Path: "unsafe", Pkg: types.Unsafe}
			continue
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pr := parsedByPath[lp.ImportPath]
		for _, e := range pr.errs {
			if e != nil {
				return nil, nil, e
			}
		}
		p := &Package{Path: lp.ImportPath, Dir: lp.Dir, Target: !lp.DepOnly, Files: pr.files}
		// ImportMap rewrites vendored or otherwise aliased import paths.
		imp.importMap = lp.ImportMap
		p.Info = newInfo()
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", "amd64"),
			// Assembly-backed functions (linalg kernels, std internals) have
			// no Go bodies; that is fine. Hard errors surface through err.
		}
		p.Pkg, err = conf.Check(lp.ImportPath, fset, p.Files, p.Info)
		if err != nil {
			return nil, nil, fmt.Errorf("typechecking %s: %v", lp.ImportPath, err)
		}
		byPath[lp.ImportPath] = p
		pkgs = append(pkgs, p)
	}
	return pkgs, fset, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult —
// for drivers (the vettool) that typecheck packages themselves.
func NewTypesInfo() *types.Info { return newInfo() }

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// mapImporter resolves imports from the already-typechecked closure.
type mapImporter struct {
	byPath    map[string]*Package
	importMap map[string]string
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if p, ok := m.byPath[path]; ok {
		return p.Pkg, nil
	}
	return nil, fmt.Errorf("package %q not in load closure", path)
}

// BuildIndex scans every loaded package for annotations.
func BuildIndex(fset *token.FileSet, pkgs []*Package) *Index {
	ix := NewIndex()
	for _, p := range pkgs {
		if p.Pkg == types.Unsafe {
			continue
		}
		ix.AddPackage(fset, p.Path, p.Files)
	}
	return ix
}
