package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolcheck proves that every workspace-pool acquisition is released by the
// matching Put on all paths through the acquiring function — including error
// returns and explicit panics — and flags double-puts, use-after-put,
// mismatched Get/Put kinds (a GetMatView released with PutMat would recycle
// a view's shared backing array) and defers that postpone a loop-body
// release to function exit.
//
// The analysis is intraprocedural and deliberately conservative about
// ownership transfer: a resource that escapes — returned, stored into a
// struct/slice/map, captured by a goroutine, or aliased — stops being
// tracked rather than reported. Passing a resource as a plain call argument
// is treated as borrowing (the repo convention: callees never retain pooled
// arguments). Constructor-style wrappers that hand a pooled object to their
// caller are annotated //repro:returns-pooled <kind>, which makes their
// call sites acquisitions too.
var Poolcheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "check that pooled workspace buffers are released on all paths",
	Run:  runPoolcheck,
}

type poolKind uint8

const (
	kMat poolKind = iota
	kVec
	kInts
	kView
	kGen
	kMat32
)

func (k poolKind) String() string {
	return [...]string{"mat", "vec", "ints", "view", "gen", "mat32"}[k]
}

// putName names the releasing function for a kind, for messages.
func (k poolKind) putName() string {
	return [...]string{"PutMat", "PutVec", "PutInts", "PutMatView", "PutRichtmyer", "PutMat32"}[k]
}

// acquireFuncs and releaseFuncs map funcIDs to the pool kind they acquire or
// release. The linalg pool is the project allocator; the qmc generator pool
// follows the same protocol.
var acquireFuncs = map[string]poolKind{
	"repro/internal/linalg.GetMat":     kMat,
	"repro/internal/linalg.GetMatZero": kMat,
	"repro/internal/linalg.GetVec":     kVec,
	"repro/internal/linalg.GetVecZero": kVec,
	"repro/internal/linalg.GetInts":    kInts,
	"repro/internal/linalg.GetMatView": kView,
	"repro/internal/engine.getMat":     kMat,
	"repro/internal/qmc.GetRichtmyer":  kGen,
	"repro/internal/tile.GetMat32":     kMat32,
	"repro/internal/tile.GetMat32Zero": kMat32,
}

var releaseFuncs = map[string]poolKind{
	"repro/internal/linalg.PutMat":     kMat,
	"repro/internal/linalg.PutVec":     kVec,
	"repro/internal/linalg.PutInts":    kInts,
	"repro/internal/linalg.PutMatView": kView,
	"repro/internal/engine.putMat":     kMat,
	"repro/internal/qmc.PutRichtmyer":  kGen,
	"repro/internal/tile.PutMat32":     kMat32,
}

// presource is one tracked acquisition site.
type presource struct {
	pos      token.Pos
	getName  string
	kind     poolKind
	obj      types.Object
	reported bool
}

// pstatus is the per-path lifecycle state of a resource. Missing from the
// state map means "not acquired on this path".
type pstatus uint8

const (
	psLive     pstatus = iota // acquired, not yet released
	psDeferred                // a defer will release it at function exit
	psReleased                // released on this path
	psMaybe                   // released/deferred on some paths, live on others
	psEscaped                 // ownership left the function; no longer tracked
)

// pstate is the abstract state at one program point: each known resource's
// status plus the variable bindings used to credit Put calls.
type pstate struct {
	res  map[*presource]pstatus
	bind map[types.Object][]*presource
}

func newPState() *pstate {
	return &pstate{res: map[*presource]pstatus{}, bind: map[types.Object][]*presource{}}
}

func (s *pstate) clone() *pstate {
	c := &pstate{
		res:  make(map[*presource]pstatus, len(s.res)),
		bind: make(map[types.Object][]*presource, len(s.bind)),
	}
	for r, st := range s.res {
		c.res[r] = st
	}
	for o, rs := range s.bind {
		c.bind[o] = append([]*presource(nil), rs...)
	}
	return c
}

func (s *pstate) equal(o *pstate) bool {
	if len(s.res) != len(o.res) || len(s.bind) != len(o.bind) {
		return false
	}
	for r, st := range s.res {
		if ost, ok := o.res[r]; !ok || ost != st {
			return false
		}
	}
	for obj, rs := range s.bind {
		ors, ok := o.bind[obj]
		if !ok || len(ors) != len(rs) {
			return false
		}
		for i := range rs {
			if rs[i] != ors[i] {
				return false
			}
		}
	}
	return true
}

// joinStatus merges the status of one resource across two joining paths.
// ok=false marks "missing on that path" (not acquired there).
func joinStatus(a pstatus, aok bool, b pstatus, bok bool) pstatus {
	switch {
	case !aok:
		a, aok = b, bok
		b, bok = 0, false
		return joinStatus(a, aok, b, bok)
	case !bok:
		// Acquired on one path only: live there means a possible leak;
		// released/deferred there means fully handled where it exists.
		if a == psLive || a == psMaybe {
			return psMaybe
		}
		return a
	case a == psEscaped || b == psEscaped:
		return psEscaped
	case a == b:
		return a
	case a == psMaybe || b == psMaybe:
		return psMaybe
	case (a == psDeferred && b == psReleased) || (a == psReleased && b == psDeferred):
		return psDeferred
	default: // live vs released/deferred
		return psMaybe
	}
}

// join merges two path states (either may be nil = unreachable path).
func join(a, b *pstate) *pstate {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := newPState()
	seen := map[*presource]bool{}
	for r, st := range a.res {
		seen[r] = true
		ost, ok := b.res[r]
		out.res[r] = joinStatus(st, true, ost, ok)
	}
	for r, st := range b.res {
		if !seen[r] {
			out.res[r] = joinStatus(st, true, 0, false)
		}
	}
	for obj, rs := range a.bind {
		out.bind[obj] = append([]*presource(nil), rs...)
	}
	for obj, rs := range b.bind {
		have := out.bind[obj]
	next:
		for _, r := range rs {
			for _, h := range have {
				if h == r {
					continue next
				}
			}
			have = append(have, r)
		}
		out.bind[obj] = have
	}
	return out
}

func joinAll(states []*pstate) *pstate {
	var out *pstate
	for _, s := range states {
		out = join(out, s)
	}
	return out
}

// frame is one enclosing breakable construct during the walk.
type frame struct {
	isLoop      bool
	label       string
	body        *ast.BlockStmt // loop body, for the iteration-scope check
	breakStates []*pstate
	contStates  []*pstate
}

type pcChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
	mute int
	// sites memoizes resources by acquisition position so the loop fixpoint
	// re-analyzes the same Get call as the same resource instead of minting a
	// fresh one per simulated iteration (which would leave ghost released
	// copies in the bindings and break convergence).
	sites  map[token.Pos]*presource
	frames []*frame
}

func runPoolcheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if containsGoto(fd.Body) {
				continue // gotos make the structured walk unsound; skip
			}
			c := &pcChecker{pass: pass, fn: fd, sites: map[token.Pos]*presource{}}
			st, term := c.walkStmts(fd.Body.List, newPState())
			if !term {
				c.checkExit(st, fd.Body.Rbrace, "function exit")
			}
		}
	}
	return nil
}

func containsGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

func (c *pcChecker) reportf(pos token.Pos, format string, args ...any) {
	if c.mute == 0 {
		c.pass.Reportf(pos, format, args...)
	}
}

// reportResource emits one diagnostic per acquisition site.
func (c *pcChecker) reportResource(r *presource, format string, args ...any) {
	if c.mute > 0 || r.reported {
		return
	}
	r.reported = true
	c.pass.Reportf(r.pos, format, args...)
}

// checkExit flags resources not released at a function exit point.
func (c *pcChecker) checkExit(st *pstate, at token.Pos, what string) {
	line := c.pass.Fset.Position(at).Line
	for r, status := range st.res {
		switch status {
		case psLive:
			c.reportResource(r, "%s result is not released on the %s at line %d (missing %s or defer)",
				r.getName, what, line, r.kind.putName())
		case psMaybe:
			c.reportResource(r, "%s result is released on some paths but not on the %s at line %d (missing %s on an early-return or error path)",
				r.getName, what, line, r.kind.putName())
		}
	}
}

// funcObjOf resolves the *types.Func a call expression invokes, or nil for
// indirect calls, builtins and conversions.
func (c *pcChecker) funcObjOf(call *ast.CallExpr) *types.Func {
	return calleeFunc(c.pass.TypesInfo, call)
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// acquireKind classifies a call as a pool acquisition: built-in table first,
// then the //repro:returns-pooled annotation.
func (c *pcChecker) acquireKind(call *ast.CallExpr) (poolKind, string, bool) {
	fo := c.funcObjOf(call)
	if fo == nil {
		return 0, "", false
	}
	id := funcID(fo)
	if k, ok := acquireFuncs[id]; ok {
		return k, fo.Name(), true
	}
	if k, ok := c.pass.Index.ReturnsPooled(id); ok {
		return k, fo.Name(), true
	}
	return 0, "", false
}

func (c *pcChecker) releaseKind(call *ast.CallExpr) (poolKind, bool) {
	fo := c.funcObjOf(call)
	if fo == nil {
		return 0, false
	}
	k, ok := releaseFuncs[funcID(fo)]
	return k, ok
}

// resultIndexForKind picks which result of an annotated constructor carries
// the pooled object: the unique result whose type matches the kind.
func resultIndexForKind(sig *types.Signature, k poolKind) int {
	match := func(t types.Type) bool {
		switch k {
		case kMat, kView:
			p, ok := t.(*types.Pointer)
			if !ok {
				return false
			}
			n, ok := p.Elem().(*types.Named)
			return ok && n.Obj().Name() == "Matrix"
		case kMat32:
			p, ok := t.(*types.Pointer)
			if !ok {
				return false
			}
			n, ok := p.Elem().(*types.Named)
			return ok && n.Obj().Name() == "Matrix32"
		case kVec:
			s, ok := t.Underlying().(*types.Slice)
			return ok && types.Identical(s.Elem(), types.Typ[types.Float64])
		case kInts:
			s, ok := t.Underlying().(*types.Slice)
			return ok && types.Identical(s.Elem(), types.Typ[types.Int])
		case kGen:
			return true // single-result constructors only
		}
		return false
	}
	idx, n := -1, 0
	for i := 0; i < sig.Results().Len(); i++ {
		if match(sig.Results().At(i).Type()) {
			idx, n = i, n+1
		}
	}
	if n != 1 {
		if sig.Results().Len() == 1 {
			return 0
		}
		return -1
	}
	return idx
}

// walkStmts interprets a statement list. It returns the state at the fall-off
// end and whether every path through the list terminated (returned, panicked
// or branched away).
func (c *pcChecker) walkStmts(list []ast.Stmt, st *pstate) (*pstate, bool) {
	for _, stmt := range list {
		var term bool
		st, term = c.walkStmt(stmt, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *pcChecker) walkStmt(stmt ast.Stmt, st *pstate) (*pstate, bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		c.walkAssign(s, st)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, ok2 := isTerminatorCall(c.pass.TypesInfo, call); ok2 {
				c.scanExpr(call, st)
				c.checkExit(st, s.Pos(), name+" path")
				return st, true
			}
			if k, name, ok2 := c.acquireKind(call); ok2 {
				c.scanExpr(call, st) // arguments are still uses
				c.reportf(call.Pos(), "result of %s is discarded; the pooled %s can never be released", name, k)
				return st, false
			}
		}
		c.scanExpr(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				c.walkBindings(vs.Pos(), identsOf(vs.Names), vs.Values, st)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			c.escapeIdentResources(res, st, true)
			c.scanExpr(res, st)
		}
		c.checkExit(st, s.Pos(), "return path")
		return st, true
	case *ast.DeferStmt:
		c.walkDefer(s, st)
	case *ast.GoStmt:
		// A goroutine may outlive the function: everything it captures
		// escapes.
		c.escapeAllIn(s.Call, st)
	case *ast.SendStmt:
		c.escapeIdentResources(s.Value, st, false)
		c.scanExpr(s.Chan, st)
		c.scanExpr(s.Value, st)
	case *ast.IncDecStmt:
		c.scanExpr(s.X, st)
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.IfStmt:
		return c.walkIf(s, st)
	case *ast.ForStmt:
		return c.walkFor(s, "", st)
	case *ast.RangeStmt:
		return c.walkRange(s, "", st)
	case *ast.SwitchStmt:
		return c.walkSwitch(s.Init, s.Tag, nil, s.Body, st)
	case *ast.TypeSwitchStmt:
		return c.walkSwitch(s.Init, nil, s.Assign, s.Body, st)
	case *ast.SelectStmt:
		return c.walkSelect(s, st)
	case *ast.LabeledStmt:
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			return c.walkFor(inner, s.Label.Name, st)
		case *ast.RangeStmt:
			return c.walkRange(inner, s.Label.Name, st)
		default:
			return c.walkStmt(s.Stmt, st)
		}
	case *ast.BranchStmt:
		return c.walkBranch(s, st)
	case *ast.EmptyStmt:
	default:
		// Remaining statement kinds have no control-flow effect on tracking.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.scanExpr(e, st)
				return false
			}
			return true
		})
	}
	return st, false
}

// walkBranch routes break/continue to the matching enclosing frame.
func (c *pcChecker) walkBranch(s *ast.BranchStmt, st *pstate) (*pstate, bool) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	for i := len(c.frames) - 1; i >= 0; i-- {
		f := c.frames[i]
		switch s.Tok {
		case token.BREAK:
			if label == "" || f.label == label {
				f.breakStates = append(f.breakStates, st.clone())
				return st, true
			}
		case token.CONTINUE:
			if f.isLoop && (label == "" || f.label == label) {
				f.contStates = append(f.contStates, st.clone())
				return st, true
			}
		}
	}
	// Unmatched (label on a plain block, or malformed): treat as terminator.
	return st, true
}

func (c *pcChecker) walkIf(s *ast.IfStmt, st *pstate) (*pstate, bool) {
	if s.Init != nil {
		st, _ = c.walkStmt(s.Init, st)
	}
	c.scanExpr(s.Cond, st)
	thenEntry, elseEntry := st.clone(), st.clone()
	c.refineNilGuard(s.Cond, thenEntry, elseEntry)
	thenSt, thenTerm := c.walkStmts(s.Body.List, thenEntry)
	elseSt := elseEntry
	elseTerm := false
	if s.Else != nil {
		elseSt, elseTerm = c.walkStmt(s.Else, elseEntry)
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseSt, false
	case elseTerm:
		return thenSt, false
	default:
		return join(thenSt, elseSt), false
	}
}

// refineNilGuard applies flow information from `x == nil` / `x != nil`
// conditions: on the branch where x is nil, a resource bound to x that is
// only maybe-live cannot exist there (the acquiring path set x non-nil), so
// the idiomatic
//
//	if nu > 0 { s = linalg.GetVec(mc) }
//	...
//	if s != nil { linalg.PutVec(s) }
//
// pairing is recognized instead of reported as a conditional leak.
func (c *pcChecker) refineNilGuard(cond ast.Expr, thenSt, elseSt *pstate) {
	be, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	var x *ast.Ident
	switch {
	case isNilIdent(c.pass.TypesInfo, be.Y):
		x, _ = unparen(be.X).(*ast.Ident)
	case isNilIdent(c.pass.TypesInfo, be.X):
		x, _ = unparen(be.Y).(*ast.Ident)
	}
	if x == nil {
		return
	}
	nilSt := thenSt // x == nil: the then branch is the nil branch
	if be.Op == token.NEQ {
		nilSt = elseSt
	}
	obj := c.pass.TypesInfo.Uses[x]
	for _, r := range nilSt.bind[obj] {
		if nilSt.res[r] == psMaybe {
			nilSt.res[r] = psReleased
		}
	}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// walkLoopBody runs a loop body to fixpoint with diagnostics muted, then a
// final reporting pass. entry is the state at the loop head (after Init);
// cond/post hooks run per simulated iteration. It returns the loop exit
// state, or nil when the loop can never exit (no breaks, no condition).
func (c *pcChecker) walkLoopBody(label string, body *ast.BlockStmt, entry *pstate, zeroIter bool, cond func(*pstate), post func(*pstate) *pstate) (*pstate, bool) {
	cur := entry
	c.mute++
	for i := 0; i < 8; i++ {
		next := c.runIteration(label, body, cur, cond, post, nil)
		merged := join(cur.clone(), next)
		if merged.equal(cur) {
			break
		}
		cur = merged
	}
	c.mute--
	f := &frame{isLoop: true, label: label, body: body}
	c.runIteration(label, body, cur, cond, post, f)
	exits := f.breakStates
	if zeroIter {
		exits = append(exits, cur)
	}
	exit := joinAll(exits)
	if exit == nil {
		return entry, true // no way out of the loop
	}
	return exit, false
}

// runIteration simulates one loop iteration from head state cur and returns
// the state reaching the next iteration (nil if the body always leaves the
// loop). When reuse is non-nil it is used as the frame so the caller can
// collect break states from the (reporting) pass.
func (c *pcChecker) runIteration(label string, body *ast.BlockStmt, cur *pstate, cond func(*pstate), post func(*pstate) *pstate, reuse *frame) *pstate {
	f := reuse
	if f == nil {
		f = &frame{isLoop: true, label: label, body: body}
	}
	it := cur.clone()
	if cond != nil {
		cond(it)
	}
	c.frames = append(c.frames, f)
	end, term := c.walkStmts(body.List, it)
	c.frames = c.frames[:len(c.frames)-1]
	var ends []*pstate
	if !term {
		ends = append(ends, end)
	}
	ends = append(ends, f.contStates...)
	iterEnd := joinAll(ends)
	if iterEnd == nil {
		return nil
	}
	c.checkIterationEnd(iterEnd, body)
	if post != nil {
		iterEnd = post(iterEnd)
	}
	return iterEnd
}

// checkIterationEnd flags resources acquired during the iteration into
// variables scoped to the loop body: the binding is gone next iteration, so
// an unreleased buffer can never be put back.
func (c *pcChecker) checkIterationEnd(st *pstate, body *ast.BlockStmt) {
	for r, status := range st.res {
		if status != psLive && status != psMaybe {
			continue
		}
		if r.obj == nil || r.obj.Pos() < body.Lbrace || r.obj.Pos() > body.Rbrace {
			continue // variable outlives the iteration; later code may release
		}
		verb := "is not released"
		if status == psMaybe {
			verb = "is not released on some paths"
		}
		c.reportResource(r, "%s result %s by the end of the loop iteration that acquired it (missing %s)",
			r.getName, verb, r.kind.putName())
		// Stop tracking so the fixpoint and exit checks stay quiet.
		st.res[r] = psEscaped
	}
}

func (c *pcChecker) walkFor(s *ast.ForStmt, label string, st *pstate) (*pstate, bool) {
	if s.Init != nil {
		st, _ = c.walkStmt(s.Init, st)
	}
	var cond func(*pstate)
	if s.Cond != nil {
		cond = func(p *pstate) { c.scanExpr(s.Cond, p) }
	}
	var post func(*pstate) *pstate
	if s.Post != nil {
		post = func(p *pstate) *pstate { p2, _ := c.walkStmt(s.Post, p); return p2 }
	}
	return c.walkLoopBody(label, s.Body, st, s.Cond != nil, cond, post)
}

func (c *pcChecker) walkRange(s *ast.RangeStmt, label string, st *pstate) (*pstate, bool) {
	c.scanExpr(s.X, st)
	return c.walkLoopBody(label, s.Body, st, true, nil, nil)
}

func (c *pcChecker) walkSwitch(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, st *pstate) (*pstate, bool) {
	if init != nil {
		st, _ = c.walkStmt(init, st)
	}
	if tag != nil {
		c.scanExpr(tag, st)
	}
	if assign != nil {
		// The type-switch assign introduces a per-clause variable; no pool
		// effects beyond scanning the operand.
		ast.Inspect(assign, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.scanExpr(e, st)
				return false
			}
			return true
		})
	}
	f := &frame{}
	c.frames = append(c.frames, f)
	var ends []*pstate
	hasDefault := false
	allTerm := true
	var fallSt *pstate
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		entry := st.clone()
		if fallSt != nil {
			entry = join(entry, fallSt)
			fallSt = nil
		}
		for _, e := range cc.List {
			c.scanExpr(e, entry)
		}
		end, term := c.walkStmts(cc.Body, entry)
		if endsInFallthrough(cc.Body) {
			fallSt = end
			continue
		}
		if !term {
			ends = append(ends, end)
			allTerm = false
		}
	}
	c.frames = c.frames[:len(c.frames)-1]
	ends = append(ends, f.breakStates...)
	if len(f.breakStates) > 0 {
		allTerm = false
	}
	if !hasDefault {
		ends = append(ends, st)
		allTerm = false
	}
	out := joinAll(ends)
	if out == nil || allTerm {
		return st, true
	}
	return out, false
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	b, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && b.Tok == token.FALLTHROUGH
}

func (c *pcChecker) walkSelect(s *ast.SelectStmt, st *pstate) (*pstate, bool) {
	f := &frame{}
	c.frames = append(c.frames, f)
	var ends []*pstate
	any := false
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		entry := st.clone()
		if cc.Comm != nil {
			entry, _ = c.walkStmt(cc.Comm, entry)
		}
		end, term := c.walkStmts(cc.Body, entry)
		if !term {
			ends = append(ends, end)
		}
	}
	c.frames = c.frames[:len(c.frames)-1]
	ends = append(ends, f.breakStates...)
	out := joinAll(ends)
	if !any || out == nil {
		return st, true
	}
	return out, false
}

// walkDefer registers deferred releases and treats other deferred calls as
// borrowing. A deferred Put inside a loop only runs at function exit — the
// classic unbounded-checkout bug — and is reported.
func (c *pcChecker) walkDefer(s *ast.DeferStmt, st *pstate) {
	inLoop := false
	for _, f := range c.frames {
		if f.isLoop {
			inLoop = true
		}
	}
	deferRelease := func(call *ast.CallExpr, k poolKind) {
		for _, arg := range call.Args {
			id, ok := unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pass.TypesInfo.Uses[id]
			for _, r := range st.bind[obj] {
				if st.res[r] == psEscaped {
					continue
				}
				if r.kind != k {
					c.reportf(call.Pos(), "%s result released with %s (needs %s)", r.getName, k.putName(), r.kind.putName())
				}
				if inLoop {
					c.reportf(s.Pos(), "deferred %s inside a loop only runs at function exit; release per iteration instead", k.putName())
				}
				st.res[r] = psDeferred
			}
		}
	}
	if k, ok := c.releaseKind(s.Call); ok {
		deferRelease(s.Call, k)
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// A deferred closure releasing tracked resources counts as a defer of
		// each Put it contains; everything else it references is borrowed.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if k, ok := c.releaseKind(call); ok {
				deferRelease(call, k)
				return false
			}
			return true
		})
		return
	}
	c.scanExpr(s.Call, st)
}

// walkAssign handles bindings, rebindings and aliasing.
func (c *pcChecker) walkAssign(s *ast.AssignStmt, st *pstate) {
	// Tuple form: lhs... := call().
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if k, name, ok := c.acquireKind(call); ok {
				c.scanExpr(call, st)
				if fo := c.funcObjOf(call); fo != nil {
					sig := fo.Type().(*types.Signature)
					if idx := resultIndexForKind(sig, k); idx >= 0 && idx < len(s.Lhs) {
						c.bindAcquire(s.Lhs[idx], k, name, call.Pos(), st)
					}
				}
				return
			}
			c.scanExpr(call, st)
			for _, l := range s.Lhs {
				c.checkOverwrite(l, st)
			}
			return
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			c.walkBindings(s.Pos(), []ast.Expr{s.Lhs[i]}, []ast.Expr{s.Rhs[i]}, st)
		}
		return
	}
	for _, r := range s.Rhs {
		c.scanExpr(r, st)
	}
	for _, l := range s.Lhs {
		c.checkOverwrite(l, st)
	}
}

// walkBindings processes parallel name/value pairs from := , = and var decls.
func (c *pcChecker) walkBindings(pos token.Pos, lhs []ast.Expr, rhs []ast.Expr, st *pstate) {
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		r := rhs[i]
		if call, ok := unparen(r).(*ast.CallExpr); ok {
			if k, name, ok2 := c.acquireKind(call); ok2 {
				c.scanExpr(call, st)
				c.bindAcquire(l, k, name, call.Pos(), st)
				continue
			}
		}
		// Aliasing a tracked resource to another name loses the 1:1 binding
		// the analysis relies on; treat as escape. Blank assignment is a
		// no-op.
		if id, ok := unparen(r).(*ast.Ident); ok {
			if lid, isIdent := unparen(l).(*ast.Ident); !isIdent || lid.Name != "_" {
				obj := c.pass.TypesInfo.Uses[id]
				for _, res := range st.bind[obj] {
					if st.res[res] == psLive || st.res[res] == psMaybe || st.res[res] == psDeferred {
						st.res[res] = psEscaped
					}
				}
			}
		}
		c.scanExpr(r, st)
		c.checkOverwrite(l, st)
	}
}

// bindAcquire starts tracking a new acquisition bound to lhs.
func (c *pcChecker) bindAcquire(lhs ast.Expr, k poolKind, name string, pos token.Pos, st *pstate) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		// Stored straight into a field/slot: ownership escapes immediately.
		c.checkOverwrite(lhs, st)
		return
	}
	if id.Name == "_" {
		c.reportf(pos, "result of %s is discarded; the pooled %s can never be released", name, k)
		return
	}
	c.checkOverwrite(id, st)
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	r := c.sites[pos]
	if r == nil {
		r = &presource{pos: pos, getName: name, kind: k, obj: obj}
		c.sites[pos] = r
	}
	st.res[r] = psLive
	st.bind[obj] = []*presource{r}
}

// checkOverwrite flags rebinding a variable that still holds a live buffer
// (the old buffer becomes unreachable and can never be released), then drops
// the binding.
func (c *pcChecker) checkOverwrite(lhs ast.Expr, st *pstate) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	var obj types.Object
	if d := c.pass.TypesInfo.Defs[id]; d != nil {
		obj = d
	} else {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	for _, r := range st.bind[obj] {
		if st.res[r] == psLive {
			c.reportResource(r, "%s result is overwritten before being released (missing %s)", r.getName, r.kind.putName())
			st.res[r] = psEscaped
		}
	}
	delete(st.bind, obj)
}

// escapeIdentResources marks resources referenced by e (an ident, or any
// ident inside composite expressions when deep) as escaped.
func (c *pcChecker) escapeIdentResources(e ast.Expr, st *pstate, deep bool) {
	mark := func(id *ast.Ident) {
		obj := c.pass.TypesInfo.Uses[id]
		for _, r := range st.bind[obj] {
			if st.res[r] != psReleased {
				st.res[r] = psEscaped
			}
		}
	}
	if id, ok := unparen(e).(*ast.Ident); ok {
		mark(id)
		return
	}
	if !deep {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			mark(id)
		}
		return true
	})
}

// escapeAllIn marks every tracked resource referenced anywhere under n as
// escaped (goroutines, stored closures).
func (c *pcChecker) escapeAllIn(n ast.Node, st *pstate) {
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := c.pass.TypesInfo.Uses[id]
			for _, r := range st.bind[obj] {
				if st.res[r] != psReleased {
					st.res[r] = psEscaped
				}
			}
		}
		return true
	})
}

// scanExpr applies the expression-level effects: releases, use-after-put
// detection, and escapes through composite literals, address-taking, stored
// closures and channel operations. Plain call arguments are borrows.
func (c *pcChecker) scanExpr(e ast.Expr, st *pstate) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if k, ok := c.releaseKind(x); ok {
				c.doRelease(x, k, st)
				return false
			}
			if _, _, ok := c.acquireKind(x); ok {
				// Nested acquisition (argument position, composite literal):
				// whoever receives it owns it; untracked. A bare discard is
				// handled at statement level.
				for _, a := range x.Args {
					c.scanExpr(a, st)
				}
				return false
			}
			return true
		case *ast.FuncLit:
			// A closure that merely reads a resource borrows it only if it
			// cannot outlive the function; assume stored closures escape.
			c.escapeAllIn(x.Body, st)
			return false
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				c.escapeIdentResources(el, st, true)
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				c.escapeIdentResources(x.X, st, false)
			}
			return true
		case *ast.Ident:
			c.checkUse(x, st)
			return true
		}
		return true
	})
}

// checkUse flags uses of already-released buffers.
func (c *pcChecker) checkUse(id *ast.Ident, st *pstate) {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	for _, r := range st.bind[obj] {
		if st.res[r] == psReleased {
			c.reportResource(r, "pooled %s is used at line %d after %s returned it to the pool",
				r.kind, c.pass.Fset.Position(id.Pos()).Line, r.kind.putName())
		}
	}
}

// doRelease processes one Put call.
func (c *pcChecker) doRelease(call *ast.CallExpr, k poolKind, st *pstate) {
	for _, arg := range call.Args {
		id, ok := unparen(arg).(*ast.Ident)
		if !ok {
			c.scanExpr(arg, st)
			continue
		}
		obj := c.pass.TypesInfo.Uses[id]
		rs := st.bind[obj]
		if len(rs) == 0 {
			continue
		}
		for _, r := range rs {
			switch st.res[r] {
			case psEscaped:
			case psReleased:
				c.reportf(call.Pos(), "%s called twice on the same %s (double put)", k.putName(), r.kind)
			default:
				if r.kind != k {
					c.reportf(call.Pos(), "%s result released with %s (needs %s)", r.getName, k.putName(), r.kind.putName())
					st.res[r] = psEscaped
					continue
				}
				st.res[r] = psReleased
			}
		}
	}
}

func identsOf(names []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

// isTerminatorCall reports calls that never return: panic, os.Exit and the
// log.Fatal family.
func isTerminatorCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fn].(*types.Builtin); ok && b.Name() == "panic" {
			return "panic", true
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok && f.Pkg() != nil {
			id := f.Pkg().Path() + "." + f.Name()
			switch id {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
				return f.Name(), true
			}
		}
	}
	return "", false
}

// unparen strips parentheses (ast.Unparen needs go1.22; the module targets
// go1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
