package analysis

import "testing"

func TestPoolcheck(t *testing.T) {
	RunFixture(t, Poolcheck, "poolcheck")
}
