package analysis

import "testing"

func TestNoalloc(t *testing.T) {
	RunFixture(t, Noalloc, "noalloc")
}
