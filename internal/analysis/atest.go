package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// This file is the suite's stand-in for golang.org/x/tools/go/analysis/
// analysistest: fixture packages live under testdata/src/<name>/, carry
// // want "regexp" comments on the lines expected to produce diagnostics,
// and may import real repository packages (they are part of the module, so
// the loader resolves them like any other dependency).

// wantRe extracts the expectation clause of a comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one // want clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// FixtureResult carries the diagnostics a fixture run produced, for tests
// that assert beyond the // want protocol.
type FixtureResult struct {
	Diags []Diagnostic
	Fset  *token.FileSet
}

// repoClosure is loaded once per test binary: the repository's own packages
// plus their whole dependency closure, which covers everything a fixture may
// import. Loading per-fixture import sets instead would repeat the ~15s
// stdlib typecheck for every distinct set.
var repoClosure struct {
	once sync.Once
	c    *depClosure
}

type depClosure struct {
	pkgs []*Package
	fset *token.FileSet
	err  error
}

// loadDeps returns the shared repo closure and verifies it satisfies the
// fixture's imports.
func loadDeps(imports []string) (*depClosure, error) {
	repoClosure.once.Do(func() {
		c := &depClosure{}
		c.pkgs, c.fset, c.err = Load("../..", []string{"./..."})
		repoClosure.c = c
	})
	c := repoClosure.c
	if c.err != nil {
		return c, c.err
	}
	have := map[string]bool{}
	for _, p := range c.pkgs {
		have[p.Path] = true
	}
	for _, imp := range imports {
		if !have[imp] {
			return c, fmt.Errorf("fixture import %q is not in the repository dependency closure", imp)
		}
	}
	return c, nil
}

// errorfer is the subset of *testing.T the harness needs (keeps this file
// compilable outside tests).
type errorfer interface {
	Errorf(format string, args ...any)
	Helper()
}

// RunFixture runs one analyzer over the fixture package at
// testdata/src/<name> and checks its diagnostics against the // want
// comments. It returns the diagnostics for additional assertions.
func RunFixture(t errorfer, a *Analyzer, name string) *FixtureResult {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	res, err := runFixturePkg(a, dir)
	if err != nil {
		t.Errorf("fixture %s: %v", name, err)
		return &FixtureResult{}
	}

	// Gather expectations from the fixture sources.
	var wants []*expectation
	for _, f := range res.files {
		fname := res.fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, cmt := range cg.List {
				m := wantRe.FindStringSubmatch(cmt.Text)
				if m == nil {
					continue
				}
				line := res.fset.Position(cmt.Pos()).Line
				for _, lit := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", fname, line, lit, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", fname, line, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: fname, line: line, re: re})
				}
			}
		}
	}

	// Match diagnostics to expectations by (file, line, regexp).
	for _, d := range res.diags {
		p := res.fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return &FixtureResult{Diags: res.diags, Fset: res.fset}
}

type fixtureRun struct {
	files []*ast.File
	fset  *token.FileSet
	diags []Diagnostic
}

// runFixturePkg parses, typechecks and analyzes one fixture directory.
func runFixturePkg(a *Analyzer, dir string) (*fixtureRun, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	// First parse pass just to learn the import set.
	probeFset := token.NewFileSet()
	imports := map[string]bool{}
	for _, p := range paths {
		f, err := parser.ParseFile(probeFset, p, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			imports[path] = true
		}
	}
	var importList []string
	for p := range imports {
		importList = append(importList, p)
	}
	closure, err := loadDeps(importList)
	if err != nil {
		return nil, err
	}
	fset := closure.fset

	run := &fixtureRun{fset: fset}
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		run.files = append(run.files, f)
	}

	byPath := map[string]*Package{}
	for _, p := range closure.pkgs {
		byPath[p.Path] = p
	}
	pkgPath := "fixture/" + filepath.Base(dir)
	info := newInfo()
	conf := types.Config{
		Importer: mapImporter{byPath: byPath},
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(pkgPath, fset, run.files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture: %v", err)
	}

	ix := BuildIndex(fset, closure.pkgs)
	ix.AddPackage(fset, pkgPath, run.files)

	run.diags, err = RunAnalyzers([]*Analyzer{a}, fset, run.files, pkg, info, ix)
	return run, err
}

// splitQuoted extracts the Go string literals ("..." or `...`) of a want
// clause.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		switch s[0] {
		case '"':
			i := 1
			for i < len(s) && s[i] != '"' {
				if s[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(s) {
				return out
			}
			out = append(out, s[:i+1])
			s = strings.TrimSpace(s[i+1:])
		case '`':
			i := strings.Index(s[1:], "`")
			if i < 0 {
				return out
			}
			out = append(out, s[:i+2])
			s = strings.TrimSpace(s[i+2:])
		default:
			return out
		}
	}
	return out
}
