package analysis

import (
	"testing"
)

// TestRepoClean runs the full analyzer suite over every package in the
// repository — the same gate cmd/reprolint enforces in CI — so a
// contract-violating change fails `go test` even without the vettool.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo load is slow; skipped in -short mode")
	}
	closure, err := loadDeps(nil)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, fset := closure.pkgs, closure.fset
	ix := BuildIndex(fset, pkgs)
	for _, p := range pkgs {
		if !p.Target || p.Pkg == nil {
			continue
		}
		diags, err := RunAnalyzers(All(), fset, p.Files, p.Pkg, p.Info, ix)
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", d.Analyzer, fset.Position(d.Pos), d.Message)
		}
	}
}
