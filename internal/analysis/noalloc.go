package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Noalloc enforces the //repro:noalloc annotation: an annotated function may
// not contain constructs that allocate at steady state. The contract is
// transitive — calls are only permitted to functions that are themselves
// annotated, to the trusted-primitive whitelist below, or to non-allocating
// builtins — so a certified warm path stays certified when a helper deep in
// the call chain regresses.
//
// Deliberate cold-branch allocations (pool capacity misses, error paths) are
// suppressed per line with //repro:alloc-ok. Interface method declarations
// may carry the annotation; calling through such an interface is then
// allowed, and every concrete implementation visible to the analysis must be
// annotated itself.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "check that //repro:noalloc functions cannot allocate at steady state",
	Run:  runNoalloc,
}

// noallocPkgs whitelists entire packages whose exported functions are
// allocation-free by construction.
var noallocPkgs = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// noallocFuncs whitelists individual trusted primitives. The pool accessors
// allocate only on a cold capacity miss — amortized zero at steady state,
// which is exactly the contract the annotation certifies.
var noallocFuncs = map[string]bool{
	"repro/internal/linalg.GetMat":     true,
	"repro/internal/linalg.GetMatZero": true,
	"repro/internal/linalg.GetVec":     true,
	"repro/internal/linalg.GetVecZero": true,
	"repro/internal/linalg.GetInts":    true,
	"repro/internal/linalg.GetMatView": true,
	"repro/internal/linalg.PutMat":     true,
	"repro/internal/linalg.PutVec":     true,
	"repro/internal/linalg.PutInts":    true,
	"repro/internal/linalg.PutMatView": true,
	"repro/internal/qmc.GetRichtmyer":  true,
	"repro/internal/qmc.PutRichtmyer":  true,
	"repro/internal/tile.getVec32":     true,
	"repro/internal/tile.putVec32":     true,
	"repro/internal/tile.GetVec32":     true,
	"repro/internal/tile.PutVec32":     true,
	"repro/internal/tile.GetMat32":     true,
	"repro/internal/tile.GetMat32Zero": true,
	"repro/internal/tile.PutMat32":     true,
	"repro/internal/tile.GetMat32View": true,
	"repro/internal/tile.PutMat32View": true,
	"repro/internal/engine.getMat":     true,
	"repro/internal/engine.putMat":     true,
	// Lock and lock-free synchronization primitives: they block but never
	// allocate, and the warm cache-hit path takes a mutex by design.
	"sync.(Mutex).Lock":        true,
	"sync.(Mutex).Unlock":      true,
	"sync.(RWMutex).RLock":     true,
	"sync.(RWMutex).RUnlock":   true,
	"sync.(RWMutex).Lock":      true,
	"sync.(RWMutex).Unlock":    true,
	"sync/atomic.(Bool).Load":  true,
	"sync/atomic.(Bool).Store": true,
	"sync/atomic.(Int64).Load": true,
	"sync/atomic.(Int64).Add":  true,
	// sync.Pool itself follows the same amortized-zero contract as the typed
	// pool accessors above: Get allocates only via New on a cold miss.
	"sync.(Pool).Get": true,
	"sync.(Pool).Put": true,
	// Wave-boundary budget checks: monotonic clock reads and pure Time value
	// arithmetic, plus the lock-free ctx.Err poll — none allocate.
	"time.Now":              true,
	"time.(Time).IsZero":    true,
	"time.(Time).Add":       true,
	"time.(Time).Before":    true,
	"context.(Context).Err": true,
}

// allowedBuiltins never allocate. panic is permitted because it terminates
// the path — boxing its argument on the way out of a dying process is not a
// steady-state allocation. append, make, new, print and println are absent
// deliberately.
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true, "clear": true,
	"min": true, "max": true, "real": true, "imag": true, "complex": true,
	"panic": true, "recover": true,
}

func runNoalloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			id := declID(pass.Pkg.Path(), fd)
			if !pass.Index.IsNoalloc(id) {
				continue
			}
			nc := &naChecker{pass: pass, fname: fd.Name.Name}
			nc.walk(fd.Body)
		}
	}
	checkIfaceImpls(pass)
	return nil
}

type naChecker struct {
	pass  *Pass
	fname string
}

func (c *naChecker) report(pos token.Pos, desc string) {
	if c.pass.Index.Suppressed(c.pass.Fset, pos) {
		return
	}
	c.pass.Reportf(pos, "%s in //repro:noalloc function %s", desc, c.fname)
}

func (c *naChecker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(x)
		case *ast.FuncLit:
			c.report(x.Pos(), "func literal allocates a closure")
			return false // the closure body is the closure's problem
		case *ast.GoStmt:
			c.report(x.Pos(), "go statement spawns a goroutine")
			return false
		case *ast.SendStmt:
			c.report(x.Pos(), "channel send blocks and is not allocation-free")
		case *ast.UnaryExpr:
			switch x.Op {
			case token.ARROW:
				c.report(x.Pos(), "channel receive blocks and is not allocation-free")
			case token.AND:
				if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
					c.report(x.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			switch c.typeOf(x).Underlying().(type) {
			case *types.Slice:
				c.report(x.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				c.report(x.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(c.typeOf(x)) {
				c.report(x.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if ix, ok := unparen(l).(*ast.IndexExpr); ok {
					if _, isMap := c.typeOf(ix.X).Underlying().(*types.Map); isMap {
						c.report(l.Pos(), "map assignment may allocate")
					}
				}
			}
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(c.typeOf(x.Lhs[0])) {
				c.report(x.Pos(), "string concatenation allocates")
			}
			c.checkImplicitBox(x.Rhs, func(i int) types.Type {
				if i < len(x.Lhs) && len(x.Lhs) == len(x.Rhs) {
					return c.typeOf(x.Lhs[i])
				}
				return nil
			})
		case *ast.ReturnStmt:
			// Boxing a concrete value into an interface result allocates.
			sig := c.enclosingSig(x)
			if sig != nil && len(x.Results) == sig.Results().Len() {
				c.checkImplicitBox(x.Results, func(i int) types.Type {
					return sig.Results().At(i).Type()
				})
			}
		}
		return true
	})
}

func (c *naChecker) typeOf(e ast.Expr) types.Type {
	if t := c.pass.TypesInfo.Types[e].Type; t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxes reports whether storing a value of concrete type t into an interface
// allocates: pointer-shaped values ride in the interface word for free.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	}
	return true
}

// checkImplicitBox flags concrete-to-interface conversions at assignment and
// return positions.
func (c *naChecker) checkImplicitBox(vals []ast.Expr, dstAt func(int) types.Type) {
	for i, v := range vals {
		dst := dstAt(i)
		if dst == nil {
			continue
		}
		if _, isIface := dst.Underlying().(*types.Interface); !isIface {
			continue
		}
		src := c.typeOf(v)
		if src == types.Typ[types.Invalid] || !boxes(src) {
			continue
		}
		if tv, ok := c.pass.TypesInfo.Types[v]; ok && tv.IsNil() {
			continue
		}
		c.report(v.Pos(), fmt.Sprintf("%s value boxed into interface (allocates)", src))
	}
}

// enclosingSig finds the signature of the annotated function a return belongs
// to. Closures are reported wholesale at the FuncLit, so only the outer
// declaration matters; the walk never descends into literals.
func (c *naChecker) enclosingSig(ret *ast.ReturnStmt) *types.Signature {
	for _, file := range c.pass.Files {
		if file.Pos() <= ret.Pos() && ret.Pos() <= file.End() {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || ret.Pos() < fd.Pos() || ret.Pos() > fd.End() {
					continue
				}
				if obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					return obj.Type().(*types.Signature)
				}
			}
		}
	}
	return nil
}

// checkCall classifies one call. The return value tells ast.Inspect whether
// to descend into the call's children.
func (c *naChecker) checkCall(call *ast.CallExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return true
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			c.checkBuiltin(call, b.Name())
			return true
		}
	}
	fo := calleeFunc(c.pass.TypesInfo, call)
	if fo == nil {
		c.report(call.Pos(), "call through a function value cannot be certified allocation-free")
		return true
	}
	id := c.callTargetID(call, fo)
	switch {
	case c.pass.Index.IsNoalloc(id), noallocFuncs[id]:
	case fo.Pkg() != nil && noallocPkgs[fo.Pkg().Path()]:
	default:
		c.report(call.Pos(), fmt.Sprintf("call to %s, which is not annotated //repro:noalloc", displayName(id)))
	}
	c.checkArgBoxing(call, fo)
	return true
}

// callTargetID resolves the annotation key for a call: interface method calls
// resolve to the interface declaration's ID, everything else to the concrete
// function's.
func (c *naChecker) callTargetID(call *ast.CallExpr, fo *types.Func) string {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if named, ok := derefNamed(s.Recv()); ok {
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					return named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")." + fo.Name()
				}
			}
		}
	}
	return funcID(fo)
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// displayName strips the module prefix for readability in messages.
func displayName(id string) string {
	return strings.TrimPrefix(id, "repro/")
}

func (c *naChecker) checkBuiltin(call *ast.CallExpr, name string) {
	switch {
	case allowedBuiltins[name]:
	case name == "make":
		c.report(call.Pos(), "make allocates")
	case name == "new":
		c.report(call.Pos(), "new allocates")
	case name == "append":
		c.report(call.Pos(), "append may reallocate its backing array")
	default:
		c.report(call.Pos(), fmt.Sprintf("builtin %s is not allocation-free", name))
	}
}

// checkConversion flags conversions that allocate: to interfaces (boxing) and
// between strings and byte/rune slices.
func (c *naChecker) checkConversion(call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := c.typeOf(call.Args[0])
	if _, isIface := dst.Underlying().(*types.Interface); isIface && boxes(src) {
		c.report(call.Pos(), fmt.Sprintf("%s value boxed into interface (allocates)", src))
		return
	}
	ds, dIsStr := dst.Underlying().(*types.Basic)
	_, sIsSlice := src.Underlying().(*types.Slice)
	if dIsStr && ds.Info()&types.IsString != 0 && sIsSlice {
		c.report(call.Pos(), "conversion to string allocates")
		return
	}
	if s, ok := dst.Underlying().(*types.Slice); ok && isString(src) {
		e, _ := s.Elem().Underlying().(*types.Basic)
		if e != nil && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32) {
			c.report(call.Pos(), "conversion from string allocates")
		}
	}
}

// checkArgBoxing flags concrete values passed to interface-typed parameters.
func (c *naChecker) checkArgBoxing(call *ast.CallExpr, fo *types.Func) {
	sig, ok := fo.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		src := c.typeOf(arg)
		if src == types.Typ[types.Invalid] || !boxes(src) {
			continue
		}
		if tv, ok := c.pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		c.report(arg.Pos(), fmt.Sprintf("%s value boxed into interface (allocates)", src))
	}
}

// checkIfaceImpls enforces the interface side of the contract: when an
// interface method is annotated //repro:noalloc, every named type in this
// package that implements the interface must annotate (or whitelist) its
// implementation of that method.
func checkIfaceImpls(pass *Pass) {
	for id := range pass.Index.Noalloc {
		ipkg, iface, method, ok := splitIfaceID(id)
		if !ok {
			continue
		}
		it := lookupInterface(pass.Pkg, ipkg, iface)
		if it == nil {
			continue
		}
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			recv := types.Type(named)
			if !types.Implements(recv, it) {
				recv = types.NewPointer(named)
				if !types.Implements(recv, it) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, pass.Pkg, method)
			f, ok := obj.(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != pass.Pkg.Path() {
				continue // promoted from elsewhere; that package reports it
			}
			fid := funcID(f)
			if pass.Index.IsNoalloc(fid) || noallocFuncs[fid] {
				continue
			}
			pass.Reportf(f.Pos(), "%s implements %s.%s, which is annotated //repro:noalloc, but is not annotated itself",
				displayName(fid), iface, method)
		}
	}
}

// splitIfaceID decomposes "pkgpath.(Iface).Method" IDs.
func splitIfaceID(id string) (pkg, iface, method string, ok bool) {
	i := strings.Index(id, ".(")
	if i < 0 {
		return "", "", "", false
	}
	j := strings.Index(id[i:], ").")
	if j < 0 {
		return "", "", "", false
	}
	return id[:i], id[i+2 : i+j], id[i+j+2:], true
}

// lookupInterface resolves a named interface by package path, either the
// package under analysis or one of its (transitive) imports.
func lookupInterface(pkg *types.Package, path, name string) *types.Interface {
	target := pkg
	if pkg.Path() != path {
		target = findImport(pkg, path, map[*types.Package]bool{})
		if target == nil {
			return nil
		}
	}
	tn, ok := target.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	it, _ := tn.Type().Underlying().(*types.Interface)
	return it
}

func findImport(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	for _, imp := range pkg.Imports() {
		if seen[imp] {
			continue
		}
		seen[imp] = true
		if imp.Path() == path {
			return imp
		}
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}
