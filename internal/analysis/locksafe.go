package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Locksafe enforces the serving-path lock discipline in the query-serving
// subsystem (internal/serve) and the factor cache (cache.go): every
// mutex Lock is matched by an Unlock on all paths, locks are not re-acquired
// while held, and nothing slow or blocking — channel operations, select,
// time.Sleep, network calls, factorization — runs inside a critical section.
// The shard and cache mutexes guard index lookups that sit on every query;
// a factorization or channel wait under one stalls the whole shard.
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc:  "check lock pairing and critical-section hygiene in serve and the factor cache",
	Run:  runLocksafe,
}

// heavyCallPrefixes are funcID prefixes that must never run under a shard or
// cache mutex: factorization and compression are seconds-scale work.
var heavyCallPrefixes = []string{
	"repro/internal/engine.",
	"repro/internal/tile.",
}

// blockedCallPkgs are packages whose calls block on external events.
var blockedCallPkgs = map[string]bool{
	"net":      true,
	"net/http": true,
}

// lockScoped reports whether a file is under the lock-discipline contract.
func lockScoped(pass *Pass, file *ast.File) bool {
	switch {
	case pass.Pkg.Path() == "repro/internal/serve":
		return true
	case strings.HasPrefix(pass.Pkg.Path(), "fixture/"):
		return true
	case pass.Pkg.Path() == "repro":
		return filepath.Base(pass.Fset.Position(file.Package).Filename) == "cache.go"
	}
	return false
}

func runLocksafe(pass *Pass) error {
	for _, file := range pass.Files {
		if !lockScoped(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if containsGoto(fd.Body) {
				continue
			}
			c := &lsChecker{pass: pass}
			st := &lockState{held: map[string]int{}, deferred: map[string]int{}}
			end, term := c.walkStmts(fd.Body.List, st)
			if !term {
				c.checkExit(end, fd.Body.Rbrace)
			}
		}
	}
	return nil
}

// lockState tracks, per canonical mutex key ("sh.mu", "c.mu/R"), how many
// times it is held on the current path and how many deferred unlocks cover
// function exit.
type lockState struct {
	held     map[string]int
	deferred map[string]int
}

func (s *lockState) clone() *lockState {
	c := &lockState{held: make(map[string]int, len(s.held)), deferred: make(map[string]int, len(s.deferred))}
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	return c
}

type lsChecker struct {
	pass *Pass
}

func (c *lsChecker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format, args...)
}

// checkExit reports locks still held at a path exit not covered by defers.
func (c *lsChecker) checkExit(st *lockState, at token.Pos) {
	for k, v := range st.held {
		if v > st.deferred[k] {
			c.reportf(at, "%s is still locked at this exit (missing %s or defer)", lockName(k), unlockName(k))
		}
	}
}

// lockName / unlockName render a state key for messages.
func lockName(k string) string { return strings.TrimSuffix(k, "/R") }
func unlockName(k string) string {
	if strings.HasSuffix(k, "/R") {
		return "RUnlock"
	}
	return "Unlock"
}

// mutexOp classifies a call as a mutex operation on a canonical key.
// rlock=true for the read side of an RWMutex.
func (c *lsChecker) mutexOp(call *ast.CallExpr) (key string, lock, unlock bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fo := calleeFunc(c.pass.TypesInfo, call)
	if fo == nil || fo.Pkg() == nil || fo.Pkg().Path() != "sync" {
		return "", false, false
	}
	base := exprKey(sel.X)
	if base == "" {
		return "", false, false
	}
	switch fo.Name() {
	case "Lock":
		return base, true, false
	case "Unlock":
		return base, false, true
	case "RLock":
		return base + "/R", true, false
	case "RUnlock":
		return base + "/R", false, true
	}
	return "", false, false
}

// exprKey canonicalizes an ident/selector chain ("sh.mu"); other receiver
// shapes are not tracked.
func exprKey(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

func (c *lsChecker) walkStmts(list []ast.Stmt, st *lockState) (*lockState, bool) {
	for _, stmt := range list {
		var term bool
		st, term = c.walkStmt(stmt, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *lsChecker) walkStmt(stmt ast.Stmt, st *lockState) (*lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, lk, ulk := c.mutexOp(call); key != "" {
				if lk {
					if st.held[key] > 0 && !strings.HasSuffix(key, "/R") {
						c.reportf(call.Pos(), "%s.Lock called while %s is already held (self-deadlock)", lockName(key), lockName(key))
					}
					st.held[key]++
				} else if ulk {
					if st.held[key] == 0 {
						c.reportf(call.Pos(), "%s.%s without a matching lock on this path", lockName(key), unlockName(key))
					} else {
						st.held[key]--
					}
				}
				return st, false
			}
			if name, ok := isTerminatorCall(c.pass.TypesInfo, call); ok {
				_ = name // crash paths are exempt from the pairing rule
				return st, true
			}
		}
		c.scanForbidden(s.X, st)
	case *ast.DeferStmt:
		c.walkLockDefer(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanForbidden(r, st)
		}
		c.checkExit(st, s.Pos())
		return st, true
	case *ast.SendStmt:
		if c.heldNow(st) {
			c.reportf(s.Pos(), "channel send while %s is held", c.heldNames(st))
		}
	case *ast.GoStmt:
		// The goroutine body runs unlocked; its argument expressions run now.
		for _, a := range s.Call.Args {
			c.scanForbidden(a, st)
		}
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.IfStmt:
		return c.walkLockIf(s, st)
	case *ast.ForStmt:
		return c.walkLockLoop(s.Init, s.Cond, s.Post, s.Body, st)
	case *ast.RangeStmt:
		c.scanForbidden(s.X, st)
		return c.walkLockLoop(nil, nil, nil, s.Body, st)
	case *ast.SwitchStmt:
		return c.walkLockSwitch(s.Init, s.Tag, s.Body, st)
	case *ast.TypeSwitchStmt:
		return c.walkLockSwitch(s.Init, nil, s.Body, st)
	case *ast.SelectStmt:
		if c.heldNow(st) {
			c.reportf(s.Pos(), "select while %s is held", c.heldNames(st))
		}
		return c.walkLockSelect(s, st)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue leave the construct; the loop walker re-joins on the
		// conservative side. goto was excluded up front.
		return st, true
	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.scanForbidden(e, st)
				return false
			}
			return true
		})
	}
	return st, false
}

func (c *lsChecker) walkLockDefer(s *ast.DeferStmt, st *lockState) {
	record := func(call *ast.CallExpr) {
		if key, _, ulk := c.mutexOp(call); key != "" && ulk {
			st.deferred[key]++
		}
	}
	record(s.Call)
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
	}
}

func (c *lsChecker) walkLockIf(s *ast.IfStmt, st *lockState) (*lockState, bool) {
	if s.Init != nil {
		st, _ = c.walkStmt(s.Init, st)
	}
	c.scanForbidden(s.Cond, st)
	thenSt, thenTerm := c.walkStmts(s.Body.List, st.clone())
	elseSt, elseTerm := st, false
	if s.Else != nil {
		elseSt, elseTerm = c.walkStmt(s.Else, st.clone())
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseSt, false
	case elseTerm:
		return thenSt, false
	default:
		return c.joinStates(s.Body.Rbrace, thenSt, elseSt), false
	}
}

// joinStates merges two branch states; a lock held on one side only is a
// pairing bug and is reported once at the join point.
func (c *lsChecker) joinStates(at token.Pos, a, b *lockState) *lockState {
	out := a.clone()
	keys := map[string]bool{}
	for k := range a.held {
		keys[k] = true
	}
	for k := range b.held {
		keys[k] = true
	}
	for k := range keys {
		if a.held[k] != b.held[k] {
			c.reportf(at, "%s is released on one branch but still held on the other", lockName(k))
			if b.held[k] < a.held[k] {
				out.held[k] = b.held[k] // keep the smaller count to avoid cascades
			}
		}
	}
	for k, v := range b.deferred {
		if v > out.deferred[k] {
			out.deferred[k] = v
		}
	}
	return out
}

func (c *lsChecker) walkLockLoop(init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt, st *lockState) (*lockState, bool) {
	if init != nil {
		st, _ = c.walkStmt(init, st)
	}
	if cond != nil {
		c.scanForbidden(cond, st)
	}
	entry := st.clone()
	end, term := c.walkStmts(body.List, st)
	if post != nil && !term {
		end, _ = c.walkStmt(post, end)
	}
	if !term {
		for k := range union(entry.held, end.held) {
			if entry.held[k] != end.held[k] {
				c.reportf(body.Rbrace, "%s lock/unlock imbalance across a loop iteration", lockName(k))
			}
		}
	}
	return entry, false
}

func union(a, b map[string]int) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (c *lsChecker) walkLockSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, st *lockState) (*lockState, bool) {
	if init != nil {
		st, _ = c.walkStmt(init, st)
	}
	if tag != nil {
		c.scanForbidden(tag, st)
	}
	out := st
	allTerm := true
	sawCase := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		sawCase = true
		end, term := c.walkStmts(cc.Body, st.clone())
		if !term {
			out = c.joinStates(cc.End(), out, end)
			allTerm = false
		}
	}
	if sawCase && allTerm {
		// Every case terminated; fall-through only on the no-match path.
		return st, false
	}
	return out, false
}

func (c *lsChecker) walkLockSelect(s *ast.SelectStmt, st *lockState) (*lockState, bool) {
	out := st
	// When a lock is held the select statement itself was already reported;
	// re-flagging each comm clause's channel op would be noise.
	held := c.heldNow(st)
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		entry := st.clone()
		if cc.Comm != nil && !held {
			entry, _ = c.walkStmt(cc.Comm, entry)
		}
		end, term := c.walkStmts(cc.Body, entry)
		if !term {
			out = c.joinStates(cc.End(), out, end)
		}
	}
	return out, false
}

func (c *lsChecker) heldNow(st *lockState) bool {
	for _, v := range st.held {
		if v > 0 {
			return true
		}
	}
	return false
}

func (c *lsChecker) heldNames(st *lockState) string {
	var names []string
	for k, v := range st.held {
		if v > 0 {
			names = append(names, lockName(k))
		}
	}
	if len(names) == 0 {
		return "a lock"
	}
	sortStrings(names)
	return strings.Join(names, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// scanForbidden reports blocking or heavy operations inside an expression
// evaluated while a lock is held.
func (c *lsChecker) scanForbidden(e ast.Expr, st *lockState) {
	if e == nil || !c.heldNow(st) {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.reportf(x.Pos(), "channel receive while %s is held", c.heldNames(st))
			}
		case *ast.FuncLit:
			return false // runs later, not under this lock necessarily
		case *ast.CallExpr:
			c.checkForbiddenCall(x, st)
		}
		return true
	})
}

func (c *lsChecker) checkForbiddenCall(call *ast.CallExpr, st *lockState) {
	fo := calleeFunc(c.pass.TypesInfo, call)
	if fo == nil || fo.Pkg() == nil {
		return
	}
	id := funcID(fo)
	if id == "time.Sleep" {
		c.reportf(call.Pos(), "time.Sleep while %s is held", c.heldNames(st))
		return
	}
	if blockedCallPkgs[fo.Pkg().Path()] {
		c.reportf(call.Pos(), "network call %s while %s is held", displayName(id), c.heldNames(st))
		return
	}
	for _, p := range heavyCallPrefixes {
		if strings.HasPrefix(id, p) {
			c.reportf(call.Pos(), "factorization-path call %s while %s is held (move it outside the critical section)",
				displayName(id), c.heldNames(st))
			return
		}
	}
}
