package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Annotation markers. NoallocMarker on a function's doc comment asserts the
// function allocates nothing at steady state; AllocOKMarker on (or directly
// above) a line suppresses noalloc findings for that line, documenting a
// deliberate cold-path allocation. The markers are ordinary comments, so the
// contract survives gofmt and shows up in godoc.
const (
	NoallocMarker = "//repro:noalloc"
	AllocOKMarker = "//repro:alloc-ok"
	// PooledMarker ("//repro:returns-pooled <mat|vec|ints|view|gen|mat32>") on a
	// constructor marks its result as a pool acquisition, so poolcheck tracks
	// call sites of wrappers like gaussMat the same way it tracks GetMat.
	PooledMarker = "//repro:returns-pooled"
)

// Index is the cross-package annotation database the analyzers consult: the
// set of noalloc-certified function IDs (see funcID) and the per-file
// suppression lines. The driver builds it over every loaded package in
// standalone mode; in vettool mode each package's entries travel between
// processes as facts (see facts.go).
type Index struct {
	// Noalloc holds funcIDs certified allocation-free, mapped to the
	// position of their annotation (NoPos for entries imported as facts).
	Noalloc map[string]token.Pos
	// allocOK maps filename -> set of line numbers carrying a suppression.
	allocOK map[string]map[int]bool
	// Pooled maps funcIDs annotated //repro:returns-pooled to the pool kind
	// their result belongs to.
	Pooled map[string]poolKind
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		Noalloc: map[string]token.Pos{},
		allocOK: map[string]map[int]bool{},
		Pooled:  map[string]poolKind{},
	}
}

// ReturnsPooled reports whether id is an annotated pooled-object constructor
// and, if so, of which kind.
func (ix *Index) ReturnsPooled(id string) (poolKind, bool) {
	k, ok := ix.Pooled[id]
	return k, ok
}

// parsePoolKind maps a marker argument to a kind.
func parsePoolKind(s string) (poolKind, bool) {
	switch s {
	case "mat":
		return kMat, true
	case "vec":
		return kVec, true
	case "ints":
		return kInts, true
	case "view":
		return kView, true
	case "gen":
		return kGen, true
	case "mat32":
		return kMat32, true
	}
	return 0, false
}

// IsNoalloc reports whether id was annotated //repro:noalloc.
func (ix *Index) IsNoalloc(id string) bool {
	_, ok := ix.Noalloc[id]
	return ok
}

// Suppressed reports whether the line at pos (or the line above it) carries
// an //repro:alloc-ok suppression.
func (ix *Index) Suppressed(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := ix.allocOK[p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

// AddFact records a noalloc certification imported from another package's
// facts.
func (ix *Index) AddFact(id string) {
	if _, ok := ix.Noalloc[id]; !ok {
		ix.Noalloc[id] = token.NoPos
	}
}

// AddFacts merges a fact set imported from a dependency's vetx file.
func (ix *Index) AddFacts(noalloc []string, pooled map[string]string) {
	for _, id := range noalloc {
		ix.AddFact(id)
	}
	for id, kind := range pooled {
		if k, ok := parsePoolKind(kind); ok {
			if _, have := ix.Pooled[id]; !have {
				ix.Pooled[id] = k
			}
		}
	}
}

// Facts dumps the whole index as exportable facts. Vetx files written from
// this are transitively complete: the index already merged every
// dependency's facts before the current package's were added.
func (ix *Index) Facts() (noalloc []string, pooled map[string]string) {
	for id := range ix.Noalloc {
		noalloc = append(noalloc, id)
	}
	sort.Strings(noalloc)
	pooled = map[string]string{}
	for id, k := range ix.Pooled {
		pooled[id] = k.String()
	}
	return noalloc, pooled
}

// PackageFacts returns the noalloc funcIDs belonging to pkgPath, the entries
// a vettool run exports for dependent packages.
func (ix *Index) PackageFacts(pkgPath string) []string {
	var out []string
	for id := range ix.Noalloc {
		if strings.HasPrefix(id, pkgPath+".") {
			out = append(out, id)
		}
	}
	return out
}

// AddPackage scans one package's files for annotations. pkgPath qualifies
// the IDs; the fset must be the one the files were parsed with.
func (ix *Index) AddPackage(fset *token.FileSet, pkgPath string, files []*ast.File) {
	for _, f := range files {
		// Suppression lines: any comment in the file whose text starts with
		// the alloc-ok marker.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, AllocOKMarker) {
					p := fset.Position(c.Pos())
					m := ix.allocOK[p.Filename]
					if m == nil {
						m = map[int]bool{}
						ix.allocOK[p.Filename] = m
					}
					m[p.Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if pos := markerPos(d.Doc, NoallocMarker); pos != token.NoPos {
					ix.Noalloc[declID(pkgPath, d)] = pos
				}
				if arg, ok := markerArg(d.Doc, PooledMarker); ok {
					if k, ok := parsePoolKind(arg); ok {
						ix.Pooled[declID(pkgPath, d)] = k
					}
				}
			case *ast.GenDecl:
				// Interface method declarations may carry the annotation: a
				// call through the interface is then permitted inside noalloc
				// functions, and every concrete implementation is required
				// (by the noalloc analyzer) to be annotated itself.
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						if len(m.Names) == 0 {
							continue // embedded interface
						}
						if pos := markerPos(m.Doc, NoallocMarker); pos != token.NoPos {
							for _, name := range m.Names {
								ix.Noalloc[pkgPath+".("+ts.Name.Name+")."+name.Name] = pos
							}
						}
					}
				}
			}
		}
	}
}

// declID derives the funcID of a declaration syntactically (the types-based
// funcID and this must agree; TestDeclIDMatchesTypes pins it).
func declID(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkgPath + "." + d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver [T]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return pkgPath + ".(" + tt.Name + ")." + d.Name.Name
		default:
			return pkgPath + ".(?)." + d.Name.Name
		}
	}
}

// markerArg returns the space-separated argument of the first comment in g
// beginning with marker ("//repro:returns-pooled mat" -> "mat").
func markerArg(g *ast.CommentGroup, marker string) (string, bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		if strings.HasPrefix(c.Text, marker) {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, marker)), true
		}
	}
	return "", false
}

// markerPos returns the position of the first comment in g that begins with
// marker, or NoPos.
func markerPos(g *ast.CommentGroup, marker string) token.Pos {
	if g == nil {
		return token.NoPos
	}
	for _, c := range g.List {
		if strings.HasPrefix(c.Text, marker) {
			return c.Pos()
		}
	}
	return token.NoPos
}
