// Package locksafe exercises the locksafe analyzer: lock pairing on all
// paths and critical-section hygiene.
package locksafe

import (
	"errors"
	"sync"
	"time"

	"repro/internal/tile"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[int]int
}

// ok: the canonical defer pairing.
func okDefer(s *store, k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

// ok: explicit pairing.
func okExplicit(s *store, k, v int) {
	s.mu.Lock()
	s.vals[k] = v
	s.mu.Unlock()
}

// bug: the early return leaves the mutex held.
func missingUnlockOnError(s *store, k int) error {
	s.mu.Lock()
	if s.vals == nil {
		return errors.New("no store") // want `s.mu is still locked at this exit \(missing Unlock or defer\)`
	}
	s.vals[k] = 1
	s.mu.Unlock()
	return nil
}

// bug: self-deadlock.
func doubleLock(s *store) {
	s.mu.Lock()
	s.mu.Lock() // want `s.mu.Lock called while s.mu is already held \(self-deadlock\)`
	s.mu.Unlock()
	s.mu.Unlock()
}

// bug: unlock of a mutex this path never locked.
func unlockWithoutLock(s *store) {
	s.mu.Unlock() // want `s.mu.Unlock without a matching lock on this path`
}

// ok: released in both branches.
func okBranchRelease(s *store, cond bool) {
	s.mu.Lock()
	if cond {
		s.vals[0] = 1
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
}

// bug: released in one branch only.
func releasedOneBranch(s *store, cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
	} // want `s.mu is released on one branch but still held on the other`
	s.vals[0] = 1
}

// bug: sleeping inside the critical section.
func sleepUnderLock(s *store) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
	s.mu.Unlock()
}

// bug: channel operations inside the critical section.
func chanSendUnderLock(s *store, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while s.mu is held`
	s.mu.Unlock()
}

func chanRecvUnderLock(s *store, ch chan int) {
	s.mu.Lock()
	<-ch // want `channel receive while s.mu is held`
	s.mu.Unlock()
}

func selectUnderLock(s *store, ch chan int) {
	s.mu.Lock()
	select { // want `select while s.mu is held`
	case <-ch:
	default:
	}
	s.mu.Unlock()
}

// ok: the channel op happens after the critical section.
func okChanAfterUnlock(s *store, ch chan int) {
	s.mu.Lock()
	v := s.vals[0]
	s.mu.Unlock()
	ch <- v
}

// bug: factorization-scale work under the shard mutex.
func heavyUnderLock(s *store) {
	s.mu.Lock()
	tile.Compress(nil, 0.5, 4) // want `factorization-path call internal/tile.Compress while s.mu is held`
	s.mu.Unlock()
}

// ok: reader pairing on the RWMutex.
func okRead(s *store, k int) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.vals[k]
}

// bug: read lock leaks.
func leakRLock(s *store, k int) int {
	s.rw.RLock()
	return s.vals[k] // want `s.rw is still locked at this exit \(missing RUnlock or defer\)`
}

// bug: a lock acquired every iteration and never released.
func loopImbalance(s *store, n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
	} // want `s.mu lock/unlock imbalance across a loop iteration`
}

// ok: lock and unlock both inside the iteration.
func okLoopPaired(s *store, n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.vals[i] = i
		s.mu.Unlock()
	}
}
