// Package poolcheck exercises the poolcheck analyzer: pool pairing on all
// paths, error returns, defers, loops, double puts and use-after-put.
package poolcheck

import (
	"errors"

	"repro/internal/linalg"
)

// ok: straight-line acquire/release.
func okSimple(n int) {
	m := linalg.GetMat(n, n)
	m.Set(0, 0, 1)
	linalg.PutMat(m)
}

// ok: deferred release covers every path, including the error return.
func okDefer(n int) error {
	v := linalg.GetVec(n)
	defer linalg.PutVec(v)
	if n > 3 {
		return errors.New("too big")
	}
	v[0] = 1
	return nil
}

// leak: the error path returns without releasing.
func leakErrorPath(n int) error {
	m := linalg.GetMat(n, n) // want `GetMat result is not released on the return path at line \d+`
	if n > 3 {
		return errors.New("too big")
	}
	linalg.PutMat(m)
	return nil
}

// leak: no release anywhere.
func leakAlways(n int) {
	v := linalg.GetVec(n) // want `GetVec result is not released on the function exit at line \d+`
	v[0] = 2
}

// leak: released in one branch only, then function falls off the end.
func leakConditionalPut(n int) {
	w := linalg.GetInts(n) // want `GetInts result is released on some paths but not on the function exit`
	if n%2 == 0 {
		linalg.PutInts(w)
	}
}

// ok: released in both branches.
func okBothBranches(n int) {
	w := linalg.GetInts(n)
	if n%2 == 0 {
		linalg.PutInts(w)
	} else {
		linalg.PutInts(w)
	}
}

// double put: both branches release, then an unconditional second release.
func doublePut(n int) {
	v := linalg.GetVec(n)
	linalg.PutVec(v)
	linalg.PutVec(v) // want `PutVec called twice on the same vec \(double put\)`
}

// use after put.
func useAfterPut(n int) float64 {
	v := linalg.GetVec(n) // want `pooled vec is used at line \d+ after PutVec returned it to the pool`
	linalg.PutVec(v)
	return v[0]
}

// kind mismatch: a view's shared backing must go back via PutMatView.
func wrongPutKind(parent *linalg.Matrix) {
	v := linalg.GetMatView(parent, 0, 0, 1, 1)
	linalg.PutMat(v) // want `GetMatView result released with PutMat \(needs PutMatView\)`
}

// discard: the result can never be released.
func discard(n int) {
	linalg.GetMat(n, n) // want `result of GetMat is discarded`
}

// overwrite: rebinding the only handle loses the first buffer.
func overwrite(n int) {
	m := linalg.GetMat(n, n) // want `GetMat result is overwritten before being released`
	m = linalg.GetMat(n, n)
	linalg.PutMat(m)
}

// ok: per-iteration acquire and release.
func okLoop(n int) {
	for i := 0; i < n; i++ {
		v := linalg.GetVec(i)
		linalg.PutVec(v)
	}
}

// leak: a loop-scoped buffer survives its iteration.
func leakLoopScoped(n int) {
	for i := 0; i < n; i++ {
		v := linalg.GetVec(i) // want `GetVec result is not released by the end of the loop iteration`
		_ = v
	}
}

// defer-in-loop: releases pile up until function exit.
func deferInLoop(n int) {
	for i := 0; i < n; i++ {
		v := linalg.GetVec(i)
		defer linalg.PutVec(v) // want `deferred PutVec inside a loop only runs at function exit`
	}
}

// ok: loop-carried buffer released on the continue path and after the loop,
// the Compress-shaped pattern (conditional put + regrow).
func okLoopCarried(n int) {
	var b *linalg.Matrix
	for l := 1; l < n; l *= 2 {
		b = linalg.GetMat(l, n)
		if l*2 >= n {
			break
		}
		linalg.PutMat(b)
	}
	linalg.PutMat(b)
}

// ok: conditional acquisition paired with a nil-guarded release, the
// sweepColumn Student-t scale pattern.
func okNilGuardedPut(n int, nu float64) {
	var s []float64
	if nu > 0 {
		s = linalg.GetVec(n)
	}
	if s != nil {
		linalg.PutVec(s)
	}
}

// same shape with the guard inverted.
func okNilGuardedPutInverted(n int, nu float64) {
	var s []float64
	if nu > 0 {
		s = linalg.GetVec(n)
	}
	if s == nil {
		return
	}
	linalg.PutVec(s)
}

// leak: the nil guard alone does not release anything.
func leakNilGuardNoPut(n int, nu float64) {
	var s []float64
	if nu > 0 {
		s = linalg.GetVec(n) // want `GetVec result is released on some paths but not on the function exit`
	}
	if s != nil {
		s[0] = 1
	}
}

// leak on an explicit panic path.
func leakOnPanic(n int) {
	v := linalg.GetVec(n) // want `GetVec result is not released on the panic path`
	if n > 10 {
		panic("n too large")
	}
	linalg.PutVec(v)
}

// ok: the deferred release also covers the panic path.
func okPanicDefer(n int) {
	v := linalg.GetVec(n)
	defer linalg.PutVec(v)
	if n > 10 {
		panic("n too large")
	}
}

// ok: ownership escapes into a returned struct; the caller releases.
type holder struct{ m *linalg.Matrix }

func okEscapeStruct(n int) *holder {
	m := linalg.GetMat(n, n)
	return &holder{m: m}
}

// ok: ownership transfers out via return.
func okEscapeReturn(n int) *linalg.Matrix {
	m := linalg.GetMat(n, n)
	return m
}

// ok: switch releases in every case including default.
func okSwitch(n int) {
	v := linalg.GetVec(n)
	switch n {
	case 0:
		linalg.PutVec(v)
	case 1:
		v[0] = 1
		linalg.PutVec(v)
	default:
		linalg.PutVec(v)
	}
}

// leak: one switch case misses the release.
func leakSwitchCase(n int) {
	v := linalg.GetVec(n) // want `GetVec result is released on some paths but not on the function exit`
	switch n {
	case 0:
		linalg.PutVec(v)
	case 1: // missing put
	default:
		linalg.PutVec(v)
	}
}

// ok: annotated constructor call sites are tracked like GetMat...
//
//repro:returns-pooled mat
func newScratch(n int) *linalg.Matrix {
	return linalg.GetMat(n, n)
}

// ...so leaking one is reported.
func leakAnnotatedConstructor(n int) {
	m := newScratch(n) // want `newScratch result is not released on the function exit`
	_ = m.Rows
}

// ok: annotated constructor used correctly.
func okAnnotatedConstructor(n int) int {
	m := newScratch(n)
	r := m.Rows
	linalg.PutMat(m)
	return r
}

// ok: a tuple constructor where only one result is pooled (getLaneWS shape).
//
//repro:returns-pooled vec
func newPair(n int) (int, []float64) {
	return n, linalg.GetVec(n)
}

func leakTupleConstructor(n int) {
	k, buf := newPair(n) // want `newPair result is not released on the function exit`
	_ = k
	_ = buf
}

func okTupleConstructor(n int) {
	k, buf := newPair(n)
	_ = k
	linalg.PutVec(buf)
}
