// Package taskdiscipline exercises the taskdiscipline analyzer: local task
// groups must be waited on, and SubmitErr errors must be collected.
package taskdiscipline

import (
	"repro/internal/taskrt"
)

// ok: submitted and waited.
func okWaited(rt *taskrt.Runtime) {
	g := rt.NewGroup()
	g.Submit("t", 0, func() {})
	g.Wait()
}

// bug: the function can return while tasks are still running.
func missingWait(rt *taskrt.Runtime) {
	g := rt.NewGroup() // want `taskrt group is never waited on \(missing Wait\)`
	g.Submit("t", 0, func() {})
}

// bug: errors from the parallel section vanish.
func missingErr(rt *taskrt.Runtime) {
	g := rt.NewGroup() // want `taskrt group uses SubmitErr but its error is never collected \(missing Err\)`
	g.SubmitErr("t", 0, func() error { return nil })
	g.Wait()
}

// ok: full discipline.
func okErrChecked(rt *taskrt.Runtime) error {
	g := rt.NewGroup()
	g.SubmitErr("t", 0, func() error { return nil })
	g.Wait()
	return g.Err()
}

// ok: plain Submit carries no error, so Wait alone suffices.
func okSubmitNoErr(rt *taskrt.Runtime) {
	g := rt.NewGroup()
	g.Submit("a", 0, func() {})
	g.Submit("b", 0, func() {})
	g.Wait()
}

// ok: the group escapes; the caller owns the obligation.
func okEscapesReturn(rt *taskrt.Runtime) *taskrt.Group {
	g := rt.NewGroup()
	g.Submit("t", 0, func() {})
	return g
}

// ok: handed to a helper that waits.
func okPassedAlong(rt *taskrt.Runtime) {
	g := rt.NewGroup()
	g.SubmitErr("t", 0, func() error { return nil })
	drain(g)
}

func drain(g *taskrt.Group) {
	g.Wait()
	_ = g.Err()
}
