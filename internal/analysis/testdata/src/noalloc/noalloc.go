// Package noalloc exercises the noalloc analyzer: allocating constructs,
// transitive call certification, suppressions and interface annotations.
package noalloc

import (
	"math"

	"repro/internal/linalg"
)

//repro:noalloc
func okPure(x float64) float64 { return math.Sqrt(x) * 2 }

// ok: pool accessors are whitelisted trusted primitives.
//
//repro:noalloc
func okPool(n int) {
	v := linalg.GetVec(n)
	v[0] = 1
	linalg.PutVec(v)
}

//repro:noalloc
func annotatedHelper(x float64) float64 { return x * 2 }

//repro:noalloc
func okCallAnnotated(x float64) float64 { return annotatedHelper(x) }

// unannotated functions are not checked at all.
func uncheckedMake(n int) []float64 { return make([]float64, n) }

//repro:noalloc
func badMake(n int) []float64 {
	return make([]float64, n) // want `make allocates in //repro:noalloc function badMake`
}

//repro:noalloc
func badNew() *int {
	return new(int) // want `new allocates`
}

//repro:noalloc
func badAppend(xs []int, x int) []int {
	return append(xs, x) // want `append may reallocate its backing array`
}

//repro:noalloc
func badClosure(n int) func() int {
	return func() int { return n } // want `func literal allocates a closure`
}

//repro:noalloc
func badGo() {
	go uncheckedMake(1) // want `go statement spawns a goroutine`
}

//repro:noalloc
func badMapWrite(m map[int]int) {
	m[1] = 2 // want `map assignment may allocate`
}

// reading a map does not allocate.
//
//repro:noalloc
func okMapRead(m map[int]int) int { return m[1] }

//repro:noalloc
func badChanSend(ch chan int) {
	ch <- 1 // want `channel send blocks`
}

//repro:noalloc
func badChanRecv(ch chan int) int {
	return <-ch // want `channel receive blocks`
}

//repro:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//repro:noalloc
func badStringConv(b []byte) string {
	return string(b) // want `conversion to string allocates`
}

//repro:noalloc
func badBox(x int) any {
	return x // want `int value boxed into interface \(allocates\)`
}

// pointers ride in the interface word without boxing.
//
//repro:noalloc
func okPtrBox(p *point) any { return p }

//repro:noalloc
func badCallUnannotated(n int) []float64 {
	return uncheckedMake(n) // want `call to fixture/noalloc.uncheckedMake, which is not annotated //repro:noalloc`
}

//repro:noalloc
func badIndirect(f func() int) int {
	return f() // want `call through a function value cannot be certified allocation-free`
}

//repro:noalloc
func badSliceLit() []int {
	return []int{1, 2} // want `slice literal allocates its backing array`
}

type point struct{ x, y int }

//repro:noalloc
func badAddrLit() *point {
	return &point{1, 2} // want `address-taken composite literal escapes to the heap`
}

// value struct literals stay on the stack.
//
//repro:noalloc
func okValueLit() point { return point{1, 2} }

// a deliberate cold-path allocation, documented and suppressed.
//
//repro:noalloc
func okSuppressed(n int) []float64 {
	return make([]float64, n) //repro:alloc-ok cold resize path
}

// Stepper's annotated method makes interface calls legal in noalloc
// functions and obligates every implementation.
type Stepper interface {
	//repro:noalloc
	Step(x float64) float64
}

type okImpl struct{}

//repro:noalloc
func (okImpl) Step(x float64) float64 { return x + 1 }

type badImpl struct{}

func (badImpl) Step(x float64) float64 { return x + 2 } // want `fixture/noalloc.\(badImpl\).Step implements Stepper.Step, which is annotated //repro:noalloc, but is not annotated itself`

//repro:noalloc
func okIfaceCall(g Stepper, x float64) float64 {
	return g.Step(x)
}
