package analysis

import (
	"go/ast"
	"go/types"
)

// Taskdiscipline checks taskrt group hygiene: a *taskrt.Group created with
// NewGroup and kept local to the function must be waited on (Wait), and when
// work is submitted through SubmitErr its error must be collected (Err) —
// otherwise failures in the parallel section vanish silently. Groups that
// escape the function (returned, stored, passed along) are the receiver's
// responsibility and are not reported.
var Taskdiscipline = &Analyzer{
	Name: "taskdiscipline",
	Doc:  "check that taskrt groups are waited on and their errors collected",
	Run:  runTaskdiscipline,
}

const newGroupID = "repro/internal/taskrt.(Runtime).NewGroup"

// groupMethods are the Group methods a local group may have called on it
// without counting as an escape.
var groupMethods = map[string]bool{
	"Submit": true, "SubmitErr": true, "Wait": true, "Err": true, "NewHandle": true,
}

func runTaskdiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGroups(pass, fd)
		}
	}
	return nil
}

// groupUse aggregates what one function does with one group variable.
type groupUse struct {
	pos       ast.Expr // the NewGroup call, for reporting
	wait      bool
	err       bool
	submit    bool
	submitErr bool
	escapes   bool
}

func checkGroups(pass *Pass, fd *ast.FuncDecl) {
	groups := map[types.Object]*groupUse{}

	// Collect `g := rt.NewGroup()` bindings.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fo := calleeFunc(pass.TypesInfo, call)
		if fo == nil || funcID(fo) != newGroupID {
			return true
		}
		id, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			groups[obj] = &groupUse{pos: call}
		}
		return true
	})
	if len(groups) == 0 {
		return
	}

	// Classify every use of each group variable. A use as the receiver of a
	// known Group method is discipline; any other appearance (argument,
	// return value, struct field, channel send, reassignment source) is an
	// escape that transfers the obligation.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		g, ok := groups[pass.TypesInfo.Uses[id]]
		if !ok || !groupMethods[sel.Sel.Name] {
			return true
		}
		switch sel.Sel.Name {
		case "Wait":
			g.wait = true
		case "Err":
			g.err = true
		case "Submit":
			g.submit = true
		case "SubmitErr":
			g.submitErr = true
		}
		// The receiver ident is accounted for; still descend into arguments.
		for _, a := range call.Args {
			markEscapes(pass, a, groups)
		}
		return false
	})

	// Any remaining bare reference to a group variable is an escape.
	markEscapes(pass, fd.Body, groups)

	for _, g := range groups {
		if g.escapes {
			continue
		}
		if !g.wait {
			pass.Reportf(g.pos.Pos(), "taskrt group is never waited on (missing Wait); its tasks may still be running at return")
			continue
		}
		if g.submitErr && !g.err {
			pass.Reportf(g.pos.Pos(), "taskrt group uses SubmitErr but its error is never collected (missing Err)")
		}
	}
}

// markEscapes marks group variables referenced under n outside the
// receiver-of-a-known-method position as escaped.
func markEscapes(pass *Pass, n ast.Node, groups map[types.Object]*groupUse) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			// Skip the receiver of g.<Method>(...) but examine the arguments.
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := unparen(sel.X).(*ast.Ident); ok {
					if _, isGroup := groups[pass.TypesInfo.Uses[id]]; isGroup && groupMethods[sel.Sel.Name] {
						for _, a := range x.Args {
							markEscapes(pass, a, groups)
						}
						return false
					}
				}
			}
			return true
		case *ast.AssignStmt:
			// The defining assignment's RHS call is not an escape; any other
			// assignment involving the variable is.
			for _, r := range x.Rhs {
				if call, ok := unparen(r).(*ast.CallExpr); ok {
					if fo := calleeFunc(pass.TypesInfo, call); fo != nil && funcID(fo) == newGroupID {
						for _, a := range call.Args {
							markEscapes(pass, a, groups)
						}
						continue
					}
				}
				markEscapes(pass, r, groups)
			}
			return false
		case *ast.Ident:
			if g, ok := groups[pass.TypesInfo.Uses[x]]; ok {
				g.escapes = true
			}
		}
		return true
	})
}
