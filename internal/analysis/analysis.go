// Package analysis is the project's static-analysis suite: a small,
// dependency-free (stdlib-only) analogue of golang.org/x/tools/go/analysis
// plus four project-specific analyzers that turn the repository's unwritten
// hot-path contracts into compile-time checks:
//
//   - poolcheck: every linalg.GetMat/GetVec/GetInts/GetMatView acquisition is
//     released by the matching Put* on all paths (including error returns and
//     explicit panics), with double-put and use-after-put detection.
//   - noalloc: functions annotated //repro:noalloc contain no allocating
//     constructs and call only noalloc-annotated or whitelisted functions.
//   - locksafe: in the serving layer and the session factor cache, mutexes
//     are released on all paths and nothing blocking (channel operations,
//     time.Sleep, factorization) runs while a shard or cache mutex is held.
//   - taskdiscipline: every locally created taskrt.Group is waited on, and
//     its Err() is checked whenever SubmitErr was used.
//
// The suite runs through cmd/reprolint, either standalone (reprolint ./...)
// or as a go vet tool (go vet -vettool=$(which reprolint) ./...). The x/tools
// module is deliberately not used: the repository builds from the standard
// library alone, so the checker that gates CI must too.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package through its
// Pass and reports diagnostics; analyzers are stateless and safe to reuse
// across packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax, types and the cross-package annotation
// index to an analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Index     *Index

	// Report records one diagnostic. The driver owns formatting and exit
	// status.
	Report func(d Diagnostic)

	analyzer *Analyzer
}

// Diagnostic is one finding, positioned in the fileset of the Pass.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf is the printf form of Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Poolcheck, Noalloc, Locksafe, Taskdiscipline}
}

// ByName returns the named analyzers, or an error naming the unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies every analyzer to one loaded package and returns the
// diagnostics sorted by position. Files named *_test.go are excluded up
// front: the contracts gate production paths, and tests intentionally poke
// at them (leaking on purpose, holding locks across channel waits).
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, idx *Index) ([]Diagnostic, error) {
	var nonTest []*ast.File
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		nonTest = append(nonTest, f)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset: fset, Files: nonTest, Pkg: pkg, TypesInfo: info, Index: idx,
			analyzer: a,
		}
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path(), err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// funcID returns the canonical cross-package identifier of a function or
// method object: "path.Name" for package functions, "path.(Recv).Name" for
// methods (pointer receivers stripped, so value and pointer methods share an
// ID), and "path.(Iface).Name" for interface methods.
func funcID(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if fn.Pkg() == nil { // error.Error, unsafe builtins
			return fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	name := "?"
	switch t := rt.(type) {
	case *types.Named:
		name = t.Obj().Name()
	case *types.Interface:
		// Method expression through an unnamed interface: fall back to the
		// method's own package qualification below.
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return pkg + ".(" + name + ")." + fn.Name()
}
