package analysis

import "testing"

func TestLocksafe(t *testing.T) {
	RunFixture(t, Locksafe, "locksafe")
}

func TestTaskdiscipline(t *testing.T) {
	RunFixture(t, Taskdiscipline, "taskdiscipline")
}
