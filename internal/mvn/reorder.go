package mvn

import (
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// UnivariateReorder computes the Genz–Bretz univariate variable reordering
// for the MVN problem (a, b, Σ): at each step it moves forward the variable
// with the smallest conditional interval probability, conditioning through
// a pivoted Cholesky sweep with truncated-normal expectations for the
// already-placed variables. Integrating the variables in this order
// concentrates the SOV integrand and reduces QMC variance substantially for
// heterogeneous limits.
//
// It returns the permutation (perm[k] = original index of the k-th variable
// in the new order). Σ, a and b are not modified.
func UnivariateReorder(a, b []float64, sigma *linalg.Matrix) []int {
	n := sigma.Rows
	c := sigma.Clone()
	aa := append([]float64(nil), a...)
	bb := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	l := linalg.NewMatrix(n, n)
	y := make([]float64, n)

	for j := 0; j < n; j++ {
		// Select the remaining variable with the smallest conditional
		// interval probability.
		best, bestP := j, math.Inf(1)
		for i := j; i < n; i++ {
			den := c.At(i, i)
			s := 0.0
			for t := 0; t < j; t++ {
				den -= l.At(i, t) * l.At(i, t)
				s += l.At(i, t) * y[t]
			}
			if den < 1e-14 {
				den = 1e-14
			}
			sd := math.Sqrt(den)
			p := stats.PhiInterval(shiftLimit(aa[i], s, sd), shiftLimit(bb[i], s, sd))
			if p < bestP {
				bestP, best = p, i
			}
		}
		if best != j {
			swapProblem(c, l, aa, bb, perm, j, best)
		}
		// Cholesky step for row/column j.
		d := c.At(j, j)
		s := 0.0
		for t := 0; t < j; t++ {
			d -= l.At(j, t) * l.At(j, t)
			s += l.At(j, t) * y[t]
		}
		if d < 1e-14 {
			d = 1e-14
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			v := c.At(i, j)
			for t := 0; t < j; t++ {
				v -= l.At(i, t) * l.At(j, t)
			}
			l.Set(i, j, v/ljj)
		}
		// Expected value of the truncated conditional variable.
		ap := shiftLimit(aa[j], s, ljj)
		bp := shiftLimit(bb[j], s, ljj)
		y[j] = truncatedNormalMean(ap, bp)
	}
	return perm
}

// swapProblem exchanges variables i and j in the working covariance, the
// partial Cholesky rows, the limits and the permutation.
func swapProblem(c, l *linalg.Matrix, a, b []float64, perm []int, i, j int) {
	n := c.Rows
	for t := 0; t < n; t++ {
		vi, vj := c.At(i, t), c.At(j, t)
		c.Set(i, t, vj)
		c.Set(j, t, vi)
	}
	for t := 0; t < n; t++ {
		vi, vj := c.At(t, i), c.At(t, j)
		c.Set(t, i, vj)
		c.Set(t, j, vi)
	}
	for t := 0; t < min(i, j); t++ {
		vi, vj := l.At(i, t), l.At(j, t)
		l.Set(i, t, vj)
		l.Set(j, t, vi)
	}
	a[i], a[j] = a[j], a[i]
	b[i], b[j] = b[j], b[i]
	perm[i], perm[j] = perm[j], perm[i]
}

// truncatedNormalMean returns E[Z | a < Z < b] for standard normal Z, with
// a stable fallback when the interval probability underflows.
func truncatedNormalMean(a, b float64) float64 {
	p := stats.PhiInterval(a, b)
	if p <= 0 {
		switch {
		case !math.IsInf(a, 0) && !math.IsInf(b, 0):
			return 0.5 * (a + b)
		case math.IsInf(b, 1):
			return a
		default:
			return b
		}
	}
	num := stats.PhiDensity(a) - stats.PhiDensity(b)
	return num / p
}

// BlockReorder computes a tile-friendly reordering in the style of Cao,
// Genton, Keyes & Turkiyyah: whole blocks of `block` consecutive variables
// are reordered by their aggregate (minimum) marginal interval probability
// while the variables inside each block keep their relative order. This
// preserves the spatial locality that Tile Low-Rank compression depends on,
// unlike the univariate reordering.
func BlockReorder(a, b []float64, sigma *linalg.Matrix, block int) []int {
	n := sigma.Rows
	if block <= 0 {
		block = 1
	}
	nb := (n + block - 1) / block
	score := make([]float64, nb)
	for bi := 0; bi < nb; bi++ {
		lo := bi * block
		hi := min(lo+block, n)
		s := math.Inf(1)
		for i := lo; i < hi; i++ {
			sd := math.Sqrt(sigma.At(i, i))
			p := stats.PhiInterval(shiftLimit(a[i], 0, sd), shiftLimit(b[i], 0, sd))
			s = math.Min(s, p)
		}
		score[bi] = s
	}
	order := make([]int, nb)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return score[order[x]] < score[order[y]] })
	perm := make([]int, 0, n)
	for _, bi := range order {
		lo := bi * block
		hi := min(lo+block, n)
		for i := lo; i < hi; i++ {
			perm = append(perm, i)
		}
	}
	return perm
}

// PermuteProblem applies a permutation to an MVN problem, returning the
// permuted covariance and limits: out[i] = in[perm[i]].
func PermuteProblem(a, b []float64, sigma *linalg.Matrix, perm []int) ([]float64, []float64, *linalg.Matrix) {
	n := len(perm)
	ap := make([]float64, n)
	bp := make([]float64, n)
	sp := linalg.NewMatrix(n, n)
	for i, pi := range perm {
		ap[i] = a[pi]
		bp[i] = b[pi]
		for j, pj := range perm {
			sp.Set(i, j, sigma.At(pi, pj))
		}
	}
	return ap, bp, sp
}
