package mvn

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/taskrt"
	"repro/internal/tlr"
)

// TestPMVNSweepF32MatchesF64 is the accuracy property for the f32 sweep:
// with the conditioning state in float32 (the probability accumulation stays
// f64), the estimate must land within the QMC error bar of the f64 sweep on
// the same randomized points — the per-step rounding of order 2⁻²⁴ is far
// below the QMC sampling error at any practical N. Covers dense and TLR
// factors across the three query regimes.
func TestPMVNSweepF32MatchesF64(t *testing.T) {
	g := geo.RegularGrid(8, 8)
	k := &cov.Exponential{Sigma2: 1, Range: 0.15}
	sigma := cov.Matrix(g, k)
	n := 64
	rt := taskrt.New(4)
	defer rt.Shutdown()

	tl := tlr.BuildFromKernel(g, k, 16, 1e-7, 0)
	if err := tlr.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	factors := map[string]Factor{
		"dense": newDenseFactor(t, sigma, 16),
		"tlr":   NewTLRFactor(tl),
	}

	regimes := []struct {
		name string
		a, b float64 // broadcast limits; ±Inf allowed
	}{
		{"orthant", math.Inf(-1), 0.8},
		{"excursion", -0.3, math.Inf(1)},
		{"wide", -1.5, 2.0},
	}
	for fname, f := range factors {
		for _, rg := range regimes {
			a := make([]float64, n)
			b := make([]float64, n)
			for i := range a {
				a[i], b[i] = rg.a, rg.b
			}
			opt := Options{N: 2000, Replicates: 4}
			r64 := PMVN(rt, f, a, b, opt)
			opt.SweepF32 = true
			r32 := PMVN(rt, f, a, b, opt)
			bar := 4*(r32.StdErr+r64.StdErr) + 1e-4*r64.Prob + 1e-9
			if d := math.Abs(r32.Prob - r64.Prob); d > bar {
				t.Errorf("%s/%s: f32 %v vs f64 %v differ by %v > error bar %v",
					fname, rg.name, r32.Prob, r64.Prob, d, bar)
			}
			if r32.StdErr <= 0 {
				t.Errorf("%s/%s: f32 sweep reported non-positive stderr %v",
					fname, rg.name, r32.StdErr)
			}
		}
	}
}

// TestPMVTSweepF32MatchesF64 repeats the accuracy property on the Student-t
// path: the chi-scale applied to the limits runs in f64, only the
// conditioning sweep narrows.
func TestPMVTSweepF32MatchesF64(t *testing.T) {
	g := geo.RegularGrid(6, 6)
	k := &cov.Exponential{Sigma2: 1, Range: 0.2}
	sigma := cov.Matrix(g, k)
	n := 36
	f := newDenseFactor(t, sigma, 9)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = -0.5, 1.5
	}
	opt := Options{N: 2000, Replicates: 4}
	r64 := PMVT(rt, f, a, b, 7, opt)
	opt.SweepF32 = true
	r32 := PMVT(rt, f, a, b, 7, opt)
	bar := 4*(r32.StdErr+r64.StdErr) + 1e-4*r64.Prob + 1e-9
	if d := math.Abs(r32.Prob - r64.Prob); d > bar {
		t.Errorf("mvt: f32 %v vs f64 %v differ by %v > error bar %v",
			r32.Prob, r64.Prob, d, bar)
	}
}

// TestPMVNSweepF32Deterministic pins that the f32 sweep, like the f64 one,
// is bit-deterministic across worker counts.
func TestPMVNSweepF32Deterministic(t *testing.T) {
	g := geo.RegularGrid(5, 5)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.2})
	a := make([]float64, 25)
	b := make([]float64, 25)
	for i := range a {
		a[i], b[i] = -0.5, 2
	}
	var ref float64
	for i, w := range []int{1, 4} {
		f := newDenseFactor(t, sigma, 5)
		rt := taskrt.New(w)
		res := PMVN(rt, f, a, b, Options{N: 300, SweepF32: true})
		rt.Shutdown()
		if i == 0 {
			ref = res.Prob
		} else if res.Prob != ref {
			t.Errorf("worker count changed f32 result: %v vs %v", res.Prob, ref)
		}
	}
}

// TestPMVNSweepF32EmptyAndOpenBoxes pins the degenerate-box semantics on the
// f32 path: fully open boxes give exactly 1, empty boxes exactly 0.
func TestPMVNSweepF32EmptyAndOpenBoxes(t *testing.T) {
	g := geo.RegularGrid(4, 4)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 2, Range: 0.3})
	f := newDenseFactor(t, sigma, 4)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	if res := PMVN(rt, f, negInf(16), posInf(16), Options{N: 50, SweepF32: true}); res.Prob != 1 {
		t.Errorf("open box f32 prob = %v, want exactly 1", res.Prob)
	}
	a := make([]float64, 16)
	b := make([]float64, 16)
	for i := range a {
		a[i], b[i] = -1, 1
	}
	a[3], b[3] = 2, 1 // a > b in one dimension empties the box
	if res := PMVN(rt, f, a, b, Options{N: 50, SweepF32: true}); res.Prob != 0 {
		t.Errorf("empty box f32 prob = %v, want exactly 0", res.Prob)
	}
}
