package mvn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/taskrt"
)

// Options configures a PMVN integration.
type Options struct {
	// N is the QMC sample size (number of chains). Default 1000.
	N int
	// SampleTile is the number of chains per lane block (the m of
	// Algorithm 3 along the sample axis). Default: the factor tile size.
	SampleTile int
	// NewGen builds the point generator for a replicate given its shift;
	// nil means the Richtmyer lattice (the paper's QMC choice), drawn from a
	// pool so warm queries allocate nothing. Generators implementing
	// qmc.BlockGenerator feed the lane blocks by random access; others are
	// pre-expanded once per replicate.
	NewGen func(dim int, shift []float64) qmc.Generator
	// Replicates is the number of randomized-shift replicates used for the
	// error estimate. Default 1 (no error estimate).
	Replicates int
	// Rng drives the replicate shifts. Default: deterministic seed 1.
	Rng *rand.Rand
	// Inline runs the integration on the calling goroutine instead of
	// fanning sample-tile columns out as runtime tasks. Batched callers set
	// it so each query occupies exactly one worker; a warm (cached-factor)
	// inline query runs allocation-free. It is implied when the runtime is
	// nil or has a single worker, where task submission is pure overhead.
	// Results are bit-identical either way.
	Inline bool
	// SweepF32 runs the sweep's conditioning state — the Y grid, the
	// propagation GEMMs and the intra-tile lane axpys — in float32 (see
	// sweep32.go); the QMC points, special functions and probability
	// accumulation stay float64, so the estimate differs from the f64 sweep
	// by well under the QMC error bar. Ignored (f64 sweep) for a custom
	// Factor that does not implement F32Sweeper.
	SweepF32 bool
	// MaxRelErr > 0 enables wave-structured early stopping: the integration
	// runs replicate-stratified incremental sample waves (see wave.go) and
	// stops as soon as the streaming relative-error estimate — the replicate
	// spread across the waves seen so far, relative to the running estimate —
	// drops to MaxRelErr. With early stopping active, N is the TOTAL sample
	// budget across replicates (so an unreachable target never costs more
	// than the fixed-N path), and Replicates below 2 is raised to a small
	// default (the error estimate needs a spread).
	MaxRelErr float64
	// Deadline, when nonzero, caps the wall clock of the integration: the
	// budget is checked between waves and the running estimate is returned
	// (Converged false) once it expires. At least one wave always runs, so a
	// blown deadline still yields an estimate with an error bar. Setting
	// Deadline alone (MaxRelErr 0) routes the query through the wave path.
	Deadline time.Time
	// WaveSize is the number of samples appended to each replicate per wave,
	// rounded up to whole lane blocks (SampleTile). Default: one lane block.
	WaveSize int
	// Ctx, when non-nil, is checked between waves: on cancellation the
	// integration stops and returns the partial estimate with its error bar
	// and the Canceled flag, instead of discarding the completed waves. Like
	// Deadline, a non-nil Ctx routes the query through the wave path.
	Ctx context.Context
}

// earlyStop reports whether the wave-structured path serves this query: any
// accuracy target, latency budget or cancelable context engages it. With all
// three unset the fixed-N path runs unchanged (bit-identical results).
//repro:noalloc
func (o Options) earlyStop() bool {
	return o.MaxRelErr > 0 || !o.Deadline.IsZero() || o.Ctx != nil
}

//repro:noalloc
func (o Options) withDefaults(ts int) Options {
	if o.N <= 0 {
		o.N = 1000
	}
	if o.SampleTile <= 0 {
		o.SampleTile = ts
	}
	if o.SampleTile > o.N {
		o.SampleTile = o.N
	}
	if o.Replicates <= 0 {
		o.Replicates = 1
	}
	return o
}

// Result is a PMVN probability estimate with its randomized-QMC error
// estimate (zero when Replicates < 2).
type Result struct {
	Prob   float64
	StdErr float64
	// RelErr is the achieved relative-error estimate StdErr/|Prob| (0 when
	// the spread is exactly zero, +Inf for a zero estimate with nonzero
	// spread, and 0 when no replicate spread was computed at all).
	RelErr float64
	// Samples is the total number of QMC samples evaluated across all
	// replicates — under early stopping, the cost actually paid.
	Samples int
	// Converged reports that early stopping met the requested MaxRelErr; a
	// false value on a budgeted query means the estimate was capped by the
	// sample budget, the deadline or cancellation.
	Converged bool
	// Canceled reports that Options.Ctx was canceled mid-integration; Prob
	// and StdErr still hold the estimate from the waves that completed.
	Canceled bool
}

// PMVN evaluates Φn(a,b;0,Σ) = E[Π factors] given a Cholesky factor of Σ
// (dense tiled, TLR or adaptive), running the paper's Algorithm 2 with the
// chain-blocked SOV sweep: every sample-tile column is an independent lane
// block swept left-looking through the factor, parallel across columns and
// across randomized-QMC replicates. PMVN is safe to call from multiple
// goroutines on one runtime (the Factor is only read).
//repro:noalloc
func PMVN(rt *taskrt.Runtime, f Factor, a, b []float64, opt Options) Result {
	n := f.N()
	if len(a) != n || len(b) != n {
		//repro:alloc-ok shape-mismatch panic path
		panic(fmt.Sprintf("mvn: limits length %d,%d != dimension %d", len(a), len(b), n))
	}
	return integrate(rt, f, a, b, opt.withDefaults(f.TS()), 0)
}

// integrate runs the replicated integration behind PMVN (nu = 0) and PMVT
// (nu > 0) on defaulted options.
//repro:noalloc
func integrate(rt *taskrt.Runtime, f Factor, a, b []float64, o Options, nu float64) Result {
	genDim := f.N()
	if nu > 0 {
		genDim++
	}
	inline := o.Inline || rt == nil || rt.Workers() == 1

	// Accuracy/latency-budgeted queries run the incremental wave path; the
	// unconstrained paths below are untouched (bit-identical results).
	if o.earlyStop() {
		return integrateWaves(rt, f, a, b, o, nu, genDim, inline)
	}

	// Warm fast path: one replicate, default generator — a pooled lattice
	// and pooled workspaces end to end, so a cached-factor query allocates
	// nothing.
	if o.Replicates == 1 && o.NewGen == nil {
		g := qmc.GetRichtmyer(genDim, nil)
		p := runReplicate(rt, f, a, b, g, o, nu, inline)
		qmc.PutRichtmyer(g)
		return Result{Prob: clampProb(p), Samples: o.N}
	}
	//repro:alloc-ok replicated/custom-generator queries build one generator per replicate
	return integrateReplicated(rt, f, a, b, o, nu, genDim, inline)
}

// integrateReplicated runs the replicated (or custom-generator) integration:
// all shifts are pre-drawn from the (shared, not goroutine-safe) Rng up
// front, then the replicates run concurrently unless inline. This path
// allocates by design — one generator per replicate — and is kept out of the
// //repro:noalloc-certified integrate above.
func integrateReplicated(rt *taskrt.Runtime, f Factor, a, b []float64, o Options, nu float64, genDim int, inline bool) Result {
	rng := o.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	gens := make([]qmc.Generator, o.Replicates)
	for rep := range gens {
		var shift []float64
		if rep > 0 {
			shift = qmc.RandomShift(genDim, rng)
		}
		if o.NewGen != nil {
			gens[rep] = o.NewGen(genDim, shift)
		} else {
			gens[rep] = qmc.NewRichtmyerShifted(genDim, shift)
		}
	}
	probs := make([]float64, len(gens))
	if inline || len(gens) == 1 {
		for rep, gen := range gens {
			probs[rep] = runReplicate(rt, f, a, b, gen, o, nu, inline)
		}
		return reduceReplicates(probs, o.N)
	}
	var wg sync.WaitGroup
	for rep := range gens {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			probs[rep] = runReplicate(rt, f, a, b, gens[rep], o, nu, false)
		}()
	}
	wg.Wait()
	return reduceReplicates(probs, o.N)
}

// runReplicate evaluates one replicate: the sample-tile columns are
// independent lane blocks, swept inline on the calling goroutine or fanned
// out as one task each in their own runtime group. The per-column sums land
// in fixed slots, so the estimate is deterministic regardless of scheduling.
//repro:noalloc
func runReplicate(rt *taskrt.Runtime, f Factor, a, b []float64, gen qmc.Generator, o Options, nu float64, inline bool) float64 {
	if gen.Dim() != genDimFor(f, nu) {
		//repro:alloc-ok dimension-mismatch panic path
		panic(fmt.Sprintf("mvn: generator dim %d, want %d", gen.Dim(), genDimFor(f, nu)))
	}
	n, mc := o.N, o.SampleTile
	kt := (n + mc - 1) / mc
	sums := linalg.GetVec(kt)
	// The f32 shadow is resolved once per replicate, before any column runs
	// (its one-time build is the only allocating step; warm loads are an
	// atomic read). nil falls back to the f64 sweep.
	var sh *ShadowF32
	if o.SweepF32 {
		sh = shadowFor(f)
	}
	if inline || kt == 1 {
		// Kept free of the task path's closures so the block source stays
		// on the stack: the warm inline query allocates nothing.
		src := newBlockSource(gen, n)
		for k := 0; k < kt; k++ {
			if sh != nil {
				sums[k] = sweepColumn32(f, sh, a, b, &src, k*mc, min(mc, n-k*mc), nu)
			} else {
				sums[k] = sweepColumn(f, a, b, &src, k*mc, min(mc, n-k*mc), nu)
			}
		}
		src.release()
	} else {
		//repro:alloc-ok task fan-out closes over the column index; the warm batched path runs inline
		runColumnTasks(rt, f, sh, a, b, gen, sums, n, mc, nu)
	}
	sum := 0.0
	for _, v := range sums {
		sum += v
	}
	linalg.PutVec(sums)
	return sum / float64(n)
}

// runColumnTasks fans the sample-tile columns out as one task each in their
// own runtime group (the block source and shadow are read-only across them).
func runColumnTasks(rt *taskrt.Runtime, f Factor, sh *ShadowF32, a, b []float64, gen qmc.Generator, sums []float64, n, mc int, nu float64) {
	src := newBlockSource(gen, n)
	g := rt.NewGroup()
	for k := range sums {
		k := k
		g.Submit("qmc", 0, func() {
			if sh != nil {
				sums[k] = sweepColumn32(f, sh, a, b, &src, k*mc, min(mc, n-k*mc), nu)
			} else {
				sums[k] = sweepColumn(f, a, b, &src, k*mc, min(mc, n-k*mc), nu)
			}
		})
	}
	g.Wait()
	src.release()
}

//repro:noalloc
func genDimFor(f Factor, nu float64) int {
	if nu > 0 {
		return f.N() + 1
	}
	return f.N()
}

// reduceReplicates averages the replicate estimates and, with ≥2 replicates,
// attaches the randomized-QMC standard error; n is the per-replicate sample
// count (the total cost is len(probs)·n).
func reduceReplicates(probs []float64, n int) Result {
	mean := 0.0
	for _, p := range probs {
		mean += p
	}
	mean /= float64(len(probs))
	res := Result{Prob: clampProb(mean), Samples: len(probs) * n}
	if len(probs) >= 2 {
		ss := 0.0
		for _, p := range probs {
			ss += (p - mean) * (p - mean)
		}
		res.StdErr = math.Sqrt(ss / float64(len(probs)-1) / float64(len(probs)))
		res.RelErr = relErrOf(mean, res.StdErr)
	}
	return res
}

//repro:noalloc
func clampProb(p float64) float64 { return math.Min(1, math.Max(0, p)) }
