package mvn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/taskrt"
)

// Options configures a PMVN integration.
type Options struct {
	// N is the QMC sample size (number of chains). Default 1000.
	N int
	// SampleTile is the number of chains per tile column (the m of
	// Algorithm 3 along the sample axis). Default: the factor tile size.
	SampleTile int
	// NewGen builds the point generator for a replicate given its shift;
	// nil means the Richtmyer lattice (the paper's QMC choice).
	NewGen func(dim int, shift []float64) qmc.Generator
	// Replicates is the number of randomized-shift replicates used for the
	// error estimate. Default 1 (no error estimate).
	Replicates int
	// Rng drives the replicate shifts. Default: deterministic seed 1.
	Rng *rand.Rand
}

func (o Options) withDefaults(ts int) Options {
	if o.N <= 0 {
		o.N = 1000
	}
	if o.SampleTile <= 0 {
		o.SampleTile = ts
	}
	if o.SampleTile > o.N {
		o.SampleTile = o.N
	}
	if o.NewGen == nil {
		o.NewGen = func(dim int, shift []float64) qmc.Generator {
			return qmc.NewRichtmyerShifted(dim, shift)
		}
	}
	if o.Replicates <= 0 {
		o.Replicates = 1
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// Result is a PMVN probability estimate with its randomized-QMC error
// estimate (zero when Replicates < 2).
type Result struct {
	Prob   float64
	StdErr float64
}

// PMVN evaluates Φn(a,b;0,Σ) = E[Π factors] given a Cholesky factor of Σ
// (dense tiled or TLR), running the paper's Algorithm 2 as a task graph on
// rt: per-tile QMC kernels on the diagonal rows and GEMM propagation tasks
// below, parallel across sample-tile columns. Randomized-QMC replicates run
// concurrently, each as its own task-graph instance in its own runtime
// group; PMVN itself is safe to call from multiple goroutines on one
// runtime (the Factor is only read).
func PMVN(rt *taskrt.Runtime, f Factor, a, b []float64, opt Options) Result {
	n := f.N()
	if len(a) != n || len(b) != n {
		panic(fmt.Sprintf("mvn: limits length %d,%d != dimension %d", len(a), len(b), n))
	}
	o := opt.withDefaults(f.TS())
	gens := drawGenerators(n, o)
	probs := runReplicates(rt, gens, func(sub taskrt.Submitter, gen qmc.Generator) float64 {
		return pmvnScaled(sub, f, a, b, gen, o.N, o.SampleTile, 0)
	})
	return reduceReplicates(probs)
}

// drawGenerators pre-draws all replicate shifts from the (shared, not
// goroutine-safe) Options.Rng up front, so the replicates themselves can run
// concurrently without touching it.
func drawGenerators(dim int, o Options) []qmc.Generator {
	gens := make([]qmc.Generator, o.Replicates)
	for rep := range gens {
		var shift []float64
		if rep > 0 {
			shift = qmc.RandomShift(dim, o.Rng)
		}
		gens[rep] = o.NewGen(dim, shift)
	}
	return gens
}

// runReplicates evaluates one integration per generator, concurrently when
// there is more than one, each inside its own runtime group.
func runReplicates(rt *taskrt.Runtime, gens []qmc.Generator, eval func(taskrt.Submitter, qmc.Generator) float64) []float64 {
	probs := make([]float64, len(gens))
	if len(gens) == 1 {
		probs[0] = eval(rt.NewGroup(), gens[0])
		return probs
	}
	var wg sync.WaitGroup
	for rep := range gens {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			probs[rep] = eval(rt.NewGroup(), gens[rep])
		}()
	}
	wg.Wait()
	return probs
}

// reduceReplicates averages the replicate estimates and, with ≥2 replicates,
// attaches the randomized-QMC standard error.
func reduceReplicates(probs []float64) Result {
	mean := 0.0
	for _, p := range probs {
		mean += p
	}
	mean /= float64(len(probs))
	res := Result{Prob: clampProb(mean)}
	if len(probs) >= 2 {
		ss := 0.0
		for _, p := range probs {
			ss += (p - mean) * (p - mean)
		}
		res.StdErr = math.Sqrt(ss / float64(len(probs)-1) / float64(len(probs)))
	}
	return res
}

func clampProb(p float64) float64 { return math.Min(1, math.Max(0, p)) }

// pmvnScaled runs one replicate of the tiled integration, submitting its
// task graph through rt — a runtime group when replicates or batched
// queries run concurrently. With nu > 0 it computes the Student-t variant:
// the generator then has dimension dim+1 and each chain's limits are scaled
// by s_j = √(χ²inv_ν(w₀)/ν); nu ≤ 0 is the plain MVN path.
func pmvnScaled(rt taskrt.Submitter, f Factor, a, b []float64, gen qmc.Generator, n, mc int, nu float64) float64 {
	dim := f.N()
	nt := f.NT()
	ts := f.TS()
	kt := (n + mc - 1) / mc
	tileCols := func(k int) int {
		if k == kt-1 {
			if c := n - k*mc; c > 0 {
				return c
			}
		}
		return min(mc, n)
	}

	// Per-(rowTile, colTile) work matrices. A and B start as the limit
	// vectors replicated across chains (Algorithm 2 lines 2–3); R holds the
	// QMC points; Y the conditioning values.
	aT := make([][]*linalg.Matrix, nt)
	bT := make([][]*linalg.Matrix, nt)
	rT := make([][]*linalg.Matrix, nt)
	yT := make([][]*linalg.Matrix, nt)
	for r := 0; r < nt; r++ {
		rows := f.TileRows(r)
		aT[r] = make([]*linalg.Matrix, kt)
		bT[r] = make([]*linalg.Matrix, kt)
		rT[r] = make([]*linalg.Matrix, kt)
		yT[r] = make([]*linalg.Matrix, kt)
		for k := 0; k < kt; k++ {
			cols := tileCols(k)
			am := linalg.NewMatrix(rows, cols)
			bm := linalg.NewMatrix(rows, cols)
			for j := 0; j < cols; j++ {
				ac, bc := am.Col(j), bm.Col(j)
				for i := 0; i < rows; i++ {
					ac[i] = a[r*ts+i]
					bc[i] = b[r*ts+i]
				}
			}
			aT[r][k] = am
			bT[r][k] = bm
			rT[r][k] = linalg.NewMatrix(rows, cols)
			yT[r][k] = linalg.NewMatrix(rows, cols)
		}
	}
	// Scatter the QMC points: point j is the j-th global sample column. In
	// the Student-t variant the leading coordinate of each point fixes the
	// chain's χ² scale, which is folded into that chain's A/B limits.
	genDim := dim
	if nu > 0 {
		genDim = dim + 1
	}
	if gen.Dim() != genDim {
		panic(fmt.Sprintf("mvn: generator dim %d, want %d", gen.Dim(), genDim))
	}
	point := make([]float64, genDim)
	for j := 0; j < n; j++ {
		gen.Next(point)
		coords := point
		s := 1.0
		if nu > 0 {
			s = chiScale(point[0], nu)
			coords = point[1:]
		}
		k := j / mc
		jj := j - k*mc
		for r := 0; r < nt; r++ {
			rows := f.TileRows(r)
			copy(rT[r][k].Col(jj), coords[r*ts:r*ts+rows])
			if nu > 0 {
				ac := aT[r][k].Col(jj)
				bc := bT[r][k].Col(jj)
				for i := 0; i < rows; i++ {
					ac[i] = scaleLimit(a[r*ts+i], s)
					bc[i] = scaleLimit(b[r*ts+i], s)
				}
			}
		}
	}
	// Per-column-tile probability accumulators.
	p := make([][]float64, kt)
	for k := range p {
		p[k] = make([]float64, tileCols(k))
		for j := range p[k] {
			p[k][j] = 1
		}
	}

	// Handles: one per (A,B) tile pair, one per Y tile, one per p segment.
	hAB := make([][]*taskrt.Handle, nt)
	hY := make([][]*taskrt.Handle, nt)
	for r := 0; r < nt; r++ {
		hAB[r] = make([]*taskrt.Handle, kt)
		hY[r] = make([]*taskrt.Handle, kt)
		for k := 0; k < kt; k++ {
			hAB[r][k] = rt.NewHandle("AB(%d,%d)", r, k)
			hY[r][k] = rt.NewHandle("Y(%d,%d)", r, k)
		}
	}
	hP := make([]*taskrt.Handle, kt)
	for k := range hP {
		hP[k] = rt.NewHandle("p(%d)", k)
	}

	// Row 0: QMC kernels (Algorithm 2 lines 5–7, red box (b)).
	for k := 0; k < kt; k++ {
		k := k
		rt.Submit("qmc", nt, func() {
			qmcKernel(f.Diag(0), rT[0][k], aT[0][k], bT[0][k], yT[0][k], p[k])
		}, taskrt.Read(hAB[0][k]), taskrt.Write(hY[0][k]), taskrt.ReadWrite(hP[k]))
	}
	// Rows 1..nt-1: propagation GEMMs then QMC (lines 8–18, boxes (c),(d)).
	for r := 1; r < nt; r++ {
		r := r
		for j := r; j < nt; j++ {
			j := j
			for k := 0; k < kt; k++ {
				k := k
				rt.Submit("prop", nt-r, func() {
					f.ApplyOffDiagPair(j, r-1, -1, yT[r-1][k], aT[j][k], bT[j][k])
				}, taskrt.Read(hY[r-1][k]), taskrt.ReadWrite(hAB[j][k]))
			}
		}
		for k := 0; k < kt; k++ {
			k := k
			rt.Submit("qmc", nt-r, func() {
				qmcKernel(f.Diag(r), rT[r][k], aT[r][k], bT[r][k], yT[r][k], p[k])
			}, taskrt.Read(hAB[r][k]), taskrt.Write(hY[r][k]), taskrt.ReadWrite(hP[k]))
		}
	}
	rt.Wait()

	sum := 0.0
	for k := 0; k < kt; k++ {
		for _, pj := range p[k] {
			sum += pj
		}
	}
	return sum / float64(n)
}

// qmcKernel is Algorithm 3: it advances every chain (column) of one tile by
// the tile's rows, multiplying the interval-probability factors into p and
// writing the conditioning values into the Y tile. The A and B tiles
// already contain the limits minus all inter-tile contributions; intra-tile
// contributions are accumulated through the lower triangle of lkk.
//
// The intra-tile recurrence needs row i of the column-major lkk at every
// chain step — a stride-m walk. The rows are packed once per kernel
// invocation into row-major pooled scratch (O(m²) work amortized over the
// tile's chains), making the inner dot product stride-1 on both operands.
func qmcKernel(lkk, rTile, aTile, bTile, yTile *linalg.Matrix, p []float64) {
	m := lkk.Rows
	mc := aTile.Cols
	rows := linalg.GetVec(m * m)
	for i := 0; i < m; i++ {
		ri := rows[i*m : i*m+i+1]
		for t := 0; t <= i; t++ {
			ri[t] = lkk.At(i, t)
		}
	}
	for j := 0; j < mc; j++ {
		yCol := yTile.Col(j)
		aCol := aTile.Col(j)
		bCol := bTile.Col(j)
		rCol := rTile.Col(j)
		pj := p[j]
		for i := 0; i < m; i++ {
			if pj == 0 {
				// Dead chain: keep Y finite, skip the special functions.
				for t := i; t < m; t++ {
					yCol[t] = 0
				}
				break
			}
			ri := rows[i*m : i*m+i+1]
			acc := linalg.Dot(ri[:i], yCol[:i])
			d := ri[i]
			factor, yi := chainStep(shiftLimit(aCol[i], acc, d), shiftLimit(bCol[i], acc, d), rCol[i])
			pj *= factor
			yCol[i] = yi
		}
		p[j] = pj
	}
	linalg.PutVec(rows)
}
