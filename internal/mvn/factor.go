// Package mvn computes high-dimensional multivariate normal probabilities
// Φn(a,b;0,Σ) with the Separation-of-Variables (SOV) algorithm of Genz,
// parallelized exactly as in the paper: a tiled QMC kernel on the diagonal
// tile rows (Algorithm 3), task-parallel GEMM propagation to the rows below
// (Algorithm 2), running either on a dense tiled Cholesky factor or on a
// Tile Low-Rank factor. A sequential reference implementation and a plain
// Monte Carlo estimator serve as baselines and validation oracles.
package mvn

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/tile"
	"repro/internal/tlr"
)

// Factor abstracts the lower Cholesky factor the PMVN integration consumes.
// The integration needs only two things from L: dense diagonal tiles (for
// the QMC kernel) and the action of off-diagonal tiles on a lane block of Y
// values (for the GEMM propagation). The dense path implements the latter
// with a dense GEMM; the TLR path with the cheap (Y·V)·Uᵀ form — which is
// exactly where the paper's TLR speedup materializes.
type Factor interface {
	// N returns the problem dimension.
	//repro:noalloc
	N() int
	// TS returns the tile size.
	//repro:noalloc
	TS() int
	// NT returns the number of tile rows.
	//repro:noalloc
	NT() int
	// TileRows returns the number of rows in tile row i.
	//repro:noalloc
	TileRows(i int) int
	// Diag returns the dense diagonal tile k of L (lower triangular).
	//repro:noalloc
	Diag(k int) *linalg.Matrix
	// ApplyOffDiagLanes computes dst = alpha·y·L(i,j)ᵀ + beta·dst for the
	// strictly-lower tile (i,j), i > j, in the lane-major (chains × rows)
	// layout of the chain-blocked sweep: y holds the source tile's
	// conditioning values and dst the accumulated conditioning sums the A/B
	// limits of Algorithm 2 are shifted by. (The A and B limits share one
	// conditioning sum, so a single accumulation replaces the seed's paired
	// A/B tile updates — half the propagation GEMMs; beta = 0 overwrites
	// dst, sparing the sweep a zeroing pass over pooled scratch.)
	//repro:noalloc
	ApplyOffDiagLanes(i, j int, alpha float64, y *linalg.Matrix, beta float64, dst *linalg.Matrix)
}

// DenseFactor adapts a dense tiled Cholesky factor to the Factor interface.
type DenseFactor struct {
	L    *tile.Matrix
	sh32 shadowBox
}

// NewDenseFactor wraps a tiled lower Cholesky factor.
func NewDenseFactor(l *tile.Matrix) *DenseFactor {
	if l.M != l.N {
		panic(fmt.Sprintf("mvn: factor must be square, got %dx%d", l.M, l.N))
	}
	return &DenseFactor{L: l}
}

// N implements Factor.
//repro:noalloc
func (f *DenseFactor) N() int { return f.L.M }

// TS implements Factor.
//repro:noalloc
func (f *DenseFactor) TS() int { return f.L.TS }

// NT implements Factor.
//repro:noalloc
func (f *DenseFactor) NT() int { return f.L.MT }

// TileRows implements Factor.
//repro:noalloc
func (f *DenseFactor) TileRows(i int) int { return f.L.TileRows(i) }

// Diag implements Factor.
//repro:noalloc
func (f *DenseFactor) Diag(k int) *linalg.Matrix { return f.L.Tile(k, k) }

// ApplyOffDiagLanes implements Factor.
//repro:noalloc
func (f *DenseFactor) ApplyOffDiagLanes(i, j int, alpha float64, y *linalg.Matrix, beta float64, dst *linalg.Matrix) {
	linalg.Gemm(false, true, alpha, y, f.L.Tile(i, j), beta, dst)
}

// TLRFactor adapts a TLR Cholesky factor to the Factor interface.
type TLRFactor struct {
	L    *tlr.Matrix
	sh32 shadowBox
}

// NewTLRFactor wraps a TLR lower Cholesky factor.
func NewTLRFactor(l *tlr.Matrix) *TLRFactor { return &TLRFactor{L: l} }

// N implements Factor.
//repro:noalloc
func (f *TLRFactor) N() int { return f.L.N }

// TS implements Factor.
//repro:noalloc
func (f *TLRFactor) TS() int { return f.L.TS }

// NT implements Factor.
//repro:noalloc
func (f *TLRFactor) NT() int { return f.L.NT }

// TileRows implements Factor.
//repro:noalloc
func (f *TLRFactor) TileRows(i int) int { return f.L.TileRows(i) }

// Diag implements Factor.
//repro:noalloc
func (f *TLRFactor) Diag(k int) *linalg.Matrix { return f.L.Diag[k] }

// ApplyOffDiagLanes implements Factor.
//repro:noalloc
func (f *TLRFactor) ApplyOffDiagLanes(i, j int, alpha float64, y *linalg.Matrix, beta float64, dst *linalg.Matrix) {
	f.L.Low[i][j].ApplyRightTrans(alpha, y, beta, dst)
}

// GridFactor adapts a factored engine grid — tiles in whatever mix of
// representations the adaptive policy chose — to the Factor interface. The
// propagation applies each tile in its own representation: dense GEMM for
// float64 tiles, the cheap U·(Vᵀ·Y) form for low-rank tiles; float32 tiles
// are promoted to float64 once at construction so the hot path never pays
// per-application conversions.
type GridFactor struct {
	G    *engine.Grid
	f32  [][]*linalg.Matrix // promoted float32 tiles, nil elsewhere
	sh32 shadowBox
}

// NewGridFactor wraps a factored engine grid.
func NewGridFactor(g *engine.Grid) *GridFactor {
	f := &GridFactor{G: g, f32: make([][]*linalg.Matrix, g.NT)}
	for i := 0; i < g.NT; i++ {
		f.f32[i] = make([]*linalg.Matrix, i)
		for j := 0; j < i; j++ {
			if t, ok := g.At(i, j).(*tile.DenseF32); ok {
				f.f32[i][j] = t.D.ToDouble()
			}
		}
	}
	return f
}

// N implements Factor.
//repro:noalloc
func (f *GridFactor) N() int { return f.G.N }

// TS implements Factor.
//repro:noalloc
func (f *GridFactor) TS() int { return f.G.TS }

// NT implements Factor.
//repro:noalloc
func (f *GridFactor) NT() int { return f.G.NT }

// TileRows implements Factor.
//repro:noalloc
func (f *GridFactor) TileRows(i int) int { return f.G.TileRows(i) }

// Diag implements Factor.
//repro:noalloc
func (f *GridFactor) Diag(k int) *linalg.Matrix { return f.G.Diag(k) }

// ApplyOffDiagLanes implements Factor.
//repro:noalloc
func (f *GridFactor) ApplyOffDiagLanes(i, j int, alpha float64, y *linalg.Matrix, beta float64, dst *linalg.Matrix) {
	switch t := f.G.At(i, j).(type) {
	case *tile.DenseF64:
		linalg.Gemm(false, true, alpha, y, t.D, beta, dst)
	case *tile.LowRank:
		t.ApplyRightTrans(alpha, y, beta, dst)
	case *tile.DenseF32:
		linalg.Gemm(false, true, alpha, y, f.f32[i][j], beta, dst)
	}
}
