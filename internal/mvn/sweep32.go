package mvn

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/stats"
	"repro/internal/tile"
)

// The single-precision lane sweep. The conditioning state of the chain-
// blocked sweep — the Y grid, the propagation GEMMs and the intra-tile lane
// axpys — dominates the flop count but feeds the Genz step only through the
// shifted limits (limit − acc)/d, whose accuracy requirement is set by the
// QMC error bar, not by double precision. SweepF32 therefore keeps that
// state in float32 (half the memory traffic, the 16×6 f32 micro-kernel
// instead of the 8×6 f64 one) while everything statistical stays f64: the
// QMC points, the special functions, the per-lane probability products and
// the replicate accumulation. The QMC draws w are consumed directly by the
// f64 Φ⁻¹/interval batches, so narrowing them would only add conversion
// passes without saving any arithmetic.
//
// The f32 sweep reads the factor through ShadowF32, a single-precision copy
// of the factor's tiles built lazily on first use and cached on the factor
// (the factor itself stays f64 — it is shared with the f64 path and the
// serving cache). Tiles already stored in f32 (adaptive grids) are
// referenced, not copied.

// sh32Tile is one strictly-lower shadow tile: dense d, or the low-rank pair
// u·vᵀ (all nil for a rank-0 tile, whose application is a no-op).
type sh32Tile struct {
	d, u, v *tile.Matrix32
}

// apply computes dst = alpha·y·Lᵀ + beta·dst (beta ∈ {0,1}) for the shadow
// tile, the f32 mirror of Factor.ApplyOffDiagLanes. Gemm32 only
// accumulates, so beta = 0 is a clear-then-accumulate.
//repro:noalloc
func (t *sh32Tile) apply(alpha float32, y *tile.Matrix32, beta float32, dst *tile.Matrix32) {
	if beta == 0 {
		clear(dst.Data)
	}
	switch {
	case t.d != nil:
		tile.Gemm32(true, alpha, y, t.d, dst)
	case t.u != nil:
		k := t.u.Cols
		w := tile.GetMat32Zero(y.Rows, k)
		tile.Gemm32(false, 1, y, t.v, w)
		tile.Gemm32(true, alpha, w, t.u, dst)
		tile.PutMat32(w)
	}
}

// ShadowF32 is the single-precision shadow of a factor: packed f32 diagonal
// lower triangles (same row-major packing qmcKernelLanes builds per call)
// and the strictly-lower tiles in their cheapest f32 representation.
type ShadowF32 struct {
	diag [][]float32 // diag[r]: m*m buffer, row i at [i*m : i*m+i+1]
	off  [][]sh32Tile
}

// F32Sweeper is implemented by factors that can serve the f32 sweep.
// All in-repo factors implement it; a custom Factor that does not silently
// falls back to the f64 sweep.
type F32Sweeper interface {
	// Shadow32 returns the cached single-precision shadow, building it on
	// first use (the only allocating step; warm calls are allocation-free).
	//repro:noalloc
	Shadow32() *ShadowF32
}

// shadowBox caches a lazily-built ShadowF32 on a factor: the warm-path load
// is one atomic read, the one-time build is mutex-serialized.
type shadowBox struct {
	mu    sync.Mutex
	ready atomic.Bool
	s     *ShadowF32
}

//repro:noalloc
func (b *shadowBox) loaded() (*ShadowF32, bool) {
	if b.ready.Load() {
		return b.s, true
	}
	return nil, false
}

func (b *shadowBox) build(f Factor, off func(i, j int) sh32Tile) *ShadowF32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ready.Load() {
		b.s = newShadowF32(f, off)
		b.ready.Store(true)
	}
	return b.s
}

// newShadowF32 packs the diagonal triangles and materializes every
// strictly-lower tile through off.
func newShadowF32(f Factor, off func(i, j int) sh32Tile) *ShadowF32 {
	nt := f.NT()
	s := &ShadowF32{diag: make([][]float32, nt), off: make([][]sh32Tile, nt)}
	for r := 0; r < nt; r++ {
		lkk := f.Diag(r)
		m := lkk.Rows
		buf := make([]float32, m*m)
		for i := 0; i < m; i++ {
			ri := buf[i*m : i*m+i+1]
			for t := 0; t <= i; t++ {
				ri[t] = float32(lkk.At(i, t))
			}
		}
		s.diag[r] = buf
		s.off[r] = make([]sh32Tile, r)
		for j := 0; j < r; j++ {
			s.off[r][j] = off(r, j)
		}
	}
	return s
}

// lowRank32 converts a low-rank tile's factors, or nil pair for rank 0.
func lowRank32(t *tile.LowRank) sh32Tile {
	if t.Rank() == 0 {
		return sh32Tile{}
	}
	return sh32Tile{u: tile.ToSingle(t.U), v: tile.ToSingle(t.V)}
}

// Shadow32 implements F32Sweeper.
//repro:noalloc
func (f *DenseFactor) Shadow32() *ShadowF32 {
	if s, ok := f.sh32.loaded(); ok {
		return s
	}
	//repro:alloc-ok one-time f32 shadow build (cold path)
	return f.sh32.build(f, func(i, j int) sh32Tile {
		return sh32Tile{d: tile.ToSingle(f.L.Tile(i, j))}
	})
}

// Shadow32 implements F32Sweeper.
//repro:noalloc
func (f *TLRFactor) Shadow32() *ShadowF32 {
	if s, ok := f.sh32.loaded(); ok {
		return s
	}
	//repro:alloc-ok one-time f32 shadow build (cold path)
	return f.sh32.build(f, func(i, j int) sh32Tile {
		return lowRank32(f.L.Low[i][j])
	})
}

// Shadow32 implements F32Sweeper. Tiles the adaptive policy already stores
// in f32 are shared with the grid, not copied.
//repro:noalloc
func (f *GridFactor) Shadow32() *ShadowF32 {
	if s, ok := f.sh32.loaded(); ok {
		return s
	}
	//repro:alloc-ok one-time f32 shadow build (cold path)
	return f.sh32.build(f, func(i, j int) sh32Tile {
		switch t := f.G.At(i, j).(type) {
		case *tile.DenseF64:
			return sh32Tile{d: tile.ToSingle(t.D)}
		case *tile.LowRank:
			return lowRank32(t)
		case *tile.DenseF32:
			return sh32Tile{d: t.D}
		}
		return sh32Tile{}
	})
}

// shadowFor resolves the f32 shadow of f, or nil when f cannot serve the
// f32 sweep (the caller falls back to the f64 path).
//repro:noalloc
func shadowFor(f Factor) *ShadowF32 {
	if fs, ok := f.(F32Sweeper); ok {
		return fs.Shadow32()
	}
	return nil
}

// narrow32 narrows one lane vector of conditioning values into the f32 Y
// grid.
//repro:noalloc
func narrow32(dst []float32, src []float64) {
	for l, v := range src {
		dst[l] = float32(v)
	}
}

// sweepColumn32 is sweepColumn with float32 conditioning state: the Y grid,
// the propagation accumulators and the intra-tile axpys are f32; the QMC
// draws, special functions and probability products stay f64. Structure and
// fix-up semantics mirror sweepColumn exactly — see the comments there.
//repro:noalloc
func sweepColumn32(f Factor, sh *ShadowF32, a, b []float64, src *blockSource, kOff, mc int, nu float64) float64 {
	nt, ts := f.NT(), f.TS()
	yAll := tile.GetMat32(mc, f.N())
	acc32 := tile.GetVec32(mc)
	p := linalg.GetVec(mc)
	for l := range p {
		p[l] = 1
	}
	ws, wsBuf := getLaneWS(mc)
	d0Base := 0
	var s []float64
	if nu > 0 {
		d0Base = 1
		s = linalg.GetVec(mc)
		w0 := linalg.GetMat(mc, 1)
		src.fill(w0, kOff, 0)
		for l, w := range w0.Col(0) {
			s[l] = chiScale(w, nu)
		}
		linalg.PutMat(w0)
	}

	alive := mc
	for r := 0; r < nt && alive > 0; r++ {
		rows := f.TileRows(r)
		row0 := r * ts
		yT := tile.GetMat32View(yAll, row0, rows)
		rT := linalg.GetMat(mc, rows)
		src.fill(rT, kOff, d0Base+row0)
		if freeSpan(a, b, row0, rows) {
			// Unconstrained tile: y = Φ⁻¹(w) column by column through the f64
			// staging vector (ws.acc is free outside the kernel), narrowed
			// into the f32 grid.
			for d := 0; d < rows; d++ {
				stats.PhiInvBatch(rT.Col(d), ws.acc)
				clampFreeY(ws.acc)
				narrow32(yT.Col(d), ws.acc)
			}
			linalg.PutMat(rT)
			tile.PutMat32View(yT)
			continue
		}
		var cond *tile.Matrix32
		if r > 0 {
			cond = tile.GetMat32(mc, rows)
			for t := 0; t < r; t++ {
				yPrev := tile.GetMat32View(yAll, t*ts, f.TileRows(t))
				beta := float32(1)
				if t == 0 {
					beta = 0
				}
				sh.off[r][t].apply(1, yPrev, beta, cond)
				tile.PutMat32View(yPrev)
			}
		}
		alive = qmcKernelLanes32(sh.diag[r], rows, rT, cond, yT, a, b, row0, s, p, ws, acc32, alive)
		tile.PutMat32(cond)
		linalg.PutMat(rT)
		tile.PutMat32View(yT)
	}

	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if s != nil {
		linalg.PutVec(s)
	}
	linalg.PutVec(wsBuf)
	linalg.PutVec(p)
	tile.PutVec32(acc32)
	tile.PutMat32(yAll)
	return sum
}

// qmcKernelLanes32 is qmcKernelLanes over the f32 grid: the packed diagonal
// arrives pre-converted from the shadow, the conditioning accumulation runs
// in f32 (Axpy32 lanes), and each row's shifted limits widen the f32 sums
// back to f64 for the batched Genz step. ws.acc serves as the f64 staging
// column for Φ⁻¹ output before narrowing; acc32 is the zero-conditioning
// accumulator for the first tile.
//repro:noalloc
func qmcKernelLanes32(packed []float32, m int, rT *linalg.Matrix, cond, yT *tile.Matrix32, a, b []float64, row0 int, s, p []float64, ws laneWS, acc32 []float32, alive int) int {
	mc := len(p)
	y64 := ws.acc
	for i := 0; i < m && alive > 0; i++ {
		yCol := yT.Col(i)
		wCol := rT.Col(i)
		av, bv := a[row0+i], b[row0+i]
		if math.IsInf(av, -1) && math.IsInf(bv, 1) {
			stats.PhiInvBatch(wCol, y64)
			clampFreeY(y64)
			narrow32(yCol, y64)
			continue
		}
		ri := packed[i*m : i*m+i+1]
		acc := acc32
		if cond != nil {
			acc = cond.Col(i)
		} else {
			clear(acc)
		}
		for t := 0; t < i; t++ {
			if c := ri[t]; c != 0 {
				linalg.Axpy32(c, yT.Col(t), acc)
			}
		}
		d := float64(ri[i])
		if 4*alive >= 3*mc {
			aP, bP := ws.aP, ws.bP
			shiftLanes32(aP, av, acc, d, s)
			shiftLanes32(bP, bv, acc, d, s)
			stats.PhiIntervalPhiBatch(aP, bP, ws.dif, ws.da)
			u := ws.u
			for l := 0; l < mc; l++ {
				u[l] = ws.da[l] + wCol[l]*ws.dif[l]
			}
			stats.PhiInvBatch(u, y64)
			for l := 0; l < mc; l++ {
				switch {
				case p[l] == 0:
					yCol[l] = 0
				case ws.dif[l] <= 0:
					yCol[l] = float32(emptyIntervalY(aP[l], bP[l]))
					p[l] = 0
					alive--
				default:
					y := y64[l]
					if math.IsInf(y, 0) || math.IsNaN(y) {
						y = clampTailY(y, aP[l], bP[l])
					}
					yCol[l] = float32(y)
					p[l] *= ws.dif[l]
					if p[l] == 0 {
						alive--
					}
				}
			}
			continue
		}
		for l := 0; l < mc; l++ {
			if p[l] == 0 {
				yCol[l] = 0
				continue
			}
			al, bl := av, bv
			if s != nil {
				al, bl = scaleLimit(av, s[l]), scaleLimit(bv, s[l])
			}
			factor, yi := chainStep(shiftLimit(al, float64(acc[l]), d), shiftLimit(bl, float64(acc[l]), d), wCol[l])
			p[l] *= factor
			yCol[l] = float32(yi)
			if p[l] == 0 {
				alive--
			}
		}
	}
	return alive
}

// shiftLanes32 is shiftLanes over an f32 conditioning accumulator: each
// lane's sum widens to f64 exactly, so the shifted limits carry only the
// f32 rounding already present in the sweep state. ±∞ limits short-circuit
// as in the f64 form (an f32 accumulator that overflowed to ±Inf widens to
// the same infinity and dies through the interval fix-ups).
//repro:noalloc
func shiftLanes32(dst []float64, limit float64, acc []float32, d float64, s []float64) {
	if math.IsInf(limit, 0) {
		for l := range dst {
			dst[l] = limit
		}
		return
	}
	if s == nil {
		for l := range dst {
			dst[l] = (limit - float64(acc[l])) / d
		}
		return
	}
	for l := range dst {
		dst[l] = (limit*s[l] - float64(acc[l])) / d
	}
}
