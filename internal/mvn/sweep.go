package mvn

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/stats"
)

// The chain-blocked SOV path. One sample-tile column — a lane block of mc
// chains — runs through the whole factor in a single left-looking sweep:
// at row tile r the A/B limit tiles are initialized from the limits, all
// inter-tile conditioning contributions Σ_{t<r} Y_t·L(r,t)ᵀ are applied as
// lane-major GEMMs, and the diagonal kernel advances every lane through the
// tile's rows with batched special functions. Work tiles are laid out
// chain-major (mc × rows): the sample lanes run down the stride-1 axis, so
// the intra-tile conditioning at row i is i stride-1 axpys across lanes and
// the Genz step applies Φ/Φ⁻¹ to one contiguous lane vector.
//
// Compared to the seed's right-looking task graph (per-(row,column) QMC
// kernels with GEMM propagation tasks fanned between them), columns are now
// fully independent: no handles, no cross-column barriers, and a column
// whose lanes have all died (p == 0) stops sweeping — skipping every
// remaining propagation GEMM, QMC block generation and special-function row
// for that block. All working storage is pooled, so a warm query allocates
// nothing.

// blockSource supplies lane-major QMC point blocks: fill writes
// dst[lane][d] = coordinate d0+d of point p0+lane. Random-access generators
// serve blocks directly (and are safe for concurrent column tasks, since
// FillBlock does not touch sequential state); sequential generators are
// pre-expanded into a pooled lane-major matrix.
type blockSource struct {
	bg  qmc.BlockGenerator
	pre *linalg.Matrix // (points × dim) lane-major, used when bg is nil
}

//repro:noalloc
func newBlockSource(gen qmc.Generator, n int) blockSource {
	if bg, ok := gen.(qmc.BlockGenerator); ok {
		return blockSource{bg: bg}
	}
	pre := linalg.GetMat(n, gen.Dim())
	//repro:alloc-ok sequential-generator pre-expansion; the default generator is block-capable
	qmc.NextBlock(gen, pre, n)
	return blockSource{pre: pre}
}

//repro:noalloc
func (s *blockSource) fill(dst *linalg.Matrix, p0, d0 int) {
	if s.bg != nil {
		s.bg.FillBlock(dst, p0, d0)
		return
	}
	for d := 0; d < dst.Cols; d++ {
		src := s.pre.Col(d0 + d)
		copy(dst.Col(d), src[p0:p0+dst.Rows])
	}
}

//repro:noalloc
func (s *blockSource) release() {
	if s.pre != nil {
		linalg.PutMat(s.pre)
		s.pre = nil
	}
}

// laneWS is the per-column lane scratch: one mc-length vector per
// intermediate of the batched Genz step.
type laneWS struct {
	acc, aP, bP, dif, da, u []float64
}

// The second result is the pooled backing buffer; callers return it with
// linalg.PutVec when the sweep finishes.
//
//repro:returns-pooled vec
//repro:noalloc
func getLaneWS(mc int) (laneWS, []float64) {
	buf := linalg.GetVec(6 * mc)
	return laneWS{
		acc: buf[0*mc : 1*mc],
		aP:  buf[1*mc : 2*mc],
		bP:  buf[2*mc : 3*mc],
		dif: buf[3*mc : 4*mc],
		da:  buf[4*mc : 5*mc],
		u:   buf[5*mc : 6*mc],
	}, buf
}

// freeSpan reports whether rows row0..row0+rows-1 are all unconstrained
// ((-∞,+∞) limits): such rows contribute factor 1 and y = Φ⁻¹(w) regardless
// of the conditioning values, so whole free tiles skip their limit tiles and
// incoming propagation GEMMs entirely — the PrefixProb query shape
// constrains only a prefix of the locations and leaves most rows free.
//repro:noalloc
func freeSpan(a, b []float64, row0, rows int) bool {
	for i := row0; i < row0+rows; i++ {
		if !math.IsInf(a[i], -1) || !math.IsInf(b[i], 1) {
			return false
		}
	}
	return true
}

// sweepColumn integrates the lane block of mc chains starting at global
// sample index kOff through the whole factor and returns Σ_lanes p. With
// nu > 0 it computes the Student-t variant: the generator's leading
// coordinate fixes each lane's χ² scale. Everything it touches is pooled or
// caller-owned; concurrent calls for disjoint columns are safe (the Factor
// is only read).
//repro:noalloc
func sweepColumn(f Factor, a, b []float64, src *blockSource, kOff, mc int, nu float64) float64 {
	nt, ts := f.NT(), f.TS()
	yAll := linalg.GetMat(mc, f.N())
	p := linalg.GetVec(mc)
	for l := range p {
		p[l] = 1
	}
	ws, wsBuf := getLaneWS(mc)
	d0Base := 0
	var s []float64
	if nu > 0 {
		// Leading QMC coordinate → per-lane scale s = √(χ²inv_ν(w₀)/ν).
		d0Base = 1
		s = linalg.GetVec(mc)
		w0 := linalg.GetMat(mc, 1)
		src.fill(w0, kOff, 0)
		for l, w := range w0.Col(0) {
			s[l] = chiScale(w, nu)
		}
		linalg.PutMat(w0)
	}

	alive := mc
	for r := 0; r < nt && alive > 0; r++ {
		rows := f.TileRows(r)
		row0 := r * ts
		yT := linalg.GetMatView(yAll, 0, row0, mc, rows)
		rT := linalg.GetMat(mc, rows)
		src.fill(rT, kOff, d0Base+row0)
		if freeSpan(a, b, row0, rows) {
			// Unconstrained tile: y = Φ⁻¹(w) for the whole block, factors 1,
			// and no conditioning GEMMs into it at all.
			stats.PhiInvBatch(rT.Data[:mc*rows], yT.Data[:mc*rows])
			clampFreeY(yT.Data[:mc*rows])
			linalg.PutMat(rT)
			linalg.PutMatView(yT)
			continue
		}
		// The A and B limits of Algorithm 2 are shifted by the SAME
		// conditioning sum, so one accumulator tile serves both — half the
		// propagation GEMMs of the seed's paired A/B updates. The first
		// apply overwrites (beta 0), so the pooled tile needs no zeroing.
		var cond *linalg.Matrix
		if r > 0 {
			cond = linalg.GetMat(mc, rows)
			for t := 0; t < r; t++ {
				yPrev := linalg.GetMatView(yAll, 0, t*ts, mc, f.TileRows(t))
				beta := 1.0
				if t == 0 {
					beta = 0
				}
				f.ApplyOffDiagLanes(r, t, 1, yPrev, beta, cond)
				linalg.PutMatView(yPrev)
			}
		}
		alive = qmcKernelLanes(f.Diag(r), rT, cond, yT, a, b, row0, s, p, ws, alive)
		linalg.PutMat(cond)
		linalg.PutMat(rT)
		linalg.PutMatView(yT)
	}

	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if s != nil {
		linalg.PutVec(s)
	}
	linalg.PutVec(wsBuf)
	linalg.PutVec(p)
	linalg.PutMat(yAll)
	return sum
}

// qmcKernelLanes is Algorithm 3 over one lane block: it advances every lane
// (chain) of the block through the tile's rows, multiplying the interval
// probability factors into p and writing the conditioning values into yT.
// cond holds the inter-tile conditioning sums (nil for the first row tile);
// intra-tile contributions accumulate on top of it through the lower
// triangle of lkk, packed row-major once per invocation so the lane axpys
// read stride-1 coefficients. The (optionally χ²-scaled by s) limits are
// broadcast per row straight from a and b — no limit tiles exist. It
// returns the updated count of alive lanes and stops early once none remain
// (the unread tail of yT stays undefined — the caller abandons the sweep).
//
// Rows with most lanes alive run the batched Genz step — shifted limits,
// the fused PhiIntervalPhiBatch and PhiInvBatch over the contiguous lane
// vectors, then a fix-up pass for dead lanes, empty intervals and tail
// clamps. Once most lanes are dead the scalar chainStep over the survivors
// is cheaper than full-width batches; both paths compute identical values.
//repro:noalloc
func qmcKernelLanes(lkk, rT, cond, yT *linalg.Matrix, a, b []float64, row0 int, s, p []float64, ws laneWS, alive int) int {
	m := lkk.Rows
	mc := len(p)
	rows := linalg.GetVec(m * m)
	for i := 0; i < m; i++ {
		ri := rows[i*m : i*m+i+1]
		for t := 0; t <= i; t++ {
			ri[t] = lkk.At(i, t)
		}
	}
	for i := 0; i < m && alive > 0; i++ {
		yCol := yT.Col(i)
		wCol := rT.Col(i)
		av, bv := a[row0+i], b[row0+i]
		if math.IsInf(av, -1) && math.IsInf(bv, 1) {
			// Free row inside a constrained tile: factor 1, y = Φ⁻¹(w); the
			// conditioning sum cancels out of the (-∞,+∞) interval entirely.
			stats.PhiInvBatch(wCol, yCol)
			clampFreeY(yCol)
			continue
		}
		ri := rows[i*m : i*m+i+1]
		// The intra-tile terms accumulate directly on top of the inter-tile
		// sums: cond's column i is consumed exactly once, at this row.
		acc := ws.acc
		if cond != nil {
			acc = cond.Col(i)
		} else {
			for l := range acc {
				acc[l] = 0
			}
		}
		for t := 0; t < i; t++ {
			if c := ri[t]; c != 0 {
				linalg.Axpy(c, yT.Col(t), acc)
			}
		}
		d := ri[i]
		if 4*alive >= 3*mc {
			// Batch path: shift the broadcast limits by the conditioning
			// sums. (limit − acc)/d preserves ±∞ limits, so no per-lane
			// infinity branch is needed.
			aP, bP := ws.aP, ws.bP
			shiftLanes(aP, av, acc, d, s)
			shiftLanes(bP, bv, acc, d, s)
			stats.PhiIntervalPhiBatch(aP, bP, ws.dif, ws.da)
			u := ws.u
			for l := 0; l < mc; l++ {
				u[l] = ws.da[l] + wCol[l]*ws.dif[l]
			}
			stats.PhiInvBatch(u, yCol)
			for l := 0; l < mc; l++ {
				switch {
				case p[l] == 0:
					yCol[l] = 0 // dead lane: keep Y finite
				case ws.dif[l] <= 0:
					yCol[l] = emptyIntervalY(aP[l], bP[l])
					p[l] = 0
					alive--
				default:
					if y := yCol[l]; math.IsInf(y, 0) || math.IsNaN(y) {
						yCol[l] = clampTailY(y, aP[l], bP[l])
					}
					p[l] *= ws.dif[l]
					if p[l] == 0 {
						alive--
					}
				}
			}
			continue
		}
		// Sparse path: only the surviving lanes pay the special functions.
		for l := 0; l < mc; l++ {
			if p[l] == 0 {
				yCol[l] = 0
				continue
			}
			al, bl := av, bv
			if s != nil {
				al, bl = scaleLimit(av, s[l]), scaleLimit(bv, s[l])
			}
			factor, yi := chainStep(shiftLimit(al, acc[l], d), shiftLimit(bl, acc[l], d), wCol[l])
			p[l] *= factor
			yCol[l] = yi
			if p[l] == 0 {
				alive--
			}
		}
	}
	linalg.PutVec(rows)
	return alive
}

// clampFreeY applies chainStep's tail clamp to the free-row fast path:
// Φ⁻¹ of an exact 0 or 1 draw (possible with a custom generator that does
// not clamp its output into (0,1)) would send an infinity into the Y grid
// and NaN every downstream conditioning sum. The in-repo generators never
// produce one, so the scan stays branch-predicted free.
//repro:noalloc
func clampFreeY(ys []float64) {
	for l, y := range ys {
		if math.IsInf(y, 0) || math.IsNaN(y) {
			ys[l] = clampTailY(y, math.Inf(-1), math.Inf(1))
		}
	}
}

// shiftLanes fills dst[l] = (limit·s[l] − acc[l])/d — the per-lane shifted
// limit of one row. An infinite limit short-circuits to itself across all
// lanes (the χ² scale and the conditioning shift both preserve it); s is nil
// for the plain MVN path.
//repro:noalloc
func shiftLanes(dst []float64, limit float64, acc []float64, d float64, s []float64) {
	if math.IsInf(limit, 0) {
		for l := range dst {
			dst[l] = limit
		}
		return
	}
	if s == nil {
		for l := range dst {
			dst[l] = (limit - acc[l]) / d
		}
		return
	}
	for l := range dst {
		dst[l] = (limit*s[l] - acc[l]) / d
	}
}
