package mvn

import (
	"math/rand"

	"repro/internal/linalg"
)

// MCPlain estimates Φn(a,b;0,Σ) by naive Monte Carlo: draw x = L·z with
// z ~ N(0,I) and count the fraction of draws inside the box [a,b]. This is
// the "naive MC chains" baseline the paper validates against (and the
// method its introduction argues is impractical at high accuracy).
func MCPlain(a, b []float64, l *linalg.Matrix, samples int, rng *rand.Rand) float64 {
	n := l.Rows
	z := make([]float64, n)
	x := make([]float64, n)
	hits := 0
	for s := 0; s < samples; s++ {
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		// x = L·z via forward accumulation (L lower triangular).
		inside := true
		for i := 0; i < n; i++ {
			acc := 0.0
			for j := 0; j <= i; j++ {
				acc += l.At(i, j) * z[j]
			}
			x[i] = acc
			if acc <= a[i] || acc > b[i] {
				inside = false
				break
			}
		}
		if inside {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// SampleField draws one realization x = mu + L·z of the Gaussian field with
// mean mu and Cholesky factor L, writing into dst (length n).
func SampleField(dst, mu []float64, l *linalg.Matrix, rng *rand.Rand) {
	n := l.Rows
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		acc := mu[i]
		for j := 0; j <= i; j++ {
			acc += l.At(i, j) * z[j]
		}
		dst[i] = acc
	}
}
