package mvn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
	"repro/internal/tlr"
)

// randomSPD builds a random SPD covariance with unit-scale diagonal: a
// random square root plus a diagonal shift.
func randomSPD(n int, rng *rand.Rand) *linalg.Matrix {
	g := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		col := g.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64() / math.Sqrt(float64(n))
		}
	}
	s := linalg.NewMatrix(n, n)
	linalg.Syrk(false, 1, g, 0, s)
	s.SymmetrizeFromLower()
	for i := 0; i < n; i++ {
		s.Add(i, i, 1)
	}
	return s
}

// randomLimits draws limit vectors mixing finite values, half-open and free
// coordinates — the shapes the lane kernel's fast paths dispatch on.
func randomLimits(n int, rng *rand.Rand) (a, b []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // finite box
			a[i] = -1 - rng.Float64()
			b[i] = rng.Float64() * 2
		case 1: // exceedance
			a[i] = -0.5 - rng.Float64()
			b[i] = math.Inf(1)
		case 2: // lower tail
			a[i] = math.Inf(-1)
			b[i] = 0.5 + rng.Float64()
		default: // free
			a[i] = math.Inf(-1)
			b[i] = math.Inf(1)
		}
	}
	return a, b
}

// TestChainBlockedMatchesSequentialRandomSPD pins the chain-blocked sweep
// against the scalar SOV reference on random SPD matrices and mixed limit
// shapes, for both MVN and MVT, at a tile size that exercises ragged edge
// tiles and multiple lane blocks.
func TestChainBlockedMatchesSequentialRandomSPD(t *testing.T) {
	rt := taskrt.New(3)
	defer rt.Shutdown()
	const N = 400
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		n := 20 + rng.Intn(25)
		sigma := randomSPD(n, rng)
		l, err := linalg.Cholesky(sigma)
		if err != nil {
			t.Fatal(err)
		}
		a, b := randomLimits(n, rng)

		tl := tile.FromDense(sigma, 7)
		if err := tiledalg.Potrf(rt, tl); err != nil {
			t.Fatal(err)
		}
		f := NewDenseFactor(tl)

		want := SOVSequential(a, b, l, qmc.NewRichtmyer(n), N)
		got := PMVN(rt, f, a, b, Options{N: N, SampleTile: 64})
		tol := 1e-9 * math.Max(1, math.Abs(want))
		if math.Abs(got.Prob-want) > tol {
			t.Errorf("seed %d (n=%d): chain-blocked %v vs sequential %v", seed, n, got.Prob, want)
		}

		nu := 3 + 5*rng.Float64()
		wantT := SOVSequentialT(a, b, l, nu, qmc.NewRichtmyer(n+1), N)
		gotT := PMVT(rt, f, a, b, nu, Options{N: N, SampleTile: 64})
		if math.Abs(gotT.Prob-wantT) > tol {
			t.Errorf("seed %d (n=%d, nu=%.2f): chain-blocked MVT %v vs sequential %v", seed, n, nu, gotT.Prob, wantT)
		}
	}
}

// TestPMVNInlineMatchesTasks: the inline sweep and the task-fanned sweep
// must produce bit-identical results — the batch fan-out relies on it.
func TestPMVNInlineMatchesTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 30
	sigma := randomSPD(n, rng)
	a, b := randomLimits(n, rng)
	rt := taskrt.New(4)
	defer rt.Shutdown()
	tl := tile.FromDense(sigma, 8)
	if err := tiledalg.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	f := NewDenseFactor(tl)
	for _, reps := range []int{1, 3} {
		opt := Options{N: 300, SampleTile: 32, Replicates: reps}
		tasks := PMVN(rt, f, a, b, opt)
		opt.Inline = true
		inline := PMVN(rt, f, a, b, opt)
		if tasks != inline {
			t.Errorf("replicates=%d: inline %+v != tasks %+v", reps, inline, tasks)
		}
		tasksT := PMVT(rt, f, a, b, 4, opt)
		opt.Inline = false
		inlineT := PMVT(rt, f, a, b, 4, opt)
		if tasksT != inlineT {
			t.Errorf("replicates=%d: MVT inline %+v != tasks %+v", reps, inlineT, tasksT)
		}
	}
}

// TestPMVNPrefixShape: the PrefixProb query shape (constrained prefix,
// free elsewhere) rides the free-row/free-tile fast paths; pin it against
// the sequential reference and against the dense-limit equivalent.
func TestPMVNPrefixShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	sigma := randomSPD(n, rng)
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = math.Inf(-1)
		b[i] = math.Inf(1)
	}
	// Scattered prefix: constrain 9 locations spread over the tiles.
	for i := 0; i < n; i += 5 {
		a[i] = -0.3
	}
	rt := taskrt.New(2)
	defer rt.Shutdown()
	tl := tile.FromDense(sigma, 8)
	if err := tiledalg.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	f := NewDenseFactor(tl)
	const N = 2000
	want := SOVSequential(a, b, l, qmc.NewRichtmyer(n), N)
	got := PMVN(rt, f, a, b, Options{N: N})
	if math.Abs(got.Prob-want) > 1e-9 {
		t.Errorf("prefix shape: chain-blocked %v vs sequential %v", got.Prob, want)
	}
}

// TestPMVNTLRLaneApply pins the lane-major low-rank propagation: a TLR
// factor at tight tolerance must reproduce the dense chain-blocked result.
func TestPMVNTLRLaneApplyMatchesDense(t *testing.T) {
	// Covered for kernels in mvn_test (TestPMVNTLRMatchesDense); here the
	// lane-major ApplyRightTrans path is exercised with rank-0 tiles too:
	// a block-diagonal covariance compresses off-diagonal tiles to rank 0.
	n := 24
	sigma := linalg.NewMatrix(n, n)
	rng := rand.New(rand.NewSource(3))
	for blk := 0; blk < 3; blk++ {
		base := blk * 8
		s := randomSPD(8, rng)
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				sigma.Set(base+i, base+j, s.At(i, j))
			}
		}
	}
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -0.8
		b[i] = 1.5
	}
	rt := taskrt.New(2)
	defer rt.Shutdown()
	const N = 500
	want := SOVSequential(a, b, l, qmc.NewRichtmyer(n), N)
	tc, err := tlr.CompressSPDPar(rt.NewGroup(), tile.FromDense(sigma, 8), 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for i := 1; i < tc.NT; i++ {
		for j := 0; j < i; j++ {
			if tc.Low[i][j].Rank() == 0 {
				zero++
			}
		}
	}
	if zero == 0 {
		t.Fatal("block-diagonal covariance produced no rank-0 tiles; test is vacuous")
	}
	if err := tlr.Potrf(rt.NewGroup(), tc); err != nil {
		t.Fatal(err)
	}
	got := PMVN(rt, NewTLRFactor(tc), a, b, Options{N: N})
	if math.Abs(got.Prob-want) > 1e-8 {
		t.Errorf("block-diagonal TLR: %v vs sequential %v", got.Prob, want)
	}
}
