package mvn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/stats"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
	"repro/internal/tlr"
)

// equicorrOracle integrates the 1-D reduction of the equicorrelated MVN
// orthant probability P(X_i ≤ b_i ∀i) for Σ = (1−ρ)I + ρ11ᵀ:
// ∫ φ(t)·Π Φ((b_i − √ρ·t)/√(1−ρ)) dt.
func equicorrOracle(b []float64, rho float64) float64 {
	f := func(t float64) float64 {
		v := stats.PhiDensity(t)
		for _, bi := range b {
			v *= stats.Phi((bi - math.Sqrt(rho)*t) / math.Sqrt(1-rho))
		}
		return v
	}
	const lim, n = 8.5, 4000
	h := 2 * lim / n
	s := f(-lim) + f(lim)
	for i := 1; i < n; i++ {
		x := -lim + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

func equicorrMatrix(n int, rho float64) *linalg.Matrix {
	m := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j {
				m.Set(i, j, 1)
			} else {
				m.Set(i, j, rho)
			}
		}
	}
	return m
}

func negInf(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Inf(-1)
	}
	return v
}

func posInf(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Inf(1)
	}
	return v
}

func TestChainStepBasics(t *testing.T) {
	// Full interval: factor 1.
	f, y := chainStep(math.Inf(-1), math.Inf(1), 0.5)
	if f != 1 {
		t.Errorf("full-interval factor %v", f)
	}
	if y != 0 { // Φ⁻¹(0.5)
		t.Errorf("median draw y = %v, want 0", y)
	}
	// Empty interval: factor 0, finite y.
	f, y = chainStep(2, 1, 0.5)
	if f != 0 || math.IsInf(y, 0) || math.IsNaN(y) {
		t.Errorf("empty interval: f=%v y=%v", f, y)
	}
	// Deep-tail interval with underflowed probability: finite y.
	f, y = chainStep(40, 41, 0.5)
	if f != 0 || math.IsNaN(y) || math.IsInf(y, 0) {
		t.Errorf("underflow interval: f=%v y=%v", f, y)
	}
	// Factor equals Φ(b′)−Φ(a′).
	f, _ = chainStep(-1, 1, 0.3)
	want := stats.Phi(1) - stats.Phi(-1)
	if math.Abs(f-want) > 1e-14 {
		t.Errorf("factor %v, want %v", f, want)
	}
}

func TestSOVSequentialIndependent(t *testing.T) {
	// Diagonal Σ: the SOV estimate is EXACT for every sample (no chain
	// coupling), so even N=1 gives the product form.
	n := 8
	v := make([]float64, n)
	l := linalg.NewMatrix(n, n)
	a := make([]float64, n)
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		v[i] = 0.5 + rng.Float64()
		l.Set(i, i, math.Sqrt(v[i]))
		a[i] = -1 - rng.Float64()
		b[i] = rng.Float64()
	}
	want := ProductForm(a, b, v)
	got := SOVSequential(a, b, l, qmc.NewRichtmyer(n), 3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("independent case: %v, want %v", got, want)
	}
}

func TestSOVSequentialBivariateOrthant(t *testing.T) {
	// P(X≤0, Y≤0) for correlation ρ is 1/4 + asin(ρ)/(2π).
	for _, rho := range []float64{-0.5, 0.0, 0.3, 0.7, 0.9} {
		sigma := equicorrMatrix(2, math.Abs(rho))
		sigma.Set(0, 1, rho)
		sigma.Set(1, 0, rho)
		l, err := linalg.Cholesky(sigma)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.25 + math.Asin(rho)/(2*math.Pi)
		got := SOVSequential(negInf(2), []float64{0, 0}, l, qmc.NewRichtmyer(2), 20000)
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("ρ=%v: orthant %v, want %v", rho, got, want)
		}
	}
}

func TestSOVSequentialTrivariateOrthant(t *testing.T) {
	// Equicorrelated n=3, ρ=0.5: P(all ≤ 0) = 1/8 + 3·asin(ρ)/(4π) = 1/4.
	sigma := equicorrMatrix(3, 0.5)
	l, _ := linalg.Cholesky(sigma)
	got := SOVSequential(negInf(3), make([]float64, 3), l, qmc.NewRichtmyer(3), 20000)
	if math.Abs(got-0.25) > 2e-3 {
		t.Errorf("trivariate orthant %v, want 0.25", got)
	}
}

func TestSOVSequentialEquicorrelated(t *testing.T) {
	n := 16
	rho := 0.4
	b := make([]float64, n)
	for i := range b {
		b[i] = 0.5 + 0.1*float64(i%3)
	}
	want := equicorrOracle(b, rho)
	l, _ := linalg.Cholesky(equicorrMatrix(n, rho))
	got := SOVSequential(negInf(n), b, l, qmc.NewRichtmyer(n), 30000)
	if math.Abs(got-want) > 3e-3 {
		t.Errorf("equicorrelated: %v, want %v", got, want)
	}
}

func newDenseFactor(t *testing.T, sigma *linalg.Matrix, ts int) *DenseFactor {
	t.Helper()
	rt := taskrt.New(2)
	defer rt.Shutdown()
	tl := tile.FromDense(sigma, ts)
	if err := tiledalg.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	return NewDenseFactor(tl)
}

func TestPMVNMatchesSequential(t *testing.T) {
	// Same generator, same chains: the tiled algorithm computes the same
	// recursion, so results agree to floating-point reordering noise.
	g := geo.RegularGrid(6, 6)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.15})
	n := 36
	l, _ := linalg.Cholesky(sigma)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -0.3
		b[i] = math.Inf(1)
	}
	const N = 500
	want := SOVSequential(a, b, l, qmc.NewRichtmyer(n), N)

	f := newDenseFactor(t, sigma, 9)
	rt := taskrt.New(4)
	defer rt.Shutdown()
	got := PMVN(rt, f, a, b, Options{N: N, SampleTile: 64})
	if math.Abs(got.Prob-want) > 1e-9 {
		t.Errorf("tiled %v vs sequential %v", got.Prob, want)
	}
}

func TestPMVNIndependentExact(t *testing.T) {
	// Identity covariance in tiled form: must reproduce the product form.
	n := 20
	sigma := linalg.Eye(n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -2 + 0.1*float64(i)
		b[i] = 1 + 0.05*float64(i)
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	want := ProductForm(a, b, v)
	f := newDenseFactor(t, sigma, 7)
	rt := taskrt.New(3)
	defer rt.Shutdown()
	got := PMVN(rt, f, a, b, Options{N: 64})
	if math.Abs(got.Prob-want) > 1e-12 {
		t.Errorf("independent tiled: %v, want %v", got.Prob, want)
	}
}

func TestPMVNEquicorrelatedOracle(t *testing.T) {
	n := 25
	rho := 0.5
	sigma := equicorrMatrix(n, rho)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	want := equicorrOracle(b, rho)
	f := newDenseFactor(t, sigma, 8)
	rt := taskrt.New(4)
	defer rt.Shutdown()
	got := PMVN(rt, f, negInf(n), b, Options{N: 20000})
	if math.Abs(got.Prob-want) > 3e-3 {
		t.Errorf("PMVN %v, oracle %v", got.Prob, want)
	}
}

func TestPMVNDeterministicAcrossWorkers(t *testing.T) {
	g := geo.RegularGrid(5, 5)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.2})
	a := make([]float64, 25)
	b := make([]float64, 25)
	for i := range a {
		a[i] = -0.5
		b[i] = 2
	}
	var ref float64
	for i, w := range []int{1, 4} {
		f := newDenseFactor(t, sigma, 5)
		rt := taskrt.New(w)
		res := PMVN(rt, f, a, b, Options{N: 300})
		rt.Shutdown()
		if i == 0 {
			ref = res.Prob
		} else if res.Prob != ref {
			t.Errorf("worker count changed result: %v vs %v", res.Prob, ref)
		}
	}
}

func TestPMVNTLRMatchesDense(t *testing.T) {
	g := geo.RegularGrid(8, 8)
	k := &cov.Exponential{Sigma2: 1, Range: 0.234}
	sigma := cov.Matrix(g, k)
	n := 64
	a := make([]float64, n)
	b := posInf(n)
	for i := range a {
		a[i] = -0.2
	}
	fD := newDenseFactor(t, sigma, 16)
	rt := taskrt.New(4)
	defer rt.Shutdown()
	dense := PMVN(rt, fD, a, b, Options{N: 4000})

	tl := tlr.BuildFromKernel(g, k, 16, 1e-9, 0)
	if err := tlr.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	tlrRes := PMVN(rt, NewTLRFactor(tl), a, b, Options{N: 4000})
	if d := math.Abs(dense.Prob - tlrRes.Prob); d > 1e-6 {
		t.Errorf("TLR (%v) vs dense (%v) differ by %v", tlrRes.Prob, dense.Prob, d)
	}
	// Looser compression keeps the probability within application accuracy
	// (the paper's 1e-3 observation).
	tl2 := tlr.BuildFromKernel(g, k, 16, 1e-3, 0)
	if err := tlr.Potrf(rt, tl2); err != nil {
		t.Fatal(err)
	}
	loose := PMVN(rt, NewTLRFactor(tl2), a, b, Options{N: 4000})
	if d := math.Abs(dense.Prob - loose.Prob); d > 5e-3 {
		t.Errorf("1e-3 TLR deviates too much: %v vs %v", loose.Prob, dense.Prob)
	}
}

func TestPMVNReplicatesGiveErrorEstimate(t *testing.T) {
	n := 16
	sigma := equicorrMatrix(n, 0.3)
	b := make([]float64, n)
	for i := range b {
		b[i] = 0.8
	}
	f := newDenseFactor(t, sigma, 8)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	res := PMVN(rt, f, negInf(n), b, Options{N: 2000, Replicates: 5})
	if res.StdErr <= 0 {
		t.Error("replicated run should report a positive error estimate")
	}
	want := equicorrOracle(b, 0.3)
	if math.Abs(res.Prob-want) > 10*res.StdErr+2e-3 {
		t.Errorf("estimate %v±%v inconsistent with oracle %v", res.Prob, res.StdErr, want)
	}
}

func TestPMVNHalfOpenInfiniteLimits(t *testing.T) {
	// a = -∞, b = +∞ gives probability 1 regardless of Σ.
	g := geo.RegularGrid(4, 4)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 2, Range: 0.3})
	f := newDenseFactor(t, sigma, 4)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	res := PMVN(rt, f, negInf(16), posInf(16), Options{N: 50})
	if res.Prob != 1 {
		t.Errorf("unbounded box probability %v, want 1", res.Prob)
	}
}

func TestPMVNEmptyBoxIsZero(t *testing.T) {
	sigma := linalg.Eye(6)
	a := []float64{1, 1, 1, 1, 1, 1}
	b := []float64{0, 0, 0, 0, 0, 0} // b < a: empty box
	f := newDenseFactor(t, sigma, 3)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	if res := PMVN(rt, f, a, b, Options{N: 40}); res.Prob != 0 {
		t.Errorf("empty box probability %v", res.Prob)
	}
}

func TestMCPlainMatchesProductForm(t *testing.T) {
	n := 5
	l := linalg.Eye(n)
	a := []float64{-1, -1, -1, -1, -1}
	b := []float64{1, 1, 1, 1, 1}
	v := []float64{1, 1, 1, 1, 1}
	want := ProductForm(a, b, v)
	got := MCPlain(a, b, l, 200000, rand.New(rand.NewSource(7)))
	if math.Abs(got-want) > 5e-3 {
		t.Errorf("MC %v, product form %v", got, want)
	}
}

func TestMCPlainAgreesWithPMVN(t *testing.T) {
	g := geo.RegularGrid(5, 5)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.2})
	l, _ := linalg.Cholesky(sigma)
	a := make([]float64, 25)
	for i := range a {
		a[i] = -0.4
	}
	b := posInf(25)
	mc := MCPlain(a, b, l, 100000, rand.New(rand.NewSource(3)))
	f := newDenseFactor(t, sigma, 5)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	res := PMVN(rt, f, a, b, Options{N: 10000})
	if math.Abs(mc-res.Prob) > 5e-3 {
		t.Errorf("MC %v vs PMVN %v", mc, res.Prob)
	}
}

func TestSampleFieldMoments(t *testing.T) {
	// Mean and variance of sampled field match mu and diag(Σ).
	sigma := equicorrMatrix(4, 0.6)
	l, _ := linalg.Cholesky(sigma)
	mu := []float64{1, -1, 0.5, 2}
	rng := rand.New(rand.NewSource(5))
	const reps = 40000
	sum := make([]float64, 4)
	sum2 := make([]float64, 4)
	x := make([]float64, 4)
	for r := 0; r < reps; r++ {
		SampleField(x, mu, l, rng)
		for i, v := range x {
			sum[i] += v
			sum2[i] += (v - mu[i]) * (v - mu[i])
		}
	}
	for i := 0; i < 4; i++ {
		if m := sum[i] / reps; math.Abs(m-mu[i]) > 0.03 {
			t.Errorf("mean[%d] = %v, want %v", i, m, mu[i])
		}
		if v := sum2[i] / reps; math.Abs(v-1) > 0.03 {
			t.Errorf("var[%d] = %v, want 1", i, v)
		}
	}
}

func TestProductForm(t *testing.T) {
	// One dimension, unit variance, [-1,1].
	p := ProductForm([]float64{-1}, []float64{1}, []float64{1})
	want := stats.Phi(1) - stats.Phi(-1)
	if math.Abs(p-want) > 1e-15 {
		t.Errorf("ProductForm 1D = %v, want %v", p, want)
	}
	// Variance scaling: [-2,2] with variance 4 equals [-1,1] with variance 1.
	p2 := ProductForm([]float64{-2}, []float64{2}, []float64{4})
	if math.Abs(p2-want) > 1e-15 {
		t.Errorf("variance scaling broken: %v", p2)
	}
}
