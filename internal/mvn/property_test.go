package mvn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
)

// TestPMVNProbabilityAxioms checks, over random problems, that the
// estimate lies in [0,1], grows when the box grows, and that disjointly
// splitting an interval in one coordinate adds up.
func TestPMVNProbabilityAxioms(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := 3 + rng.Intn(3)
		n := side * side
		g := geo.RegularGrid(side, side)
		sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.05 + 0.3*rng.Float64()})
		tl := tile.FromDense(sigma, max(4, n/3))
		if err := tiledalg.Potrf(rt, tl); err != nil {
			return false
		}
		fac := NewDenseFactor(tl)
		a := make([]float64, n)
		b := make([]float64, n)
		a2 := make([]float64, n)
		b2 := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = -0.5 - rng.Float64()
			b[i] = 0.5 + rng.Float64()
			a2[i] = a[i] - 0.5 // strictly larger box
			b2[i] = b[i] + 0.5
		}
		const N = 3000
		p := PMVN(rt, fac, a, b, Options{N: N}).Prob
		pBig := PMVN(rt, fac, a2, b2, Options{N: N}).Prob
		if p < 0 || p > 1 || pBig < 0 || pBig > 1 {
			return false
		}
		if pBig < p-5e-3 { // monotone up to QMC noise
			return false
		}
		// Additivity in coordinate 0: [a0,m) ∪ [m,b0) = [a0,b0).
		m := 0.5 * (a[0] + b[0])
		bl := append([]float64(nil), b...)
		bl[0] = m
		al := append([]float64(nil), a...)
		al[0] = m
		pLeft := PMVN(rt, fac, a, bl, Options{N: N}).Prob
		pRight := PMVN(rt, fac, al, b, Options{N: N}).Prob
		return math.Abs((pLeft+pRight)-p) < 2e-2*math.Max(p, 1e-3)+5e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestSOVScaleInvariance: scaling Σ by c² and the limits by c leaves the
// probability unchanged.
func TestSOVScaleInvariance(t *testing.T) {
	g := geo.RegularGrid(4, 4)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.2})
	n := 16
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = 0.8
	}
	l1, err := linalg.Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	p1 := SOVSequential(a, b, l1, qmc.NewRichtmyer(n), 5000)
	const c = 3.7
	scaled := sigma.Clone()
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			scaled.Set(i, j, sigma.At(i, j)*c*c)
		}
	}
	as := make([]float64, n)
	bs := make([]float64, n)
	for i := range a {
		as[i] = a[i] * c
		bs[i] = b[i] * c
	}
	l2, err := linalg.Cholesky(scaled)
	if err != nil {
		t.Fatal(err)
	}
	p2 := SOVSequential(as, bs, l2, qmc.NewRichtmyer(n), 5000)
	if math.Abs(p1-p2) > 1e-12 {
		t.Errorf("scale invariance broken: %v vs %v", p1, p2)
	}
}

// TestPMVNComplementUnderInclusion: P(a ≤ X ≤ b) + P(X outside) can't be
// checked directly with SOV, but P over the full space must be 1 and over a
// tiny box near machine-zero.
func TestPMVNExtremeBoxes(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	g := geo.RegularGrid(4, 4)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.1})
	tl := tile.FromDense(sigma, 8)
	if err := tiledalg.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	fac := NewDenseFactor(tl)
	n := 16
	wide := make([]float64, n)
	for i := range wide {
		wide[i] = 50
	}
	neg := make([]float64, n)
	for i := range neg {
		neg[i] = -50
	}
	if p := PMVN(rt, fac, neg, wide, Options{N: 100}).Prob; math.Abs(p-1) > 1e-12 {
		t.Errorf("±50 box probability %v", p)
	}
	tiny := make([]float64, n)
	tinyB := make([]float64, n)
	for i := range tiny {
		tiny[i] = 0
		tinyB[i] = 1e-9
	}
	if p := PMVN(rt, fac, tiny, tinyB, Options{N: 100}).Prob; p > 1e-12 {
		t.Errorf("sliver box probability %v", p)
	}
}
