package mvn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
)

func isPermutation(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// heterogeneousProblem builds an MVN problem whose limits vary widely, so
// reordering has something to gain.
func heterogeneousProblem(side int) ([]float64, []float64, *linalg.Matrix) {
	g := geo.RegularGrid(side, side)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.2})
	n := g.Len()
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = -3 + 4*float64(i%7)/6 // mixes tight and loose lower limits
		b[i] = math.Inf(1)
	}
	return a, b, sigma
}

func TestUnivariateReorderIsPermutation(t *testing.T) {
	a, b, sigma := heterogeneousProblem(5)
	perm := UnivariateReorder(a, b, sigma)
	if !isPermutation(perm, 25) {
		t.Fatalf("not a permutation: %v", perm)
	}
}

func TestUnivariateReorderPutsTightestFirst(t *testing.T) {
	// With independent variables the first selected variable must be the
	// one with the smallest marginal interval probability.
	n := 6
	sigma := linalg.Eye(n)
	a := []float64{-1, 2.5, -2, 0, -3, 1}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Inf(1)
	}
	perm := UnivariateReorder(a, b, sigma)
	if perm[0] != 1 { // a=2.5 gives the smallest P(X > a)
		t.Errorf("first variable %d, want 1 (tightest limit)", perm[0])
	}
	if perm[n-1] != 4 { // a=-3 is the loosest
		t.Errorf("last variable %d, want 4 (loosest limit)", perm[n-1])
	}
}

func TestReorderingPreservesProbability(t *testing.T) {
	// The MVN probability is invariant under joint permutation.
	a, b, sigma := heterogeneousProblem(4)
	l, _ := linalg.Cholesky(sigma)
	orig := SOVSequential(a, b, l, qmc.NewRichtmyer(16), 30000)
	perm := UnivariateReorder(a, b, sigma)
	ap, bp, sp := PermuteProblem(a, b, sigma, perm)
	lp, err := linalg.Cholesky(sp)
	if err != nil {
		t.Fatal(err)
	}
	reord := SOVSequential(ap, bp, lp, qmc.NewRichtmyer(16), 30000)
	if math.Abs(orig-reord) > 2e-3*math.Max(orig, 1e-6)+2e-4 {
		t.Errorf("probability changed under reordering: %v vs %v", orig, reord)
	}
}

func TestUnivariateReorderReducesVariance(t *testing.T) {
	// Across randomized QMC replicates the reordered problem should show
	// no larger spread than the original (usually strictly smaller).
	a, b, sigma := heterogeneousProblem(5)
	perm := UnivariateReorder(a, b, sigma)
	ap, bp, sp := PermuteProblem(a, b, sigma, perm)
	l, _ := linalg.Cholesky(sigma)
	lp, _ := linalg.Cholesky(sp)
	rng := rand.New(rand.NewSource(4))
	const reps, N = 24, 400
	spread := func(lm *linalg.Matrix, av, bv []float64) float64 {
		vals := make([]float64, reps)
		mean := 0.0
		for r := range vals {
			gen := qmc.NewRichtmyerShifted(25, qmc.RandomShift(25, rng))
			vals[r] = SOVSequential(av, bv, lm, gen, N)
			mean += vals[r]
		}
		mean /= reps
		ss := 0.0
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		return math.Sqrt(ss/(reps-1)) / math.Max(mean, 1e-300)
	}
	so := spread(l, a, b)
	sr := spread(lp, ap, bp)
	if sr > so*1.6 {
		t.Errorf("reordering inflated relative spread: %v -> %v", so, sr)
	}
	t.Logf("relative stderr: original %.3g, reordered %.3g", so, sr)
}

func TestBlockReorderKeepsBlocksContiguous(t *testing.T) {
	a, b, sigma := heterogeneousProblem(4) // n=16
	perm := BlockReorder(a, b, sigma, 4)
	if !isPermutation(perm, 16) {
		t.Fatalf("not a permutation: %v", perm)
	}
	// Every aligned group of 4 in the output must be a contiguous original
	// block in order.
	for g := 0; g < 4; g++ {
		base := perm[4*g]
		if base%4 != 0 {
			t.Fatalf("group %d does not start at a block boundary: %v", g, perm)
		}
		for k := 1; k < 4; k++ {
			if perm[4*g+k] != base+k {
				t.Fatalf("group %d not contiguous: %v", g, perm)
			}
		}
	}
}

func TestBlockReorderWithPMVN(t *testing.T) {
	// End-to-end: block-reordered problem through the tiled backend matches
	// the unreordered probability.
	a, b, sigma := heterogeneousProblem(4)
	perm := BlockReorder(a, b, sigma, 8)
	ap, bp, sp := PermuteProblem(a, b, sigma, perm)

	rt := taskrt.New(2)
	defer rt.Shutdown()
	run := func(av, bv []float64, s *linalg.Matrix) float64 {
		tl := tile.FromDense(s, 8)
		if err := tiledalg.Potrf(rt, tl); err != nil {
			t.Fatal(err)
		}
		return PMVN(rt, NewDenseFactor(tl), av, bv, Options{N: 20000}).Prob
	}
	p0 := run(a, b, sigma)
	p1 := run(ap, bp, sp)
	if math.Abs(p0-p1) > 3e-3*math.Max(p0, 1e-6)+3e-4 {
		t.Errorf("block reordering changed probability: %v vs %v", p0, p1)
	}
}

func TestTruncatedNormalMean(t *testing.T) {
	// Symmetric interval: mean 0.
	if m := truncatedNormalMean(-1, 1); math.Abs(m) > 1e-15 {
		t.Errorf("symmetric mean %v", m)
	}
	// One-sided (a, ∞): mean = φ(a)/(1−Φ(a)) > a.
	m := truncatedNormalMean(1, math.Inf(1))
	want := 1.5251352761609807 // φ(1)/(1−Φ(1))
	if math.Abs(m-want) > 1e-12 {
		t.Errorf("one-sided mean %v, want %v", m, want)
	}
	// Degenerate interval falls back to the midpoint.
	if m := truncatedNormalMean(50, 51); math.IsNaN(m) || m < 50 || m > 51 {
		t.Errorf("degenerate mean %v", m)
	}
}

func TestPermuteProblemRoundTrip(t *testing.T) {
	a, b, sigma := heterogeneousProblem(3)
	perm := UnivariateReorder(a, b, sigma)
	ap, bp, sp := PermuteProblem(a, b, sigma, perm)
	// Inverse permutation restores the problem.
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	a2, b2, s2 := PermuteProblem(ap, bp, sp, inv)
	for i := range a {
		if a2[i] != a[i] || b2[i] != b[i] {
			t.Fatal("limits not restored")
		}
	}
	if d := s2.MaxAbsDiff(sigma); d != 0 {
		t.Errorf("covariance not restored: %v", d)
	}
}
