package mvn

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/stats"
)

// chainStep performs one step of the Genz SOV recursion for one chain:
// given the shifted limits a', b' (already divided by the diagonal pivot)
// and the uniform draw w, it returns the interval probability factor and
// the conditioning value y = Φ⁻¹(Φ(a′) + w·(Φ(b′)−Φ(a′))).
//
// When the interval probability underflows, the factor is 0 and y falls
// back to a finite midpoint so downstream arithmetic stays NaN-free.
//repro:noalloc
func chainStep(aPrime, bPrime, w float64) (factor, y float64) {
	diff, da := stats.PhiIntervalAndPhi(aPrime, bPrime)
	if diff <= 0 {
		return 0, emptyIntervalY(aPrime, bPrime)
	}
	y = stats.PhiInv(da + w*diff)
	if math.IsInf(y, 0) || math.IsNaN(y) {
		y = clampTailY(y, aPrime, bPrime)
	}
	return diff, y
}

// emptyIntervalY is the finite conditioning value of a chain whose interval
// probability underflowed: a midpoint or the nearer finite limit, keeping
// downstream arithmetic NaN-free. Shared by the scalar chainStep and the
// lane-batched kernel so both compute identical values.
//repro:noalloc
func emptyIntervalY(aPrime, bPrime float64) (y float64) {
	switch {
	case !math.IsInf(aPrime, 0) && !math.IsInf(bPrime, 0):
		y = 0.5 * (aPrime + bPrime)
	case math.IsInf(aPrime, -1) && !math.IsInf(bPrime, 0):
		y = bPrime
	case !math.IsInf(aPrime, 0):
		y = aPrime
	}
	return y
}

// clampTailY replaces an extreme tail draw (Φ⁻¹ returned ±∞ or NaN) with the
// nearer finite limit. Shared by chainStep and the lane-batched kernel.
//repro:noalloc
func clampTailY(y, aPrime, bPrime float64) float64 {
	if math.IsNaN(y) || math.IsInf(y, 1) {
		if !math.IsInf(bPrime, 1) {
			return bPrime
		}
		return 8.2 // Φ(8.2) is 1 to double precision
	}
	if !math.IsInf(aPrime, -1) {
		return aPrime
	}
	return -8.2
}

// SOVSequential evaluates Φn(a,b;0,Σ) given the dense lower Cholesky factor
// l of Σ, using N sample points from gen. It is the direct transcription of
// Genz's sequential algorithm (the reference the tiled implementation is
// validated against) and returns the sample mean of the per-chain
// probability products.
func SOVSequential(a, b []float64, l *linalg.Matrix, gen qmc.Generator, n int) float64 {
	dim := l.Rows
	if len(a) != dim || len(b) != dim {
		panic("mvn: limit vectors must match factor dimension")
	}
	w := make([]float64, dim)
	y := make([]float64, dim)
	sum := 0.0
	for s := 0; s < n; s++ {
		gen.Next(w)
		p := 1.0
		for i := 0; i < dim; i++ {
			acc := 0.0
			for j := 0; j < i; j++ {
				acc += l.At(i, j) * y[j]
			}
			d := l.At(i, i)
			factor, yi := chainStep(shiftLimit(a[i], acc, d), shiftLimit(b[i], acc, d), w[i])
			p *= factor
			y[i] = yi
			if p == 0 {
				break
			}
		}
		sum += p
	}
	return sum / float64(n)
}

// shiftLimit computes (limit − acc)/d, preserving infinities.
//repro:noalloc
func shiftLimit(limit, acc, d float64) float64 {
	if math.IsInf(limit, 0) {
		return limit
	}
	return (limit - acc) / d
}

// ProductForm returns the exact MVN probability when Σ is diagonal with
// variances v: the product of univariate interval probabilities. It is the
// independent-case oracle used throughout the tests.
func ProductForm(a, b, v []float64) float64 {
	p := 1.0
	for i := range a {
		sd := math.Sqrt(v[i])
		p *= stats.PhiInterval(shiftLimit(a[i], 0, sd), shiftLimit(b[i], 0, sd))
	}
	return p
}
