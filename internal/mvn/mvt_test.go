package mvn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/stats"
	"repro/internal/taskrt"
)

func TestSOVSequentialTUnivariateExact(t *testing.T) {
	// 1-D MVT: T(−∞, t; 1, ν) is the Student-t CDF, exact via incBeta.
	l := linalg.Eye(1)
	for _, nu := range []float64{1, 2, 5, 30} {
		for _, tt := range []float64{-1.5, 0, 0.8, 2.5} {
			want := stats.StudentTCDF(tt, nu)
			got := SOVSequentialT([]float64{math.Inf(-1)}, []float64{tt}, l, nu, qmc.NewRichtmyer(2), 20000)
			if math.Abs(got-want) > 3e-3 {
				t.Errorf("ν=%v t=%v: %v, want %v", nu, tt, got, want)
			}
		}
	}
}

func TestSOVSequentialTLimitsToMVN(t *testing.T) {
	// ν → ∞ recovers the MVN probability.
	sigma := equicorrMatrix(8, 0.4)
	l, _ := linalg.Cholesky(sigma)
	b := make([]float64, 8)
	for i := range b {
		b[i] = 0.7
	}
	mvnP := SOVSequential(negInf(8), b, l, qmc.NewRichtmyer(8), 20000)
	mvtP := SOVSequentialT(negInf(8), b, l, 1e7, qmc.NewRichtmyer(9), 20000)
	if math.Abs(mvnP-mvtP) > 3e-3 {
		t.Errorf("ν→∞ MVT %v vs MVN %v", mvtP, mvnP)
	}
}

// mcMVT is a plain-MC oracle: x = L·z·√(ν/χ²), count box hits.
func mcMVT(a, b []float64, l *linalg.Matrix, nu float64, samples int, rng *rand.Rand) float64 {
	n := l.Rows
	z := make([]float64, n)
	hits := 0
	for s := 0; s < samples; s++ {
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		chi2 := 0.0
		for k := 0; k < int(nu); k++ {
			g := rng.NormFloat64()
			chi2 += g * g
		}
		scale := math.Sqrt(nu / chi2)
		inside := true
		for i := 0; i < n && inside; i++ {
			acc := 0.0
			for j := 0; j <= i; j++ {
				acc += l.At(i, j) * z[j]
			}
			x := acc * scale
			if x <= a[i] || x > b[i] {
				inside = false
			}
		}
		if inside {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

func TestSOVSequentialTAgainstMC(t *testing.T) {
	g := geo.RegularGrid(3, 3)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.3})
	l, _ := linalg.Cholesky(sigma)
	a := make([]float64, 9)
	b := make([]float64, 9)
	for i := range a {
		a[i] = -1.2
		b[i] = 1.5
	}
	const nu = 4
	want := mcMVT(a, b, l, nu, 300000, rand.New(rand.NewSource(1)))
	got := SOVSequentialT(a, b, l, nu, qmc.NewRichtmyer(10), 30000)
	if math.Abs(got-want) > 5e-3 {
		t.Errorf("MVT SOV %v vs MC %v", got, want)
	}
}

func TestPMVTMatchesSequential(t *testing.T) {
	g := geo.RegularGrid(5, 5)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.2})
	l, _ := linalg.Cholesky(sigma)
	a := make([]float64, 25)
	b := make([]float64, 25)
	for i := range a {
		a[i] = -0.8
		b[i] = math.Inf(1)
	}
	const nu, N = 6, 800
	want := SOVSequentialT(a, b, l, nu, qmc.NewRichtmyer(26), N)
	f := newDenseFactor(t, sigma, 5)
	rt := taskrt.New(3)
	defer rt.Shutdown()
	got := PMVT(rt, f, a, b, nu, Options{N: N, SampleTile: 100})
	if math.Abs(got.Prob-want) > 1e-9 {
		t.Errorf("tiled MVT %v vs sequential %v", got.Prob, want)
	}
}

func TestPMVTAgainstMCOracle(t *testing.T) {
	// The common χ² scale couples all coordinates, so simple "heavier
	// tails" intuitions fail in high dimension; validate the tiled MVT
	// directly against the plain-MC oracle at two ν values.
	sigma := equicorrMatrix(9, 0.3)
	l, _ := linalg.Cholesky(sigma)
	b := make([]float64, 9)
	a := make([]float64, 9)
	for i := range b {
		a[i] = -1
		b[i] = 1
	}
	f := newDenseFactor(t, sigma, 3)
	rt := taskrt.New(2)
	defer rt.Shutdown()
	for _, nu := range []float64{3, 10} {
		want := mcMVT(a, b, l, nu, 400000, rand.New(rand.NewSource(2)))
		got := PMVT(rt, f, a, b, nu, Options{N: 20000}).Prob
		if math.Abs(got-want) > 4e-3 {
			t.Errorf("ν=%v: PMVT %v vs MC %v", nu, got, want)
		}
	}
	// ν → ∞ recovers PMVN on the same backend.
	pNorm := PMVN(rt, f, a, b, Options{N: 20000}).Prob
	pT := PMVT(rt, f, a, b, 1e7, Options{N: 20000}).Prob
	if math.Abs(pNorm-pT) > 2e-3 {
		t.Errorf("ν→∞: PMVT %v vs PMVN %v", pT, pNorm)
	}
}

func TestPMVTPanicsOnBadInput(t *testing.T) {
	f := newDenseFactor(t, linalg.Eye(4), 2)
	rt := taskrt.New(1)
	defer rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("want panic for nu <= 0")
		}
	}()
	PMVT(rt, f, make([]float64, 4), make([]float64, 4), 0, Options{N: 10})
}

func TestChiScaleMedian(t *testing.T) {
	// The median scale for ν dof is √(median(χ²_ν)/ν) < 1 and → 1 as ν→∞.
	s5 := chiScale(0.5, 5)
	s1000 := chiScale(0.5, 1000)
	if s5 >= 1 || s1000 >= 1 {
		t.Errorf("median chi scales %v %v should be < 1", s5, s1000)
	}
	if math.Abs(s1000-1) > 0.01 {
		t.Errorf("large-ν median scale %v should approach 1", s1000)
	}
}
