package mvn

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/taskrt"
)

// The wave-structured early-stopping integration. A budgeted query — any
// Options with MaxRelErr, Deadline or Ctx set — runs its QMC samples as
// incremental waves instead of one fixed-N pass: every wave appends WaveSize
// samples (whole chain-blocked lane blocks, the PR 4 sweep unit) to each of
// a small set of randomized-shift replicates, and between waves the
// replicate spread of the running per-replicate means gives a streaming
// standard-error estimate. The integration stops at the first wave boundary
// where the requested relative error is met, the deadline or sample budget
// is exhausted, or the context is canceled — and reports the achieved
// error, the samples actually paid and the converged/capped flags.
//
// Determinism: which samples are included is decided by the wave boundary
// alone. Each replicate's generator is a random-access BlockGenerator (or a
// sequential generator pre-expanded over the whole budget), so lane blocks
// are pure functions of their sample indices; per-wave column sums land in
// fixed slots and reduce in index order. Fixed seeds therefore produce
// bit-identical estimates and stopping points at any worker count — only
// the wall-clock checks (Deadline, Ctx) are time-dependent by design.
//
// Cost: with early stopping active, Options.N is the TOTAL sample budget
// across replicates (ceil(N/reps) per replicate), so a query whose accuracy
// target is unreachable costs no more than the fixed-N path it replaces.

// maxWaveReps bounds the wave path's replicate count so the per-replicate
// generator and block-source state fits the pooled waveState arrays.
const maxWaveReps = 16

// defaultWaveReps is the replicate count used when the caller left
// Replicates below 2: the streaming error estimate needs a spread, and four
// replicates buy one at a quarter of the per-replicate budget each.
const defaultWaveReps = 4

// waveState is the pooled per-query state of a wave integration: one
// generator and block source per replicate. Pooling it (rather than stack
// arrays) keeps the warm path allocation-free even though the task fan-out
// closures capture it.
type waveState struct {
	gens [maxWaveReps]*qmc.Richtmyer // pooled default generators (nil for custom)
	srcs [maxWaveReps]blockSource
}

var waveStatePool = sync.Pool{New: func() any { return new(waveState) }}

// waveParams resolves the wave-path shape from defaulted Options: the
// replicate count, the per-replicate sample cap and the per-replicate wave
// length (both in whole lane blocks of mc chains).
//repro:noalloc
func waveParams(o Options) (reps, perRep, wave int) {
	reps = o.Replicates
	if reps < 2 {
		reps = defaultWaveReps
	}
	if reps > maxWaveReps {
		reps = maxWaveReps
	}
	mc := o.SampleTile
	wave = o.WaveSize
	if wave <= 0 {
		wave = mc
	}
	wave = (wave + mc - 1) / mc * mc
	perRep = (o.N + reps - 1) / reps
	perRep = (perRep + mc - 1) / mc * mc
	if wave > perRep {
		wave = perRep
	}
	return reps, perRep, wave
}

// integrateWaves runs the replicate-stratified wave integration behind every
// budgeted PMVN/PMVT query. All working state is pooled — the generators,
// the block sources, the replicate sums and the per-wave column slots — so a
// warm budgeted query with the default generator allocates nothing.
//repro:noalloc
func integrateWaves(rt *taskrt.Runtime, f Factor, a, b []float64, o Options, nu float64, genDim int, inline bool) Result {
	reps, perRep, wave := waveParams(o)
	mc := o.SampleTile

	ws := waveStatePool.Get().(*waveState)
	if o.NewGen == nil && o.Rng == nil {
		// Default generators: pooled shifted Richtmyer lattices, shifts from
		// the deterministic splitmix recurrence (replicate 0 unshifted).
		shift := linalg.GetVec(genDim)
		for rep := 0; rep < reps; rep++ {
			var sh []float64
			if rep > 0 {
				qmc.FillShiftSeeded(shift, uint64(rep))
				sh = shift
			}
			ws.gens[rep] = qmc.GetRichtmyer(genDim, sh)
			ws.srcs[rep] = blockSource{bg: ws.gens[rep]}
		}
		linalg.PutVec(shift)
	} else {
		//repro:alloc-ok custom-generator / caller-Rng replicates build one generator each
		buildWaveGens(ws, o, genDim, reps, perRep)
	}
	var sh *ShadowF32
	if o.SweepF32 {
		sh = shadowFor(f)
	}

	repSum := linalg.GetVecZero(reps)
	slots := linalg.GetVec(reps * ((wave + mc - 1) / mc))
	off := 0
	var res Result
	for {
		wlen := wave
		if off+wlen > perRep {
			wlen = perRep - off
		}
		cols := (wlen + mc - 1) / mc
		if inline {
			for rep := 0; rep < reps; rep++ {
				for c := 0; c < cols; c++ {
					cm := min(mc, wlen-c*mc)
					if sh != nil {
						slots[rep*cols+c] = sweepColumn32(f, sh, a, b, &ws.srcs[rep], off+c*mc, cm, nu)
					} else {
						slots[rep*cols+c] = sweepColumn(f, a, b, &ws.srcs[rep], off+c*mc, cm, nu)
					}
				}
			}
		} else {
			//repro:alloc-ok per-wave task fan-out closes over indices; warm batched queries run inline
			runWaveTasks(rt, f, sh, a, b, ws, slots, reps, cols, off, wlen, mc, nu)
		}
		for rep := 0; rep < reps; rep++ {
			s := 0.0
			for c := 0; c < cols; c++ {
				s += slots[rep*cols+c]
			}
			repSum[rep] += s
		}
		off += wlen

		mean, stderr := waveEstimate(repSum[:reps], float64(off))
		res = Result{
			Prob: clampProb(mean), StdErr: stderr,
			RelErr: relErrOf(mean, stderr), Samples: reps * off,
		}
		if o.MaxRelErr > 0 && res.RelErr <= o.MaxRelErr {
			res.Converged = true
			break
		}
		if o.Ctx != nil && o.Ctx.Err() != nil {
			res.Canceled = true
			break
		}
		if off >= perRep {
			break
		}
		if !o.Deadline.IsZero() && !time.Now().Before(o.Deadline) {
			break
		}
	}

	linalg.PutVec(slots)
	linalg.PutVec(repSum)
	for rep := 0; rep < reps; rep++ {
		if ws.gens[rep] != nil {
			qmc.PutRichtmyer(ws.gens[rep])
			ws.gens[rep] = nil
		}
		ws.srcs[rep].release()
		ws.srcs[rep] = blockSource{}
	}
	waveStatePool.Put(ws)
	return res
}

// buildWaveGens builds the wave replicate sources for a custom generator or
// a caller-supplied shift Rng. Shifts are pre-drawn sequentially from the
// (not goroutine-safe) Rng, exactly like integrateReplicated; sequential
// custom generators are pre-expanded over the whole per-replicate budget
// once, so waves still address samples by index. This path allocates by
// design and is kept out of the noalloc-certified fast path above.
func buildWaveGens(ws *waveState, o Options, genDim, reps, perRep int) {
	rng := o.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	for rep := 0; rep < reps; rep++ {
		var shift []float64
		if rep > 0 {
			shift = qmc.RandomShift(genDim, rng)
		}
		if o.NewGen != nil {
			ws.srcs[rep] = newBlockSource(o.NewGen(genDim, shift), perRep)
		} else {
			ws.gens[rep] = qmc.GetRichtmyer(genDim, shift)
			ws.srcs[rep] = blockSource{bg: ws.gens[rep]}
		}
	}
}

// runWaveTasks fans one wave out as one task per (replicate, lane-block)
// pair in its own runtime group. Slot placement is fixed by the indices, so
// the reduction order — and therefore the estimate — is independent of task
// scheduling.
func runWaveTasks(rt *taskrt.Runtime, f Factor, sh *ShadowF32, a, b []float64, ws *waveState, slots []float64, reps, cols, off, wlen, mc int, nu float64) {
	g := rt.NewGroup()
	for rep := 0; rep < reps; rep++ {
		for c := 0; c < cols; c++ {
			rep, c := rep, c
			g.Submit("qmc", 0, func() {
				cm := min(mc, wlen-c*mc)
				if sh != nil {
					slots[rep*cols+c] = sweepColumn32(f, sh, a, b, &ws.srcs[rep], off+c*mc, cm, nu)
				} else {
					slots[rep*cols+c] = sweepColumn(f, a, b, &ws.srcs[rep], off+c*mc, cm, nu)
				}
			})
		}
	}
	g.Wait()
}

// waveEstimate computes the replicate-stratified running estimate after
// `samples` samples per replicate: the mean across replicates of each
// replicate's running mean, and the randomized-QMC standard error of that
// mean (the replicate spread over the waves seen so far).
//repro:noalloc
func waveEstimate(repSum []float64, samples float64) (mean, stderr float64) {
	reps := len(repSum)
	for _, s := range repSum {
		mean += s / samples
	}
	mean /= float64(reps)
	ss := 0.0
	for _, s := range repSum {
		d := s/samples - mean
		ss += d * d
	}
	stderr = math.Sqrt(ss / float64(reps-1) / float64(reps))
	return mean, stderr
}

// relErrOf is the reported relative error: the standard error relative to
// the estimate's magnitude. An exactly-zero spread (degenerate 0/1 boxes,
// where every replicate agrees exactly) reports 0, so such queries converge
// at the first wave boundary; a zero estimate with nonzero spread reports
// +Inf — the estimate has no relative accuracy to claim.
//repro:noalloc
func relErrOf(mean, stderr float64) float64 {
	if stderr == 0 {
		return 0
	}
	if m := math.Abs(mean); m > 0 {
		return stderr / m
	}
	return math.Inf(1)
}
