package mvn

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
)

// waveTestFactor builds a dense Cholesky factor for an n = side² Matérn-like
// exponential field, plus the dense L the sequential reference consumes.
func waveTestFactor(t *testing.T, rt *taskrt.Runtime, side, ts int) (*DenseFactor, *linalg.Matrix) {
	t.Helper()
	g := geo.RegularGrid(side, side)
	sigma := cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.2})
	tl := tile.FromDense(sigma, ts)
	if err := tiledalg.Potrf(rt, tl); err != nil {
		t.Fatal(err)
	}
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	return NewDenseFactor(tl), l
}

// waveTestLimits builds the three BENCH_query regimes at dimension n.
func waveTestLimits(n int) map[string][2][]float64 {
	mk := func(f func(i int) (float64, float64)) [2][]float64 {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = f(i)
		}
		return [2][]float64{a, b}
	}
	return map[string][2][]float64{
		"excursion": mk(func(i int) (float64, float64) { return -1, math.Inf(1) }),
		"prefix": mk(func(i int) (float64, float64) {
			if i < 16 {
				return -0.5, math.Inf(1)
			}
			return math.Inf(-1), math.Inf(1)
		}),
		"wide": mk(func(i int) (float64, float64) { return -6, 6 }),
	}
}

// TestWaveErrorEstimatorValidity: across the three BENCH_query regimes, the
// early-stopped estimate must agree with the (much larger N) sequential
// reference to within a small multiple of its own reported error bar — the
// reported relative error is a usable bound, not just a diagnostic.
func TestWaveErrorEstimatorValidity(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	fac, dense := waveTestFactor(t, rt, 8, 16) // n = 64
	n := fac.N()
	for regime, lim := range waveTestLimits(n) {
		res := PMVN(rt, fac, lim[0], lim[1], Options{
			N: 4000, Replicates: 4, MaxRelErr: 1e-3,
		})
		ref := SOVSequential(lim[0], lim[1], dense, qmc.NewRichtmyer(n), 200000)
		if res.Prob < 0 || res.Prob > 1 {
			t.Errorf("%s: probability %g out of [0,1]", regime, res.Prob)
		}
		if res.Samples <= 0 || res.Samples > 4*4000 {
			t.Errorf("%s: implausible sample count %d", regime, res.Samples)
		}
		// The bound check: |est − ref| within 5 reported sigmas plus a tiny
		// absolute floor for the reference's own QMC error.
		tol := 5*res.StdErr + 1e-4*ref + 1e-9
		if diff := math.Abs(res.Prob - ref); diff > tol {
			t.Errorf("%s: |est-ref| = %.3g exceeds 5σ bound %.3g (est %.8g ref %.8g, relerr %.2g, samples %d)",
				regime, diff, tol, res.Prob, ref, res.RelErr, res.Samples)
		}
		if res.Converged && res.RelErr > 1e-3 {
			t.Errorf("%s: converged with RelErr %.3g > target", regime, res.RelErr)
		}
		t.Logf("%s: prob %.6g (ref %.6g) relerr %.2g samples %d converged %v",
			regime, res.Prob, ref, res.RelErr, res.Samples, res.Converged)
	}
}

// TestWaveDeterminismAcrossWorkers: the wave boundary, not goroutine
// scheduling, decides which samples are included — at fixed seeds the whole
// Result (estimate, error bar, stopping point) must be bit-identical between
// a single-worker inline run and an 8-worker task fan-out.
func TestWaveDeterminismAcrossWorkers(t *testing.T) {
	rt1 := taskrt.New(1)
	defer rt1.Shutdown()
	rt8 := taskrt.New(8)
	defer rt8.Shutdown()
	fac, _ := waveTestFactor(t, rt1, 8, 16)
	n := fac.N()
	for regime, lim := range waveTestLimits(n) {
		for _, target := range []float64{1e-2, 1e-3, 1e-4} {
			opt := Options{N: 4000, Replicates: 4, MaxRelErr: target}
			r1 := PMVN(rt1, fac, lim[0], lim[1], opt)
			r8 := PMVN(rt8, fac, lim[0], lim[1], opt)
			if r1 != r8 {
				t.Errorf("%s target %g: workers=1 %+v != workers=8 %+v", regime, target, r1, r8)
			}
			inline := opt
			inline.Inline = true
			ri := PMVN(rt8, fac, lim[0], lim[1], inline)
			if r1 != ri {
				t.Errorf("%s target %g: inline on 8 workers diverges: %+v != %+v", regime, target, r1, ri)
			}
		}
	}
}

// TestWaveDegenerateBoxes: exact-0 and exact-1 boxes have zero replicate
// spread, so they must stop at the first wave boundary with the exact
// answer, RelErr 0 and Converged set.
func TestWaveDegenerateBoxes(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	fac, _ := waveTestFactor(t, rt, 8, 16)
	n := fac.N()
	reps, _, wave := waveParams(Options{MaxRelErr: 1e-3}.withDefaults(fac.TS()))
	wantSamples := reps * wave

	free := make([]float64, n)
	never := make([]float64, n)
	lo := make([]float64, n)
	for i := range free {
		free[i] = math.Inf(1)
		never[i] = -40 // Φ interval mass below -40σ underflows to exactly 0
		lo[i] = math.Inf(-1)
	}
	one := PMVN(rt, fac, lo, free, Options{MaxRelErr: 1e-3})
	if one.Prob != 1 || one.StdErr != 0 || one.RelErr != 0 || !one.Converged {
		t.Errorf("all-free box: want exact 1 converged, got %+v", one)
	}
	if one.Samples != wantSamples {
		t.Errorf("all-free box: want stop after wave 1 (%d samples), got %d", wantSamples, one.Samples)
	}
	zero := PMVN(rt, fac, lo, never, Options{MaxRelErr: 1e-3})
	if zero.Prob != 0 || zero.StdErr != 0 || zero.RelErr != 0 || !zero.Converged {
		t.Errorf("underflowing box: want exact 0 converged, got %+v", zero)
	}
	if zero.Samples != wantSamples {
		t.Errorf("underflowing box: want stop after wave 1 (%d samples), got %d", wantSamples, zero.Samples)
	}
}

// TestWaveCancellation: a canceled context stops the integration at the next
// wave boundary and returns the partial estimate with its error bar and the
// Canceled flag — completed waves are not discarded.
func TestWaveCancellation(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	fac, _ := waveTestFactor(t, rt, 8, 16)
	lim := waveTestLimits(fac.N())["excursion"]

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: exactly one wave must still run
	res := PMVN(rt, fac, lim[0], lim[1], Options{N: 4000, Ctx: ctx})
	if !res.Canceled || res.Converged {
		t.Fatalf("want Canceled partial result, got %+v", res)
	}
	reps, _, wave := waveParams(Options{Ctx: ctx}.withDefaults(fac.TS()))
	if res.Samples != reps*wave {
		t.Errorf("canceled at first boundary: want %d samples, got %d", reps*wave, res.Samples)
	}
	if res.Prob <= 0 || res.Prob >= 1 || res.StdErr <= 0 {
		t.Errorf("partial estimate unusable: %+v", res)
	}

	// An un-canceled context changes nothing but routes through the wave
	// path: the full budget runs and the result carries an error bar.
	full := PMVN(rt, fac, lim[0], lim[1], Options{N: 4000, Ctx: context.Background()})
	if full.Canceled || full.Converged || full.StdErr <= 0 {
		t.Errorf("unconstrained wave run: %+v", full)
	}
	if full.Samples < 4000 {
		t.Errorf("unconstrained wave run spent %d of 4000 budget", full.Samples)
	}
}

// TestWaveDeadline: an already-expired deadline still yields one wave's
// estimate (budget-capped, not converged); a far future deadline runs the
// whole budget.
func TestWaveDeadline(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	fac, _ := waveTestFactor(t, rt, 8, 16)
	lim := waveTestLimits(fac.N())["excursion"]

	capped := PMVN(rt, fac, lim[0], lim[1], Options{N: 4000, Deadline: time.Now().Add(-time.Second)})
	reps, _, wave := waveParams(Options{Deadline: time.Unix(1, 0)}.withDefaults(fac.TS()))
	if capped.Converged || capped.Canceled || capped.Samples != reps*wave {
		t.Errorf("expired deadline: want one budget-capped wave of %d samples, got %+v", reps*wave, capped)
	}
	uncapped := PMVN(rt, fac, lim[0], lim[1], Options{N: 4000, Deadline: time.Now().Add(time.Hour)})
	if uncapped.Samples < 4000 {
		t.Errorf("future deadline stopped early: %+v", uncapped)
	}
}

// TestWaveMVT: the Student-t wave path (extra leading χ² coordinate) agrees
// with the sequential MVT reference within its reported error bar.
func TestWaveMVT(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	fac, dense := waveTestFactor(t, rt, 6, 12) // n = 36
	n := fac.N()
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = -1.5, 1
	}
	const nuDF = 5
	res := PMVT(rt, fac, a, b, nuDF, Options{N: 4000, Replicates: 4, MaxRelErr: 1e-3})
	ref := SOVSequentialT(a, b, dense, nuDF, qmc.NewRichtmyer(n+1), 200000)
	tol := 5*res.StdErr + 1e-3*ref
	if diff := math.Abs(res.Prob - ref); diff > tol {
		t.Errorf("MVT wave |est-ref| = %.3g exceeds %.3g (est %.8g ref %.8g samples %d)",
			diff, tol, res.Prob, ref, res.Samples)
	}
}

// TestWaveF32Sweep: the f32 conditioning sweep runs under the wave path too,
// within the QMC error bar of the f64 wave estimate.
func TestWaveF32Sweep(t *testing.T) {
	rt := taskrt.New(2)
	defer rt.Shutdown()
	fac, _ := waveTestFactor(t, rt, 8, 16)
	lim := waveTestLimits(fac.N())["excursion"]
	opt := Options{N: 4000, Replicates: 4, MaxRelErr: 1e-3}
	f64 := PMVN(rt, fac, lim[0], lim[1], opt)
	opt.SweepF32 = true
	f32 := PMVN(rt, fac, lim[0], lim[1], opt)
	if diff := math.Abs(f64.Prob - f32.Prob); diff > 5*(f64.StdErr+f32.StdErr)+1e-6 {
		t.Errorf("f32 wave sweep diverges: f64 %.8g f32 %.8g (diff %.3g)", f64.Prob, f32.Prob, diff)
	}
}
