package mvn

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/qmc"
	"repro/internal/stats"
	"repro/internal/taskrt"
)

// The multivariate Student-t (MVT) probability extends the SOV machinery
// with one extra QMC dimension: following Genz & Bretz, if X ~ t_ν(0,Σ)
// then X = Z·√(ν/S) with Z ~ N(0,Σ) and S ~ χ²_ν, so
//
//	T_n(a,b;Σ,ν) = E_s[ Φn(s·a, s·b; Σ) ],  s = √(χ²inv_ν(w₀)/ν).
//
// Each chain draws w₀ to fix its scale s and then runs the ordinary MVN
// recursion on the scaled limits. This is the capability of the paper's
// reference R package tlrmvnmvt [17], reproduced on the same tiled
// dense/TLR backends.

// SOVSequentialT evaluates the MVT probability T_n(a,b;Σ,ν) given the
// dense lower Cholesky factor l of Σ, using N points from gen, which must
// have dimension dim+1 (the extra leading coordinate drives the χ² draw).
func SOVSequentialT(a, b []float64, l *linalg.Matrix, nu float64, gen qmc.Generator, n int) float64 {
	dim := l.Rows
	if len(a) != dim || len(b) != dim {
		panic("mvn: limit vectors must match factor dimension")
	}
	if gen.Dim() != dim+1 {
		panic(fmt.Sprintf("mvn: MVT generator needs dim %d, got %d", dim+1, gen.Dim()))
	}
	if nu <= 0 {
		panic("mvn: degrees of freedom must be positive")
	}
	w := make([]float64, dim+1)
	y := make([]float64, dim)
	as := make([]float64, dim)
	bs := make([]float64, dim)
	sum := 0.0
	for sIdx := 0; sIdx < n; sIdx++ {
		gen.Next(w)
		s := chiScale(w[0], nu)
		for i := 0; i < dim; i++ {
			as[i] = scaleLimit(a[i], s)
			bs[i] = scaleLimit(b[i], s)
		}
		p := 1.0
		for i := 0; i < dim; i++ {
			acc := 0.0
			for j := 0; j < i; j++ {
				acc += l.At(i, j) * y[j]
			}
			d := l.At(i, i)
			factor, yi := chainStep(shiftLimit(as[i], acc, d), shiftLimit(bs[i], acc, d), w[i+1])
			p *= factor
			y[i] = yi
			if p == 0 {
				break
			}
		}
		sum += p
	}
	return sum / float64(n)
}

// chiScale maps a uniform draw to s = √(χ²inv_ν(w)/ν).
//repro:noalloc
func chiScale(w, nu float64) float64 {
	return math.Sqrt(stats.Chi2Inv(w, nu) / nu)
}

//repro:noalloc
func scaleLimit(v, s float64) float64 {
	if math.IsInf(v, 0) {
		return v
	}
	return v * s
}

// PMVT evaluates the MVT probability T_n(a,b;Σ,ν) on the chain-blocked
// backend: the identical sweep to PMVN, with each lane's limits pre-scaled
// by its χ² draw (the generator's extra leading coordinate). Like PMVN, the
// randomized replicates run concurrently in their own runtime groups, with
// all shifts pre-drawn from Options.Rng.
//repro:noalloc
func PMVT(rt *taskrt.Runtime, f Factor, a, b []float64, nu float64, opt Options) Result {
	n := f.N()
	if len(a) != n || len(b) != n {
		//repro:alloc-ok shape-mismatch panic path
		panic(fmt.Sprintf("mvn: limits length %d,%d != dimension %d", len(a), len(b), n))
	}
	if nu <= 0 {
		panic("mvn: degrees of freedom must be positive")
	}
	return integrate(rt, f, a, b, opt.withDefaults(f.TS()), nu)
}
