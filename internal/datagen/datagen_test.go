package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cov"
	"repro/internal/geo"
)

func TestSimulateMomentsMatchKernel(t *testing.T) {
	// Across many realizations, the sample variance at each point matches
	// σ² and the lag-1 correlation matches the kernel.
	rng := rand.New(rand.NewSource(1))
	g := geo.RegularGrid(6, 6)
	k := &cov.Exponential{Sigma2: 2, Range: 0.3}
	const reps = 3000
	n := g.Len()
	sum2 := make([]float64, n)
	cross := 0.0
	for r := 0; r < reps; r++ {
		f, err := Simulate(g, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range f.Values {
			sum2[i] += v * v
		}
		cross += f.Values[0] * f.Values[1]
	}
	for i := 0; i < n; i++ {
		if v := sum2[i] / reps; math.Abs(v-2) > 0.25 {
			t.Errorf("variance at %d = %v, want 2", i, v)
		}
	}
	wantCov := k.Cov(g.Dist(0, 1))
	if got := cross / reps; math.Abs(got-wantCov) > 0.2 {
		t.Errorf("lag-1 covariance %v, want %v", got, wantCov)
	}
}

func TestNegLogLikelihoodGaussianIdentity(t *testing.T) {
	// For Σ = I (huge nugget-free variance 1 at distance ∞... use a tiny
	// range so off-diagonals vanish), ℓ = ½Σy² + (n/2)log 2π.
	g := geo.RegularGrid(4, 4)
	k := &cov.Exponential{Sigma2: 1, Range: 1e-6}
	y := make([]float64, 16)
	rng := rand.New(rand.NewSource(2))
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	var quad float64
	for _, v := range y {
		quad += v * v
	}
	want := 0.5*quad + 8*math.Log(2*math.Pi)
	got := NegLogLikelihood(g, y, k)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("negll %v, want %v", got, want)
	}
}

func TestNegLogLikelihoodPrefersTrueParams(t *testing.T) {
	// The likelihood at the generating parameters should beat clearly wrong
	// parameters, averaged over realizations.
	rng := rand.New(rand.NewSource(3))
	g := geo.RegularGrid(8, 8)
	truth := &cov.Exponential{Sigma2: 1, Range: 0.15}
	better, worse := 0, 0
	for r := 0; r < 20; r++ {
		f, err := Simulate(g, truth, rng)
		if err != nil {
			t.Fatal(err)
		}
		llTrue := NegLogLikelihood(g, f.Values, truth)
		llWrong := NegLogLikelihood(g, f.Values, &cov.Exponential{Sigma2: 4, Range: 0.8})
		if llTrue < llWrong {
			better++
		} else {
			worse++
		}
	}
	if better <= worse {
		t.Errorf("true params won %d/20 likelihood comparisons", better)
	}
}

func TestFitExponentialRecoversRange(t *testing.T) {
	if testing.Short() {
		t.Skip("MLE fit is slow")
	}
	rng := rand.New(rand.NewSource(4))
	g := geo.RegularGrid(10, 10)
	truth := &cov.Exponential{Sigma2: 1, Range: 0.1}
	f, err := Simulate(g, truth, rng)
	if err != nil {
		t.Fatal(err)
	}
	res := FitExponential(g, f.Values, 0.5, 0.3, 400)
	k := res.Kernel.(*cov.Exponential)
	// A single realization on 100 points gives rough estimates; require the
	// right order of magnitude and a better likelihood than the start.
	if k.Range < 0.02 || k.Range > 0.5 {
		t.Errorf("fitted range %v implausible (truth 0.1)", k.Range)
	}
	if start := NegLogLikelihood(g, f.Values, &cov.Exponential{Sigma2: 0.5, Range: 0.3}); res.NegLL > start {
		t.Errorf("fit (%v) did not improve on start (%v)", res.NegLL, start)
	}
}

func TestFitMaternImprovesLikelihood(t *testing.T) {
	if testing.Short() {
		t.Skip("MLE fit is slow")
	}
	rng := rand.New(rand.NewSource(5))
	g := geo.RegularGrid(8, 8)
	truth := cov.NewMatern(1, 0.12, 1.5)
	f, err := Simulate(g, truth, rng)
	if err != nil {
		t.Fatal(err)
	}
	start := cov.Matern{Sigma2: 2, Range: 0.3, Nu: 0.8}
	res := FitMatern(g, f.Values, start, 300)
	ll0 := NegLogLikelihood(g, f.Values, cov.NewMatern(start.Sigma2, start.Range, start.Nu))
	if res.NegLL >= ll0 {
		t.Errorf("Matérn fit did not improve: %v vs %v", res.NegLL, ll0)
	}
	p := res.Kernel.Params()
	for i, v := range p {
		if v <= 0 || math.IsNaN(v) {
			t.Errorf("fitted param %d = %v", i, v)
		}
	}
}

func TestSyntheticDatasetShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds, err := NewSyntheticDataset(8, 20, "medium", rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Field.Geom.Len() != 64 {
		t.Errorf("field size %d", ds.Field.Geom.Len())
	}
	if len(ds.ObsIdx) != 20 || len(ds.Y) != 20 {
		t.Errorf("obs sizes %d,%d", len(ds.ObsIdx), len(ds.Y))
	}
	if ds.PostCov.Rows != 64 || len(ds.PostMu) != 64 {
		t.Errorf("posterior sizes %dx%d, %d", ds.PostCov.Rows, ds.PostCov.Cols, len(ds.PostMu))
	}
	// Posterior variance at observed locations is below the prior variance.
	for _, i := range ds.ObsIdx {
		if ds.PostCov.At(i, i) >= 1 {
			t.Errorf("posterior variance %v at observed location %d", ds.PostCov.At(i, i), i)
		}
	}
}

func TestSyntheticDatasetUnknownLevel(t *testing.T) {
	if _, err := NewSyntheticDataset(4, 4, "extreme", rand.New(rand.NewSource(1))); err == nil {
		t.Error("want error for unknown correlation level")
	}
}

func TestSyntheticDatasetLevels(t *testing.T) {
	// All three paper levels must build successfully.
	for level := range PaperSyntheticRanges {
		rng := rand.New(rand.NewSource(7))
		if _, err := NewSyntheticDataset(6, 10, level, rng); err != nil {
			t.Errorf("level %s: %v", level, err)
		}
	}
}
