// Package datagen simulates stationary Gaussian random fields and fits
// their covariance parameters by maximum likelihood — the two roles
// ExaGeoStat plays in the paper: generating the synthetic datasets
// (exponential kernel, ranges 0.033/0.1/0.234) and estimating Matérn
// parameters for the wind-speed application.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cov"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/optim"
)

// Field is a simulated Gaussian random field: locations, values and the
// kernel that generated it.
type Field struct {
	Geom   *geo.Geom
	Values []float64
	Kernel cov.Kernel
}

// Simulate draws one mean-zero realization of the Gaussian field with the
// given kernel at the locations of g: z = L·e with Σ = L·Lᵀ.
func Simulate(g *geo.Geom, k cov.Kernel, rng *rand.Rand) (*Field, error) {
	sigma := cov.Matrix(g, k)
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		return nil, fmt.Errorf("datagen: covariance not PD: %w", err)
	}
	n := g.Len()
	e := make([]float64, n)
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		acc := 0.0
		for j := 0; j <= i; j++ {
			acc += l.At(i, j) * e[j]
		}
		z[i] = acc
	}
	return &Field{Geom: g, Values: z, Kernel: k}, nil
}

// NegLogLikelihood returns the Gaussian negative log-likelihood of the
// observations y at locations g under kernel k:
//
//	ℓ(θ) = ½·yᵀΣ⁻¹y + ½·log|Σ| + (n/2)·log 2π
//
// computed through one Cholesky factorization. It returns +Inf when Σ(θ) is
// not positive definite, which makes it directly usable as an optimization
// objective.
func NegLogLikelihood(g *geo.Geom, y []float64, k cov.Kernel) float64 {
	sigma := cov.Matrix(g, k)
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		return math.Inf(1)
	}
	n := g.Len()
	// Solve L·w = y, then yᵀΣ⁻¹y = wᵀw.
	w := append([]float64(nil), y...)
	wm := linalg.FromColMajor(n, 1, w)
	linalg.TrsmLower(linalg.Left, false, 1, l, wm)
	quad := linalg.Dot(w, w)
	return 0.5*quad + 0.5*linalg.LogDetFromChol(l) + 0.5*float64(n)*math.Log(2*math.Pi)
}

// FitResult reports an MLE fit.
type FitResult struct {
	Kernel cov.Kernel
	NegLL  float64
	Evals  int
}

// FitMatern estimates Matérn parameters (σ², a, ν) by maximum likelihood
// with Nelder–Mead in log-parameter space (which enforces positivity), the
// procedure the paper runs in ExaGeoStat. start provides the initial
// parameters.
func FitMatern(g *geo.Geom, y []float64, start cov.Matern, maxEvals int) FitResult {
	obj := func(logp []float64) float64 {
		s2 := math.Exp(logp[0])
		rg := math.Exp(logp[1])
		nu := math.Exp(logp[2])
		if nu > 10 || rg > 100 || s2 > 1e6 { // keep the simplex in sane territory
			return math.Inf(1)
		}
		return NegLogLikelihood(g, y, cov.NewMatern(s2, rg, nu))
	}
	x0 := []float64{math.Log(start.Sigma2), math.Log(start.Range), math.Log(start.Nu)}
	res := optim.Minimize(obj, x0, optim.Options{MaxEvals: maxEvals, Step: 0.3, TolF: 1e-6, TolX: 1e-5})
	k := cov.NewMatern(math.Exp(res.X[0]), math.Exp(res.X[1]), math.Exp(res.X[2]))
	return FitResult{Kernel: k, NegLL: res.F, Evals: res.Evals}
}

// FitExponential estimates (σ², a) for the exponential kernel by maximum
// likelihood.
func FitExponential(g *geo.Geom, y []float64, startSigma2, startRange float64, maxEvals int) FitResult {
	obj := func(logp []float64) float64 {
		return NegLogLikelihood(g, y, &cov.Exponential{
			Sigma2: math.Exp(logp[0]),
			Range:  math.Exp(logp[1]),
		})
	}
	x0 := []float64{math.Log(startSigma2), math.Log(startRange)}
	res := optim.Minimize(obj, x0, optim.Options{MaxEvals: maxEvals, Step: 0.3, TolF: 1e-6, TolX: 1e-5})
	k := &cov.Exponential{Sigma2: math.Exp(res.X[0]), Range: math.Exp(res.X[1])}
	return FitResult{Kernel: k, NegLL: res.F, Evals: res.Evals}
}

// PaperSyntheticRanges are the three exponential-kernel range parameters of
// the paper's synthetic datasets: weak, medium and strong correlation.
var PaperSyntheticRanges = map[string]float64{
	"weak":   0.033,
	"medium": 0.1,
	"strong": 0.234,
}

// SyntheticDataset reproduces the paper's synthetic-data pipeline
// (Section V-B): simulate a field on a grid with the exponential kernel of
// the named correlation level, select nObs random locations, perturb them
// with N(0, 0.5²) noise, and compute the posterior covariance and mean
// (eqs. 7–8) that feed the confidence-region detection.
type SyntheticDataset struct {
	Field   *Field
	ObsIdx  []int
	Y       []float64 // noisy observations
	PostCov *linalg.Matrix
	PostMu  []float64
}

// NewSyntheticDataset builds the dataset; level must be one of
// "weak", "medium", "strong".
func NewSyntheticDataset(gridSide, nObs int, level string, rng *rand.Rand) (*SyntheticDataset, error) {
	rg, ok := PaperSyntheticRanges[level]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown correlation level %q", level)
	}
	g := geo.RegularGrid(gridSide, gridSide)
	k := &cov.Exponential{Sigma2: 1, Range: rg}
	field, err := Simulate(g, k, rng)
	if err != nil {
		return nil, err
	}
	n := g.Len()
	if nObs > n {
		nObs = n
	}
	const tau = 0.5 // observation noise sd, as in the paper
	perm := rng.Perm(n)[:nObs]
	y := make([]float64, nObs)
	for i, idx := range perm {
		y[i] = field.Values[idx] + tau*rng.NormFloat64()
	}
	sigma := cov.Matrix(g, k)
	mu := make([]float64, n)
	postCov, postMu, err := cov.Posterior(sigma, mu, perm, y, tau*tau)
	if err != nil {
		return nil, err
	}
	return &SyntheticDataset{Field: field, ObsIdx: perm, Y: y, PostCov: postCov, PostMu: postMu}, nil
}
