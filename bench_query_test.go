// BenchmarkQuery measures the warm-query serving path: the session's factor
// cache already holds the Cholesky factor, so each iteration pays only the
// PMVN integration — the regime of a served workload where millions of
// queries hit a handful of cached covariances.
//
//	go test -run=NONE -bench=BenchmarkQuery -benchtime=5x .
//
// Three limit regimes bracket the workload:
//
//   - excursion: a common finite lower limit on every coordinate (the joint
//     exceedance probability of confidence-region detection); chains die
//     progressively as the product underflows.
//   - prefix: finite limits on the first tile's worth of coordinates and
//     (-∞,+∞) elsewhere — the PrefixProb query shape of Algorithm 1, where
//     most rows are unconstrained.
//   - wide: a ±6 box, probability ≈ 1 — no chain ever dies, so every row of
//     every chain runs the special functions (the worst case for the
//     integrator).
//
// Results are recorded in BENCH_query.json alongside the pre-PR4 scalar-path
// numbers.
package parmvn

import (
	"math"
	"testing"
)

// queryBenchLimits builds the three limit regimes for dimension n.
func queryBenchLimits(n int) map[string][2][]float64 {
	excA := make([]float64, n)
	excB := make([]float64, n)
	preA := make([]float64, n)
	preB := make([]float64, n)
	wideA := make([]float64, n)
	wideB := make([]float64, n)
	for i := 0; i < n; i++ {
		excA[i] = -1
		excB[i] = math.Inf(1)
		if i < 64 {
			preA[i] = -0.5
		} else {
			preA[i] = math.Inf(-1)
		}
		preB[i] = math.Inf(1)
		wideA[i] = -6
		wideB[i] = 6
	}
	return map[string][2][]float64{
		"excursion": {excA, excB},
		"prefix":    {preA, preB},
		"wide":      {wideA, wideB},
	}
}

func benchWarmQuery(b *testing.B, method Method, side int, regime string, sweepF32 bool, maxRelErr float64) {
	locs := Grid(side, side)
	n := len(locs)
	kernel := KernelSpec{Family: "matern", Range: 0.2, Nu: 2.5, Nugget: 0.05}
	lim := queryBenchLimits(n)[regime]
	s := NewSession(Config{
		Method: method, TileSize: 64, QMCSize: 1000, TLRTol: 1e-6,
		AdaptiveF32Norm: 0.5, SweepF32: sweepF32,
	})
	defer s.Close()
	opts := QueryOpts{MaxRelErr: maxRelErr}
	// Warm the factor cache: iterations measure only the integration.
	if _, err := s.MVNProbOpts(locs, kernel, lim[0], lim[1], opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MVNProbOpts(locs, kernel, lim[0], lim[1], opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery: warm-factor MVN queries (N=1000 chains) across methods,
// sizes, limit regimes and sweep precisions (the default f64 sweep, and the
// opt-in f32 conditioning sweep recorded as the sweep=f32 rows). The
// earlystop rows run the same query with a 1e-3 relative-error target: the
// wave path stops as soon as the streaming error estimate meets it, with the
// same N=1000 as its TOTAL budget — so a cell that cannot converge (hard
// regimes) pays at most the fixed-N cost, and an easy cell (wide, prob ≈ 1)
// stops after the first wave.
func BenchmarkQuery(b *testing.B) {
	for _, m := range []Method{Dense, TLR, MethodAdaptive} {
		for _, side := range []int{24, 40} { // n = 576, 1600
			for _, regime := range []string{"excursion", "prefix", "wide"} {
				for _, sweep := range []string{"f64", "f32"} {
					m, side, regime, sweep := m, side, regime, sweep
					name := m.String() + "/n=" + itoa(side*side) + "/" + regime + "/sweep=" + sweep
					b.Run(name, func(b *testing.B) {
						benchWarmQuery(b, m, side, regime, sweep == "f32", 0)
					})
				}
				m, side, regime := m, side, regime
				name := m.String() + "/n=" + itoa(side*side) + "/" + regime + "/earlystop=1e-3"
				b.Run(name, func(b *testing.B) {
					benchWarmQuery(b, m, side, regime, false, 1e-3)
				})
			}
		}
	}
}

// itoa avoids pulling strconv into the benchmark-only file's imports being
// mistaken for production use.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
