//go:build race

package parmvn

// raceEnabled reports that the race detector instruments this build;
// sync.Pool intentionally drops puts under -race, so allocation-count
// assertions are meaningless there.
const raceEnabled = true
