//go:build race

package parmvn

import (
	"math"
	"sync"
	"testing"
)

// raceEnabled reports that the race detector instruments this build;
// sync.Pool intentionally drops puts under -race, so allocation-count
// assertions are meaningless there.
const raceEnabled = true

// TestFactorCacheConcurrentEviction hammers a capacity-2 factor cache from
// many goroutines cycling through more covariances than fit — so entries
// are constantly evicted while other goroutines hold and query their
// factors — with concurrent Purge calls thrown in. The race detector checks
// the interleavings; the test itself pins that eviction never corrupts
// results: every query returns its problem's deterministic probability no
// matter which cache generation served it.
//
// (Race-gated: the point is the detector's coverage of the eviction paths,
// which only this build runs.)
func TestFactorCacheConcurrentEviction(t *testing.T) {
	s := NewSession(Config{TileSize: 8, QMCSize: 200, FactorCacheCap: 2})
	defer s.Close()
	locs := Grid(4, 4)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = -1, math.Inf(1)
	}
	// Six problems through a two-slot cache: every round evicts.
	specs := make([]KernelSpec, 6)
	for i := range specs {
		specs[i] = KernelSpec{Family: "exponential", Range: 0.1 + 0.05*float64(i)}
	}

	// Reference results, computed sequentially up front.
	want := make([]float64, len(specs))
	for i, spec := range specs {
		r, err := s.MVNProb(locs, spec, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Prob
	}

	const (
		goroutines = 8
		iters      = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	wg.Add(goroutines + 1)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(specs)
				r, err := s.MVNProb(locs, specs[i], a, b)
				if err != nil {
					errs <- err
					return
				}
				if r.Prob != want[i] {
					t.Errorf("goroutine %d: spec %d returned %g, want %g (stale or cross-wired factor)",
						g, i, r.Prob, want[i])
					return
				}
			}
		}(g)
	}
	// One goroutine purging the cache under the queries' feet.
	go func() {
		defer wg.Done()
		for it := 0; it < 2*iters; it++ {
			s.Cache().Purge()
			s.Cache().Len()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
